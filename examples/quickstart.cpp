// Quickstart: generate a workload, run it under the slot-based fair
// scheduler, DRF and Tetris on a simulated cluster, and compare makespan
// and job completion times.
//
//   ./examples/quickstart [num_jobs] [num_machines] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/metrics.h"
#include "core/tetris_scheduler.h"
#include "sched/drf_scheduler.h"
#include "sched/slot_scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workload/profiles.h"
#include "workload/suite.h"

using namespace tetris;

int main(int argc, char** argv) {
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 60;
  const int num_machines = argc > 2 ? std::atoi(argv[2]) : 20;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  // A scaled-down version of the paper's §5.1 workload suite.
  workload::SuiteConfig wcfg;
  wcfg.num_jobs = num_jobs;
  wcfg.num_machines = num_machines;
  wcfg.task_scale = 0.1;
  wcfg.arrival_window = 600;
  wcfg.seed = seed;
  const sim::Workload w = workload::make_suite_workload(wcfg);
  std::cout << "workload: " << w.jobs.size() << " jobs, " << w.total_tasks()
            << " tasks on " << num_machines << " machines\n\n";

  sim::SimConfig cfg;
  cfg.num_machines = num_machines;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.seed = seed;

  const auto run = [&](sim::Scheduler& s) {
    const sim::SimResult r = sim::simulate(cfg, w, s);
    if (!r.completed) {
      std::cerr << "warning: " << s.name() << " did not drain the workload\n";
    }
    return r;
  };

  sched::SlotScheduler slot;
  sched::DrfScheduler drf;
  core::TetrisScheduler tetris;

  const auto r_slot = run(slot);
  const auto r_drf = run(drf);

  // Tetris sees the machines through the usage-based tracker.
  cfg.tracker = sim::TrackerMode::kUsage;
  const auto r_tetris = run(tetris);

  Table t({"scheduler", "makespan (s)", "avg JCT (s)", "median JCT (s)"});
  for (const auto* r : {&r_slot, &r_drf, &r_tetris}) {
    t.add_row({r->scheduler_name, format_double(r->makespan, 1),
               format_double(r->avg_jct(), 1),
               format_double(r->median_jct(), 1)});
  }
  std::cout << t.to_string() << "\n";

  Table g({"comparison", "makespan reduction", "avg JCT reduction"});
  g.add_row({"tetris vs slot-fair",
             format_percent(
                 analysis::makespan_reduction(r_slot, r_tetris) / 100.0),
             format_percent(
                 analysis::avg_jct_reduction(r_slot, r_tetris) / 100.0)});
  g.add_row(
      {"tetris vs drf",
       format_percent(analysis::makespan_reduction(r_drf, r_tetris) / 100.0),
       format_percent(analysis::avg_jct_reduction(r_drf, r_tetris) / 100.0)});
  std::cout << g.to_string();
  return 0;
}
