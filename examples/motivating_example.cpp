// The paper's §2.1 / Figure 1 walk-through: three two-phase jobs on an
// 18-core / 36 GB / 3 Gbps cluster, scheduled by DRF and by a packing
// scheduler. Prints the task-level schedule so the packing structure is
// visible, not just the aggregate numbers.
#include <algorithm>
#include <iostream>
#include <map>

#include "core/tetris_scheduler.h"
#include "sched/drf_scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workload/motivating.h"

using namespace tetris;

namespace {

void print_schedule(const sim::SimResult& r, double t_unit) {
  std::cout << "--- " << r.scheduler_name << " ---\n";
  // Bucket task starts into t-unit intervals per job and stage.
  std::map<std::pair<int, int>, std::map<int, int>> waves;
  for (const auto& task : r.tasks) {
    const int wave = static_cast<int>(task.start / t_unit + 0.25);
    waves[{task.job, task.stage}][wave]++;
  }
  Table table({"job", "stage", "tasks started per t-interval"});
  const char* names[] = {"A", "B", "C"};
  const char* stages[] = {"map", "reduce"};
  for (const auto& [key, by_wave] : waves) {
    std::string cells;
    for (const auto& [wave, count] : by_wave) {
      if (!cells.empty()) cells += ", ";
      cells += "t" + std::to_string(wave) + ":" + std::to_string(count);
    }
    table.add_row({names[key.first], stages[key.second], cells});
  }
  std::cout << table.to_string();
  std::cout << "makespan = " << format_double(r.makespan / t_unit, 2)
            << "t, avg JCT = " << format_double(r.avg_jct() / t_unit, 2)
            << "t\n\n";
}

}  // namespace

int main() {
  const auto ex = workload::make_motivating_example();
  std::cout << "Motivating example (paper §2.1): jobs A (18 maps of 1 core/"
               "2 GB), B and C (6 maps of 3 cores/1 GB each); every job has "
               "3 network-bound reduces.\nCluster: 3 machines x (6 cores, "
               "12 GB, 1 Gbps). t = "
            << ex.t << "s.\n\n";

  sched::DrfScheduler drf;
  auto drf_cfg = ex.config;
  const auto r_drf = sim::simulate(drf_cfg, ex.workload, drf);
  print_schedule(r_drf, ex.t);

  core::TetrisConfig tcfg;
  tcfg.fairness_knob = 0;
  tcfg.name = "tetris-packing";
  core::TetrisScheduler tetris(tcfg);
  auto tetris_cfg = ex.config;
  tetris_cfg.tracker = sim::TrackerMode::kUsage;
  const auto r_tetris = sim::simulate(tetris_cfg, ex.workload, tetris);
  print_schedule(r_tetris, ex.t);

  std::cout << "Packing exploits complementary demands (compute-bound maps "
               "with network-bound reduces) and avoids the fragmentation "
               "that slot/DRF allocation causes — every job finishes no "
               "later, most finish much earlier.\n";
  return 0;
}
