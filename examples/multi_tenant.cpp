// Multi-tenant operation: two queues share a cluster — a production queue
// of recurring pipelines and an ad-hoc analytics queue. Demonstrates
// queue-level fairness (paper §3.4 "jobs (or groups of jobs)"), fairness
// preemption, and CSV export of the run.
//
//   ./examples/multi_tenant [jobs] [machines] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/export.h"
#include "analysis/metrics.h"
#include "core/tetris_scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workload/profiles.h"
#include "workload/suite.h"

using namespace tetris;

int main(int argc, char** argv) {
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 40;
  const int num_machines = argc > 2 ? std::atoi(argv[2]) : 12;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  // Production queue (0): many steady jobs. Ad-hoc queue (1): a handful of
  // analysts — queue fairness should give the small queue a real share.
  workload::SuiteConfig wcfg;
  wcfg.num_jobs = num_jobs;
  wcfg.num_machines = num_machines;
  wcfg.task_scale = 0.06;
  wcfg.arrival_window = 0;
  wcfg.seed = seed;
  sim::Workload w = workload::make_suite_workload(wcfg);
  for (std::size_t j = 0; j < w.jobs.size(); ++j) {
    w.jobs[j].queue = j % 5 == 0 ? 1 : 0;  // every fifth job is ad-hoc
  }

  sim::SimConfig cfg;
  cfg.num_machines = num_machines;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.tracker = sim::TrackerMode::kUsage;
  cfg.collect_timeline = true;
  cfg.timeline_period = 10;

  const auto mean_jct_of_queue = [&](const sim::SimResult& r, int queue) {
    double sum = 0;
    int n = 0;
    for (std::size_t j = 0; j < r.jobs.size(); ++j) {
      if (w.jobs[j].queue != queue || r.jobs[j].finish < 0) continue;
      sum += r.jobs[j].completion_time();
      n++;
    }
    return n ? sum / n : 0.0;
  };

  Table t({"configuration", "avg JCT queue 0 (s)", "avg JCT queue 1 (s)",
           "makespan (s)", "preemptions"});
  for (int mode = 0; mode < 3; ++mode) {
    core::TetrisConfig tcfg;
    tcfg.fairness_knob = 0.5;
    std::string label;
    if (mode == 0) {
      label = "job fairness";
    } else if (mode == 1) {
      label = "queue fairness";
      tcfg.fairness_over_queues = true;
    } else {
      label = "queue fairness + preemption";
      tcfg.fairness_over_queues = true;
      tcfg.preempt_for_fairness = true;
    }
    core::TetrisScheduler tetris(tcfg);
    const auto r = sim::simulate(cfg, w, tetris);
    if (!r.completed) std::cerr << "warning: run incomplete\n";
    t.add_row({label, format_double(mean_jct_of_queue(r, 0), 1),
               format_double(mean_jct_of_queue(r, 1), 1),
               format_double(r.makespan, 1),
               std::to_string(tetris.stats().preemptions)});
    if (mode == 1) {
      analysis::export_result("bench_results/multi_tenant", r);
    }
  }
  std::cout << "multi-tenant cluster: " << w.jobs.size() << " jobs ("
            << w.jobs.size() / 5 << " ad-hoc) on " << num_machines
            << " machines\n\n"
            << t.to_string()
            << "\n(queue fairness shields the small ad-hoc queue from the "
               "production queue's bulk; CSVs of the queue-fair run are in "
               "bench_results/multi_tenant_*.csv)\n";
  return 0;
}
