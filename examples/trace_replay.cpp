// Trace-driven simulation from the command line:
//
//   ./examples/trace_replay generate <out.trace> [jobs] [machines] [seed]
//       Synthesizes a Facebook-like trace and writes it to a file.
//   ./examples/trace_replay run <in.trace> <scheduler> [machines]
//       Replays a trace under one of: tetris, slot, drf, srtf, random.
//
// Together the two subcommands demonstrate the full trace pipeline the
// evaluation uses: generate once, replay under every scheduler, diff.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/tetris_scheduler.h"
#include "sched/drf_scheduler.h"
#include "sched/random_scheduler.h"
#include "sched/slot_scheduler.h"
#include "sched/srtf_scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workload/facebook.h"
#include "workload/profiles.h"
#include "workload/trace_io.h"

using namespace tetris;

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  trace_replay generate <out.trace> [jobs] [machines] [seed]\n"
         "  trace_replay run <in.trace> <tetris|slot|drf|srtf|random> "
         "[machines]\n";
  return 2;
}

int generate(int argc, char** argv) {
  if (argc < 3) return usage();
  workload::FacebookConfig cfg;
  cfg.num_jobs = argc > 3 ? std::atoi(argv[3]) : 80;
  cfg.num_machines = argc > 4 ? std::atoi(argv[4]) : 20;
  cfg.seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 7;
  cfg.task_scale = 0.5;
  cfg.arrival_window = 800;
  const auto w = workload::make_facebook_workload(cfg);
  if (!workload::write_trace_file(argv[2], w)) {
    std::cerr << "cannot write " << argv[2] << "\n";
    return 1;
  }
  std::cout << "wrote " << w.jobs.size() << " jobs / " << w.total_tasks()
            << " tasks to " << argv[2] << " (for a " << cfg.num_machines
            << "-machine cluster)\n";
  return 0;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name) {
  if (name == "tetris") return std::make_unique<core::TetrisScheduler>();
  if (name == "slot") return std::make_unique<sched::SlotScheduler>();
  if (name == "drf") return std::make_unique<sched::DrfScheduler>();
  if (name == "srtf") return std::make_unique<sched::SrtfScheduler>();
  if (name == "random") return std::make_unique<sched::RandomScheduler>();
  return nullptr;
}

int run(int argc, char** argv) {
  if (argc < 4) return usage();
  sim::Workload w;
  try {
    w = workload::read_trace_file(argv[2]);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  auto scheduler = make_scheduler(argv[3]);
  if (!scheduler) return usage();

  sim::SimConfig cfg;
  cfg.num_machines = argc > 4 ? std::atoi(argv[4]) : 20;
  cfg.machine_capacity = workload::facebook_machine();
  if (std::string(argv[3]) == "tetris") {
    cfg.tracker = sim::TrackerMode::kUsage;
  }
  const auto r = sim::simulate(cfg, w, *scheduler);
  if (!r.completed) {
    std::cerr << "warning: workload did not drain before max_time\n";
  }

  Table t({"metric", "value"});
  t.add_row({"scheduler", r.scheduler_name});
  t.add_row({"jobs", std::to_string(r.jobs.size())});
  t.add_row({"tasks", std::to_string(r.tasks.size())});
  t.add_row({"makespan (s)", format_double(r.makespan, 1)});
  t.add_row({"avg JCT (s)", format_double(r.avg_jct(), 1)});
  t.add_row({"median JCT (s)", format_double(r.median_jct(), 1)});
  t.add_row({"scheduler passes",
             std::to_string(r.scheduler_cost.invocations)});
  t.add_row({"mean pass (ms)",
             format_double(r.scheduler_cost.mean_seconds() * 1e3, 3)});
  std::cout << t.to_string();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return generate(argc, argv);
  if (cmd == "run") return run(argc, argv);
  return usage();
}
