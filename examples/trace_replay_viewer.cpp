// The full tracing pipeline on the paper's §2.1 motivating workload
// (DESIGN.md §10): record a traced run, export it for humans (Chrome
// trace_event JSON for ui.perfetto.dev, flat CSV for pandas), replay it
// from the recorded seed and assert event-for-event equality, then show
// what a real divergence looks like by diffing against a different seed.
//
// Writes motivating.trace / motivating_trace.json / motivating_trace.csv
// into the working directory.
#include <iostream>
#include <string>

#include "analysis/trace_export.h"
#include "core/tetris_scheduler.h"
#include "sim/simulator.h"
#include "trace/io.h"
#include "trace/replayer.h"
#include "util/table.h"
#include "workload/motivating.h"

using namespace tetris;

namespace {

// One traced Tetris run of the motivating workload. Everything the run
// depends on (workload, cluster, seed) is rebuilt from scratch each call,
// which is exactly what the replay contract requires of a rerun.
trace::TraceLog traced_run(std::uint64_t seed) {
  auto ex = workload::make_motivating_example();
  ex.config.seed = seed;
  ex.config.trace.enabled = true;
  core::TetrisScheduler tetris;
  return sim::simulate(ex.config, ex.workload, tetris).trace_log;
}

}  // namespace

int main() {
  std::cout << "Tracing & replay on the motivating workload (paper §2.1)\n\n";

  // 1. Record.
  const std::uint64_t seed = 1;
  const trace::TraceLog log = traced_run(seed);
  std::cout << "recorded " << log.events.size() << " events (scheduler '"
            << log.scheduler << "', seed " << log.seed << ", dropped "
            << log.dropped << ")\n";

  // 2. Export: binary log, Perfetto-loadable JSON, flat CSV.
  trace::write_log_file("motivating.trace", log);
  analysis::write_chrome_trace("motivating_trace.json", log);
  analysis::write_trace_csv("motivating_trace.csv", log);
  std::cout << "wrote motivating.trace, motivating_trace.json (open at "
               "ui.perfetto.dev), motivating_trace.csv\n\n";

  // A taste of what's inside: the first few placement decisions with
  // their packing scores.
  Table t({"time", "event"});
  int shown = 0;
  for (const trace::Event& ev : log.events) {
    if (ev.kind != trace::EventKind::kPlacement) continue;
    t.add_row({format_double(ev.time, 2), trace::describe(ev)});
    if (++shown == 5) break;
  }
  std::cout << "first placements:\n" << t.to_string() << "\n";

  // 3. Replay: reload the file and re-execute from the recorded seed.
  const trace::TraceLog reloaded = trace::read_log_file("motivating.trace");
  trace::Replayer replayer(reloaded);
  const trace::ReplayReport report =
      replayer.replay([&] { return traced_run(reloaded.seed); });
  std::cout << "replay: " << report.message << "\n";
  if (!report.ok) return 1;

  // 4. Diff against a run that really is different (another seed) to show
  // where the streams split. (Same comparison trace_diff does from files.)
  const trace::TraceLog other = traced_run(seed + 1);
  const trace::Divergence d = trace::first_divergence(reloaded, other);
  if (d.identical) {
    std::cout << "diff vs seed " << seed + 1
              << ": identical (this workload is placement-stable across "
                 "these seeds)\n";
  } else {
    std::cout << "diff vs seed " << seed + 1 << ": first divergence at event "
              << d.index << "\n" << d.description << "\n";
  }
  return 0;
}
