// Interactive view of the paper's fairness/performance trade-off (§3.4):
// sweep the knob f on one workload and watch gains and slowdowns move.
//
//   ./examples/fairness_tradeoff [jobs] [machines] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/metrics.h"
#include "core/tetris_scheduler.h"
#include "sched/slot_scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workload/profiles.h"
#include "workload/suite.h"

using namespace tetris;

int main(int argc, char** argv) {
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 50;
  const int num_machines = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  workload::SuiteConfig wcfg;
  wcfg.num_jobs = num_jobs;
  wcfg.num_machines = num_machines;
  wcfg.task_scale = 0.08;
  wcfg.arrival_window = 0;  // a standing backlog makes fairness bind
  wcfg.seed = seed;
  const auto w = workload::make_suite_workload(wcfg);

  sim::SimConfig cfg;
  cfg.num_machines = num_machines;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.collect_fairness = true;

  sched::SlotScheduler fair;
  const auto r_fair = sim::simulate(cfg, w, fair);
  std::cout << "workload: " << w.jobs.size() << " jobs, " << w.total_tasks()
            << " tasks (batch arrival); fair-scheduler makespan = "
            << format_double(r_fair.makespan, 0)
            << "s, avg JCT = " << format_double(r_fair.avg_jct(), 0)
            << "s\n\n";

  Table t({"fairness knob f", "makespan gain", "avg JCT gain", "% jobs slowed",
           "max slowdown"});
  for (double f : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9}) {
    core::TetrisConfig tcfg;
    tcfg.fairness_knob = f;
    core::TetrisScheduler tetris(tcfg);
    auto run_cfg = cfg;
    run_cfg.tracker = sim::TrackerMode::kUsage;
    const auto r = sim::simulate(run_cfg, w, tetris);
    const auto slow = analysis::slowdown_stats(r_fair, r);
    t.add_row(
        {format_double(f, 2),
         format_double(analysis::makespan_reduction(r_fair, r), 1) + "%",
         format_double(analysis::avg_jct_reduction(r_fair, r), 1) + "%",
         format_percent(slow.fraction_slowed),
         format_double(slow.max_slowdown_percent, 1) + "%"});
  }
  std::cout << t.to_string();
  std::cout << "\nf = 0 is the most efficient (and least fair) schedule; "
               "f -> 1 approaches the fair scheduler. The paper's operating "
               "point is f = 0.25.\n";
  return 0;
}
