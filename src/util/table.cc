#include "util/table.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace tetris {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs headers");
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("row width does not match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row_values(const std::vector<double>& values,
                             int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  return add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += std::string(widths[c], '-') + "  ";
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  return out + "\"";
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << csv_escape(cells[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_percent(double ratio, int precision) {
  return format_double(ratio * 100.0, precision) + "%";
}

bool write_file(const std::string& path, const std::string& content) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace tetris
