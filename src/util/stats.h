// Descriptive statistics used throughout the evaluation harness: summary
// moments, percentiles, empirical CDFs, Pearson correlation (Table 2) and
// 2-D histograms (Figure 2 heatmaps).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tetris {

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stdev = 0;
  double min = 0;
  double max = 0;
  double p25 = 0;
  double p50 = 0;
  double p75 = 0;
  double p90 = 0;
  double p99 = 0;
  // Coefficient of variation, stdev / mean (0 when mean == 0).
  double cov = 0;
};

Summary summarize(std::span<const double> xs);

double mean(std::span<const double> xs);
double stdev(std::span<const double> xs);

// Interpolated percentile; p in [0, 100]. Empty input yields 0.
double percentile(std::span<const double> xs, double p);

// Pearson correlation coefficient; 0 when either side is constant.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys);

// Empirical CDF as sorted (value, cumulative fraction) points, one per
// sample, suitable for plotting the paper's CDF figures (Figs. 4, 7).
struct CdfPoint {
  double value;
  double fraction;  // P(X <= value)
};
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

// Fraction of samples satisfying a threshold test; the building block for
// the "tightness" probabilities in Tables 3 and 6.
double fraction_above(std::span<const double> xs, double threshold);

// Fixed-bin 2-D histogram over [0,1]^2 for demand heatmaps (Figure 2).
// Inputs are clamped into range.
class Histogram2D {
 public:
  Histogram2D(std::size_t bins_x, std::size_t bins_y);

  void add(double x, double y);
  std::size_t count(std::size_t bx, std::size_t by) const;
  std::size_t bins_x() const { return bins_x_; }
  std::size_t bins_y() const { return bins_y_; }
  std::size_t total() const { return total_; }

  // CSV rows "bin_x,bin_y,count" (only non-empty cells).
  std::string to_csv() const;

 private:
  std::size_t bins_x_;
  std::size_t bins_y_;
  std::vector<std::size_t> cells_;
  std::size_t total_ = 0;
};

// Online mean/variance accumulator (Welford). Used by the demand estimator
// to build per-phase statistics from completed tasks.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stdev() const;
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double max_ = 0;
};

}  // namespace tetris
