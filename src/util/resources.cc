#include "util/resources.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace tetris {

std::string_view resource_name(Resource r) {
  switch (r) {
    case Resource::kCpu:
      return "cpu";
    case Resource::kMem:
      return "mem";
    case Resource::kDiskRead:
      return "disk_r";
    case Resource::kDiskWrite:
      return "disk_w";
    case Resource::kNetIn:
      return "net_in";
    case Resource::kNetOut:
      return "net_out";
  }
  return "?";
}

Resources& Resources::operator+=(const Resources& o) {
  for (std::size_t i = 0; i < kNumResources; ++i) v_[i] += o.v_[i];
  return *this;
}

Resources& Resources::operator-=(const Resources& o) {
  for (std::size_t i = 0; i < kNumResources; ++i) v_[i] -= o.v_[i];
  return *this;
}

Resources& Resources::operator*=(double s) {
  for (double& x : v_) x *= s;
  return *this;
}

Resources& Resources::operator/=(double s) {
  for (double& x : v_) x /= s;
  return *this;
}

bool Resources::fits_within(const Resources& capacity, double eps) const {
  for (std::size_t i = 0; i < kNumResources; ++i) {
    // Scale the slack with the magnitude so large bandwidth numbers do not
    // fail the test on representation noise.
    const double slack = eps * std::max(1.0, std::abs(capacity.v_[i]));
    if (v_[i] > capacity.v_[i] + slack) return false;
  }
  return true;
}

Resources Resources::normalized_by(const Resources& denom) const {
  Resources out;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    out.v_[i] = denom.v_[i] > 0 ? v_[i] / denom.v_[i] : 0.0;
  }
  return out;
}

Resources Resources::cwise_min(const Resources& o) const {
  Resources out;
  for (std::size_t i = 0; i < kNumResources; ++i)
    out.v_[i] = std::min(v_[i], o.v_[i]);
  return out;
}

Resources Resources::cwise_max(const Resources& o) const {
  Resources out;
  for (std::size_t i = 0; i < kNumResources; ++i)
    out.v_[i] = std::max(v_[i], o.v_[i]);
  return out;
}

Resources Resources::clamped_to(const Resources& hi) const {
  Resources out;
  for (std::size_t i = 0; i < kNumResources; ++i)
    out.v_[i] = std::clamp(v_[i], 0.0, hi.v_[i]);
  return out;
}

Resources Resources::max_zero() const {
  Resources out;
  for (std::size_t i = 0; i < kNumResources; ++i)
    out.v_[i] = std::max(0.0, v_[i]);
  return out;
}

double Resources::dot(const Resources& o) const {
  double s = 0;
  for (std::size_t i = 0; i < kNumResources; ++i) s += v_[i] * o.v_[i];
  return s;
}

double Resources::sum() const {
  double s = 0;
  for (double x : v_) s += x;
  return s;
}

double Resources::l2_norm() const { return std::sqrt(dot(*this)); }

double Resources::max_component() const {
  return *std::max_element(v_.begin(), v_.end());
}

double Resources::min_component() const {
  return *std::min_element(v_.begin(), v_.end());
}

bool Resources::is_zero(double eps) const {
  return std::all_of(v_.begin(), v_.end(),
                     [eps](double x) { return std::abs(x) <= eps; });
}

bool Resources::is_non_negative(double eps) const {
  return std::all_of(v_.begin(), v_.end(),
                     [eps](double x) { return x >= -eps; });
}

std::string Resources::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Resources& r) {
  os << "{";
  bool first = true;
  for (Resource d : all_resources()) {
    if (!first) os << ", ";
    first = false;
    os << resource_name(d) << "=" << r[d];
  }
  return os << "}";
}

}  // namespace tetris
