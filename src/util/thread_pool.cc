#include "util/thread_pool.h"

#include <stdexcept>

namespace tetris::util {

namespace {
// Depth of parallel_for frames on the current thread, counting both
// worker drains and inline nested runs. A nested submit must not block on
// pool workers (they may all be busy inside the outer batch), so it runs
// inline whenever this is non-zero.
thread_local int tls_parallel_depth = 0;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1)
    throw std::invalid_argument("ThreadPool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(Batch& b) {
  tls_parallel_depth++;
  while (true) {
    const int i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.n) break;
    try {
      (*b.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!b.error || i < b.error_index) {
        b.error = std::current_exception();
        b.error_index = i;
      }
    }
  }
  tls_parallel_depth--;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    Batch* b = batch_;
    // batch_ is nullptr when the caller already finished and retired the
    // batch before this worker woke up — nothing left to join.
    if (b == nullptr) continue;
    b->in_flight++;
    lock.unlock();
    drain(*b);
    lock.lock();
    b->in_flight--;
    if (b->in_flight == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (tls_parallel_depth > 0) {
    // Nested submit: run inline. An exception propagates from the first
    // (and therefore lowest) failing index.
    tls_parallel_depth++;
    try {
      for (int i = 0; i < n; ++i) fn(i);
    } catch (...) {
      tls_parallel_depth--;
      throw;
    }
    tls_parallel_depth--;
    return;
  }
  Batch b;
  b.fn = &fn;
  b.n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &b;
    epoch_++;
  }
  work_cv_.notify_all();
  drain(b);
  // The caller only leaves drain() once every index is claimed; wait for
  // workers still finishing theirs, then retire the batch so late wakers
  // cannot touch the dead stack frame.
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return b.in_flight == 0; });
    batch_ = nullptr;
  }
  if (b.error) std::rethrow_exception(b.error);
}

void ThreadPool::run_barrier(ThreadPool* pool, int n,
                             const std::function<void(int)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(n, fn);
    return;
  }
  for (int i = 0; i < n; ++i) fn(i);
}

}  // namespace tetris::util
