// Fixed-dimension resource vectors for multi-resource scheduling.
//
// The paper (Tables 4 and 5) schedules along six resource dimensions:
// CPU cores, memory, disk read/write bandwidth and network in/out
// bandwidth. `Resources` is a small value type holding one quantity per
// dimension with the vector arithmetic the packing heuristics need
// (component-wise ops, dominance tests, dot products, norms).
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

namespace tetris {

// The resource dimensions, in a fixed order used by every vector below.
enum class Resource : int {
  kCpu = 0,      // cores
  kMem = 1,      // bytes (we use GB in configs for readability)
  kDiskRead = 2, // bytes/sec
  kDiskWrite = 3,
  kNetIn = 4,    // bytes/sec, last-hop link into the machine
  kNetOut = 5,   // bytes/sec, last-hop link out of the machine
};

inline constexpr std::size_t kNumResources = 6;

// Short lowercase name for a dimension ("cpu", "mem", ...).
std::string_view resource_name(Resource r);

// All dimensions, for range-for loops.
constexpr std::array<Resource, kNumResources> all_resources() {
  return {Resource::kCpu,      Resource::kMem,    Resource::kDiskRead,
          Resource::kDiskWrite, Resource::kNetIn, Resource::kNetOut};
}

// A point in the d=6 resource space. Used for machine capacities, machine
// availabilities, task peak demands and allocations alike.
class Resources {
 public:
  constexpr Resources() : v_{} {}
  constexpr explicit Resources(const std::array<double, kNumResources>& v)
      : v_(v) {}

  // Named constructor covering the common "cpu/mem/disk/net" shorthand where
  // disk read == write and net in == out.
  static constexpr Resources of(double cpu, double mem, double disk,
                                double net) {
    return Resources({cpu, mem, disk, disk, net, net});
  }
  static constexpr Resources full(double cpu, double mem, double disk_r,
                                  double disk_w, double net_in,
                                  double net_out) {
    return Resources({cpu, mem, disk_r, disk_w, net_in, net_out});
  }
  // A vector with the same value in every dimension.
  static constexpr Resources uniform(double x) {
    return Resources({x, x, x, x, x, x});
  }

  constexpr double operator[](Resource r) const {
    return v_[static_cast<std::size_t>(r)];
  }
  constexpr double& operator[](Resource r) {
    return v_[static_cast<std::size_t>(r)];
  }
  constexpr double at(std::size_t i) const { return v_[i]; }
  constexpr double& at(std::size_t i) { return v_[i]; }

  double cpu() const { return v_[0]; }
  double mem() const { return v_[1]; }
  double disk_read() const { return v_[2]; }
  double disk_write() const { return v_[3]; }
  double net_in() const { return v_[4]; }
  double net_out() const { return v_[5]; }

  Resources& operator+=(const Resources& o);
  Resources& operator-=(const Resources& o);
  Resources& operator*=(double s);
  Resources& operator/=(double s);

  friend Resources operator+(Resources a, const Resources& b) {
    return a += b;
  }
  friend Resources operator-(Resources a, const Resources& b) {
    return a -= b;
  }
  friend Resources operator*(Resources a, double s) { return a *= s; }
  friend Resources operator*(double s, Resources a) { return a *= s; }
  friend Resources operator/(Resources a, double s) { return a /= s; }
  friend bool operator==(const Resources& a, const Resources& b) {
    return a.v_ == b.v_;
  }

  // True iff every component of this vector fits within `capacity`,
  // tolerating tiny floating-point slack. This is the paper's
  // "peak usage of each resource can be accommodated" test; using it as the
  // admission gate is what makes over-allocation impossible under Tetris.
  bool fits_within(const Resources& capacity, double eps = 1e-9) const;

  // Component-wise division: this[i] / denom[i]. Dimensions where denom is
  // zero yield zero (a machine with no capacity for a resource contributes
  // nothing to a normalized score). Used to normalize demands and
  // availabilities by machine capacity before computing alignment.
  Resources normalized_by(const Resources& denom) const;

  // Component-wise min / max.
  Resources cwise_min(const Resources& o) const;
  Resources cwise_max(const Resources& o) const;
  // Component-wise clamp to [0, hi].
  Resources clamped_to(const Resources& hi) const;
  // Component-wise max(0, x): negatives arise transiently from accounting
  // and must never reach scoring code.
  Resources max_zero() const;

  double dot(const Resources& o) const;
  // Sum of all components; with normalized vectors this is the paper's
  // "resource consumption of a task ... sum across all the (normalized)
  // resource dimensions".
  double sum() const;
  double l2_norm() const;
  double max_component() const;
  double min_component() const;

  bool is_zero(double eps = 1e-12) const;
  // True iff every component is >= 0 (within eps slack below zero).
  bool is_non_negative(double eps = 1e-9) const;

  std::string to_string() const;

 private:
  std::array<double, kNumResources> v_;
};

std::ostream& operator<<(std::ostream& os, const Resources& r);

}  // namespace tetris
