#include "util/soa_planes.h"

#include <algorithm>
#include <cmath>

namespace tetris::util {

void ResourcePlanes::reset(std::size_t lanes) {
  lanes_ = lanes;
  padded_ = (lanes + kLanePad - 1) / kLanePad * kLanePad;
  if (padded_ == 0) padded_ = kLanePad;  // a valid (all-pad) block to read
  data_.assign(kNumResources * padded_, 0.0);
}

void ResourcePlanes::set(std::size_t lane, const Resources& v) {
  for (std::size_t r = 0; r < kNumResources; ++r)
    mutable_plane(r)[lane] = v.at(r);
}

Resources ResourcePlanes::gather(std::size_t lane) const {
  Resources out;
  for (std::size_t r = 0; r < kNumResources; ++r) out.at(r) = plane(r)[lane];
  return out;
}

void ResourcePlanes::sub_max_zero(std::size_t lane, const Resources& d) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    double* p = mutable_plane(r) + lane;
    *p = std::max(0.0, *p - d.at(r));
  }
}

void ResourcePlanes::add_cwise_min(std::size_t lane, const Resources& d,
                                   const Resources& cap) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    double* p = mutable_plane(r) + lane;
    *p = std::min(*p + d.at(r), cap.at(r));
  }
}

ResourcePlanes ResourcePlanes::rebuilt_from(const std::vector<Resources>& v) {
  ResourcePlanes out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out.set(i, v[i]);
  return out;
}

bool ResourcePlanes::identical_to(const ResourcePlanes& o) const {
  return lanes_ == o.lanes_ && padded_ == o.padded_ && data_ == o.data_;
}

}  // namespace tetris::util
