// Fixed-size log-bucketed latency histogram, so long streaming runs can
// report pass-latency percentiles without retaining one sample per pass
// (a 10M-task run makes millions of passes; PassSample vectors would
// defeat the flat-memory contract). Buckets are power-of-two octaves over
// nanoseconds with 4 linear sub-buckets each, giving ~±12.5% quantile
// resolution across 1 ns .. ~5000 s — ample for p50/p99 reporting.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace tetris::util {

class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 4;
  static constexpr int kOctaves = 64;

  void add_seconds(double seconds) {
    double nanos = seconds * 1e9;
    if (nanos < 1.0) nanos = 1.0;
    add_nanos(static_cast<std::uint64_t>(nanos));
  }

  void add_nanos(std::uint64_t nanos) {
    if (nanos == 0) nanos = 1;
    const int octave = std::bit_width(nanos) - 1;  // 2^octave <= nanos
    const std::uint64_t lo = std::uint64_t{1} << octave;
    // Linear split of [lo, 2*lo) into kSubBuckets; lo >= 4 keeps the
    // division exact enough (tiny octaves collapse harmlessly).
    const int sub = octave == 0
                        ? 0
                        : static_cast<int>(((nanos - lo) * kSubBuckets) / lo);
    counts_[static_cast<std::size_t>(octave * kSubBuckets + sub)]++;
    total_++;
  }

  std::uint64_t count() const { return total_; }

  // Interpolated quantile in seconds; q in [0, 1]. Returns the midpoint of
  // the bucket containing the q-th sample. 0 when empty.
  double quantile_seconds(double q) const {
    if (total_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    std::uint64_t rank = static_cast<std::uint64_t>(q *
                                                    static_cast<double>(
                                                        total_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      seen += counts_[b];
      if (seen > rank) {
        const int octave = static_cast<int>(b) / kSubBuckets;
        const int sub = static_cast<int>(b) % kSubBuckets;
        const double lo = static_cast<double>(std::uint64_t{1} << octave);
        const double width = lo / kSubBuckets;
        const double mid_nanos = lo + width * (sub + 0.5);
        return mid_nanos * 1e-9;
      }
    }
    return 0;
  }

  LatencyHistogram& operator+=(const LatencyHistogram& o) {
    for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += o.counts_[b];
    total_ += o.total_;
    return *this;
  }

 private:
  std::array<std::uint64_t, kSubBuckets * kOctaves> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace tetris::util
