// Structure-of-arrays storage for per-lane resource vectors (DESIGN.md
// §12). Where `std::vector<Resources>` interleaves the six dimensions of
// every machine (array-of-structs), `ResourcePlanes` keeps one contiguous
// double array *per resource dimension* — a "plane" — so a vector kernel
// can load W machines' cpu (or mem, ...) values with a single aligned
// load. Lane counts are rounded up to `kLanePad` and the padding lanes
// are pinned to zero, so kernels may always read full blocks without a
// bounds branch.
//
// The mutation ops mirror the scheduler-context bookkeeping expressions
// bit for bit: `sub_max_zero` is `(lane - d).max_zero()`,
// `add_cwise_min` is `(lane + d).cwise_min(cap)` — identical per-component
// operations in identical order, so a context backed by planes produces
// exactly the availability values the array-of-structs code did.
#pragma once

#include <cstddef>
#include <vector>

#include "util/resources.h"

namespace tetris::util {

class ResourcePlanes {
 public:
  // Lanes are padded to a multiple of this. 8 doubles = 64 bytes covers
  // AVX2 (4-wide) and SSE (2-wide) blocks and keeps each plane row
  // starting on a cache line when the backing allocation is aligned.
  static constexpr std::size_t kLanePad = 8;

  ResourcePlanes() = default;
  explicit ResourcePlanes(std::size_t lanes) { reset(lanes); }

  // Reset to `lanes` all-zero lanes (plus zero padding).
  void reset(std::size_t lanes);

  std::size_t lanes() const { return lanes_; }
  std::size_t padded_lanes() const { return padded_; }

  // Contiguous plane for resource dimension `r`; `padded_lanes()` doubles,
  // the tail `padded_lanes() - lanes()` of which are always zero.
  const double* plane(std::size_t r) const { return data_.data() + r * padded_; }

  // Read or write one lane as a `Resources` value.
  void set(std::size_t lane, const Resources& v);
  Resources gather(std::size_t lane) const;

  // lane = (lane - d).max_zero()  — the placement-commit expression.
  void sub_max_zero(std::size_t lane, const Resources& d);
  // lane = (lane + d).cwise_min(cap)  — the preemption-refund expression.
  void add_cwise_min(std::size_t lane, const Resources& d,
                     const Resources& cap);

  // Build planes from an array-of-structs snapshot. The coherence
  // property tests compare a mutated ResourcePlanes against
  // `rebuilt_from` of the equivalent Resources vector.
  static ResourcePlanes rebuilt_from(const std::vector<Resources>& v);

  // Exact (bitwise, via ==) equality over every lane *including padding*,
  // so a mutation that strays into the pad is caught.
  bool identical_to(const ResourcePlanes& o) const;

 private:
  double* mutable_plane(std::size_t r) { return data_.data() + r * padded_; }

  std::size_t lanes_ = 0;
  std::size_t padded_ = 0;
  std::vector<double> data_;  // kNumResources planes of padded_ doubles
};

}  // namespace tetris::util
