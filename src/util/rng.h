// Deterministic random number generation for workload synthesis and
// failure injection. One `Rng` per logical stream keeps experiments
// reproducible when modules draw in different orders.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace tetris {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  // Derive an independent child stream; used so that, e.g., arrival times
  // and task demands do not perturb each other when one knob changes.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  double normal(double mean, double stdev) {
    return std::normal_distribution<double>(mean, stdev)(engine_);
  }

  // Lognormal parameterized by the *target* mean and coefficient of
  // variation of the resulting distribution (not of the underlying normal).
  // This is how the trace generator hits the paper's published CoVs
  // (1.52 / 1.6 / 2.6 / 1.9 for cpu / mem / disk / net).
  double lognormal_mean_cov(double mean, double cov);

  // Bounded Pareto on [lo, hi] with shape alpha; heavy-tailed job sizes.
  double bounded_pareto(double lo, double hi, double alpha);

  // Pick an index in [0, weights.size()) with probability proportional to
  // weights[i].
  std::size_t weighted_pick(std::span<const double> weights);

  // Pick k distinct indices uniformly from [0, n). k may exceed n, in which
  // case all n indices are returned.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tetris
