// Fixed-size thread pool for the scheduler's sharded scans (DESIGN.md
// §9): one blocking parallel_for at a time, no task queue, no work
// stealing. Workers are started once and reused across scheduling passes
// — thread creation per pass would dwarf a sub-millisecond scan.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tetris::util {

// parallel_for(n, fn) runs fn(0) .. fn(n-1) across the pool's workers
// plus the calling thread and returns once every index completed. If any
// indices threw, the exception of the lowest-numbered failing index is
// rethrown (the rest of the batch still runs to completion first, so the
// caller never races a half-finished batch). A parallel_for issued from
// inside a worker — a nested submit — runs inline on that worker instead
// of blocking on pool threads that may never free up, so it cannot
// deadlock. n == 0 returns immediately without touching the pool.
class ThreadPool {
 public:
  // Starts `num_threads` (>= 1) workers immediately.
  explicit ThreadPool(int num_threads);
  // Joins all workers; must not be called while a parallel_for is live.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  void parallel_for(int n, const std::function<void(int)>& fn);

  // Barrier helper for callers with an *optional* pool (DESIGN.md §14.5):
  // fans fn(0) .. fn(n-1) out on `pool` when one is given, or runs them
  // inline on the calling thread when `pool` is null. Either way it
  // returns only after every index completed — the code after the call
  // observes exactly the state a serial loop would have produced, which
  // is what lets the federated driver swap its per-cell advance loop for
  // a pool fan-out without perturbing anything downstream.
  static void run_barrier(ThreadPool* pool, int n,
                          const std::function<void(int)>& fn);

 private:
  // One batch lives on the caller's stack for the duration of its
  // parallel_for; batch_ is nulled before the call returns, so a worker
  // waking late sees nullptr rather than a dangling frame.
  struct Batch {
    const std::function<void(int)>* fn = nullptr;
    int n = 0;
    std::atomic<int> next{0};  // next unclaimed index
    int in_flight = 0;         // workers currently inside the batch
    std::exception_ptr error;
    int error_index = 0;
  };

  void worker_loop();
  void drain(Batch& b);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new batch was published
  std::condition_variable done_cv_;  // caller: a worker left the batch
  Batch* batch_ = nullptr;
  std::uint64_t epoch_ = 0;  // bumped per batch so workers run each once
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tetris::util
