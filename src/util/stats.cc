#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace tetris {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stdev = stdev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.p25 = percentile(xs, 25);
  s.p50 = percentile(xs, 50);
  s.p75 = percentile(xs, 75);
  s.p90 = percentile(xs, 90);
  s.p99 = percentile(xs, 99);
  s.cov = s.mean != 0 ? s.stdev / s.mean : 0.0;
  return s;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("correlation inputs differ in length");
  if (xs.size() < 2) return 0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0 || syy == 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) /
                                  static_cast<double>(sorted.size())});
  }
  return cdf;
}

double fraction_above(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0;
  const auto n = std::count_if(xs.begin(), xs.end(),
                               [threshold](double x) { return x > threshold; });
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

Histogram2D::Histogram2D(std::size_t bins_x, std::size_t bins_y)
    : bins_x_(bins_x), bins_y_(bins_y), cells_(bins_x * bins_y, 0) {
  if (bins_x == 0 || bins_y == 0)
    throw std::invalid_argument("histogram needs at least one bin per axis");
}

void Histogram2D::add(double x, double y) {
  const auto bin = [](double v, std::size_t bins) {
    const double c = std::clamp(v, 0.0, 1.0);
    return std::min(static_cast<std::size_t>(c * static_cast<double>(bins)),
                    bins - 1);
  };
  cells_[bin(x, bins_x_) * bins_y_ + bin(y, bins_y_)]++;
  total_++;
}

std::size_t Histogram2D::count(std::size_t bx, std::size_t by) const {
  return cells_.at(bx * bins_y_ + by);
}

std::string Histogram2D::to_csv() const {
  std::ostringstream os;
  os << "bin_x,bin_y,count\n";
  for (std::size_t x = 0; x < bins_x_; ++x) {
    for (std::size_t y = 0; y < bins_y_; ++y) {
      if (const auto c = cells_[x * bins_y_ + y]; c > 0) {
        os << x << "," << y << "," << c << "\n";
      }
    }
  }
  return os.str();
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  max_ = n_ == 1 ? x : std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stdev() const { return std::sqrt(variance()); }

}  // namespace tetris
