// Unit helpers. The simulator works in base units throughout: seconds,
// bytes, bytes/sec, cores. Configs and benches use these constants so the
// code never hard-codes magic conversion factors.
#pragma once

namespace tetris {

// Simulation time, in seconds. Continuous-time discrete-event simulation;
// double precision is ample for hour-scale horizons.
using SimTime = double;

inline constexpr double kKB = 1024.0;
inline constexpr double kMB = 1024.0 * kKB;
inline constexpr double kGB = 1024.0 * kMB;
inline constexpr double kTB = 1024.0 * kGB;

// Network rates are quoted in bits/sec in specs; bytes/sec internally.
inline constexpr double kGbps = 1e9 / 8.0;
inline constexpr double kMbps = 1e6 / 8.0;

inline constexpr double kSeconds = 1.0;
inline constexpr double kMinutes = 60.0;
inline constexpr double kHours = 3600.0;

}  // namespace tetris
