#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tetris {

double Rng::lognormal_mean_cov(double mean, double cov) {
  if (mean <= 0) throw std::invalid_argument("lognormal mean must be > 0");
  if (cov < 0) throw std::invalid_argument("lognormal cov must be >= 0");
  if (cov == 0) return mean;
  // For LogNormal(mu, sigma): E = exp(mu + sigma^2/2),
  // CoV^2 = exp(sigma^2) - 1  =>  sigma^2 = ln(1 + CoV^2).
  const double sigma2 = std::log1p(cov * cov);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::lognormal_distribution<double>(mu, std::sqrt(sigma2))(engine_);
}

double Rng::bounded_pareto(double lo, double hi, double alpha) {
  if (!(lo > 0) || hi <= lo) throw std::invalid_argument("bad pareto bounds");
  if (alpha <= 0) throw std::invalid_argument("pareto alpha must be > 0");
  const double u = uniform(0.0, 1.0);
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the bounded Pareto.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0) throw std::invalid_argument("weights must sum to > 0");
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  if (k >= n) return idx;
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(
                                                        n - i - 1)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace tetris
