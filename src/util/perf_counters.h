// Lightweight hot-path instrumentation for the scheduling pass (paper
// §5.5, Table 8): plain counters bumped by the scheduler and by the
// simulator's context caches, aggregated into SimResult so benches can
// report *why* a pass was fast (cache hits, index skips) next to how fast
// it was. Counting is observation only — no counter may influence a
// scheduling decision, or the naive/optimized equivalence oracle breaks.
#pragma once

#include <cstddef>
#include <vector>

namespace tetris::util {

struct PerfCounters {
  // Scheduler-side (per candidate <group, machine> cell):
  long score_evals = 0;      // alignment scores computed
  long probes_issued = 0;    // ctx.probe() calls made by the scheduler
  long probe_reuses = 0;     // stale cells rescored from a kept probe
  long sticky_rejects = 0;   // stale cells skipped: rejection is monotone
  long fit_index_skips = 0;  // cells skipped by the free-capacity index
  long row_skips = 0;        // cells skipped: whole row fresh-and-rejected

  // SIMD scoring kernel (DESIGN.md §12). Unlike every other scan counter
  // these two depend on how cells group into vector blocks, which follows
  // shard boundaries — so they are stable for a fixed configuration but
  // legitimately differ across thread counts (and are excluded from the
  // cross-thread-count counter assertions).
  long simd_blocks = 0;        // full-width vector blocks evaluated
  long scalar_tail_evals = 0;  // batch lanes evaluated on the scalar tail

  // Simulator-side (SchedulerContext caches):
  long probe_cache_hits = 0;       // probes answered from the cross-pass memo
  long probe_cache_misses = 0;     // probes computed and memoized
  long estimate_cache_hits = 0;    // group-estimate memo hits
  long estimate_cache_misses = 0;  // group-estimate recomputes
  long avail_cache_hits = 0;       // machines whose availability was reused
  long avail_recomputes = 0;       // machines rescanned by the tracker

  // Parallel-pass bookkeeping (DESIGN.md §9). reduction_nanos is wall
  // clock inside the reduction barriers (merge + ordered replay), so it
  // is the one counter that legitimately varies between repeated runs;
  // everything else is deterministic for a fixed thread count.
  long parallel_passes = 0;  // passes scanned with the sharded path
  long reduction_nanos = 0;  // wall clock spent in reduction barriers
  // score_evals split by column shard; empty when every pass ran serial.
  std::vector<long> shard_score_evals;

  // Streaming-ingestion bookkeeping (DESIGN.md §11); all zero in batch
  // mode. Peaks merge with max under +=, so aggregated counters report
  // the worst resident footprint any run reached.
  long jobs_admitted = 0;        // jobs ingested from the JobSource
  long jobs_retired = 0;         // completed jobs folded into records
  long peak_resident_jobs = 0;   // high-water mark of admitted - retired
  long peak_resident_tasks = 0;  // high-water mark of resident task count
  // Due arrivals held back because admission would cross a resident
  // ceiling. Streaming runs are bit-identical to batch only while this
  // stays 0 — a deferral shifts the job's effective arrival.
  long stream_deferrals = 0;

  // Federated driver bookkeeping (DESIGN.md §14.5); all zero outside
  // simulate_federated. cell_advance_nanos is wall clock inside the
  // per-event advance fan-out (serial loop or pool barrier), so like
  // reduction_nanos it varies between repeated runs; idle_cell_skips —
  // live cells whose advance was skipped because they were quiescent up
  // to the event time with an empty admission queue — is deterministic
  // for a fixed configuration and identical at every cell_threads count.
  long cell_advance_nanos = 0;  // wall clock advancing cells per event
  long idle_cell_skips = 0;     // quiescent cells skipped by the driver

  PerfCounters& operator+=(const PerfCounters& o) {
    score_evals += o.score_evals;
    probes_issued += o.probes_issued;
    probe_reuses += o.probe_reuses;
    sticky_rejects += o.sticky_rejects;
    fit_index_skips += o.fit_index_skips;
    row_skips += o.row_skips;
    simd_blocks += o.simd_blocks;
    scalar_tail_evals += o.scalar_tail_evals;
    probe_cache_hits += o.probe_cache_hits;
    probe_cache_misses += o.probe_cache_misses;
    estimate_cache_hits += o.estimate_cache_hits;
    estimate_cache_misses += o.estimate_cache_misses;
    avail_cache_hits += o.avail_cache_hits;
    avail_recomputes += o.avail_recomputes;
    parallel_passes += o.parallel_passes;
    reduction_nanos += o.reduction_nanos;
    jobs_admitted += o.jobs_admitted;
    jobs_retired += o.jobs_retired;
    peak_resident_jobs = peak_resident_jobs > o.peak_resident_jobs
                             ? peak_resident_jobs
                             : o.peak_resident_jobs;
    peak_resident_tasks = peak_resident_tasks > o.peak_resident_tasks
                              ? peak_resident_tasks
                              : o.peak_resident_tasks;
    stream_deferrals += o.stream_deferrals;
    cell_advance_nanos += o.cell_advance_nanos;
    idle_cell_skips += o.idle_cell_skips;
    if (shard_score_evals.size() < o.shard_score_evals.size())
      shard_score_evals.resize(o.shard_score_evals.size(), 0);
    for (std::size_t i = 0; i < o.shard_score_evals.size(); ++i)
      shard_score_evals[i] += o.shard_score_evals[i];
    return *this;
  }
};

}  // namespace tetris::util
