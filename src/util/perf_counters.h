// Lightweight hot-path instrumentation for the scheduling pass (paper
// §5.5, Table 8): plain counters bumped by the scheduler and by the
// simulator's context caches, aggregated into SimResult so benches can
// report *why* a pass was fast (cache hits, index skips) next to how fast
// it was. Counting is observation only — no counter may influence a
// scheduling decision, or the naive/optimized equivalence oracle breaks.
#pragma once

namespace tetris::util {

struct PerfCounters {
  // Scheduler-side (per candidate <group, machine> cell):
  long score_evals = 0;      // alignment scores computed
  long probes_issued = 0;    // ctx.probe() calls made by the scheduler
  long probe_reuses = 0;     // stale cells rescored from a kept probe
  long sticky_rejects = 0;   // stale cells skipped: rejection is monotone
  long fit_index_skips = 0;  // cells skipped by the free-capacity index
  long row_skips = 0;        // cells skipped: whole row fresh-and-rejected

  // Simulator-side (SchedulerContext caches):
  long probe_cache_hits = 0;       // probes answered from the cross-pass memo
  long probe_cache_misses = 0;     // probes computed and memoized
  long estimate_cache_hits = 0;    // group-estimate memo hits
  long estimate_cache_misses = 0;  // group-estimate recomputes
  long avail_cache_hits = 0;       // machines whose availability was reused
  long avail_recomputes = 0;       // machines rescanned by the tracker

  PerfCounters& operator+=(const PerfCounters& o) {
    score_evals += o.score_evals;
    probes_issued += o.probes_issued;
    probe_reuses += o.probe_reuses;
    sticky_rejects += o.sticky_rejects;
    fit_index_skips += o.fit_index_skips;
    row_skips += o.row_skips;
    probe_cache_hits += o.probe_cache_hits;
    probe_cache_misses += o.probe_cache_misses;
    estimate_cache_hits += o.estimate_cache_hits;
    estimate_cache_misses += o.estimate_cache_misses;
    avail_cache_hits += o.avail_cache_hits;
    avail_recomputes += o.avail_recomputes;
    return *this;
  }
};

}  // namespace tetris::util
