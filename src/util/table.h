// Minimal fixed-width table and CSV emitters so every bench binary prints
// the paper's tables in a uniform, diff-friendly format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace tetris {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  Table& add_row_values(const std::vector<double>& values, int precision = 2);

  std::size_t num_rows() const { return rows_.size(); }

  // Aligned, human-readable rendering.
  std::string to_string() const;
  // RFC-ish CSV with quoting of separators/quotes.
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (helper for table cells).
std::string format_double(double v, int precision = 2);
// Formats a ratio as a percentage string, e.g. 0.283 -> "28.3%".
std::string format_percent(double ratio, int precision = 1);

// Writes `content` to `path`, creating parent directories. Returns false on
// failure (benches treat output files as best-effort, results also go to
// stdout).
bool write_file(const std::string& path, const std::string& content);

}  // namespace tetris
