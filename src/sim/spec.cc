#include "sim/spec.h"

#include <algorithm>
#include <sstream>

namespace tetris::sim {

std::size_t Workload::total_tasks() const {
  std::size_t n = 0;
  for (const auto& job : jobs)
    for (const auto& stage : job.stages) n += stage.tasks.size();
  return n;
}

namespace {

// Detects cycles among stage deps with an iterative three-color DFS.
bool has_cycle(const JobSpec& job) {
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(job.stages.size(), Color::kWhite);
  std::vector<std::pair<int, std::size_t>> stack;  // (stage, next dep index)
  for (int root = 0; root < static_cast<int>(job.stages.size()); ++root) {
    if (color[root] != Color::kWhite) continue;
    stack.emplace_back(root, 0);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [s, di] = stack.back();
      const auto& deps = job.stages[s].deps;
      if (di < deps.size()) {
        const int d = deps[di++];
        if (color[d] == Color::kGray) return true;
        if (color[d] == Color::kWhite) {
          color[d] = Color::kGray;
          stack.emplace_back(d, 0);
        }
      } else {
        color[s] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

// Constraint clauses that can be checked from the spec alone; label
// existence against the cluster needs the declared set (the overload
// below). `declared` may be null (spec-only validation).
std::string validate_constraint(const JobSpec& job, int s,
                                const std::vector<std::string>* declared) {
  std::ostringstream err;
  const PlacementConstraint& c = job.stages[static_cast<std::size_t>(s)].constraint;
  auto check_labels = [&](const std::vector<std::string>& labels,
                          const char* clause) -> std::string {
    for (const auto& label : labels) {
      if (label.empty()) {
        err << "job '" << job.name << "' stage " << s << " constraint has an "
            << "empty " << clause << " label";
        return err.str();
      }
      if (declared != nullptr &&
          std::find(declared->begin(), declared->end(), label) ==
              declared->end()) {
        err << "job '" << job.name << "' stage " << s << " constraint "
            << clause << "s label '" << label
            << "' which no machine declares (SimConfig::machine_labels)";
        return err.str();
      }
    }
    return "";
  };
  if (auto msg = check_labels(c.require_labels, "require"); !msg.empty())
    return msg;
  if (auto msg = check_labels(c.forbid_labels, "forbid"); !msg.empty())
    return msg;
  for (const auto& label : c.require_labels) {
    if (std::find(c.forbid_labels.begin(), c.forbid_labels.end(), label) !=
        c.forbid_labels.end()) {
      err << "job '" << job.name << "' stage " << s << " constraint both "
          << "requires and forbids label '" << label << "'";
      return err.str();
    }
  }
  return "";
}

std::string validate_impl(const JobSpec& job,
                          const std::vector<std::string>* declared) {
  std::ostringstream err;
  const int n = static_cast<int>(job.stages.size());
  if (n == 0) return "job '" + job.name + "' has no stages";
  if (job.arrival < 0) return "job '" + job.name + "' has negative arrival";
  for (int s = 0; s < n; ++s) {
    const auto& stage = job.stages[s];
    if (stage.tasks.empty()) {
      err << "job '" << job.name << "' stage " << s << " has no tasks";
      return err.str();
    }
    for (int d : stage.deps) {
      if (d < 0 || d >= n || d == s) {
        err << "job '" << job.name << "' stage " << s << " has bad dep " << d;
        return err.str();
      }
    }
    if (auto msg = validate_constraint(job, s, declared); !msg.empty())
      return msg;
    for (std::size_t t = 0; t < stage.tasks.size(); ++t) {
      const auto& task = stage.tasks[t];
      if (task.cpu_cycles < 0 || task.output_bytes < 0) {
        err << "job '" << job.name << "' stage " << s << " task " << t
            << " has negative work";
        return err.str();
      }
      if (task.peak_cores < 0 || task.peak_mem < 0 || task.max_io_bw <= 0) {
        err << "job '" << job.name << "' stage " << s << " task " << t
            << " has negative demand";
        return err.str();
      }
      if (task.cpu_cycles > 0 && task.peak_cores <= 0) {
        err << "job '" << job.name << "' stage " << s << " task " << t
            << " has compute work but no cores";
        return err.str();
      }
      for (const auto& split : task.inputs) {
        if (split.bytes < 0) {
          err << "job '" << job.name << "' stage " << s << " task " << t
              << " has negative split bytes";
          return err.str();
        }
        if (split.from_stage >= 0 &&
            std::find(stage.deps.begin(), stage.deps.end(),
                      split.from_stage) == stage.deps.end()) {
          err << "job '" << job.name << "' stage " << s << " task " << t
              << " reads stage " << split.from_stage
              << " which is not a dependency";
          return err.str();
        }
      }
    }
  }
  if (has_cycle(job)) return "job '" + job.name + "' has a dependency cycle";
  return "";
}

}  // namespace

std::string validate(const JobSpec& job) {
  return validate_impl(job, nullptr);
}

std::string validate(const Workload& workload) {
  for (const auto& job : workload.jobs) {
    if (auto msg = validate(job); !msg.empty()) return msg;
  }
  return "";
}

std::string validate(const JobSpec& job,
                     const std::vector<std::string>& declared_labels) {
  return validate_impl(job, &declared_labels);
}

std::string validate(const Workload& workload,
                     const std::vector<std::string>& declared_labels) {
  for (const auto& job : workload.jobs) {
    if (auto msg = validate(job, declared_labels); !msg.empty()) return msg;
  }
  return "";
}

}  // namespace tetris::sim
