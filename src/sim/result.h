// Outputs of a simulation run: per-job and per-task records, cluster
// timelines and scheduler cost accounting. analysis/ turns these into the
// paper's tables and figures.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "sim/spec.h"
#include "trace/event.h"
#include "util/histogram.h"
#include "util/perf_counters.h"
#include "util/resources.h"
#include "util/units.h"

namespace tetris::sim {

struct JobRecord {
  JobId id = -1;
  std::string name;
  int template_id = -1;
  SimTime arrival = 0;
  SimTime finish = -1;
  int total_tasks = 0;
  double completion_time() const { return finish - arrival; }
  // Relative integral unfairness (§5.3.2); only populated when
  // collect_fairness was set.
  double unfairness_integral = 0;
};

struct TaskRecord {
  JobId job = -1;
  int stage = -1;
  int index = -1;
  MachineId host = -1;
  SimTime start = 0;
  SimTime finish = 0;
  int attempts = 1;
  double local_fraction = 1.0;
  // Duration the task would have had with all its demands fully granted
  // (Eq. 5 at peak rates). duration() == natural_duration iff the task was
  // never slowed by contention — the no-over-allocation invariant.
  double natural_duration = 0;
  double duration() const { return finish - start; }
};

struct TimelineSample {
  SimTime time = 0;
  int running_tasks = 0;
  // Cluster-wide usage as a fraction of cluster capacity, per resource.
  std::array<double, kNumResources> utilization{};
};

// Machine-churn accounting (SimConfig::churn). All zero / 1.0 when churn
// is disabled.
struct ChurnStats {
  int machines_failed = 0;     // down transitions applied to up machines
  int machines_recovered = 0;  // up transitions that restored a machine
  // Running attempts killed because their host failed, or because a
  // machine they were reading from failed with no surviving replica of
  // some input; each re-queues as a fresh attempt.
  int task_attempts_lost = 0;
  // Wall-clock runtime thrown away with those attempts.
  double work_lost_seconds = 0;
  // Running attempts whose read stream was re-pointed at a surviving
  // replica when its source failed (the attempt kept its progress).
  int read_failovers = 0;
  // Time-weighted fraction of cluster capacity that was up over
  // [0, end_time], averaged across resources. 1.0 = no downtime.
  double effective_capacity = 1.0;
};

// A stage whose placement constraints admit no machine in the cluster
// (DESIGN.md §13): the simulator reports it and marks the owning job
// doomed instead of silently starving its tasks until max_time. The
// label clauses are caught statically; the same-rack-as-input clause can
// only be judged once the stage's shuffle inputs materialize, which is
// when this record is produced.
struct InfeasibleGroup {
  JobId job = -1;
  int stage = -1;
  int tasks = 0;  // tasks that will never run because of this
  std::string reason;
};

struct SchedulerCost {
  long invocations = 0;
  long placements = 0;
  double total_seconds = 0;  // wall clock inside Scheduler::schedule
  double max_seconds = 0;
  double mean_seconds() const {
    return invocations ? total_seconds / static_cast<double>(invocations) : 0;
  }
};

// One scheduling pass, for the Table 8 latency-vs-backlog curves; only
// collected when SimConfig::collect_pass_samples is set.
struct PassSample {
  SimTime time = 0;
  int backlog = 0;  // runnable tasks cluster-wide when the pass started
  int placements = 0;
  double seconds = 0;  // wall clock inside Scheduler::schedule
};

struct SimResult {
  std::string scheduler_name;
  bool completed = false;  // all jobs finished before max_time
  SimTime end_time = 0;
  // Time to finish the whole job set, measured from the first arrival.
  SimTime makespan = 0;

  std::vector<JobRecord> jobs;
  std::vector<TaskRecord> tasks;
  std::vector<TimelineSample> timeline;
  // Per-resource machine-level usage fractions, one sample per machine per
  // timeline tick; feeds the tightness probabilities (Tables 3 and 6).
  std::array<std::vector<double>, kNumResources> machine_usage_samples;

  SchedulerCost scheduler_cost;
  std::vector<PassSample> pass_samples;
  // Log-bucketed pass-latency distribution, always collected: unlike
  // pass_samples it is fixed-size, so streaming runs can report p50/p99
  // without retaining one sample per pass.
  util::LatencyHistogram pass_latency;
  // Hot-path cache/index effectiveness over the whole run (DESIGN.md §8).
  util::PerfCounters perf;
  ChurnStats churn;
  // Stages no machine can ever host (see InfeasibleGroup). Non-empty
  // implies completed == false: the affected jobs are abandoned (their
  // records carry finish = -1) and the run drains the rest normally.
  std::vector<InfeasibleGroup> infeasible;
  // Full event stream of the run (DESIGN.md §10); empty unless
  // SimConfig::trace.enabled was set.
  trace::TraceLog trace_log;

  double avg_jct() const;
  double median_jct() const;
  std::vector<double> jcts() const;
  // Sum of attempts over task records; exceeds the task count exactly by
  // the number of failure-injected re-executions (task- or machine-level).
  long total_task_attempts() const;
};

}  // namespace tetris::sim
