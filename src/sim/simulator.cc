#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/job_state.h"
#include "sim/machine.h"
#include "trace/event.h"
#include "trace/recorder.h"
#include "util/perf_counters.h"
#include "util/rng.h"

namespace tetris::sim {

namespace {

constexpr double kSpeedEps = 1e-9;
// Progress target slack: a task whose progress is within this of its target
// is considered done (floating-point rounding of event times).
constexpr double kProgressEps = 1e-9;
// Cap on distinct shuffle sources per downstream split; real shuffles read
// from every map machine, but the heaviest sources dominate bandwidth.
constexpr std::size_t kMaxShuffleSources = 8;
// Cap on candidate tasks scanned per (group, machine) probe when hunting
// for the best-locality task.
constexpr std::size_t kMaxLocalityScan = 24;

struct Event {
  enum class Type {
    kArrival,
    kFinish,
    kHeartbeat,
    kTimeline,
    kActivity,
    kMachineDown,
    kMachineUp,
  };
  SimTime time = 0;
  long seq = 0;  // FIFO tie-break for equal times
  Type type = Type::kHeartbeat;
  int a = 0;   // arrival: job id; finish: task uid; activity: index;
               // machine down/up: machine id
  long b = 0;  // finish: generation; activity: 1=start, 0=stop
};

struct EventLater {
  bool operator()(const Event& x, const Event& y) const {
    if (x.time != y.time) return x.time > y.time;
    return x.seq > y.seq;
  }
};

struct TaskLoc {
  JobId job;
  int stage;
  int index;
};

struct EstFactors {
  Resources demand = Resources::uniform(1.0);
  double duration = 1.0;
};

class Simulator;

class Simulator {
 public:
  // Batch mode: the whole workload is materialized upfront.
  Simulator(const SimConfig& config, const Workload& workload);
  // Streaming mode (DESIGN.md §11): jobs are pulled from `source`
  // incrementally and retired on completion. `source` must outlive the run.
  Simulator(const SimConfig& config, JobSource& source);
  SimResult run(Scheduler& scheduler);

  // ---- stepped execution (DESIGN.md §14) ----
  // run() is prepare() + a step_one() loop + finalize(); SimEngine drives
  // the same three phases under an external clock. One event is processed
  // per step; `limit` leaves events at/after it (exclusive) or strictly
  // after it (inclusive) in the queue for a later step.
  enum class StepStatus {
    kProcessed,  // one event consumed
    kIdle,       // queue empty after pumping, or past max_time
    kCutoff,     // next event lies beyond `limit`
  };
  void prepare(Scheduler& scheduler);
  StepStatus step_one(Scheduler& scheduler, SimTime limit, bool inclusive);
  SimResult finalize();
  // Abandons every unfinished, undoomed resident job (the still-queued
  // tail of the source is the caller's to account) and stops scheduling.
  std::vector<JobId> halt_resident();
  EngineLoad engine_load() const;
  // True when step_one(scheduler, t, /*inclusive=*/false) would be a pure
  // no-op: the run is over (past max_time or halted), or every queued
  // event lies at or beyond `t`. Callers must separately know that no
  // admission is pending (a non-empty source can create events below t);
  // SimEngine::quiescent_until folds that in. The check mutates nothing,
  // so skipping the advance of a quiescent simulator is bit-identical to
  // performing it — the idle-cell fast path of DESIGN.md §14.5.
  bool quiescent_until(SimTime t) const {
    return past_max_time_ || halted_ || events_.empty() ||
           events_.top().time >= t;
  }
  long completed_or_doomed() const { return completed_jobs_ + doomed_jobs_; }
  long completed_jobs() const { return completed_jobs_; }
  bool halted() const { return halted_; }

 private:
  friend class ContextImpl;
  class ContextImpl;

  // ---- setup ----
  void init_cluster();
  void init_states(const Workload& workload);
  // Builds the JobState for `spec`, assigns contiguous uids, extends
  // locs_, and (kNoisy) draws the job's noise factors — the single path
  // both modes use, so draw order and uid layout agree bit for bit.
  JobState& append_job(const JobSpec& spec);
  void validate_job_spec(const JobSpec& spec) const;
  void push(Event e) {
    e.seq = next_seq_++;
    events_.push(e);
  }

  // ---- streaming ingestion / retirement ----
  bool streaming() const { return source_ != nullptr; }
  // Admits every job that is due (its arrival precedes the next event) or
  // within the look-ahead window, subject to the resident ceilings.
  void pump_admissions();
  void admit_job(JobSpec&& spec);
  // Folds a completed job into SimResult, drops its memo entries and its
  // stage/task state, and pops the contiguous retired prefix.
  void retire_job(JobState& job);
  void pop_retired_prefix();

  // ---- event handlers ----
  void on_arrival(JobId job);
  void on_finish(int uid, long generation);
  void on_heartbeat(Scheduler& scheduler);
  void on_timeline();
  void on_activity(int index, bool start);
  void on_machine_down(MachineId m);
  void on_machine_up(MachineId m);
  void failover_reads(int uid);

  // ---- churn helpers ----
  bool machine_is_up(MachineId m) const {
    return machines_[static_cast<std::size_t>(m)].up();
  }
  // Replica mask for placement resolution; null while everything is up so
  // the no-churn hot path keeps the original (cheaper) replica pick.
  const std::vector<char>* up_mask() const {
    return down_count_ > 0 ? &machine_up_ : nullptr;
  }
  void update_rack_uplink(MachineId member);
  // Folds the elapsed interval into the effective-capacity integral; call
  // before every change to the set of up machines.
  void account_up_capacity() {
    up_capacity_integral_ += (now_ - last_up_change_) * up_fraction_;
    last_up_change_ = now_;
  }
  double compute_up_fraction() const;

  // ---- job / task addressing ----
  // Both containers are deques with a base offset: streaming pops the
  // retired prefix while ids and uids keep indexing in O(1). In batch mode
  // the bases stay 0 and these are plain indexed lookups.
  JobState& job_at(JobId id) {
    return jobs_[static_cast<std::size_t>(static_cast<long>(id) -
                                          jobs_base_)];
  }
  const JobState& job_at(JobId id) const {
    return const_cast<Simulator*>(this)->job_at(id);
  }
  bool has_job(JobId id) const {
    const long i = static_cast<long>(id);
    return i >= jobs_base_ && i < jobs_base_ + static_cast<long>(jobs_.size());
  }
  bool has_task(int uid) const {
    const long i = static_cast<long>(uid) - locs_base_;
    if (i < 0 || i >= static_cast<long>(locs_.size())) return false;
    // A job retired mid-deque (an older job still resident blocks the
    // prefix pop) keeps its locs entries but its stages are a shell:
    // its tasks are gone too.
    const TaskLoc& l = locs_[static_cast<std::size_t>(i)];
    return !jobs_[static_cast<std::size_t>(static_cast<long>(l.job) -
                                           jobs_base_)]
                .retired;
  }

  // ---- task lifecycle ----
  TaskState& task_at(int uid) {
    const TaskLoc& l =
        locs_[static_cast<std::size_t>(static_cast<long>(uid) - locs_base_)];
    return job_at(l.job)
        .stages[static_cast<std::size_t>(l.stage)]
        .tasks[static_cast<std::size_t>(l.index)];
  }
  const TaskState& task_at(int uid) const {
    return const_cast<Simulator*>(this)->task_at(uid);
  }
  const TaskLoc& loc_at(int uid) const {
    return locs_[static_cast<std::size_t>(static_cast<long>(uid) -
                                          locs_base_)];
  }
  void start_task(const Probe& probe);
  void complete_task(int uid, bool failed,
                     trace::KillReason reason = trace::KillReason::kFault);
  void materialize_stage(JobState& job, int stage_index);
  void make_stage_runnable(JobState& job, int stage_index);

  // ---- placement constraints (DESIGN.md §13) ----
  // The admission predicate every scan path shares; see
  // SchedulerContext::constraints_admit for the contract.
  bool constraints_admit(const GroupRef& group, MachineId m) const;
  // Label-clause admissibility of machine m (true when the stage has no
  // label clauses).
  bool labels_admit(const PlacementConstraint& c, MachineId m) const;
  // Folds the same-rack-as-input clause into the stage's static admit
  // mask (inputs are final once materialized); returns false — dooming
  // the job — when the combined mask admits no machine.
  bool finalize_admit_mask(JobState& job, int stage_index);
  void doom_job(JobState& job, int stage_index);
  void add_runnable(StageState& stage, int task_index);
  void remove_runnable(StageState& stage, int task_index);

  // Longest-waiting runnable task of `stage` via its wait FIFO (pops
  // stale fronts); exact equal of the naive scan over runnable_indices.
  double stage_longest_wait(StageState& stage) const;

  // ---- rate recomputation ----
  void mark_dirty(MachineId m);
  void refresh_dirty();
  void update_progress(TaskState& t);
  double compute_speed(const TaskState& t) const;
  double target_progress(const TaskState& t) const {
    return t.will_fail ? t.fail_at_progress : 1.0;
  }

  // ---- estimation / tracker ----
  // Adds rack-uplink legs for cross-rack remote reads (no-op with rack
  // modeling disabled).
  void add_rack_legs(MachineId host, PlacementDemand& pd) const;
  EstFactors est_factors(const JobState& job, int stage_index) const;
  // When `has_young` is non-null it is set to whether the machine hosts a
  // task still inside the ramp-up window — i.e. whether the kUsage view
  // of this machine is time-dependent and must be recomputed next pass
  // even without a demand change.
  Resources tracker_available(MachineId m, bool* has_young = nullptr) const;

  void run_pass(Scheduler& scheduler);
  void sample_fairness(double dt);

  // ---- members ----
  SimConfig config_;
  InterferenceModel interference_;
  std::vector<Machine> machines_;  // real machines, then rack uplinks
  int num_real_machines_ = 0;
  // SoA mirror of every machine's capacity (DESIGN.md §12), lane =
  // machine id; kept coherent with set_capacity by update_rack_uplink.
  util::ResourcePlanes cap_planes_;
  std::vector<Resources> alloc_est_;  // scheduler-visible allocations
  std::vector<int> hosted_count_;
  Resources cluster_capacity_;
  Resources avg_capacity_;
  Resources max_capacity_;  // component-wise max over machines

  std::deque<JobState> jobs_;
  long jobs_base_ = 0;  // id of jobs_.front(); retired prefix popped
  std::deque<TaskLoc> locs_;
  long locs_base_ = 0;  // uid of locs_.front()
  std::unordered_map<long, EstFactors> noise_factors_;  // key: job<<20|stage
  std::unordered_set<int> profiled_templates_;

  // ---- streaming state (DESIGN.md §11); inert in batch mode ----
  JobSource* source_ = nullptr;
  long total_jobs_ = 0;   // source_->total_jobs(), or workload size
  int next_uid_ = 0;
  // Arrival events carry reserved sequence numbers arrival_seq_base_ + id,
  // laid out exactly where batch mode's upfront pushes would have put
  // them, so (time, seq) ordering — and with it every tie-break — is
  // identical no matter when a job is actually admitted.
  long arrival_seq_base_ = 0;
  long resident_jobs_ = 0;   // admitted minus retired
  long resident_tasks_ = 0;
  bool next_deferred_ = false;  // current head-of-source already counted
  // Incremental makespan accounting (batch recomputes these at the end;
  // streaming cannot, the records are folded away).
  SimTime first_arrival_ = std::numeric_limits<double>::infinity();
  SimTime last_finish_ = 0;
  long total_finished_tasks_ = 0;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  long next_seq_ = 0;
  SimTime now_ = 0;
  // Set when a popped event lies beyond max_time: the run is over, stepped
  // drivers must not process further (run() breaks out of its loop).
  bool past_max_time_ = false;
  // Set by halt_resident(): the cell died; no further scheduling, and
  // finalize() reports the abandoned jobs with finish = -1.
  bool halted_ = false;

  std::vector<char> dirty_flags_;
  std::vector<MachineId> dirty_list_;

  // ---- scheduler-view caches (DESIGN.md §8; naive_scheduler_view
  // bypasses them all). Caches are lazy recompute-on-dirty, never
  // incremental arithmetic: a served value is always the bit-identical
  // output of the naive recomputation it replaced.
  //
  // Availability cache: tracker_available(m) from the previous pass,
  // reusable while nothing changed the machine's books. avail_dirty_ is
  // set by mark_dirty() and by the est-book updates that do not touch
  // true demands; unlike dirty_flags_ it survives until the next pass
  // consumes it. ramping_ flags machines whose kUsage view decays with
  // time (a hosted task inside the ramp-up window): they recompute every
  // pass until the youngster ages out.
  std::vector<Resources> avail_cache_;
  std::vector<char> avail_dirty_;
  std::vector<char> ramping_;
  // Probe memo across passes, keyed (job, stage, machine). An entry is
  // valid while all four stamps match: the stage's runnable set, the
  // churn epoch (machine_up_ and uplink capacities), the stage's finished
  // count and the profiling epoch (both feed est_factors).
  struct ProbeEntry {
    std::uint64_t runnable_version = 0;
    std::uint64_t churn_version = 0;
    std::uint64_t profile_version = 0;
    int finished = -1;
    Probe probe;
  };
  mutable std::unordered_map<std::uint64_t, ProbeEntry> probe_memo_;
  // Guards probe_memo_ and the probe_cache_* counters — the only shared
  // state a probe() mutates — so the scheduler's column shards may probe
  // concurrently (DESIGN.md §9). Shards own disjoint machines, hence
  // disjoint memo keys; the lock only serializes the map structure, not
  // the probe computation, which runs outside it.
  mutable std::mutex probe_mu_;
  // Per-stage locality table: local_fraction(candidate, m) for the first
  // kMaxLocalityScan runnable candidates against every machine at once,
  // built once per (runnable set, churn epoch) instead of a split-replica
  // scan per (machine, candidate) probe miss. Values are bit-identical to
  // local_fraction(): the per-machine byte accumulation walks the splits
  // in the same order, so every double sum and the final division match
  // exactly. Guarded by probe_mu_; once built, an entry is read-only
  // until the stage's versions move, which never happens while shards
  // are probing (placements commit at the wave barrier).
  struct LocalityTable {
    std::uint64_t runnable_version = 0;
    std::uint64_t churn_version = 0;
    int finished = -1;
    std::size_t scan = 0;
    std::vector<double> frac;           // candidate-major: [c*machines + m]
    std::vector<unsigned char> viable;  // inputs_available() per candidate
  };
  mutable std::unordered_map<std::uint64_t, LocalityTable> loc_tables_;
  void pick_local_candidate(const StageState& stage, std::uint64_t stage_key,
                            MachineId machine, int* best,
                            double* best_frac) const;
  // Group-estimate memo (est_demand / est_duration / est_task_work per
  // stage), same stamping minus the churn epoch (estimates are
  // placement-independent). Serves runnable_groups(), imminent_groups()
  // and the per-job remaining-work sums of active_jobs().
  struct EstimateEntry {
    std::uint64_t runnable_version = 0;
    std::uint64_t profile_version = 0;
    int finished = -1;
    Resources est_demand;
    double est_duration = 0;
    double est_task_work = 0;
  };
  mutable std::unordered_map<long, EstimateEntry> est_memo_;
  std::uint64_t churn_version_ = 0;
  std::uint64_t profile_version_ = 0;
  int runnable_total_ = 0;  // cluster-wide runnable tasks (pass backlog)
  mutable util::PerfCounters perf_;

  // ---- churn state (real machines only; uplinks never fail) ----
  std::vector<char> machine_up_;
  std::vector<int> down_depth_;  // overlapping down windows nest
  int down_count_ = 0;
  std::vector<MachineEvent> churn_events_;  // scripted + generated
  // Per-machine sum of currently-active background activities; applied to
  // the machine only while it is up (activities suspend with it).
  std::vector<Resources> external_active_;
  Resources up_capacity_;  // capacity sum over up machines
  double up_fraction_ = 1.0;
  double up_capacity_integral_ = 0;
  SimTime last_up_change_ = 0;

  // Sorted union of labels any machine declares; the universe the
  // workload's constraints are validated against.
  std::vector<std::string> declared_labels_;

  Rng rng_;
  // kNoisy factor stream, forked from rng_ at the same point in both
  // modes; streaming draws from it lazily at admission, in job-id order —
  // the same sequence batch mode consumes upfront.
  Rng noise_rng_;
  int running_total_ = 0;
  long completed_jobs_ = 0;
  // Jobs abandoned because a stage's constraints admit no machine; they
  // count toward loop termination but never toward completion.
  long doomed_jobs_ = 0;
  std::vector<TaskReport> reports_;

  // Event tracing (DESIGN.md §10); null unless SimConfig::trace.enabled.
  // All simulator-side records happen on the event-loop thread, so the
  // stream order is deterministic; worker threads only contribute the
  // shard-timing records the scheduler emits serially at its barrier.
  std::unique_ptr<trace::Recorder> tracer_;
  long pass_index_ = 0;

  SimResult result_;
};

// ---------------------------------------------------------------------------
// Scheduler-facing context

class Simulator::ContextImpl final : public SchedulerContext {
 public:
  // The pass's availability view lives in SoA planes (DESIGN.md §12):
  // one lane per machine (real machines, then rack uplinks), built here
  // from the tracker caches and mutated only by place()/preempt() below —
  // so the planes stay coherent with available() by construction, through
  // every placement commit. Cross-pass mutations (task completion, churn
  // up/down, tracker usage updates) land in avail_cache_/avail_dirty_ and
  // flow in at the next pass's rebuild.
  explicit ContextImpl(Simulator& sim) : sim_(sim) {
    const std::size_t n = sim_.machines_.size();
    avail_.reset(n);
    if (sim_.config_.naive_scheduler_view) {
      for (std::size_t m = 0; m < n; ++m) {
        avail_.set(m, sim_.tracker_available(static_cast<MachineId>(m)));
        sim_.perf_.avail_recomputes++;
      }
      return;
    }
    const bool usage = sim_.config_.tracker == TrackerMode::kUsage;
    for (std::size_t m = 0; m < n; ++m) {
      if (sim_.avail_dirty_[m] || (usage && sim_.ramping_[m])) {
        bool young = false;
        sim_.avail_cache_[m] =
            sim_.tracker_available(static_cast<MachineId>(m), &young);
        sim_.ramping_[m] = young ? 1 : 0;
        sim_.avail_dirty_[m] = 0;
        sim_.perf_.avail_recomputes++;
      } else {
        sim_.perf_.avail_cache_hits++;
      }
      avail_.set(m, sim_.avail_cache_[m]);
    }
  }

  SimTime now() const override { return sim_.now_; }
  int num_machines() const override { return sim_.num_real_machines_; }
  const Resources& capacity(MachineId m) const override {
    return sim_.machines_[static_cast<std::size_t>(m)].capacity();
  }
  const Resources& cluster_capacity() const override {
    return sim_.cluster_capacity_;
  }
  Resources available(MachineId m) const override {
    return avail_.gather(static_cast<std::size_t>(m));
  }
  const util::ResourcePlanes* availability_planes() const override {
    return &avail_;
  }
  const util::ResourcePlanes* capacity_planes() const override {
    return &sim_.cap_planes_;
  }
  int running_tasks_on(MachineId m) const override {
    return sim_.hosted_count_[static_cast<std::size_t>(m)];
  }
  bool machine_up(MachineId m) const override {
    return m >= 0 && m < static_cast<int>(sim_.machines_.size()) &&
           sim_.machine_is_up(m);
  }
  bool constraints_admit(const GroupRef& group, MachineId m) const override {
    return sim_.constraints_admit(group, m);
  }
  JobId retired_before() const override {
    return static_cast<JobId>(sim_.jobs_base_);
  }

  std::vector<GroupView> runnable_groups() const override;
  std::vector<JobView> active_jobs() const override;
  std::vector<GroupView> imminent_groups() const override;
  Probe probe(const GroupRef& group, MachineId machine) const override;
  void probe_into(const GroupRef& group, MachineId machine,
                  Probe* out) const override;
  bool place(const Probe& probe) override;
  std::vector<RunningTaskView> running_tasks() const override;
  bool preempt(int task_uid) override;
  std::vector<TaskReport> take_reports() override {
    return std::exchange(sim_.reports_, {});
  }
  util::PerfCounters* perf_counters() override { return &sim_.perf_; }
  trace::Recorder* tracer() override { return sim_.tracer_.get(); }

  long placements = 0;

 private:
  // Representative estimated per-task demand for a stage (local view).
  void fill_group_estimates(const JobState& job, int stage_index,
                            GroupView& view) const;

  Simulator& sim_;
  util::ResourcePlanes avail_;
};

std::vector<GroupView> Simulator::ContextImpl::runnable_groups() const {
  const bool naive = sim_.config_.naive_scheduler_view;
  std::vector<GroupView> out;
  for (auto& job : sim_.jobs_) {
    if (!job.arrived || job.complete()) continue;
    for (int s = 0; s < static_cast<int>(job.stages.size()); ++s) {
      StageState& stage = job.stages[static_cast<std::size_t>(s)];
      if (stage.runnable <= 0) continue;
      GroupView v;
      v.ref = {job.id, s};
      v.runnable = stage.runnable;
      v.running = stage.running;
      v.finished = stage.finished;
      v.total = stage.total();
      if (naive) {
        for (int idx : stage.runnable_indices) {
          const auto& task = stage.tasks[static_cast<std::size_t>(idx)];
          if (task.runnable_since >= 0) {
            v.longest_wait =
                std::max(v.longest_wait, sim_.now_ - task.runnable_since);
          }
        }
      } else {
        v.longest_wait = sim_.stage_longest_wait(stage);
      }
      fill_group_estimates(job, s, v);
      out.push_back(std::move(v));
    }
  }
  // Flag stages that feed other stages.
  for (auto& v : out) {
    const auto& job = sim_.job_at(v.ref.job);
    for (const auto& st : job.stages) {
      if (std::find(st.deps.begin(), st.deps.end(), v.ref.stage) !=
          st.deps.end()) {
        v.has_dependents = true;
        break;
      }
    }
  }
  return out;
}

std::vector<GroupView> Simulator::ContextImpl::imminent_groups() const {
  std::vector<GroupView> out;
  for (const auto& job : sim_.jobs_) {
    if (!job.arrived || job.complete()) continue;
    for (int s = 0; s < static_cast<int>(job.stages.size()); ++s) {
      const StageState& stage = job.stages[static_cast<std::size_t>(s)];
      if (stage.unfinished_deps == 0) continue;  // runnable or running
      // Imminent iff every dependency stage is fully placed (no runnable
      // or blocked tasks left) — only running tasks gate the barrier.
      double eta = 0;
      bool imminent = true;
      for (int d : stage.deps) {
        const StageState& dep = job.stages[static_cast<std::size_t>(d)];
        if (dep.done()) continue;
        if (dep.runnable > 0 || dep.running + dep.finished < dep.total()) {
          imminent = false;
          break;
        }
        for (const auto& task : dep.tasks) {
          if (task.status != TaskStatus::kRunning) continue;
          if (task.speed <= 0 || task.placement.duration <= 0) {
            imminent = false;
            break;
          }
          const double remaining =
              (1.0 - task.progress) * task.placement.duration / task.speed;
          eta = std::max(eta,
                         task.progress_updated_at + remaining - sim_.now_);
        }
        if (!imminent) break;
      }
      if (!imminent) continue;
      GroupView v;
      v.ref = {job.id, s};
      v.total = stage.total();
      v.eta = std::max(0.0, eta);
      fill_group_estimates(job, s, v);
      out.push_back(std::move(v));
    }
  }
  return out;
}

void Simulator::ContextImpl::fill_group_estimates(const JobState& job,
                                                  int stage_index,
                                                  GroupView& view) const {
  const StageState& stage = job.stages[static_cast<std::size_t>(stage_index)];
  const bool naive = sim_.config_.naive_scheduler_view;
  const long key = (static_cast<long>(job.id) << 20) |
                   static_cast<long>(stage_index);
  if (!naive) {
    const auto it = sim_.est_memo_.find(key);
    if (it != sim_.est_memo_.end() &&
        it->second.runnable_version == stage.runnable_version &&
        it->second.finished == stage.finished &&
        it->second.profile_version == sim_.profile_version_) {
      view.est_demand = it->second.est_demand;
      view.est_duration = it->second.est_duration;
      view.est_task_work = it->second.est_task_work;
      sim_.perf_.estimate_cache_hits++;
      return;
    }
  }
  // Representative: the first runnable task (tasks of a stage are
  // statistically similar, §4.1).
  const TaskState* rep = nullptr;
  for (const auto& t : stage.tasks) {
    if (t.status == TaskStatus::kRunnable) {
      rep = &t;
      break;
    }
  }
  if (rep == nullptr) rep = &stage.tasks.front();
  const PlacementDemand pd = compute_local_placement(rep->spec);
  const EstFactors f = sim_.est_factors(job, stage_index);
  view.est_demand = pd.local;
  for (std::size_t i = 0; i < kNumResources; ++i)
    view.est_demand.at(i) *= f.demand.at(i);
  // Keep group estimates placeable on the largest machine (matches the
  // per-machine clamp in probe()), or prefilters would starve the group.
  view.est_demand = view.est_demand.cwise_min(sim_.max_capacity_);
  view.est_duration = pd.duration * f.duration;
  view.est_task_work =
      view.est_demand.normalized_by(sim_.avg_capacity_).sum() *
      view.est_duration;
  if (!naive) {
    sim_.est_memo_[key] = {stage.runnable_version, sim_.profile_version_,
                           stage.finished, view.est_demand,
                           view.est_duration, view.est_task_work};
    sim_.perf_.estimate_cache_misses++;
  }
}

std::vector<JobView> Simulator::ContextImpl::active_jobs() const {
  std::vector<JobView> out;
  for (const auto& job : sim_.jobs_) {
    if (!job.arrived || job.complete()) continue;
    JobView v;
    v.id = job.id;
    v.arrival = job.arrival;
    v.template_id = job.template_id;
    v.queue = job.queue;
    v.total_tasks = job.total_tasks;
    v.finished_tasks = job.finished_tasks;
    v.running_tasks = job.running_tasks;
    v.current_alloc = job.current_alloc;
    for (int s = 0; s < static_cast<int>(job.stages.size()); ++s) {
      const StageState& stage = job.stages[static_cast<std::size_t>(s)];
      v.runnable_tasks += stage.runnable;
      const int remaining = stage.total() - stage.finished;
      if (remaining == 0) continue;
      GroupView g;
      fill_group_estimates(job, s, g);
      v.remaining_work += g.est_task_work * remaining;
    }
    out.push_back(std::move(v));
  }
  return out;
}

Probe Simulator::ContextImpl::probe(const GroupRef& group,
                                    MachineId machine) const {
  Probe p;
  probe_into(group, machine, &p);
  return p;
}

void Simulator::ContextImpl::probe_into(const GroupRef& group,
                                        MachineId machine, Probe* out) const {
  // Reset in place: everything but the remote vector's capacity.
  Probe& p = *out;
  p.valid = false;
  p.group = group;
  p.machine = machine;
  p.task_index = -1;
  p.demand = Resources{};
  p.remote.clear();
  p.duration = 0;
  p.local_fraction = 1.0;
  p.task_work = 0;
  // Down machines admit nothing; uplink ids are not placement targets.
  if (machine < 0 || machine >= sim_.num_real_machines_ ||
      !sim_.machine_is_up(machine))
    return;
  if (!sim_.has_job(group.job)) return;
  const JobState& job = sim_.job_at(group.job);
  if (group.stage < 0 || group.stage >= static_cast<int>(job.stages.size()))
    return;
  const StageState& stage = job.stages[static_cast<std::size_t>(group.stage)];

  // Cross-pass memo: the probe is a pure function of the stage's runnable
  // set (candidate scan order included), the churn epoch (replica masks
  // and uplink capacities) and the estimation inputs — never of current
  // availability. Between heartbeats most stages and machines are
  // untouched, so most probes replay verbatim.
  const bool naive = sim_.config_.naive_scheduler_view;
  const std::uint64_t key = (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(group.job))
                             << 32) |
                            (static_cast<std::uint64_t>(group.stage) << 16) |
                            static_cast<std::uint64_t>(machine);
  if (!naive) {
    std::lock_guard<std::mutex> lock(sim_.probe_mu_);
    const auto it = sim_.probe_memo_.find(key);
    if (it != sim_.probe_memo_.end() &&
        it->second.runnable_version == stage.runnable_version &&
        it->second.churn_version == sim_.churn_version_ &&
        it->second.profile_version == sim_.profile_version_ &&
        it->second.finished == stage.finished) {
      sim_.perf_.probe_cache_hits++;
      p = it->second.probe;
      return;
    }
  }

  // Best-locality candidate among runnable tasks (bounded scan).
  int best = -1;
  double best_frac = -1;
  if (naive) {
    // The oracle recomputes from scratch — per-machine split scans, no
    // shared table — preserving the baseline's cost profile.
    const std::size_t scan =
        std::min(stage.runnable_indices.size(), kMaxLocalityScan);
    for (std::size_t i = 0; i < scan; ++i) {
      const int idx = stage.runnable_indices[i];
      const TaskState& t = stage.tasks[static_cast<std::size_t>(idx)];
      // Tasks whose every replica of some input is down cannot run
      // anywhere until a recovery; they stay runnable but are not
      // candidates.
      if (sim_.down_count_ > 0 && !inputs_available(t.spec, sim_.machine_up_))
        continue;
      const double frac = local_fraction(t.spec, machine);
      if (frac > best_frac) {
        best_frac = frac;
        best = idx;
      }
      if (best_frac >= 1.0) break;
    }
  } else {
    // Fast path: the per-stage locality table, one build per runnable
    // epoch amortized over every machine's miss (values bit-identical to
    // the scan above). The stage key is the memo key minus the machine.
    sim_.pick_local_candidate(stage, key & ~0xffffull, machine, &best,
                              &best_frac);
  }
  const auto memoize = [&](const Probe& computed) {
    if (naive) return;
    std::lock_guard<std::mutex> lock(sim_.probe_mu_);
    sim_.probe_memo_[key] = {stage.runnable_version, sim_.churn_version_,
                             sim_.profile_version_, stage.finished, computed};
    sim_.perf_.probe_cache_misses++;
  };
  if (best < 0) {
    memoize(p);
    return;
  }

  const TaskState& task = stage.tasks[static_cast<std::size_t>(best)];
  PlacementDemand pd =
      compute_placement(task.spec, machine,
                        static_cast<unsigned long long>(task.uid),
                        sim_.up_mask());
  sim_.add_rack_legs(machine, pd);
  const EstFactors f = sim_.est_factors(job, group.stage);

  p.valid = true;
  p.task_index = best;
  p.demand = pd.local;
  for (std::size_t i = 0; i < kNumResources; ++i)
    p.demand.at(i) *= f.demand.at(i);
  // An over-estimate must never exceed the whole machine, or the task
  // could become permanently unplaceable.
  p.demand = p.demand.cwise_min(
      sim_.machines_[static_cast<std::size_t>(machine)].capacity());
  p.remote.reserve(pd.remote.size());
  for (const auto& leg : pd.remote) {
    RemoteLeg est{leg.machine, leg.disk_read * f.demand[Resource::kDiskRead],
                  leg.net_out * f.demand[Resource::kNetOut],
                  leg.net_in * f.demand[Resource::kNetIn]};
    // As with the local clamp above: a demand beyond the path's capacity
    // (e.g. an oversubscribed rack uplink) would make the task permanently
    // unplaceable; it is admitted at full path rate and just runs slower.
    const Resources& leg_cap =
        sim_.machines_[static_cast<std::size_t>(leg.machine)].capacity();
    est.disk_read = std::min(est.disk_read, leg_cap[Resource::kDiskRead]);
    est.net_out = std::min(est.net_out, leg_cap[Resource::kNetOut]);
    est.net_in = std::min(est.net_in, leg_cap[Resource::kNetIn]);
    p.remote.push_back(est);
  }
  p.duration = pd.duration * f.duration;
  p.local_fraction = best_frac;
  p.task_work =
      p.demand.normalized_by(sim_.avg_capacity_).sum() * p.duration;
  memoize(p);
}

void Simulator::pick_local_candidate(const StageState& stage,
                                     std::uint64_t stage_key,
                                     MachineId machine, int* best,
                                     double* best_frac) const {
  std::lock_guard<std::mutex> lock(probe_mu_);
  LocalityTable& t = loc_tables_[stage_key];
  if (t.runnable_version != stage.runnable_version ||
      t.churn_version != churn_version_ || t.finished != stage.finished) {
    const std::size_t scan =
        std::min(stage.runnable_indices.size(), kMaxLocalityScan);
    const auto machines = static_cast<std::size_t>(num_real_machines_);
    t.scan = scan;
    t.frac.assign(scan * machines, 0.0);
    t.viable.assign(scan, 1);
    for (std::size_t c = 0; c < scan; ++c) {
      const TaskState& task =
          stage.tasks[static_cast<std::size_t>(stage.runnable_indices[c])];
      // Tasks whose every replica of some input is down cannot run
      // anywhere until a recovery; they stay runnable but are not
      // candidates. machine_up_ only changes with churn_version_, so the
      // cached flag stays exact.
      if (down_count_ > 0 && !inputs_available(task.spec, machine_up_)) {
        t.viable[c] = 0;
        continue;
      }
      // Accumulate each machine's local bytes split-major — the exact
      // addition order local_fraction() uses per machine — then divide.
      double* local = t.frac.data() + c * machines;
      double total = 0;
      for (const auto& split : task.spec.inputs) {
        if (split.bytes <= 0) continue;
        total += split.bytes;
        if (split.replicas.empty()) {
          // Generated input: local everywhere, costing no remote read.
          for (std::size_t m = 0; m < machines; ++m) local[m] += split.bytes;
          continue;
        }
        for (auto it = split.replicas.begin(); it != split.replicas.end();
             ++it) {
          // First occurrence only: local_fraction() counts a split once
          // per machine however many times a replica repeats.
          if (std::find(split.replicas.begin(), it, *it) != it) continue;
          if (*it >= 0 && *it < static_cast<MachineId>(machines))
            local[static_cast<std::size_t>(*it)] += split.bytes;
        }
      }
      if (total > 0) {
        for (std::size_t m = 0; m < machines; ++m) local[m] /= total;
      } else {
        for (std::size_t m = 0; m < machines; ++m) local[m] = 1.0;
      }
    }
    t.runnable_version = stage.runnable_version;
    t.churn_version = churn_version_;
    t.finished = stage.finished;
  }
  // Same argmax as the per-machine scan: first strict improvement wins,
  // early out once fully local.
  *best = -1;
  *best_frac = -1;
  const auto machines = static_cast<std::size_t>(num_real_machines_);
  for (std::size_t c = 0; c < t.scan; ++c) {
    if (!t.viable[c]) continue;
    const double frac =
        t.frac[c * machines + static_cast<std::size_t>(machine)];
    if (frac > *best_frac) {
      *best_frac = frac;
      *best = stage.runnable_indices[c];
    }
    if (*best_frac >= 1.0) break;
  }
}

bool Simulator::ContextImpl::place(const Probe& probe) {
  if (!probe.valid) return false;
  if (probe.machine < 0 || probe.machine >= sim_.num_real_machines_ ||
      !sim_.machine_is_up(probe.machine))
    return false;
  if (!sim_.has_job(probe.group.job)) return false;
  JobState& job = sim_.job_at(probe.group.job);
  StageState& stage = job.stages[static_cast<std::size_t>(probe.group.stage)];
  TaskState& task = stage.tasks[static_cast<std::size_t>(probe.task_index)];
  if (task.status != TaskStatus::kRunnable) return false;
  // Independent re-validation of the placement constraints: a scheduler
  // that never consulted constraints_admit loses the placement here, so
  // constraint violations are impossible, not merely unlikely.
  if (!sim_.constraints_admit(probe.group, probe.machine)) return false;

  sim_.start_task(probe);
  ++placements;

  // Keep this pass's availability view in sync with the commitment.
  // sub_max_zero is per-lane `(avail - demand).max_zero()` — the same
  // component ops in the same order the Resources expression performed.
  avail_.sub_max_zero(static_cast<std::size_t>(probe.machine), probe.demand);
  for (const auto& leg : probe.remote) {
    avail_.sub_max_zero(static_cast<std::size_t>(leg.machine),
                        leg_resources(leg));
  }
  return true;
}

std::vector<RunningTaskView> Simulator::ContextImpl::running_tasks() const {
  std::vector<RunningTaskView> out;
  for (const auto& job : sim_.jobs_) {
    if (!job.arrived || job.complete()) continue;
    for (std::size_t s = 0; s < job.stages.size(); ++s) {
      for (const auto& task : job.stages[s].tasks) {
        if (task.status != TaskStatus::kRunning) continue;
        RunningTaskView v;
        v.uid = task.uid;
        v.job = job.id;
        v.stage = static_cast<int>(s);
        v.machine = task.host;
        v.started = task.start_time;
        v.demand = task.est_local;
        out.push_back(v);
      }
    }
  }
  return out;
}

bool Simulator::ContextImpl::preempt(int task_uid) {
  if (!sim_.has_task(task_uid)) return false;
  TaskState& task = sim_.task_at(task_uid);
  if (task.status != TaskStatus::kRunning) return false;
  // Capture the booked estimates before the requeue clears the machines,
  // so this pass's availability view regains what the kill frees.
  const auto est_local = task.est_local;
  const auto est_remote = task.est_remote;
  const MachineId host = task.host;
  sim_.complete_task(task_uid, /*failed=*/true, trace::KillReason::kPreempt);
  // add_cwise_min is per-lane `(avail + freed).cwise_min(capacity)`,
  // matching the Resources expression it replaced bit for bit.
  avail_.add_cwise_min(
      static_cast<std::size_t>(host), est_local,
      sim_.machines_[static_cast<std::size_t>(host)].capacity());
  for (const auto& leg : est_remote) {
    avail_.add_cwise_min(
        static_cast<std::size_t>(leg.machine), leg_resources(leg),
        sim_.machines_[static_cast<std::size_t>(leg.machine)].capacity());
  }
  return true;
}

// ---------------------------------------------------------------------------
// Simulator

Simulator::Simulator(const SimConfig& config, const Workload& workload)
    : config_(config), interference_(config.interference), rng_(config.seed) {
  init_cluster();

  if (auto msg = validate(workload, declared_labels_); !msg.empty())
    throw std::invalid_argument("invalid workload: " + msg);
  // Replica locations must refer to machines this cluster actually has
  // (a workload generated for a bigger cluster would index out of range).
  const auto n = static_cast<MachineId>(num_real_machines_);
  for (const auto& job : workload.jobs) {
    for (const auto& stage : job.stages) {
      for (const auto& task : stage.tasks) {
        for (const auto& split : task.inputs) {
          for (MachineId r : split.replicas) {
            if (r < 0 || r >= n) {
              throw std::invalid_argument(
                  "invalid workload: job '" + job.name +
                  "' references replica machine " + std::to_string(r) +
                  " but the cluster has " + std::to_string(n) + " machines");
            }
          }
        }
      }
    }
  }
  init_states(workload);

  if (config_.trace.enabled) {
    tracer_ = std::make_unique<trace::Recorder>(config_.trace);
  }
}

Simulator::Simulator(const SimConfig& config, JobSource& source)
    : config_(config), interference_(config.interference), rng_(config.seed) {
  init_cluster();

  source_ = &source;
  total_jobs_ = source.total_jobs();
  if (total_jobs_ < 0)
    throw std::invalid_argument("JobSource reports a negative job count");
  // Same fork point as init_states' batch draw: the noise stream must be
  // derived after the churn stream (if any), or enabling streaming would
  // perturb the factor sequence.
  if (config_.estimation.mode == EstimationMode::kNoisy) {
    noise_rng_ = rng_.fork();
  }

  if (config_.trace.enabled) {
    tracer_ = std::make_unique<trace::Recorder>(config_.trace);
  }
}

void Simulator::init_cluster() {
  // An explicit machine_capacities that contradicts an explicit
  // num_machines is a config bug: resolved_capacities() silently prefers
  // the vector, so the caller would simulate a different cluster than the
  // one they asked for. The default num_machines counts as "unspecified".
  if (!config_.machine_capacities.empty() &&
      config_.num_machines != kDefaultNumMachines &&
      config_.num_machines !=
          static_cast<int>(config_.machine_capacities.size())) {
    throw std::invalid_argument(
        "SimConfig: num_machines=" + std::to_string(config_.num_machines) +
        " contradicts machine_capacities.size()=" +
        std::to_string(config_.machine_capacities.size()));
  }
  const auto caps = config_.resolved_capacities();
  if (caps.empty()) throw std::invalid_argument("no machines configured");
  if (config_.machines_per_rack < 0 ||
      (config_.machines_per_rack > 0 && config_.rack_oversubscription <= 0)) {
    throw std::invalid_argument("bad rack topology configuration");
  }
  if (config_.churn.mttf < 0 || config_.churn.mttr < 0 ||
      (config_.churn.mttf > 0 && config_.churn.mttr <= 0)) {
    throw std::invalid_argument(
        "ChurnConfig: mttf/mttr must be >= 0 and mttr > 0 when mttf > 0");
  }
  // Machine labels must cover the cluster exactly or not at all — a
  // partial list would silently leave machines unlabeled, the same class
  // of bug as the num_machines vs machine_capacities contradiction.
  if (!config_.machine_labels.empty() &&
      config_.machine_labels.size() != caps.size()) {
    throw std::invalid_argument(
        "SimConfig: machine_labels.size()=" +
        std::to_string(config_.machine_labels.size()) +
        " must match the machine count " + std::to_string(caps.size()));
  }
  // Cell partitions are validated even when this simulator runs globally:
  // a config that would mis-shard the federated layer is a bug worth
  // rejecting wherever it first reaches a simulator (DESIGN.md §14).
  if (auto msg = validate_cells(config_); !msg.empty()) {
    throw std::invalid_argument("SimConfig: invalid cell partition: " + msg);
  }
  for (const auto& labels : config_.machine_labels) {
    for (const auto& label : labels) {
      if (label.empty())
        throw std::invalid_argument(
            "SimConfig: machine_labels contains an empty label");
      declared_labels_.push_back(label);
    }
  }
  std::sort(declared_labels_.begin(), declared_labels_.end());
  declared_labels_.erase(
      std::unique(declared_labels_.begin(), declared_labels_.end()),
      declared_labels_.end());
  num_real_machines_ = static_cast<int>(caps.size());
  machines_.reserve(caps.size());
  for (std::size_t m = 0; m < caps.size(); ++m) {
    machines_.emplace_back(static_cast<MachineId>(m), caps[m],
                           &interference_);
    cluster_capacity_ += caps[m];
    max_capacity_ = max_capacity_.cwise_max(caps[m]);
  }
  avg_capacity_ = cluster_capacity_ / static_cast<double>(caps.size());

  // Rack uplinks as pseudo-machines past the real ids: they carry only
  // network capacity and appear in remote legs, never as placement hosts.
  if (config_.machines_per_rack > 0) {
    const int k = config_.machines_per_rack;
    const int racks = (num_real_machines_ + k - 1) / k;
    for (int rack = 0; rack < racks; ++rack) {
      Resources uplink;
      for (int m = rack * k;
           m < std::min((rack + 1) * k, num_real_machines_); ++m) {
        uplink[Resource::kNetIn] += caps[static_cast<std::size_t>(m)]
                                        [Resource::kNetIn];
        uplink[Resource::kNetOut] += caps[static_cast<std::size_t>(m)]
                                         [Resource::kNetOut];
      }
      uplink /= config_.rack_oversubscription;
      machines_.emplace_back(
          static_cast<MachineId>(num_real_machines_ + rack), uplink,
          &interference_);
    }
  }

  alloc_est_.assign(machines_.size(), Resources{});
  hosted_count_.assign(machines_.size(), 0);
  dirty_flags_.assign(machines_.size(), 0);
  avail_cache_.assign(machines_.size(), Resources{});
  avail_dirty_.assign(machines_.size(), 1);  // first pass computes all
  ramping_.assign(machines_.size(), 0);

  // SoA mirror of machines_[*].capacity() (DESIGN.md §12). Real machine
  // capacities never change; uplink lanes are refreshed by
  // update_rack_uplink on churn, the only set_capacity site.
  cap_planes_.reset(machines_.size());
  for (std::size_t m = 0; m < machines_.size(); ++m)
    cap_planes_.set(m, machines_[m].capacity());

  machine_up_.assign(static_cast<std::size_t>(num_real_machines_), 1);
  down_depth_.assign(static_cast<std::size_t>(num_real_machines_), 0);
  external_active_.assign(static_cast<std::size_t>(num_real_machines_),
                          Resources{});
  up_capacity_ = cluster_capacity_;

  churn_events_ = config_.churn.scripted;
  for (const auto& ev : churn_events_) {
    if (ev.machine < 0 || ev.machine >= num_real_machines_ ||
        ev.down_at < 0 || ev.up_at <= ev.down_at) {
      throw std::invalid_argument(
          "ChurnConfig: scripted event needs a valid machine and "
          "down_at < up_at");
    }
  }
  if (config_.churn.mttf > 0) {
    // Dedicated stream, one sub-stream per machine: enabling churn or
    // resizing the cluster must not perturb task-failure or estimation
    // draws, and one machine's timeline must not perturb another's.
    Rng churn_rng = rng_.fork();
    for (MachineId m = 0; m < num_real_machines_; ++m) {
      Rng mrng = churn_rng.fork();
      SimTime t = mrng.exponential(config_.churn.mttf);
      while (t < config_.max_time) {
        const SimTime back = t + mrng.exponential(config_.churn.mttr);
        churn_events_.push_back({m, t, back});
        t = back + mrng.exponential(config_.churn.mttf);
      }
    }
  }

}

void Simulator::init_states(const Workload& workload) {
  total_jobs_ = static_cast<long>(workload.jobs.size());
  if (config_.estimation.mode == EstimationMode::kNoisy) {
    noise_rng_ = rng_.fork();
  }
  for (const JobSpec& spec : workload.jobs) append_job(spec);
}

JobState& Simulator::append_job(const JobSpec& spec) {
  JobState job;
  job.id = static_cast<JobId>(jobs_base_ + static_cast<long>(jobs_.size()));
  job.name = spec.name;
  job.template_id = spec.template_id;
  job.queue = spec.queue;
  job.arrival = spec.arrival;
  job.uid_base = next_uid_;
  job.stages.reserve(spec.stages.size());
  bool any_anti_affinity = false;
  for (std::size_t s = 0; s < spec.stages.size(); ++s) {
    const StageSpec& sspec = spec.stages[s];
    StageState stage;
    stage.deps = sspec.deps;
    stage.constraint = sspec.constraint;
    any_anti_affinity |= sspec.constraint.anti_affinity;
    // Label clauses are static: bake them into the admit mask now. The
    // same-rack clause waits for materialization (finalize_admit_mask).
    if (!sspec.constraint.require_labels.empty() ||
        !sspec.constraint.forbid_labels.empty()) {
      stage.admit_mask.assign(
          static_cast<std::size_t>(num_real_machines_), 0);
      for (MachineId m = 0; m < num_real_machines_; ++m) {
        stage.admit_mask[static_cast<std::size_t>(m)] =
            labels_admit(sspec.constraint, m) ? 1 : 0;
      }
    }
    stage.unfinished_deps = static_cast<int>(sspec.deps.size());
    stage.tasks.reserve(sspec.tasks.size());
    for (std::size_t t = 0; t < sspec.tasks.size(); ++t) {
      TaskState task;
      task.spec = sspec.tasks[t];
      task.uid = next_uid_++;
      task.index_in_stage = static_cast<int>(t);
      locs_.push_back({job.id, static_cast<int>(s), static_cast<int>(t)});
      stage.tasks.push_back(std::move(task));
    }
    job.total_tasks += stage.total();
    job.stages.push_back(std::move(stage));
  }
  if (any_anti_affinity) {
    job.hosted_per_machine.assign(
        static_cast<std::size_t>(num_real_machines_), 0);
  }

  if (config_.estimation.mode == EstimationMode::kNoisy) {
    for (std::size_t s = 0; s < job.stages.size(); ++s) {
      EstFactors f;
      for (std::size_t i = 0; i < kNumResources; ++i) {
        f.demand.at(i) =
            noise_rng_.lognormal_mean_cov(1.0, config_.estimation.noise_cov);
      }
      f.duration =
          noise_rng_.lognormal_mean_cov(1.0, config_.estimation.noise_cov);
      noise_factors_[(static_cast<long>(job.id) << 20) |
                     static_cast<long>(s)] = f;
    }
  }

  jobs_.push_back(std::move(job));
  return jobs_.back();
}

void Simulator::validate_job_spec(const JobSpec& spec) const {
  if (auto msg = validate(spec, declared_labels_); !msg.empty())
    throw std::invalid_argument("invalid workload: " + msg);
  const auto n = static_cast<MachineId>(num_real_machines_);
  for (const auto& stage : spec.stages) {
    for (const auto& task : stage.tasks) {
      for (const auto& split : task.inputs) {
        for (MachineId r : split.replicas) {
          if (r < 0 || r >= n) {
            throw std::invalid_argument(
                "invalid workload: job '" + spec.name +
                "' references replica machine " + std::to_string(r) +
                " but the cluster has " + std::to_string(n) + " machines");
          }
        }
      }
    }
  }
}

void Simulator::pump_admissions() {
  if (!streaming()) return;
  JobPeek peek;
  while (source_->peek(peek)) {
    // "Due": the arrival precedes (or ties) the next event to be
    // processed, so it must enter the queue now to keep event order
    // exact. "Prefetch": merely within the look-ahead horizon.
    const bool due = events_.empty() || peek.arrival <= events_.top().time;
    const bool prefetch = peek.arrival <= now_ + config_.stream.lookahead;
    if (!due && !prefetch) break;
    const auto& sc = config_.stream;
    if (sc.max_resident_tasks > 0 && peek.tasks > sc.max_resident_tasks) {
      throw std::invalid_argument(
          "StreamConfig::max_resident_tasks=" +
          std::to_string(sc.max_resident_tasks) +
          " is smaller than a single job with " + std::to_string(peek.tasks) +
          " tasks; it can never be admitted");
    }
    const bool job_cap =
        sc.max_resident_jobs > 0 && resident_jobs_ >= sc.max_resident_jobs;
    const bool task_cap =
        sc.max_resident_tasks > 0 &&
        resident_tasks_ + peek.tasks > sc.max_resident_tasks;
    if (job_cap || task_cap) {
      // Ceiling hit: hold the job back until a retirement frees space. A
      // *due* job held back arrives late — count it, once per job.
      if (due && !next_deferred_) {
        perf_.stream_deferrals++;
        next_deferred_ = true;
      }
      break;
    }
    next_deferred_ = false;
    JobSpec spec;
    source_->next(spec);
    admit_job(std::move(spec));
  }
}

void Simulator::admit_job(JobSpec&& spec) {
  validate_job_spec(spec);
  JobState& job = append_job(spec);
  first_arrival_ = std::min(first_arrival_, job.arrival);
  resident_jobs_++;
  resident_tasks_ += job.total_tasks;
  perf_.jobs_admitted++;
  perf_.peak_resident_jobs =
      std::max(perf_.peak_resident_jobs, resident_jobs_);
  perf_.peak_resident_tasks =
      std::max(perf_.peak_resident_tasks, resident_tasks_);
  // Reserved sequence number: exactly the seq batch mode's upfront push
  // loop would have assigned this arrival. Bypasses push()/next_seq_.
  Event e;
  e.time = job.arrival;
  e.seq = arrival_seq_base_ + static_cast<long>(job.id);
  e.type = Event::Type::kArrival;
  e.a = job.id;
  events_.push(e);
}

void Simulator::retire_job(JobState& job) {
  if (!config_.stream.drop_job_records) {
    JobRecord rec;
    rec.id = job.id;
    rec.name = job.name;
    rec.template_id = job.template_id;
    rec.arrival = job.arrival;
    rec.finish = job.finish;
    rec.total_tasks = job.total_tasks;
    rec.unfairness_integral = job.unfairness_integral;
    result_.jobs.push_back(std::move(rec));
  }
  last_finish_ = std::max(last_finish_, job.finish);

  // Drop every memo entry keyed by this job; none can be consulted again
  // (complete jobs emit no groups), so erasure cannot change a decision.
  for (int s = 0; s < static_cast<int>(job.stages.size()); ++s) {
    const long gkey =
        (static_cast<long>(job.id) << 20) | static_cast<long>(s);
    est_memo_.erase(gkey);
    noise_factors_.erase(gkey);
    const std::uint64_t pbase =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(job.id))
         << 32) |
        (static_cast<std::uint64_t>(s) << 16);
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      probe_memo_.erase(pbase | static_cast<std::uint64_t>(m));
    }
    loc_tables_.erase(pbase);
  }

  resident_jobs_--;
  resident_tasks_ -= job.total_tasks;
  perf_.jobs_retired++;

  // Shrink to a shell: counts survive (complete() must stay true) but the
  // per-task state — the actual memory — goes. The shell itself is popped
  // once it reaches the front of the resident window.
  job.stages.clear();
  job.stages.shrink_to_fit();
  job.retired = true;
  pop_retired_prefix();
}

void Simulator::pop_retired_prefix() {
  while (!jobs_.empty() && jobs_.front().retired) {
    const int nt = jobs_.front().total_tasks;
    for (int i = 0; i < nt; ++i) locs_.pop_front();
    locs_base_ += nt;
    jobs_.pop_front();
    jobs_base_++;
  }
}

void Simulator::add_rack_legs(MachineId host, PlacementDemand& pd) const {
  const int k = config_.machines_per_rack;
  if (k <= 0) return;
  const int host_rack = host / k;
  // Aggregate cross-rack outbound per source rack; everything inbound
  // funnels through the host rack's uplink.
  std::unordered_map<int, double> outbound;
  double inbound = 0;
  for (const auto& leg : pd.remote) {
    if (leg.machine >= num_real_machines_) continue;  // already an uplink
    const int src_rack = leg.machine / k;
    if (src_rack == host_rack) continue;
    outbound[src_rack] += leg.net_out;
    inbound += leg.net_out;
  }
  for (const auto& [rack, rate] : outbound) {
    if (rate <= 0) continue;
    RemoteLeg leg;
    leg.machine = num_real_machines_ + rack;
    leg.net_out = rate;
    pd.remote.push_back(leg);
  }
  if (inbound > 0) {
    RemoteLeg leg;
    leg.machine = num_real_machines_ + host_rack;
    leg.net_in = inbound;
    pd.remote.push_back(leg);
  }
}

EstFactors Simulator::est_factors(const JobState& job,
                                  int stage_index) const {
  switch (config_.estimation.mode) {
    case EstimationMode::kOracle:
      return {};
    case EstimationMode::kNoisy: {
      const auto it = noise_factors_.find(
          (static_cast<long>(job.id) << 20) | static_cast<long>(stage_index));
      return it != noise_factors_.end() ? it->second : EstFactors{};
    }
    case EstimationMode::kLearnedProfile: {
      if (job.template_id >= 0 && profiled_templates_.contains(job.template_id))
        return {};
      const StageState& stage =
          job.stages[static_cast<std::size_t>(stage_index)];
      if (stage.finished >= config_.estimation.profile_after) return {};
      EstFactors f;
      f.demand = Resources::uniform(config_.estimation.overestimate_factor);
      // Memory over-estimation is the norm (slot sizing); keep cpu share
      // over-estimated too. Duration over-estimated alike.
      f.duration = config_.estimation.overestimate_factor;
      return f;
    }
  }
  return {};
}

Resources Simulator::tracker_available(MachineId m, bool* has_young) const {
  if (has_young != nullptr) *has_young = false;
  const auto& machine = machines_[static_cast<std::size_t>(m)];
  if (!machine.up()) return Resources{};  // a down machine offers nothing
  if (config_.tracker == TrackerMode::kAllocation) {
    return (machine.capacity() - alloc_est_[static_cast<std::size_t>(m)])
        .max_zero();
  }
  // Usage view: observed consumption plus a decaying ramp-up allowance for
  // recently started tasks hosted here (§4.1).
  Resources used = machine.usage();
  for (const auto& [uid, demand] : machine.demands()) {
    const TaskState& t = task_at(uid);
    if (t.host != m) continue;  // remote leg, not a hosted task
    const double age = now_ - t.start_time;
    if (age >= config_.ramp_up_window) continue;
    if (has_young != nullptr) *has_young = true;
    const double scale = config_.ramp_allowance_fraction *
                         (1.0 - age / config_.ramp_up_window);
    used += t.est_local * scale;
  }
  return (machine.capacity() - used).max_zero();
}

SimResult Simulator::run(Scheduler& scheduler) {
  prepare(scheduler);
  while (completed_jobs_ + doomed_jobs_ < total_jobs_) {
    if (step_one(scheduler, std::numeric_limits<double>::infinity(),
                 /*inclusive=*/true) != StepStatus::kProcessed) {
      break;
    }
  }
  return finalize();
}

void Simulator::prepare(Scheduler& scheduler) {
  result_ = SimResult{};
  result_.scheduler_name = scheduler.name();
  if (tracer_) {
    trace::Event ev;
    ev.kind = trace::EventKind::kRunBegin;
    ev.a = static_cast<std::int64_t>(config_.seed);
    ev.b = num_real_machines_;
    ev.c = static_cast<std::int64_t>(total_jobs_);
    ev.d = config_.num_threads;
    ev.e = config_.naive_scheduler_view ? 1 : 0;
    tracer_->record(ev);
  }

  // Machine events and activities first: a failure or activity at time t
  // must be visible to a scheduling pass at the same instant (FIFO
  // tie-break is by push order).
  for (const auto& ev : churn_events_) {
    push({ev.down_at, 0, Event::Type::kMachineDown, ev.machine, 0});
    push({ev.up_at, 0, Event::Type::kMachineUp, ev.machine, 0});
  }
  for (std::size_t i = 0; i < config_.activities.size(); ++i) {
    const auto& act = config_.activities[i];
    push({act.start, 0, Event::Type::kActivity, static_cast<int>(i), 1});
    push({act.end, 0, Event::Type::kActivity, static_cast<int>(i), 0});
  }
  if (streaming()) {
    // Reserve the seq block batch mode's upfront arrival pushes would
    // occupy; each admission fills its own slot (arrival_seq_base_ + id),
    // so later pushes (heartbeats, finish predictions) line up exactly.
    arrival_seq_base_ = next_seq_;
    next_seq_ += total_jobs_;
    pump_admissions();
  } else {
    for (const auto& job : jobs_) {
      push({job.arrival, 0, Event::Type::kArrival, job.id, 0});
    }
  }
  push({0, 0, Event::Type::kHeartbeat, 0, 0});
  if (config_.collect_timeline) {
    push({0, 0, Event::Type::kTimeline, 0, 0});
  }
}

Simulator::StepStatus Simulator::step_one(Scheduler& scheduler,
                                          SimTime limit, bool inclusive) {
  if (past_max_time_ || halted_) return StepStatus::kIdle;
  // Streaming: every job due before (or at) the next event must be in
  // the queue before that event pops, or ordering would drift from
  // batch. No-op in batch mode.
  pump_admissions();
  if (events_.empty()) return StepStatus::kIdle;
  // A cutoff leaves the event queued: a stepped driver submits arrivals at
  // `limit` before advancing through it, so those arrivals order ahead of
  // co-temporal events exactly as batch mode's upfront pushes would.
  if (inclusive ? events_.top().time > limit : events_.top().time >= limit) {
    return StepStatus::kCutoff;
  }
  const Event e = events_.top();
  events_.pop();
  if (e.time > config_.max_time) {
    past_max_time_ = true;
    return StepStatus::kIdle;
  }
  now_ = std::max(now_, e.time);
  switch (e.type) {
    case Event::Type::kArrival:
      on_arrival(e.a);
      // Coalesce simultaneous arrivals into one scheduling pass, or the
      // first job of a batch would grab the whole cluster before its
      // peers even exist (fairness would be meaningless at t=0). The
      // pump keeps feeding same-instant admissions in streaming mode.
      for (;;) {
        pump_admissions();
        if (events_.empty() ||
            events_.top().type != Event::Type::kArrival ||
            events_.top().time > now_)
          break;
        on_arrival(events_.top().a);
        events_.pop();
      }
      run_pass(scheduler);
      break;
    case Event::Type::kFinish:
      on_finish(e.a, e.b);
      break;
    case Event::Type::kHeartbeat:
      on_heartbeat(scheduler);
      break;
    case Event::Type::kTimeline:
      on_timeline();
      break;
    case Event::Type::kActivity:
      on_activity(e.a, e.b != 0);
      break;
    case Event::Type::kMachineDown:
      on_machine_down(e.a);
      // React immediately: killed tasks may fit on surviving machines.
      run_pass(scheduler);
      break;
    case Event::Type::kMachineUp:
      on_machine_up(e.a);
      // React immediately: restored capacity (and restored replicas) can
      // unblock waiting tasks before the next heartbeat.
      run_pass(scheduler);
      break;
  }
  return StepStatus::kProcessed;
}

std::vector<JobId> Simulator::halt_resident() {
  halted_ = true;
  std::vector<JobId> unfinished;
  for (const auto& job : jobs_) {
    if (job.retired || job.doomed) continue;  // done, or infeasible anywhere
    if (job.finish >= 0) continue;            // complete but not yet retired
    unfinished.push_back(job.id);
  }
  return unfinished;
}

EngineLoad Simulator::engine_load() const {
  EngineLoad l;
  l.machines = num_real_machines_;
  l.up_machines = num_real_machines_ - down_count_;
  l.runnable_tasks = runnable_total_;
  l.running_tasks = running_total_;
  l.active_jobs = resident_jobs_;
  Resources alloc;
  for (int m = 0; m < num_real_machines_; ++m) {
    alloc += alloc_est_[static_cast<std::size_t>(m)];
  }
  for (std::size_t i = 0; i < kNumResources; ++i) {
    const double cap = up_capacity_.at(i);
    if (cap > 0) l.alloc_share = std::max(l.alloc_share, alloc.at(i) / cap);
  }
  return l;
}

SimResult Simulator::finalize() {
  result_.completed = completed_jobs_ == total_jobs_;
  result_.end_time = now_;
  account_up_capacity();
  result_.churn.effective_capacity =
      now_ > 0 ? up_capacity_integral_ / now_ : 1.0;
  // Fold the jobs still resident (all of them in batch mode; the
  // incomplete remainder in streaming — retired jobs are in result_.jobs
  // already). Then, streaming only: drain the never-admitted tail of the
  // source into finish = -1 records so incomplete runs report the same
  // record set batch mode would.
  for (const auto& job : jobs_) {
    if (job.retired) continue;
    first_arrival_ = std::min(first_arrival_, job.arrival);
    if (!config_.stream.drop_job_records) {
      JobRecord rec;
      rec.id = job.id;
      rec.name = job.name;
      rec.template_id = job.template_id;
      rec.arrival = job.arrival;
      rec.finish = job.finish;
      rec.total_tasks = job.total_tasks;
      rec.unfairness_integral = job.unfairness_integral;
      result_.jobs.push_back(std::move(rec));
    }
    if (job.finish >= 0) last_finish_ = std::max(last_finish_, job.finish);
  }
  if (streaming()) {
    JobSpec spec;
    JobId drained_id =
        static_cast<JobId>(jobs_base_ + static_cast<long>(jobs_.size()));
    while (source_->next(spec)) {
      first_arrival_ = std::min(first_arrival_, spec.arrival);
      if (!config_.stream.drop_job_records) {
        JobRecord rec;
        rec.id = drained_id;
        rec.name = spec.name;
        rec.template_id = spec.template_id;
        rec.arrival = spec.arrival;
        rec.finish = -1;
        for (const auto& stage : spec.stages)
          rec.total_tasks += static_cast<int>(stage.tasks.size());
        result_.jobs.push_back(std::move(rec));
      }
      drained_id++;
    }
    // Retirement appends in completion order; batch emits in id order.
    std::sort(result_.jobs.begin(), result_.jobs.end(),
              [](const JobRecord& x, const JobRecord& y) {
                return x.id < y.id;
              });
  }
  result_.perf = perf_;
  result_.makespan =
      last_finish_ -
      (std::isfinite(first_arrival_) ? first_arrival_ : 0.0);
  if (tracer_) {
    trace::Event ev;
    ev.kind = trace::EventKind::kRunEnd;
    ev.time = now_;
    ev.a = total_finished_tasks_;
    ev.b = completed_jobs_;
    ev.x = result_.makespan;
    tracer_->record(ev);
    result_.trace_log = tracer_->take_log();
    result_.trace_log.scheduler = result_.scheduler_name;
    result_.trace_log.seed = config_.seed;
  }
  return result_;
}

void Simulator::on_arrival(JobId job_id) {
  JobState& job = job_at(job_id);
  job.arrived = true;
  if (tracer_) {
    trace::Event ev;
    ev.kind = trace::EventKind::kJobArrival;
    ev.time = now_;
    ev.a = job_id;
    tracer_->record(ev);
  }
  for (int s = 0; s < static_cast<int>(job.stages.size()); ++s) {
    if (job.stages[static_cast<std::size_t>(s)].unfinished_deps == 0) {
      make_stage_runnable(job, s);
    }
  }
}

void Simulator::make_stage_runnable(JobState& job, int stage_index) {
  if (job.doomed) return;  // abandoned: schedule no further stages
  materialize_stage(job, stage_index);
  // The stage's inputs are final now, so its static admit mask is too; a
  // stage no machine can host dooms the job here — reported, never
  // silently starved in the runnable set until max_time.
  if (!finalize_admit_mask(job, stage_index)) {
    doom_job(job, stage_index);
    return;
  }
  StageState& stage = job.stages[static_cast<std::size_t>(stage_index)];
  for (auto& task : stage.tasks) {
    if (task.status == TaskStatus::kBlocked) {
      task.status = TaskStatus::kRunnable;
      stage.runnable++;
      add_runnable(stage, task.index_in_stage);
    }
  }
}

bool Simulator::labels_admit(const PlacementConstraint& c, MachineId m) const {
  static const std::vector<std::string> kNoLabels;
  const auto& labels =
      config_.machine_labels.empty()
          ? kNoLabels
          : config_.machine_labels[static_cast<std::size_t>(m)];
  for (const auto& need : c.require_labels) {
    if (std::find(labels.begin(), labels.end(), need) == labels.end())
      return false;
  }
  for (const auto& ban : c.forbid_labels) {
    if (std::find(labels.begin(), labels.end(), ban) != labels.end())
      return false;
  }
  return true;
}

bool Simulator::finalize_admit_mask(JobState& job, int stage_index) {
  StageState& stage = job.stages[static_cast<std::size_t>(stage_index)];
  if (stage.constraint.same_rack_as_input) {
    // Group-level predicate, identical for admission and place(): a
    // machine is rack-admissible iff its rack (the machine itself with
    // rack modeling off) holds a replica of at least one input split of
    // at least one task of the stage. Defined over the spec's replica
    // lists regardless of up/down state, so the mask is pass-constant
    // under churn (a constraint rejection stays sticky-safe; a down
    // admissible machine is rejected by machine_up instead).
    const int k = config_.machines_per_rack;
    std::vector<unsigned char> rack_ok(
        static_cast<std::size_t>(num_real_machines_), 0);
    bool any_replica = false;
    for (const auto& task : stage.tasks) {
      for (const auto& split : task.spec.inputs) {
        for (MachineId r : split.replicas) {
          if (r < 0 || r >= num_real_machines_) continue;
          any_replica = true;
          if (k > 0) {
            const int rack = r / k;
            for (int m = rack * k;
                 m < std::min((rack + 1) * k, num_real_machines_); ++m) {
              rack_ok[static_cast<std::size_t>(m)] = 1;
            }
          } else {
            rack_ok[static_cast<std::size_t>(r)] = 1;
          }
        }
      }
    }
    // Stages with no located inputs (generated data, empty shuffles) are
    // unconstrained by the clause — there is no rack to match.
    if (any_replica) {
      if (stage.admit_mask.empty()) {
        stage.admit_mask = std::move(rack_ok);
      } else {
        for (std::size_t m = 0; m < stage.admit_mask.size(); ++m) {
          stage.admit_mask[m] &= rack_ok[m];
        }
      }
    }
  }
  if (stage.admit_mask.empty()) return true;
  for (unsigned char ok : stage.admit_mask) {
    if (ok) return true;
  }
  return false;
}

void Simulator::doom_job(JobState& job, int stage_index) {
  const StageState& stage = job.stages[static_cast<std::size_t>(stage_index)];
  InfeasibleGroup rec;
  rec.job = job.id;
  rec.stage = stage_index;
  rec.tasks = stage.total();
  std::ostringstream reason;
  reason << "no machine satisfies the placement constraint of job '"
         << job.name << "' stage " << stage_index << " (";
  const PlacementConstraint& c = stage.constraint;
  const char* sep = "";
  if (!c.require_labels.empty()) {
    reason << "require:";
    for (const auto& l : c.require_labels) reason << " " << l;
    sep = "; ";
  }
  if (!c.forbid_labels.empty()) {
    reason << sep << "forbid:";
    for (const auto& l : c.forbid_labels) reason << " " << l;
    sep = "; ";
  }
  if (c.same_rack_as_input) reason << sep << "same-rack-as-input";
  reason << ")";
  rec.reason = reason.str();
  result_.infeasible.push_back(std::move(rec));
  if (!job.doomed) {
    job.doomed = true;
    doomed_jobs_++;
  }
}

bool Simulator::constraints_admit(const GroupRef& group, MachineId m) const {
  // Rack-uplink pseudo-machines are never placement hosts; schedulers do
  // not scan them, but the predicate stays total.
  if (m < 0 || m >= num_real_machines_) return false;
  if (!has_job(group.job)) return false;
  const JobState& job = job_at(group.job);
  if (group.stage < 0 ||
      group.stage >= static_cast<int>(job.stages.size()))
    return false;
  const StageState& stage =
      job.stages[static_cast<std::size_t>(group.stage)];
  if (!stage.admit_mask.empty() &&
      !stage.admit_mask[static_cast<std::size_t>(m)])
    return false;
  if (stage.constraint.anti_affinity && !job.hosted_per_machine.empty() &&
      job.hosted_per_machine[static_cast<std::size_t>(m)] > 0)
    return false;
  return true;
}

void Simulator::add_runnable(StageState& stage, int task_index) {
  TaskState& task = stage.tasks[static_cast<std::size_t>(task_index)];
  task.runnable_pos = static_cast<int>(stage.runnable_indices.size());
  task.runnable_since = now_;
  stage.runnable_indices.push_back(task_index);
  stage.runnable_version++;
  stage.wait_fifo.emplace_back(task_index, now_);
  runnable_total_++;
}

void Simulator::remove_runnable(StageState& stage, int task_index) {
  TaskState& task = stage.tasks[static_cast<std::size_t>(task_index)];
  const int pos = task.runnable_pos;
  const int last = stage.runnable_indices.back();
  stage.runnable_indices[static_cast<std::size_t>(pos)] = last;
  stage.tasks[static_cast<std::size_t>(last)].runnable_pos = pos;
  stage.runnable_indices.pop_back();
  task.runnable_pos = -1;
  stage.runnable_version++;
  runnable_total_--;
}

double Simulator::stage_longest_wait(StageState& stage) const {
  while (!stage.wait_fifo.empty()) {
    const auto& [idx, since] = stage.wait_fifo.front();
    const TaskState& t = stage.tasks[static_cast<std::size_t>(idx)];
    // Entries are lazily deleted: drop fronts whose task left the
    // runnable set or was re-queued since (a newer entry exists for it).
    if (t.status == TaskStatus::kRunnable && t.runnable_since == since)
      break;
    stage.wait_fifo.pop_front();
  }
  if (stage.wait_fifo.empty()) return 0;
  // Pushes happen in non-decreasing simulation time, so the surviving
  // front carries the minimum runnable_since over runnable tasks.
  return now_ - stage.wait_fifo.front().second;
}

void Simulator::materialize_stage(JobState& job, int stage_index) {
  StageState& stage = job.stages[static_cast<std::size_t>(stage_index)];
  if (stage.materialized) return;
  stage.materialized = true;
  for (auto& task : stage.tasks) {
    bool needs_rewrite = false;
    for (const auto& split : task.spec.inputs) {
      if (split.from_stage >= 0) {
        needs_rewrite = true;
        break;
      }
    }
    if (!needs_rewrite) continue;
    std::vector<InputSplit> rewritten;
    rewritten.reserve(task.spec.inputs.size());
    for (const auto& split : task.spec.inputs) {
      if (split.from_stage < 0) {
        rewritten.push_back(split);
        continue;
      }
      auto sources =
          job.stages[static_cast<std::size_t>(split.from_stage)]
              .output_locations;
      if (sources.empty() || split.bytes <= 0) {
        // Upstream produced nothing: the bytes become generated input.
        InputSplit gen;
        gen.bytes = split.bytes;
        rewritten.push_back(std::move(gen));
        continue;
      }
      std::sort(sources.begin(), sources.end(),
                [](const auto& x, const auto& y) { return x.second > y.second; });
      if (sources.size() > kMaxShuffleSources)
        sources.resize(kMaxShuffleSources);
      double total = 0;
      for (const auto& [m, b] : sources) total += b;
      for (const auto& [m, b] : sources) {
        if (b <= 0) continue;
        InputSplit piece;
        piece.bytes = split.bytes * (b / total);
        piece.replicas = {m};
        rewritten.push_back(std::move(piece));
      }
    }
    task.spec.inputs = std::move(rewritten);
  }
}

void Simulator::start_task(const Probe& probe) {
  JobState& job = job_at(probe.group.job);
  StageState& stage = job.stages[static_cast<std::size_t>(probe.group.stage)];
  TaskState& task = stage.tasks[static_cast<std::size_t>(probe.task_index)];

  PlacementDemand pd =
      compute_placement(task.spec, probe.machine,
                        static_cast<unsigned long long>(task.uid), up_mask());
  add_rack_legs(probe.machine, pd);

  task.status = TaskStatus::kRunning;
  task.host = probe.machine;
  task.start_time = now_;
  task.attempts++;
  task.placement = pd;
  task.progress = 0;
  task.progress_updated_at = now_;
  task.speed = 0;
  task.generation++;
  task.will_fail = config_.task_failure_prob > 0 &&
                   rng_.bernoulli(config_.task_failure_prob);
  task.fail_at_progress = task.will_fail ? rng_.uniform(0.05, 0.95) : 1.0;

  task.est_local = probe.demand;
  task.est_remote = probe.remote;

  machines_[static_cast<std::size_t>(probe.machine)].add_demand(task.uid,
                                                                pd.local);
  mark_dirty(probe.machine);
  alloc_est_[static_cast<std::size_t>(probe.machine)] += task.est_local;
  hosted_count_[static_cast<std::size_t>(probe.machine)]++;
  if (!job.hosted_per_machine.empty())
    job.hosted_per_machine[static_cast<std::size_t>(probe.machine)]++;
  for (const auto& leg : pd.remote) {
    const Resources r = leg_resources(leg);
    machines_[static_cast<std::size_t>(leg.machine)].add_demand(task.uid, r);
    mark_dirty(leg.machine);
  }
  for (const auto& leg : task.est_remote) {
    const Resources r = leg_resources(leg);
    alloc_est_[static_cast<std::size_t>(leg.machine)] += r;
    // est legs normally coincide with pd.remote (already marked), but the
    // kAllocation view reads alloc_est_, so flag them explicitly.
    avail_dirty_[static_cast<std::size_t>(leg.machine)] = 1;
  }

  remove_runnable(stage, probe.task_index);
  stage.runnable--;
  stage.running++;
  job.running_tasks++;
  job.current_alloc += pd.local;
  running_total_++;

  if (tracer_) {
    trace::Event ev;
    ev.kind = trace::EventKind::kTaskStart;
    ev.time = now_;
    ev.a = task.uid;
    ev.b = job.id;
    ev.c = probe.group.stage;
    ev.d = probe.task_index;
    ev.e = probe.machine;
    tracer_->record(ev);
  }
}

void Simulator::on_finish(int uid, long generation) {
  // A prediction for a task whose job has since retired is stale by
  // definition (the task finished; its generation moved on).
  if (!has_task(uid)) return;
  TaskState& task = task_at(uid);
  if (task.status != TaskStatus::kRunning || task.generation != generation)
    return;  // stale prediction
  update_progress(task);
  complete_task(uid, /*failed=*/task.will_fail);
}

void Simulator::complete_task(int uid, bool failed,
                              trace::KillReason reason) {
  const TaskLoc loc = loc_at(uid);
  JobState& job = job_at(loc.job);
  StageState& stage = job.stages[static_cast<std::size_t>(loc.stage)];
  TaskState& task = stage.tasks[static_cast<std::size_t>(loc.index)];

  if (tracer_) {
    trace::Event ev;
    ev.kind = failed ? trace::EventKind::kTaskKill
                     : trace::EventKind::kTaskFinish;
    ev.time = now_;
    ev.a = uid;
    ev.b = loc.job;
    ev.c = loc.stage;
    ev.d = loc.index;
    ev.e = task.host;
    if (failed) ev.f = static_cast<std::int64_t>(reason);
    tracer_->record(ev);
  }

  machines_[static_cast<std::size_t>(task.host)].remove_demand(uid);
  mark_dirty(task.host);
  alloc_est_[static_cast<std::size_t>(task.host)] =
      (alloc_est_[static_cast<std::size_t>(task.host)] - task.est_local)
          .max_zero();
  hosted_count_[static_cast<std::size_t>(task.host)]--;
  if (!job.hosted_per_machine.empty())
    job.hosted_per_machine[static_cast<std::size_t>(task.host)]--;
  for (const auto& leg : task.placement.remote) {
    machines_[static_cast<std::size_t>(leg.machine)].remove_demand(uid);
    mark_dirty(leg.machine);
  }
  for (const auto& leg : task.est_remote) {
    const Resources r = leg_resources(leg);
    alloc_est_[static_cast<std::size_t>(leg.machine)] =
        (alloc_est_[static_cast<std::size_t>(leg.machine)] - r).max_zero();
    // After a read failover the est legs can differ from placement.remote
    // (marked above): flag them for the availability cache explicitly.
    avail_dirty_[static_cast<std::size_t>(leg.machine)] = 1;
  }

  stage.running--;
  job.running_tasks--;
  job.current_alloc = (job.current_alloc - task.placement.local).max_zero();
  running_total_--;

  if (failed) {
    task.status = TaskStatus::kRunnable;
    task.host = -1;
    task.progress = 0;
    task.generation++;
    stage.runnable++;
    add_runnable(stage, loc.index);
    refresh_dirty();
    return;
  }

  task.status = TaskStatus::kFinished;
  task.finish_time = now_;
  task.generation++;
  stage.finished++;
  job.finished_tasks++;
  total_finished_tasks_++;

  if (task.spec.output_bytes > 0) {
    auto it = std::find_if(
        stage.output_locations.begin(), stage.output_locations.end(),
        [&](const auto& p) { return p.first == task.host; });
    if (it == stage.output_locations.end()) {
      stage.output_locations.emplace_back(task.host, task.spec.output_bytes);
    } else {
      it->second += task.spec.output_bytes;
    }
  }

  if (config_.collect_task_records) {
    TaskRecord rec;
    rec.job = job.id;
    rec.stage = loc.stage;
    rec.index = loc.index;
    rec.host = task.host;
    rec.start = task.start_time;
    rec.finish = now_;
    rec.attempts = task.attempts;
    rec.local_fraction = local_fraction(task.spec, task.host);
    rec.natural_duration = task.placement.duration;
    result_.tasks.push_back(std::move(rec));
  }
  TaskReport report;
  report.job = job.id;
  report.stage = loc.stage;
  report.template_id = job.template_id;
  report.peak_usage = task.placement.local;
  report.duration = now_ - task.start_time;
  reports_.push_back(std::move(report));

  if (stage.done()) {
    for (int s2 = 0; s2 < static_cast<int>(job.stages.size()); ++s2) {
      StageState& other = job.stages[static_cast<std::size_t>(s2)];
      if (std::find(other.deps.begin(), other.deps.end(), loc.stage) ==
          other.deps.end())
        continue;
      if (--other.unfinished_deps == 0) make_stage_runnable(job, s2);
    }
  }
  if (job.complete()) {
    job.finish = now_;
    completed_jobs_++;
    if (job.template_id >= 0 &&
        profiled_templates_.insert(job.template_id).second) {
      profile_version_++;  // kLearnedProfile estimates may snap to truth
    }
    // Streaming: fold the finished job into its record and free its
    // state. Only the success path can complete a job, so retirement
    // never happens mid-pass (preemption requeues, it never finishes).
    if (streaming()) retire_job(job);
  }
  refresh_dirty();
}

void Simulator::mark_dirty(MachineId m) {
  // Anything that changes a machine's true demands, capacity or external
  // usage also changes its tracker view: flag it for the next pass's
  // availability cache (consumed there, unlike dirty_flags_ which
  // refresh_dirty() clears).
  avail_dirty_[static_cast<std::size_t>(m)] = 1;
  if (!dirty_flags_[static_cast<std::size_t>(m)]) {
    dirty_flags_[static_cast<std::size_t>(m)] = 1;
    dirty_list_.push_back(m);
  }
}

void Simulator::update_progress(TaskState& t) {
  if (t.status != TaskStatus::kRunning) return;
  const double dt = now_ - t.progress_updated_at;
  if (dt > 0 && t.speed > 0 && t.placement.duration > 0) {
    t.progress =
        std::min(1.0, t.progress + dt * t.speed / t.placement.duration);
  }
  t.progress_updated_at = now_;
}

double Simulator::compute_speed(const TaskState& t) const {
  const auto& host = machines_[static_cast<std::size_t>(t.host)];
  double speed = host.grant_ratio(t.placement.local);
  for (const auto& leg : t.placement.remote) {
    const Resources r = leg_resources(leg);
    speed = std::min(
        speed,
        machines_[static_cast<std::size_t>(leg.machine)].grant_ratio(r));
  }
  return speed;
}

void Simulator::refresh_dirty() {
  if (dirty_list_.empty()) return;
  // Collect the tasks touching any dirty machine.
  std::unordered_set<int> affected;
  for (MachineId m : dirty_list_) {
    for (const auto& [uid, demand] : machines_[static_cast<std::size_t>(m)]
                                         .demands()) {
      affected.insert(uid);
    }
    dirty_flags_[static_cast<std::size_t>(m)] = 0;
  }
  dirty_list_.clear();

  for (int uid : affected) {
    TaskState& t = task_at(uid);
    if (t.status != TaskStatus::kRunning) continue;
    update_progress(t);
    const double new_speed = compute_speed(t);
    const bool first_prediction = t.speed == 0 && t.progress == 0;
    if (!first_prediction &&
        std::abs(new_speed - t.speed) <= kSpeedEps * std::max(1.0, t.speed))
      continue;
    t.speed = new_speed;
    t.generation++;
    if (t.speed <= kSpeedEps) continue;  // stalled; re-predicted later
    const double target = target_progress(t);
    const double remaining =
        std::max(0.0, target - t.progress + kProgressEps) *
        t.placement.duration / t.speed;
    push({now_ + remaining, 0, Event::Type::kFinish, uid, t.generation});
  }
}

void Simulator::on_heartbeat(Scheduler& scheduler) {
  if (config_.collect_fairness) sample_fairness(config_.heartbeat_period);
  run_pass(scheduler);
  push({now_ + config_.heartbeat_period, 0, Event::Type::kHeartbeat, 0, 0});
}

void Simulator::sample_fairness(double dt) {
  // A job's purported fair allocation is an equal split among the jobs
  // that currently demand resources (running or runnable tasks); jobs
  // blocked at a barrier demand nothing and are excluded, matching how a
  // fair scheduler would treat them.
  const auto demanding = [](const JobState& job) {
    if (!job.arrived || job.complete()) return false;
    if (job.running_tasks > 0) return true;
    for (const auto& stage : job.stages) {
      if (stage.runnable > 0) return true;
    }
    return false;
  };
  int active = 0;
  for (const auto& job : jobs_) {
    if (demanding(job)) active++;
  }
  if (active == 0) return;
  const double fair = 1.0 / static_cast<double>(active);
  for (auto& job : jobs_) {
    if (!demanding(job)) continue;
    const double share =
        job.current_alloc.normalized_by(cluster_capacity_).max_component();
    job.unfairness_integral += dt * (share - fair) / fair;
  }
}

void Simulator::run_pass(Scheduler& scheduler) {
  const int backlog = runnable_total_;
  const long pass = pass_index_++;
  if (tracer_) {
    trace::Event ev;
    ev.kind = trace::EventKind::kPassBegin;
    ev.time = now_;
    ev.a = pass;
    ev.b = backlog;
    tracer_->record(ev);
  }
  ContextImpl ctx(*this);
  const auto t0 = std::chrono::steady_clock::now();
  scheduler.schedule(ctx);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  if (tracer_) {
    trace::Event ev;
    ev.kind = trace::EventKind::kPassEnd;
    ev.time = now_;
    ev.a = pass;
    ev.b = ctx.placements;
    ev.timing =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count();
    tracer_->record(ev);
  }
  result_.scheduler_cost.invocations++;
  result_.scheduler_cost.placements += ctx.placements;
  result_.scheduler_cost.total_seconds += secs;
  result_.scheduler_cost.max_seconds =
      std::max(result_.scheduler_cost.max_seconds, secs);
  result_.pass_latency.add_seconds(secs);
  if (config_.collect_pass_samples) {
    result_.pass_samples.push_back(
        {now_, backlog, static_cast<int>(ctx.placements), secs});
  }
  refresh_dirty();
}

void Simulator::on_timeline() {
  TimelineSample sample;
  sample.time = now_;
  sample.running_tasks = running_total_;
  Resources usage;
  for (int mi = 0; mi < num_real_machines_; ++mi) {
    const auto& machine = machines_[static_cast<std::size_t>(mi)];
    const Resources u = machine.usage();
    usage += u;
    const Resources frac = u.normalized_by(machine.capacity());
    for (std::size_t i = 0; i < kNumResources; ++i) {
      result_.machine_usage_samples[i].push_back(frac.at(i));
    }
  }
  const Resources frac = usage.normalized_by(cluster_capacity_);
  for (std::size_t i = 0; i < kNumResources; ++i)
    sample.utilization[i] = frac.at(i);
  result_.timeline.push_back(sample);
  push({now_ + config_.timeline_period, 0, Event::Type::kTimeline, 0, 0});
}

void Simulator::on_activity(int index, bool start) {
  const auto& act = config_.activities[static_cast<std::size_t>(index)];
  // Overlapping activities on one machine stack; the machine carries their
  // sum while it is up. A down machine's activities are suspended — the
  // accumulator keeps tracking so recovery resumes whatever is still in
  // its window.
  auto& ext = external_active_[static_cast<std::size_t>(act.machine)];
  ext = start ? ext + act.usage : (ext - act.usage).max_zero();
  if (!machine_up_[static_cast<std::size_t>(act.machine)]) return;
  machines_[static_cast<std::size_t>(act.machine)].set_external_usage(ext);
  mark_dirty(act.machine);
  refresh_dirty();
}

double Simulator::compute_up_fraction() const {
  double sum = 0;
  int dims = 0;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    if (cluster_capacity_.at(i) <= 0) continue;
    sum += up_capacity_.at(i) / cluster_capacity_.at(i);
    dims++;
  }
  return dims > 0 ? sum / dims : 1.0;
}

void Simulator::update_rack_uplink(MachineId member) {
  const int k = config_.machines_per_rack;
  if (k <= 0) return;
  const int rack = member / k;
  // The uplink is the aggregate NIC bandwidth of the rack's *up* members,
  // divided by the oversubscription factor; a failed member takes its
  // share of the uplink with it and running cross-rack flows re-share.
  Resources uplink;
  for (int m = rack * k; m < std::min((rack + 1) * k, num_real_machines_);
       ++m) {
    if (!machine_up_[static_cast<std::size_t>(m)]) continue;
    const Resources& cap = machines_[static_cast<std::size_t>(m)].capacity();
    uplink[Resource::kNetIn] += cap[Resource::kNetIn];
    uplink[Resource::kNetOut] += cap[Resource::kNetOut];
  }
  uplink /= config_.rack_oversubscription;
  const auto u = static_cast<std::size_t>(num_real_machines_ + rack);
  machines_[u].set_capacity(uplink);
  cap_planes_.set(u, uplink);  // keep the SoA capacity mirror coherent
  mark_dirty(static_cast<MachineId>(u));
}

void Simulator::on_machine_down(MachineId m) {
  if (down_depth_[static_cast<std::size_t>(m)]++ > 0) return;  // nested
  down_count_++;
  churn_version_++;  // probes depend on replica masks and uplink capacity
  result_.churn.machines_failed++;
  if (tracer_) {
    trace::Event ev;
    ev.kind = trace::EventKind::kMachineDown;
    ev.time = now_;
    ev.a = m;
    tracer_->record(ev);
  }
  account_up_capacity();
  up_capacity_ =
      (up_capacity_ - machines_[static_cast<std::size_t>(m)].capacity())
          .max_zero();
  up_fraction_ = compute_up_fraction();

  machine_up_[static_cast<std::size_t>(m)] = 0;
  machines_[static_cast<std::size_t>(m)].set_up(false);
  machines_[static_cast<std::size_t>(m)].set_external_usage(Resources{});

  // Every running attempt touching the machine is affected (sorted for a
  // deterministic order — the demands map iteration order is not part of
  // the simulation contract). Tasks hosted on it lose their attempt and
  // re-queue. Tasks merely streaming input from it fail the read over to
  // a surviving replica (HDFS-style) and keep their progress; only when
  // no replica of some input survives is the reader killed too.
  std::vector<int> victims;
  victims.reserve(machines_[static_cast<std::size_t>(m)].demands().size());
  for (const auto& [uid, demand] :
       machines_[static_cast<std::size_t>(m)].demands()) {
    victims.push_back(uid);
  }
  std::sort(victims.begin(), victims.end());
  for (int uid : victims) {
    TaskState& t = task_at(uid);
    if (t.status != TaskStatus::kRunning) continue;
    if (t.host != m && inputs_available(t.spec, machine_up_)) {
      failover_reads(uid);
      continue;
    }
    result_.churn.task_attempts_lost++;
    result_.churn.work_lost_seconds += now_ - t.start_time;
    complete_task(uid, /*failed=*/true, trace::KillReason::kMachineFailure);
  }

  update_rack_uplink(m);
  mark_dirty(m);
  refresh_dirty();
}

void Simulator::failover_reads(int uid) {
  const TaskLoc& loc = loc_at(uid);
  JobState& job = job_at(loc.job);
  TaskState& t = job.stages[static_cast<std::size_t>(loc.stage)]
                     .tasks[static_cast<std::size_t>(loc.index)];
  // Bank progress earned under the old placement, then swap every demand
  // the attempt holds for ones resolved against the surviving replica
  // set. The scheduler's estimate books are left alone: completion
  // subtracts the same estimates that were added at start.
  update_progress(t);
  machines_[static_cast<std::size_t>(t.host)].remove_demand(uid);
  mark_dirty(t.host);
  for (const auto& leg : t.placement.remote) {
    machines_[static_cast<std::size_t>(leg.machine)].remove_demand(uid);
    mark_dirty(leg.machine);
  }
  job.current_alloc = (job.current_alloc - t.placement.local).max_zero();

  PlacementDemand pd = compute_placement(
      t.spec, t.host, static_cast<unsigned long long>(t.uid), &machine_up_);
  add_rack_legs(t.host, pd);
  t.placement = pd;
  job.current_alloc += pd.local;
  machines_[static_cast<std::size_t>(t.host)].add_demand(uid, pd.local);
  for (const auto& leg : pd.remote) {
    machines_[static_cast<std::size_t>(leg.machine)].add_demand(
        uid, leg_resources(leg));
    mark_dirty(leg.machine);
  }
  // Both the natural duration and the share ratios may have changed;
  // the sentinel defeats refresh_dirty's same-speed shortcut so a fresh
  // finish prediction is always issued.
  t.speed = -1;
  result_.churn.read_failovers++;
}

void Simulator::on_machine_up(MachineId m) {
  auto& depth = down_depth_[static_cast<std::size_t>(m)];
  if (depth <= 0) return;  // unmatched up event (defensive)
  if (--depth > 0) return;  // another down window still holds it
  down_count_--;
  churn_version_++;  // probes depend on replica masks and uplink capacity
  result_.churn.machines_recovered++;
  if (tracer_) {
    trace::Event ev;
    ev.kind = trace::EventKind::kMachineUp;
    ev.time = now_;
    ev.a = m;
    tracer_->record(ev);
  }
  account_up_capacity();
  up_capacity_ += machines_[static_cast<std::size_t>(m)].capacity();
  up_fraction_ = compute_up_fraction();

  machine_up_[static_cast<std::size_t>(m)] = 1;
  machines_[static_cast<std::size_t>(m)].set_up(true);
  // Resume whatever background activity windows are still open.
  machines_[static_cast<std::size_t>(m)].set_external_usage(
      external_active_[static_cast<std::size_t>(m)]);

  update_rack_uplink(m);
  mark_dirty(m);
  refresh_dirty();
}

// Push-queue JobSource feeding a stepped engine (DESIGN.md §14): the
// federated dispatcher pushes each job it admits to this cell, in global
// arrival order. total_jobs() reports the driver's *expected* total (the
// global job count), which only sizes the reserved arrival-seq block —
// every arrival seq stays below every heartbeat/finish seq regardless of
// how many jobs this particular cell ends up receiving, so event ordering
// matches a batch run of the same job sequence bit for bit.
class QueueJobSource final : public JobSource {
 public:
  explicit QueueJobSource(long expected_jobs) : expected_(expected_jobs) {}

  long total_jobs() const override { return expected_; }

  bool peek(JobPeek& out) override {
    if (queue_.empty()) return false;
    const JobSpec& job = queue_.front();
    out.arrival = job.arrival;
    out.tasks = 0;
    for (const auto& stage : job.stages) {
      out.tasks += static_cast<long>(stage.tasks.size());
    }
    return true;
  }

  bool next(JobSpec& out) override {
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  void push(const JobSpec& spec) {
    if (spec.arrival < last_arrival_) {
      throw std::runtime_error(
          "SimEngine: job '" + spec.name + "' submitted out of order (" +
          std::to_string(spec.arrival) + " after " +
          std::to_string(last_arrival_) + ")");
    }
    last_arrival_ = spec.arrival;
    queue_.push_back(spec);
  }

  long queued() const { return static_cast<long>(queue_.size()); }

 private:
  long expected_ = 0;
  SimTime last_arrival_ = -std::numeric_limits<double>::infinity();
  std::deque<JobSpec> queue_;
};

}  // namespace

struct SimEngine::Impl {
  QueueJobSource source;
  Simulator sim;
  Scheduler* scheduler;
  long expected = 0;
  long submitted = 0;
  bool finished = false;

  static SimConfig streamed(SimConfig config) {
    config.stream.enabled = true;
    return config;
  }

  Impl(const SimConfig& config, Scheduler& sched, long expected_jobs)
      : source(expected_jobs),
        sim(streamed(config), source),
        scheduler(&sched),
        expected(expected_jobs) {
    sim.prepare(sched);
  }
};

SimEngine::SimEngine(const SimConfig& config, Scheduler& scheduler,
                     long expected_jobs)
    : impl_(std::make_unique<Impl>(config, scheduler, expected_jobs)) {
  if (expected_jobs < 0) {
    throw std::invalid_argument("SimEngine: negative expected_jobs");
  }
}

SimEngine::~SimEngine() = default;

void SimEngine::submit(const JobSpec& spec) {
  if (impl_->finished) {
    throw std::logic_error("SimEngine: submit() after finish()");
  }
  if (impl_->submitted >= impl_->expected) {
    throw std::invalid_argument(
        "SimEngine: more than expected_jobs=" +
        std::to_string(impl_->expected) + " jobs submitted");
  }
  impl_->source.push(spec);
  impl_->submitted++;
}

void SimEngine::advance_before(SimTime t) {
  while (impl_->sim.step_one(*impl_->scheduler, t, /*inclusive=*/false) ==
         Simulator::StepStatus::kProcessed) {
  }
}

void SimEngine::advance_through(SimTime t) {
  while (impl_->sim.step_one(*impl_->scheduler, t, /*inclusive=*/true) ==
         Simulator::StepStatus::kProcessed) {
  }
}

std::vector<JobId> SimEngine::halt() {
  std::vector<JobId> unfinished = impl_->sim.halt_resident();
  // Jobs still queued for admission are unfinished too; ids are assigned
  // in submission order, so the queued tail occupies the last `queued`
  // ids. The queue itself stays put — finalize() folds it into the
  // finish = -1 records an aborted batch run would produce.
  const long queued = impl_->source.queued();
  for (long id = impl_->submitted - queued; id < impl_->submitted; ++id) {
    unfinished.push_back(static_cast<JobId>(id));
  }
  return unfinished;
}

SimResult SimEngine::finish() {
  if (impl_->finished) {
    throw std::logic_error("SimEngine: finish() called twice");
  }
  impl_->finished = true;
  Simulator& sim = impl_->sim;
  if (!sim.halted()) {
    // Same loop shape as run(), with the engine's own termination bound:
    // every *submitted* job accounted for, rather than the global
    // expectation (this cell may only ever see a share of it).
    while (sim.completed_or_doomed() < impl_->submitted) {
      if (sim.step_one(*impl_->scheduler,
                       std::numeric_limits<double>::infinity(),
                       /*inclusive=*/true) !=
          Simulator::StepStatus::kProcessed) {
        break;
      }
    }
  }
  SimResult result = sim.finalize();
  // finalize() judged completion against the global expectation; the
  // engine's contract is "every job submitted to it finished".
  result.completed =
      !sim.halted() && sim.completed_jobs() == impl_->submitted;
  return result;
}

EngineLoad SimEngine::load() const {
  EngineLoad l = impl_->sim.engine_load();
  l.active_jobs += impl_->source.queued();
  return l;
}

long SimEngine::submitted() const { return impl_->submitted; }

bool SimEngine::quiescent_until(SimTime t) const {
  return impl_->source.queued() == 0 && impl_->sim.quiescent_until(t);
}

SimResult simulate(const SimConfig& config, const Workload& workload,
                   Scheduler& scheduler) {
  if (config.stream.enabled) {
    WorkloadJobSource source(workload);
    Simulator sim(config, source);
    return sim.run(scheduler);
  }
  Simulator sim(config, workload);
  return sim.run(scheduler);
}

SimResult simulate_stream(const SimConfig& config, JobSource& source,
                          Scheduler& scheduler) {
  SimConfig cfg = config;
  cfg.stream.enabled = true;
  Simulator sim(cfg, source);
  return sim.run(scheduler);
}

}  // namespace tetris::sim
