// Workload model: jobs are DAGs of stages, stages are sets of tasks, and
// tasks carry the multi-resource work/demand description of paper §3.1
// (Tables 4 and 5). Specs are immutable inputs to the simulator; runtime
// state lives in job_state.h.
#pragma once

#include <string>
#include <vector>

#include "util/resources.h"
#include "util/units.h"

namespace tetris::sim {

using MachineId = int;
using JobId = int;

// One contiguous piece of task input.
//
// Three kinds, distinguished by fields:
//  * DFS block: `replicas` lists machines holding a copy (HDFS-style). The
//    task reads locally if placed on a replica, remotely otherwise.
//  * Shuffle input: `from_stage >= 0`; the bytes come from the outputs of
//    that upstream stage. Concrete sources are only known once the upstream
//    stage has run, so the simulator materializes these splits when the
//    stage becomes runnable.
//  * Generated data: no replicas and no from_stage — the task synthesizes
//    its input (no read leg).
struct InputSplit {
  double bytes = 0;
  std::vector<MachineId> replicas;
  int from_stage = -1;
};

// Static description of one task (paper Table 4).
//
// Work terms (the f's of Eq. 5): cpu_cycles (core-seconds), input bytes (per
// split), output_bytes (written to the local disk). Demand terms (the d's):
// peak_cores and peak_mem are allocated at the host for the task's whole
// lifetime; the I/O bandwidth demands are *derived from placement* — given
// the host, the task's natural duration is the max over work legs at peak
// rates, and the per-resource rates follow (see placement.h). max_io_bw
// caps how fast the task's pipeline can drive any single I/O leg.
struct TaskSpec {
  double cpu_cycles = 0;    // core-seconds of compute
  double peak_cores = 1;    // d_cpu
  double peak_mem = 1 * kGB;  // d_mem, all-or-nothing (footnote to Eq. 5)
  std::vector<InputSplit> inputs;
  double output_bytes = 0;
  // Peak bytes/sec the task's pipeline can drive: caps its total read rate
  // (local + remote streams merged) and, separately, its write rate.
  double max_io_bw = 100 * kMB;
};

// Task→machine placement constraint (DESIGN.md §13). All clauses AND
// together; an empty constraint admits every machine, so unconstrained
// workloads pay nothing. Labels reference `SimConfig::machine_labels`
// (e.g. "gpu", "highmem", "rack0"); a constraint naming a label no
// machine declares is rejected at simulation start, not silently
// unsatisfiable (same fail-fast contract as the num_machines vs
// machine_capacities contradiction).
struct PlacementConstraint {
  // Machine must carry every one of these labels (require-class).
  std::vector<std::string> require_labels;
  // Machine must carry none of these labels.
  std::vector<std::string> forbid_labels;
  // At most one task of this job per machine (anti-affinity within the
  // job — spread for fault tolerance).
  bool anti_affinity = false;
  // Machine must sit in the same rack (SimConfig::machines_per_rack; the
  // machine itself when rack modeling is off) as at least one replica of
  // at least one input split of the stage, evaluated after shuffle splits
  // materialize. Stages without materialized inputs are unconstrained by
  // this clause.
  bool same_rack_as_input = false;

  bool empty() const {
    return require_labels.empty() && forbid_labels.empty() &&
           !anti_affinity && !same_rack_as_input;
  }
};

// A stage: tasks performing the same computation on different partitions
// (so their resource profiles are statistically similar, §4.1). `deps` are
// indices of stages in the same job that must fully finish first (strict
// barrier, as in map -> reduce). `constraint` applies to every task of the
// stage (tasks of a stage run the same computation, so they share
// placement requirements).
struct StageSpec {
  std::string name;
  std::vector<TaskSpec> tasks;
  std::vector<int> deps;
  PlacementConstraint constraint;
};

// A job: a DAG of stages plus an arrival time. `template_id` identifies
// recurring jobs (same computation on new data); the demand estimator uses
// it to look up statistics from prior runs (§4.1). `queue` groups jobs for
// queue-level fairness (paper §3.4 applies its policies to "jobs (or
// groups of jobs)", as YARN's Capacity scheduler does with queues).
struct JobSpec {
  std::string name;
  SimTime arrival = 0;
  std::vector<StageSpec> stages;
  int template_id = -1;  // -1: not recurring
  int queue = 0;
};

// Whole-workload input to a simulation run.
struct Workload {
  std::vector<JobSpec> jobs;

  std::size_t total_tasks() const;
};

// Validates DAG shape (deps in range, acyclic, no self-dep), non-negative
// work and demands, shuffle references pointing at true dependencies, and
// internally-consistent placement constraints (no empty label names, no
// label both required and forbidden). Returns an empty string when valid,
// else a description of the first problem found.
std::string validate(const JobSpec& job);
std::string validate(const Workload& workload);

// Same, plus every label a constraint references must appear in
// `declared_labels` — the set of labels some machine actually carries
// (SimConfig::machine_labels). A constraint naming an undeclared label is
// a spec bug, not an unsatisfiable-but-legal request; the simulator calls
// this overload so it fails fast with a clear error.
std::string validate(const JobSpec& job,
                     const std::vector<std::string>& declared_labels);
std::string validate(const Workload& workload,
                     const std::vector<std::string>& declared_labels);

}  // namespace tetris::sim
