// Interference model (paper §1, §2.1): when schedulers over-allocate a
// resource, tasks do not just share it — systemic effects (disk seeks,
// network incast, buffer overflows) lower the *total* achievable
// throughput. This is why over-allocation "sharply lowers throughput" and
// why two network-bound tasks co-scheduled take more than twice as long.
//
// Tetris never triggers this model (its admission check forbids
// over-allocation); the slot-based and DRF baselines do, because they
// ignore disk and network demands.
#pragma once

#include <algorithm>

#include "util/resources.h"

namespace tetris::sim {

struct InterferenceModel {
  // Fractional capacity lost per extra task contending for a disk
  // (seek/rotational overhead when request streams interleave).
  double disk_seek_alpha = 0.06;
  // Fractional capacity lost per extra flow when the inbound link is
  // over-subscribed (incast: synchronized senders overflow switch buffers).
  double incast_alpha = 0.04;
  // Floor on efficiency degradation.
  double min_efficiency = 0.4;
  // Over-subscription at which the penalty is fully engaged: the
  // degradation ramps linearly from zero at 100% load to full at
  // (1 + penalty_ramp) x capacity. A cliff at exactly 100% would punish
  // exact-fit packings for femto-scale float rounding.
  double penalty_ramp = 0.5;
  // Speed multiplier applied to every task on a machine whose memory is
  // over-committed (thrashing). The paper's Eq. 5 footnote: runtime can be
  // "arbitrarily worse" below peak memory; we use a harsh constant.
  double mem_thrash_factor = 0.2;

  // Effective capacity of resource `r` on a machine with raw capacity
  // `cap`, when `n_demanding` tasks together demand `total_demand`.
  // Degradation only kicks in under over-allocation: at or below capacity
  // the streams are provisioned and do not destructively interfere.
  double effective_capacity(Resource r, double cap, int n_demanding,
                            double total_demand) const {
    if (n_demanding <= 1 || cap <= 0) return cap;
    if (total_demand <= cap * (1.0 + 1e-9)) return cap;
    double alpha = 0;
    switch (r) {
      case Resource::kDiskRead:
      case Resource::kDiskWrite:
        alpha = disk_seek_alpha;
        break;
      case Resource::kNetIn:
      case Resource::kNetOut:
        alpha = incast_alpha;
        break;
      default:
        return cap;  // CPU timeshares cleanly; memory handled via thrash.
    }
    const double over = total_demand / cap - 1.0;
    const double engage = std::min(1.0, over / penalty_ramp);
    const double eff =
        1.0 - alpha * static_cast<double>(n_demanding - 1) * engage;
    return cap * std::max(min_efficiency, eff);
  }
};

}  // namespace tetris::sim
