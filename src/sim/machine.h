// Runtime state of one machine: which tasks demand what here, how the
// contended resources are shared, and the two availability views (by
// allocation vs by observed usage) that the resource tracker reports.
#pragma once

#include <array>
#include <unordered_map>

#include "sim/interference.h"
#include "sim/spec.h"
#include "util/resources.h"

namespace tetris::sim {

// A machine shares each resource proportionally to demand when
// over-subscribed, with interference-degraded effective capacity (see
// interference.h). All state changes go through add/remove; share ratios
// are recomputed lazily.
class Machine {
 public:
  Machine(MachineId id, const Resources& capacity,
          const InterferenceModel* interference);

  MachineId id() const { return id_; }
  const Resources& capacity() const { return capacity_; }

  // Replaces the capacity vector and re-shares demand against it. Used for
  // rack uplinks, whose bandwidth is the aggregate of their *up* members'
  // NICs and therefore shrinks when a member machine fails.
  void set_capacity(const Resources& capacity);

  // Churn state. The simulator kills every demand touching a machine
  // before taking it down, so a down machine holds no task demands; the
  // flag gates the availability views (a down machine offers nothing).
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  // Registers / removes one task's demand rates on this machine (a task's
  // local demands on its host, or its remote leg on an input source).
  void add_demand(int task_uid, const Resources& demand);
  void remove_demand(int task_uid);
  bool has_demand(int task_uid) const {
    return task_demands_.contains(task_uid);
  }

  // External (non-task) resource usage: data ingestion, evacuation,
  // re-replication (paper §4.3). Absolute usage rates, not deltas.
  void set_external_usage(const Resources& usage);
  const Resources& external_usage() const { return external_usage_; }

  // Fraction of its demand a task is granted on this machine: the min over
  // resources it demands of the machine's share ratio, times the thrash
  // factor if memory is over-committed. In (0, 1].
  double grant_ratio(const Resources& demand) const;

  // Per-resource share ratio (grant / demand) currently in force.
  double share_ratio(Resource r) const {
    return ratios_[static_cast<std::size_t>(r)];
  }
  bool memory_thrashing() const { return thrashing_; }

  // Sum of all task demands plus external usage (what the machine *would*
  // consume with no capacity limits).
  Resources total_demand() const { return total_task_demand_ + external_usage_; }

  // Actual consumption: granted rates (demand * share ratio) plus external
  // usage, capped at capacity. This is what the resource tracker's OS
  // counters would observe.
  Resources usage() const;

  // Availability by allocation: capacity - sum of task demands - external
  // usage, floored at zero. The bookkeeping view a scheduler holds.
  Resources available_by_allocation() const;

  int num_tasks() const { return static_cast<int>(task_demands_.size()); }

  // Task uid -> demand rates registered here (hosted tasks and remote legs
  // alike). Exposed for the simulator's rate-refresh and tracker logic.
  const std::unordered_map<int, Resources>& demands() const {
    return task_demands_;
  }

 private:
  void recompute();

  MachineId id_;
  Resources capacity_;
  const InterferenceModel* interference_;
  std::unordered_map<int, Resources> task_demands_;
  Resources total_task_demand_;
  std::array<int, kNumResources> demanding_count_{};
  Resources external_usage_;
  std::array<double, kNumResources> ratios_;
  bool thrashing_ = false;
  bool up_ = true;
};

}  // namespace tetris::sim
