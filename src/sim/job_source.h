// Incremental job ingestion for the streaming simulator (DESIGN.md §11).
//
// A JobSource yields jobs one at a time in non-decreasing arrival order —
// the shape of an online arrival process, where the scheduler never sees
// the trace in full. The simulator admits jobs through a bounded
// look-ahead window and retires them on completion, so memory stays
// proportional to the in-flight window instead of the whole trace.
// Sources must know their total job count upfront (trace headers record
// it); the simulator needs it to lay out deterministic event sequence
// numbers, which is what keeps streaming runs bit-identical to batch runs.
#pragma once

#include <cstddef>

#include "sim/spec.h"

namespace tetris::sim {

// Cheap metadata about the next job, readable without materializing it.
// The admission gate uses `arrival` to decide *when* and `tasks` to decide
// *whether* (resident-task ceiling) the job may enter the simulation.
struct JobPeek {
  SimTime arrival = 0;
  long tasks = 0;
};

class JobSource {
 public:
  virtual ~JobSource() = default;

  // Total number of jobs this source will yield over its lifetime.
  virtual long total_jobs() const = 0;

  // Arrival time and task count of the next job without consuming it.
  // Returns false once the source is exhausted.
  virtual bool peek(JobPeek& out) = 0;

  // Consumes the next job. Implementations must yield jobs in
  // non-decreasing arrival order and throw (std::runtime_error) on an
  // out-of-order record — a stream the scheduler cannot replay faithfully
  // is an input error, not something to silently reorder.
  virtual bool next(JobSpec& out) = 0;
};

// Adapter over an in-memory workload. The workload must already be sorted
// by arrival time (use sorted_by_arrival below); the constructor throws
// std::invalid_argument otherwise, naming the first offending job.
class WorkloadJobSource final : public JobSource {
 public:
  explicit WorkloadJobSource(const Workload& workload);

  long total_jobs() const override;
  bool peek(JobPeek& out) override;
  bool next(JobSpec& out) override;

 private:
  const Workload* workload_;
  std::size_t next_ = 0;
};

// Copy of `workload` with jobs stably sorted by arrival time — the
// canonical pre-step before streaming an in-memory workload. Job ids are
// assigned by position, so batch and streaming runs of the *sorted*
// workload are comparable record for record.
Workload sorted_by_arrival(const Workload& workload);

}  // namespace tetris::sim
