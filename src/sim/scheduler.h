// The scheduler abstraction. The simulator drives a Scheduler at every
// heartbeat / job arrival with a SchedulerContext; the scheduler probes
// (task-group, machine) pairs and commits placements. This mirrors the
// architecture of Figure 3: node managers report availability, job managers
// report demands per pending task, and the cluster-wide resource manager
// matches tasks to machines.
//
// Schedulers see *estimated* demands (per the simulation's estimation
// model, §4.1) and the tracker-reported availability view; the simulator
// always charges true demands. This gap is deliberate: it is where
// over-allocation and reclaim behaviour come from.
#pragma once

#include <string>
#include <vector>

#include "sim/placement.h"
#include "sim/spec.h"
#include "util/perf_counters.h"
#include "util/resources.h"
#include "util/soa_planes.h"
#include "util/units.h"

namespace tetris::trace {
class Recorder;
}  // namespace tetris::trace

namespace tetris::sim {

// Identifies a stage of a job ("task group"): tasks of a stage are
// statistically similar (§4.1), so schedulers reason at group granularity
// and let the context pick the best-locality concrete task.
struct GroupRef {
  JobId job = -1;
  int stage = -1;

  friend bool operator==(const GroupRef&, const GroupRef&) = default;
};

// Read-only snapshot of a runnable group handed to schedulers.
struct GroupView {
  GroupRef ref;
  int runnable = 0;
  int running = 0;
  int finished = 0;
  int total = 0;
  // True iff some other stage of the job consumes this stage's output
  // (i.e. a strict barrier follows it). The end of a job also acts as a
  // barrier (§3.5), so Tetris's barrier hint treats every stage as
  // barrier-preceding; this flag lets variants distinguish.
  bool has_dependents = false;
  // Representative estimated demand of one task, assuming local reads
  // (placement-independent view; probe() refines per machine).
  Resources est_demand;
  double est_duration = 0;
  // Estimated "resource consumption" of one task: sum of capacity-
  // normalized demand dimensions x duration (the SRTF score unit, §3.3.1).
  double est_task_work = 0;
  // How long the group's longest-waiting runnable task has been runnable;
  // feeds starvation detection (§3.5 leaves reservations to future work —
  // Tetris's starvation_threshold knob implements them).
  double longest_wait = 0;
  // For imminent_groups() only: predicted time until the stage's barrier
  // breaks and its tasks become runnable (0 for already-runnable groups).
  double eta = 0;
};

// Read-only snapshot of a job for fairness and SRTF logic.
struct JobView {
  JobId id = -1;
  SimTime arrival = 0;
  int template_id = -1;
  int queue = 0;
  int total_tasks = 0;
  int finished_tasks = 0;
  int running_tasks = 0;
  int runnable_tasks = 0;
  // Sum of demand vectors currently allocated to the job's running tasks.
  Resources current_alloc;
  // Multi-resource SRTF score p: total estimated resource consumption of
  // all remaining (unfinished) tasks (§3.3.1).
  double remaining_work = 0;
};

// Result of probing one (group, machine) pair: the concrete best-locality
// candidate task, its estimated placement-dependent demands, and estimated
// duration. `valid` is false when the group has no runnable task left.
struct Probe {
  bool valid = false;
  GroupRef group;
  MachineId machine = -1;
  int task_index = -1;
  Resources demand;                // estimated local demand rates at machine
  std::vector<RemoteLeg> remote;   // estimated demands at remote sources
  double duration = 0;             // estimated
  double local_fraction = 1.0;     // fraction of input read locally
  double task_work = 0;            // this task's estimated resource use
};

// A task currently running, as visible to schedulers that preempt.
struct RunningTaskView {
  int uid = -1;
  JobId job = -1;
  int stage = -1;
  MachineId machine = -1;
  SimTime started = 0;
  // The demands booked for it at placement (estimated values).
  Resources demand;
};

// Usage report for a finished task; Tetris's demand estimator (§4.1)
// consumes these to profile recurring jobs and running phases.
struct TaskReport {
  JobId job = -1;
  int stage = -1;
  int template_id = -1;
  Resources peak_usage;  // true local demand rates the task exhibited
  double duration = 0;   // true runtime
};

class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  virtual SimTime now() const = 0;
  virtual int num_machines() const = 0;
  virtual const Resources& capacity(MachineId m) const = 0;
  // Cluster-wide total capacity (for dominant-share computations).
  virtual const Resources& cluster_capacity() const = 0;
  // Tracker-reported availability of machine `m`, already net of
  // placements committed earlier in this scheduling pass.
  virtual Resources available(MachineId m) const = 0;
  virtual int running_tasks_on(MachineId m) const = 0;

  // Structure-of-arrays views (DESIGN.md §12): one contiguous zero-padded
  // lane array per resource dimension, lane = machine id, covering every
  // id available()/capacity() accept (real machines first, rack uplinks
  // after). A context that returns them guarantees coherence with
  // available()/capacity() through every in-pass mutation — place() and
  // preempt() update the planes as their source of truth — and across
  // passes through churn, completions and tracker updates. Null by
  // default: the SIMD scoring path then gathers per machine through the
  // virtuals, which stays bit-identical, just slower.
  virtual const util::ResourcePlanes* availability_planes() const {
    return nullptr;
  }
  virtual const util::ResourcePlanes* capacity_planes() const {
    return nullptr;
  }

  // Churn admission filter: false while machine `m` is down (failed and
  // not yet recovered). Down machines report zero availability and refuse
  // probes and placements regardless, so no scheduler can admit to one;
  // checking the flag first merely skips the wasted work. Ids past the
  // real machines (rack uplinks) are always up.
  virtual bool machine_up(MachineId /*m*/) const { return true; }

  // Placement-constraint admission filter (DESIGN.md §13), the companion
  // of machine_up: false when machine `m` cannot legally host a task of
  // `group` — label require/forbid clauses, within-job anti-affinity, or
  // same-rack-as-input. Every scan path (naive oracle, optimized scalar,
  // SIMD waves, baselines) must consult it *before* probing, exactly
  // where it checks machine_up: an inadmissible machine is a plain
  // rejection of the pair, never a drained group. Within one pass the
  // predicate can only flip admissible→inadmissible (placements add
  // anti-affinity hosts; labels and rack sets are pass-constant), so a
  // false result is safe to cache sticky alongside availability
  // rejections. place() re-validates independently, so a scheduler that
  // skips this check loses placements, not correctness. Ids past the real
  // machines (rack uplinks) are never admissible hosts.
  virtual bool constraints_admit(const GroupRef& /*group*/,
                                 MachineId /*m*/) const {
    return true;
  }

  // Retirement watermark (streaming, DESIGN.md §11): every job with id
  // strictly below this has completed and been folded out of the resident
  // set; no group of such a job will ever appear again. Schedulers may
  // drop any per-group state they keep for them (group ids are never
  // reused), which is what keeps scheduler-side memory flat on streaming
  // runs. Always 0 in batch mode — pruning nothing is the default.
  virtual JobId retired_before() const { return 0; }

  // Groups with at least one runnable task, and all arrived-but-unfinished
  // jobs. Snapshots: re-fetch after placements to see updated counts.
  virtual std::vector<GroupView> runnable_groups() const = 0;
  virtual std::vector<JobView> active_jobs() const = 0;

  // Future knowledge (paper §3.5 "Future Demands"): stages whose barrier
  // is about to break — every dependency stage is fully placed and its
  // last tasks have predicted finish times. Each returned view carries the
  // estimated demands of the soon-runnable tasks and `eta`, the predicted
  // seconds until they become runnable. Imperfect by design: predictions
  // move as contention changes.
  virtual std::vector<GroupView> imminent_groups() const = 0;

  virtual Probe probe(const GroupRef& group, MachineId machine) const = 0;
  // Identical result to probe(), written into *out so the caller's heap
  // buffers (the remote-leg vector) keep their capacity across re-probes.
  // The tetris scan re-acquires probes at every runnable-set bump, which
  // made the per-call vector churn a measurable slice of pass latency.
  // Default forwards to probe() for contexts that don't override.
  virtual void probe_into(const GroupRef& group, MachineId machine,
                          Probe* out) const {
    *out = probe(group, machine);
  }
  // Commits a probe: starts the probed task on the probed machine. Returns
  // false if the probe is stale (task no longer runnable).
  virtual bool place(const Probe& probe) = 0;

  // Preemption support (extension; paper §3.1 excludes preemption "for
  // simplicity", YARN's Capacity scheduler has it for fairness
  // enforcement). Killing a task loses its work: it re-queues and
  // re-executes from scratch. The freed resources are reflected in
  // available() immediately.
  virtual std::vector<RunningTaskView> running_tasks() const = 0;
  virtual bool preempt(int task_uid) = 0;

  // Drains completion reports accumulated since the last call.
  virtual std::vector<TaskReport> take_reports() = 0;

  // Hot-path instrumentation sink (DESIGN.md §8): schedulers add their
  // per-pass counters here so they surface in SimResult::perf. May be
  // null (contexts that do not collect). Strictly write-only for
  // schedulers — decisions must never read it.
  virtual util::PerfCounters* perf_counters() { return nullptr; }

  // Event-trace sink (DESIGN.md §10): schedulers record placement
  // decisions and shard timings here. Null when tracing is disabled.
  // Write-only for schedulers, like perf_counters().
  virtual trace::Recorder* tracer() { return nullptr; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  // One scheduling pass: examine the context, commit zero or more
  // placements via ctx.place().
  virtual void schedule(SchedulerContext& ctx) = 0;
};

}  // namespace tetris::sim
