// Simulation configuration: cluster shape, heartbeat cadence, tracker and
// estimation behaviour, interference constants, failure injection, and
// measurement collection.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/interference.h"
#include "sim/spec.h"
#include "trace/recorder.h"
#include "util/resources.h"
#include "util/units.h"

namespace tetris::sim {

// The num_machines a default-constructed SimConfig carries; treated as
// "unspecified" when machine_capacities pins the cluster shape instead.
inline constexpr int kDefaultNumMachines = 50;

// How the resource tracker reports availability to the scheduler (§4.1).
enum class TrackerMode {
  // Bookkeeping view: capacity minus the demands the scheduler allocated.
  // Blind to external activity and to estimation error — the view the
  // baseline schedulers (and Fig. 6's capacity scheduler) hold.
  kAllocation,
  // Observed view: capacity minus usage reported by per-node trackers,
  // minus a decaying ramp-up allowance for freshly placed tasks. Sees
  // ingestion/evacuation and reclaims over-estimated demands.
  kUsage,
};

// How schedulers' demand estimates relate to truth (§4.1).
enum class EstimationMode {
  kOracle,   // estimates == true demands
  kNoisy,    // static per-stage multiplicative error on each resource
  // Models the paper's estimator behaviour: a stage's demands are
  // over-estimated until `profile_after` of its tasks complete (statistics
  // from the first few tasks), then snap to truth. Recurring jobs
  // (template_id >= 0) whose template ran before are exact from the start.
  kLearnedProfile,
};

struct EstimationConfig {
  EstimationMode mode = EstimationMode::kOracle;
  // kNoisy: coefficient of variation of the lognormal error factor.
  double noise_cov = 0.25;
  // kLearnedProfile: multiplier applied while a stage is unprofiled.
  double overestimate_factor = 1.4;
  // kLearnedProfile: completions needed before estimates become exact.
  int profile_after = 2;
};

// External cluster activity (data ingestion, evacuation, re-replication;
// §4.3): a constant resource draw on one machine over a time window.
struct BackgroundActivity {
  MachineId machine = 0;
  SimTime start = 0;
  SimTime end = 0;
  Resources usage;
};

// One scripted machine outage: the machine fails at `down_at` (running
// tasks are killed and requeued, its DFS replicas become unreachable, its
// background activities suspend) and recovers with its data at `up_at`.
struct MachineEvent {
  MachineId machine = 0;
  SimTime down_at = 0;
  SimTime up_at = 0;
};

// Machine-churn fault injection (the cluster analogue of
// `task_failure_prob`; paper §4.3 treats machine failure and the ensuing
// re-replication as routine background events). Random churn draws
// per-machine exponential failure/repair times from a dedicated RNG
// stream, so enabling it does not perturb task-failure or workload draws;
// scripted events make outages deterministic for tests. Both may be
// combined; overlapping down windows on one machine nest (the machine is
// up only when every window has closed).
struct ChurnConfig {
  // Mean time to failure per machine, seconds. 0 disables random churn.
  double mttf = 0;
  // Mean time to repair, seconds. Must be > 0 when mttf > 0.
  double mttr = 0;
  std::vector<MachineEvent> scripted;

  bool enabled() const { return mttf > 0 || !scripted.empty(); }
};

// Streaming ingestion (DESIGN.md §11): instead of materializing the whole
// workload upfront, the simulator pulls jobs from a JobSource in arrival
// order through a bounded look-ahead window and retires completed jobs
// from the resident working set, folding them into SimResult records on
// the fly. Memory then tracks the in-flight window, not the trace length.
struct StreamConfig {
  // Selects the streaming path in simulate(); simulate_stream() implies it.
  bool enabled = false;
  // Admission horizon in virtual seconds: a job may enter the resident set
  // once its arrival is within `lookahead` of current simulation time.
  // Independent of correctness — the engine always admits at least the
  // next due job so event ordering stays exact; the horizon only controls
  // how much arrival buffer is prefetched.
  double lookahead = 30.0;
  // Hard ceilings on the resident set (admitted minus retired); 0 means
  // unbounded. When a *due* arrival would cross a ceiling, admission is
  // deferred until retirement frees space. Deferrals shift that job's
  // effective arrival and are counted in PerfCounters::stream_deferrals;
  // streaming is bit-identical to batch only while that counter stays 0.
  long max_resident_tasks = 0;
  long max_resident_jobs = 0;
  // Drop per-job JobRecords for retired jobs (keeps only the aggregate
  // makespan/completion accounting) — for soak runs where even one small
  // record per job is unwanted. Off by default: records are the compact
  // summaries retirement is supposed to produce.
  bool drop_job_records = false;
};

// One cell of a federated cluster (DESIGN.md §14): a contiguous,
// rack-aligned slice of machines [begin, end) owned by exactly one
// per-cell scheduler instance. Cells must tile the cluster — sorted,
// non-overlapping, gap-free, first begin == 0, last end == num_machines —
// and when rack modeling is on every boundary must fall on a rack
// boundary, so no rack's uplink is shared between two schedulers.
struct CellSpec {
  int begin = 0;  // first machine id owned by the cell (inclusive)
  int end = 0;    // one past the last machine id owned (exclusive)

  int size() const { return end - begin; }
  bool contains(MachineId m) const { return m >= begin && m < end; }
};

struct SimConfig;

// Fail-fast validation of SimConfig::cells against the resolved cluster
// shape. Returns an empty string when the partition is valid (or empty),
// otherwise a description of the first problem found: out-of-range or
// inverted spans, overlaps, skipped machines, or a cell boundary that
// splits a rack. simulate() rejects an invalid partition the same way it
// rejects a machine_labels size mismatch.
std::string validate_cells(const SimConfig& config);

struct SimConfig {
  // Homogeneous cluster unless `machine_capacities` is set explicitly.
  // When `machine_capacities` is set, leave this at its default or set it
  // to the matching count — simulate() rejects a contradiction.
  int num_machines = kDefaultNumMachines;
  Resources machine_capacity = Resources::full(
      16, 32 * kGB, 4 * 50 * kMB, 4 * 50 * kMB, 1 * kGbps, 1 * kGbps);
  std::vector<Resources> machine_capacities;  // overrides the two above

  // Heterogeneous machine classes (DESIGN.md §13): machine_labels[m] is
  // the set of class labels machine m carries (e.g. "gpu", "highmem",
  // "rack0"). Empty = unlabeled cluster (every constraint-free stage can
  // run anywhere, label-requiring stages are rejected at validation).
  // When non-empty, the outer vector must have exactly one entry per
  // machine — simulate() rejects a size mismatch the same way it rejects
  // the num_machines vs machine_capacities contradiction.
  std::vector<std::vector<std::string>> machine_labels;

  // Rack-level network topology (paper Table 1: cross-rack bandwidth is
  // oversubscribed — ~10x at Facebook, <2x at Bing). 0 disables rack
  // modeling (flat network). With k machines per rack, each rack gets an
  // uplink of (sum of member NIC bandwidth) / rack_oversubscription per
  // direction; every cross-rack read additionally consumes uplink
  // bandwidth at both ends, and schedulers see the uplinks through the
  // same remote-leg admission path as source machines.
  int machines_per_rack = 0;
  double rack_oversubscription = 4.0;

  double heartbeat_period = 1.0;
  InterferenceModel interference;

  TrackerMode tracker = TrackerMode::kAllocation;
  // Ramp-up allowance (§4.1): window over which the tracker pads observed
  // usage of a new task, and the initial pad as a fraction of its demand.
  double ramp_up_window = 10.0;
  double ramp_allowance_fraction = 0.5;

  EstimationConfig estimation;

  // Probability that a task attempt fails partway and re-executes.
  double task_failure_prob = 0.0;

  // Federated cell partition (DESIGN.md §14): when non-empty, the cells
  // must tile [0, num_machines) exactly and respect rack boundaries —
  // validate_cells() spells out the rules and simulate() enforces them
  // fail-fast. The global simulator itself ignores the partition beyond
  // validation; src/federation/ slices per-cell configs from it.
  std::vector<CellSpec> cells;

  // Machine-level failure injection; see ChurnConfig.
  ChurnConfig churn;

  // Streaming ingestion knobs; see StreamConfig.
  StreamConfig stream;

  std::uint64_t seed = 1;

  // Oracle switch for the hot-path caches (DESIGN.md §8): when true, the
  // simulator rebuilds the scheduler's view (availability, probes, group
  // estimates) from scratch every pass instead of serving it from the
  // incrementally-invalidated caches. Slower, but trivially correct — the
  // equivalence property test pins the cached path to it bit for bit.
  bool naive_scheduler_view = false;

  // Worker threads for the Tetris scheduling pass (DESIGN.md §9),
  // forwarded into TetrisConfig::num_threads by the bench harness when
  // the scheduler config leaves its own knob at 0. 0 = serial scan.
  int num_threads = 0;

  // Structured event tracing (DESIGN.md §10): when trace.enabled, the
  // simulator records every arrival, pass, placement, task transition,
  // churn edge and tracker report into SimResult::trace_log. Off by
  // default — the disabled path is a single branch per hook.
  trace::TraceConfig trace;

  bool collect_timeline = false;
  double timeline_period = 10.0;
  bool collect_fairness = false;  // per-job relative integral unfairness
  bool collect_task_records = true;
  // Record one PassSample per scheduling pass (pass latency vs backlog);
  // feeds bench_overheads' Table 8 CSV. Off by default: long runs make
  // many passes.
  bool collect_pass_samples = false;

  std::vector<BackgroundActivity> activities;

  // Hard stop: a run that has not drained by this virtual time is reported
  // as incomplete rather than looping forever.
  SimTime max_time = 14 * 24 * kHours;

  std::vector<Resources> resolved_capacities() const {
    if (!machine_capacities.empty()) return machine_capacities;
    return std::vector<Resources>(static_cast<std::size_t>(num_machines),
                                  machine_capacity);
  }
};

}  // namespace tetris::sim
