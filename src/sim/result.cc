#include "sim/result.h"

#include <algorithm>

#include "util/stats.h"

namespace tetris::sim {

std::vector<double> SimResult::jcts() const {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& job : jobs) {
    if (job.finish >= 0) out.push_back(job.completion_time());
  }
  return out;
}

double SimResult::avg_jct() const {
  const auto xs = jcts();
  return mean(xs);
}

double SimResult::median_jct() const {
  const auto xs = jcts();
  return percentile(xs, 50);
}

long SimResult::total_task_attempts() const {
  long out = 0;
  for (const auto& t : tasks) out += t.attempts;
  return out;
}

}  // namespace tetris::sim
