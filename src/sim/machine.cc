#include "sim/machine.h"

#include <algorithm>
#include <stdexcept>

namespace tetris::sim {

namespace {
constexpr double kDemandEps = 1e-9;
}

Machine::Machine(MachineId id, const Resources& capacity,
                 const InterferenceModel* interference)
    : id_(id), capacity_(capacity), interference_(interference) {
  if (interference_ == nullptr)
    throw std::invalid_argument("machine needs an interference model");
  ratios_.fill(1.0);
}

void Machine::add_demand(int task_uid, const Resources& demand) {
  auto [it, inserted] = task_demands_.emplace(task_uid, demand);
  if (!inserted)
    throw std::logic_error("task already has a demand on this machine");
  total_task_demand_ += demand;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    if (demand.at(i) > kDemandEps) demanding_count_[i]++;
  }
  recompute();
}

void Machine::remove_demand(int task_uid) {
  auto it = task_demands_.find(task_uid);
  if (it == task_demands_.end())
    throw std::logic_error("removing unknown task demand");
  total_task_demand_ -= it->second;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    if (it->second.at(i) > kDemandEps) demanding_count_[i]--;
  }
  task_demands_.erase(it);
  // Guard against drift from repeated add/remove of similar magnitudes.
  total_task_demand_ = total_task_demand_.max_zero();
  recompute();
}

void Machine::set_capacity(const Resources& capacity) {
  capacity_ = capacity;
  external_usage_ = external_usage_.clamped_to(capacity_);
  recompute();
}

void Machine::set_external_usage(const Resources& usage) {
  external_usage_ = usage.clamped_to(capacity_);
  recompute();
}

void Machine::recompute() {
  for (Resource r : all_resources()) {
    const auto i = static_cast<std::size_t>(r);
    if (r == Resource::kMem) {
      // Memory is an occupancy, not a rate: it has no share ratio, but
      // over-commit flips the machine into thrashing.
      ratios_[i] = 1.0;
      continue;
    }
    const double task_demand = total_task_demand_[r];
    const double total = task_demand + external_usage_[r];
    if (total <= kDemandEps) {
      ratios_[i] = 1.0;
      continue;
    }
    // External activity (ingestion, evacuation) is just another stream
    // contending for the resource: over-subscription slows tasks *and* the
    // activity alike (paper §5.2.1: "delays in ingestion"), with the
    // interference-degraded effective capacity shared proportionally.
    const int streams =
        demanding_count_[i] + (external_usage_[r] > kDemandEps ? 1 : 0);
    const double eff =
        interference_->effective_capacity(r, capacity_[r], streams, total);
    ratios_[i] = total <= eff ? 1.0 : eff / total;
  }
  thrashing_ = total_task_demand_[Resource::kMem] + external_usage_[Resource::kMem] >
               capacity_[Resource::kMem] * (1.0 + 1e-9);
}

double Machine::grant_ratio(const Resources& demand) const {
  double ratio = 1.0;
  for (Resource r : all_resources()) {
    if (r == Resource::kMem) continue;
    if (demand[r] > kDemandEps)
      ratio = std::min(ratio, ratios_[static_cast<std::size_t>(r)]);
  }
  if (thrashing_) ratio *= interference_->mem_thrash_factor;
  // A task that was admitted always makes some progress: the share ratios
  // are only zero if external usage swallowed the whole resource, in which
  // case progress stalls until the activity subsides.
  return std::max(ratio, 0.0);
}

Resources Machine::usage() const {
  // What OS counters report: a saturated device shows 100% busy even
  // though interference lowers its goodput — offered load capped at
  // capacity. (Reporting goodput instead would make contention *free up*
  // apparent headroom and the tracker would pile more tasks on.)
  return (total_task_demand_ + external_usage_).cwise_min(capacity_);
}

Resources Machine::available_by_allocation() const {
  if (!up_) return Resources{};
  return (capacity_ - total_task_demand_ - external_usage_).max_zero();
}

}  // namespace tetris::sim
