// Runtime state of jobs, stages and tasks inside a simulation. These are
// owned and mutated by the Simulator; schedulers see them only through the
// read-only views in scheduler.h.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/placement.h"
#include "sim/spec.h"
#include "util/resources.h"
#include "util/units.h"

namespace tetris::sim {

enum class TaskStatus {
  kBlocked,   // upstream stage not finished
  kRunnable,  // ready, waiting for placement
  kRunning,
  kFinished,
};

struct TaskState {
  // The task's spec with shuffle splits materialized (rewritten to concrete
  // sources once the upstream stage finished).
  TaskSpec spec;
  TaskStatus status = TaskStatus::kBlocked;
  int uid = -1;            // globally unique across the simulation
  int index_in_stage = -1;
  // Position in the owning stage's runnable_indices while runnable.
  int runnable_pos = -1;
  // When the task last became runnable; feeds starvation detection.
  SimTime runnable_since = -1;
  MachineId host = -1;
  SimTime start_time = -1;
  SimTime finish_time = -1;
  // Demands registered on machines while running.
  PlacementDemand placement;
  // Progress in [0,1] of the task's natural duration; advances at `speed`
  // (the min grant ratio over all machines the task touches).
  double progress = 0;
  SimTime progress_updated_at = 0;
  double speed = 0;
  // Bumped whenever speed changes; finish events carry the generation they
  // were computed under and are dropped if stale (lazy deletion).
  long generation = 0;
  int attempts = 0;  // > 1 after failure-injected re-execution
  bool will_fail = false;
  double fail_at_progress = 1.0;
  // The *estimated* demands booked for the running attempt at placement
  // time (what the scheduler was charged); completion subtracts the same
  // values. True demands live in `placement`.
  Resources est_local;
  std::vector<RemoteLeg> est_remote;
};

struct StageState {
  std::vector<TaskState> tasks;
  std::vector<int> deps;
  // Placement constraint shared by every task of the stage (DESIGN.md
  // §13), copied from the spec at admission.
  PlacementConstraint constraint;
  // Static admissibility per real machine: label clauses folded in at
  // admission, the same-rack-as-input clause folded in when the stage's
  // inputs materialize. Empty = every machine admissible (the common,
  // constraint-free case costs nothing). The dynamic anti-affinity clause
  // is checked against JobState::hosted_per_machine instead.
  std::vector<unsigned char> admit_mask;
  int unfinished_deps = 0;
  bool materialized = false;  // shuffle splits rewritten
  int runnable = 0;
  int running = 0;
  int finished = 0;
  // Indices (into `tasks`) of the currently runnable tasks, so probes scan
  // runnable candidates directly instead of walking finished ones.
  std::vector<int> runnable_indices;
  // Bumped on every runnable-set mutation (task arrival, start, requeue).
  // Version stamp for the simulator's cross-pass probe and group-estimate
  // memos (DESIGN.md §8): both depend on the runnable set and its order.
  std::uint64_t runnable_version = 0;
  // (task index, runnable_since) in push order. Entries are appended with
  // non-decreasing timestamps and never erased eagerly; a query pops
  // stale fronts (task no longer runnable, or requeued since) and the
  // surviving front is the stage's longest-waiting runnable task — an
  // O(1)-amortized replacement for scanning every runnable task per pass.
  std::deque<std::pair<int, SimTime>> wait_fifo;
  // Where this stage's outputs landed, aggregated per machine; feeds the
  // materialization of downstream shuffle splits.
  std::vector<std::pair<MachineId, double>> output_locations;

  int total() const { return static_cast<int>(tasks.size()); }
  bool done() const { return finished == total(); }
};

struct JobState {
  JobId id = -1;
  std::string name;
  int template_id = -1;
  int queue = 0;
  SimTime arrival = 0;
  SimTime finish = -1;  // -1 while incomplete
  bool arrived = false;
  // In streaming mode (DESIGN.md §11): the job's record has been folded
  // into SimResult and its stages freed; only this shell remains until the
  // retired prefix is popped off the resident window. complete() stays
  // true for a shell, so iteration skips it exactly like a finished job.
  bool retired = false;
  std::vector<StageState> stages;
  // First task uid of this job; uids are contiguous per job in id order.
  int uid_base = 0;
  int total_tasks = 0;
  int finished_tasks = 0;
  int running_tasks = 0;
  // Sum of local demand vectors of the job's running tasks (true values);
  // the basis for fairness shares.
  Resources current_alloc;
  // Running tasks of this job per real machine, maintained by
  // start_task/complete_task; sized only when some stage of the job
  // carries an anti-affinity constraint (empty otherwise). Within one
  // scheduling pass counts only grow — completions land between passes —
  // so an anti-affinity rejection is sticky-safe like any other.
  std::vector<int> hosted_per_machine;
  // The job can never finish: some stage's placement constraints admit no
  // machine in this cluster (reported in SimResult::infeasible).
  bool doomed = false;
  // Relative integral unfairness accumulator (paper §5.3.2): integrates
  // (a(t) - f(t)) / f(t) over the job's active lifetime.
  double unfairness_integral = 0;

  bool complete() const { return finished_tasks == total_tasks; }
};

}  // namespace tetris::sim
