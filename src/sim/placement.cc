#include "sim/placement.h"

#include <algorithm>
#include <stdexcept>

namespace tetris::sim {

namespace {

// SplitMix64: cheap, well-distributed hash for deterministic replica picks.
unsigned long long mix(unsigned long long x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

namespace {

bool is_up(const std::vector<char>* machine_up, MachineId m) {
  return machine_up == nullptr ||
         m >= static_cast<MachineId>(machine_up->size()) ||
         (*machine_up)[static_cast<std::size_t>(m)];
}

}  // namespace

namespace {

// Shared body of resolve_splits: appends into `out` so the hot caller
// (compute_placement on a probe miss) can reuse one buffer per thread
// instead of allocating a fresh vector per call.
void resolve_splits_into(const std::vector<InputSplit>& splits, MachineId host,
                         unsigned long long salt,
                         const std::vector<char>* machine_up,
                         std::vector<ResolvedSplit>& out,
                         std::vector<MachineId>& live) {
  out.clear();
  out.reserve(splits.size());
  unsigned long long h = mix(salt ^ (static_cast<unsigned long long>(host) +
                                     0x517cc1b727220a95ull));
  for (const auto& split : splits) {
    if (split.from_stage >= 0) {
      throw std::logic_error(
          "resolve_splits: shuffle split not materialized; the simulator "
          "must rewrite from_stage splits before tasks become runnable");
    }
    ResolvedSplit r;
    r.bytes = split.bytes;
    if (split.replicas.empty()) {
      r.source = kGeneratedSource;
    } else if (std::find(split.replicas.begin(), split.replicas.end(),
                         host) != split.replicas.end() &&
               is_up(machine_up, host)) {
      r.source = host;
    } else {
      live.clear();
      for (MachineId m : split.replicas) {
        if (is_up(machine_up, m)) live.push_back(m);
      }
      if (live.empty()) {
        throw std::logic_error(
            "resolve_splits: every replica of a split is down; callers "
            "must gate on inputs_available()");
      }
      h = mix(h);
      r.source = live[h % live.size()];
    }
    out.push_back(r);
  }
}

}  // namespace

std::vector<ResolvedSplit> resolve_splits(
    const std::vector<InputSplit>& splits, MachineId host,
    unsigned long long salt, const std::vector<char>* machine_up) {
  std::vector<ResolvedSplit> out;
  std::vector<MachineId> live;
  resolve_splits_into(splits, host, salt, machine_up, out, live);
  return out;
}

bool inputs_available(const TaskSpec& task,
                      const std::vector<char>& machine_up) {
  for (const auto& split : task.inputs) {
    if (split.replicas.empty() || split.bytes <= 0) continue;
    bool any_up = false;
    for (MachineId m : split.replicas) {
      if (is_up(&machine_up, m)) {
        any_up = true;
        break;
      }
    }
    if (!any_up) return false;
  }
  return true;
}

PlacementDemand compute_placement(const TaskSpec& task, MachineId host,
                                  const std::vector<ResolvedSplit>& splits) {
  PlacementDemand pd;
  pd.host = host;

  // Aggregate bytes per source machine. One call per probe miss: the
  // aggregation buffer is reused per thread rather than reallocated.
  double local_bytes = 0;
  thread_local std::vector<std::pair<MachineId, double>> remote_bytes;
  remote_bytes.clear();
  for (const auto& split : splits) {
    if (split.source == kGeneratedSource || split.bytes <= 0) continue;
    if (split.source == host) {
      local_bytes += split.bytes;
      continue;
    }
    auto it = std::find_if(remote_bytes.begin(), remote_bytes.end(),
                           [&](const auto& p) { return p.first == split.source; });
    if (it == remote_bytes.end()) {
      remote_bytes.emplace_back(split.source, split.bytes);
    } else {
      it->second += split.bytes;
    }
  }
  double total_remote = 0;
  for (const auto& [m, b] : remote_bytes) total_remote += b;

  // Natural duration: max over the Eq. 5 legs. max_io_bw caps the task's
  // *total* ingest rate (the task's read pipeline merges local and remote
  // streams), and separately its write rate.
  double duration = kMinTaskDuration;
  if (task.peak_cores > 0)
    duration = std::max(duration, task.cpu_cycles / task.peak_cores);
  duration = std::max(duration, task.output_bytes / task.max_io_bw);
  duration =
      std::max(duration, (local_bytes + total_remote) / task.max_io_bw);

  // Demand rates follow: a leg with `bytes` of work over `duration` needs
  // bytes/duration of bandwidth to not become the bottleneck.
  pd.duration = duration;
  pd.local_bytes = local_bytes;
  pd.remote_bytes = total_remote;
  pd.local[Resource::kCpu] = task.peak_cores;
  pd.local[Resource::kMem] = task.peak_mem;
  pd.local[Resource::kDiskRead] = local_bytes / duration;
  pd.local[Resource::kDiskWrite] = task.output_bytes / duration;
  pd.local[Resource::kNetIn] = total_remote / duration;
  pd.local[Resource::kNetOut] = 0;
  pd.remote.reserve(remote_bytes.size());
  for (const auto& [m, b] : remote_bytes) {
    pd.remote.push_back({m, b / duration, b / duration});
  }
  return pd;
}

PlacementDemand compute_placement(const TaskSpec& task, MachineId host,
                                  unsigned long long salt,
                                  const std::vector<char>* machine_up) {
  thread_local std::vector<ResolvedSplit> resolved;
  thread_local std::vector<MachineId> live;
  resolve_splits_into(task.inputs, host, salt, machine_up, resolved, live);
  return compute_placement(task, host, resolved);
}

PlacementDemand compute_local_placement(const TaskSpec& task) {
  PlacementDemand pd;
  pd.host = -1;
  double bytes = 0;
  for (const auto& split : task.inputs) {
    // Generated inputs (no replicas, not a shuffle) cost no read anywhere.
    if (split.replicas.empty() && split.from_stage < 0) continue;
    bytes += std::max(0.0, split.bytes);
  }

  double duration = kMinTaskDuration;
  if (task.peak_cores > 0)
    duration = std::max(duration, task.cpu_cycles / task.peak_cores);
  duration = std::max(duration, task.output_bytes / task.max_io_bw);
  duration = std::max(duration, bytes / task.max_io_bw);

  pd.duration = duration;
  pd.local_bytes = bytes;
  pd.local[Resource::kCpu] = task.peak_cores;
  pd.local[Resource::kMem] = task.peak_mem;
  pd.local[Resource::kDiskRead] = bytes / duration;
  pd.local[Resource::kDiskWrite] = task.output_bytes / duration;
  return pd;
}

double local_fraction(const TaskSpec& task, MachineId host) {
  double total = 0;
  double local = 0;
  for (const auto& split : task.inputs) {
    if (split.bytes <= 0) continue;
    // Generated inputs count as local: they never cost remote bandwidth.
    const bool is_local =
        split.replicas.empty() ||
        std::find(split.replicas.begin(), split.replicas.end(), host) !=
            split.replicas.end();
    total += split.bytes;
    if (is_local) local += split.bytes;
  }
  return total > 0 ? local / total : 1.0;
}

}  // namespace tetris::sim
