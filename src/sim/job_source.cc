#include "sim/job_source.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace tetris::sim {

WorkloadJobSource::WorkloadJobSource(const Workload& workload)
    : workload_(&workload) {
  for (std::size_t j = 1; j < workload.jobs.size(); ++j) {
    if (workload.jobs[j].arrival < workload.jobs[j - 1].arrival) {
      throw std::invalid_argument(
          "WorkloadJobSource: job " + std::to_string(j) + " ('" +
          workload.jobs[j].name + "') arrives at " +
          std::to_string(workload.jobs[j].arrival) +
          ", before its predecessor at " +
          std::to_string(workload.jobs[j - 1].arrival) +
          "; sort the workload by arrival first (sorted_by_arrival)");
    }
  }
}

long WorkloadJobSource::total_jobs() const {
  return static_cast<long>(workload_->jobs.size());
}

bool WorkloadJobSource::peek(JobPeek& out) {
  if (next_ >= workload_->jobs.size()) return false;
  const JobSpec& job = workload_->jobs[next_];
  out.arrival = job.arrival;
  long tasks = 0;
  for (const auto& stage : job.stages)
    tasks += static_cast<long>(stage.tasks.size());
  out.tasks = tasks;
  return true;
}

bool WorkloadJobSource::next(JobSpec& out) {
  if (next_ >= workload_->jobs.size()) return false;
  out = workload_->jobs[next_++];
  return true;
}

Workload sorted_by_arrival(const Workload& workload) {
  Workload sorted = workload;
  std::stable_sort(
      sorted.jobs.begin(), sorted.jobs.end(),
      [](const JobSpec& x, const JobSpec& y) { return x.arrival < y.arrival; });
  return sorted;
}

}  // namespace tetris::sim
