// Placement-dependent task demands (paper §3.1 Eq. 5 and §3.2
// "Incorporating task placement").
//
// CPU and memory are purely local to the host, but disk and network demands
// depend on where the task runs relative to its input: a split read locally
// costs disk-read bandwidth at the host; a split read remotely costs
// disk-read + network-out at the source machine and network-in at the host.
// Both the simulator (with true specs) and the schedulers (with estimated
// specs) derive demands through this one module, which is exactly the
// paper's observation that "given the locations and sizes of a task's
// inputs, its resource demands can be inferred for any potential placement".
#pragma once

#include <vector>

#include "sim/spec.h"
#include "util/resources.h"

namespace tetris::sim {

// A split whose source machine has been fixed for a candidate placement.
// source == kGeneratedSource means the task synthesizes this input.
inline constexpr MachineId kGeneratedSource = -1;

struct ResolvedSplit {
  double bytes = 0;
  MachineId source = kGeneratedSource;
};

// Demand rates at one remote entity involved in a task's reads: a source
// machine (disk_read + net_out) or, with rack modeling enabled, a rack
// uplink (net_out on the source rack, net_in on the destination rack).
struct RemoteLeg {
  MachineId machine;
  double disk_read = 0;  // bytes/sec
  double net_out = 0;    // bytes/sec
  double net_in = 0;     // bytes/sec (rack uplinks only)
};

// The demand vector a leg registers on its machine/uplink.
inline Resources leg_resources(const RemoteLeg& leg) {
  Resources r;
  r[Resource::kDiskRead] = leg.disk_read;
  r[Resource::kNetOut] = leg.net_out;
  r[Resource::kNetIn] = leg.net_in;
  return r;
}

// The full demand picture for one (task, host) pair.
struct PlacementDemand {
  MachineId host = -1;
  // Rates demanded at the host: cpu cores, memory, disk r/w, net in.
  Resources local;
  // Rates demanded at remote input sources, aggregated per machine.
  std::vector<RemoteLeg> remote;
  // Natural duration: the max over Eq. 5 legs at peak rates. The task
  // finishes in exactly this time when granted all its demands.
  double duration = 0;
  double local_bytes = 0;
  double remote_bytes = 0;
};

// Tasks shorter than this are clamped up; it stands in for container
// startup and bookkeeping overheads and keeps durations strictly positive.
inline constexpr double kMinTaskDuration = 0.25;

// Chooses a concrete source per split for a task placed on `host`: local if
// the host holds a replica, else a deterministic pseudo-random replica
// (hash-based, so probe and commit agree without shared state).
//
// `machine_up`, when non-null, is the churn mask indexed by MachineId:
// replicas on down machines are skipped, charging the read against the
// surviving replica set. Callers must first check inputs_available() —
// resolving a split whose replicas are all down is a logic error.
std::vector<ResolvedSplit> resolve_splits(
    const std::vector<InputSplit>& splits, MachineId host,
    unsigned long long salt, const std::vector<char>* machine_up = nullptr);

// Computes the demand rates and natural duration of `task` on `host` with
// the given resolved inputs.
PlacementDemand compute_placement(const TaskSpec& task, MachineId host,
                                  const std::vector<ResolvedSplit>& splits);

// Convenience: resolve + compute in one call.
PlacementDemand compute_placement(const TaskSpec& task, MachineId host,
                                  unsigned long long salt,
                                  const std::vector<char>* machine_up = nullptr);

// True iff every replicated split still has a replica on an up machine.
// Tasks whose data is entirely offline cannot run anywhere and must wait
// for a recovery (the simulator keeps them runnable but never places
// them). Generated and not-yet-materialized shuffle splits are always
// available.
bool inputs_available(const TaskSpec& task, const std::vector<char>& machine_up);

// Fraction of input bytes that would be read locally if the task ran on
// `host`. Schedulers use this to pick the best-locality candidate within a
// stage before scoring.
double local_fraction(const TaskSpec& task, MachineId host);

// Placement-independent demand view: pretends every input byte is local.
// Used for group-level representative demands and the SRTF remaining-work
// score, where no host has been chosen yet. Works on unmaterialized
// (from_stage) splits too, since only byte counts matter.
PlacementDemand compute_local_placement(const TaskSpec& task);

}  // namespace tetris::sim
