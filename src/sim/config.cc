#include "sim/config.h"

#include <string>

namespace tetris::sim {

std::string validate_cells(const SimConfig& config) {
  if (config.cells.empty()) return {};
  const int n = static_cast<int>(config.resolved_capacities().size());
  int expected_begin = 0;
  for (std::size_t i = 0; i < config.cells.size(); ++i) {
    const CellSpec& cell = config.cells[i];
    const std::string where = "cell " + std::to_string(i) + " [" +
                              std::to_string(cell.begin) + ", " +
                              std::to_string(cell.end) + ")";
    if (cell.begin < 0 || cell.end > n) {
      return where + " references machines outside the cluster of " +
             std::to_string(n);
    }
    if (cell.begin >= cell.end) return where + " is empty or inverted";
    if (cell.begin < expected_begin) {
      return where + " overlaps the previous cell ending at " +
             std::to_string(expected_begin);
    }
    if (cell.begin > expected_begin) {
      return where + " skips machines [" + std::to_string(expected_begin) +
             ", " + std::to_string(cell.begin) + ")";
    }
    // Rack alignment: a cell boundary inside a rack would split the rack's
    // uplink between two schedulers, each booking cross-rack legs on a
    // pseudo-machine the other cannot see.
    const int k = config.machines_per_rack;
    if (k > 0 && cell.begin % k != 0) {
      return where + " splits a rack (machines_per_rack=" +
             std::to_string(k) + ")";
    }
    expected_begin = cell.end;
  }
  if (expected_begin != n) {
    return "cells cover only [0, " + std::to_string(expected_begin) +
           ") of the " + std::to_string(n) + "-machine cluster";
  }
  return {};
}

}  // namespace tetris::sim
