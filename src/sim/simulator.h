// The discrete-event cluster simulator.
//
// Continuous-time, flow-level model: running tasks register demand rates on
// the machines they touch (host + remote input sources); each machine
// shares contended resources proportionally with interference-degraded
// capacity (machine.h); a task's speed is the minimum grant ratio across
// its footprint and its finish time is re-predicted whenever that changes
// (lazy event invalidation). Scheduling passes run at heartbeats and job
// arrivals, so schedulers learn about freed resources in batches, exactly
// like the prototype in paper §4.4.
#pragma once

#include <memory>

#include "sim/config.h"
#include "sim/result.h"
#include "sim/scheduler.h"
#include "sim/spec.h"

namespace tetris::sim {

// Runs `workload` under `scheduler` and returns the measured result.
// Throws std::invalid_argument on malformed workloads.
SimResult simulate(const SimConfig& config, const Workload& workload,
                   Scheduler& scheduler);

}  // namespace tetris::sim
