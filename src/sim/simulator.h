// The discrete-event cluster simulator.
//
// Continuous-time, flow-level model: running tasks register demand rates on
// the machines they touch (host + remote input sources); each machine
// shares contended resources proportionally with interference-degraded
// capacity (machine.h); a task's speed is the minimum grant ratio across
// its footprint and its finish time is re-predicted whenever that changes
// (lazy event invalidation). Scheduling passes run at heartbeats and job
// arrivals, so schedulers learn about freed resources in batches, exactly
// like the prototype in paper §4.4.
#pragma once

#include <memory>

#include "sim/config.h"
#include "sim/job_source.h"
#include "sim/result.h"
#include "sim/scheduler.h"
#include "sim/spec.h"

namespace tetris::sim {

// Runs `workload` under `scheduler` and returns the measured result.
// Throws std::invalid_argument on malformed workloads. When
// config.stream.enabled is set, the workload (which must be sorted by
// arrival) is driven through the streaming path below instead of being
// materialized upfront.
SimResult simulate(const SimConfig& config, const Workload& workload,
                   Scheduler& scheduler);

// Streaming entry point (DESIGN.md §11): pulls jobs from `source`
// incrementally through StreamConfig's look-ahead window and retires
// completed jobs from memory as it goes. With no resident ceilings (or
// ceilings never hit — PerfCounters::stream_deferrals == 0) the result is
// bit-identical to simulate() on the equivalent in-memory workload.
// config.stream.enabled is implied.
SimResult simulate_stream(const SimConfig& config, JobSource& source,
                          Scheduler& scheduler);

}  // namespace tetris::sim
