// The discrete-event cluster simulator.
//
// Continuous-time, flow-level model: running tasks register demand rates on
// the machines they touch (host + remote input sources); each machine
// shares contended resources proportionally with interference-degraded
// capacity (machine.h); a task's speed is the minimum grant ratio across
// its footprint and its finish time is re-predicted whenever that changes
// (lazy event invalidation). Scheduling passes run at heartbeats and job
// arrivals, so schedulers learn about freed resources in batches, exactly
// like the prototype in paper §4.4.
#pragma once

#include <memory>

#include "sim/config.h"
#include "sim/job_source.h"
#include "sim/result.h"
#include "sim/scheduler.h"
#include "sim/spec.h"

namespace tetris::sim {

// Runs `workload` under `scheduler` and returns the measured result.
// Throws std::invalid_argument on malformed workloads. When
// config.stream.enabled is set, the workload (which must be sorted by
// arrival) is driven through the streaming path below instead of being
// materialized upfront.
SimResult simulate(const SimConfig& config, const Workload& workload,
                   Scheduler& scheduler);

// Streaming entry point (DESIGN.md §11): pulls jobs from `source`
// incrementally through StreamConfig's look-ahead window and retires
// completed jobs from memory as it goes. With no resident ceilings (or
// ceilings never hit — PerfCounters::stream_deferrals == 0) the result is
// bit-identical to simulate() on the equivalent in-memory workload.
// config.stream.enabled is implied.
SimResult simulate_stream(const SimConfig& config, JobSource& source,
                          Scheduler& scheduler);

// Deterministic load snapshot of a stepped simulation, read by the
// federated dispatcher between events (DESIGN.md §14). Every field is pure
// simulation state, so dispatch decisions built on it are reproducible and
// independent of thread count.
struct EngineLoad {
  int machines = 0;        // real machines owned by this engine
  int up_machines = 0;     // machines currently up
  int runnable_tasks = 0;  // cluster-wide pending backlog
  int running_tasks = 0;
  long active_jobs = 0;    // admitted minus retired (complete jobs retire)
  // Dominant-resource fraction of *up* capacity currently allocated
  // (scheduler-visible bookings); 0 when everything is down or idle.
  double alloc_share = 0;
};

// Externally-clocked driver over the same event loop simulate() runs
// (DESIGN.md §14). A SimEngine owns one cell of a federated cluster: the
// federation layer constructs one engine per cell, submits jobs as its
// dispatcher admits them, and advances every engine in lockstep on a
// shared clock. Internally this is the streaming path (DESIGN.md §11) fed
// by a push queue, so a 1-cell engine driven with the global workload is
// bit-identical to simulate() on it — placements, makespan and decision
// trace alike.
//
// Protocol: interleave submit() (non-decreasing arrivals, at most
// `expected_jobs` in total — pass the global job count) with
// advance_before()/advance_through(); then call finish() exactly once to
// drain the remaining work and collect the result. halt() abandons every
// unfinished job (cell failure) — finish() then skips the drain and
// reports the abandoned jobs with finish = -1.
class SimEngine {
 public:
  // `scheduler` must outlive the engine. `expected_jobs` reserves the
  // deterministic arrival-sequence block (the analogue of a JobSource's
  // total_jobs()); submitting more than that many jobs throws.
  SimEngine(const SimConfig& config, Scheduler& scheduler,
            long expected_jobs);
  ~SimEngine();
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  // Enqueues a job for admission. `spec.arrival` must be >= every arrival
  // submitted before (the JobSource contract) and >= the engine's clock.
  void submit(const JobSpec& spec);

  // Processes every event strictly before `t` (exclusive), so the caller
  // can submit arrivals at t and have them ordered ahead of the engine's
  // own events at t — exactly where batch mode's upfront pushes would sit.
  void advance_before(SimTime t);

  // Processes events through `t` inclusive; used to deliver scripted
  // machine-down events at a cell-kill instant before harvesting the
  // survivors' work.
  void advance_through(SimTime t);

  // Abandons every unfinished (and not doomed) job and returns their ids
  // in submission order — the dispatcher re-admits them elsewhere. Ids are
  // assigned in submission order starting at 0, including jobs still
  // queued for admission. After halt() the engine schedules nothing more.
  std::vector<JobId> halt();

  // Drains the engine to completion (unless halted) and returns the
  // result. Call exactly once, after the last submit().
  SimResult finish();

  EngineLoad load() const;
  long submitted() const;

  // True when advance_before(t) would process nothing: no job is queued
  // for admission and the engine's next internal event (if any) lies at
  // or beyond `t`. The check is read-only and advance_before on a
  // quiescent engine mutates nothing, so a driver may skip the call
  // entirely — the idle-cell fast path that makes sparse cells cost
  // ~nothing per driver event (DESIGN.md §14.5).
  bool quiescent_until(SimTime t) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tetris::sim
