// Per-node resource tracker (paper §4.1, §4.3).
//
// The tracker process on every node observes aggregate resource usage from
// OS counters and periodically reports to the cluster-wide resource
// manager. Reports carry (a) smoothed observed usage, (b) a ramp-up
// allowance for freshly launched tasks (their usage has not peaked yet, so
// raw counters under-state what is committed), and (c) external activity
// such as data ingestion or evacuation, which the scheduler must steer
// around.
//
// The simulator inlines equivalent logic on its fast path
// (Simulator::tracker_available); this class is the reference, standalone
// implementation with its own tests, and is what a real deployment would
// run per node.
#pragma once

#include <unordered_map>

#include "util/resources.h"
#include "util/units.h"

namespace tetris::trace {
class Recorder;
}  // namespace tetris::trace

namespace tetris::tracker {

struct TrackerConfig {
  // Window over which a new task's allowance decays to zero (paper: ~10 s).
  double ramp_up_window = 10.0;
  // Initial allowance as a fraction of the task's expected demand.
  double ramp_allowance_fraction = 0.5;
  // EWMA smoothing factor for usage observations in (0, 1]; 1 = no
  // smoothing. Smoothing keeps transient dips from triggering
  // over-placement.
  double usage_ewma_alpha = 0.5;
};

struct TrackerReport {
  // Smoothed observed usage, padded with ramp-up allowances.
  Resources charged_usage;
  // capacity - charged_usage, floored at zero: what the scheduler may
  // hand out on this node.
  Resources available;
};

class ResourceTracker {
 public:
  ResourceTracker(Resources capacity, TrackerConfig config = {});

  const Resources& capacity() const { return capacity_; }

  // Registers a task launch with its expected (estimated) demand, starting
  // its ramp-up allowance clock.
  void on_task_start(int task_id, const Resources& expected_demand,
                     SimTime now);
  void on_task_finish(int task_id);

  // Feeds an observation of the node's aggregate usage (OS counters).
  void observe_usage(const Resources& usage, SimTime now);

  // Builds the report the node manager heartbeats to the RM.
  TrackerReport report(SimTime now) const;

  // Attaches an event-trace sink (DESIGN.md §10): every report() also
  // records a kUsageReport event tagged with `node_id`. Pass nullptr to
  // detach. The recorder must outlive the tracker.
  void attach_tracer(trace::Recorder* tracer, int node_id);

 private:
  Resources capacity_;
  TrackerConfig config_;
  trace::Recorder* tracer_ = nullptr;
  int node_id_ = -1;
  Resources smoothed_usage_;
  bool have_observation_ = false;

  struct LiveTask {
    Resources expected;
    SimTime started;
  };
  std::unordered_map<int, LiveTask> live_;
};

}  // namespace tetris::tracker
