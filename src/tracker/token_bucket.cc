#include "tracker/token_bucket.h"

#include <algorithm>
#include <stdexcept>

namespace tetris::tracker {

TokenBucket::TokenBucket(double rate, double burst, SimTime start)
    : rate_(rate), burst_(burst), tokens_(burst), last_(start) {
  if (rate < 0 || burst <= 0)
    throw std::invalid_argument("token bucket needs rate >= 0, burst > 0");
}

void TokenBucket::refill(SimTime now) {
  if (now < last_) throw std::logic_error("token bucket time went backwards");
  tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_));
  last_ = now;
}

bool TokenBucket::try_consume(double tokens, SimTime now) {
  refill(now);
  if (tokens_ + 1e-12 < tokens) return false;
  tokens_ -= tokens;
  return true;
}

SimTime TokenBucket::earliest(double tokens, SimTime now) const {
  const double have =
      std::min(burst_, tokens_ + rate_ * std::max(0.0, now - last_));
  // Oversized requests wait until the bucket is full, then overdraw.
  const double need = std::min(tokens, burst_);
  if (have + 1e-12 >= need) return now;
  if (rate_ <= 0) return now + 1e18;  // effectively never
  return now + (need - have) / rate_;
}

SimTime TokenBucket::consume(double tokens, SimTime now) {
  const SimTime when = earliest(tokens, now);
  refill(std::max(now, when));
  tokens_ -= tokens;  // may go negative for oversized requests (overdraw)
  return when;
}

void TokenBucket::set_rate(double rate, SimTime now) {
  if (rate < 0) throw std::invalid_argument("negative rate");
  refill(now);
  rate_ = rate;
}

double TokenBucket::tokens(SimTime now) const {
  return std::min(burst_, tokens_ + rate_ * std::max(0.0, now - last_));
}

}  // namespace tetris::tracker
