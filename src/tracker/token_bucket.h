// Token-bucket rate enforcement (paper §4.2).
//
// Tasks' actual resource use may not conform to their allocations (a TCP
// flow ramps to whatever the link gives it). Tetris intercepts filesystem
// and network calls and routes each through a token bucket: the call
// proceeds if enough tokens remain and is queued otherwise. Tokens arrive
// at the allocated rate; bucket size bounds burst; each call deducts its
// size.
#pragma once

#include "util/units.h"

namespace tetris::tracker {

class TokenBucket {
 public:
  // `rate` tokens/sec, `burst` max accumulated tokens. The bucket starts
  // full (a fresh task may burst immediately).
  TokenBucket(double rate, double burst, SimTime start = 0);

  // Attempts to consume `tokens` at time `now`; returns true and deducts on
  // success. Calls must have non-decreasing `now`.
  bool try_consume(double tokens, SimTime now);

  // Earliest time at which `tokens` could be consumed (now if available).
  // Requests larger than the burst size complete once the bucket is full
  // and then overdraw it (a single oversized I/O cannot be split).
  SimTime earliest(double tokens, SimTime now) const;

  // Blocking-style consume: advances to earliest(), deducts (possibly
  // overdrawing for oversized requests), and returns the completion time.
  SimTime consume(double tokens, SimTime now);

  // Re-allocation: the scheduler may change a task's allotted rate
  // mid-flight. Accrued tokens are settled at the old rate first.
  void set_rate(double rate, SimTime now);

  double rate() const { return rate_; }
  double burst() const { return burst_; }
  double tokens(SimTime now) const;

 private:
  void refill(SimTime now);

  double rate_;
  double burst_;
  double tokens_;
  SimTime last_ = 0;
};

}  // namespace tetris::tracker
