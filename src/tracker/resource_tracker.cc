#include "tracker/resource_tracker.h"

#include <algorithm>
#include <stdexcept>

#include "trace/event.h"
#include "trace/recorder.h"

namespace tetris::tracker {

ResourceTracker::ResourceTracker(Resources capacity, TrackerConfig config)
    : capacity_(capacity), config_(config) {
  if (config_.ramp_up_window <= 0)
    throw std::invalid_argument("ramp_up_window must be > 0");
  if (config_.usage_ewma_alpha <= 0 || config_.usage_ewma_alpha > 1)
    throw std::invalid_argument("usage_ewma_alpha must be in (0, 1]");
}

void ResourceTracker::on_task_start(int task_id,
                                    const Resources& expected_demand,
                                    SimTime now) {
  live_[task_id] = LiveTask{expected_demand, now};
}

void ResourceTracker::on_task_finish(int task_id) { live_.erase(task_id); }

void ResourceTracker::observe_usage(const Resources& usage, SimTime now) {
  (void)now;
  const Resources clamped = usage.clamped_to(capacity_);
  if (!have_observation_) {
    smoothed_usage_ = clamped;
    have_observation_ = true;
    return;
  }
  const double a = config_.usage_ewma_alpha;
  smoothed_usage_ = clamped * a + smoothed_usage_ * (1.0 - a);
}

TrackerReport ResourceTracker::report(SimTime now) const {
  Resources charged = smoothed_usage_;
  for (const auto& [id, task] : live_) {
    const double age = now - task.started;
    if (age >= config_.ramp_up_window) continue;
    const double scale = config_.ramp_allowance_fraction *
                         (1.0 - std::max(0.0, age) / config_.ramp_up_window);
    charged += task.expected * scale;
  }
  charged = charged.clamped_to(capacity_);
  TrackerReport r;
  r.charged_usage = charged;
  r.available = (capacity_ - charged).max_zero();
  if (tracer_ != nullptr) {
    trace::Event ev;
    ev.kind = trace::EventKind::kUsageReport;
    ev.time = now;
    ev.a = node_id_;
    ev.b = static_cast<std::int64_t>(live_.size());
    ev.x = r.charged_usage[Resource::kCpu];
    ev.y = r.charged_usage[Resource::kMem];
    ev.z = r.available[Resource::kCpu];
    ev.w = r.available[Resource::kMem];
    tracer_->record(ev);
  }
  return r;
}

void ResourceTracker::attach_tracer(trace::Recorder* tracer, int node_id) {
  tracer_ = tracer;
  node_id_ = node_id;
}

}  // namespace tetris::tracker
