#include "federation/cell.h"

#include <algorithm>
#include <string>
#include <vector>

namespace tetris::federation {

namespace {

// Mirror of the simulator's label admission (simulator.cc labels_admit):
// the machine must carry every required label and none of the forbidden
// ones; an unlabeled cluster fails every require clause.
bool labels_admit(const sim::SimConfig& base, const sim::PlacementConstraint& c,
                  sim::MachineId global_m) {
  static const std::vector<std::string> kNoLabels;
  const auto& labels =
      base.machine_labels.empty()
          ? kNoLabels
          : base.machine_labels[static_cast<std::size_t>(global_m)];
  for (const auto& need : c.require_labels) {
    if (std::find(labels.begin(), labels.end(), need) == labels.end())
      return false;
  }
  for (const auto& ban : c.forbid_labels) {
    if (std::find(labels.begin(), labels.end(), ban) != labels.end())
      return false;
  }
  return true;
}

}  // namespace

sim::SimConfig make_cell_config(const sim::SimConfig& base,
                                const sim::CellSpec& span, int cell_index) {
  sim::SimConfig cfg = base;
  const auto caps = base.resolved_capacities();
  cfg.machine_capacities.assign(
      caps.begin() + span.begin, caps.begin() + span.end);
  cfg.num_machines = span.size();
  cfg.cells.clear();
  if (!base.machine_labels.empty()) {
    cfg.machine_labels.assign(base.machine_labels.begin() + span.begin,
                              base.machine_labels.begin() + span.end);
  }
  cfg.seed = base.seed + static_cast<std::uint64_t>(cell_index);

  cfg.churn.scripted.clear();
  for (const auto& ev : base.churn.scripted) {
    if (!span.contains(ev.machine)) continue;
    sim::MachineEvent local = ev;
    local.machine = ev.machine - span.begin;
    cfg.churn.scripted.push_back(local);
  }
  cfg.activities.clear();
  for (const auto& act : base.activities) {
    if (!span.contains(act.machine)) continue;
    sim::BackgroundActivity local = act;
    local.machine = act.machine - span.begin;
    cfg.activities.push_back(local);
  }
  return cfg;
}

sim::JobSpec remap_job_for_cell(const sim::JobSpec& job,
                                const sim::CellSpec& span) {
  sim::JobSpec out = job;
  const int size = span.size();
  for (auto& stage : out.stages) {
    for (auto& task : stage.tasks) {
      for (auto& split : task.inputs) {
        for (auto& replica : split.replicas) {
          replica = span.contains(replica) ? replica - span.begin
                                           : replica % size;
        }
      }
    }
  }
  return out;
}

bool cell_feasible(const sim::JobSpec& job, const sim::SimConfig& base,
                   const sim::CellSpec& span) {
  for (const auto& stage : job.stages) {
    const auto& c = stage.constraint;
    if (c.require_labels.empty() && c.forbid_labels.empty()) continue;
    bool admissible = false;
    for (sim::MachineId m = span.begin; m < span.end && !admissible; ++m) {
      admissible = labels_admit(base, c, m);
    }
    if (!admissible) return false;
  }
  return true;
}

double cell_input_bytes(const sim::JobSpec& job, const sim::CellSpec& span) {
  double bytes = 0;
  for (const auto& stage : job.stages) {
    for (const auto& task : stage.tasks) {
      for (const auto& split : task.inputs) {
        const bool local = std::any_of(
            split.replicas.begin(), split.replicas.end(),
            [&](sim::MachineId r) { return span.contains(r); });
        if (local) bytes += split.bytes;
      }
    }
  }
  return bytes;
}

}  // namespace tetris::federation
