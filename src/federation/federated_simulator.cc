#include "federation/federated_simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "federation/cell.h"
#include "sim/job_source.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace tetris::federation {

namespace {

// One entry of the driver's merged global timeline. Kills sort before
// arrivals at the same instant: a job arriving exactly when a cell dies
// must be dispatched among the survivors.
struct DriverEvent {
  SimTime time = 0;
  int kind = 0;  // 0 = kill, 1 = arrival
  int index = 0;

  bool operator<(const DriverEvent& o) const {
    if (time != o.time) return time < o.time;
    if (kind != o.kind) return kind < o.kind;
    return index < o.index;
  }
};

long count_tasks(const sim::JobSpec& job) {
  long n = 0;
  for (const auto& stage : job.stages) {
    n += static_cast<long>(stage.tasks.size());
  }
  return n;
}

}  // namespace

std::vector<double> FederatedResult::jcts() const {
  std::vector<double> out;
  out.reserve(job_records.size());
  for (const auto& j : job_records) {
    if (j.finish >= 0) out.push_back(j.finish - j.arrival);
  }
  return out;
}

FederatedResult simulate_federated(const FederationConfig& config,
                                   const sim::Workload& workload) {
  const sim::SimConfig& base = config.base;
  if (base.cells.empty()) {
    throw std::invalid_argument(
        "FederationConfig: base.cells must define the cell partition");
  }
  if (auto msg = sim::validate_cells(base); !msg.empty()) {
    throw std::invalid_argument("FederationConfig: invalid cell partition: " +
                                msg);
  }
  const int num_cells = static_cast<int>(base.cells.size());
  for (const auto& kill : config.kills) {
    if (kill.cell < 0 || kill.cell >= num_cells || kill.at < 0) {
      throw std::invalid_argument(
          "FederationConfig: kill needs a valid cell and a time >= 0");
    }
  }
  if (config.cell_threads < 0) {
    throw std::invalid_argument("FederationConfig: negative cell_threads");
  }

  // Nested-parallelism policy (DESIGN.md §14.5). Under cell-parallel
  // execution the per-cell scheduler defaults to serial passes — the
  // fan-out already occupies one thread per cell — so an unset
  // tetris.num_threads does NOT inherit base.num_threads as it does in
  // the serial lockstep. Explicitly nested settings are checked against
  // the hardware: silently oversubscribing turns the scaling sweep into
  // a context-switch benchmark.
  const bool cell_parallel = config.cell_threads > 1;
  int per_cell_threads = config.tetris.num_threads;
  if (per_cell_threads == 0 && !cell_parallel) {
    per_cell_threads = base.num_threads;
  }
  if (cell_parallel && !config.allow_oversubscription) {
    const unsigned hw = std::thread::hardware_concurrency();
    const long total = static_cast<long>(config.cell_threads) *
                       static_cast<long>(std::max(1, per_cell_threads));
    if (hw > 0 && total > static_cast<long>(hw)) {
      throw std::invalid_argument(
          "FederationConfig: cell_threads=" +
          std::to_string(config.cell_threads) + " x per-cell threads=" +
          std::to_string(std::max(1, per_cell_threads)) + " = " +
          std::to_string(total) + " oversubscribes hardware_concurrency=" +
          std::to_string(hw) +
          "; set allow_oversubscription to run anyway");
    }
  }

  // Global job ids are positions in arrival-sorted order — the ids
  // sim::simulate would assign the same sorted workload, which is what
  // makes the 1-cell case comparable record for record.
  const sim::Workload sorted = sim::sorted_by_arrival(workload);
  const long num_jobs = static_cast<long>(sorted.jobs.size());

  // Per-cell engines. Every engine reserves the *global* arrival-seq block
  // (expected_jobs = num_jobs): a job can visit a given cell at most once
  // (it only leaves a cell by that cell dying), so no cell ever sees more
  // than num_jobs submissions even across failovers.
  std::vector<std::unique_ptr<core::TetrisScheduler>> schedulers;
  std::vector<std::unique_ptr<sim::SimEngine>> engines;
  schedulers.reserve(static_cast<std::size_t>(num_cells));
  engines.reserve(static_cast<std::size_t>(num_cells));
  for (int c = 0; c < num_cells; ++c) {
    sim::SimConfig cfg = make_cell_config(base, base.cells[c], c);
    // The packing-loss metrics need utilization samples from every cell.
    cfg.collect_timeline = true;
    for (const auto& kill : config.kills) {
      if (kill.cell != c) continue;
      // Whole-cell outage as scripted churn, so the existing machine-down
      // machinery (task kill/requeue, counters, traces) does the work; the
      // recovery sits far past max_time — a dead cell stays dead.
      for (int m = 0; m < base.cells[c].size(); ++m) {
        cfg.churn.scripted.push_back(
            {m, kill.at, kill.at + 2 * base.max_time});
      }
    }
    core::TetrisConfig tcfg = config.tetris;
    tcfg.num_threads = per_cell_threads;
    schedulers.push_back(std::make_unique<core::TetrisScheduler>(tcfg));
    engines.push_back(
        std::make_unique<sim::SimEngine>(cfg, *schedulers.back(), num_jobs));
  }

  Dispatcher dispatcher(config.policy, config.dispatch_seed);
  std::vector<char> alive(static_cast<std::size_t>(num_cells), 1);
  // cell_jobs[c][local_id] = global id; job_local[g] = final local id.
  std::vector<std::vector<long>> cell_jobs(
      static_cast<std::size_t>(num_cells));
  std::vector<int> job_cell(static_cast<std::size_t>(num_jobs), -1);
  std::vector<long> job_local(static_cast<std::size_t>(num_jobs), -1);
  long reassigned = 0;
  long lost = 0;

  auto dispatch = [&](long g, const sim::JobSpec& spec) -> bool {
    std::vector<int> candidates;
    for (int c = 0; c < num_cells; ++c) {
      if (alive[static_cast<std::size_t>(c)] &&
          cell_feasible(spec, base, base.cells[c])) {
        candidates.push_back(c);
      }
    }
    if (candidates.empty()) {
      // Feasible nowhere (or constraints fit only dead cells): any
      // surviving cell dooms it with the usual InfeasibleGroup report.
      for (int c = 0; c < num_cells; ++c) {
        if (alive[static_cast<std::size_t>(c)]) candidates.push_back(c);
      }
    }
    if (candidates.empty()) {
      job_cell[static_cast<std::size_t>(g)] = -1;
      job_local[static_cast<std::size_t>(g)] = -1;
      lost++;
      return false;
    }
    std::vector<sim::EngineLoad> loads(static_cast<std::size_t>(num_cells));
    std::vector<double> bytes(static_cast<std::size_t>(num_cells), 0.0);
    for (int c = 0; c < num_cells; ++c) {
      if (!alive[static_cast<std::size_t>(c)]) continue;
      loads[static_cast<std::size_t>(c)] = engines[c]->load();
      bytes[static_cast<std::size_t>(c)] =
          cell_input_bytes(spec, base.cells[c]);
    }
    const int c = dispatcher.pick(candidates, loads, bytes);
    engines[c]->submit(remap_job_for_cell(spec, base.cells[c]));
    job_cell[static_cast<std::size_t>(g)] = c;
    job_local[static_cast<std::size_t>(g)] =
        static_cast<long>(cell_jobs[static_cast<std::size_t>(c)].size());
    cell_jobs[static_cast<std::size_t>(c)].push_back(g);
    return true;
  };

  // Merged global timeline: arrivals and kills in time order, advanced in
  // lockstep across every live cell.
  std::vector<DriverEvent> events;
  events.reserve(static_cast<std::size_t>(num_jobs) + config.kills.size());
  for (std::size_t k = 0; k < config.kills.size(); ++k) {
    events.push_back({config.kills[k].at, 0, static_cast<int>(k)});
  }
  for (long g = 0; g < num_jobs; ++g) {
    events.push_back({sorted.jobs[static_cast<std::size_t>(g)].arrival, 1,
                      static_cast<int>(g)});
  }
  std::sort(events.begin(), events.end());

  // Cell-parallel fan-out (DESIGN.md §14.5). Cells are fully independent
  // between driver events — each engine owns its simulator, scheduler,
  // RNG and trace recorder, and nothing else is shared — so the per-cell
  // advance_before calls of one interval commute. run_barrier returns
  // only after every cell reached ev.time (the barrier), and dispatch /
  // kill handling stays on this thread, so EngineLoad queries observe
  // exactly the state the serial lockstep produces, at every
  // cell_threads count. The worklist drops quiescent cells first: for
  // those, advance_before would mutate nothing (SimEngine::
  // quiescent_until), so skipping them is free determinism-wise and
  // keeps sparse cells from paying a pool hop per driver event.
  std::unique_ptr<util::ThreadPool> pool;
  if (cell_parallel && num_cells > 1) {
    pool = std::make_unique<util::ThreadPool>(
        std::min(config.cell_threads, num_cells));
  }
  std::vector<int> worklist;
  worklist.reserve(static_cast<std::size_t>(num_cells));
  long idle_cell_skips = 0;
  long cell_advance_nanos = 0;

  for (const DriverEvent& ev : events) {
    worklist.clear();
    for (int c = 0; c < num_cells; ++c) {
      if (!alive[static_cast<std::size_t>(c)]) continue;
      if (engines[c]->quiescent_until(ev.time)) {
        idle_cell_skips++;
        continue;
      }
      worklist.push_back(c);
    }
    if (!worklist.empty()) {
      const auto t0 = std::chrono::steady_clock::now();
      util::ThreadPool::run_barrier(
          pool.get(), static_cast<int>(worklist.size()),
          [&](int i) {
            engines[worklist[static_cast<std::size_t>(i)]]->advance_before(
                ev.time);
          });
      cell_advance_nanos += std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    }
    if (ev.kind == 1) {
      dispatch(ev.index, sorted.jobs[static_cast<std::size_t>(ev.index)]);
      continue;
    }
    const int dead = config.kills[static_cast<std::size_t>(ev.index)].cell;
    if (!alive[static_cast<std::size_t>(dead)]) continue;
    // Deliver the machine-down events (and any co-temporal finishes) at
    // the kill instant, then harvest what is left and fail it over.
    engines[dead]->advance_through(ev.time);
    alive[static_cast<std::size_t>(dead)] = 0;
    const std::vector<sim::JobId> unfinished = engines[dead]->halt();
    for (sim::JobId local : unfinished) {
      const long g =
          cell_jobs[static_cast<std::size_t>(dead)][static_cast<std::size_t>(
              local)];
      sim::JobSpec moved = sorted.jobs[static_cast<std::size_t>(g)];
      // Failover restarts the job from scratch on the new cell (its state
      // died with the cell's scheduler); it re-arrives at the kill time.
      moved.arrival = ev.time;
      if (dispatch(g, moved)) reassigned++;
    }
  }

  FederatedResult res;
  res.jobs = num_jobs;
  res.reassigned_jobs = reassigned;
  res.lost_jobs = lost;
  res.job_cell = job_cell;
  // The tail drain past the last driver event is the same independent
  // per-cell work as the advance fan-out — often most of the simulated
  // horizon — so it runs through the same barrier; results land in cell
  // order regardless of which worker drained which cell.
  {
    std::vector<sim::SimResult> finished(static_cast<std::size_t>(num_cells));
    const auto t0 = std::chrono::steady_clock::now();
    util::ThreadPool::run_barrier(pool.get(), num_cells, [&](int c) {
      finished[static_cast<std::size_t>(c)] = engines[c]->finish();
    });
    cell_advance_nanos += std::chrono::duration_cast<
                              std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    res.cells = std::move(finished);
  }

  // Global job records: the final cell's outcome under the original
  // arrival, so JCT charges failover re-runs to the job end to end.
  SimTime first_arrival = std::numeric_limits<double>::infinity();
  SimTime last_finish = 0;
  double jct_sum = 0;
  long jct_n = 0;
  res.job_records.reserve(static_cast<std::size_t>(num_jobs));
  for (long g = 0; g < num_jobs; ++g) {
    const sim::JobSpec& spec = sorted.jobs[static_cast<std::size_t>(g)];
    sim::JobRecord rec;
    rec.id = static_cast<sim::JobId>(g);
    rec.name = spec.name;
    rec.template_id = spec.template_id;
    rec.arrival = spec.arrival;
    rec.total_tasks = static_cast<int>(count_tasks(spec));
    first_arrival = std::min(first_arrival, spec.arrival);
    const int c = job_cell[static_cast<std::size_t>(g)];
    if (c >= 0) {
      const auto l =
          static_cast<std::size_t>(job_local[static_cast<std::size_t>(g)]);
      const auto& local_jobs = res.cells[static_cast<std::size_t>(c)].jobs;
      if (l < local_jobs.size() &&
          local_jobs[l].id == static_cast<sim::JobId>(l)) {
        rec.finish = local_jobs[l].finish;
        rec.unfairness_integral = local_jobs[l].unfairness_integral;
      }
    }
    if (rec.finish >= 0) {
      last_finish = std::max(last_finish, rec.finish);
      jct_sum += rec.finish - rec.arrival;
      jct_n++;
    } else {
      res.unfinished_jobs++;
    }
    res.job_records.push_back(std::move(rec));
  }
  res.makespan =
      last_finish - (std::isfinite(first_arrival) ? first_arrival : 0.0);
  res.avg_jct = jct_n > 0 ? jct_sum / static_cast<double>(jct_n) : 0.0;
  res.completed = lost == 0 && res.unfinished_jobs == 0;

  // Task records from each job's final cell, remapped to global ids.
  // Abandoned executions on killed cells are dropped — their attempts are
  // already accounted in that cell's churn counters.
  for (int c = 0; c < num_cells; ++c) {
    for (const sim::TaskRecord& t : res.cells[static_cast<std::size_t>(c)]
                                        .tasks) {
      const long g = cell_jobs[static_cast<std::size_t>(c)]
                              [static_cast<std::size_t>(t.job)];
      if (job_cell[static_cast<std::size_t>(g)] != c) continue;
      sim::TaskRecord out = t;
      out.job = static_cast<sim::JobId>(g);
      out.host = t.host >= 0 ? t.host + base.cells[c].begin : t.host;
      res.tasks.push_back(out);
    }
  }

  // Churn rollup and the packing-quality metrics.
  const int total_machines =
      static_cast<int>(base.resolved_capacities().size());
  SimTime horizon = 0;
  for (const auto& cell : res.cells) {
    horizon = std::max(horizon, cell.end_time);
  }
  double weighted_eff = 0;
  double busy_weighted_util = 0;
  double util_min = std::numeric_limits<double>::infinity();
  double util_max = -std::numeric_limits<double>::infinity();
  res.cell_utilization.reserve(static_cast<std::size_t>(num_cells));
  for (int c = 0; c < num_cells; ++c) {
    const sim::SimResult& r = res.cells[static_cast<std::size_t>(c)];
    // Hot-path accounting crosses the cell boundary instead of being
    // dropped with the per-cell results: counters sum (peaks max) and
    // the pass-latency histograms merge bucket-wise.
    res.perf += r.perf;
    res.pass_latency += r.pass_latency;
    res.churn.machines_failed += r.churn.machines_failed;
    res.churn.machines_recovered += r.churn.machines_recovered;
    res.churn.task_attempts_lost += r.churn.task_attempts_lost;
    res.churn.read_failovers += r.churn.read_failovers;
    res.churn.work_lost_seconds += r.churn.work_lost_seconds;
    const double weight = base.cells[c].size();
    weighted_eff += weight * r.churn.effective_capacity;

    double util = 0;
    for (const auto& s : r.timeline) {
      double dominant = 0;
      for (double u : s.utilization) dominant = std::max(dominant, u);
      util += dominant;
    }
    util = r.timeline.empty()
               ? 0.0
               : util / static_cast<double>(r.timeline.size());
    res.cell_utilization.push_back(util);
    util_min = std::min(util_min, util);
    util_max = std::max(util_max, util);
    busy_weighted_util += weight * util * r.end_time;
  }
  res.churn.effective_capacity =
      total_machines > 0 ? weighted_eff / total_machines : 1.0;
  res.avg_utilization =
      horizon > 0 && total_machines > 0
          ? busy_weighted_util / (static_cast<double>(total_machines) *
                                  horizon)
          : 0.0;
  res.fragmentation = 1.0 - res.avg_utilization;
  res.utilization_skew =
      num_cells > 0 && std::isfinite(util_min) ? util_max - util_min : 0.0;
  res.perf.cell_advance_nanos = cell_advance_nanos;
  res.perf.idle_cell_skips = idle_cell_skips;
  return res;
}

}  // namespace tetris::federation
