#include "federation/dispatcher.h"

#include <stdexcept>

namespace tetris::federation {

std::string policy_name(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "rr";
    case DispatchPolicy::kLeastLoaded: return "least-loaded";
    case DispatchPolicy::kPowerOfTwo: return "p2c";
    case DispatchPolicy::kLocalityAware: return "locality";
  }
  return "unknown";
}

double Dispatcher::load_metric(const sim::EngineLoad& load) {
  // Pending work per surviving machine: cells keep comparable scores even
  // when sizes differ or part of a cell is down. An all-down cell scores
  // its absolute backlog — effectively infinite against healthy peers.
  const int denom = load.up_machines > 0 ? load.up_machines : 1;
  return static_cast<double>(load.runnable_tasks + load.running_tasks) /
         static_cast<double>(denom);
}

int Dispatcher::pick(const std::vector<int>& candidates,
                     const std::vector<sim::EngineLoad>& loads,
                     const std::vector<double>& locality_bytes) {
  if (candidates.empty()) {
    throw std::invalid_argument("Dispatcher::pick: no candidate cells");
  }
  const int num_cells = static_cast<int>(loads.size());
  auto less_loaded = [&](int a, int b) {
    const double la = load_metric(loads[static_cast<std::size_t>(a)]);
    const double lb = load_metric(loads[static_cast<std::size_t>(b)]);
    if (la != lb) return la < lb;
    return a < b;
  };
  switch (policy_) {
    case DispatchPolicy::kRoundRobin: {
      // First candidate at or after the cursor, cyclically by cell index.
      int best = candidates.front();
      int best_dist = num_cells;
      for (int c : candidates) {
        const int dist = ((c - rr_cursor_) % num_cells + num_cells) %
                         num_cells;
        if (dist < best_dist) {
          best = c;
          best_dist = dist;
        }
      }
      rr_cursor_ = (best + 1) % num_cells;
      return best;
    }
    case DispatchPolicy::kLeastLoaded: {
      int best = candidates.front();
      for (int c : candidates) {
        if (less_loaded(c, best)) best = c;
      }
      return best;
    }
    case DispatchPolicy::kPowerOfTwo: {
      const auto n = static_cast<std::int64_t>(candidates.size());
      if (n == 1) return candidates.front();
      const auto i = rng_.uniform_int(0, n - 1);
      auto j = rng_.uniform_int(0, n - 2);
      if (j >= i) ++j;  // two *distinct* choices
      const int a = candidates[static_cast<std::size_t>(i)];
      const int b = candidates[static_cast<std::size_t>(j)];
      return less_loaded(a, b) ? a : b;
    }
    case DispatchPolicy::kLocalityAware: {
      int best = candidates.front();
      for (int c : candidates) {
        const double bc = locality_bytes[static_cast<std::size_t>(c)];
        const double bb = locality_bytes[static_cast<std::size_t>(best)];
        if (bc > bb || (bc == bb && less_loaded(c, best))) best = c;
      }
      return best;
    }
  }
  return candidates.front();
}

}  // namespace tetris::federation
