// Cell slicing for federated scheduling (DESIGN.md §14). A Cell owns a
// rack-aligned contiguous slice [begin, end) of the global cluster and
// runs its own Tetris scheduler over a SimConfig carved out of the global
// one: capacities, labels, scripted churn and background activities are
// sliced and remapped into the cell's local machine-id space; rack
// topology carries over unchanged because cell boundaries are rack
// boundaries (sim::validate_cells enforces it).
#pragma once

#include "sim/config.h"
#include "sim/spec.h"

namespace tetris::federation {

// Builds the per-cell SimConfig: a cluster of span.size() machines whose
// local machine m corresponds to global machine span.begin + m. The cell's
// RNG seed is base.seed + cell_index, so distinct cells draw independent
// task-failure/noise/churn streams while cell 0 of a 1-cell federation
// keeps the base seed — the bit-identity anchor against the global run.
// Random (MTTF/MTTR) churn is re-drawn per cell from that seed; scripted
// events are sliced exactly. base.cells is cleared on the result.
sim::SimConfig make_cell_config(const sim::SimConfig& base,
                                const sim::CellSpec& span, int cell_index);

// Rewrites a job's input-split replica lists into the cell's local id
// space. A replica inside the cell maps to its local id; a replica on
// another cell maps to the deterministic surrogate (global_id mod
// span.size()) — modelling a cross-cell copy cached on a cell-local
// machine, so the read still pays a (possibly remote) transfer inside the
// cell instead of referencing a machine the cell's scheduler cannot see.
sim::JobSpec remap_job_for_cell(const sim::JobSpec& job,
                                const sim::CellSpec& span);

// True when every label-constrained stage of the job has at least one
// admissible machine inside the cell (require/forbid labels against
// base.machine_labels). A job whose constraints only fit one cell must be
// dispatched there; a job feasible nowhere goes to some cell and is doomed
// with the usual InfeasibleGroup report.
bool cell_feasible(const sim::JobSpec& job, const sim::SimConfig& base,
                   const sim::CellSpec& span);

// Bytes of the job's DFS input with at least one replica inside the cell —
// the locality-aware dispatch signal.
double cell_input_bytes(const sim::JobSpec& job, const sim::CellSpec& span);

}  // namespace tetris::federation
