// Federated multi-cell scheduling (DESIGN.md §14): a dispatcher admits
// each arriving job to exactly one cell; every cell runs its own Tetris
// scheduler over its slice of the cluster via the stepped SimEngine, all
// advanced in lockstep on the shared clock. Cell kills re-admit the dead
// cell's unfinished jobs to survivors through the same dispatcher. The
// 1-cell configuration is bit-identical to the global scheduler —
// placements, makespan and decision trace — so the federation sweep
// (bench_federation, E26) measures pure dispatcher-induced packing loss.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tetris_scheduler.h"
#include "federation/dispatcher.h"
#include "sim/config.h"
#include "sim/result.h"
#include "sim/spec.h"
#include "util/histogram.h"
#include "util/perf_counters.h"

namespace tetris::federation {

// Kills every machine of `cell` at time `at` (scripted churn under the
// hood, so per-cell ChurnStats account the outage) and fails the cell's
// unfinished jobs over to the surviving cells.
struct CellKill {
  int cell = 0;
  SimTime at = 0;
};

struct FederationConfig {
  // The global cluster; base.cells must define the partition
  // (sim::validate_cells rules). Tracker/estimation/trace/thread knobs are
  // inherited by every cell; each cell seeds its RNG with
  // base.seed + cell_index (cell 0 keeps the base seed).
  sim::SimConfig base;
  // Per-cell scheduler template. num_threads == 0 falls back to
  // base.num_threads, mirroring the bench harness — EXCEPT under
  // cell-parallel execution (cell_threads > 1), where the default is
  // serial per-cell passes: the fan-out already uses one thread per
  // cell, and silently multiplying the two knobs would oversubscribe the
  // machine. Set tetris.num_threads explicitly to nest them.
  core::TetrisConfig tetris;
  DispatchPolicy policy = DispatchPolicy::kLeastLoaded;
  std::uint64_t dispatch_seed = 1;
  std::vector<CellKill> kills;

  // Cell-parallel execution (DESIGN.md §14.5): 0 or 1 keeps the serial
  // lockstep loop; N > 1 fans each driver interval's per-cell advance out
  // as min(N, cells) tasks on a util::ThreadPool, with a barrier before
  // every dispatcher decision. Placements, makespan and kDecisions traces
  // are bit-identical at every setting — cells only interact at dispatch
  // and kill instants, and both stay on the driver thread.
  int cell_threads = 0;
  // Fail-fast guard: cell_threads x max(1, per-cell num_threads) must not
  // exceed std::thread::hardware_concurrency() (when known) unless this
  // is set — oversubscribed runs stay bit-identical but measure scheduler
  // wall-clock noise, not speedup. Benches that sweep past the core count
  // on purpose set it and say so in their tables.
  bool allow_oversubscription = false;
};

struct FederatedResult {
  bool completed = false;  // every job finished on some cell
  SimTime makespan = 0;  // last finish minus first *original* arrival
  long jobs = 0;
  long reassigned_jobs = 0;  // failover re-admissions across all kills
  long lost_jobs = 0;        // no surviving cell to re-admit to
  long unfinished_jobs = 0;  // dispatched but never finished (doomed/cut off)
  double avg_jct = 0;        // completed jobs, from the original arrival

  // Packing-quality metrics (E26). Per-cell utilization is the mean over
  // the cell's timeline samples of its dominant-resource usage fraction;
  // avg_utilization weights cells by capacity x busy span over the
  // federated horizon, so a cell idling after an early finish counts as
  // waste. fragmentation = 1 - avg_utilization; utilization_skew is the
  // max-min spread of the per-cell means.
  double avg_utilization = 0;
  double fragmentation = 0;
  double utilization_skew = 0;

  sim::ChurnStats churn;  // summed across cells (capacity-weighted
                          // effective_capacity)

  // Hot-path accounting, merged across every cell instead of being
  // dropped at the cell boundary: summed util::PerfCounters (plus the
  // driver's own cell_advance_nanos / idle_cell_skips) and the combined
  // pass-latency histogram, so analysis::perf_counters_csv and p50/p99
  // reporting work on federated runs exactly as on single-cell ones.
  util::PerfCounters perf;
  util::LatencyHistogram pass_latency;

  // Global views: job records keyed by global job id with original
  // arrivals; task records from each job's *final* cell with hosts mapped
  // back to global machine ids (abandoned executions on killed cells are
  // dropped). job_cell[g] is the final cell of job g, -1 if lost.
  std::vector<sim::JobRecord> job_records;
  std::vector<sim::TaskRecord> tasks;
  std::vector<int> job_cell;

  std::vector<double> cell_utilization;
  // Raw per-cell results (local machine/job ids), index == cell index.
  std::vector<sim::SimResult> cells;

  std::vector<double> jcts() const;
};

// Runs `workload` through the federation described by `config`. The
// workload is sorted by arrival internally; global job ids are positions
// in that sorted order (the same ids sim::simulate assigns when handed the
// sorted workload). Throws std::invalid_argument on an invalid partition,
// kill list, or workload.
FederatedResult simulate_federated(const FederationConfig& config,
                                   const sim::Workload& workload);

}  // namespace tetris::federation
