// The federated dispatcher (DESIGN.md §14): a thin, stateless-per-job
// admission layer that sends each arriving job to exactly one cell. It
// sees only deterministic cell load snapshots (sim::EngineLoad) and the
// job's locality/feasibility signals, so for a fixed seed every policy is
// bit-reproducible and independent of per-cell thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace tetris::federation {

enum class DispatchPolicy {
  // Cycles through cells in index order, skipping infeasible/dead ones —
  // the control arm: load- and locality-blind.
  kRoundRobin,
  // Minimizes (runnable + running tasks) / up machines; ties break to the
  // lowest cell index.
  kLeastLoaded,
  // Power-of-two-choices: two distinct candidates drawn from the seeded
  // RNG, the less loaded wins (ties to the lower index).
  kPowerOfTwo,
  // Maximizes the job's input bytes resident in the cell; ties break
  // least-loaded, then lowest index. Feasibility already pins jobs whose
  // label constraints fit only one cell — every policy honours that.
  kLocalityAware,
};

// Stable short names for CSV columns ("rr", "least-loaded", "p2c",
// "locality").
std::string policy_name(DispatchPolicy policy);

class Dispatcher {
 public:
  Dispatcher(DispatchPolicy policy, std::uint64_t seed)
      : policy_(policy), rng_(seed) {}

  // Picks a cell from `candidates` (ascending cell indices: the alive,
  // feasible cells — never empty). `loads` and `locality_bytes` are
  // indexed by cell id and cover every cell.
  int pick(const std::vector<int>& candidates,
           const std::vector<sim::EngineLoad>& loads,
           const std::vector<double>& locality_bytes);

  DispatchPolicy policy() const { return policy_; }

 private:
  static double load_metric(const sim::EngineLoad& load);

  DispatchPolicy policy_;
  Rng rng_;
  int rr_cursor_ = 0;
};

}  // namespace tetris::federation
