#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.h"

namespace tetris::trace {

// Binary log file format ("TTRC"): an 8-byte magic, format version, run
// metadata, then the event stream in wire.h encoding. Events round-trip
// bit-exactly (doubles are stored as raw IEEE-754 patterns), so a file
// written from one run compares clean against a deterministic re-run.

std::vector<std::uint8_t> serialize_log(const TraceLog& log);

// Throws std::runtime_error on bad magic, unsupported version, or a
// truncated/corrupt stream.
TraceLog deserialize_log(const std::uint8_t* data, std::size_t size);

// File wrappers around the two above; throw std::runtime_error on I/O
// failure.
void write_log_file(const std::string& path, const TraceLog& log);
TraceLog read_log_file(const std::string& path);

}  // namespace tetris::trace

