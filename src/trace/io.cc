#include "trace/io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "trace/wire.h"

namespace tetris::trace {

namespace {

constexpr char kMagic[8] = {'T', 'T', 'R', 'C', 'L', 'O', 'G', '\0'};
constexpr std::uint64_t kVersion = 1;

}  // namespace

std::vector<std::uint8_t> serialize_log(const TraceLog& log) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  wire::put_varint(out, kVersion);
  wire::put_varint(out, log.seed);
  wire::put_varint(out, log.dropped);
  wire::put_varint(out, log.scheduler.size());
  out.insert(out.end(), log.scheduler.begin(), log.scheduler.end());
  wire::put_varint(out, log.events.size());
  for (const Event& ev : log.events) wire::encode_event(out, ev);
  return out;
}

TraceLog deserialize_log(const std::uint8_t* data, std::size_t size) {
  if (size < sizeof(kMagic) ||
      std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace log: bad magic");
  }
  wire::Reader reader(data + sizeof(kMagic), size - sizeof(kMagic));
  const std::uint64_t version = reader.get_varint();
  if (!reader.ok || version != kVersion) {
    throw std::runtime_error("trace log: unsupported version");
  }
  TraceLog log;
  log.seed = reader.get_varint();
  log.dropped = reader.get_varint();
  const std::uint64_t name_len = reader.get_varint();
  if (!reader.ok ||
      name_len > static_cast<std::uint64_t>(reader.end - reader.pos)) {
    throw std::runtime_error("trace log: truncated header");
  }
  log.scheduler.assign(reinterpret_cast<const char*>(reader.pos),
                       static_cast<std::size_t>(name_len));
  reader.pos += name_len;
  const std::uint64_t count = reader.get_varint();
  if (!reader.ok) throw std::runtime_error("trace log: truncated header");
  log.events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Event ev;
    if (!wire::decode_event(reader, &ev)) {
      throw std::runtime_error("trace log: corrupt event stream");
    }
    log.events.push_back(ev);
  }
  return log;
}

void write_log_file(const std::string& path, const TraceLog& log) {
  const std::vector<std::uint8_t> bytes = serialize_log(log);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("trace log: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("trace log: write failed " + path);
}

TraceLog read_log_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace log: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return deserialize_log(bytes.data(), bytes.size());
}

}  // namespace tetris::trace
