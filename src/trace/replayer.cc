#include "trace/replayer.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace tetris::trace {

bool is_decision_event(EventKind kind) {
  switch (kind) {
    case EventKind::kShardTiming:
    case EventKind::kGroupScan:
    case EventKind::kUsageReport:
      return false;
    case EventKind::kRunBegin:
      // Run *metadata*, not a decision: its thread-count and naive-mode
      // fields differ between configurations whose schedules must still
      // compare identical under kDecisions.
      return false;
    default:
      return true;
  }
}

std::vector<Event> filtered_events(const TraceLog& log, CompareMode mode) {
  std::vector<Event> out;
  out.reserve(log.events.size());
  for (const Event& ev : log.events) {
    if (mode == CompareMode::kFull || is_decision_event(ev.kind)) {
      out.push_back(ev);
    }
  }
  return out;
}

Divergence first_divergence(const TraceLog& lhs, const TraceLog& rhs,
                            CompareMode mode) {
  const std::vector<Event> a = filtered_events(lhs, mode);
  const std::vector<Event> b = filtered_events(rhs, mode);
  Divergence div;
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!semantic_equal(a[i], b[i])) {
      div.identical = false;
      div.index = i;
      std::ostringstream out;
      out << "event " << i << " differs:\n  lhs: " << describe(a[i])
          << "\n  rhs: " << describe(b[i]);
      div.description = out.str();
      return div;
    }
  }
  if (a.size() != b.size()) {
    div.identical = false;
    div.index = common;
    std::ostringstream out;
    out << "stream lengths differ: lhs has " << a.size() << ", rhs has "
        << b.size() << " events; first extra: "
        << describe(a.size() > b.size() ? a[common] : b[common]);
    div.description = out.str();
  }
  return div;
}

Replayer::Replayer(TraceLog recorded) : recorded_(std::move(recorded)) {}

ReplayReport Replayer::replay(const std::function<TraceLog()>& rerun,
                              CompareMode mode) const {
  ReplayReport report;
  const TraceLog fresh = rerun();
  report.divergence = first_divergence(recorded_, fresh, mode);
  report.events_compared =
      std::min(filtered_events(recorded_, mode).size(),
               filtered_events(fresh, mode).size());
  report.ok = report.divergence.identical;
  std::ostringstream out;
  if (report.ok) {
    out << "replay ok: " << report.events_compared
        << " events reproduced for scheduler '" << recorded_.scheduler
        << "' seed " << recorded_.seed;
  } else {
    out << "replay DIVERGED at event " << report.divergence.index << ": "
        << report.divergence.description;
  }
  report.message = out.str();
  return report;
}

}  // namespace tetris::trace
