#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tetris::trace {

// One record per scheduling-relevant occurrence. The schema is deliberately
// flat: a fixed kind, the simulation timestamp, six integer slots (a..f),
// four double slots (x..w) and one wall-clock slot (timing). Per-kind field
// meaning is documented next to each enumerator; unused slots stay zero and
// are elided on the wire (see wire.h). Keeping the record POD-flat lets the
// recorder encode without allocation and keeps replay comparison trivial.
enum class EventKind : std::uint8_t {
  // a=seed, b=num_machines, c=num_jobs, d=num_threads, e=naive(0/1)
  kRunBegin = 0,
  // a=job id
  kJobArrival = 1,
  // a=pass index, b=backlog (runnable tasks at pass start)
  kPassBegin = 2,
  // a=shard index, b=first machine, c=last machine (exclusive),
  // d=score evaluations; timing=worker wall-clock nanos (non-semantic)
  kShardTiming = 3,
  // Baseline schedulers' machine scan (sched/common.cc):
  // a=job, b=stage, c=chosen machine (-1 none), d=machines scanned
  kGroupScan = 4,
  // Committed Tetris placement: a=job, b=stage, c=task index, d=machine,
  // e=tier, f=fairness cut (eligible-job count);
  // x=alignment score, y=eps*p_hat penalty term (so score = x - y)
  kPlacement = 5,
  // a=attempt uid, b=job, c=stage, d=task index, e=machine
  kTaskStart = 6,
  // a=attempt uid, b=job, c=stage, d=task index, e=machine
  kTaskFinish = 7,
  // a=attempt uid, b=job, c=stage, d=task index, e=machine,
  // f=KillReason
  kTaskKill = 8,
  // a=machine id (churn transition, recorded only on real down edges)
  kMachineDown = 9,
  // a=machine id
  kMachineUp = 10,
  // Tracker heartbeat report: a=node, b=live task count;
  // x=charged cpu, y=charged mem, z=available cpu, w=available mem
  kUsageReport = 11,
  // a=pass index, b=placements this pass; timing=pass wall-clock nanos
  kPassEnd = 12,
  // a=tasks completed, b=jobs completed; x=makespan
  kRunEnd = 13,
};

inline constexpr int kNumEventKinds = 14;

// Why a task attempt was killed (kTaskKill field f).
enum class KillReason : std::uint8_t {
  kFault = 0,           // injected task failure
  kPreempt = 1,         // scheduler preemption
  kMachineFailure = 2,  // hosting machine went down
};

struct Event {
  EventKind kind = EventKind::kRunBegin;
  double time = 0.0;  // simulation seconds
  std::int64_t a = 0, b = 0, c = 0, d = 0, e = 0, f = 0;
  double x = 0.0, y = 0.0, z = 0.0, w = 0.0;
  // Wall-clock nanoseconds. Non-semantic: two deterministic runs differ
  // here, so every comparison mode ignores this field's value.
  std::int64_t timing = 0;
};

// A drained, decoded, globally-ordered event stream plus run metadata.
struct TraceLog {
  std::string scheduler;
  std::uint64_t seed = 0;
  std::uint64_t dropped = 0;  // records lost to ring-buffer overflow
  std::vector<Event> events;
};

const char* kind_name(EventKind kind);

// True when the two events agree on every semantic field (everything
// except `timing`). Doubles are compared with ==, matching the repo's
// bit-identical determinism contract.
bool semantic_equal(const Event& lhs, const Event& rhs);

// One-line human-readable rendering, e.g.
// "placement t=12.5 job=3 stage=1 task=4 machine=7 tier=0 cut=5 align=1.25".
std::string describe(const Event& event);

}  // namespace tetris::trace

