#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "trace/event.h"

// Wire encoding shared by the in-memory ring buffers (recorder.cc) and the
// on-disk log format (io.cc). One record is:
//
//   kind      u8
//   mask      varint   bit i set => optional field i present
//   time      f64      raw little-endian bit pattern (always present)
//   a..f      zigzag varints, each only if its mask bit is set
//   x..w      f64 bit patterns, each only if its mask bit is set
//   timing    zigzag varint, only if its mask bit is set
//
// Doubles travel as raw IEEE-754 bit patterns so a decode/re-encode round
// trip is bit-exact — required for the replay-equality contract. Zero-valued
// fields are elided via the mask, which keeps typical records under 16 bytes.

namespace tetris::trace::wire {

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

// Bounded cursor over an encoded byte range. All reads clear `ok` instead
// of running past `end`, so a truncated or corrupt buffer decodes to a
// clean failure rather than undefined behavior.
struct Reader {
  const std::uint8_t* pos = nullptr;
  const std::uint8_t* end = nullptr;
  bool ok = true;

  Reader(const std::uint8_t* p, std::size_t n) : pos(p), end(p + n) {}

  bool done() const { return pos == end; }

  std::uint8_t get_u8() {
    if (pos == end) {
      ok = false;
      return 0;
    }
    return *pos++;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t byte = get_u8();
      if (!ok) return 0;
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    ok = false;  // varint longer than 10 bytes
    return 0;
  }

  double get_f64() {
    if (end - pos < 8) {
      ok = false;
      pos = end;
      return 0.0;
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(*pos++) << (8 * i);
    }
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

// Mask bit layout: a..f = bits 0..5, x..w = bits 6..9, timing = bit 10.
inline void encode_event(std::vector<std::uint8_t>& out, const Event& ev) {
  const std::int64_t ints[6] = {ev.a, ev.b, ev.c, ev.d, ev.e, ev.f};
  const double doubles[4] = {ev.x, ev.y, ev.z, ev.w};
  std::uint64_t mask = 0;
  for (int i = 0; i < 6; ++i) {
    if (ints[i] != 0) mask |= std::uint64_t{1} << i;
  }
  for (int i = 0; i < 4; ++i) {
    // Compare bit patterns, not values: -0.0 and NaN payloads must survive.
    std::uint64_t bits;
    std::memcpy(&bits, &doubles[i], sizeof(bits));
    if (bits != 0) mask |= std::uint64_t{1} << (6 + i);
  }
  if (ev.timing != 0) mask |= std::uint64_t{1} << 10;

  out.push_back(static_cast<std::uint8_t>(ev.kind));
  put_varint(out, mask);
  put_f64(out, ev.time);
  for (int i = 0; i < 6; ++i) {
    if (mask & (std::uint64_t{1} << i)) put_varint(out, zigzag(ints[i]));
  }
  for (int i = 0; i < 4; ++i) {
    if (mask & (std::uint64_t{1} << (6 + i))) put_f64(out, doubles[i]);
  }
  if (mask & (std::uint64_t{1} << 10)) put_varint(out, zigzag(ev.timing));
}

inline bool decode_event(Reader& in, Event* ev) {
  const std::uint8_t kind = in.get_u8();
  const std::uint64_t mask = in.get_varint();
  if (!in.ok || kind >= kNumEventKinds || (mask >> 11) != 0) return false;
  ev->kind = static_cast<EventKind>(kind);
  ev->time = in.get_f64();
  std::int64_t* ints[6] = {&ev->a, &ev->b, &ev->c, &ev->d, &ev->e, &ev->f};
  for (int i = 0; i < 6; ++i) {
    *ints[i] = (mask & (std::uint64_t{1} << i)) ? unzigzag(in.get_varint())
                                                : 0;
  }
  double* doubles[4] = {&ev->x, &ev->y, &ev->z, &ev->w};
  for (int i = 0; i < 4; ++i) {
    *doubles[i] =
        (mask & (std::uint64_t{1} << (6 + i))) ? in.get_f64() : 0.0;
  }
  ev->timing = (mask & (std::uint64_t{1} << 10))
                   ? unzigzag(in.get_varint())
                   : 0;
  return in.ok;
}

}  // namespace tetris::trace::wire

