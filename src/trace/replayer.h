#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "trace/event.h"

namespace tetris::trace {

// How two logs are lined up before comparison.
//
// kFull compares every event's semantic fields (wall-clock `timing` values
// are always ignored). This is the replay contract: same config + same seed
// must reproduce the identical stream.
//
// kDecisions first filters both streams down to schedule-derived events —
// arrivals, pass begin/end, placements, task start/finish/kill, machine
// down/up, run end — dropping kShardTiming (absent in serial runs),
// kGroupScan, kUsageReport, and kRunBegin (whose thread-count/naive-mode
// metadata differs between configurations by construction). This is the
// cross-configuration contract: {naive, opt} x {serial, N threads} must
// agree on every decision even though their instrumentation differs.
enum class CompareMode { kFull, kDecisions };

bool is_decision_event(EventKind kind);

std::vector<Event> filtered_events(const TraceLog& log, CompareMode mode);

struct Divergence {
  bool identical = true;
  // Index into the filtered streams where they first disagree (== the
  // shorter stream's size when one is a strict prefix of the other).
  std::size_t index = 0;
  std::string description;  // empty when identical
};

Divergence first_divergence(const TraceLog& lhs, const TraceLog& rhs,
                            CompareMode mode = CompareMode::kFull);

struct ReplayReport {
  bool ok = false;
  std::size_t events_compared = 0;
  Divergence divergence;
  std::string message;
};

// Re-executes a recorded run and asserts event-for-event equality. The
// replayer never constructs a simulation itself (that would invert the
// trace <- sim dependency); the caller supplies `rerun`, which must rebuild
// the run from the recorded seed + config and return its fresh log.
class Replayer {
 public:
  explicit Replayer(TraceLog recorded);

  const TraceLog& recorded() const { return recorded_; }

  ReplayReport replay(const std::function<TraceLog()>& rerun,
                      CompareMode mode = CompareMode::kFull) const;

 private:
  TraceLog recorded_;
};

}  // namespace tetris::trace

