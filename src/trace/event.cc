#include "trace/event.h"

#include <sstream>

namespace tetris::trace {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRunBegin: return "run_begin";
    case EventKind::kJobArrival: return "job_arrival";
    case EventKind::kPassBegin: return "pass_begin";
    case EventKind::kShardTiming: return "shard_timing";
    case EventKind::kGroupScan: return "group_scan";
    case EventKind::kPlacement: return "placement";
    case EventKind::kTaskStart: return "task_start";
    case EventKind::kTaskFinish: return "task_finish";
    case EventKind::kTaskKill: return "task_kill";
    case EventKind::kMachineDown: return "machine_down";
    case EventKind::kMachineUp: return "machine_up";
    case EventKind::kUsageReport: return "usage_report";
    case EventKind::kPassEnd: return "pass_end";
    case EventKind::kRunEnd: return "run_end";
  }
  return "unknown";
}

bool semantic_equal(const Event& lhs, const Event& rhs) {
  return lhs.kind == rhs.kind && lhs.time == rhs.time && lhs.a == rhs.a &&
         lhs.b == rhs.b && lhs.c == rhs.c && lhs.d == rhs.d &&
         lhs.e == rhs.e && lhs.f == rhs.f && lhs.x == rhs.x &&
         lhs.y == rhs.y && lhs.z == rhs.z && lhs.w == rhs.w;
}

namespace {

const char* kill_reason_name(std::int64_t reason) {
  switch (static_cast<KillReason>(reason)) {
    case KillReason::kFault: return "fault";
    case KillReason::kPreempt: return "preempt";
    case KillReason::kMachineFailure: return "machine_failure";
  }
  return "unknown";
}

}  // namespace

std::string describe(const Event& ev) {
  std::ostringstream out;
  out << kind_name(ev.kind) << " t=" << ev.time;
  switch (ev.kind) {
    case EventKind::kRunBegin:
      out << " seed=" << ev.a << " machines=" << ev.b << " jobs=" << ev.c
          << " threads=" << ev.d << " naive=" << ev.e;
      break;
    case EventKind::kJobArrival:
      out << " job=" << ev.a;
      break;
    case EventKind::kPassBegin:
      out << " pass=" << ev.a << " backlog=" << ev.b;
      break;
    case EventKind::kShardTiming:
      out << " shard=" << ev.a << " machines=[" << ev.b << "," << ev.c
          << ") evals=" << ev.d << " nanos=" << ev.timing;
      break;
    case EventKind::kGroupScan:
      out << " job=" << ev.a << " stage=" << ev.b << " machine=" << ev.c
          << " scanned=" << ev.d;
      break;
    case EventKind::kPlacement:
      out << " job=" << ev.a << " stage=" << ev.b << " task=" << ev.c
          << " machine=" << ev.d << " tier=" << ev.e << " cut=" << ev.f
          << " align=" << ev.x << " eps_p=" << ev.y;
      break;
    case EventKind::kTaskStart:
    case EventKind::kTaskFinish:
    case EventKind::kTaskKill:
      out << " uid=" << ev.a << " job=" << ev.b << " stage=" << ev.c
          << " task=" << ev.d << " machine=" << ev.e;
      if (ev.kind == EventKind::kTaskKill) {
        out << " reason=" << kill_reason_name(ev.f);
      }
      break;
    case EventKind::kMachineDown:
    case EventKind::kMachineUp:
      out << " machine=" << ev.a;
      break;
    case EventKind::kUsageReport:
      out << " node=" << ev.a << " live=" << ev.b << " charged_cpu=" << ev.x
          << " charged_mem=" << ev.y << " avail_cpu=" << ev.z
          << " avail_mem=" << ev.w;
      break;
    case EventKind::kPassEnd:
      out << " pass=" << ev.a << " placements=" << ev.b
          << " nanos=" << ev.timing;
      break;
    case EventKind::kRunEnd:
      out << " tasks=" << ev.a << " jobs=" << ev.b << " makespan=" << ev.x;
      break;
  }
  return out.str();
}

}  // namespace tetris::trace
