#include "trace/recorder.h"

#include <algorithm>
#include <utility>

#include "trace/wire.h"

namespace tetris::trace {

namespace {

// Worst-case encoded record: varint seq (10) + kind (1) + mask (2) +
// time (8) + six zigzag varints (60) + four doubles (32) + timing (10).
constexpr std::size_t kMaxRecordBytes = 128;

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Recorder::Recorder(TraceConfig config)
    : config_(config), id_(next_recorder_id()) {}

Recorder::ThreadBuffer* Recorder::local_buffer() {
  // Cache keyed on (recorder address, recorder id): the id tiebreaks a new
  // recorder allocated at a freed recorder's address. Buffers are never
  // deallocated while the recorder lives (take_log only clears their
  // contents), so a cached pointer that passes the key check is valid.
  struct Cache {
    const Recorder* owner = nullptr;
    std::uint64_t id = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner != this || cache.id != id_) {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    cache = Cache{this, id_, buffers_.back().get()};
  }
  return cache.buffer;
}

void Recorder::record(const Event& event) {
  if (!config_.enabled) return;
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  ThreadBuffer* buf = local_buffer();
  if (buf->chunks.empty() ||
      buf->chunks.back().bytes.size() + kMaxRecordBytes >
          config_.chunk_bytes) {
    buf->chunks.emplace_back();
    buf->chunks.back().bytes.reserve(config_.chunk_bytes);
    while (buf->chunks.size() > std::max<std::size_t>(
                                    1, config_.max_chunks_per_thread)) {
      buf->dropped += buf->chunks.front().records;
      buf->chunks.pop_front();
    }
  }
  Chunk& chunk = buf->chunks.back();
  wire::put_varint(chunk.bytes, seq);
  wire::encode_event(chunk.bytes, event);
  chunk.records++;
}

TraceLog Recorder::take_log() {
  std::lock_guard<std::mutex> lock(mu_);
  TraceLog log;
  std::vector<std::pair<std::uint64_t, Event>> ordered;
  for (const auto& buf : buffers_) {
    log.dropped += buf->dropped;
    for (const Chunk& chunk : buf->chunks) {
      wire::Reader reader(chunk.bytes.data(), chunk.bytes.size());
      while (!reader.done() && reader.ok) {
        const std::uint64_t seq = reader.get_varint();
        Event ev;
        if (!wire::decode_event(reader, &ev)) break;
        ordered.emplace_back(seq, ev);
      }
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& lhs, const auto& rhs) {
              return lhs.first < rhs.first;
            });
  log.events.reserve(ordered.size());
  for (auto& [seq, ev] : ordered) log.events.push_back(ev);
  // Reset in place: thread-local caches keep pointing at live (now empty)
  // buffers, so the recorder can record a fresh run without re-registration.
  for (auto& buf : buffers_) {
    buf->chunks.clear();
    buf->dropped = 0;
  }
  seq_.store(0, std::memory_order_relaxed);
  accepted_.store(0, std::memory_order_relaxed);
  return log;
}

}  // namespace tetris::trace
