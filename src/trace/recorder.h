#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/event.h"

namespace tetris::trace {

struct TraceConfig {
  bool enabled = false;
  // Ring-buffer geometry, per recording thread. Each thread appends encoded
  // records into fixed-size chunks; once a thread holds max_chunks_per_thread
  // full chunks the oldest chunk is dropped whole (cheap, and the tail of the
  // run — where divergences are diagnosed — is what survives). Defaults hold
  // ~4 MiB/thread, roughly 250K records.
  std::size_t chunk_bytes = 64 * 1024;
  std::size_t max_chunks_per_thread = 64;
};

// Thread-safe binary event log. `record()` is wait-free against other
// threads on the hot path: the only shared write is a relaxed fetch_add on
// the global sequence counter; encoded bytes land in a per-thread buffer
// (registered once per thread under a mutex, then cached thread-locally).
// When `enabled()` is false, `record()` returns immediately.
//
// `take_log()` drains every thread's buffers into one stream ordered by the
// global sequence number. It must not race with `record()` — callers drain
// only after the traced run has completed.
class Recorder {
 public:
  explicit Recorder(TraceConfig config = TraceConfig{});

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  bool enabled() const { return config_.enabled; }
  const TraceConfig& config() const { return config_; }

  void record(const Event& event);

  // Records accepted so far (including any later dropped by ring overflow).
  std::uint64_t recorded() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  // Drains all buffers: decodes, merges across threads by sequence number,
  // and resets the recorder so a subsequent run records from empty.
  TraceLog take_log();

 private:
  struct Chunk {
    std::vector<std::uint8_t> bytes;
    std::size_t records = 0;
  };
  struct ThreadBuffer {
    std::deque<Chunk> chunks;
    std::uint64_t dropped = 0;
  };

  ThreadBuffer* local_buffer();

  const TraceConfig config_;
  const std::uint64_t id_;  // distinguishes recorders for thread-local caching
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::mutex mu_;  // guards buffers_ registration and take_log()
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

}  // namespace tetris::trace

