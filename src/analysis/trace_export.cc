#include "analysis/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

namespace tetris::analysis {

namespace {

// Process id of the synthetic "scheduler" track; machine ids are small, so
// any large constant keeps them disjoint.
constexpr std::int64_t kSchedulerPid = 1000000;

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  // JSON has no inf/nan literals; trace files should never contain them,
  // but emit something parseable if one sneaks in.
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

std::int64_t micros(double sim_seconds) {
  return static_cast<std::int64_t>(sim_seconds * 1e6);
}

const char* kill_label(std::int64_t reason) {
  switch (static_cast<trace::KillReason>(reason)) {
    case trace::KillReason::kFault: return "fault";
    case trace::KillReason::kPreempt: return "preempt";
    case trace::KillReason::kMachineFailure: return "machine_failure";
  }
  return "unknown";
}

struct JsonWriter {
  std::ostringstream out;
  bool first = true;

  void open() { out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["; }
  void event(const std::string& body) {
    if (!first) out << ",";
    first = false;
    out << "\n" << body;
  }
  std::string close() {
    out << "\n]}\n";
    return out.str();
  }
};

}  // namespace

std::string chrome_trace_json(const trace::TraceLog& log) {
  JsonWriter w;
  w.open();

  // Track every start so finish/kill events can close the slice; slices
  // still open at the end of the log are closed at the last timestamp.
  struct OpenTask {
    trace::Event start;
  };
  std::unordered_map<std::int64_t, OpenTask> open_tasks;
  std::map<std::int64_t, bool> seen_machines;  // ordered for stable output
  double last_time = 0;

  const auto task_slice = [&](const trace::Event& start, double end_time,
                              const char* outcome, std::int64_t reason) {
    std::ostringstream os;
    os << "{\"ph\":\"X\",\"pid\":" << start.e << ",\"tid\":" << start.b
       << ",\"ts\":" << micros(start.time)
       << ",\"dur\":" << micros(end_time - start.time) << ",\"name\":\"job"
       << start.b << ".s" << start.c << "[" << start.d << "]\""
       << ",\"args\":{\"uid\":" << start.a << ",\"outcome\":\"" << outcome
       << "\"";
    if (reason >= 0) os << ",\"reason\":\"" << kill_label(reason) << "\"";
    os << "}}";
    w.event(os.str());
  };

  for (const trace::Event& ev : log.events) {
    last_time = std::max(last_time, ev.time);
    std::ostringstream os;
    switch (ev.kind) {
      case trace::EventKind::kRunBegin:
        os << "{\"ph\":\"i\",\"s\":\"g\",\"pid\":" << kSchedulerPid
           << ",\"tid\":0,\"ts\":" << micros(ev.time)
           << ",\"name\":\"run begin\",\"args\":{\"seed\":" << ev.a
           << ",\"machines\":" << ev.b << ",\"jobs\":" << ev.c
           << ",\"threads\":" << ev.d << "}}";
        w.event(os.str());
        break;
      case trace::EventKind::kJobArrival:
        os << "{\"ph\":\"i\",\"s\":\"g\",\"pid\":" << kSchedulerPid
           << ",\"tid\":0,\"ts\":" << micros(ev.time)
           << ",\"name\":\"job " << ev.a << " arrives\",\"args\":{\"job\":"
           << ev.a << "}}";
        w.event(os.str());
        break;
      case trace::EventKind::kPassBegin:
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kSchedulerPid
           << ",\"tid\":0,\"ts\":" << micros(ev.time)
           << ",\"name\":\"pass " << ev.a << " begin\",\"args\":{\"pass\":"
           << ev.a << ",\"backlog\":" << ev.b << "}}";
        w.event(os.str());
        break;
      case trace::EventKind::kPassEnd:
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kSchedulerPid
           << ",\"tid\":0,\"ts\":" << micros(ev.time)
           << ",\"name\":\"pass " << ev.a << " end\",\"args\":{\"pass\":"
           << ev.a << ",\"placements\":" << ev.b << ",\"latency_ms\":"
           << num(static_cast<double>(ev.timing) * 1e-6) << "}}";
        w.event(os.str());
        break;
      case trace::EventKind::kShardTiming:
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kSchedulerPid
           << ",\"tid\":" << (1 + ev.a) << ",\"ts\":" << micros(ev.time)
           << ",\"name\":\"shard " << ev.a << "\",\"args\":{\"machines\":\"["
           << ev.b << "," << ev.c << ")\",\"score_evals\":" << ev.d
           << ",\"scan_ms\":" << num(static_cast<double>(ev.timing) * 1e-6)
           << "}}";
        w.event(os.str());
        break;
      case trace::EventKind::kGroupScan:
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kSchedulerPid
           << ",\"tid\":0,\"ts\":" << micros(ev.time)
           << ",\"name\":\"scan job" << ev.a << ".s" << ev.b
           << "\",\"args\":{\"chosen_machine\":" << ev.c << ",\"scanned\":"
           << ev.d << ",\"local_fraction\":" << num(ev.x) << "}}";
        w.event(os.str());
        break;
      case trace::EventKind::kPlacement:
        seen_machines[ev.d] = true;
        os << "{\"ph\":\"i\",\"s\":\"p\",\"pid\":" << ev.d << ",\"tid\":"
           << ev.a << ",\"ts\":" << micros(ev.time)
           << ",\"name\":\"place job" << ev.a << ".s" << ev.b
           << "\",\"args\":{\"task\":" << ev.c << ",\"tier\":" << ev.e
           << ",\"fairness_cut\":" << ev.f << ",\"alignment\":" << num(ev.x)
           << ",\"eps_p\":" << num(ev.y) << "}}";
        w.event(os.str());
        break;
      case trace::EventKind::kTaskStart:
        seen_machines[ev.e] = true;
        open_tasks[ev.a] = OpenTask{ev};
        break;
      case trace::EventKind::kTaskFinish:
      case trace::EventKind::kTaskKill: {
        const auto it = open_tasks.find(ev.a);
        if (it != open_tasks.end()) {
          const bool killed = ev.kind == trace::EventKind::kTaskKill;
          task_slice(it->second.start, ev.time,
                     killed ? "killed" : "finished", killed ? ev.f : -1);
          open_tasks.erase(it);
        }
        break;
      }
      case trace::EventKind::kMachineDown:
      case trace::EventKind::kMachineUp:
        seen_machines[ev.a] = true;
        os << "{\"ph\":\"i\",\"s\":\"p\",\"pid\":" << ev.a
           << ",\"tid\":0,\"ts\":" << micros(ev.time) << ",\"name\":\""
           << (ev.kind == trace::EventKind::kMachineDown ? "machine down"
                                                         : "machine up")
           << "\",\"args\":{\"machine\":" << ev.a << "}}";
        w.event(os.str());
        break;
      case trace::EventKind::kUsageReport:
        seen_machines[ev.a] = true;
        os << "{\"ph\":\"C\",\"pid\":" << ev.a << ",\"ts\":"
           << micros(ev.time) << ",\"name\":\"tracker charged\",\"args\":{"
           << "\"cpu\":" << num(ev.x) << ",\"mem\":" << num(ev.y) << "}}";
        w.event(os.str());
        break;
      case trace::EventKind::kRunEnd:
        os << "{\"ph\":\"i\",\"s\":\"g\",\"pid\":" << kSchedulerPid
           << ",\"tid\":0,\"ts\":" << micros(ev.time)
           << ",\"name\":\"run end\",\"args\":{\"tasks\":" << ev.a
           << ",\"jobs\":" << ev.b << ",\"makespan\":" << num(ev.x) << "}}";
        w.event(os.str());
        break;
    }
  }

  // Close any slice that never saw its finish (still running at log end,
  // or the finish fell off the ring buffer).
  for (const auto& [uid, open] : open_tasks) {
    task_slice(open.start, std::max(last_time, open.start.time),
               "unclosed", -1);
  }

  // Name the processes so the viewer shows "machine N" / "scheduler"
  // instead of bare pids.
  {
    std::ostringstream os;
    os << "{\"ph\":\"M\",\"pid\":" << kSchedulerPid
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"scheduler ("
       << log.scheduler << ", seed " << log.seed << ")\"}}";
    w.event(os.str());
  }
  for (const auto& [m, _] : seen_machines) {
    std::ostringstream os;
    os << "{\"ph\":\"M\",\"pid\":" << m
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"machine " << m
       << "\"}}";
    w.event(os.str());
  }
  return w.close();
}

std::string trace_events_csv(const trace::TraceLog& log) {
  std::ostringstream os;
  os << "seq,kind,time,a,b,c,d,e,f,x,y,z,w,timing_nanos\n";
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    const trace::Event& ev = log.events[i];
    os << i << "," << trace::kind_name(ev.kind) << "," << num(ev.time)
       << "," << ev.a << "," << ev.b << "," << ev.c << "," << ev.d << ","
       << ev.e << "," << ev.f << "," << num(ev.x) << "," << num(ev.y)
       << "," << num(ev.z) << "," << num(ev.w) << "," << ev.timing << "\n";
  }
  return os.str();
}

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

bool write_chrome_trace(const std::string& path,
                        const trace::TraceLog& log) {
  return write_file(path, chrome_trace_json(log));
}

bool write_trace_csv(const std::string& path, const trace::TraceLog& log) {
  return write_file(path, trace_events_csv(log));
}

}  // namespace tetris::analysis
