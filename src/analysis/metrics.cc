#include "analysis/metrics.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/stats.h"

namespace tetris::analysis {

double improvement_percent(double baseline, double treatment) {
  if (baseline <= 0) return 0;
  return 100.0 * (baseline - treatment) / baseline;
}

namespace {

// job id -> completion time for finished jobs.
std::unordered_map<sim::JobId, double> jct_by_id(const sim::SimResult& r) {
  std::unordered_map<sim::JobId, double> out;
  out.reserve(r.jobs.size());
  for (const auto& job : r.jobs) {
    if (job.finish >= 0) out.emplace(job.id, job.completion_time());
  }
  return out;
}

}  // namespace

std::vector<double> per_job_improvements(const sim::SimResult& baseline,
                                         const sim::SimResult& treatment) {
  const auto base = jct_by_id(baseline);
  const auto treat = jct_by_id(treatment);
  std::vector<double> out;
  out.reserve(base.size());
  for (const auto& job : baseline.jobs) {
    const auto b = base.find(job.id);
    const auto t = treat.find(job.id);
    if (b == base.end() || t == treat.end()) continue;
    out.push_back(improvement_percent(b->second, t->second));
  }
  return out;
}

double makespan_reduction(const sim::SimResult& baseline,
                          const sim::SimResult& treatment) {
  return improvement_percent(baseline.makespan, treatment.makespan);
}

double avg_jct_reduction(const sim::SimResult& baseline,
                         const sim::SimResult& treatment) {
  return improvement_percent(baseline.avg_jct(), treatment.avg_jct());
}

double median_jct_reduction(const sim::SimResult& baseline,
                            const sim::SimResult& treatment) {
  return improvement_percent(baseline.median_jct(), treatment.median_jct());
}

SlowdownStats slowdown_stats(const sim::SimResult& fair_baseline,
                             const sim::SimResult& treatment,
                             double tolerance) {
  const auto base = jct_by_id(fair_baseline);
  const auto treat = jct_by_id(treatment);
  SlowdownStats stats;
  std::vector<double> slowdowns;
  for (const auto& [id, b] : base) {
    const auto t = treat.find(id);
    if (t == treat.end() || b <= 0) continue;
    stats.jobs_compared++;
    const double rel = (t->second - b) / b;
    if (rel > tolerance) slowdowns.push_back(100.0 * rel);
  }
  if (stats.jobs_compared == 0) return stats;
  stats.fraction_slowed = static_cast<double>(slowdowns.size()) /
                          static_cast<double>(stats.jobs_compared);
  if (!slowdowns.empty()) {
    stats.avg_slowdown_percent = mean(slowdowns);
    stats.max_slowdown_percent =
        *std::max_element(slowdowns.begin(), slowdowns.end());
  }
  return stats;
}

UnfairnessStats unfairness_stats(const sim::SimResult& result,
                                 double tolerance) {
  UnfairnessStats stats;
  if (result.jobs.empty()) return stats;
  std::vector<double> negatives;
  for (const auto& job : result.jobs) {
    if (job.finish < 0) continue;
    // Normalize the integral by the job's lifetime so long and short jobs
    // are comparable.
    const double life = std::max(1e-9, job.completion_time());
    const double riu = job.unfairness_integral / life;
    if (riu < -tolerance) negatives.push_back(-riu);
  }
  stats.fraction_negative = static_cast<double>(negatives.size()) /
                            static_cast<double>(result.jobs.size());
  if (!negatives.empty()) stats.avg_negative_magnitude = mean(negatives);
  return stats;
}

double mean_task_duration(const sim::SimResult& result) {
  std::vector<double> durations;
  durations.reserve(result.tasks.size());
  for (const auto& t : result.tasks) durations.push_back(t.duration());
  return mean(durations);
}

ChurnSummary churn_summary(const sim::SimResult& result) {
  ChurnSummary s;
  s.machines_failed = result.churn.machines_failed;
  s.machines_recovered = result.churn.machines_recovered;
  s.task_attempts_lost = result.churn.task_attempts_lost;
  s.read_failovers = result.churn.read_failovers;
  s.work_lost_seconds = result.churn.work_lost_seconds;
  s.effective_capacity = result.churn.effective_capacity;
  if (!result.tasks.empty()) {
    s.attempt_overhead =
        static_cast<double>(result.total_task_attempts()) /
            static_cast<double>(result.tasks.size()) -
        1.0;
    double run_seconds = 0;
    for (const auto& t : result.tasks) run_seconds += t.duration();
    if (run_seconds > 0)
      s.work_lost_fraction = result.churn.work_lost_seconds / run_seconds;
  }
  return s;
}

}  // namespace tetris::analysis
