#include "analysis/workload_analysis.h"

#include <algorithm>
#include <stdexcept>

namespace tetris::analysis {

std::vector<TaskDemandSample> collect_demand_samples(
    const sim::Workload& workload) {
  std::vector<TaskDemandSample> out;
  for (const auto& job : workload.jobs) {
    for (const auto& stage : job.stages) {
      for (const auto& task : stage.tasks) {
        TaskDemandSample s;
        s.cores = task.peak_cores;
        s.mem = task.peak_mem;
        s.disk_bytes = task.output_bytes;
        for (const auto& split : task.inputs) {
          if (split.from_stage >= 0) {
            // Shuffle input crosses machines.
            s.net_bytes += split.bytes;
          } else if (!split.replicas.empty()) {
            s.disk_bytes += split.bytes;
          }
        }
        out.push_back(s);
      }
    }
  }
  return out;
}

namespace {

std::array<std::vector<double>, 4> columns(
    const std::vector<TaskDemandSample>& samples) {
  std::array<std::vector<double>, 4> cols;
  for (auto& c : cols) c.reserve(samples.size());
  for (const auto& s : samples) {
    cols[0].push_back(s.cores);
    cols[1].push_back(s.mem);
    cols[2].push_back(s.disk_bytes);
    cols[3].push_back(s.net_bytes);
  }
  return cols;
}

}  // namespace

CorrelationMatrix demand_correlations(
    const std::vector<TaskDemandSample>& samples) {
  const auto cols = columns(samples);
  CorrelationMatrix m{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          i == j ? 1.0 : pearson_correlation(cols[static_cast<std::size_t>(i)],
                                             cols[static_cast<std::size_t>(j)]);
    }
  }
  return m;
}

std::array<double, 4> demand_covs(
    const std::vector<TaskDemandSample>& samples) {
  const auto cols = columns(samples);
  std::array<double, 4> out{};
  for (std::size_t i = 0; i < 4; ++i) out[i] = summarize(cols[i]).cov;
  return out;
}

std::array<double, kNumResources> tightness(const sim::SimResult& result,
                                            double threshold) {
  std::array<double, kNumResources> out{};
  for (std::size_t i = 0; i < kNumResources; ++i) {
    out[i] = fraction_above(result.machine_usage_samples[i], threshold);
  }
  return out;
}

Histogram2D demand_heatmap(const std::vector<TaskDemandSample>& samples,
                           int attribute, std::size_t bins) {
  if (attribute < 0 || attribute > 2)
    throw std::invalid_argument("heatmap attribute must be 0, 1 or 2");
  double max_cores = 0, max_attr = 0;
  const auto pick = [attribute](const TaskDemandSample& s) {
    switch (attribute) {
      case 0:
        return s.mem;
      case 1:
        return s.disk_bytes;
      default:
        return s.net_bytes;
    }
  };
  for (const auto& s : samples) {
    max_cores = std::max(max_cores, s.cores);
    max_attr = std::max(max_attr, pick(s));
  }
  Histogram2D h(bins, bins);
  if (max_cores <= 0 || max_attr <= 0) return h;
  for (const auto& s : samples) {
    h.add(s.cores / max_cores, pick(s) / max_attr);
  }
  return h;
}

}  // namespace tetris::analysis
