// Workload-facing analyses (paper §2.2): the correlation matrix of task
// resource demands (Table 2), resource-tightness probabilities (Tables 3
// and 6) and the demand heatmaps of Figure 2.
#pragma once

#include <array>
#include <vector>

#include "sim/result.h"
#include "sim/spec.h"
#include "util/stats.h"

namespace tetris::analysis {

// One row per task: the demand attributes the paper's Table 2 correlates.
struct TaskDemandSample {
  double cores = 0;
  double mem = 0;
  double disk_bytes = 0;  // input read + output written
  double net_bytes = 0;   // shuffle bytes (cross-machine by construction)
};

std::vector<TaskDemandSample> collect_demand_samples(
    const sim::Workload& workload);

// Pearson correlation matrix over {cores, mem, disk, net}, indexed
// [i][j] with i,j in that order (Table 2).
using CorrelationMatrix = std::array<std::array<double, 4>, 4>;
CorrelationMatrix demand_correlations(
    const std::vector<TaskDemandSample>& samples);

// Coefficient of variation per attribute, in the same order (§2.2.2
// quotes 1.52, 1.6, 2.6, 1.9 for cpu/mem/disk/net).
std::array<double, 4> demand_covs(
    const std::vector<TaskDemandSample>& samples);

// P(machine-level usage of resource r > threshold), from the usage samples
// a simulation collected (Tables 3 and 6).
std::array<double, kNumResources> tightness(
    const sim::SimResult& result, double threshold);

// 2-D histogram of (cores, other-attribute) pairs normalized to [0,1] by
// the given maxima — the Figure 2 heatmaps. attribute: 0=mem, 1=disk,
// 2=net.
Histogram2D demand_heatmap(const std::vector<TaskDemandSample>& samples,
                           int attribute, std::size_t bins = 20);

}  // namespace tetris::analysis
