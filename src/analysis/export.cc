#include "analysis/export.h"

#include <sstream>

#include "util/table.h"

namespace tetris::analysis {

namespace {

std::string escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  return out + "\"";
}

}  // namespace

std::string jobs_csv(const sim::SimResult& result) {
  std::ostringstream os;
  os << "job,name,template,arrival,finish,jct,tasks,unfairness_integral\n";
  for (const auto& j : result.jobs) {
    os << j.id << "," << escape(j.name) << "," << j.template_id << ","
       << j.arrival << "," << j.finish << ","
       << (j.finish >= 0 ? j.completion_time() : -1.0) << "," << j.total_tasks
       << "," << j.unfairness_integral << "\n";
  }
  return os.str();
}

std::string tasks_csv(const sim::SimResult& result) {
  std::ostringstream os;
  os << "job,stage,index,host,start,finish,duration,natural_duration,"
        "attempts,local_fraction\n";
  for (const auto& t : result.tasks) {
    os << t.job << "," << t.stage << "," << t.index << "," << t.host << ","
       << t.start << "," << t.finish << "," << t.duration() << ","
       << t.natural_duration << "," << t.attempts << "," << t.local_fraction
       << "\n";
  }
  return os.str();
}

std::string timeline_csv(const sim::SimResult& result) {
  std::ostringstream os;
  os << "time,running";
  for (Resource r : all_resources()) os << "," << resource_name(r);
  os << "\n";
  for (const auto& s : result.timeline) {
    os << s.time << "," << s.running_tasks;
    for (double u : s.utilization) os << "," << u;
    os << "\n";
  }
  return os.str();
}

std::string churn_csv(const sim::SimResult& result) {
  std::ostringstream os;
  os << "machines_failed,machines_recovered,task_attempts_lost,"
        "read_failovers,work_lost_seconds,effective_capacity\n";
  const auto& c = result.churn;
  os << c.machines_failed << "," << c.machines_recovered << ","
     << c.task_attempts_lost << "," << c.read_failovers << ","
     << c.work_lost_seconds << "," << c.effective_capacity << "\n";
  return os.str();
}

bool export_result(const std::string& prefix, const sim::SimResult& result) {
  return write_file(prefix + "_jobs.csv", jobs_csv(result)) &&
         write_file(prefix + "_tasks.csv", tasks_csv(result)) &&
         write_file(prefix + "_timeline.csv", timeline_csv(result)) &&
         write_file(prefix + "_churn.csv", churn_csv(result));
}

}  // namespace tetris::analysis
