#include "analysis/export.h"

#include <sstream>

#include "util/table.h"

namespace tetris::analysis {

namespace {

std::string escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  return out + "\"";
}

}  // namespace

std::string jobs_csv(const sim::SimResult& result) {
  std::ostringstream os;
  os << "job,name,template,arrival,finish,jct,tasks,unfairness_integral\n";
  for (const auto& j : result.jobs) {
    os << j.id << "," << escape(j.name) << "," << j.template_id << ","
       << j.arrival << "," << j.finish << ","
       << (j.finish >= 0 ? j.completion_time() : -1.0) << "," << j.total_tasks
       << "," << j.unfairness_integral << "\n";
  }
  return os.str();
}

std::string tasks_csv(const sim::SimResult& result) {
  std::ostringstream os;
  os << "job,stage,index,host,start,finish,duration,natural_duration,"
        "attempts,local_fraction\n";
  for (const auto& t : result.tasks) {
    os << t.job << "," << t.stage << "," << t.index << "," << t.host << ","
       << t.start << "," << t.finish << "," << t.duration() << ","
       << t.natural_duration << "," << t.attempts << "," << t.local_fraction
       << "\n";
  }
  return os.str();
}

std::string timeline_csv(const sim::SimResult& result) {
  std::ostringstream os;
  os << "time,running";
  for (Resource r : all_resources()) os << "," << resource_name(r);
  os << "\n";
  for (const auto& s : result.timeline) {
    os << s.time << "," << s.running_tasks;
    for (double u : s.utilization) os << "," << u;
    os << "\n";
  }
  return os.str();
}

std::string churn_csv(const sim::SimResult& result) {
  std::ostringstream os;
  os << "machines_failed,machines_recovered,task_attempts_lost,"
        "read_failovers,work_lost_seconds,effective_capacity\n";
  const auto& c = result.churn;
  os << c.machines_failed << "," << c.machines_recovered << ","
     << c.task_attempts_lost << "," << c.read_failovers << ","
     << c.work_lost_seconds << "," << c.effective_capacity << "\n";
  return os.str();
}

namespace {

// The self-describing row prefix shared by the bench_results tables;
// keep in sync with the "scheduler,threads,trace,cells,dispatcher"
// header columns.
std::string tag_prefix(const RunTag& tag) {
  return escape(tag.scheduler) + "," + std::to_string(tag.threads) + "," +
         (tag.trace ? "1" : "0") + "," + std::to_string(tag.cells) + "," +
         escape(tag.dispatcher);
}

}  // namespace

std::string pass_samples_csv(const RunTag& tag,
                             const sim::SimResult& result, bool with_header) {
  std::ostringstream os;
  if (with_header)
    os << "scheduler,threads,trace,cells,dispatcher,"
          "time,backlog,placements,pass_seconds\n";
  for (const auto& s : result.pass_samples) {
    os << tag_prefix(tag) << "," << s.time << "," << s.backlog << ","
       << s.placements << "," << s.seconds << "\n";
  }
  return os.str();
}

std::string perf_counters_csv(const RunTag& tag,
                              const sim::SimResult& result, bool with_header) {
  return perf_counters_csv(tag, result.perf, with_header);
}

std::string perf_counters_csv(const RunTag& tag,
                              const util::PerfCounters& p, bool with_header) {
  std::ostringstream os;
  if (with_header) {
    os << "scheduler,threads,trace,cells,dispatcher,"
          "score_evals,probes_issued,probe_reuses,sticky_rejects,"
          "fit_index_skips,row_skips,probe_cache_hits,probe_cache_misses,"
          "estimate_cache_hits,estimate_cache_misses,avail_cache_hits,"
          "avail_recomputes,simd_blocks,scalar_tail_evals,"
          "parallel_passes,reduction_seconds,cell_advance_seconds,"
          "idle_cell_skips,shard_evals\n";
  }
  os << tag_prefix(tag) << "," << p.score_evals << "," << p.probes_issued << ","
     << p.probe_reuses << "," << p.sticky_rejects << "," << p.fit_index_skips
     << "," << p.row_skips << "," << p.probe_cache_hits << ","
     << p.probe_cache_misses << ","
     << p.estimate_cache_hits << "," << p.estimate_cache_misses << ","
     << p.avail_cache_hits << "," << p.avail_recomputes << ","
     << p.simd_blocks << "," << p.scalar_tail_evals << ","
     << p.parallel_passes << ","
     << static_cast<double>(p.reduction_nanos) * 1e-9 << ","
     << static_cast<double>(p.cell_advance_nanos) * 1e-9 << ","
     << p.idle_cell_skips << ",";
  // Per-shard score_evals as a ';'-joined list (empty for serial runs) so
  // the column count stays fixed across thread counts.
  for (std::size_t i = 0; i < p.shard_score_evals.size(); ++i)
    os << (i ? ";" : "") << p.shard_score_evals[i];
  os << "\n";
  return os.str();
}

std::string streaming_csv(const RunTag& tag, const sim::SimResult& result,
                          long total_tasks, double wall_seconds,
                          double peak_rss_mb, bool with_header) {
  std::ostringstream os;
  if (with_header) {
    os << "scheduler,threads,trace,cells,dispatcher,tasks,makespan,passes,"
          "jobs_admitted,jobs_retired,peak_resident_jobs,"
          "peak_resident_tasks,stream_deferrals,"
          "pass_p50_ms,pass_p99_ms,wall_seconds,tasks_per_sec,peak_rss_mb\n";
  }
  const auto& p = result.perf;
  os << tag_prefix(tag) << "," << total_tasks
     << "," << result.makespan << "," << result.pass_latency.count() << ","
     << p.jobs_admitted << "," << p.jobs_retired << ","
     << p.peak_resident_jobs << "," << p.peak_resident_tasks << ","
     << p.stream_deferrals << ","
     << result.pass_latency.quantile_seconds(0.50) * 1e3 << ","
     << result.pass_latency.quantile_seconds(0.99) * 1e3 << ","
     << wall_seconds << ","
     << (wall_seconds > 0 ? static_cast<double>(total_tasks) / wall_seconds
                          : 0.0)
     << "," << peak_rss_mb << "\n";
  return os.str();
}

bool export_result(const std::string& prefix, const sim::SimResult& result) {
  return write_file(prefix + "_jobs.csv", jobs_csv(result)) &&
         write_file(prefix + "_tasks.csv", tasks_csv(result)) &&
         write_file(prefix + "_timeline.csv", timeline_csv(result)) &&
         write_file(prefix + "_churn.csv", churn_csv(result));
}

}  // namespace tetris::analysis
