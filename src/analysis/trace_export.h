// Exporters for trace::TraceLog event streams (DESIGN.md §10): a Chrome
// trace_event JSON document loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing, and a flat CSV for pandas/gnuplot.
#pragma once

#include <string>

#include "trace/event.h"

namespace tetris::analysis {

// Chrome trace_event JSON ("JSON Object Format"):
//  - each machine is a process; a task attempt is a complete ("X") slice
//    on its host machine's track from start to finish/kill, grouped by
//    job id (tid);
//  - placements, machine down/up edges and job arrivals are instant
//    events carrying their decision fields (tier, fairness cut,
//    alignment, eps*p_hat) as args;
//  - scheduling passes and shard timings live on a dedicated "scheduler"
//    process, with measured wall-clock latencies as args;
//  - tracker usage reports become counter ("C") tracks per node.
// Timestamps are simulation seconds scaled to microseconds.
std::string chrome_trace_json(const trace::TraceLog& log);

// One row per event: seq, kind, time, a..f, x..w, timing_nanos.
std::string trace_events_csv(const trace::TraceLog& log);

// Convenience file writers; return false on I/O failure.
bool write_chrome_trace(const std::string& path, const trace::TraceLog& log);
bool write_trace_csv(const std::string& path, const trace::TraceLog& log);

}  // namespace tetris::analysis
