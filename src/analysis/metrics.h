// Comparison metrics between scheduler runs: per-job completion-time
// improvements (Figs. 4, 7), makespan reductions, slowdown-due-to-
// unfairness statistics (Fig. 9) and the relative-integral-unfairness
// summary (§5.3.2). All comparisons match jobs by id across runs of the
// *same* workload under different schedulers.
#pragma once

#include <vector>

#include "sim/result.h"

namespace tetris::analysis {

// 100 * (baseline - treatment) / baseline: the paper's improvement metric
// ("20% improvement means Tetris is 1.25x better").
double improvement_percent(double baseline, double treatment);

// Per-job completion-time improvement of `treatment` over `baseline`,
// ordered by job id. Jobs unfinished in either run are skipped.
std::vector<double> per_job_improvements(const sim::SimResult& baseline,
                                         const sim::SimResult& treatment);

double makespan_reduction(const sim::SimResult& baseline,
                          const sim::SimResult& treatment);
double avg_jct_reduction(const sim::SimResult& baseline,
                         const sim::SimResult& treatment);
double median_jct_reduction(const sim::SimResult& baseline,
                            const sim::SimResult& treatment);

// Slowdown analysis (Fig. 9): how many jobs got *worse* under the
// treatment than under the fair baseline, and by how much.
struct SlowdownStats {
  double fraction_slowed = 0;  // jobs with JCT above baseline by > tolerance
  double avg_slowdown_percent = 0;  // mean % increase among slowed jobs
  double max_slowdown_percent = 0;
  int jobs_compared = 0;
};
SlowdownStats slowdown_stats(const sim::SimResult& fair_baseline,
                             const sim::SimResult& treatment,
                             double tolerance = 0.02);

// Relative integral unfairness summary (§5.3.2): fraction of jobs whose
// integral is below -tolerance (served worse than fair share over their
// lifetime) and the mean magnitude among them.
struct UnfairnessStats {
  double fraction_negative = 0;
  double avg_negative_magnitude = 0;
};
UnfairnessStats unfairness_stats(const sim::SimResult& result,
                                 double tolerance = 0.02);

// Mean task duration (successful attempts), for the "task durations
// improve by about 30%" observation of §5.3.1.
double mean_task_duration(const sim::SimResult& result);

// Per-run churn summary: the raw counters from SimResult::churn plus two
// normalized overheads, so runs at different scales compare directly.
struct ChurnSummary {
  int machines_failed = 0;
  int machines_recovered = 0;
  int task_attempts_lost = 0;
  int read_failovers = 0;
  double work_lost_seconds = 0;
  double effective_capacity = 1.0;
  // Extra attempts per task: (total attempts / tasks) - 1. Counts both
  // machine-churn kills and task_failure_prob re-executions.
  double attempt_overhead = 0;
  // Lost runtime as a fraction of total successful-attempt runtime.
  double work_lost_fraction = 0;
};
ChurnSummary churn_summary(const sim::SimResult& result);

}  // namespace tetris::analysis
