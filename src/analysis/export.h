// CSV export of simulation results, so runs can be analyzed with external
// tooling (pandas, gnuplot) without rerunning the simulator.
#pragma once

#include <string>

#include "sim/result.h"

namespace tetris::analysis {

// One row per job: id, name, template, arrival, finish, jct, tasks,
// unfairness integral.
std::string jobs_csv(const sim::SimResult& result);

// One row per task: job, stage, index, host, start, finish, duration,
// natural duration, attempts, local fraction.
std::string tasks_csv(const sim::SimResult& result);

// One row per timeline sample: time, running tasks, per-resource cluster
// utilization.
std::string timeline_csv(const sim::SimResult& result);

// Single-row churn accounting: machines failed/recovered, attempts lost,
// work lost, time-weighted effective capacity.
std::string churn_csv(const sim::SimResult& result);

// Identifies the configuration a CSV row came from, so the bench_results
// tables are self-describing: which scheduler variant produced it, at how
// many worker threads (0 = serial), whether event tracing was on, and —
// for federated runs (DESIGN.md §14) — how many cells the cluster was
// partitioned into and which dispatch policy admitted the jobs. The
// non-federated defaults are cells = 0 and dispatcher = "global".
struct RunTag {
  std::string scheduler;
  int threads = 0;
  bool trace = false;
  int cells = 0;
  std::string dispatcher = "global";
};

// One row per scheduling pass (needs SimConfig::collect_pass_samples):
// scheduler, threads, trace, time, backlog, placements, latency in
// seconds. The raw material of Table 8's latency-vs-backlog curves; rows
// carry the full RunTag so runs can share one file.
std::string pass_samples_csv(const RunTag& tag,
                             const sim::SimResult& result,
                             bool with_header = true);

// Single-row hot-path counter dump (DESIGN.md §8): score evaluations,
// probes issued/reused, sticky rejections, fit-index skips, and the
// simulator-side cache hit/miss totals. The trailing parallel-pass
// columns (DESIGN.md §9) report sharded passes, wall-clock reduction
// seconds, the federated driver's advance wall clock and idle-cell
// skips (DESIGN.md §14.5; zero outside simulate_federated), and a
// ';'-joined per-shard score_evals split (empty when every pass ran
// serial). The PerfCounters overload serves callers that merged
// counters across cells (FederatedResult::perf) rather than holding a
// whole SimResult.
std::string perf_counters_csv(const RunTag& tag,
                              const sim::SimResult& result,
                              bool with_header = true);
std::string perf_counters_csv(const RunTag& tag,
                              const util::PerfCounters& counters,
                              bool with_header = true);

// Single-row summary of a streaming run (DESIGN.md §11), the sustained-
// throughput companion to the Table 8 latency tables. The row reuses the
// RunTag prefix and carries no timestamps: the simulated columns
// (tasks, makespan, passes, admissions/retirements, peak residency,
// deferrals) are bit-reproducible for a fixed config, so regenerating the
// bench_results CSV diffs clean; the trailing wall-clock columns
// (pass p50/p99, wall_seconds, tasks_per_sec, peak_rss_mb) are the only
// measured ones. `total_tasks` is the trace's task count (the simulator
// folds task records away in streaming mode, so the caller supplies it);
// pass `peak_rss_mb <= 0` when unknown.
std::string streaming_csv(const RunTag& tag, const sim::SimResult& result,
                          long total_tasks, double wall_seconds,
                          double peak_rss_mb, bool with_header = true);

// Writes the pieces next to each other: <prefix>_jobs.csv, _tasks.csv,
// _timeline.csv, _churn.csv. Returns false if any write failed.
bool export_result(const std::string& prefix, const sim::SimResult& result);

}  // namespace tetris::analysis
