// The Tetris scheduler (paper §3) — the primary contribution.
//
// Per scheduling pass it walks machines with free resources and repeatedly
// places the best task on each until nothing more fits:
//   * Admission (§3.2): a task is considered only if its *peak* estimated
//     demands fit — every dimension locally, plus disk-read / net-out at
//     each remote input source. Over-allocation is therefore impossible.
//   * Alignment (§3.2): among admissible tasks, prefer the one whose
//     demand vector best matches the machine's available vector (weighted
//     dot product by default; see alignment.h for the Table 7
//     alternatives). Tasks reading remotely are penalized by
//     `remote_penalty` so local resources are preferred and the network is
//     left for tasks that compulsively need it.
//   * Multi-resource SRTF (§3.3): the alignment score is combined with the
//     job's remaining work p via score = a - eps * p, with
//     eps = srtf_weight * (mean |a|) / (mean p), preferring jobs closer to
//     completion without surrendering packing efficiency.
//   * Fairness knob (§3.4): with knob f, only the ceil((1-f)|J|) jobs
//     furthest from their fair share are considered. f=0 is the most
//     efficient schedule; f -> 1 is strictly fair.
//   * Barrier hint (§3.5): once a stage preceding a barrier is >= b
//     complete, its stragglers get strict priority (they gate the next
//     stage of the DAG while consuming few resources).
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/alignment.h"
#include "sched/fairness.h"
#include "sim/scheduler.h"
#include "util/perf_counters.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace tetris::core {

// Scoring-kernel selection (DESIGN.md §12). kOn routes the fused
// fit-check + alignment evaluations through the structure-of-arrays
// batch kernel (AVX2/SSE4.2 when the build carries them, portable scalar
// otherwise); kOff keeps the per-cell scalar loop. Both produce
// bit-identical schedules — the kernel reproduces the scalar op sequence
// per lane — so this knob trades nothing but speed. The naive_scoring
// oracle always scores scalar, whatever this says.
enum class SimdMode {
  kOff = 0,
  kOn = 1,
};

// "off" / "on"; throws std::invalid_argument on anything else.
SimdMode simd_mode_from_string(std::string_view s);
std::string_view simd_mode_name(SimdMode mode);

struct TetrisConfig {
  AlignmentKind alignment = AlignmentKind::kCosine;

  // Score multiplier (1 - remote_penalty * remote_fraction); 0.1 in the
  // paper, flat between ~0.05 and ~0.4 per §5.3.3.
  double remote_penalty = 0.10;

  // The m knob of §5.3.3: eps = srtf_weight * mean|a| / mean p. 0 disables
  // the SRTF term (pure packing, the epsilon=0 ablation).
  double srtf_weight = 1.0;

  // Fairness knob f in [0, 1). 0 = most efficient, -> 1 = most fair.
  double fairness_knob = 0.25;
  sched::FairnessPolicy fairness_policy = sched::FairnessPolicy::kDrf;
  double slot_mem = 2 * kGB;  // for the kSlots fairness policy
  // Apply the knob at queue granularity (paper §3.4: "jobs (or groups of
  // jobs)"): the first ceil((1-f)·Q) queues furthest below their share are
  // eligible, and any job inside them may be served.
  bool fairness_over_queues = false;

  // Barrier knob b in [0, 1]; stages preceding a barrier whose finished
  // fraction reaches b get priority. 1 disables the hint.
  double barrier_knob = 0.9;

  // Fairness preemption (extension; paper §3.1 excludes preemption "for
  // simplicity" — YARN's Capacity scheduler enforces queue fairness by
  // killing over-share containers). When enabled, if the furthest-below
  // schedulable job's dominant share trails fair share by more than
  // preemption_deficit AND none of its tasks fit anywhere, Tetris kills
  // the most-recently-started task (least work lost) of the most
  // over-share job — at most one kill per pass, so enforcement stays
  // gentle and cannot thrash.
  bool preempt_for_fairness = false;
  double preemption_deficit = 0.25;

  // Starvation reservation (extension; paper §3.5 notes the risk that
  // large tasks never see enough free resources at once and leaves a
  // principled reservation to future work). A task runnable for longer
  // than this threshold marks its group *starved*: starved groups outrank
  // everything else, and while one cannot be placed anywhere, the
  // emptiest machine is reserved — no non-starved task may take it — so
  // resources accumulate there until the starved task fits. Infinity
  // disables the mechanism (the paper's deployed behaviour, which relies
  // on heartbeat batching).
  double starvation_threshold = std::numeric_limits<double>::infinity();

  // Future-demand lookahead in seconds (extension; paper §3.5 "Future
  // Demands" notes that job managers know their DAGs and task finish
  // times can be predicted, and leaves exploiting that to future work).
  // When > 0: a machine's resources are withheld from a candidate if a
  // stage predicted to unblock within the lookahead would align strictly
  // better there — mimicking the offline schedule instead of greedily
  // backfilling with long poorly-aligned work. 0 disables (the paper's
  // deployed behaviour).
  double future_lookahead = 0;

  // Check disk-read/net-out availability at remote input sources (§3.2).
  bool check_remote = true;

  // Ablation switch (§5.3.1): consider only CPU and memory, like the
  // baselines — reintroduces disk/network over-allocation.
  bool only_cpu_mem = false;

  // Oracle switch for the hot-path shortcuts (DESIGN.md §8): when true,
  // every stale candidate cell is fully recomputed — no sticky
  // rejections, no probe reuse, no free-capacity index. Produces
  // bit-identical schedules to the optimized default (the equivalence
  // property test enforces it); exists so the oracle stays runnable.
  bool naive_scoring = false;

  // Worker threads for the scheduling pass (DESIGN.md §9). 0 runs the
  // serial scan exactly as before; N >= 1 partitions each round's
  // <group, machine> matrix into min(N, machines) contiguous column
  // shards scanned by a reusable pool, with a deterministic reduction at
  // the barrier — schedules are bit-identical to the serial path (and to
  // the naive oracle) for every thread count, which the threaded
  // equivalence and determinism tests enforce.
  int num_threads = 0;

  // Vectorized scoring kernel (DESIGN.md §12); see SimdMode above.
  // Composes with num_threads: each column shard drains its own batches,
  // and the §9 ordered replay keeps the eps-normalizer accumulation in
  // the serial order either way.
  SimdMode simd = SimdMode::kOn;

  std::string name = "tetris";
};

class TetrisScheduler final : public sim::Scheduler {
 public:
  explicit TetrisScheduler(TetrisConfig config = {});

  std::string name() const override { return config_.name; }
  void schedule(sim::SchedulerContext& ctx) override;

  const TetrisConfig& config() const { return config_; }

  // Lifetime counters, for tests and diagnostics.
  struct Stats {
    long placements = 0;
    long priority_placements = 0;  // won via the barrier hint
    long starved_placements = 0;   // won via the starvation reservation
    long preemptions = 0;          // kills issued by fairness preemption
  };
  const Stats& stats() const { return stats_; }

  // Lifetime hot-path counters (also mirrored into the context's sink,
  // i.e. SimResult::perf, when one is attached).
  const util::PerfCounters& perf() const { return perf_; }

 private:
  static long long group_key(const sim::GroupRef& ref) {
    return (static_cast<long long>(ref.job) << 20) | ref.stage;
  }

  TetrisConfig config_;
  Stats stats_;
  util::PerfCounters perf_;
  // Lazily created on the first pass when num_threads >= 1, then reused
  // for every subsequent pass; workers idle between passes.
  std::unique_ptr<util::ThreadPool> pool_;
  // Running average of |alignment| across the scheduler's lifetime; the
  // a_bar of eps = a_bar / p_bar. Frozen at the start of every candidate
  // round so simultaneous candidates are compared under one eps.
  double alignment_sum_ = 0;
  long alignment_count_ = 0;
  // When each group last received a placement. A group is starved only if
  // its tasks have waited long AND it has not been served recently — a
  // backlogged group that places tasks every pass is queued, not starved.
  std::unordered_map<long long, double> last_placement_;
  // Highest retirement watermark already pruned from last_placement_.
  sim::JobId pruned_before_ = 0;
  // Persistent <group, machine> cell matrix in structure-of-arrays form
  // (DESIGN.md §12.5): the heavy payload (probe + alignment) lives in
  // slots that survive across passes — so every probe keeps its
  // remote-leg buffer capacity — while the per-pass scan flags are
  // separate byte planes reset with four fills. Constructing and
  // destroying the matrix each pass (megabytes of value-init plus a
  // vector free per probed cell) was a top slice of pass latency.
  // Rows are positional per pass; slot contents are only read after this
  // pass's refresh, so stale payloads are never observed.
  struct CellSlot {
    sim::Probe probe;
    double alignment = 0;
  };
  std::vector<CellSlot> cell_slots_;
  std::vector<unsigned char> cell_fresh_;     // probe + alignment up to date
  std::vector<unsigned char> cell_rejected_;  // does not fit; may be sticky
  std::vector<unsigned char> cell_probe_ok_;  // probe matches candidate set
  std::vector<unsigned char> cell_sticky_;    // rejection monotone in avail
};

}  // namespace tetris::core
