// Alignment scorers (paper §3.2 and Table 7).
//
// Given a task's demand vector and a machine's available-resource vector —
// both normalized by the machine's capacity so numerical ranges cancel —
// an alignment scorer says how well the task "fits the shape" of the
// machine's free resources. Tetris uses the weighted dot product (called
// cosine similarity in the paper); the alternatives it was benchmarked
// against in Table 7 are provided for the reproduction of that table.
#pragma once

#include <string_view>

#include "util/resources.h"

namespace tetris::core {

enum class AlignmentKind {
  kCosine,       // sum_i a_i * d_i          (higher = better packing)
  kL2NormDiff,   // -sum_i (d_i - a_i)^2     (penalize leftover + misfit)
  kL2NormRatio,  // -sum_i (d_i / a_i)^2     (penalize eating scarce dims)
  kFfdProd,      // prod_{d_i>0} d_i         (biggest task first, no machine)
  kFfdSum,       // sum_i d_i                (biggest task first, no machine)
};

std::string_view alignment_name(AlignmentKind kind);

// Both vectors must be normalized by the machine's capacity. Higher is
// better for every kind (the norm-based scores are negated).
double alignment_score(AlignmentKind kind, const Resources& demand_norm,
                       const Resources& avail_norm);

}  // namespace tetris::core
