// Vectorized fused fit-check + alignment kernel (DESIGN.md §12).
//
// The hot loop of a scheduling pass evaluates, per <group, machine> cell:
// a six-dimension admission predicate against the machine's availability,
// then the alignment score — a dot product of capacity-normalized demand
// and availability vectors — times the remote-access penalty. This
// module evaluates a *block* of such cells at once, one cell per vector
// lane, with branchless comparison masks for the admission predicate.
//
// Bit-identity contract: every lane performs exactly the scalar op
// sequence of `Resources::normalized_by` + `alignment_score` +
// the penalty multiply — same operations, same order, all exactly-rounded
// IEEE double arithmetic, no FMA contraction (this translation unit is
// built with -ffp-contract=off and uses explicit mul/add intrinsics).
// A lane's score is therefore the same 64 bits the scalar path computes,
// and the scheduler's eps-normalizer accumulation and candidate ranking
// cannot tell the two apart. Anything not provably exact under
// vectorization (alignment kinds with data-dependent accumulation skips)
// is routed through the scalar reference lane instead.
//
// ISA selection is compile-time: the build compiles this one translation
// unit with -mavx2 (4 lanes) or -msse4.2 (2 lanes) when the toolchain
// supports it, or as portable scalar code (1 lane) under
// TETRIS_SIMD_FORCE_SCALAR / unknown ISAs. Only this TU carries the ISA
// flags, so the rest of the build stays baseline-portable.
#pragma once

#include <cstddef>
#include <string_view>

#include "core/alignment.h"
#include "util/resources.h"
#include "util/soa_planes.h"

namespace tetris::core::simd {

// Lanes per vector block in this build: 4 (AVX2), 2 (SSE4.2), 1 (scalar).
int lane_width();
// "avx2", "sse4.2" or "scalar" — for logs and bench CSVs.
std::string_view isa_name();

// A block of gathered cells awaiting the fused evaluation, stored
// structure-of-arrays: lane l of plane r holds cell l's value for
// resource dimension r. Lanes at index >= n are never read by the
// kernel (partial blocks take the scalar tail, which stops at n).
struct ScoreBlock {
  static constexpr std::size_t kMaxLanes = 8;
  alignas(64) double demand[kNumResources][kMaxLanes];
  alignas(64) double avail[kNumResources][kMaxLanes];
  alignas(64) double cap[kNumResources][kMaxLanes];
  alignas(64) double local_fraction[kMaxLanes];
  std::size_t n = 0;
};

struct ScoreOut {
  alignas(64) double score[ScoreBlock::kMaxLanes];
  unsigned char fit[ScoreBlock::kMaxLanes];
};

// Fused admission + alignment over one block.
//   fit[l]   = only_cpu_mem ? fits_cpu_mem(demand_l, avail_l)
//                           : demand_l.fits_within(avail_l)
//   score[l] = alignment_score(kind, demand_l / cap_l, avail_l / cap_l)
//              * (1 - remote_penalty * (1 - local_fraction_l))
// (Remote-leg admission is per-source-machine and stays with the caller.)
// Scores are computed for every lane, fitting or not; callers discard the
// non-fitting ones exactly as the scalar path never computes them.
// A full block of lane_width() cosine lanes takes the vector path and
// bumps *simd_blocks once; every other lane (partial tail, non-cosine
// kind, scalar build) goes through the reference scalar lane and bumps
// *scalar_tail_evals.
void score_block(AlignmentKind kind, double remote_penalty, bool only_cpu_mem,
                 const ScoreBlock& in, ScoreOut* out, long* simd_blocks,
                 long* scalar_tail_evals);

// Writes fits_cpu_mem(demand lane g, bound) into out[g] for every lane of
// `demand`, padding included — size `out` to demand.padded_lanes().
// Bit-identical per lane to the scalar predicate: the two comparison
// thresholds depend only on `bound` and are computed once with the scalar
// expression.
void fits_cpu_mem_mask(const util::ResourcePlanes& demand,
                       const Resources& bound, unsigned char* out);

// Component-wise max over the first `lanes` lanes, folded into a zero
// accumulator — the free-capacity fit index. max is exact and
// order-independent, and the zero-padded tail cannot raise a max of
// non-negative planes, so this equals the scalar per-machine fold.
Resources cwise_max_lanes(const util::ResourcePlanes& planes,
                          std::size_t lanes);

}  // namespace tetris::core::simd
