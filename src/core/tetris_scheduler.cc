#include "core/tetris_scheduler.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/score_kernel.h"
#include "sched/common.h"
#include "trace/event.h"
#include "trace/recorder.h"
#include "util/soa_planes.h"

namespace tetris::core {

SimdMode simd_mode_from_string(std::string_view s) {
  if (s == "off") return SimdMode::kOff;
  if (s == "on") return SimdMode::kOn;
  throw std::invalid_argument("simd mode must be \"off\" or \"on\", got \"" +
                              std::string(s) + "\"");
}

std::string_view simd_mode_name(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOff:
      return "off";
    case SimdMode::kOn:
      return "on";
  }
  return "?";
}

TetrisScheduler::TetrisScheduler(TetrisConfig config)
    : config_(std::move(config)) {
  if (config_.fairness_knob < 0 || config_.fairness_knob >= 1.0)
    throw std::invalid_argument("fairness_knob must be in [0, 1)");
  if (config_.barrier_knob < 0 || config_.barrier_knob > 1.0)
    throw std::invalid_argument("barrier_knob must be in [0, 1]");
  if (config_.remote_penalty < 0 || config_.remote_penalty > 1.0)
    throw std::invalid_argument("remote_penalty must be in [0, 1]");
  if (config_.srtf_weight < 0)
    throw std::invalid_argument("srtf_weight must be >= 0");
  if (config_.starvation_threshold <= 0)
    throw std::invalid_argument("starvation_threshold must be > 0");
  if (config_.future_lookahead < 0)
    throw std::invalid_argument("future_lookahead must be >= 0");
  if (config_.preemption_deficit <= 0 || config_.preemption_deficit > 1)
    throw std::invalid_argument("preemption_deficit must be in (0, 1]");
  if (config_.num_threads < 0)
    throw std::invalid_argument("num_threads must be >= 0");
  // Configs built from parsed knobs can smuggle any integer into the
  // enum; reject everything but the named modes so a typo'd sweep fails
  // loudly instead of silently scoring scalar (mirrors num_threads).
  if (config_.simd != SimdMode::kOff && config_.simd != SimdMode::kOn)
    throw std::invalid_argument(
        "simd must be SimdMode::kOff or SimdMode::kOn");
}

void TetrisScheduler::schedule(sim::SchedulerContext& ctx) {
  // Keep the report stream drained (a real deployment feeds the demand
  // estimator from it; the simulation's estimation model already reflects
  // that behaviour, see sim/config.h).
  (void)ctx.take_reports();

  // Pass-local instrumentation, folded into the lifetime counters and the
  // context's sink (SimResult::perf) on every exit path. Observation
  // only: nothing below may branch on these.
  util::PerfCounters pc;
  struct CounterFlush {
    sim::SchedulerContext& ctx;
    util::PerfCounters& pass;
    util::PerfCounters& lifetime;
    ~CounterFlush() {
      lifetime += pass;
      if (auto* sink = ctx.perf_counters()) *sink += pass;
    }
  } counter_flush{ctx, pc, perf_};

  // Event-trace sink (DESIGN.md §10); null when tracing is off. Like the
  // perf counters, strictly write-only: decisions never branch on it.
  trace::Recorder* tracer = ctx.tracer();

  // Streaming retirement watermark: groups of jobs below it can never
  // reappear (ids are never reused), so their starvation timestamps are
  // dead weight — dropping them keeps this map bounded by the resident
  // window without changing any future lookup. Batch contexts report 0.
  if (const sim::JobId retired = ctx.retired_before();
      retired > pruned_before_) {
    std::erase_if(last_placement_, [&](const auto& kv) {
      return (kv.first >> 20) < static_cast<long long>(retired);
    });
    pruned_before_ = retired;
  }

  auto jobs = ctx.active_jobs();
  auto groups = ctx.runnable_groups();
  if (jobs.empty() || groups.empty()) return;

  std::unordered_map<sim::JobId, std::size_t> job_index;
  for (std::size_t i = 0; i < jobs.size(); ++i) job_index[jobs[i].id] = i;

  // Scan-shape selectors, hoisted ahead of the eligibility machinery so
  // the waved path can pick its flat-array variants from the start.
  const bool naive = config_.naive_scoring;
  const int num_machines = ctx.num_machines();
  const std::size_t num_groups = groups.size();
  const bool use_simd = !naive && config_.simd == SimdMode::kOn;
  const int num_shards =
      config_.num_threads > 0 ? std::min(config_.num_threads, num_machines)
                              : 0;
  const bool parallel = num_shards > 0;
  // The wave-structured scan runs for parallel passes (shards scanned by
  // the pool) and for serial SIMD passes (one full-width shard scanned
  // inline): batching needs the deferred best-update that the §9 waves
  // already make exact.
  const bool waved = parallel || use_simd;

  // Mean remaining work over active jobs: the p_bar of eps = a_bar/p_bar.
  double p_bar = 0;
  for (const auto& j : jobs) p_bar += j.remaining_work;
  p_bar = jobs.size() ? p_bar / static_cast<double>(jobs.size()) : 0;
  if (p_bar <= 0) p_bar = 1;

  // Extra allocation / placements committed during this pass, so the
  // fairness ordering tracks our own placements.
  std::vector<Resources> extra(jobs.size());
  std::vector<int> placed_from(jobs.size(), 0);

  // The fair schedulers Tetris generalizes offer resources among jobs that
  // *have pending tasks*; a job waiting at a barrier demands nothing and
  // must not occupy an eligibility slot (it would idle the cluster as
  // f -> 1).
  const auto eligible_jobs = [&]() {
    std::unordered_set<sim::JobId> out;
    std::vector<sim::JobView> schedulable;
    schedulable.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].runnable_tasks - placed_from[i] <= 0) continue;
      sim::JobView v = jobs[i];
      v.current_alloc += extra[i];
      schedulable.push_back(std::move(v));
    }
    if (config_.fairness_knob <= 0) {
      for (const auto& j : schedulable) out.insert(j.id);
      return out;
    }
    if (config_.fairness_over_queues) {
      // Queue granularity: all jobs of the furthest-below queues are
      // eligible. Shares aggregate over *all* active jobs of a queue (its
      // running work counts even if momentarily unschedulable), but only
      // queues with schedulable jobs occupy eligibility slots.
      std::unordered_set<int> schedulable_queues;
      for (const auto& j : schedulable) schedulable_queues.insert(j.queue);
      std::vector<sim::JobView> adjusted = jobs;
      for (std::size_t i = 0; i < adjusted.size(); ++i)
        adjusted[i].current_alloc += extra[i];
      std::vector<sim::JobView> counted;
      for (const auto& j : adjusted) {
        if (schedulable_queues.contains(j.queue)) counted.push_back(j);
      }
      const auto order = sched::furthest_queues_order(
          config_.fairness_policy, counted, ctx.cluster_capacity(),
          config_.slot_mem);
      const auto cut = static_cast<std::size_t>(std::max(
          1.0, std::ceil((1.0 - config_.fairness_knob) *
                         static_cast<double>(order.size()))));
      std::unordered_set<int> eligible_queues(
          order.begin(),
          order.begin() + static_cast<long>(std::min(cut, order.size())));
      for (const auto& j : schedulable) {
        if (eligible_queues.contains(j.queue)) out.insert(j.id);
      }
      return out;
    }
    const auto order = sched::furthest_from_share_order(
        config_.fairness_policy, schedulable, ctx.cluster_capacity(),
        config_.slot_mem);
    const auto cut = static_cast<std::size_t>(std::max(
        1.0, std::ceil((1.0 - config_.fairness_knob) *
                       static_cast<double>(schedulable.size()))));
    for (std::size_t k = 0; k < std::min(cut, order.size()); ++k)
      out.insert(schedulable[order[k]].id);
    return out;
  };

  // Waved-path refresh of the same eligibility cut, flat. The fairness
  // comparator is a total order — share, then arrival, then id — so the
  // set of jobs ahead of the cut is unique no matter how it is computed:
  // an nth_element partition plus a byte-mask fill gives bit-identical
  // answers to eligible_jobs() without the per-round JobView copies, the
  // full sort, or the hash-set build. At 10K-task backlogs this runs once
  // per placement round and was a top-three term in pass latency.
  struct EligKey {
    double share;
    SimTime arrival;
    sim::JobId id;
    std::uint32_t idx;
  };
  std::vector<EligKey> elig_keys;
  std::vector<unsigned char> eligible_job(waved ? jobs.size() : 0);
  std::size_t eligible_count = 0;
  sim::JobView share_scratch;  // job_share reads only current_alloc
  // Per-job share cache: `jobs` is a pass-long snapshot and extra[i]
  // moves only for the job a round places, so every other job's share is
  // the same double at the next refresh — recompute just the stale one.
  std::vector<double> share_val(waved ? jobs.size() : 0);
  std::vector<unsigned char> share_fresh(waved ? jobs.size() : 0, 0);
  const auto refresh_eligible_waved = [&] {
    std::fill(eligible_job.begin(), eligible_job.end(), 0);
    eligible_count = 0;
    if (config_.fairness_knob > 0 && config_.fairness_over_queues) {
      // Queue granularity aggregates shares across jobs; it is rare and
      // off the hot path, so reuse the generic set computation and
      // project it onto the mask.
      const auto out = eligible_jobs();
      for (const sim::JobId id : out) eligible_job[job_index.at(id)] = 1;
      eligible_count = out.size();
      return;
    }
    elig_keys.clear();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].runnable_tasks - placed_from[i] <= 0) continue;
      if (config_.fairness_knob <= 0) {
        eligible_job[i] = 1;
        eligible_count++;
        continue;
      }
      // Same arithmetic as eligible_jobs(): copy, then +=, so the share
      // key is the identical double.
      if (!share_fresh[i]) {
        share_scratch.current_alloc = jobs[i].current_alloc;
        share_scratch.current_alloc += extra[i];
        share_val[i] =
            sched::job_share(config_.fairness_policy, share_scratch,
                             ctx.cluster_capacity(), config_.slot_mem);
        share_fresh[i] = 1;
      }
      elig_keys.push_back({share_val[i], jobs[i].arrival, jobs[i].id,
                           static_cast<std::uint32_t>(i)});
    }
    if (config_.fairness_knob <= 0) return;
    const auto cut = static_cast<std::size_t>(std::max(
        1.0, std::ceil((1.0 - config_.fairness_knob) *
                       static_cast<double>(elig_keys.size()))));
    const std::size_t take = std::min(cut, elig_keys.size());
    if (take < elig_keys.size()) {
      std::nth_element(elig_keys.begin(),
                       elig_keys.begin() + static_cast<long>(take),
                       elig_keys.end(),
                       [](const EligKey& x, const EligKey& y) {
                         if (x.share != y.share) return x.share < y.share;
                         if (x.arrival != y.arrival)
                           return x.arrival < y.arrival;
                         return x.id < y.id;
                       });
    }
    for (std::size_t k = 0; k < take; ++k)
      eligible_job[elig_keys[k].idx] = 1;
    eligible_count = take;
  };

  const auto fits = [&](const sim::Probe& p) {
    const Resources avail = ctx.available(p.machine);
    if (config_.only_cpu_mem) return sched::fits_cpu_mem(p.demand, avail);
    return sched::fits_all_local(p.demand, avail) &&
           (!config_.check_remote || sched::remote_legs_fit(ctx, p));
  };

  // Selection tiers: 2 = starved (reservation extension), 1 = barrier
  // stragglers (§3.5), 0 = normal. Higher tiers always win. Starved means
  // tasks have waited past the threshold *and* the group received no
  // placement within it (a backlogged group served every pass is queued,
  // not starved).
  const auto tier_of = [&](const sim::GroupView& g) {
    double unserved = g.longest_wait;
    if (const auto it = last_placement_.find(group_key(g.ref));
        it != last_placement_.end()) {
      unserved = std::min(unserved, ctx.now() - it->second);
    }
    if (unserved > config_.starvation_threshold) return 2;
    if (config_.barrier_knob < 1.0 &&
        static_cast<double>(g.finished) >=
            config_.barrier_knob * static_cast<double>(g.total)) {
      return 1;
    }
    return 0;
  };

  // Starvation reservation: while some starved group fits nowhere, fence
  // off the machine with the most free headroom so departing tasks
  // accumulate capacity for it instead of being backfilled.
  int reserved_machine = -1;
  {
    bool any_starved = false;
    for (const auto& g : groups) {
      if (g.runnable > 0 && tier_of(g) == 2) {
        any_starved = true;
        break;
      }
    }
    if (any_starved) {
      double best_headroom = -1;
      for (int m = 0; m < ctx.num_machines(); ++m) {
        if (!ctx.machine_up(m)) continue;  // nothing accumulates on a corpse
        // Reserving a machine no starved group may legally use would fence
        // capacity the starved work can never claim.
        bool usable = false;
        for (const auto& g : groups) {
          if (g.runnable > 0 && tier_of(g) == 2 &&
              ctx.constraints_admit(g.ref, m)) {
            usable = true;
            break;
          }
        }
        if (!usable) continue;
        const double headroom = ctx.available(m)
                                    .normalized_by(ctx.capacity(m))
                                    .sum();
        if (headroom > best_headroom) {
          best_headroom = headroom;
          reserved_machine = m;
        }
      }
    }
  }

  // The serial loop probes an unordered_set per row; the waved scan reads
  // the byte mask (same answers, no hashing) and skips the set entirely.
  std::unordered_set<sim::JobId> eligible;
  if (waved)
    refresh_eligible_waved();
  else
    eligible = eligible_jobs();

  // Globally greedy rounds over all <task-group, machine> pairs: the paper
  // "picks the <task, machine> pair with the highest dot product value".
  // Probes and alignment scores are cached per pair; a placement only
  // invalidates its machine's column (availability changed), the source
  // machines of its remote legs, and its group's row (the best-locality
  // candidate task changed).
  //
  // Three shortcuts (off under naive_scoring) exploit that availability
  // only falls within a pass — place() subtracts, and preemption runs
  // only after this loop (DESIGN.md §8):
  //   * sticky rejection: a cell rejected for fit reasons stays rejected
  //     under lower availability, so a column invalidation need not
  //     re-evaluate it;
  //   * probe reuse: a column invalidation leaves the group's candidate
  //     set untouched, so the kept probe is bit-identical to a re-probe
  //     and only fits + alignment need recomputing;
  //   * free-capacity index: a group whose cpu/mem estimate exceeds the
  //     component-wise max availability over up machines would cheap-
  //     reject everywhere — skip its whole row before any dot product.
  // None of them changes which cells get *scored*, so the eps normalizer
  // accumulation (alignment_sum_/alignment_count_) — and with it every
  // placement — matches the naive path bit for bit.
  // SIMD batch path (DESIGN.md §12): cells are refreshed in two phases —
  // bookkeeping + probe first, then the fused fit + alignment in
  // vector-width blocks — so it reuses the §9 wave structure (already
  // proven bit-identical to the serial interleaved scan) even when
  // single-threaded. The naive oracle never batches.
  // SoA views over availability and capacity; null for contexts that do
  // not maintain them, in which case batches gather per machine through
  // the virtuals — same values, just slower.
  const util::ResourcePlanes* avail_planes =
      use_simd ? ctx.availability_planes() : nullptr;
  const util::ResourcePlanes* cap_planes =
      use_simd ? ctx.capacity_planes() : nullptr;
  // Persistent SoA cell matrix (members, see tetris_scheduler.h): ensure
  // capacity, then reset only the per-pass scan flags. Slots keep their
  // probes' heap buffers; flags are four byte-plane fills instead of a
  // full matrix reconstruction per pass.
  const std::size_t num_cells =
      num_groups * static_cast<std::size_t>(num_machines);
  if (cell_slots_.size() < num_cells) {
    cell_slots_.resize(num_cells);
    cell_fresh_.resize(num_cells);
    cell_rejected_.resize(num_cells);
    cell_probe_ok_.resize(num_cells);
    cell_sticky_.resize(num_cells);
  }
  std::fill_n(cell_fresh_.begin(), num_cells, 0);
  std::fill_n(cell_rejected_.begin(), num_cells, 0);
  std::fill_n(cell_probe_ok_.begin(), num_cells, 0);
  std::fill_n(cell_sticky_.begin(), num_cells, 0);
  const auto cidx = [num_machines](std::size_t g, int m) {
    return g * static_cast<std::size_t>(num_machines) +
           static_cast<std::size_t>(m);
  };
  const auto cell = [&](std::size_t g, int m) -> CellSlot& {
    return cell_slots_[cidx(g, m)];
  };

  // Count of fresh-and-rejected cells per row. When it reaches
  // num_machines the row scan would do nothing at all (every cell is up
  // to date and skipped), so the round loop jumps the whole row. On a
  // saturated cluster most backlogged rows sit in this state, turning the
  // per-round cost from O(groups * machines) into O(groups).
  std::vector<int> row_rejected(num_groups, 0);
  const auto invalidate_column_cell = [&](std::size_t g, int m) {
    const std::size_t ci = cidx(g, m);
    if (cell_fresh_[ci] && cell_rejected_[ci]) row_rejected[g]--;
    cell_fresh_[ci] = 0;
  };

  // Shared refresh core for the serial and the sharded scan. All mutable
  // state is passed in so a shard worker can keep its own: `rpc` receives
  // the counters, `on_score(|a|)` is invoked for every scored cell in
  // cell-visit order (the serial path accumulates the eps normalizer
  // directly; a worker records for the ordered replay at the barrier),
  // and a probe that finds no candidate sets *drained instead of zeroing
  // group.runnable (a shared write) — the serial wrapper zeroes it
  // immediately, workers flag their shard and merge at the barrier.
  const auto refresh_cell_with = [&](std::size_t g, int m,
                                     util::PerfCounters& rpc,
                                     bool locally_drained, bool* drained,
                                     auto&& on_score) {
    const std::size_t ci = cidx(g, m);
    CellSlot& c = cell_slots_[ci];
    auto& group = groups[g];
    if (!naive && cell_rejected_[ci] && cell_sticky_[ci]) {
      // The rejection was a fit test against availability that has only
      // fallen since (or a pass-constant condition): still rejected.
      cell_fresh_[ci] = 1;
      rpc.sticky_rejects++;
      return;
    }
    cell_fresh_[ci] = 1;
    cell_rejected_[ci] = 1;
    cell_sticky_[ci] = 1;
    if (group.runnable <= 0 || locally_drained) return;
    // A down machine admits nothing; bail before probing — an invalid
    // probe below means "group drained", which a churn outage is not.
    // Constraint-inadmissible machines bail the same way, for the same
    // reason: both rejections are pass-constant (or monotone), so the
    // sticky flag set above may stand.
    if (!ctx.machine_up(m)) return;
    if (!ctx.constraints_admit(group.ref, m)) return;
    const Resources avail = ctx.available(m);
    // Cheap exact reject on the placement-independent dimensions.
    if (!sched::fits_cpu_mem(group.est_demand, avail)) return;
    if (naive || !cell_probe_ok_[ci]) {
      // In place: the cell's remote-leg buffer keeps its capacity.
      ctx.probe_into(group.ref, m, &c.probe);
      rpc.probes_issued++;
      if (!c.probe.valid) {
        *drained = true;
        return;
      }
      cell_probe_ok_[ci] = 1;
    } else {
      rpc.probe_reuses++;
    }
    if (!fits(c.probe)) return;
    const Resources cap = ctx.capacity(m);
    double a = alignment_score(config_.alignment,
                               c.probe.demand.normalized_by(cap),
                               avail.normalized_by(cap));
    a *= 1.0 - config_.remote_penalty * (1.0 - c.probe.local_fraction);
    rpc.score_evals++;
    on_score(std::abs(a));
    c.alignment = a;
    cell_rejected_[ci] = 0;
    cell_sticky_[ci] = 0;
  };
  const auto refresh_cell = [&](std::size_t g, int m) {
    bool drained = false;
    refresh_cell_with(g, m, pc, /*locally_drained=*/false, &drained,
                      [&](double abs_a) {
                        alignment_sum_ += abs_a;
                        alignment_count_++;
                      });
    if (drained) groups[g].runnable = 0;
  };

  // Phase-A half of a refresh under the SIMD path: everything
  // refresh_cell_with does up to the score itself — the sticky shortcut,
  // rejected-until-proven marking, runnable/up checks, the cheap cpu/mem
  // reject, the probe, and the full admission test. Returns true iff the
  // cell passed admission and its alignment must come from the score
  // batch. Gating on the scalar `fits` here keeps the batch dense: a
  // cell the serial loop rejects with a component compare never pays the
  // gather + vector-lane cost (the kernel's own fused mask still covers
  // its lanes, it just never fires on pre-admitted input).
  const auto prepare_cell = [&](std::size_t g, int m,
                                util::PerfCounters& rpc, bool locally_drained,
                                bool* drained) -> bool {
    const std::size_t ci = cidx(g, m);
    CellSlot& c = cell_slots_[ci];
    auto& group = groups[g];
    if (cell_rejected_[ci] && cell_sticky_[ci]) {  // never runs naive
      cell_fresh_[ci] = 1;
      rpc.sticky_rejects++;
      return false;
    }
    cell_fresh_[ci] = 1;
    cell_rejected_[ci] = 1;
    cell_sticky_[ci] = 1;
    if (group.runnable <= 0 || locally_drained) return false;
    if (!ctx.machine_up(m)) return false;
    if (!ctx.constraints_admit(group.ref, m)) return false;
    if (!sched::fits_cpu_mem(group.est_demand, ctx.available(m))) return false;
    if (!cell_probe_ok_[ci]) {
      ctx.probe_into(group.ref, m, &c.probe);
      rpc.probes_issued++;
      if (!c.probe.valid) {
        *drained = true;
        return false;
      }
      cell_probe_ok_[ci] = 1;
    } else {
      rpc.probe_reuses++;
    }
    // Full admission, exactly the serial scan's test: a failing cell
    // stays rejected-and-sticky and never reaches the kernel.
    if (!fits(c.probe)) return false;
    return true;
  };

  // Free-capacity index: component-wise max availability over up
  // machines. fits_cpu_mem failing against it implies the same failure
  // against every individual machine (the predicate is monotone per
  // component), so skipping a row only ever skips would-be rejections.
  // Fresh non-rejected cells cannot hide behind a skip: their machine's
  // availability is unchanged since they were scored (place() invalidates
  // the columns it drains), and the index dominates it.
  // Per-group estimated-demand planes and the row fit mask derived from
  // them (SIMD path only): fits_cpu_mem of every row against the fit
  // index in one vector sweep per recompute, instead of a scalar
  // predicate call per row per round. est_demand is pass-constant, so the
  // planes are built once.
  util::ResourcePlanes group_demand;
  std::vector<unsigned char> row_fit;
  if (use_simd) {
    group_demand.reset(num_groups);
    for (std::size_t g = 0; g < num_groups; ++g)
      group_demand.set(g, groups[g].est_demand);
    row_fit.assign(group_demand.padded_lanes(), 0);
  }
  Resources max_avail;
  const auto recompute_fit_index = [&]() {
    if (use_simd && avail_planes != nullptr) {
      // Down machines hold zero in the availability planes and every
      // plane value is >= 0 (max_zero'd), so folding them in is exact;
      // lanes past num_machines are rack uplinks and stay excluded, as
      // in the scalar loop.
      max_avail = simd::cwise_max_lanes(*avail_planes,
                                        static_cast<std::size_t>(num_machines));
    } else {
      max_avail = Resources{};
      for (int m = 0; m < num_machines; ++m) {
        if (!ctx.machine_up(m)) continue;
        max_avail = max_avail.cwise_max(ctx.available(m));
      }
    }
    if (use_simd)
      simd::fits_cpu_mem_mask(group_demand, max_avail, row_fit.data());
  };
  if (!naive) recompute_fit_index();

  // Future-demand hold-back (§3.5 extension): demands of stages about to
  // unblock within the lookahead window. A tier-0 candidate loses a
  // machine to the future only when BOTH hold: an imminent stage would
  // align strictly better on the machine's current availability, AND the
  // candidate runs longer than that stage's eta — holding back costs at
  // most eta of idleness, while placing blocks the imminent stage for the
  // candidate's whole duration. Without the duration test, deep DAGs
  // (where something is always imminent) would suppress all work.
  struct ImminentDemand {
    sim::GroupRef ref;
    Resources demand;
    double eta;
    int tasks;  // claim budget: a stage can use at most this many machines
  };
  std::vector<ImminentDemand> imminent_demands;
  if (config_.future_lookahead > 0) {
    for (const auto& g : ctx.imminent_groups()) {
      if (g.eta <= config_.future_lookahead) {
        imminent_demands.push_back({g.ref, g.est_demand, g.eta, g.total});
      }
    }
  }
  // Per machine, per round: the (alignment, eta) claims of imminent stages.
  // Each stage claims only the machines where it aligns best, at most as
  // many as it has tasks — otherwise a small stage would fence the whole
  // cluster.
  const int total_machines = ctx.num_machines();
  const auto future_claims = [&]() {
    std::vector<std::vector<std::pair<double, double>>> claims(
        static_cast<std::size_t>(total_machines));
    std::vector<std::pair<double, int>> scored;  // (alignment, machine)
    for (const auto& i : imminent_demands) {
      scored.clear();
      for (int m = 0; m < total_machines; ++m) {
        if (!ctx.machine_up(m)) continue;
        // A stage only ever claims machines it could legally run on once
        // its barrier breaks.
        if (!ctx.constraints_admit(i.ref, m)) continue;
        const Resources cap = ctx.capacity(m);
        if (!i.demand.fits_within(cap)) continue;
        scored.emplace_back(
            alignment_score(config_.alignment, i.demand.normalized_by(cap),
                            ctx.available(m).normalized_by(cap)),
            m);
      }
      const auto budget = static_cast<std::size_t>(
          std::max(1, std::min(i.tasks, total_machines)));
      if (scored.size() > budget) {
        std::partial_sort(scored.begin(),
                          scored.begin() + static_cast<long>(budget),
                          scored.end(), std::greater<>());
        scored.resize(budget);
      }
      for (const auto& [align, m] : scored) {
        claims[static_cast<std::size_t>(m)].emplace_back(align, i.eta);
      }
    }
    return claims;
  };

  // ---- Sharded scan state (DESIGN.md §9) ----
  // With num_threads >= 1 each round's scan is partitioned into
  // min(num_threads, machines) contiguous column shards. Workers write
  // only cells of their own columns plus their ShardState; everything
  // shared (row_rejected, group.runnable, the eps normalizer, the global
  // best) is merged serially at the barrier, in shard order, so the
  // outcome is independent of worker interleaving — and, by the ordered
  // replay below, bit-identical to the serial scan.
  if (parallel && !pool_)
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
  // One scored cell: |alignment| destined for the eps normalizer. Within
  // a shard, records append in (row, column) scan order; the barrier
  // concatenates shards in order and a stable sort by row restores the
  // exact serial accumulation order (columns stay ordered because shards
  // are contiguous and appended ascending; rows of different waves are
  // disjoint).
  struct ScoreRecord {
    std::size_t g;
    double abs_a;
  };
  // One cell whose fused fit + score evaluation is deferred to a batch
  // flush, and one cell to revisit in the post-flush candidate scan;
  // both lists keep the (row, column) scan order.
  struct PendingCell {
    std::size_t g;
    int m;
  };
  struct VisitCell {
    std::size_t g;
    int m;
    double rem;  // the row's SRTF remaining-work term
  };
  struct alignas(64) ShardState {
    int m_lo = 0;
    int m_hi = 0;
    util::PerfCounters pc;
    std::vector<ScoreRecord> records;
    std::vector<int> rej_delta;   // per-row cells newly rejected this wave
    std::vector<char> drained;    // rows whose re-probe found no candidate
    std::vector<PendingCell> pending;  // SIMD path: cells awaiting a flush
    std::vector<VisitCell> visit;      // SIMD path: candidate-scan worklist
    bool has_best = false;
    double best_score = 0;
    std::size_t best_g = 0;
    int best_m = -1;
    std::size_t first_candidate_row = 0;
    // Accumulated worker wall-clock over the pass, for kShardTiming
    // records; only measured while tracing (the clock reads cost).
    long long scan_nanos = 0;
  };
  const int wave_shards = parallel ? num_shards : (waved ? 1 : 0);
  std::vector<ShardState> shards(static_cast<std::size_t>(wave_shards));
  if (waved) {
    const int base = num_machines / wave_shards;
    const int rem = num_machines % wave_shards;
    int lo = 0;
    for (int s = 0; s < wave_shards; ++s) {
      auto& st = shards[static_cast<std::size_t>(s)];
      st.m_lo = lo;
      st.m_hi = lo + base + (s < rem ? 1 : 0);
      lo = st.m_hi;
      st.rej_delta.assign(num_groups, 0);
      st.drained.assign(num_groups, 0);
    }
  }
  if (parallel) {
    pc.parallel_passes++;
    pc.shard_score_evals.assign(static_cast<std::size_t>(num_shards), 0);
  }
  // Waved-scan row metadata, flat arrays instead of per-row hash probes.
  // The serial loop pays tier_of's `last_placement_` lookup and the
  // eligibility set probe per row per round; at 10K-task backlogs that
  // bookkeeping dwarfs the scoring itself. Tiers move only through
  // placements (`last_placement_` / runnable), so the waved path computes
  // them once per pass and refreshes just the placed row; the eligibility
  // byte mask is rebuilt by refresh_eligible_waved only when the serial
  // loop would rebuild its set. All of it is exact: same tier values,
  // same eligibility answers, same counters — only the lookups are
  // cheaper.
  std::vector<int> tier_by_row(waved ? num_groups : 0);
  std::vector<std::uint32_t> row_job(waved ? num_groups : 0);
  if (waved) {
    for (std::size_t g = 0; g < num_groups; ++g) {
      tier_by_row[g] = tier_of(groups[g]);
      row_job[g] =
          static_cast<std::uint32_t>(job_index.at(groups[g].ref.job));
    }
  }
  // Rows of each tier in ascending order, rebuilt per round in one O(G)
  // sweep so each wave walks only its own rows.
  std::array<std::vector<std::size_t>, 3> tier_rows;

  // Drains a shard's pending cells through the vector kernel in scan
  // order, lane_width() lanes per block. Every pending cell already
  // passed the full scalar admission in Phase A, so each lane scores
  // exactly as the scalar path would: same counter bump, same on_score
  // value, same cell writeback — and its provisional rejection is
  // undone. The kernel's fused fit mask is a no-op on this input by the
  // lane-for-lane identity with the scalar predicates (unit-tested); it
  // stays as a guard.
  const auto flush_pending = [&](ShardState& st, auto&& on_score) {
    const auto width = static_cast<std::size_t>(simd::lane_width());
    simd::ScoreBlock block;
    simd::ScoreOut res;
    std::size_t i = 0;
    while (i < st.pending.size()) {
      const std::size_t n = std::min(width, st.pending.size() - i);
      for (std::size_t l = 0; l < n; ++l) {
        const auto [g, m] = st.pending[i + l];
        const CellSlot& c = cell(g, m);
        for (std::size_t r = 0; r < kNumResources; ++r)
          block.demand[r][l] = c.probe.demand.at(r);
        if (avail_planes != nullptr && cap_planes != nullptr) {
          for (std::size_t r = 0; r < kNumResources; ++r) {
            block.avail[r][l] =
                avail_planes->plane(r)[static_cast<std::size_t>(m)];
            block.cap[r][l] = cap_planes->plane(r)[static_cast<std::size_t>(m)];
          }
        } else {
          const Resources av = ctx.available(m);
          const Resources cp = ctx.capacity(m);
          for (std::size_t r = 0; r < kNumResources; ++r) {
            block.avail[r][l] = av.at(r);
            block.cap[r][l] = cp.at(r);
          }
        }
        block.local_fraction[l] = c.probe.local_fraction;
      }
      block.n = n;
      simd::score_block(config_.alignment, config_.remote_penalty,
                        config_.only_cpu_mem, block, &res, &st.pc.simd_blocks,
                        &st.pc.scalar_tail_evals);
      for (std::size_t l = 0; l < n; ++l) {
        const auto [g, m] = st.pending[i + l];
        if (!res.fit[l]) continue;
        const std::size_t ci = cidx(g, m);
        const double a = res.score[l];
        st.pc.score_evals++;
        on_score(g, std::abs(a));
        cell_slots_[ci].alignment = a;
        cell_rejected_[ci] = 0;
        cell_sticky_[ci] = 0;
        st.rej_delta[g]--;  // provisional rejection undone
      }
      i += n;
    }
    st.pending.clear();
  };
  struct ScanRow {
    std::size_t g;
    double rem;  // the job's remaining work, for the SRTF term
  };
  std::vector<ScanRow> scan_rows;
  std::vector<ScoreRecord> round_records;
  using Clock = std::chrono::steady_clock;

  while (true) {
    // eps is frozen for this round so all candidates are compared under
    // the same SRTF weight; the running a_bar only feeds later rounds.
    const double round_eps =
        config_.srtf_weight *
        (alignment_count_ > 0
             ? alignment_sum_ / static_cast<double>(alignment_count_)
             : 0.0) /
        p_bar;

    // Per-round hold-back claims (availability changes between rounds).
    std::vector<std::vector<std::pair<double, double>>> claims;
    if (!imminent_demands.empty()) claims = future_claims();

    std::ptrdiff_t best_ci = -1;  // index into cell_slots_, -1 = none
    std::size_t best_group = 0;
    double best_score = 0;
    int best_tier = -1;

    if (!waved) {
      for (std::size_t g = 0; g < num_groups; ++g) {
        auto& group = groups[g];
        if (group.runnable <= 0) continue;
        const int tier = tier_of(group);
        // Priority (barrier/starved) groups bypass the fairness
        // restriction: they take only a small amount of resources (§3.5).
        if (tier == 0 && !eligible.contains(group.ref.job)) continue;
        // Once a higher-tier candidate exists, lower tiers cannot win.
        if (tier < best_tier) continue;
        const double rem =
            config_.srtf_weight > 0
                ? jobs[job_index.at(group.ref.job)].remaining_work
                : 0.0;
        // Free-capacity index: if the group's cpu/mem estimate exceeds
        // even the component-wise max availability, every machine would
        // cheap-reject it — skip the row without touching a single cell.
        if (!naive && !sched::fits_cpu_mem(group.est_demand, max_avail)) {
          pc.fit_index_skips += num_machines;
          continue;
        }
        // Whole-row skip: every cell is fresh and rejected, so the inner
        // loop below would fall straight through without scoring,
        // refreshing or updating the best candidate. Identical outcome,
        // O(1) cost.
        if (!naive &&
            row_rejected[g] == num_machines) {
          pc.row_skips += num_machines;
          continue;
        }
        for (int m = 0; m < num_machines; ++m) {
          // A reserved machine only accepts the starved tier.
          if (m == reserved_machine && tier < 2) continue;
          const std::size_t ci = cidx(g, m);
          if (!cell_fresh_[ci]) {
            refresh_cell(g, m);
            if (cell_rejected_[ci]) row_rejected[g]++;
          }
          if (cell_rejected_[ci]) continue;
          const CellSlot& c = cell_slots_[ci];
          // Future hold-back: a better-aligned stage unblocks here before
          // this (longer) candidate would release the resources.
          if (tier == 0 && !claims.empty()) {
            bool held = false;
            for (const auto& [align, eta] :
                 claims[static_cast<std::size_t>(m)]) {
              if (align > c.alignment && c.probe.duration > eta) {
                held = true;
                break;
              }
            }
            if (held) continue;
          }
          const double score = c.alignment - round_eps * rem;
          if (best_ci < 0 || tier > best_tier ||
              (tier == best_tier && score > best_score)) {
            best_ci = static_cast<std::ptrdiff_t>(ci);
            best_group = g;
            best_score = score;
            best_tier = tier;
          }
        }
      }
    } else {
      // Sharded scan in tier-descending waves. The serial loop's running
      // best_tier skips a row exactly when a candidate-producing row of a
      // strictly higher tier precedes it, so each wave scans its tier's
      // rows up to `cutoff` — the first candidate-producing row of any
      // higher wave — and the scanned set (hence every refresh, score and
      // eps-normalizer contribution) matches the serial scan exactly.
      round_records.clear();
      // One O(G) sweep buckets the runnable rows by (cached) tier; each
      // wave then walks only its own rows. A wave's barrier can zero
      // `runnable` only for rows of its own tier, so checking it here,
      // once per round, is exact.
      for (auto& rows : tier_rows) rows.clear();
      for (std::size_t g = 0; g < num_groups; ++g) {
        if (groups[g].runnable <= 0) continue;
        tier_rows[static_cast<std::size_t>(tier_by_row[g])].push_back(g);
      }
      std::size_t cutoff = num_groups;
      for (int tier = 2; tier >= 0; --tier) {
        // Row filters, in the serial loop's order and with its counters;
        // row_rejected and group.runnable are barrier-stable, so this
        // pre-pass is exact.
        scan_rows.clear();
        for (const std::size_t g : tier_rows[static_cast<std::size_t>(tier)]) {
          auto& group = groups[g];
          if (tier == 0 && !eligible_job[row_job[g]]) continue;
          if (g >= cutoff) continue;
          // Under SIMD the row fit mask is the same predicate, evaluated
          // by the vector sweep at the last fit-index recompute.
          if (!naive && (use_simd
                             ? !row_fit[g]
                             : !sched::fits_cpu_mem(group.est_demand,
                                                    max_avail))) {
            pc.fit_index_skips += num_machines;
            continue;
          }
          if (!naive && row_rejected[g] == num_machines) {
            pc.row_skips += num_machines;
            continue;
          }
          const double rem = config_.srtf_weight > 0
                                 ? jobs[row_job[g]].remaining_work
                                 : 0.0;
          scan_rows.push_back({g, rem});
        }
        if (scan_rows.empty()) continue;

        const auto scan_shard = [&](int s) {
          ShardState& st = shards[static_cast<std::size_t>(s)];
          const auto shard_start =
              tracer ? Clock::now() : Clock::time_point{};
          st.has_best = false;
          st.best_m = -1;
          st.first_candidate_row = num_groups;
          if (!use_simd) {
            for (const ScanRow& row : scan_rows) {
              const std::size_t g = row.g;
              for (int m = st.m_lo; m < st.m_hi; ++m) {
                // A reserved machine only accepts the starved tier.
                if (m == reserved_machine && tier < 2) continue;
                const std::size_t ci = cidx(g, m);
                if (!cell_fresh_[ci]) {
                  bool drained = false;
                  refresh_cell_with(g, m, st.pc, st.drained[g] != 0, &drained,
                                    [&](double abs_a) {
                                      st.records.push_back({g, abs_a});
                                    });
                  if (drained) st.drained[g] = 1;
                  if (cell_rejected_[ci]) st.rej_delta[g]++;
                }
                if (cell_rejected_[ci]) continue;
                const CellSlot& c = cell_slots_[ci];
                if (tier == 0 && !claims.empty()) {
                  bool held = false;
                  for (const auto& [align, eta] :
                       claims[static_cast<std::size_t>(m)]) {
                    if (align > c.alignment && c.probe.duration > eta) {
                      held = true;
                      break;
                    }
                  }
                  if (held) continue;
                }
                const double score = c.alignment - round_eps * row.rem;
                if (st.first_candidate_row == num_groups)
                  st.first_candidate_row = g;
                // Strict > keeps the first-encountered candidate on score
                // ties, as the serial scan does.
                if (!st.has_best || score > st.best_score) {
                  st.has_best = true;
                  st.best_score = score;
                  st.best_g = g;
                  st.best_m = m;
                }
              }
            }
          } else {
            // SIMD path, three phases per wave. Phase A walks the wave's
            // cells in scan order, does the Phase-A half of each stale
            // cell's refresh, and provisionally counts it rejected;
            // cells whose fit + score are pending join the batch list,
            // and every potentially live cell joins the revisit list —
            // both in walk order.
            st.pending.clear();
            st.visit.clear();
            for (const ScanRow& row : scan_rows) {
              const std::size_t g = row.g;
              for (int m = st.m_lo; m < st.m_hi; ++m) {
                if (m == reserved_machine && tier < 2) continue;
                const std::size_t ci = cidx(g, m);
                if (!cell_fresh_[ci]) {
                  bool drained = false;
                  const bool batch_me =
                      prepare_cell(g, m, st.pc, st.drained[g] != 0, &drained);
                  if (drained) st.drained[g] = 1;
                  st.rej_delta[g]++;  // provisional; the flush undoes it
                  if (batch_me) {
                    st.pending.push_back({g, m});
                    st.visit.push_back({g, m, row.rem});
                  }
                } else if (!cell_rejected_[ci]) {
                  st.visit.push_back({g, m, row.rem});
                }
              }
            }
            // Phase B: fused fit + alignment over the batch, in scan
            // order, recording eps contributions like the per-cell path.
            flush_pending(st, [&](std::size_t g, double abs_a) {
              st.records.push_back({g, abs_a});
            });
            // Phase C: candidate scan over the surviving cells — same
            // hold-back, first-candidate and best-update rules as the
            // interleaved walk, now over known alignments.
            for (const VisitCell& v : st.visit) {
              const std::size_t ci = cidx(v.g, v.m);
              if (cell_rejected_[ci]) continue;
              const CellSlot& c = cell_slots_[ci];
              if (tier == 0 && !claims.empty()) {
                bool held = false;
                for (const auto& [align, eta] :
                     claims[static_cast<std::size_t>(v.m)]) {
                  if (align > c.alignment && c.probe.duration > eta) {
                    held = true;
                    break;
                  }
                }
                if (held) continue;
              }
              const double score = c.alignment - round_eps * v.rem;
              if (st.first_candidate_row == num_groups)
                st.first_candidate_row = v.g;
              if (!st.has_best || score > st.best_score) {
                st.has_best = true;
                st.best_score = score;
                st.best_g = v.g;
                st.best_m = v.m;
              }
            }
          }
          if (tracer) {
            st.scan_nanos +=
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - shard_start)
                    .count();
          }
        };
        if (parallel)
          pool_->parallel_for(wave_shards, scan_shard);
        else
          scan_shard(0);

        // Reduction barrier: merge shard results in shard order. Nothing
        // here depends on worker timing, so the outcome is deterministic
        // for any thread count. reduction_nanos stays a parallel-only
        // counter — a serial SIMD pass runs the same merge but reports 0,
        // preserving "serial runs spend nothing in reduction".
        const auto barrier_start =
            parallel ? Clock::now() : Clock::time_point{};
        for (auto& st : shards) {
          round_records.insert(round_records.end(), st.records.begin(),
                               st.records.end());
          st.records.clear();
          for (const ScanRow& row : scan_rows) {
            row_rejected[row.g] += st.rej_delta[row.g];
            st.rej_delta[row.g] = 0;
            if (st.drained[row.g]) groups[row.g].runnable = 0;
          }
          cutoff = std::min(cutoff, st.first_candidate_row);
        }
        // Waves run highest tier first, so the first wave that yields any
        // candidate holds the round's winner: the highest-scoring cell,
        // ties broken by lowest row then lowest column — exactly the
        // first-encountered rule of the serial row-major scan.
        if (best_ci < 0) {
          for (auto& st : shards) {
            if (!st.has_best) continue;
            if (best_ci < 0 || st.best_score > best_score ||
                (st.best_score == best_score && st.best_g < best_group)) {
              best_ci = static_cast<std::ptrdiff_t>(cidx(st.best_g, st.best_m));
              best_group = st.best_g;
              best_score = st.best_score;
              best_tier = tier;
            }
          }
        }
        if (parallel) {
          pc.reduction_nanos +=
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - barrier_start)
                  .count();
        }
      }

      // Ordered replay of the eps-normalizer accumulation: the serial
      // scan adds |a| in row-major order over the scanned rows. Shard
      // concatenation already ordered columns within each row, and rows
      // of different waves are disjoint, so a stable sort by row restores
      // the exact serial addition order — FP addition is not associative,
      // and eps feeds every later round's scores.
      const auto replay_start = parallel ? Clock::now() : Clock::time_point{};
      std::stable_sort(round_records.begin(), round_records.end(),
                       [](const ScoreRecord& a, const ScoreRecord& b) {
                         return a.g < b.g;
                       });
      for (const auto& r : round_records) {
        alignment_sum_ += r.abs_a;
        alignment_count_++;
      }
      for (std::size_t s = 0; s < shards.size(); ++s) {
        if (parallel) pc.shard_score_evals[s] += shards[s].pc.score_evals;
        pc += shards[s].pc;
        shards[s].pc = util::PerfCounters{};
      }
      if (parallel) {
        pc.reduction_nanos +=
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - replay_start)
                .count();
      }
    }

    if (best_ci < 0) break;
    CellSlot& best = cell_slots_[static_cast<std::size_t>(best_ci)];
    // Re-validate against live availability: a cached probe's *remote*
    // legs may have been consumed by a placement on a third machine whose
    // column this cell does not share.
    if (!fits(best.probe)) {
      cell_rejected_[static_cast<std::size_t>(best_ci)] = 1;
      row_rejected[best_group]++;
      continue;
    }
    const sim::Probe placed = best.probe;
    if (!ctx.place(placed)) {
      // Stale probe: the candidate set changed under us. Not an
      // availability-monotone rejection — leave sticky unset and drop the
      // probe so the next refresh recomputes from scratch, as naive does.
      cell_rejected_[static_cast<std::size_t>(best_ci)] = 1;
      cell_probe_ok_[static_cast<std::size_t>(best_ci)] = 0;
      row_rejected[best_group]++;
      continue;
    }
    groups[best_group].runnable--;
    stats_.placements++;
    if (best_tier == 1) stats_.priority_placements++;
    if (best_tier == 2) stats_.starved_placements++;
    if (tracer) {
      // Recorded before the fairness cut refreshes below: `f` is the
      // eligible-job count this decision was made under. score = x - y.
      trace::Event ev;
      ev.kind = trace::EventKind::kPlacement;
      ev.time = ctx.now();
      ev.a = placed.group.job;
      ev.b = placed.group.stage;
      ev.c = placed.task_index;
      ev.d = placed.machine;
      ev.e = best_tier;
      ev.f = static_cast<std::int64_t>(waved ? eligible_count
                                             : eligible.size());
      ev.x = best.alignment;
      ev.y = best.alignment - best_score;  // eps * p_hat SRTF penalty
      tracer->record(ev);
    }
    last_placement_[group_key(placed.group)] = ctx.now();
    const auto ji = job_index.at(placed.group.job);
    extra[ji] += placed.demand;
    placed_from[ji]++;
    if (waved) share_fresh[ji] = 0;  // its share key just moved
    if (config_.fairness_knob > 0) {
      if (waved)
        refresh_eligible_waved();
      else
        eligible = eligible_jobs();
    }
    if (waved) {
      // Only the placed row's tier can have moved (its last_placement_
      // stamp just did); the cached tiers of every other row stand.
      tier_by_row[best_group] = tier_of(groups[best_group]);
    }

    // Invalidate what the placement changed: the group's candidate task,
    // the host machine's availability, and the remote sources' budgets.
    // The placed group's row loses everything — its candidate set changed,
    // so cached probes and rejections are void. Column invalidations only
    // reflect fallen availability: cached probes stay valid (the probe is
    // availability-independent) and rejections stay sticky.
    for (int m = 0; m < num_machines; ++m) {
      const std::size_t ci = cidx(best_group, m);
      cell_fresh_[ci] = 0;
      cell_probe_ok_[ci] = 0;
      cell_rejected_[ci] = 0;
      cell_sticky_[ci] = 0;
    }
    row_rejected[best_group] = 0;
    for (std::size_t g = 0; g < num_groups; ++g) {
      invalidate_column_cell(g, placed.machine);
      for (const auto& leg : placed.remote) {
        // Rack uplinks carry ids past the placement machines; they have no
        // cell column (the pre-place re-validation catches staleness).
        if (leg.machine < num_machines) invalidate_column_cell(g, leg.machine);
      }
    }
    if (!naive) recompute_fit_index();
  }

  // Shard timings are measured inside the workers but emitted here, on
  // the scheduling thread in shard order, so the trace stream's order
  // never depends on worker interleaving (the wall-clock values live in
  // the non-semantic `timing` field).
  if (tracer != nullptr && parallel) {
    for (std::size_t s = 0; s < shards.size(); ++s) {
      trace::Event ev;
      ev.kind = trace::EventKind::kShardTiming;
      ev.time = ctx.now();
      ev.a = static_cast<std::int64_t>(s);
      ev.b = shards[s].m_lo;
      ev.c = shards[s].m_hi;
      ev.d = pc.shard_score_evals[s];
      ev.timing = shards[s].scan_nanos;
      tracer->record(ev);
    }
  }

  // Fairness preemption (extension): the main loop exhausted every
  // placeable candidate, so a schedulable job left with runnable tasks
  // provably fits nowhere. If the furthest-below one trails fair share
  // badly, kill the newest task of the most over-share job (one per pass).
  if (!config_.preempt_for_fairness) return;
  const sim::JobView* starving = nullptr;
  double min_share = 0;
  int schedulable = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].runnable_tasks - placed_from[i] <= 0) continue;
    schedulable++;
    sim::JobView adjusted = jobs[i];
    adjusted.current_alloc += extra[i];
    const double share =
        sched::job_share(config_.fairness_policy, adjusted,
                         ctx.cluster_capacity(), config_.slot_mem);
    if (starving == nullptr || share < min_share) {
      starving = &jobs[i];
      min_share = share;
    }
  }
  if (starving == nullptr || jobs.size() < 2) return;
  const double fair = 1.0 / static_cast<double>(jobs.size());
  if (fair - min_share < config_.preemption_deficit) return;

  const auto running = ctx.running_tasks();
  const sim::RunningTaskView* victim = nullptr;
  double victim_share = fair;
  std::unordered_map<sim::JobId, double> shares;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    sim::JobView adjusted = jobs[i];
    adjusted.current_alloc += extra[i];
    shares[jobs[i].id] =
        sched::job_share(config_.fairness_policy, adjusted,
                         ctx.cluster_capacity(), config_.slot_mem);
  }
  for (const auto& t : running) {
    if (t.job == starving->id) continue;
    const auto it = shares.find(t.job);
    if (it == shares.end() || it->second <= fair) continue;
    // Most over-share job first; newest task within it (least work lost).
    if (victim == nullptr || it->second > victim_share ||
        (it->second == victim_share && t.started > victim->started)) {
      victim = &t;
      victim_share = it->second;
    }
  }
  if (victim != nullptr && ctx.preempt(victim->uid)) {
    stats_.preemptions++;
  }
}

}  // namespace tetris::core
