#include "core/score_kernel.h"

#include <algorithm>
#include <cmath>

#include "sched/common.h"

// ISA gate: exactly one of the three paths below is compiled in. The
// build system passes -mavx2 / -msse4.2 for this file alone when the
// toolchain supports it (see src/core/CMakeLists.txt), or defines
// TETRIS_SIMD_FORCE_SCALAR to pin the portable path — which is also what
// non-x86 targets get, since neither __AVX2__ nor __SSE4_2__ is set.
#if !defined(TETRIS_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#define TETRIS_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(TETRIS_SIMD_FORCE_SCALAR) && defined(__SSE4_2__)
#define TETRIS_SIMD_SSE 1
#include <immintrin.h>
#endif

namespace tetris::core::simd {

namespace {

// The reference lane: literally the scalar path's op sequence on one
// gathered cell. The vector paths below must reproduce this bit for bit;
// partial blocks and non-vectorized alignment kinds call it directly.
void score_lane_scalar(AlignmentKind kind, double remote_penalty,
                       bool only_cpu_mem, const ScoreBlock& in, std::size_t l,
                       ScoreOut* out) {
  Resources d, av, cap;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    d.at(r) = in.demand[r][l];
    av.at(r) = in.avail[r][l];
    cap.at(r) = in.cap[r][l];
  }
  const bool fit =
      only_cpu_mem ? sched::fits_cpu_mem(d, av) : d.fits_within(av);
  out->fit[l] = fit ? 1 : 0;
  double a =
      alignment_score(kind, d.normalized_by(cap), av.normalized_by(cap));
  a *= 1.0 - remote_penalty * (1.0 - in.local_fraction[l]);
  out->score[l] = a;
}

}  // namespace

#if defined(TETRIS_SIMD_AVX2)

int lane_width() { return 4; }
std::string_view isa_name() { return "avx2"; }

namespace {

// fits_within, four lanes: demand <= avail + 1e-9 * max(1, |avail|) in
// every dimension. |x| clears the sign bit; max/cmp/and are exact, so
// each lane equals the scalar predicate.
__m256d fit_mask_all(const ScoreBlock& in) {
  const __m256d eps = _mm256_set1_pd(1e-9);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d fit = _mm256_cmp_pd(one, one, _CMP_EQ_OQ);  // all-ones
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const __m256d a = _mm256_load_pd(in.avail[r]);
    const __m256d d = _mm256_load_pd(in.demand[r]);
    const __m256d slack =
        _mm256_mul_pd(eps, _mm256_max_pd(one, _mm256_and_pd(a, abs_mask)));
    fit = _mm256_and_pd(fit, _mm256_cmp_pd(d, _mm256_add_pd(a, slack),
                                           _CMP_LE_OQ));
  }
  return fit;
}

// fits_cpu_mem, four lanes: cpu within (1+1e-9) relative + 1e-9 absolute
// slack, mem within (1+1e-9) relative + 1 unit absolute slack.
__m256d fit_mask_cpu_mem(const ScoreBlock& in) {
  const __m256d rel = _mm256_set1_pd(1.0 + 1e-9);
  const __m256d cpu_thr = _mm256_add_pd(
      _mm256_mul_pd(_mm256_load_pd(in.avail[0]), rel), _mm256_set1_pd(1e-9));
  const __m256d mem_thr = _mm256_add_pd(
      _mm256_mul_pd(_mm256_load_pd(in.avail[1]), rel), _mm256_set1_pd(1.0));
  return _mm256_and_pd(
      _mm256_cmp_pd(_mm256_load_pd(in.demand[0]), cpu_thr, _CMP_LE_OQ),
      _mm256_cmp_pd(_mm256_load_pd(in.demand[1]), mem_thr, _CMP_LE_OQ));
}

}  // namespace

void score_block(AlignmentKind kind, double remote_penalty, bool only_cpu_mem,
                 const ScoreBlock& in, ScoreOut* out, long* simd_blocks,
                 long* scalar_tail_evals) {
  if (kind != AlignmentKind::kCosine || in.n != 4) {
    for (std::size_t l = 0; l < in.n; ++l)
      score_lane_scalar(kind, remote_penalty, only_cpu_mem, in, l, out);
    *scalar_tail_evals += static_cast<long>(in.n);
    return;
  }
  const __m256d fit = only_cpu_mem ? fit_mask_cpu_mem(in) : fit_mask_all(in);
  // Cosine alignment: s = sum_r (d_r/c_r) * (a_r/c_r) accumulated in
  // resource order with explicit mul/add (no FMA), zero where c_r <= 0 —
  // the and with the c > 0 mask blends the division's junk lanes to +0.0,
  // matching normalized_by's ternary.
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = zero;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const __m256d c = _mm256_load_pd(in.cap[r]);
    const __m256d live = _mm256_cmp_pd(c, zero, _CMP_GT_OQ);
    const __m256d dn =
        _mm256_and_pd(_mm256_div_pd(_mm256_load_pd(in.demand[r]), c), live);
    const __m256d an =
        _mm256_and_pd(_mm256_div_pd(_mm256_load_pd(in.avail[r]), c), live);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(dn, an));
  }
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d pen = _mm256_sub_pd(
      one, _mm256_mul_pd(_mm256_set1_pd(remote_penalty),
                         _mm256_sub_pd(one, _mm256_load_pd(in.local_fraction))));
  _mm256_store_pd(out->score, _mm256_mul_pd(acc, pen));
  const int bits = _mm256_movemask_pd(fit);
  for (int l = 0; l < 4; ++l) out->fit[l] = (bits >> l) & 1;
  ++*simd_blocks;
}

void fits_cpu_mem_mask(const util::ResourcePlanes& demand,
                       const Resources& bound, unsigned char* out) {
  // Thresholds depend only on `bound`: one scalar evaluation of the exact
  // predicate expressions, broadcast to every lane.
  const __m256d cpu_thr =
      _mm256_set1_pd(bound[Resource::kCpu] * (1 + 1e-9) + 1e-9);
  const __m256d mem_thr =
      _mm256_set1_pd(bound[Resource::kMem] * (1 + 1e-9) + 1);
  const double* dc = demand.plane(0);
  const double* dm = demand.plane(1);
  for (std::size_t i = 0; i < demand.padded_lanes(); i += 4) {
    const __m256d ok = _mm256_and_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(dc + i), cpu_thr, _CMP_LE_OQ),
        _mm256_cmp_pd(_mm256_loadu_pd(dm + i), mem_thr, _CMP_LE_OQ));
    const int bits = _mm256_movemask_pd(ok);
    for (int l = 0; l < 4; ++l)
      out[i + static_cast<std::size_t>(l)] =
          static_cast<unsigned char>((bits >> l) & 1);
  }
}

Resources cwise_max_lanes(const util::ResourcePlanes& planes,
                          std::size_t lanes) {
  Resources out;  // zero accumulator, like the scalar fold's Resources{}
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const double* p = planes.plane(r);
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= lanes; i += 4)
      acc = _mm256_max_pd(acc, _mm256_loadu_pd(p + i));
    alignas(32) double v[4];
    _mm256_store_pd(v, acc);
    double s = std::max(std::max(v[0], v[1]), std::max(v[2], v[3]));
    // Lanes past `lanes` may be live non-machine lanes (rack uplinks),
    // not padding: never read them.
    for (; i < lanes; ++i) s = std::max(s, p[i]);
    out.at(r) = s;
  }
  return out;
}

#elif defined(TETRIS_SIMD_SSE)

int lane_width() { return 2; }
std::string_view isa_name() { return "sse4.2"; }

namespace {

__m128d fit_mask_all(const ScoreBlock& in) {
  const __m128d eps = _mm_set1_pd(1e-9);
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d abs_mask =
      _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
  __m128d fit = _mm_cmpeq_pd(one, one);  // all-ones
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const __m128d a = _mm_load_pd(in.avail[r]);
    const __m128d d = _mm_load_pd(in.demand[r]);
    const __m128d slack =
        _mm_mul_pd(eps, _mm_max_pd(one, _mm_and_pd(a, abs_mask)));
    fit = _mm_and_pd(fit, _mm_cmple_pd(d, _mm_add_pd(a, slack)));
  }
  return fit;
}

__m128d fit_mask_cpu_mem(const ScoreBlock& in) {
  const __m128d rel = _mm_set1_pd(1.0 + 1e-9);
  const __m128d cpu_thr = _mm_add_pd(
      _mm_mul_pd(_mm_load_pd(in.avail[0]), rel), _mm_set1_pd(1e-9));
  const __m128d mem_thr = _mm_add_pd(
      _mm_mul_pd(_mm_load_pd(in.avail[1]), rel), _mm_set1_pd(1.0));
  return _mm_and_pd(_mm_cmple_pd(_mm_load_pd(in.demand[0]), cpu_thr),
                    _mm_cmple_pd(_mm_load_pd(in.demand[1]), mem_thr));
}

}  // namespace

void score_block(AlignmentKind kind, double remote_penalty, bool only_cpu_mem,
                 const ScoreBlock& in, ScoreOut* out, long* simd_blocks,
                 long* scalar_tail_evals) {
  if (kind != AlignmentKind::kCosine || in.n != 2) {
    for (std::size_t l = 0; l < in.n; ++l)
      score_lane_scalar(kind, remote_penalty, only_cpu_mem, in, l, out);
    *scalar_tail_evals += static_cast<long>(in.n);
    return;
  }
  const __m128d fit = only_cpu_mem ? fit_mask_cpu_mem(in) : fit_mask_all(in);
  const __m128d zero = _mm_setzero_pd();
  __m128d acc = zero;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const __m128d c = _mm_load_pd(in.cap[r]);
    const __m128d live = _mm_cmpgt_pd(c, zero);
    const __m128d dn =
        _mm_and_pd(_mm_div_pd(_mm_load_pd(in.demand[r]), c), live);
    const __m128d an =
        _mm_and_pd(_mm_div_pd(_mm_load_pd(in.avail[r]), c), live);
    acc = _mm_add_pd(acc, _mm_mul_pd(dn, an));
  }
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d pen = _mm_sub_pd(
      one, _mm_mul_pd(_mm_set1_pd(remote_penalty),
                      _mm_sub_pd(one, _mm_load_pd(in.local_fraction))));
  _mm_store_pd(out->score, _mm_mul_pd(acc, pen));
  const int bits = _mm_movemask_pd(fit);
  for (int l = 0; l < 2; ++l) out->fit[l] = (bits >> l) & 1;
  ++*simd_blocks;
}

void fits_cpu_mem_mask(const util::ResourcePlanes& demand,
                       const Resources& bound, unsigned char* out) {
  const __m128d cpu_thr =
      _mm_set1_pd(bound[Resource::kCpu] * (1 + 1e-9) + 1e-9);
  const __m128d mem_thr =
      _mm_set1_pd(bound[Resource::kMem] * (1 + 1e-9) + 1);
  const double* dc = demand.plane(0);
  const double* dm = demand.plane(1);
  for (std::size_t i = 0; i < demand.padded_lanes(); i += 2) {
    const __m128d ok =
        _mm_and_pd(_mm_cmple_pd(_mm_loadu_pd(dc + i), cpu_thr),
                   _mm_cmple_pd(_mm_loadu_pd(dm + i), mem_thr));
    const int bits = _mm_movemask_pd(ok);
    out[i] = static_cast<unsigned char>(bits & 1);
    out[i + 1] = static_cast<unsigned char>((bits >> 1) & 1);
  }
}

Resources cwise_max_lanes(const util::ResourcePlanes& planes,
                          std::size_t lanes) {
  Resources out;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const double* p = planes.plane(r);
    __m128d acc = _mm_setzero_pd();
    std::size_t i = 0;
    for (; i + 2 <= lanes; i += 2) acc = _mm_max_pd(acc, _mm_loadu_pd(p + i));
    alignas(16) double v[2];
    _mm_store_pd(v, acc);
    double s = std::max(v[0], v[1]);
    for (; i < lanes; ++i) s = std::max(s, p[i]);
    out.at(r) = s;
  }
  return out;
}

#else  // portable scalar build

int lane_width() { return 1; }
std::string_view isa_name() { return "scalar"; }

void score_block(AlignmentKind kind, double remote_penalty, bool only_cpu_mem,
                 const ScoreBlock& in, ScoreOut* out, long* /*simd_blocks*/,
                 long* scalar_tail_evals) {
  for (std::size_t l = 0; l < in.n; ++l)
    score_lane_scalar(kind, remote_penalty, only_cpu_mem, in, l, out);
  *scalar_tail_evals += static_cast<long>(in.n);
}

void fits_cpu_mem_mask(const util::ResourcePlanes& demand,
                       const Resources& bound, unsigned char* out) {
  const double cpu_thr = bound[Resource::kCpu] * (1 + 1e-9) + 1e-9;
  const double mem_thr = bound[Resource::kMem] * (1 + 1e-9) + 1;
  const double* dc = demand.plane(0);
  const double* dm = demand.plane(1);
  for (std::size_t i = 0; i < demand.padded_lanes(); ++i)
    out[i] = (dc[i] <= cpu_thr && dm[i] <= mem_thr) ? 1 : 0;
}

Resources cwise_max_lanes(const util::ResourcePlanes& planes,
                          std::size_t lanes) {
  Resources out;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const double* p = planes.plane(r);
    double s = 0.0;
    for (std::size_t i = 0; i < lanes; ++i) s = std::max(s, p[i]);
    out.at(r) = s;
  }
  return out;
}

#endif

}  // namespace tetris::core::simd
