#include "core/alignment.h"

#include <algorithm>

namespace tetris::core {

std::string_view alignment_name(AlignmentKind kind) {
  switch (kind) {
    case AlignmentKind::kCosine:
      return "cosine";
    case AlignmentKind::kL2NormDiff:
      return "l2-norm-diff";
    case AlignmentKind::kL2NormRatio:
      return "l2-norm-ratio";
    case AlignmentKind::kFfdProd:
      return "ffd-prod";
    case AlignmentKind::kFfdSum:
      return "ffd-sum";
  }
  return "?";
}

double alignment_score(AlignmentKind kind, const Resources& demand_norm,
                       const Resources& avail_norm) {
  switch (kind) {
    case AlignmentKind::kCosine:
      return demand_norm.dot(avail_norm);
    case AlignmentKind::kL2NormDiff: {
      const Resources diff = demand_norm - avail_norm;
      return -diff.dot(diff);
    }
    case AlignmentKind::kL2NormRatio: {
      double s = 0;
      for (Resource r : all_resources()) {
        const double d = demand_norm[r];
        if (d <= 0) continue;
        // Admission ran first, so avail >= demand; the floor only guards
        // against degenerate zero-capacity dimensions.
        const double a = std::max(avail_norm[r], 1e-9);
        const double ratio = d / a;
        s += ratio * ratio;
      }
      return -s;
    }
    case AlignmentKind::kFfdProd: {
      double p = 1;
      bool any = false;
      for (Resource r : all_resources()) {
        if (demand_norm[r] > 0) {
          p *= demand_norm[r];
          any = true;
        }
      }
      return any ? p : 0;
    }
    case AlignmentKind::kFfdSum:
      return demand_norm.sum();
  }
  return 0;
}

}  // namespace tetris::core
