// Demand estimation (paper §4.1).
//
// Tetris learns tasks' peak demands rather than asking users:
//   1. Recurring jobs (same template on new data) reuse statistics from
//      prior runs of the template.
//   2. Tasks in a phase perform the same computation on different
//      partitions, so once the first few tasks of a phase complete, their
//      measured statistics estimate the rest.
//   3. With neither source available, demands are over-estimated: an
//      over-estimate only idles resources (which the tracker reclaims),
//      while an under-estimate slows tasks down.
//
// This is the reference component; the simulator models the same behaviour
// via EstimationMode::kLearnedProfile so the fast path stays allocation-
// free (see sim/config.h).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "sim/scheduler.h"
#include "util/resources.h"
#include "util/stats.h"

namespace tetris::core {

enum class EstimateSource {
  kPhaseProfile,     // measured tasks of this very phase
  kTemplateHistory,  // prior runs of the recurring job
  kOverestimate,     // no data: padded default
};

struct Estimate {
  Resources demand;
  double duration = 0;
  EstimateSource source = EstimateSource::kOverestimate;
};

struct EstimatorConfig {
  // Multiplier applied to the caller-provided default when no measurements
  // exist (over-estimation is the safe direction).
  double overestimate_factor = 1.4;
  // Measurements needed before a phase profile / template history is
  // trusted.
  int min_samples = 2;
  // Safety headroom on learned means, in standard deviations (demands of a
  // phase are statistically similar but not identical).
  double headroom_stdevs = 0.5;
};

class DemandEstimator {
 public:
  explicit DemandEstimator(EstimatorConfig config = {});

  // Feeds one completed task's measured peak usage and runtime.
  void observe(const sim::TaskReport& report);

  // Estimates the demand of a pending task of (job, stage); template_id is
  // -1 for non-recurring jobs. `default_demand`/`default_duration` come
  // from static knowledge (input sizes are known before execution).
  Estimate estimate(sim::JobId job, int stage, int template_id,
                    const Resources& default_demand,
                    double default_duration) const;

  long observations() const { return observations_; }

 private:
  struct Stats {
    std::array<RunningStats, kNumResources> demand;
    RunningStats duration;
    std::size_t count() const { return duration.count(); }
  };

  Estimate from_stats(const Stats& stats, EstimateSource source) const;

  static std::uint64_t phase_key(sim::JobId job, int stage) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(job))
            << 32) |
           static_cast<std::uint32_t>(stage);
  }
  static std::uint64_t template_key(int template_id, int stage) {
    // Tag bit 63 separates the template keyspace from the phase keyspace.
    return (1ull << 63) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                template_id))
            << 32) |
           static_cast<std::uint32_t>(stage);
  }

  EstimatorConfig config_;
  std::unordered_map<std::uint64_t, Stats> stats_;
  long observations_ = 0;
};

}  // namespace tetris::core
