#include "core/demand_estimator.h"

#include <stdexcept>

namespace tetris::core {

DemandEstimator::DemandEstimator(EstimatorConfig config) : config_(config) {
  if (config_.overestimate_factor < 1.0)
    throw std::invalid_argument(
        "overestimate_factor below 1 under-estimates, the unsafe direction");
  if (config_.min_samples < 1)
    throw std::invalid_argument("min_samples must be >= 1");
  if (config_.headroom_stdevs < 0)
    throw std::invalid_argument("headroom_stdevs must be >= 0");
}

void DemandEstimator::observe(const sim::TaskReport& report) {
  const auto feed = [&](Stats& s) {
    for (std::size_t i = 0; i < kNumResources; ++i)
      s.demand[i].add(report.peak_usage.at(i));
    s.duration.add(report.duration);
  };
  feed(stats_[phase_key(report.job, report.stage)]);
  if (report.template_id >= 0)
    feed(stats_[template_key(report.template_id, report.stage)]);
  ++observations_;
}

Estimate DemandEstimator::from_stats(const Stats& stats,
                                     EstimateSource source) const {
  Estimate e;
  e.source = source;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    e.demand.at(i) = stats.demand[i].mean() +
                     config_.headroom_stdevs * stats.demand[i].stdev();
  }
  e.duration = stats.duration.mean() +
               config_.headroom_stdevs * stats.duration.stdev();
  return e;
}

Estimate DemandEstimator::estimate(sim::JobId job, int stage, int template_id,
                                   const Resources& default_demand,
                                   double default_duration) const {
  // Freshest first: measured tasks of this very phase.
  if (const auto it = stats_.find(phase_key(job, stage));
      it != stats_.end() &&
      it->second.count() >= static_cast<std::size_t>(config_.min_samples)) {
    return from_stats(it->second, EstimateSource::kPhaseProfile);
  }
  if (template_id >= 0) {
    if (const auto it = stats_.find(template_key(template_id, stage));
        it != stats_.end() &&
        it->second.count() >= static_cast<std::size_t>(config_.min_samples)) {
      return from_stats(it->second, EstimateSource::kTemplateHistory);
    }
  }
  Estimate e;
  e.source = EstimateSource::kOverestimate;
  e.demand = default_demand * config_.overestimate_factor;
  e.duration = default_duration * config_.overestimate_factor;
  return e;
}

}  // namespace tetris::core
