#include "sched/drf_scheduler.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "sched/common.h"
#include "sched/fairness.h"

namespace tetris::sched {

void DrfScheduler::schedule(sim::SchedulerContext& ctx) {
  auto jobs = ctx.active_jobs();
  auto groups = ctx.runnable_groups();
  if (jobs.empty() || groups.empty()) return;

  std::unordered_map<sim::JobId, std::vector<std::size_t>> groups_of;
  for (std::size_t g = 0; g < groups.size(); ++g)
    groups_of[groups[g].ref.job].push_back(g);

  const auto fits = [&](const sim::Probe& p) {
    const Resources avail = ctx.available(p.machine);
    for (Resource r : config_.dims) {
      if (p.demand[r] > avail[r] * (1 + 1e-9) + 1e-9) return false;
    }
    return true;
  };

  std::vector<char> blocked(groups.size(), 0);
  std::vector<Resources> extra(jobs.size());

  while (true) {
    // Ascending dominant share: lowest share is offered resources first.
    std::vector<std::pair<double, std::size_t>> order;
    order.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      order.emplace_back(
          dominant_share(jobs[i].current_alloc + extra[i],
                         ctx.cluster_capacity(), config_.dims),
          i);
    }
    std::sort(order.begin(), order.end(), [&](const auto& x, const auto& y) {
      if (x.first != y.first) return x.first < y.first;
      return jobs[x.second].id < jobs[y.second].id;
    });

    bool placed = false;
    for (const auto& [share, ji] : order) {
      auto it = groups_of.find(jobs[ji].id);
      if (it == groups_of.end()) continue;
      for (auto gi_it = it->second.begin(); gi_it != it->second.end();) {
        const std::size_t gi = *gi_it;
        if (groups[gi].runnable <= 0) {
          gi_it = it->second.erase(gi_it);
          continue;
        }
        if (blocked[gi]) {
          ++gi_it;
          continue;
        }
        auto best = best_machine_for_group(ctx, groups[gi], fits,
                                           cpu_mem_prefilter(groups[gi]));
        if (best && ctx.place(*best)) {
          groups[gi].runnable--;
          extra[ji] += best->demand;
          placed = true;
          break;
        }
        blocked[gi] = 1;
        ++gi_it;
      }
      if (placed) break;
    }
    if (!placed) break;
  }
}

}  // namespace tetris::sched
