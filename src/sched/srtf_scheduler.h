// Multi-resource Shortest-Remaining-Time-First (paper §3.3.1, evaluated
// standalone in the §5.3.1 ablation).
//
// Jobs are served strictly in ascending order of remaining work — the sum
// over remaining tasks of (capacity-normalized demand x estimated
// duration). Admission checks every resource (no over-allocation), but no
// packing: within the chosen job, tasks go to the first machines they fit,
// preferring locality. Greedy job ordering fragments resources, which is
// exactly why the paper combines SRTF with the alignment score.
#pragma once

#include <string>

#include "sim/scheduler.h"

namespace tetris::sched {

class SrtfScheduler final : public sim::Scheduler {
 public:
  std::string name() const override { return "srtf"; }
  void schedule(sim::SchedulerContext& ctx) override;
};

}  // namespace tetris::sched
