// Small helpers shared across scheduler implementations: admission
// predicates and machine scans.
#pragma once

#include <functional>
#include <optional>

#include "sim/scheduler.h"
#include "util/resources.h"

namespace tetris::sched {

// CPU + memory admission only — what today's schedulers check (§1): disk
// and network are ignored, which is where over-allocation comes from.
bool fits_cpu_mem(const Resources& demand, const Resources& avail);

// All six dimensions at the host.
bool fits_all_local(const Resources& demand, const Resources& avail);

// The probe's remote legs fit at each source machine (Tetris's §3.2 check
// that remote reads have disk-read and net-out bandwidth at the sources).
bool remote_legs_fit(const sim::SchedulerContext& ctx, const sim::Probe& p);

// Scans every machine for the best placement of `group` under the
// admission predicate `fits`; "best" is the fitting probe with the highest
// local fraction (earliest machine on ties). Returns nullopt when no
// machine admits the group. `prefilter`, when set, cheaply rejects
// machines by their available vector before the (costlier) probe; cpu/mem
// demands are placement-independent so prefiltering on them is exact.
using MachinePrefilter = std::function<bool(const Resources& avail)>;

std::optional<sim::Probe> best_machine_for_group(
    sim::SchedulerContext& ctx, const sim::GroupView& group,
    const std::function<bool(const sim::Probe&)>& fits,
    const MachinePrefilter& prefilter = {});

// Standard prefilter: group's estimated cpu+mem must fit.
MachinePrefilter cpu_mem_prefilter(const sim::GroupView& group);

}  // namespace tetris::sched
