// Slot-based fair scheduler — the "Fair scheduler" / "Capacity scheduler"
// baseline (paper §2.1, §5.1).
//
// Resources are divided into slots defined on memory alone (the paper uses
// 2 GB slots "similar to the Facebook cluster"); free slots are offered
// greedily to the job that occupies the fewest slots relative to its fair
// share. Placement prefers machines holding the task's input (delay-
// scheduling-style locality preference). CPU, disk and network demands are
// never consulted — the scheduler will happily stack disk- and network-
// bound tasks on one machine, which is exactly the over-allocation
// behaviour the paper measures against.
#pragma once

#include <string>

#include "sim/scheduler.h"
#include "util/units.h"

namespace tetris::sched {

struct SlotSchedulerConfig {
  double slot_mem = 2 * kGB;
  // Display name: the Fair and Capacity schedulers are both slot-based
  // fair allocators at the granularity the paper evaluates.
  std::string name = "slot-fair";
};

class SlotScheduler final : public sim::Scheduler {
 public:
  explicit SlotScheduler(SlotSchedulerConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return config_.name; }
  void schedule(sim::SchedulerContext& ctx) override;

 private:
  SlotSchedulerConfig config_;
};

}  // namespace tetris::sched
