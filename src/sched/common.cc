#include "sched/common.h"

#include "trace/event.h"
#include "trace/recorder.h"

namespace tetris::sched {

bool fits_cpu_mem(const Resources& demand, const Resources& avail) {
  constexpr double kSlack = 1e-9;
  return demand[Resource::kCpu] <=
             avail[Resource::kCpu] * (1 + kSlack) + kSlack &&
         demand[Resource::kMem] <= avail[Resource::kMem] * (1 + kSlack) + 1;
}

bool fits_all_local(const Resources& demand, const Resources& avail) {
  return demand.fits_within(avail);
}

bool remote_legs_fit(const sim::SchedulerContext& ctx, const sim::Probe& p) {
  for (const auto& leg : p.remote) {
    const Resources avail = ctx.available(leg.machine);
    if (leg.disk_read > avail[Resource::kDiskRead] * (1 + 1e-9) ||
        leg.net_out > avail[Resource::kNetOut] * (1 + 1e-9) ||
        leg.net_in > avail[Resource::kNetIn] * (1 + 1e-9)) {
      return false;
    }
  }
  return true;
}

std::optional<sim::Probe> best_machine_for_group(
    sim::SchedulerContext& ctx, const sim::GroupView& group,
    const std::function<bool(const sim::Probe&)>& fits,
    const MachinePrefilter& prefilter) {
  std::optional<sim::Probe> best;
  int scanned = 0;
  for (int m = 0; m < ctx.num_machines(); ++m) {
    if (!ctx.machine_up(m)) continue;  // failed and not yet recovered
    if (!ctx.constraints_admit(group.ref, m)) continue;  // can't legally host
    if (prefilter && !prefilter(ctx.available(m))) continue;
    scanned++;
    sim::Probe p = ctx.probe(group.ref, m);
    if (!p.valid || !fits(p)) continue;
    if (!best || p.local_fraction > best->local_fraction) {
      best = std::move(p);
      if (best->local_fraction >= 1.0) break;
    }
  }
  if (auto* tracer = ctx.tracer()) {
    trace::Event ev;
    ev.kind = trace::EventKind::kGroupScan;
    ev.time = ctx.now();
    ev.a = group.ref.job;
    ev.b = group.ref.stage;
    ev.c = best ? best->machine : -1;
    ev.d = scanned;
    ev.x = best ? best->local_fraction : 0.0;
    tracer->record(ev);
  }
  return best;
}

MachinePrefilter cpu_mem_prefilter(const sim::GroupView& group) {
  const Resources demand = group.est_demand;
  return [demand](const Resources& avail) {
    return fits_cpu_mem(demand, avail);
  };
}

}  // namespace tetris::sched
