#include "sched/fairness.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace tetris::sched {

double dominant_share(const Resources& alloc, const Resources& capacity,
                      const std::vector<Resource>& dims) {
  double share = 0;
  for (Resource r : dims) {
    if (capacity[r] > 0) share = std::max(share, alloc[r] / capacity[r]);
  }
  return share;
}

double job_share(FairnessPolicy policy, const sim::JobView& job,
                 const Resources& cluster_capacity, double slot_mem) {
  switch (policy) {
    case FairnessPolicy::kSlots: {
      const double total_slots =
          slot_mem > 0 ? cluster_capacity[Resource::kMem] / slot_mem : 0;
      if (total_slots <= 0) return 0;
      // Occupied slots approximated by memory allocation in slot units.
      const double occupied =
          std::ceil(job.current_alloc[Resource::kMem] / slot_mem);
      return occupied / total_slots;
    }
    case FairnessPolicy::kDrf:
      return dominant_share(job.current_alloc, cluster_capacity,
                            {Resource::kCpu, Resource::kMem});
  }
  return 0;
}

std::vector<std::size_t> furthest_from_share_order(
    FairnessPolicy policy, const std::vector<sim::JobView>& jobs,
    const Resources& cluster_capacity, double slot_mem) {
  std::vector<std::pair<double, std::size_t>> keyed;
  keyed.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    keyed.emplace_back(job_share(policy, jobs[i], cluster_capacity, slot_mem),
                       i);
  }
  std::sort(keyed.begin(), keyed.end(), [&](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first < y.first;
    const auto& jx = jobs[x.second];
    const auto& jy = jobs[y.second];
    if (jx.arrival != jy.arrival) return jx.arrival < jy.arrival;
    return jx.id < jy.id;
  });
  std::vector<std::size_t> order;
  order.reserve(keyed.size());
  for (const auto& [share, i] : keyed) order.push_back(i);
  return order;
}

std::vector<int> furthest_queues_order(FairnessPolicy policy,
                                       const std::vector<sim::JobView>& jobs,
                                       const Resources& cluster_capacity,
                                       double slot_mem) {
  // Aggregate allocations per queue into one synthetic "job" per queue,
  // then reuse the per-job share computation.
  std::map<int, sim::JobView> queues;
  for (const auto& j : jobs) {
    auto [it, inserted] = queues.try_emplace(j.queue);
    it->second.queue = j.queue;
    it->second.current_alloc += j.current_alloc;
  }
  std::vector<std::pair<double, int>> keyed;
  keyed.reserve(queues.size());
  for (const auto& [q, agg] : queues) {
    keyed.emplace_back(job_share(policy, agg, cluster_capacity, slot_mem), q);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<int> order;
  order.reserve(keyed.size());
  for (const auto& [share, q] : keyed) order.push_back(q);
  return order;
}

}  // namespace tetris::sched
