#include "sched/srtf_scheduler.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "sched/common.h"

namespace tetris::sched {

void SrtfScheduler::schedule(sim::SchedulerContext& ctx) {
  auto jobs = ctx.active_jobs();
  auto groups = ctx.runnable_groups();
  if (jobs.empty() || groups.empty()) return;

  std::sort(jobs.begin(), jobs.end(), [](const auto& x, const auto& y) {
    if (x.remaining_work != y.remaining_work)
      return x.remaining_work < y.remaining_work;
    return x.id < y.id;
  });

  std::unordered_map<sim::JobId, std::vector<std::size_t>> groups_of;
  for (std::size_t g = 0; g < groups.size(); ++g)
    groups_of[groups[g].ref.job].push_back(g);

  const auto fits = [&](const sim::Probe& p) {
    return fits_all_local(p.demand, ctx.available(p.machine)) &&
           remote_legs_fit(ctx, p);
  };

  // Strict SRTF: drain as much of the shortest job as fits, then move on.
  for (const auto& job : jobs) {
    auto it = groups_of.find(job.id);
    if (it == groups_of.end()) continue;
    for (std::size_t gi : it->second) {
      while (groups[gi].runnable > 0) {
        auto best = best_machine_for_group(ctx, groups[gi], fits,
                                           cpu_mem_prefilter(groups[gi]));
        if (!best || !ctx.place(*best)) break;
        groups[gi].runnable--;
      }
    }
  }
}

}  // namespace tetris::sched
