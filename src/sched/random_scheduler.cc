#include "sched/random_scheduler.h"

#include <vector>

#include "sched/common.h"

namespace tetris::sched {

void RandomScheduler::schedule(sim::SchedulerContext& ctx) {
  auto groups = ctx.runnable_groups();
  if (groups.empty()) return;

  const auto fits = [&](const sim::Probe& p) {
    return fits_all_local(p.demand, ctx.available(p.machine)) &&
           remote_legs_fit(ctx, p);
  };

  std::vector<char> blocked(groups.size(), 0);
  std::size_t unblocked = groups.size();
  while (unblocked > 0) {
    // Pick a random unblocked group.
    std::size_t pick = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(groups.size()) - 1));
    while (blocked[pick]) pick = (pick + 1) % groups.size();
    auto& group = groups[pick];
    if (group.runnable <= 0) {
      blocked[pick] = 1;
      unblocked--;
      continue;
    }
    // Random fitting machine: probe machines starting at a random offset.
    const int n = ctx.num_machines();
    const int start = static_cast<int>(rng_.uniform_int(0, n - 1));
    bool placed = false;
    for (int k = 0; k < n; ++k) {
      const int m = (start + k) % n;
      sim::Probe p = ctx.probe(group.ref, m);
      if (!p.valid || !fits(p)) continue;
      if (ctx.place(p)) {
        group.runnable--;
        placed = true;
        break;
      }
    }
    if (!placed) {
      blocked[pick] = 1;
      unblocked--;
    }
  }
}

}  // namespace tetris::sched
