#include "sched/constrained_random_scheduler.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "sched/common.h"

namespace tetris::sched {

void ConstrainedRandomScheduler::schedule(sim::SchedulerContext& ctx) {
  auto groups = ctx.runnable_groups();
  if (groups.empty()) return;

  const auto fits = [&](const sim::Probe& p) {
    return fits_all_local(p.demand, ctx.available(p.machine)) &&
           remote_legs_fit(ctx, p);
  };

  std::vector<int> feasible;
  std::vector<char> blocked(groups.size(), 0);
  std::size_t unblocked = groups.size();
  while (unblocked > 0) {
    // Pick a random unblocked group, like the unconstrained baseline.
    std::size_t pick = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(groups.size()) - 1));
    while (blocked[pick]) pick = (pick + 1) % groups.size();
    auto& group = groups[pick];
    if (group.runnable <= 0) {
      blocked[pick] = 1;
      unblocked--;
      continue;
    }
    // Feasible set for this group right now. Rebuilt per attempt because
    // anti-affinity shrinks it as the group's own placements land.
    feasible.clear();
    for (int m = 0; m < ctx.num_machines(); ++m) {
      if (!ctx.machine_up(m)) continue;
      if (!ctx.constraints_admit(group.ref, m)) continue;
      feasible.push_back(m);
    }
    // Uniform sampling without replacement (partial Fisher–Yates): each
    // legal machine is equally likely to be tried first, regardless of id.
    bool placed = false;
    std::size_t remaining = feasible.size();
    while (remaining > 0) {
      const std::size_t j = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(remaining) - 1));
      const int m = feasible[j];
      feasible[j] = feasible[remaining - 1];
      remaining--;
      sim::Probe p = ctx.probe(group.ref, m);
      if (!p.valid || !fits(p)) continue;
      if (ctx.place(p)) {
        group.runnable--;
        placed = true;
        break;
      }
    }
    if (!placed) {
      blocked[pick] = 1;
      unblocked--;
    }
  }
}

}  // namespace tetris::sched
