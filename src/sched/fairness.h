// Fairness bookkeeping shared by the baseline schedulers and Tetris's
// fairness knob (§3.4). A large class of fair schedulers share one
// operation: "offer the next available resource to the job that is
// currently furthest from its fair share". These helpers compute the
// per-job share under the two policies the paper evaluates and produce the
// furthest-from-share ordering.
#pragma once

#include <vector>

#include "sim/scheduler.h"
#include "util/resources.h"

namespace tetris::sched {

enum class FairnessPolicy {
  // Slot fairness: share = fraction of the cluster's slots a job occupies
  // (slots defined on memory, as in Hadoop's Fair/Capacity schedulers).
  kSlots,
  // Dominant Resource Fairness: share = max over CPU and memory of the
  // job's allocation relative to cluster capacity (deployed DRF considers
  // only CPU and memory, §6).
  kDrf,
};

// Current share of one job in [0, 1] under `policy`, given cluster
// capacity. For kSlots, `slot_mem` is the memory quantum of one slot.
double job_share(FairnessPolicy policy, const sim::JobView& job,
                 const Resources& cluster_capacity, double slot_mem);

// Orders jobs by how far each is below its (equal) fair share, furthest
// first. With equal entitlements this is ascending share order; ties break
// by arrival then id for determinism. Returns indices into `jobs`.
std::vector<std::size_t> furthest_from_share_order(
    FairnessPolicy policy, const std::vector<sim::JobView>& jobs,
    const Resources& cluster_capacity, double slot_mem);

// Dominant share over a restricted dimension set (used by DRF variants
// that consider more resources, e.g. the §2.1 example's DRF+network).
double dominant_share(const Resources& alloc, const Resources& capacity,
                      const std::vector<Resource>& dims);

// Queue-level fairness (paper §3.4 applies its policies to "jobs (or
// groups of jobs)"; YARN's Capacity scheduler shares across queues).
// Aggregates the jobs' allocations per queue and orders the queues
// furthest below their (equal) fair share first; ties break by queue id.
// Only queues with at least one job in `jobs` appear.
std::vector<int> furthest_queues_order(FairnessPolicy policy,
                                       const std::vector<sim::JobView>& jobs,
                                       const Resources& cluster_capacity,
                                       double slot_mem);

}  // namespace tetris::sched
