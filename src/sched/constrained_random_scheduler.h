// Randomized constrained-placement baseline (DESIGN.md §13): the
// comparison point the paper's packing argument is made against once
// placement constraints exist. For each runnable group it computes the
// set of machines that may *legally* host the group (up, label clauses,
// anti-affinity, same-rack-as-input) and samples uniformly from that set
// without replacement until a sampled machine admits the task on every
// resource. No alignment, no SRTF, no locality preference — placement
// quality comes purely from feasibility plus chance, which is exactly
// the floor bench_constraints measures Tetris against.
//
// Differs from RandomScheduler in one essential way: sampling is uniform
// over the *feasible* set rather than over all machines, so heavily
// constrained groups are not starved by wasted draws on machines that
// could never host them.
#pragma once

#include <cstdint>
#include <string>

#include "sim/scheduler.h"
#include "util/rng.h"

namespace tetris::sched {

class ConstrainedRandomScheduler final : public sim::Scheduler {
 public:
  explicit ConstrainedRandomScheduler(std::uint64_t seed = 42) : rng_(seed) {}

  std::string name() const override { return "constrained-random"; }
  void schedule(sim::SchedulerContext& ctx) override;

 private:
  Rng rng_;
};

}  // namespace tetris::sched
