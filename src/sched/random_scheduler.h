// Random placement baseline: picks a random runnable group and a random
// machine that admits its task on every resource. Mostly a testing aid — a
// floor any real policy should beat — and a sanity check that gains in the
// benches come from policy, not from the harness.
#pragma once

#include <cstdint>
#include <string>

#include "sim/scheduler.h"
#include "util/rng.h"

namespace tetris::sched {

class RandomScheduler final : public sim::Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed = 42) : rng_(seed) {}

  std::string name() const override { return "random"; }
  void schedule(sim::SchedulerContext& ctx) override;

 private:
  Rng rng_;
};

}  // namespace tetris::sched
