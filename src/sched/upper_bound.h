// The §2.2.3 "simple upper bound" on packing gains.
//
// The paper bounds achievable gains by solving a relaxed problem: (1) the
// cluster is one aggregated bin per time step (no machine-level
// fragmentation), (2) tasks of a stage all have the stage-mean
// requirements, and (3) over-allocation is explicitly avoided. We realize
// the same relaxation by transforming the workload — uniform per-stage
// tasks, all input local — and running it on a single machine holding the
// whole cluster's capacity under the packing scheduler. The resulting
// makespan / JCT is the reference the paper reports Tetris achieving ~90%+
// of (it is not a true optimum: that is APX-hard to compute).
#pragma once

#include "sim/config.h"
#include "sim/spec.h"

namespace tetris::sched {

// Replaces every stage's tasks by clones with the stage-mean work and
// demands, and strips replica locations so every read is local (no
// machine-level placement effects survive aggregation).
sim::Workload aggregate_workload(const sim::Workload& workload);

// Single "machine" with the aggregate capacity of `config`'s cluster; the
// relaxed bin. Heartbeat and estimation settings are preserved, tracker is
// oracle-style allocation bookkeeping.
sim::SimConfig aggregate_config(const sim::SimConfig& config);

}  // namespace tetris::sched
