#include "sched/slot_scheduler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "sched/common.h"
#include "sched/fairness.h"

namespace tetris::sched {

void SlotScheduler::schedule(sim::SchedulerContext& ctx) {
  auto jobs = ctx.active_jobs();
  auto groups = ctx.runnable_groups();
  if (jobs.empty() || groups.empty()) return;

  // Runnable groups per job, in stage order.
  std::unordered_map<sim::JobId, std::vector<std::size_t>> groups_of;
  for (std::size_t g = 0; g < groups.size(); ++g)
    groups_of[groups[g].ref.job].push_back(g);

  // Slot admission: the task's (estimated) memory rounded up to whole
  // slots must fit in the machine's free memory. Nothing else is checked.
  const auto slot_fits = [&](const sim::Probe& p) {
    const double need =
        std::ceil(p.demand[Resource::kMem] / config_.slot_mem) *
        config_.slot_mem;
    return need <= ctx.available(p.machine)[Resource::kMem] + 1;
  };

  // Availability only shrinks within a pass, so a group that fits nowhere
  // stays blocked for the rest of the pass.
  std::vector<char> blocked(groups.size(), 0);
  // Local share additions so the fairness order reacts to this pass's own
  // placements.
  std::vector<double> extra_mem(jobs.size(), 0);

  while (true) {
    std::vector<sim::JobView> adjusted = jobs;
    for (std::size_t i = 0; i < adjusted.size(); ++i)
      adjusted[i].current_alloc[Resource::kMem] += extra_mem[i];
    const auto order = furthest_from_share_order(
        FairnessPolicy::kSlots, adjusted, ctx.cluster_capacity(),
        config_.slot_mem);

    bool placed = false;
    for (std::size_t ji : order) {
      auto it = groups_of.find(jobs[ji].id);
      if (it == groups_of.end()) continue;
      // Offer the slot to the job's first stage with runnable tasks.
      for (auto gi_it = it->second.begin(); gi_it != it->second.end();) {
        const std::size_t gi = *gi_it;
        if (groups[gi].runnable <= 0) {
          gi_it = it->second.erase(gi_it);
          continue;
        }
        if (blocked[gi]) {
          ++gi_it;
          continue;
        }
        // Prefilter on memory alone (the only dimension slots see).
        const double mem_need = groups[gi].est_demand[Resource::kMem];
        auto best = best_machine_for_group(
            ctx, groups[gi], slot_fits, [&](const Resources& avail) {
              return mem_need <= avail[Resource::kMem] + 1;
            });
        if (best && ctx.place(*best)) {
          groups[gi].runnable--;
          extra_mem[ji] += best->demand[Resource::kMem];
          placed = true;
          break;
        }
        blocked[gi] = 1;
        ++gi_it;
      }
      if (placed) break;
    }
    if (!placed) break;
  }
}

}  // namespace tetris::sched
