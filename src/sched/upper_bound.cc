#include "sched/upper_bound.h"

namespace tetris::sched {

sim::Workload aggregate_workload(const sim::Workload& workload) {
  sim::Workload out;
  out.jobs.reserve(workload.jobs.size());
  for (const auto& job : workload.jobs) {
    sim::JobSpec j;
    j.name = job.name;
    j.arrival = job.arrival;
    j.template_id = job.template_id;
    j.stages.reserve(job.stages.size());
    for (const auto& stage : job.stages) {
      sim::StageSpec s;
      s.name = stage.name;
      s.deps = stage.deps;
      // Stage-mean task: average work terms and demands across the stage.
      sim::TaskSpec mean;
      mean.cpu_cycles = 0;
      mean.output_bytes = 0;
      mean.peak_cores = 0;
      mean.peak_mem = 0;
      mean.max_io_bw = 0;
      double input_bytes = 0;
      const double n = static_cast<double>(stage.tasks.size());
      for (const auto& t : stage.tasks) {
        mean.cpu_cycles += t.cpu_cycles / n;
        mean.output_bytes += t.output_bytes / n;
        mean.peak_cores += t.peak_cores / n;
        mean.peak_mem += t.peak_mem / n;
        mean.max_io_bw += t.max_io_bw / n;
        for (const auto& split : t.inputs) input_bytes += split.bytes / n;
      }
      if (input_bytes > 0) {
        sim::InputSplit split;
        split.bytes = input_bytes;
        split.replicas = {0};  // the single aggregate machine: local read
        mean.inputs.push_back(split);
      }
      s.tasks.assign(stage.tasks.size(), mean);
      j.stages.push_back(std::move(s));
    }
    out.jobs.push_back(std::move(j));
  }
  return out;
}

sim::SimConfig aggregate_config(const sim::SimConfig& config) {
  sim::SimConfig out = config;
  Resources total;
  for (const auto& cap : config.resolved_capacities()) total += cap;
  out.num_machines = 1;
  out.machine_capacity = total;
  out.machine_capacities = {total};
  out.tracker = sim::TrackerMode::kAllocation;
  out.estimation.mode = sim::EstimationMode::kOracle;
  out.activities.clear();
  // The oracle is a lower envelope on completion times: every source of
  // lost work — task-level failures and machine churn alike — is disabled,
  // or the "upper bound" could fall below an achievable schedule's truth.
  out.task_failure_prob = 0;
  out.churn = sim::ChurnConfig{};
  return out;
}

}  // namespace tetris::sched
