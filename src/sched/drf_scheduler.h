// Dominant Resource Fairness baseline (Ghodsi et al., NSDI'11), as
// deployed: the next resource grant goes to the job with the lowest
// dominant share. Deployed implementations consider only CPU and memory
// (paper §6); tasks are admitted when their CPU+memory demands fit, so
// disk and network get over-allocated. A dimension list lets experiments
// build the "DRF extended with network" variant of the §2.1 example.
#pragma once

#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "util/resources.h"

namespace tetris::sched {

struct DrfSchedulerConfig {
  // Dimensions DRF tracks for both dominant shares and admission.
  std::vector<Resource> dims = {Resource::kCpu, Resource::kMem};
  std::string name = "drf";
};

class DrfScheduler final : public sim::Scheduler {
 public:
  explicit DrfScheduler(DrfSchedulerConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return config_.name; }
  void schedule(sim::SchedulerContext& ctx) override;

 private:
  DrfSchedulerConfig config_;
};

}  // namespace tetris::sched
