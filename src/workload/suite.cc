#include "workload/suite.h"

#include <algorithm>
#include <array>
#include <string>

#include "util/rng.h"

namespace tetris::workload {

namespace {

struct JobClass {
  const char* name;
  int map_tasks;        // before task_scale
  double selectivity;   // output bytes : input bytes at the map stage
};

// The four §5.1 classes: sizes are "couple 1000" / "100s" / "10s" of
// tasks; ratios 1:2 inflating, 1:0.7 selective, 1:0.05 highly selective.
constexpr std::array<JobClass, 4> kClasses = {{
    {"large-highsel", 2000, 0.05},
    {"medium-inflating", 400, 2.0},
    {"medium-selective", 400, 0.7},
    {"small-selective", 40, 0.7},
}};

std::vector<sim::MachineId> random_replicas(Rng& rng, int num_machines,
                                            int replication) {
  const auto k = static_cast<std::size_t>(
      std::min(replication, std::max(1, num_machines)));
  const auto idx = rng.sample_without_replacement(
      static_cast<std::size_t>(num_machines), k);
  std::vector<sim::MachineId> out;
  out.reserve(idx.size());
  for (auto i : idx) out.push_back(static_cast<sim::MachineId>(i));
  return out;
}

}  // namespace

sim::Workload make_suite_workload(const SuiteConfig& config) {
  Rng rng(config.seed);
  sim::Workload workload;
  workload.jobs.reserve(static_cast<std::size_t>(config.num_jobs));

  for (int j = 0; j < config.num_jobs; ++j) {
    const JobClass& cls =
        kClasses[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    const int maps = std::max(
        1, static_cast<int>(cls.map_tasks * config.task_scale + 0.5));
    const int reduces = std::max(1, maps / 5);

    // Stage-level memory and cpu intensity (paper: stages are high-mem
    // (4 GB) or low-mem (1 GB); high-cpu tasks compute a lot per byte and
    // have low peak I/O demand).
    const bool map_high_mem = rng.bernoulli(0.5);
    const bool map_high_cpu = rng.bernoulli(0.5);
    const bool red_high_mem = rng.bernoulli(0.5);
    const double map_mem = (map_high_mem ? 4.0 : 1.0) * kGB;
    const double red_mem = (red_high_mem ? 4.0 : 1.0) * kGB;
    const double map_cycles_per_mb = map_high_cpu ? 0.15 : 0.02;
    const double map_io_bw = (map_high_cpu ? 25.0 : 100.0) * kMB;
    const double map_cores = map_high_cpu ? 2.0 : 1.0;

    sim::JobSpec job;
    job.name = std::string(cls.name) + "-" + std::to_string(j);
    // Queue per workload class, as production clusters typically configure
    // (a queue for ETL, a queue for ad-hoc analytics, ...).
    job.queue = static_cast<int>(&cls - kClasses.data());
    job.arrival = config.arrival_window > 0
                      ? rng.uniform(0.0, config.arrival_window)
                      : 0.0;
    if (rng.bernoulli(config.recurring_fraction)) {
      job.template_id = static_cast<int>(
          rng.uniform_int(0, std::max(0, config.num_templates - 1)));
    }

    // Map stage: one DFS block per task.
    sim::StageSpec map_stage;
    map_stage.name = "map";
    map_stage.tasks.reserve(static_cast<std::size_t>(maps));
    double total_map_output = 0;
    for (int t = 0; t < maps; ++t) {
      sim::TaskSpec task;
      const double input = config.dfs_block_bytes * rng.uniform(0.7, 1.3);
      sim::InputSplit split;
      split.bytes = input;
      split.replicas =
          random_replicas(rng, config.num_machines, config.dfs_replication);
      task.inputs.push_back(std::move(split));
      task.output_bytes = input * cls.selectivity;
      total_map_output += task.output_bytes;
      task.cpu_cycles = (input / kMB) * map_cycles_per_mb;
      task.peak_cores = map_cores;
      task.peak_mem = map_mem;
      task.max_io_bw = map_io_bw;
      map_stage.tasks.push_back(std::move(task));
    }

    // Reduce stage: shuffle the map output, write half of it back.
    sim::StageSpec red_stage;
    red_stage.name = "reduce";
    red_stage.deps = {0};
    red_stage.tasks.reserve(static_cast<std::size_t>(reduces));
    for (int t = 0; t < reduces; ++t) {
      sim::TaskSpec task;
      const double shuffle_bytes = total_map_output / reduces;
      sim::InputSplit split;
      split.bytes = shuffle_bytes;
      split.from_stage = 0;
      task.inputs.push_back(std::move(split));
      task.output_bytes = shuffle_bytes * 0.5;
      task.cpu_cycles = (shuffle_bytes / kMB) * 0.02;
      task.peak_cores = 1.0;
      task.peak_mem = red_mem;
      task.max_io_bw = 100 * kMB;
      red_stage.tasks.push_back(std::move(task));
    }

    job.stages.push_back(std::move(map_stage));
    job.stages.push_back(std::move(red_stage));
    workload.jobs.push_back(std::move(job));
  }
  return workload;
}

}  // namespace tetris::workload
