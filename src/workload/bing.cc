#include "workload/bing.h"

#include <algorithm>
#include <string>

#include "util/rng.h"

namespace tetris::workload {

Resources bing_machine() {
  return Resources::full(16, 48 * kGB, 4 * 80 * kMB, 4 * 80 * kMB,
                         10 * kGbps, 10 * kGbps);
}

namespace {

double clamp(double x, double lo, double hi) { return std::clamp(x, lo, hi); }

std::vector<sim::MachineId> random_replicas(Rng& rng, int num_machines,
                                            int replication) {
  const auto k = static_cast<std::size_t>(
      std::min(replication, std::max(1, num_machines)));
  const auto idx = rng.sample_without_replacement(
      static_cast<std::size_t>(num_machines), k);
  std::vector<sim::MachineId> out;
  out.reserve(idx.size());
  for (auto i : idx) out.push_back(static_cast<sim::MachineId>(i));
  return out;
}

struct StageProfile {
  double cores;
  double mem;
  double io_bw;
  double compute_seconds;
  double selectivity;
};

StageProfile draw_profile(Rng& rng) {
  StageProfile p;
  p.cores = clamp(rng.lognormal_mean_cov(1.5, 1.2), 0.25, 8);
  p.mem = clamp(rng.lognormal_mean_cov(3 * kGB, 1.4), 256 * kMB, 16 * kGB);
  p.io_bw = clamp(rng.lognormal_mean_cov(80 * kMB, 1.5), 15 * kMB, 300 * kMB);
  p.compute_seconds = clamp(rng.lognormal_mean_cov(15.0, 1.0), 2.0, 150.0);
  p.selectivity = clamp(rng.lognormal_mean_cov(0.5, 0.9), 0.01, 2.0);
  return p;
}

// Builds one stage of `n` tasks consuming `input_bytes` in total, either
// from DFS blocks (`deps` empty) or shuffled from the given upstreams.
sim::StageSpec make_stage(Rng& rng, const BingConfig& cfg,
                          const StageProfile& prof, int n,
                          double input_bytes, std::vector<int> deps,
                          double* output_bytes) {
  sim::StageSpec stage;
  stage.deps = std::move(deps);
  stage.tasks.reserve(static_cast<std::size_t>(n));
  *output_bytes = 0;
  for (int t = 0; t < n; ++t) {
    sim::TaskSpec task;
    const double jitter = rng.lognormal_mean_cov(1.0, 0.25);
    task.peak_cores = clamp(prof.cores * jitter, 0.25, 16);
    task.peak_mem = clamp(prof.mem * jitter, 128 * kMB, 24 * kGB);
    task.max_io_bw = clamp(prof.io_bw * jitter, 10 * kMB, 400 * kMB);
    task.cpu_cycles = task.peak_cores * prof.compute_seconds * jitter;
    const double in = std::min(input_bytes / n, 2 * kGB);
    if (in > 0) {
      if (stage.deps.empty()) {
        sim::InputSplit split;
        split.bytes = in;
        split.replicas =
            random_replicas(rng, cfg.num_machines, cfg.dfs_replication);
        task.inputs.push_back(std::move(split));
      } else {
        // Equal share of every upstream's output.
        for (int d : stage.deps) {
          sim::InputSplit split;
          split.bytes = in / static_cast<double>(stage.deps.size());
          split.from_stage = d;
          task.inputs.push_back(std::move(split));
        }
      }
    }
    task.output_bytes =
        in * prof.selectivity * rng.lognormal_mean_cov(1.0, 0.5);
    *output_bytes += task.output_bytes;
    stage.tasks.push_back(std::move(task));
  }
  return stage;
}

}  // namespace

sim::Workload make_bing_workload(const BingConfig& config) {
  Rng rng(config.seed);
  sim::Workload workload;
  workload.jobs.reserve(static_cast<std::size_t>(config.num_jobs));

  for (int j = 0; j < config.num_jobs; ++j) {
    sim::JobSpec job;
    job.name = "bing-" + std::to_string(j);
    job.arrival = config.arrival_window > 0
                      ? rng.uniform(0.0, config.arrival_window)
                      : 0.0;
    if (rng.bernoulli(config.recurring_fraction)) {
      job.template_id = static_cast<int>(
          rng.uniform_int(0, std::max(0, config.num_templates - 1)));
    }
    job.queue = static_cast<int>(rng.uniform_int(0, 2));

    const int depth = static_cast<int>(
        rng.uniform_int(config.min_depth, config.max_depth));
    const auto stage_size = [&] {
      return std::max(
          1, static_cast<int>(rng.lognormal_mean_cov(
                                  config.mean_stage_tasks, 1.0) *
                                  config.task_scale +
                              0.5));
    };

    // Root stage reads DFS.
    double out_bytes = 0;
    const double root_input =
        stage_size() * config.dfs_block_bytes * rng.uniform(0.5, 1.5);
    job.stages.push_back(make_stage(rng, config, draw_profile(rng),
                                    stage_size(), root_input, {},
                                    &out_bytes));
    // Frontier of stages whose outputs the next layer consumes.
    std::vector<int> frontier = {0};
    double frontier_bytes = out_bytes;

    for (int level = 1; level < depth; ++level) {
      if (frontier.size() == 1 && rng.bernoulli(config.diamond_fraction) &&
          level + 1 < depth) {
        // Diamond: two parallel stages both reading the frontier.
        std::vector<int> next_frontier;
        double next_bytes = 0;
        for (int side = 0; side < 2; ++side) {
          double side_out = 0;
          job.stages.push_back(make_stage(rng, config, draw_profile(rng),
                                          stage_size(), frontier_bytes / 2,
                                          frontier, &side_out));
          next_frontier.push_back(static_cast<int>(job.stages.size()) - 1);
          next_bytes += side_out;
        }
        frontier = std::move(next_frontier);
        frontier_bytes = next_bytes;
      } else {
        // Chain (or fan-in when the frontier holds a diamond's two sides).
        double stage_out = 0;
        job.stages.push_back(make_stage(rng, config, draw_profile(rng),
                                        stage_size(), frontier_bytes,
                                        frontier, &stage_out));
        frontier = {static_cast<int>(job.stages.size()) - 1};
        frontier_bytes = stage_out;
      }
    }
    workload.jobs.push_back(std::move(job));
  }
  return workload;
}

}  // namespace tetris::workload
