// Binary workload trace format for the streaming engine (DESIGN.md §11).
//
// The text format in trace_io.h is line-oriented and must be parsed front
// to back; fine for inspection, hopeless for a 10M-task trace. This
// format is built for incremental consumption:
//
//   file header:  magic "TTRB", u32 version, u64 job_count
//   per job:      fixed 24-byte job header — f64 arrival, u64 task_count,
//                 u64 body_size — followed by `body_size` bytes of body
//                 (name, template, queue, stages, tasks, splits)
//
// The job header carries everything the admission gate needs (when the
// job arrives, how many tasks it would add to the resident set), so a
// reader can peek at the next job for 24 bytes without decoding — or
// skip it entirely — and the file header carries the total job count the
// simulator needs to reserve its arrival sequence block. All integers
// are little-endian, all floats IEEE-754 doubles; jobs must appear in
// non-decreasing arrival order (readers reject violations: a stream the
// scheduler cannot replay in order is an input error).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/job_source.h"
#include "sim/spec.h"

namespace tetris::workload {

inline constexpr char kBinaryTraceMagic[4] = {'T', 'T', 'R', 'B'};
inline constexpr std::uint32_t kBinaryTraceVersion = 1;

// Streaming writer: jobs are appended one at a time and never buffered,
// so a generator can emit traces far larger than memory. The job count
// in the file header is back-patched by finalize() (also run by the
// destructor). Throws std::runtime_error on I/O failure and
// std::invalid_argument on out-of-order arrivals.
class BinaryTraceWriter {
 public:
  explicit BinaryTraceWriter(const std::string& path);
  ~BinaryTraceWriter();
  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void add(const sim::JobSpec& job);
  // Patches the job count into the header and closes the file. Idempotent.
  void finalize();

  long jobs_written() const { return jobs_written_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  long jobs_written_ = 0;
  double last_arrival_ = 0;
  std::vector<char> body_;  // reused per-job encode buffer
};

// Incremental reader over a binary trace file; a sim::JobSource, so it
// plugs straight into simulate_stream(). Reads the file in `chunk_size`
// byte slices (any size >= 1 — adversarial sizes only change the read
// pattern, never the decoded stream) and holds at most one job body in
// memory. Throws std::runtime_error naming the byte offset on a
// truncated or corrupt file, and on out-of-order arrivals.
class BinaryTraceReader final : public sim::JobSource {
 public:
  explicit BinaryTraceReader(const std::string& path,
                             std::size_t chunk_size = 64 * 1024);
  ~BinaryTraceReader() override;
  BinaryTraceReader(const BinaryTraceReader&) = delete;
  BinaryTraceReader& operator=(const BinaryTraceReader&) = delete;

  long total_jobs() const override { return total_jobs_; }
  bool peek(sim::JobPeek& out) override;
  bool next(sim::JobSpec& out) override;

 private:
  // Ensures `n` decodable bytes are buffered; false on clean EOF at a
  // record boundary (want_header at offset 0 of a record), throws on EOF
  // mid-record.
  bool ensure(std::size_t n, bool header_boundary);
  [[noreturn]] void corrupt(const std::string& what) const;

  std::FILE* file_ = nullptr;
  std::string path_;
  std::size_t chunk_size_;
  std::vector<char> buf_;
  std::size_t pos_ = 0;          // consumed prefix of buf_
  long long file_offset_ = 0;    // offset of buf_[pos_] in the file
  long total_jobs_ = 0;
  long jobs_read_ = 0;
  double last_arrival_ = 0;
};

// Whole-workload conveniences (round-trip tests, small traces).
void write_binary_trace_file(const std::string& path,
                             const sim::Workload& workload);
sim::Workload read_binary_trace_file(const std::string& path);

}  // namespace tetris::workload
