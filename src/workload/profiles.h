// Machine profiles for the clusters the paper evaluates on (§5.1).
#pragma once

#include "util/resources.h"
#include "util/units.h"

namespace tetris::workload {

// The Facebook cluster machine the trace-driven simulator mimics:
// 16 cores, 32 GB, four disks at ~50 MB/s each, 1 Gbps NIC.
inline Resources facebook_machine() {
  return Resources::full(16, 32 * kGB, 4 * 50 * kMB, 4 * 50 * kMB, 1 * kGbps,
                         1 * kGbps);
}

// The 250-server deployment cluster: beefier nodes, 10 Gbps NICs, four
// 2 TB drives.
inline Resources deployment_machine() {
  return Resources::full(16, 64 * kGB, 4 * 120 * kMB, 4 * 120 * kMB,
                         10 * kGbps, 10 * kGbps);
}

// A small machine for unit tests and examples.
inline Resources small_machine() {
  return Resources::full(4, 8 * kGB, 100 * kMB, 100 * kMB, 1 * kGbps,
                         1 * kGbps);
}

}  // namespace tetris::workload
