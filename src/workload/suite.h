// The deployment workload suite of paper §5.1.
//
// "We constructed a workload suite of over 200 jobs by picking uniformly
// at random from the following choices": job size x selectivity in four
// classes (large & highly-selective, medium & inflating, medium &
// selective, small & selective), map/reduce stages that are independently
// high- or low-memory and high- or low-cpu (high-cpu tasks do substantial
// computation per byte and so have low peak I/O demand), and arrival times
// uniform over a window.
#pragma once

#include <cstdint>

#include "sim/spec.h"
#include "util/units.h"

namespace tetris::workload {

struct SuiteConfig {
  int num_jobs = 200;
  // Machines in the target cluster; DFS input blocks get three replicas
  // placed uniformly at random.
  int num_machines = 50;
  // Arrivals uniform in [0, arrival_window]; 0 = batch arrival (makespan
  // experiments).
  double arrival_window = 2000.0;
  // Scales task counts so the suite fits a simulation budget; 1.0 keeps
  // the paper's sizes (large jobs ~2000 tasks).
  double task_scale = 1.0;
  // Fraction of jobs that are instances of recurring templates (§4.1).
  double recurring_fraction = 0.3;
  int num_templates = 12;
  std::uint64_t seed = 1;

  double dfs_block_bytes = 256 * kMB;
  int dfs_replication = 3;
};

sim::Workload make_suite_workload(const SuiteConfig& config);

}  // namespace tetris::workload
