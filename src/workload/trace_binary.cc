#include "workload/trace_binary.h"

#include <cstring>
#include <limits>
#include <stdexcept>

namespace tetris::workload {

namespace {

// All encoding goes through byte-wise little-endian put/get helpers, so
// the format is identical across hosts regardless of alignment rules.
void put_u32(std::vector<char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i32(std::vector<char>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<char>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::vector<char>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::int32_t get_i32(const char* p) {
  return static_cast<std::int32_t>(get_u32(p));
}

double get_f64(const char* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

constexpr std::size_t kFileHeaderSize = 4 + 4 + 8;  // magic, version, count
constexpr std::size_t kJobHeaderSize = 8 + 8 + 8;   // arrival, tasks, body

void encode_body(std::vector<char>& out, const sim::JobSpec& job) {
  out.clear();
  put_str(out, job.name);
  put_i32(out, job.template_id);
  put_i32(out, job.queue);
  put_u32(out, static_cast<std::uint32_t>(job.stages.size()));
  for (const auto& stage : job.stages) {
    put_str(out, stage.name);
    put_u32(out, static_cast<std::uint32_t>(stage.deps.size()));
    for (int d : stage.deps) put_i32(out, d);
    put_u32(out, static_cast<std::uint32_t>(stage.tasks.size()));
    for (const auto& task : stage.tasks) {
      put_f64(out, task.cpu_cycles);
      put_f64(out, task.peak_cores);
      put_f64(out, task.peak_mem);
      put_f64(out, task.output_bytes);
      put_f64(out, task.max_io_bw);
      put_u32(out, static_cast<std::uint32_t>(task.inputs.size()));
      for (const auto& split : task.inputs) {
        put_f64(out, split.bytes);
        put_i32(out, split.from_stage);
        put_u32(out, static_cast<std::uint32_t>(split.replicas.size()));
        for (sim::MachineId r : split.replicas) put_i32(out, r);
      }
    }
  }
}

// Bounded decode cursor over one job body; every read is length-checked
// so a corrupt body_size can never run past the buffer.
class BodyCursor {
 public:
  BodyCursor(const char* data, std::size_t size, long job_index)
      : data_(data), size_(size), job_(job_index) {}

  std::uint32_t u32() { return get_u32(take(4)); }
  std::int32_t i32() { return get_i32(take(4)); }
  double f64() { return get_f64(take(8)); }
  std::string str() {
    const std::uint32_t n = u32();
    return std::string(take(n), n);
  }
  bool exhausted() const { return pos_ == size_; }
  long job() const { return job_; }

 private:
  const char* take(std::size_t n) {
    if (size_ - pos_ < n) {
      throw std::runtime_error(
          "binary trace: job " + std::to_string(job_) +
          " body overruns its declared size (corrupt body_size or record)");
    }
    const char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  long job_;
};

sim::JobSpec decode_body(BodyCursor& c) {
  sim::JobSpec job;
  job.name = c.str();
  job.template_id = c.i32();
  job.queue = c.i32();
  const std::uint32_t nstages = c.u32();
  job.stages.reserve(nstages);
  for (std::uint32_t s = 0; s < nstages; ++s) {
    sim::StageSpec stage;
    stage.name = c.str();
    const std::uint32_t ndeps = c.u32();
    stage.deps.reserve(ndeps);
    for (std::uint32_t d = 0; d < ndeps; ++d) stage.deps.push_back(c.i32());
    const std::uint32_t ntasks = c.u32();
    stage.tasks.reserve(ntasks);
    for (std::uint32_t t = 0; t < ntasks; ++t) {
      sim::TaskSpec task;
      task.cpu_cycles = c.f64();
      task.peak_cores = c.f64();
      task.peak_mem = c.f64();
      task.output_bytes = c.f64();
      task.max_io_bw = c.f64();
      const std::uint32_t nsplits = c.u32();
      task.inputs.reserve(nsplits);
      for (std::uint32_t i = 0; i < nsplits; ++i) {
        sim::InputSplit split;
        split.bytes = c.f64();
        split.from_stage = c.i32();
        const std::uint32_t nreps = c.u32();
        split.replicas.reserve(nreps);
        for (std::uint32_t r = 0; r < nreps; ++r)
          split.replicas.push_back(c.i32());
        task.inputs.push_back(std::move(split));
      }
      stage.tasks.push_back(std::move(task));
    }
    job.stages.push_back(std::move(stage));
  }
  if (!c.exhausted()) {
    throw std::runtime_error(
        "binary trace: job " + std::to_string(c.job()) +
        " body has trailing bytes (corrupt record)");
  }
  return job;
}

long count_tasks(const sim::JobSpec& job) {
  long n = 0;
  for (const auto& stage : job.stages)
    n += static_cast<long>(stage.tasks.size());
  return n;
}

}  // namespace

// ---------------------------------------------------------------------------
// BinaryTraceWriter

BinaryTraceWriter::BinaryTraceWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("binary trace: cannot open '" + path +
                             "' for writing");
  }
  std::vector<char> header;
  header.insert(header.end(), kBinaryTraceMagic, kBinaryTraceMagic + 4);
  put_u32(header, kBinaryTraceVersion);
  put_u64(header, 0);  // job count, patched by finalize()
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("binary trace: write failed on '" + path + "'");
  }
}

BinaryTraceWriter::~BinaryTraceWriter() {
  try {
    finalize();
  } catch (...) {
    // Destructors must not throw; an explicit finalize() call reports.
    if (file_ != nullptr) std::fclose(file_);
    file_ = nullptr;
  }
}

void BinaryTraceWriter::add(const sim::JobSpec& job) {
  if (file_ == nullptr) {
    throw std::runtime_error("binary trace: add() after finalize()");
  }
  if (jobs_written_ > 0 && job.arrival < last_arrival_) {
    throw std::invalid_argument(
        "binary trace: job " + std::to_string(jobs_written_) + " ('" +
        job.name + "') arrives at " + std::to_string(job.arrival) +
        ", before its predecessor at " + std::to_string(last_arrival_) +
        "; binary traces must be sorted by arrival");
  }
  encode_body(body_, job);
  std::vector<char> header;
  header.reserve(kJobHeaderSize);
  put_f64(header, job.arrival);
  put_u64(header, static_cast<std::uint64_t>(count_tasks(job)));
  put_u64(header, static_cast<std::uint64_t>(body_.size()));
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(body_.data(), 1, body_.size(), file_) != body_.size()) {
    throw std::runtime_error("binary trace: write failed on '" + path_ + "'");
  }
  last_arrival_ = job.arrival;
  jobs_written_++;
}

void BinaryTraceWriter::finalize() {
  if (file_ == nullptr) return;
  std::vector<char> count;
  put_u64(count, static_cast<std::uint64_t>(jobs_written_));
  const bool ok = std::fseek(file_, 8, SEEK_SET) == 0 &&
                  std::fwrite(count.data(), 1, count.size(), file_) ==
                      count.size();
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!ok || !closed) {
    throw std::runtime_error("binary trace: finalize failed on '" + path_ +
                             "'");
  }
}

// ---------------------------------------------------------------------------
// BinaryTraceReader

BinaryTraceReader::BinaryTraceReader(const std::string& path,
                                     std::size_t chunk_size)
    : path_(path), chunk_size_(chunk_size == 0 ? 1 : chunk_size) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw std::runtime_error("binary trace: cannot open '" + path + "'");
  }
  if (!ensure(kFileHeaderSize, /*header_boundary=*/false)) {
    corrupt("file shorter than its header");
  }
  const char* p = buf_.data() + pos_;
  if (std::memcmp(p, kBinaryTraceMagic, 4) != 0) {
    corrupt("bad magic (not a binary trace file)");
  }
  const std::uint32_t version = get_u32(p + 4);
  if (version != kBinaryTraceVersion) {
    corrupt("unsupported version " + std::to_string(version));
  }
  const std::uint64_t count = get_u64(p + 8);
  if (count > static_cast<std::uint64_t>(
                  std::numeric_limits<long>::max())) {
    corrupt("absurd job count");
  }
  total_jobs_ = static_cast<long>(count);
  pos_ += kFileHeaderSize;
  file_offset_ += static_cast<long long>(kFileHeaderSize);
}

BinaryTraceReader::~BinaryTraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryTraceReader::corrupt(const std::string& what) const {
  throw std::runtime_error("binary trace '" + path_ + "' at byte " +
                           std::to_string(file_offset_) + " (job " +
                           std::to_string(jobs_read_) + "): " + what);
}

bool BinaryTraceReader::ensure(std::size_t n, bool header_boundary) {
  // Compact the consumed prefix once it dominates the buffer, so long
  // streams do not grow the buffer without bound.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 2 * chunk_size_)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
    pos_ = 0;
  }
  while (buf_.size() - pos_ < n) {
    const std::size_t old = buf_.size();
    buf_.resize(old + chunk_size_);
    const std::size_t got = std::fread(buf_.data() + old, 1, chunk_size_,
                                       file_);
    buf_.resize(old + got);
    if (got == 0) {
      if (header_boundary && buf_.size() == pos_) return false;  // clean EOF
      corrupt("unexpected end of file (truncated record)");
    }
  }
  return true;
}

bool BinaryTraceReader::peek(sim::JobPeek& out) {
  if (jobs_read_ >= total_jobs_) {
    // Anything after the declared last job is ignored, like trailing
    // garbage past the end of an archive.
    return false;
  }
  if (!ensure(kJobHeaderSize, /*header_boundary=*/true)) {
    corrupt("file ends after " + std::to_string(jobs_read_) + " of " +
            std::to_string(total_jobs_) + " declared jobs");
  }
  const char* p = buf_.data() + pos_;
  out.arrival = get_f64(p);
  const std::uint64_t tasks = get_u64(p + 8);
  if (tasks > static_cast<std::uint64_t>(
                  std::numeric_limits<long>::max())) {
    corrupt("absurd task count");
  }
  out.tasks = static_cast<long>(tasks);
  return true;
}

bool BinaryTraceReader::next(sim::JobSpec& out) {
  sim::JobPeek head;
  if (!peek(head)) return false;
  const std::uint64_t body_size = get_u64(buf_.data() + pos_ + 16);
  if (body_size > (std::uint64_t{1} << 40)) {
    corrupt("absurd body size");  // refuse before trying to buffer ~1TB
  }
  ensure(kJobHeaderSize + static_cast<std::size_t>(body_size),
         /*header_boundary=*/false);
  BodyCursor cursor(buf_.data() + pos_ + kJobHeaderSize,
                    static_cast<std::size_t>(body_size), jobs_read_);
  out = decode_body(cursor);
  out.arrival = head.arrival;
  if (jobs_read_ > 0 && out.arrival < last_arrival_) {
    corrupt("out-of-order arrival " + std::to_string(out.arrival) +
            " after " + std::to_string(last_arrival_) +
            "; binary traces must be sorted by arrival");
  }
  if (count_tasks(out) != head.tasks) {
    corrupt("job header declares " + std::to_string(head.tasks) +
            " tasks but the body holds " + std::to_string(count_tasks(out)));
  }
  last_arrival_ = out.arrival;
  jobs_read_++;
  const std::size_t consumed =
      kJobHeaderSize + static_cast<std::size_t>(body_size);
  pos_ += consumed;
  file_offset_ += static_cast<long long>(consumed);
  return true;
}

// ---------------------------------------------------------------------------
// Whole-workload conveniences

void write_binary_trace_file(const std::string& path,
                             const sim::Workload& workload) {
  BinaryTraceWriter writer(path);
  for (const auto& job : workload.jobs) writer.add(job);
  writer.finalize();
}

sim::Workload read_binary_trace_file(const std::string& path) {
  BinaryTraceReader reader(path);
  sim::Workload workload;
  workload.jobs.reserve(
      static_cast<std::size_t>(reader.total_jobs()));
  sim::JobSpec job;
  while (reader.next(job)) workload.jobs.push_back(std::move(job));
  return workload;
}

}  // namespace tetris::workload
