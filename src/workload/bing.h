// Bing-like synthetic trace generator (paper Table 1: the Cosmos cluster
// runs Scope scripts that compile to DAGs of "large depth", on 10 Gbps
// links with core oversubscription < 2).
//
// Compared to the Facebook generator, jobs here are deeper DAGs — chains
// with occasional fan-out/fan-in (diamonds) — with smaller stages, which
// exercises the barrier hint and the future-demand lookahead far more than
// map/reduce does.
#pragma once

#include <cstdint>

#include "sim/spec.h"
#include "util/units.h"

namespace tetris::workload {

struct BingConfig {
  int num_jobs = 150;
  int num_machines = 50;
  double arrival_window = 1500.0;
  double task_scale = 1.0;
  std::uint64_t seed = 11;

  // DAG depth distribution: uniform in [min_depth, max_depth].
  int min_depth = 3;
  int max_depth = 8;
  // Probability that a stage fans out into a diamond (two parallel stages
  // joined downstream) instead of continuing the chain.
  double diamond_fraction = 0.25;

  // Stage sizes: heavy-tailed but smaller than map/reduce fan-outs.
  double mean_stage_tasks = 20;
  double recurring_fraction = 0.5;  // Scope jobs are heavily recurring
  int num_templates = 25;

  double dfs_block_bytes = 256 * kMB;
  int dfs_replication = 3;
};

sim::Workload make_bing_workload(const BingConfig& config);

// The Bing machine profile: 10 Gbps NICs, larger memory.
Resources bing_machine();

}  // namespace tetris::workload
