#include "workload/trace_io.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace tetris::workload {

void write_trace(std::ostream& os, const sim::Workload& workload) {
  // Shortest round-trippable representation: replaying a written trace
  // must reproduce bit-identical simulations.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# tetris trace v1: " << workload.jobs.size() << " jobs, "
     << workload.total_tasks() << " tasks\n";
  for (const auto& job : workload.jobs) {
    os << "job " << job.arrival << " " << job.template_id << " "
       << job.queue << " " << job.name << "\n";
    for (const auto& stage : job.stages) {
      os << "stage " << (stage.name.empty() ? "-" : stage.name);
      for (int d : stage.deps) os << " " << d;
      os << "\n";
      for (const auto& task : stage.tasks) {
        os << "task " << task.cpu_cycles << " " << task.peak_cores << " "
           << task.peak_mem << " " << task.output_bytes << " "
           << task.max_io_bw << " " << task.inputs.size() << "\n";
        for (const auto& split : task.inputs) {
          os << "split " << split.bytes << " " << split.from_stage;
          for (auto r : split.replicas) os << " " << r;
          os << "\n";
        }
      }
    }
  }
}

std::string trace_to_string(const sim::Workload& workload) {
  std::ostringstream os;
  write_trace(os, workload);
  return os.str();
}

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line) + ": " + what);
}

}  // namespace

sim::Workload read_trace(std::istream& is) {
  sim::Workload workload;
  sim::JobSpec* job = nullptr;
  sim::StageSpec* stage = nullptr;
  sim::TaskSpec* task = nullptr;
  std::size_t pending_splits = 0;

  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;

    if (kind == "job") {
      if (pending_splits > 0) fail(lineno, "job before all splits were read");
      sim::JobSpec j;
      ls >> j.arrival >> j.template_id >> j.queue;
      std::getline(ls, j.name);
      if (!ls && j.name.empty()) fail(lineno, "malformed job line");
      while (!j.name.empty() && j.name.front() == ' ') j.name.erase(0, 1);
      workload.jobs.push_back(std::move(j));
      job = &workload.jobs.back();
      stage = nullptr;
      task = nullptr;
    } else if (kind == "stage") {
      if (job == nullptr) fail(lineno, "stage before any job");
      if (pending_splits > 0)
        fail(lineno, "stage before all splits were read");
      sim::StageSpec s;
      ls >> s.name;
      if (s.name == "-") s.name.clear();
      int dep;
      while (ls >> dep) s.deps.push_back(dep);
      job->stages.push_back(std::move(s));
      stage = &job->stages.back();
      task = nullptr;
    } else if (kind == "task") {
      if (stage == nullptr) fail(lineno, "task before any stage");
      if (pending_splits > 0) fail(lineno, "task before all splits were read");
      sim::TaskSpec t;
      ls >> t.cpu_cycles >> t.peak_cores >> t.peak_mem >> t.output_bytes >>
          t.max_io_bw >> pending_splits;
      if (!ls) fail(lineno, "malformed task line");
      stage->tasks.push_back(std::move(t));
      task = &stage->tasks.back();
    } else if (kind == "split") {
      if (task == nullptr || pending_splits == 0)
        fail(lineno, "unexpected split line");
      sim::InputSplit split;
      ls >> split.bytes >> split.from_stage;
      if (!ls) fail(lineno, "malformed split line");
      sim::MachineId r;
      while (ls >> r) split.replicas.push_back(r);
      task->inputs.push_back(std::move(split));
      --pending_splits;
    } else {
      fail(lineno, "unknown record '" + kind + "'");
    }
  }
  if (pending_splits > 0)
    fail(lineno, "trace truncated: splits missing for last task");
  if (auto msg = sim::validate(workload); !msg.empty())
    throw std::runtime_error("trace semantic error: " + msg);
  return workload;
}

sim::Workload trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

bool write_trace_file(const std::string& path,
                      const sim::Workload& workload) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_trace(out, workload);
  return static_cast<bool>(out);
}

sim::Workload read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

}  // namespace tetris::workload
