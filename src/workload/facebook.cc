#include "workload/facebook.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/rng.h"

namespace tetris::workload {

namespace {

double clamp(double x, double lo, double hi) { return std::clamp(x, lo, hi); }

std::vector<sim::MachineId> random_replicas(Rng& rng, int num_machines,
                                            int replication) {
  const auto k = static_cast<std::size_t>(
      std::min(replication, std::max(1, num_machines)));
  const auto idx = rng.sample_without_replacement(
      static_cast<std::size_t>(num_machines), k);
  std::vector<sim::MachineId> out;
  out.reserve(idx.size());
  for (auto i : idx) out.push_back(static_cast<sim::MachineId>(i));
  return out;
}

// Demand profile of one stage: mean values that individual tasks jitter
// around.
struct StageProfile {
  double cores;
  double mem;
  double io_bw;
  double compute_seconds;  // busy time on the task's peak_cores
  double selectivity;
};

StageProfile draw_profile(Rng& rng, const FacebookConfig& cfg) {
  StageProfile p;
  p.cores = clamp(rng.lognormal_mean_cov(cfg.cpu_mean, cfg.cpu_cov), 0.25, 8);
  p.mem = clamp(rng.lognormal_mean_cov(cfg.mem_mean, cfg.mem_cov), 128 * kMB,
                16 * kGB);
  p.io_bw =
      clamp(rng.lognormal_mean_cov(cfg.io_mean, cfg.io_cov), 15 * kMB,
            200 * kMB);
  // Compute time per stage is drawn independently of the I/O profile,
  // giving near-zero cpu-vs-io correlation (Table 2). Bounded so no single
  // task's compute dominates the cluster makespan.
  p.compute_seconds = clamp(rng.lognormal_mean_cov(18.0, 1.2), 2.0, 200.0);
  p.selectivity = clamp(rng.lognormal_mean_cov(0.6, 1.0), 0.01, 3.0);
  return p;
}

sim::TaskSpec make_task(Rng& rng, const FacebookConfig& cfg,
                        const StageProfile& prof, double input_bytes) {
  const auto jitter = [&] {
    return rng.lognormal_mean_cov(1.0, cfg.within_stage_cov);
  };
  sim::TaskSpec t;
  t.peak_cores = clamp(prof.cores * jitter(), 0.25, 16);
  t.peak_mem = clamp(prof.mem * jitter(), 64 * kMB, 24 * kGB);
  t.max_io_bw = clamp(prof.io_bw * jitter(), 10 * kMB, 400 * kMB);
  t.cpu_cycles = t.peak_cores * prof.compute_seconds * jitter();
  // Output selectivity varies widely even within a stage (different keys
  // compress differently); the wide draw also keeps written bytes nearly
  // uncorrelated with read bytes, as in the paper's Table 2.
  t.output_bytes =
      input_bytes * prof.selectivity * rng.lognormal_mean_cov(1.0, 0.8);
  return t;
}

}  // namespace

sim::Workload make_facebook_workload(const FacebookConfig& config) {
  Rng rng(config.seed);
  sim::Workload workload;
  workload.jobs.reserve(static_cast<std::size_t>(config.num_jobs));

  for (int j = 0; j < config.num_jobs; ++j) {
    // Heavy-tailed job sizes: many small jobs, a few with thousands of
    // tasks.
    const int maps = std::max(
        1, static_cast<int>(rng.bounded_pareto(8.0, 3000.0, 1.15) *
                                config.task_scale +
                            0.5));
    int depth = 2;
    if (rng.bernoulli(config.deep_dag_fraction))
      depth = static_cast<int>(rng.uniform_int(3, 4));

    sim::JobSpec job;
    job.name = "fb-" + std::to_string(j);
    job.arrival = config.arrival_window > 0
                      ? rng.uniform(0.0, config.arrival_window)
                      : 0.0;
    if (rng.bernoulli(config.recurring_fraction)) {
      job.template_id = static_cast<int>(
          rng.uniform_int(0, std::max(0, config.num_templates - 1)));
    }

    // Stage 0: map over DFS blocks.
    const StageProfile map_prof = draw_profile(rng, config);
    sim::StageSpec map_stage;
    map_stage.name = "stage0";
    map_stage.tasks.reserve(static_cast<std::size_t>(maps));
    double stage_output = 0;
    for (int t = 0; t < maps; ++t) {
      const double input =
          clamp(rng.lognormal_mean_cov(config.dfs_block_bytes, 1.2), 16 * kMB,
                1 * kGB);
      sim::TaskSpec task = make_task(rng, config, map_prof, input);
      sim::InputSplit split;
      split.bytes = input;
      split.replicas =
          random_replicas(rng, config.num_machines, config.dfs_replication);
      task.inputs.push_back(std::move(split));
      stage_output += task.output_bytes;
      map_stage.tasks.push_back(std::move(task));
    }
    job.stages.push_back(std::move(map_stage));

    // Downstream stages: shuffles over the previous stage's output.
    int prev_tasks = maps;
    for (int s = 1; s < depth; ++s) {
      const StageProfile prof = draw_profile(rng, config);
      const int n = std::max(
          1, static_cast<int>(prev_tasks * rng.uniform(0.05, 0.35) + 0.5));
      sim::StageSpec stage;
      stage.name = "stage" + std::to_string(s);
      stage.deps = {s - 1};
      stage.tasks.reserve(static_cast<std::size_t>(n));
      double next_output = 0;
      for (int t = 0; t < n; ++t) {
        // Bounded per-task shuffle input: inflating chains otherwise grow
        // without limit and a single reducer dwarfs the cluster.
        const double input = std::min(stage_output / n, 2 * kGB);
        sim::TaskSpec task = make_task(rng, config, prof, input);
        sim::InputSplit split;
        split.bytes = input;
        split.from_stage = s - 1;
        task.inputs.push_back(std::move(split));
        next_output += task.output_bytes;
        stage.tasks.push_back(std::move(task));
      }
      stage_output = next_output;
      prev_tasks = n;
      job.stages.push_back(std::move(stage));
    }
    workload.jobs.push_back(std::move(job));
  }
  return workload;
}

}  // namespace tetris::workload
