// The motivating example of paper §2.1 / Figure 1.
//
// A cluster with 18 cores, 36 GB of memory and 3 Gbps of network runs
// three two-phase jobs separated by strict barriers:
//   * Job A: 18 map tasks of (1 core, 2 GB) + 3 network-bound reduces.
//   * Jobs B, C: 6 map tasks of (3 cores, 1 GB) + 3 reduces each.
//   * Every reduce wants ~1 Gbps of network and negligible CPU/memory.
//   * All tasks run for t time units.
// DRF finishes all jobs at 6t; a packing schedule finishes them at 2t, 3t
// and 4t — 50% better average completion time and 33% better makespan,
// with *every* job faster. The example is realized as three machines of
// (6 cores, 12 GB, 1 Gbps) so network actually constrains the reduces.
#pragma once

#include "sim/config.h"
#include "sim/spec.h"

namespace tetris::workload {

struct MotivatingExample {
  sim::Workload workload;
  sim::SimConfig config;
  double t;  // the example's unit task duration, in seconds
};

MotivatingExample make_motivating_example();

}  // namespace tetris::workload
