#include "workload/motivating.h"

#include <string>

#include "util/units.h"

namespace tetris::workload {

namespace {

constexpr double kT = 20.0;  // seconds per "t" unit

sim::JobSpec make_job(const std::string& name, int maps, double map_cores,
                      double map_mem) {
  sim::JobSpec job;
  job.name = name;
  job.arrival = 0;

  // Map tasks: pure compute for exactly t, no I/O.
  sim::StageSpec map_stage;
  map_stage.name = "map";
  for (int i = 0; i < maps; ++i) {
    sim::TaskSpec task;
    task.peak_cores = map_cores;
    task.peak_mem = map_mem;
    task.cpu_cycles = map_cores * kT;
    // Map output feeds the reduces; sized so each reduce pulls ~1 Gbps
    // for t seconds: 3 reduces x (1 Gbps x t) bytes in total.
    task.output_bytes = 3.0 * (1 * kGbps) * kT / maps;
    task.max_io_bw = 400 * kMB;  // writes never bottleneck the example
    map_stage.tasks.push_back(std::move(task));
  }

  // Reduce tasks: network-bound shuffle, negligible CPU/memory.
  sim::StageSpec red_stage;
  red_stage.name = "reduce";
  red_stage.deps = {0};
  for (int i = 0; i < 3; ++i) {
    sim::TaskSpec task;
    // "Very little CPU or memory" — zero keeps the paper's clean packing.
    task.peak_cores = 0;
    task.peak_mem = 0.25 * kGB;
    task.cpu_cycles = 0;
    sim::InputSplit split;
    split.bytes = (1 * kGbps) * kT;
    split.from_stage = 0;
    task.inputs.push_back(std::move(split));
    task.output_bytes = 0;
    task.max_io_bw = 1 * kGbps;  // can drive a full NIC
    red_stage.tasks.push_back(std::move(task));
  }

  job.stages.push_back(std::move(map_stage));
  job.stages.push_back(std::move(red_stage));
  return job;
}

}  // namespace

MotivatingExample make_motivating_example() {
  MotivatingExample ex;
  ex.t = kT;
  ex.workload.jobs.push_back(make_job("A", 18, 1.0, 2 * kGB));
  ex.workload.jobs.push_back(make_job("B", 6, 3.0, 1 * kGB));
  ex.workload.jobs.push_back(make_job("C", 6, 3.0, 1 * kGB));

  ex.config.num_machines = 3;
  ex.config.machine_capacity = Resources::full(
      6, 12 * kGB, 2 * kGbps, 2 * kGbps, 1 * kGbps, 1 * kGbps);
  ex.config.heartbeat_period = 0.5;
  ex.config.collect_timeline = true;
  ex.config.timeline_period = kT / 4;
  return ex;
}

}  // namespace tetris::workload
