// Facebook-like synthetic trace generator (paper §2.2, §5.1 simulations).
//
// We do not have the production trace, so we synthesize one matching the
// distributional properties the paper publishes, which are what the
// scheduler actually sees:
//   * Task demands vary over orders of magnitude with high CoV — 1.52
//     (CPU), 1.6 (memory), 2.6 (disk), 1.9 (network) (§2.2.2).
//   * Demands for different resources are nearly uncorrelated (Table 2):
//     each dimension is drawn independently.
//   * Within a phase, tasks are statistically similar: per-task jitter
//     around the stage mean has small CoV (§4.1 reports ~0.2-0.6).
//   * Job sizes are heavy-tailed (a few huge jobs, many small ones).
//   * DAGs are mostly map/reduce with a tail of deeper chains (the Bing
//     trace has large DAG depth; Facebook's is 2).
#pragma once

#include <cstdint>

#include "sim/spec.h"
#include "util/units.h"

namespace tetris::workload {

struct FacebookConfig {
  int num_jobs = 200;
  int num_machines = 50;
  double arrival_window = 2000.0;  // 0 = batch arrival
  // Scales task counts to a simulation budget. 1.0 keeps heavy tails up to
  // ~3000 tasks per job.
  double task_scale = 1.0;
  double recurring_fraction = 0.4;
  int num_templates = 20;
  // Fraction of jobs with DAGs deeper than map/reduce (chains of 3-4
  // stages).
  double deep_dag_fraction = 0.15;
  double task_failure_hint = 0.0;  // carried to SimConfig by callers
  std::uint64_t seed = 7;

  // Stage-mean demand distributions (lognormal, mean/CoV per §2.2.2).
  double cpu_mean = 1.2, cpu_cov = 1.52;
  double mem_mean = 2.0 * kGB, mem_cov = 1.6;
  double io_mean = 60 * kMB, io_cov = 2.2;  // disk ~2.6 / network ~1.9
  // Per-task jitter around the stage mean.
  double within_stage_cov = 0.3;

  double dfs_block_bytes = 256 * kMB;
  int dfs_replication = 3;
};

sim::Workload make_facebook_workload(const FacebookConfig& config);

}  // namespace tetris::workload
