#include "workload/constrained.h"

#include <algorithm>

#include "util/rng.h"

namespace tetris::workload {

std::vector<std::vector<std::string>> make_class_labels(int num_machines,
                                                        int gpu_period,
                                                        int highmem_period) {
  std::vector<std::vector<std::string>> labels(
      static_cast<std::size_t>(std::max(0, num_machines)));
  for (int m = 0; m < num_machines; ++m) {
    auto& l = labels[static_cast<std::size_t>(m)];
    if (gpu_period > 0 && m % gpu_period == 0) l.push_back("gpu");
    if (highmem_period > 0 && m % highmem_period == 1) l.push_back("highmem");
    // Every machine carries a class; plain workers are "general".
    if (l.empty()) l.push_back("general");
  }
  return labels;
}

sim::Workload make_constrained_suite(const ConstrainedSuiteConfig& config) {
  sim::Workload workload = make_suite_workload(config.base);
  if (config.intensity <= 0) return workload;

  const auto scaled = [&](double f) {
    return std::clamp(f * config.intensity, 0.0, 1.0);
  };
  Rng rng(config.constraint_seed);
  for (auto& job : workload.jobs) {
    // The suite's jobs are map (stage 0) -> reduce (stage 1); guard the
    // indexing anyway so a reshaped base suite degrades gracefully.
    const bool req_gpu = rng.bernoulli(scaled(config.mix.require_gpu));
    const bool req_highmem = rng.bernoulli(scaled(config.mix.require_highmem));
    const bool forbid_gpu =
        !req_gpu && rng.bernoulli(scaled(config.mix.forbid_gpu));
    const bool anti_aff = rng.bernoulli(scaled(config.mix.anti_affinity));
    const bool same_rack = rng.bernoulli(scaled(config.mix.same_rack));
    if (job.stages.empty()) continue;
    auto& map_stage = job.stages.front();
    if (req_gpu) map_stage.constraint.require_labels.push_back("gpu");
    if (forbid_gpu) {
      for (auto& stage : job.stages)
        stage.constraint.forbid_labels.push_back("gpu");
    }
    if (job.stages.size() < 2) continue;
    auto& red_stage = job.stages[1];
    if (req_highmem) red_stage.constraint.require_labels.push_back("highmem");
    if (anti_aff) red_stage.constraint.anti_affinity = true;
    if (same_rack) red_stage.constraint.same_rack_as_input = true;
  }
  return workload;
}

}  // namespace tetris::workload
