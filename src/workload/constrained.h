// Constraint-heavy workload suite (DESIGN.md §13): the §5.1 deployment
// suite decorated with placement constraints over a heterogeneous
// cluster. Production traces motivate every flavour: accelerator stages
// pinned to "gpu" machines, memory-hungry reducers pinned to "highmem",
// latency-sensitive jobs fenced off the accelerator pool, services spread
// one-per-machine for fault tolerance, and shuffle readers held in the
// rack their inputs landed in. The generator scales the whole mix with a
// single `intensity` knob so bench_constraints can sweep from the
// unconstrained base suite (intensity 0) to heavily constrained
// (intensity > 1) over one identical job population.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/spec.h"
#include "workload/suite.h"

namespace tetris::workload {

// Fractions of jobs receiving each constraint flavour, before the
// intensity scaling. Flavours roll independently per job except that a
// gpu requirement suppresses a gpu forbid (they would contradict).
struct ConstraintMix {
  double require_gpu = 0.20;      // map stage must run on "gpu" machines
  double require_highmem = 0.20;  // reduce stage must run on "highmem"
  double forbid_gpu = 0.15;       // whole job keeps off the gpu pool
  double anti_affinity = 0.25;    // reduce spreads at most one per machine
  double same_rack = 0.25;        // reduce reads its shuffle rack-locally
};

struct ConstrainedSuiteConfig {
  SuiteConfig base;
  ConstraintMix mix;
  // Scales every mix fraction (clamped to [0,1]); 0 reproduces the base
  // suite byte for byte — same RNG stream, zero constraints.
  double intensity = 1.0;
  // Machine-class shape, matching make_class_labels below.
  int gpu_period = 4;
  int highmem_period = 3;
  // Dedicated stream for the constraint rolls so decorating jobs never
  // perturbs the base suite's task draws.
  std::uint64_t constraint_seed = 7;
};

// Class labels for a cluster of `num_machines`: machine m carries "gpu"
// when m % gpu_period == 0 and "highmem" when m % highmem_period == 1
// (offset so the pools overlap little). Deterministic striping — tests
// and benches can reason about exactly which machines are in each pool.
// Every label a generated constraint can require is guaranteed declared
// for num_machines >= 2, so validation passes at any scale.
std::vector<std::vector<std::string>> make_class_labels(int num_machines,
                                                        int gpu_period = 4,
                                                        int highmem_period = 3);

// The base suite with constraints rolled on top. Job specs differ from
// make_suite_workload(config.base) only in StageSpec::constraint.
sim::Workload make_constrained_suite(const ConstrainedSuiteConfig& config);

}  // namespace tetris::workload
