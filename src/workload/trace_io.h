// Plain-text (de)serialization of workloads, so generated traces can be
// saved, inspected, diffed and replayed — the "trace-driven" part of the
// evaluation harness.
//
// Format (one record per line, '#' comments ignored):
//   job <arrival> <template_id> <queue> <name>
//   stage <name> [dep ...]
//   task <cpu_cycles> <cores> <mem> <out_bytes> <io_bw> <nsplits>
//   split <bytes> <from_stage> [replica ...]
// Stages belong to the most recent job, tasks to the most recent stage,
// splits to the most recent task; `nsplits` split lines follow each task.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/spec.h"

namespace tetris::workload {

void write_trace(std::ostream& os, const sim::Workload& workload);
std::string trace_to_string(const sim::Workload& workload);

// Throws std::runtime_error with a line number on malformed input.
sim::Workload read_trace(std::istream& is);
sim::Workload trace_from_string(const std::string& text);

bool write_trace_file(const std::string& path, const sim::Workload& workload);
sim::Workload read_trace_file(const std::string& path);

}  // namespace tetris::workload
