#include "workload/stream_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/rng.h"

namespace tetris::workload {

namespace {

// Independent per-job RNG streams: job i's draws never depend on whether
// jobs before it were generated (the source must be rewindable and
// sliceable). The salt separates the shape draw (consulted by peek)
// from the body draws.
Rng job_rng(const StreamGenConfig& config, long index, std::uint64_t salt) {
  const std::uint64_t mix =
      (static_cast<std::uint64_t>(index) + 1) * 0x9e3779b97f4a7c15ull;
  return Rng(config.seed ^ mix ^ salt);
}

struct JobShape {
  int map_tasks = 1;
  int reduce_tasks = 1;
};

JobShape job_shape(const StreamGenConfig& config, long index) {
  Rng rng = job_rng(config, index, /*salt=*/0x5353);
  JobShape shape;
  const double scale = rng.uniform(0.6, 1.4);
  shape.map_tasks = std::max(
      1, static_cast<int>(std::lround(config.tasks_per_job * scale)));
  shape.reduce_tasks = std::max(1, shape.map_tasks / 4);
  return shape;
}

}  // namespace

long stream_job_tasks(const StreamGenConfig& config, long index) {
  const JobShape shape = job_shape(config, index);
  return static_cast<long>(shape.map_tasks) + shape.reduce_tasks;
}

long stream_total_tasks(const StreamGenConfig& config) {
  long total = 0;
  for (long i = 0; i < config.num_jobs; ++i)
    total += stream_job_tasks(config, i);
  return total;
}

sim::JobSpec make_stream_job(const StreamGenConfig& config, long index) {
  const JobShape shape = job_shape(config, index);
  Rng rng = job_rng(config, index, /*salt=*/0xb0d1);

  sim::JobSpec job;
  job.name = "stream-" + std::to_string(index);
  job.arrival = static_cast<double>(index) * config.arrival_spacing;
  job.queue = 0;
  job.template_id = -1;

  // Stage-mean demands, heterogeneous across jobs so packing matters but
  // with bounded spread so the cluster's drain rate stays predictable.
  const double cores = rng.uniform(0.5, 2.0);
  const double mem = rng.uniform(0.5, 3.0) * kGB;
  const double io_bw = rng.uniform(20, 80) * kMB;
  const double input_bytes = rng.uniform(0.3, 1.5) * 64 * kMB;
  const double duration = config.task_seconds * rng.uniform(0.5, 1.5);

  sim::StageSpec map;
  map.name = "map";
  map.tasks.reserve(static_cast<std::size_t>(shape.map_tasks));
  for (int t = 0; t < shape.map_tasks; ++t) {
    sim::TaskSpec task;
    task.peak_cores = cores;
    task.peak_mem = mem;
    task.max_io_bw = io_bw;
    task.cpu_cycles = cores * duration;
    sim::InputSplit split;
    split.bytes = input_bytes;
    const int first = static_cast<int>(
        rng.uniform_int(0, config.num_machines - 1));
    for (int r = 0; r < config.dfs_replication; ++r) {
      split.replicas.push_back(
          static_cast<sim::MachineId>((first + r * 7) % config.num_machines));
    }
    task.inputs.push_back(std::move(split));
    task.output_bytes = input_bytes * 0.25;
    map.tasks.push_back(std::move(task));
  }
  job.stages.push_back(std::move(map));

  sim::StageSpec reduce;
  reduce.name = "reduce";
  reduce.deps = {0};
  reduce.tasks.reserve(static_cast<std::size_t>(shape.reduce_tasks));
  const double shuffle_bytes = input_bytes * 0.25 *
                               static_cast<double>(shape.map_tasks) /
                               static_cast<double>(shape.reduce_tasks);
  for (int t = 0; t < shape.reduce_tasks; ++t) {
    sim::TaskSpec task;
    task.peak_cores = cores;
    task.peak_mem = mem;
    task.max_io_bw = io_bw;
    task.cpu_cycles = cores * duration * 0.5;
    sim::InputSplit split;
    split.bytes = shuffle_bytes;
    split.from_stage = 0;
    task.inputs.push_back(std::move(split));
    task.output_bytes = shuffle_bytes * 0.1;
    reduce.tasks.push_back(std::move(task));
  }
  job.stages.push_back(std::move(reduce));
  return job;
}

bool SyntheticJobSource::peek(sim::JobPeek& out) {
  if (next_ >= config_.num_jobs) return false;
  out.arrival = static_cast<double>(next_) * config_.arrival_spacing;
  out.tasks = stream_job_tasks(config_, next_);
  return true;
}

bool SyntheticJobSource::next(sim::JobSpec& out) {
  if (next_ >= config_.num_jobs) return false;
  out = make_stream_job(config_, next_++);
  return true;
}

sim::Workload materialize_stream(const StreamGenConfig& config) {
  sim::Workload workload;
  workload.jobs.reserve(static_cast<std::size_t>(config.num_jobs));
  for (long i = 0; i < config.num_jobs; ++i)
    workload.jobs.push_back(make_stream_job(config, i));
  return workload;
}

}  // namespace tetris::workload
