// Synthetic job stream for the streaming engine (DESIGN.md §11): a
// deterministic arrival process whose jobs are generated on demand, one
// at a time, so traces of tens of millions of tasks can be simulated —
// or written to a binary trace file — without ever materializing the
// workload. Job `i` is a pure function of (config, i): the source can be
// rewound, sampled, or generated in pieces and always yields the same
// stream.
//
// The shape follows the suite generators in spirit (map/reduce jobs,
// heterogeneous multi-resource demands, DFS-replicated inputs) but keeps
// per-job variation mild and arrivals evenly spaced, so a fixed cluster
// sustains a steady in-flight window — the property the bounded-memory
// soak tests and throughput benches need.
#pragma once

#include <cstdint>

#include "sim/job_source.h"
#include "sim/spec.h"
#include "util/units.h"

namespace tetris::workload {

struct StreamGenConfig {
  long num_jobs = 1000;
  // Mean map-stage width; actual widths jitter in [0.6, 1.4] of this and
  // every job adds a reduce stage of about a quarter the width.
  int tasks_per_job = 100;
  int num_machines = 20;
  // Seconds between consecutive job arrivals. Pick it above
  // (tasks per job) x task_seconds / (cluster cores) to keep the cluster
  // draining as fast as jobs arrive (flat resident window).
  double arrival_spacing = 4.0;
  // Natural task duration scale, seconds.
  double task_seconds = 8.0;
  int dfs_replication = 3;
  std::uint64_t seed = 42;
};

// The number of tasks job `index` will carry, without building it; the
// same draw make_stream_job() uses, so the two always agree.
long stream_job_tasks(const StreamGenConfig& config, long index);

// Total task count of the whole stream (sums stream_job_tasks; O(jobs)).
long stream_total_tasks(const StreamGenConfig& config);

// Builds job `index` of the stream. Deterministic in (config, index).
sim::JobSpec make_stream_job(const StreamGenConfig& config, long index);

// JobSource over the generator: what simulate_stream() consumes and what
// tools/make_stream_trace serializes.
class SyntheticJobSource final : public sim::JobSource {
 public:
  explicit SyntheticJobSource(const StreamGenConfig& config)
      : config_(config) {}

  long total_jobs() const override { return config_.num_jobs; }
  bool peek(sim::JobPeek& out) override;
  bool next(sim::JobSpec& out) override;
  void reset() { next_ = 0; }

 private:
  StreamGenConfig config_;
  long next_ = 0;
};

// The whole stream as an in-memory workload — the batch-mode oracle for
// equivalence tests. Only sensible at small num_jobs.
sim::Workload materialize_stream(const StreamGenConfig& config);

}  // namespace tetris::workload
