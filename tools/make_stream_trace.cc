// Writes a synthetic job stream (workload/stream_gen.h) to a binary trace
// file (workload/trace_binary.h), one job at a time — generator and
// writer are both streaming, so a 10M-task trace is produced in constant
// memory. The file then feeds bench_streaming --trace=<file> or any
// BinaryTraceReader consumer.
//
// Usage: make_stream_trace <out.bin> [jobs] [machines] [seed]
#include <cstdlib>
#include <iostream>
#include <string>

#include "workload/stream_gen.h"
#include "workload/trace_binary.h"

using namespace tetris;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: make_stream_trace <out.bin> [jobs] [machines] "
                 "[seed]\n";
    return 2;
  }
  workload::StreamGenConfig gen;
  if (argc > 2) gen.num_jobs = std::atol(argv[2]);
  if (argc > 3) gen.num_machines = std::atoi(argv[3]);
  if (argc > 4) gen.seed = std::strtoull(argv[4], nullptr, 10);
  gen.arrival_spacing = 1300.0 / (0.65 * 16.0 * gen.num_machines);

  try {
    workload::BinaryTraceWriter writer(argv[1]);
    long tasks = 0;
    for (long i = 0; i < gen.num_jobs; ++i) {
      const sim::JobSpec job = workload::make_stream_job(gen, i);
      for (const auto& s : job.stages) tasks += long(s.tasks.size());
      writer.add(job);
    }
    writer.finalize();
    std::cout << "wrote " << argv[1] << ": " << writer.jobs_written()
              << " jobs, " << tasks << " tasks\n";
  } catch (const std::exception& e) {
    std::cerr << "make_stream_trace: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
