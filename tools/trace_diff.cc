// trace_diff — print the first divergent event between two trace logs.
//
//   trace_diff [--decisions] <a.trace> <b.trace>
//
// With --decisions the streams are first filtered to schedule-derived
// events (the cross-configuration contract: shard timings, group scans
// and tracker reports are instrumentation detail and may legitimately
// differ between e.g. serial and sharded runs). Without it every event
// must match (the replay contract).
//
// Exit status: 0 identical, 1 divergent, 2 usage or I/O error.
#include <exception>
#include <iostream>
#include <string>

#include "trace/event.h"
#include "trace/io.h"
#include "trace/replayer.h"

using namespace tetris;

namespace {

int usage() {
  std::cerr << "usage: trace_diff [--decisions] <a.trace> <b.trace>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  trace::CompareMode mode = trace::CompareMode::kFull;
  int pos = 1;
  if (pos < argc && std::string(argv[pos]) == "--decisions") {
    mode = trace::CompareMode::kDecisions;
    pos++;
  }
  if (argc - pos != 2) return usage();

  trace::TraceLog a, b;
  try {
    a = trace::read_log_file(argv[pos]);
    b = trace::read_log_file(argv[pos + 1]);
  } catch (const std::exception& e) {
    std::cerr << "trace_diff: " << e.what() << "\n";
    return 2;
  }

  const auto describe_log = [&](const char* path, const trace::TraceLog& l) {
    std::cout << path << ": " << l.events.size() << " events (scheduler '"
              << l.scheduler << "', seed " << l.seed;
    if (l.dropped > 0) std::cout << ", " << l.dropped << " dropped";
    std::cout << ")\n";
  };
  describe_log(argv[pos], a);
  describe_log(argv[pos + 1], b);

  const trace::Divergence d = trace::first_divergence(a, b, mode);
  const std::size_t compared =
      trace::filtered_events(a, mode).size();
  if (d.identical) {
    std::cout << "identical: " << compared << " events match"
              << (mode == trace::CompareMode::kDecisions
                      ? " (decision events only)"
                      : "")
              << "\n";
    return 0;
  }
  std::cout << "DIVERGED at event " << d.index << ":\n" << d.description
            << "\n";
  return 1;
}
