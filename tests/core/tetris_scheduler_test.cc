// Behavioural tests of the Tetris scheduler, driven through small
// simulations: admission (no over-allocation, the paper's core invariant),
// packing of complementary tasks, locality preference, SRTF ordering, the
// fairness and barrier knobs, and config validation.
#include "core/tetris_scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/simulator.h"
#include "tests/support/fake_context.h"
#include "util/units.h"

namespace tetris::core {
namespace {

using sim::InputSplit;
using sim::JobSpec;
using sim::SimConfig;
using sim::SimResult;
using sim::StageSpec;
using sim::TaskSpec;
using sim::Workload;

TaskSpec cpu_task(double cores, double mem_gb, double seconds) {
  TaskSpec t;
  t.peak_cores = cores;
  t.peak_mem = mem_gb * kGB;
  t.cpu_cycles = cores * seconds;
  return t;
}

TaskSpec disk_task(double mb, double io_mb, sim::MachineId replica) {
  TaskSpec t;
  t.peak_cores = 0.25;
  t.peak_mem = 0.5 * kGB;
  t.max_io_bw = io_mb * kMB;
  InputSplit s;
  s.bytes = mb * kMB;
  s.replicas = {replica};
  t.inputs.push_back(s);
  return t;
}

SimConfig cluster(int machines = 1) {
  SimConfig cfg;
  cfg.num_machines = machines;
  cfg.machine_capacity =
      Resources::full(8, 8 * kGB, 100 * kMB, 100 * kMB, 125 * kMB, 125 * kMB);
  return cfg;
}

Workload single_stage(std::vector<TaskSpec> tasks) {
  Workload w;
  JobSpec job;
  StageSpec s;
  s.tasks = std::move(tasks);
  job.stages.push_back(std::move(s));
  w.jobs.push_back(std::move(job));
  return w;
}

SimResult run(const SimConfig& cfg, const Workload& w,
              TetrisConfig tcfg = {}) {
  TetrisScheduler tetris(std::move(tcfg));
  return sim::simulate(cfg, w, tetris);
}

// ---------------------------------------------------------------------------
// Config validation

TEST(TetrisConfig, RejectsOutOfRangeKnobs) {
  TetrisConfig bad;
  bad.fairness_knob = 1.0;
  EXPECT_THROW(TetrisScheduler{bad}, std::invalid_argument);
  bad = TetrisConfig{};
  bad.fairness_knob = -0.1;
  EXPECT_THROW(TetrisScheduler{bad}, std::invalid_argument);
  bad = TetrisConfig{};
  bad.barrier_knob = 1.5;
  EXPECT_THROW(TetrisScheduler{bad}, std::invalid_argument);
  bad = TetrisConfig{};
  bad.remote_penalty = -0.2;
  EXPECT_THROW(TetrisScheduler{bad}, std::invalid_argument);
  bad = TetrisConfig{};
  bad.srtf_weight = -1;
  EXPECT_THROW(TetrisScheduler{bad}, std::invalid_argument);
  bad = TetrisConfig{};
  bad.num_threads = -2;
  EXPECT_THROW(TetrisScheduler{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Admission: the no-over-allocation invariant (paper §3.2)

TEST(Tetris, NeverOverAllocatesMixedWorkload) {
  // A mix of cpu-, memory-, disk- and network-bound tasks on a small
  // cluster: every task must run at exactly its natural speed.
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back(cpu_task(2, 1, 8));
  for (int i = 0; i < 10; ++i) tasks.push_back(cpu_task(0.5, 4, 12));
  for (int i = 0; i < 10; ++i) tasks.push_back(disk_task(500, 100, i % 3));
  SimConfig cfg = cluster(3);
  const auto r = run(cfg, single_stage(tasks));
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
  }
}

TEST(Tetris, CpuMemOnlyAblationOverAllocatesDisk) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back(disk_task(500, 100, 0));
  TetrisConfig tcfg;
  tcfg.only_cpu_mem = true;
  const auto r = run(cluster(1), single_stage(tasks), tcfg);
  ASSERT_TRUE(r.completed);
  int slowed = 0;
  for (const auto& t : r.tasks) {
    if (t.duration() > t.natural_duration * 1.5) slowed++;
  }
  EXPECT_GE(slowed, 6);
}

TEST(Tetris, ChecksRemoteLegsAtSourceMachines) {
  // Data on machine 0; mem-starved machine 0 forces remote execution.
  // Machine 0's disk supports only one 100 MB/s reader at natural speed;
  // Tetris's remote check serializes them.
  SimConfig cfg;
  cfg.machine_capacities = {
      Resources::full(8, 0.1 * kGB, 100 * kMB, 100 * kMB, 125 * kMB,
                      250 * kMB),
      Resources::full(8, 8 * kGB, 100 * kMB, 100 * kMB, 250 * kMB,
                      125 * kMB)};
  const auto r = run(cfg, single_stage({disk_task(1250, 100, 0),
                                        disk_task(1250, 100, 0)}));
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
  }
}

// ---------------------------------------------------------------------------
// Packing (§3.2)

TEST(Tetris, PacksComplementaryTasksTogether) {
  // 7 cpu-bound (1 core, tiny disk) + 4 disk-bound (0.25 core) tasks sum
  // to exactly 8 cores and 100 MB/s of disk: their demands are
  // complementary, so a single wave starts all 11.
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 7; ++i) tasks.push_back(cpu_task(1, 0.5, 10));
  for (int i = 0; i < 4; ++i) tasks.push_back(disk_task(250, 25, 0));
  const auto r = run(cluster(1), single_stage(tasks));
  ASSERT_TRUE(r.completed);
  SimTime first = 1e18;
  for (const auto& t : r.tasks) first = std::min(first, t.start);
  int first_wave = 0;
  for (const auto& t : r.tasks) {
    if (t.start <= first + 1e-9) first_wave++;
  }
  EXPECT_EQ(first_wave, 11);
}

TEST(Tetris, PrefersLocalPlacement) {
  // One disk task whose only replica is machine 2 of 3; with the whole
  // cluster idle it must land there.
  const auto r = run(cluster(3), single_stage({disk_task(500, 100, 2)}));
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks[0].host, 2);
  EXPECT_EQ(r.tasks[0].local_fraction, 1.0);
}

TEST(Tetris, ZeroRemotePenaltyStillCompletes) {
  TetrisConfig tcfg;
  tcfg.remote_penalty = 0;
  const auto r = run(cluster(2), single_stage({disk_task(500, 100, 1),
                                               disk_task(500, 100, 1)}),
                     tcfg);
  EXPECT_TRUE(r.completed);
}

// ---------------------------------------------------------------------------
// SRTF (§3.3)

TEST(Tetris, SrtfFinishesSmallJobFirst) {
  Workload w;
  {
    JobSpec big;
    StageSpec s;
    for (int i = 0; i < 32; ++i) s.tasks.push_back(cpu_task(1, 1, 10));
    big.stages.push_back(s);
    w.jobs.push_back(big);
  }
  {
    JobSpec small;
    StageSpec s;
    for (int i = 0; i < 4; ++i) s.tasks.push_back(cpu_task(1, 1, 10));
    small.stages.push_back(s);
    w.jobs.push_back(small);
  }
  TetrisConfig tcfg;
  tcfg.fairness_knob = 0;  // let SRTF act unrestricted
  const auto r = run(cluster(1), w, tcfg);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.jobs[1].finish, r.jobs[0].finish);
}

TEST(Tetris, PackingOnlyIgnoresJobSizes) {
  // With srtf_weight = 0 and equal task shapes, job order follows packing
  // ties, not remaining work; the workload still completes.
  Workload w;
  for (int j = 0; j < 3; ++j) {
    JobSpec job;
    StageSpec s;
    for (int i = 0; i < 8 * (j + 1); ++i)
      s.tasks.push_back(cpu_task(1, 1, 5));
    job.stages.push_back(s);
    w.jobs.push_back(job);
  }
  TetrisConfig tcfg;
  tcfg.srtf_weight = 0;
  const auto r = run(cluster(2), w, tcfg);
  EXPECT_TRUE(r.completed);
}

// ---------------------------------------------------------------------------
// Fairness knob (§3.4)

TEST(Tetris, HighFairnessKnobServesBothJobsConcurrently) {
  // Two equal jobs, f -> 1: the furthest-below job gets each grant, so
  // both run from the first wave.
  Workload w;
  for (int j = 0; j < 2; ++j) {
    JobSpec job;
    StageSpec s;
    for (int i = 0; i < 8; ++i) s.tasks.push_back(cpu_task(1, 1, 10));
    job.stages.push_back(s);
    w.jobs.push_back(job);
  }
  TetrisConfig tcfg;
  tcfg.fairness_knob = 0.95;
  const auto r = run(cluster(1), w, tcfg);
  ASSERT_TRUE(r.completed);
  SimTime first = 1e18;
  for (const auto& t : r.tasks) first = std::min(first, t.start);
  int per_job[2] = {0, 0};
  for (const auto& t : r.tasks) {
    if (t.start <= first + 1e-9) per_job[t.job]++;
  }
  EXPECT_GT(per_job[0], 0);
  EXPECT_GT(per_job[1], 0);
}

TEST(Tetris, FairnessKnobDoesNotIdleOnBarrierBlockedJobs) {
  // Job 0 is waiting at a barrier (reduce blocked on maps); job 1 has
  // runnable work. Even at high f, job 1 must run — a blocked job demands
  // nothing and must not occupy the eligibility slot.
  Workload w;
  {
    JobSpec job;
    StageSpec map;
    map.tasks = {cpu_task(8, 1, 30)};  // occupies the whole machine 0
    StageSpec reduce;
    reduce.deps = {0};
    reduce.tasks = {cpu_task(1, 1, 5)};
    job.stages = {map, reduce};
    w.jobs.push_back(job);
  }
  {
    JobSpec job;
    StageSpec s;
    for (int i = 0; i < 4; ++i) s.tasks.push_back(cpu_task(1, 1, 5));
    job.stages.push_back(s);
    w.jobs.push_back(job);
  }
  TetrisConfig tcfg;
  tcfg.fairness_knob = 0.95;
  const auto r = run(cluster(2), w, tcfg);
  ASSERT_TRUE(r.completed);
  // Job 1's tasks must all run while job 0's map still occupies machine 0
  // (they fit on machine 1).
  for (const auto& t : r.tasks) {
    if (t.job == 1) {
      EXPECT_LT(t.finish, 30.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Barrier knob (§3.5)

TEST(Tetris, BarrierHintPrioritizesStageStragglers) {
  // Job 0: a 10-task stage; 9 tasks are long, already near completion by
  // the time the competing job floods in. With b=0.5 the last tasks get
  // priority over the flood.
  Workload w;
  {
    JobSpec job;
    StageSpec s;
    for (int i = 0; i < 10; ++i) s.tasks.push_back(cpu_task(1, 1, 5));
    StageSpec done;
    done.deps = {0};
    done.tasks = {cpu_task(1, 1, 1)};
    job.stages = {s, done};
    w.jobs.push_back(job);
  }
  {
    JobSpec flood;
    flood.arrival = 2;
    StageSpec s;
    for (int i = 0; i < 64; ++i) s.tasks.push_back(cpu_task(1, 1, 20));
    flood.stages.push_back(s);
    w.jobs.push_back(flood);
  }
  TetrisConfig with_hint;
  with_hint.barrier_knob = 0.5;
  with_hint.fairness_knob = 0;
  with_hint.srtf_weight = 0;
  TetrisScheduler sched(with_hint);
  const auto r = sim::simulate(cluster(1), w, sched);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(sched.stats().priority_placements, 0);
}

TEST(Tetris, BarrierKnobOneNeverPrioritizes) {
  Workload w = single_stage({cpu_task(1, 1, 5), cpu_task(1, 1, 5)});
  TetrisConfig tcfg;
  tcfg.barrier_knob = 1.0;
  TetrisScheduler sched(tcfg);
  const auto r = sim::simulate(cluster(1), w, sched);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(sched.stats().priority_placements, 0);
}

// ---------------------------------------------------------------------------
// Future-demand lookahead (extension; §3.5 "Future Demands")

// Machine busy with a job's maps until ~t=10; its whole-machine reduce is
// imminent. A competing 100-second filler task would otherwise backfill
// the cores freed by early map finishes and block the reduce for its
// whole duration.
Workload lookahead_workload() {
  Workload w;
  {
    JobSpec job;
    StageSpec maps;
    const double durations[] = {8, 9, 10, 11};
    for (int i = 0; i < 4; ++i)
      maps.tasks.push_back(cpu_task(2, 1, durations[i]));
    StageSpec reduce;
    reduce.deps = {0};
    reduce.tasks = {cpu_task(8, 2, 5)};  // the whole machine
    job.stages = {maps, reduce};
    w.jobs.push_back(job);
  }
  {
    JobSpec filler;
    filler.arrival = 5;
    StageSpec s;
    s.tasks = {cpu_task(4, 1, 100)};
    filler.stages.push_back(s);
    w.jobs.push_back(filler);
  }
  return w;
}

TEST(Tetris, FutureLookaheadHoldsResourcesForImminentStage) {
  TetrisConfig base;
  base.fairness_knob = 0;
  base.srtf_weight = 0;  // isolate the lookahead effect
  const auto r_greedy = run(cluster(1), lookahead_workload(), base);
  ASSERT_TRUE(r_greedy.completed);

  TetrisConfig look = base;
  look.future_lookahead = 10;
  const auto r_look = run(cluster(1), lookahead_workload(), look);
  ASSERT_TRUE(r_look.completed);

  // Without lookahead the filler backfills at ~t=9 and the reduce waits
  // behind it; with lookahead the reduce starts right after the maps.
  EXPECT_GT(r_greedy.jobs[0].finish, 60);
  EXPECT_LT(r_look.jobs[0].finish, 25);
}

TEST(Tetris, FutureLookaheadZeroIsGreedy) {
  TetrisConfig tcfg;
  tcfg.fairness_knob = 0;
  tcfg.future_lookahead = 0;
  const auto r = run(cluster(1), lookahead_workload(), tcfg);
  EXPECT_TRUE(r.completed);
}

TEST(TetrisConfig, RejectsNegativeLookahead) {
  TetrisConfig bad;
  bad.future_lookahead = -1;
  EXPECT_THROW(TetrisScheduler{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Starvation reservation (extension; §3.5 leaves this to future work)

// One whole-machine task against a continuous stream of 4-core tasks with
// staggered durations: holes never reach 16 cores naturally, so without a
// reservation the big task waits for the stream to drain.
Workload starvation_workload() {
  Workload w;
  {
    JobSpec big;
    big.name = "big";
    big.arrival = 3;  // the stream already owns the machine
    StageSpec s;
    s.tasks = {cpu_task(16, 4, 10)};
    big.stages.push_back(s);
    w.jobs.push_back(big);
  }
  {
    JobSpec stream;
    stream.name = "stream";
    StageSpec s;
    const double durations[] = {6, 7, 9, 11};
    for (int i = 0; i < 24; ++i) {
      s.tasks.push_back(cpu_task(4, 0.5, durations[i % 4]));
    }
    stream.stages.push_back(s);
    w.jobs.push_back(stream);
  }
  return w;
}

TEST(Tetris, StarvationReservationUnblocksLargeTask) {
  TetrisConfig no_res;
  no_res.fairness_knob = 0;
  const auto r_without = run(cluster(1), starvation_workload(), no_res);
  ASSERT_TRUE(r_without.completed);

  TetrisConfig with_res = no_res;
  with_res.starvation_threshold = 8;
  TetrisScheduler sched(with_res);
  const auto r_with = sim::simulate(cluster(1), starvation_workload(), sched);
  ASSERT_TRUE(r_with.completed);
  EXPECT_GT(sched.stats().starved_placements, 0);

  const auto big_finish = [](const sim::SimResult& r) {
    for (const auto& t : r.tasks) {
      if (t.job == 0) return t.finish;
    }
    return -1.0;
  };
  // The reservation lets the big task run as soon as the four running
  // stream tasks drain (~t=21) instead of behind the whole stream.
  EXPECT_LT(big_finish(r_with) + 10, big_finish(r_without));
}

TEST(Tetris, StarvationThresholdInfinityNeverReserves) {
  TetrisConfig tcfg;
  tcfg.fairness_knob = 0;
  TetrisScheduler sched(tcfg);
  const auto r = sim::simulate(cluster(1), starvation_workload(), sched);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(sched.stats().starved_placements, 0);
}

TEST(TetrisConfig, RejectsNonPositiveStarvationThreshold) {
  TetrisConfig bad;
  bad.starvation_threshold = 0;
  EXPECT_THROW(TetrisScheduler{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fairness preemption (extension; §3.1 excludes preemption for simplicity)

// Job 0 fills the machine with four long tasks; job 1 arrives and fits
// nowhere for a long time. With preemption enabled, Tetris kills one of
// job 0's tasks to let job 1 in.
Workload hog_workload() {
  Workload w;
  {
    JobSpec hog;
    StageSpec s;
    for (int i = 0; i < 4; ++i) s.tasks.push_back(cpu_task(2, 2, 200));
    hog.stages.push_back(s);
    w.jobs.push_back(hog);
  }
  {
    JobSpec late;
    late.arrival = 10;
    StageSpec s;
    s.tasks = {cpu_task(2, 2, 10)};
    late.stages.push_back(s);
    w.jobs.push_back(late);
  }
  return w;
}

TEST(Tetris, PreemptionLetsStarvedJobIn) {
  TetrisConfig tcfg;
  tcfg.fairness_knob = 0;
  tcfg.preempt_for_fairness = true;
  tcfg.preemption_deficit = 0.2;
  TetrisScheduler sched(tcfg);
  const auto r = sim::simulate(cluster(1), hog_workload(), sched);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(sched.stats().preemptions, 0);
  // Job 1 gets in long before job 0's 200-second wave drains.
  EXPECT_LT(r.jobs[1].finish, 100);
  // The preempted task re-executed (attempts > 1 somewhere in job 0).
  int retried = 0;
  for (const auto& t : r.tasks) {
    if (t.job == 0 && t.attempts > 1) retried++;
  }
  EXPECT_GT(retried, 0);
}

TEST(Tetris, NoPreemptionByDefault) {
  TetrisConfig tcfg;
  tcfg.fairness_knob = 0;
  TetrisScheduler sched(tcfg);
  const auto r = sim::simulate(cluster(1), hog_workload(), sched);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(sched.stats().preemptions, 0);
  EXPECT_GT(r.jobs[1].finish, 199);  // waits for the first wave
}

TEST(Tetris, PreemptionIsGentleUnderSmallDeficits) {
  // Both jobs get served promptly: no kill should ever fire.
  Workload w;
  for (int j = 0; j < 2; ++j) {
    JobSpec job;
    StageSpec s;
    for (int i = 0; i < 4; ++i) s.tasks.push_back(cpu_task(1, 1, 10));
    job.stages.push_back(s);
    w.jobs.push_back(job);
  }
  TetrisConfig tcfg;
  tcfg.preempt_for_fairness = true;
  TetrisScheduler sched(tcfg);
  const auto r = sim::simulate(cluster(1), w, sched);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(sched.stats().preemptions, 0);
}

TEST(TetrisConfig, RejectsBadPreemptionDeficit) {
  TetrisConfig bad;
  bad.preemption_deficit = 0;
  EXPECT_THROW(TetrisScheduler{bad}, std::invalid_argument);
  bad.preemption_deficit = 1.5;
  EXPECT_THROW(TetrisScheduler{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Tracker integration (§4.1)

TEST(Tetris, UsageTrackerReclaimsOverEstimates) {
  // With kLearnedProfile, unprofiled stages are over-estimated by 1.8x.
  // Allocation-based tracking strands the over-estimate (3.6 GB booked per
  // 2 GB task -> 2 concurrent); usage-based tracking reclaims it (3
  // concurrent), finishing strictly earlier.
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 16; ++i) tasks.push_back(cpu_task(1, 2, 20));
  SimConfig cfg = cluster(1);
  cfg.estimation.mode = sim::EstimationMode::kLearnedProfile;
  cfg.estimation.overestimate_factor = 1.8;
  cfg.estimation.profile_after = 1000;  // never profiles within this run
  cfg.ramp_up_window = 1.0;

  cfg.tracker = sim::TrackerMode::kAllocation;
  const auto r_alloc = run(cfg, single_stage(tasks));
  cfg.tracker = sim::TrackerMode::kUsage;
  const auto r_usage = run(cfg, single_stage(tasks));
  ASSERT_TRUE(r_alloc.completed);
  ASSERT_TRUE(r_usage.completed);
  EXPECT_LT(r_usage.makespan, r_alloc.makespan);
}

TEST(Tetris, AvoidsMachinesBusyWithIngestion) {
  // Ingestion saturates machine 0's disk; each task has replicas on both
  // machine 0 and machine 1, and Tetris (usage tracker) must use the
  // replica on the quiet machine instead of queueing behind the ingestion.
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 4; ++i) {
    TaskSpec t = disk_task(500, 100, 0);
    t.inputs[0].replicas = {0, 1};
    tasks.push_back(t);
  }
  SimConfig cfg = cluster(3);
  cfg.tracker = sim::TrackerMode::kUsage;
  sim::BackgroundActivity act;
  act.machine = 0;
  act.start = 0;
  act.end = 1e6;
  act.usage[Resource::kDiskRead] = 100 * kMB;
  act.usage[Resource::kDiskWrite] = 100 * kMB;
  cfg.activities.push_back(act);
  const auto r = run(cfg, single_stage(tasks));
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_NE(t.host, 0);
    EXPECT_LT(t.finish, 1000);  // ran during, not after, the ingestion
  }
}

// ---------------------------------------------------------------------------
// End-to-end sanity across knob combinations

struct KnobCase {
  double fairness;
  double barrier;
  double srtf;
  AlignmentKind kind;
};

class TetrisKnobMatrixTest : public ::testing::TestWithParam<KnobCase> {};

TEST_P(TetrisKnobMatrixTest, CompletesWithoutOverAllocation) {
  const KnobCase kc = GetParam();
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 12; ++i) tasks.push_back(cpu_task(2, 2, 6));
  for (int i = 0; i < 6; ++i) tasks.push_back(disk_task(400, 100, i % 2));
  TetrisConfig tcfg;
  tcfg.fairness_knob = kc.fairness;
  tcfg.barrier_knob = kc.barrier;
  tcfg.srtf_weight = kc.srtf;
  tcfg.alignment = kc.kind;
  const auto r = run(cluster(2), single_stage(tasks), tcfg);
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, TetrisKnobMatrixTest,
    ::testing::Values(
        KnobCase{0, 1.0, 0, AlignmentKind::kCosine},
        KnobCase{0, 0.9, 1, AlignmentKind::kCosine},
        KnobCase{0.25, 0.9, 1, AlignmentKind::kCosine},
        KnobCase{0.75, 0.8, 2, AlignmentKind::kCosine},
        KnobCase{0.25, 0.9, 1, AlignmentKind::kL2NormDiff},
        KnobCase{0.25, 0.9, 1, AlignmentKind::kL2NormRatio},
        KnobCase{0.25, 0.9, 1, AlignmentKind::kFfdProd},
        KnobCase{0.25, 0.9, 1, AlignmentKind::kFfdSum}));

// ---------------------------------------------------------------------------
// Hot-path shortcuts (DESIGN.md §8), pinned through the FakeContext: the
// free-capacity index, sticky rejection and probe reuse must change only
// how much work a pass does — never which placements it commits.

Resources cpu_mem(double cores, double mem_gb) {
  Resources d;
  d[Resource::kCpu] = cores;
  d[Resource::kMem] = mem_gb * kGB;
  return d;
}

test::FakeContext hot_path_context() {
  const Resources cap =
      Resources::full(8, 8 * kGB, 100 * kMB, 100 * kMB, 125 * kMB, 125 * kMB);
  test::FakeContext ctx({cap, cap});
  // Machine 0 is cpu-rich / mem-poor, machine 1 the reverse: group E fits
  // the component-wise max (so the free-capacity index cannot drop it) but
  // no single machine, so it cheap-rejects everywhere and every later
  // placement-triggered re-touch of its cells must answer from the sticky
  // bit. G outranks F on machine 0 and places first, so F's already-valid
  // probe there is re-scored via probe reuse in the next round.
  ctx.set_available(0, cpu_mem(6, 1));
  ctx.set_available(1, cpu_mem(1, 6));
  ctx.add_group(0, 0, 1, cpu_mem(4, 4));     // E: fits nowhere, sticky
  ctx.add_group(1, 0, 3, cpu_mem(1, 0.5));   // F: placed via probe reuse
  ctx.add_group(2, 0, 1, cpu_mem(2, 0.25));  // G: wins round 1 on machine 0
  return ctx;
}

TetrisConfig hot_path_config(bool naive) {
  TetrisConfig tcfg;
  tcfg.fairness_knob = 0;  // every job eligible: isolate the cell logic
  tcfg.naive_scoring = naive;
  return tcfg;
}

TEST(TetrisHotPath, OptimizedPlacesExactlyWhatNaivePlaces) {
  auto naive_ctx = hot_path_context();
  TetrisScheduler naive(hot_path_config(true));
  naive.schedule(naive_ctx);

  auto opt_ctx = hot_path_context();
  TetrisScheduler opt(hot_path_config(false));
  opt.schedule(opt_ctx);

  ASSERT_EQ(naive_ctx.placements.size(), opt_ctx.placements.size());
  for (std::size_t i = 0; i < naive_ctx.placements.size(); ++i) {
    const auto& a = naive_ctx.placements[i];
    const auto& b = opt_ctx.placements[i];
    EXPECT_EQ(a.group.job, b.group.job) << i;
    EXPECT_EQ(a.group.stage, b.group.stage) << i;
    EXPECT_EQ(a.machine, b.machine) << i;
    EXPECT_EQ(a.task_index, b.task_index) << i;
  }
  // The shortcuts must save probes, not merely match output.
  EXPECT_LT(opt_ctx.probe_count(), naive_ctx.probe_count());
  EXPECT_GT(opt.perf().sticky_rejects, 0);
  EXPECT_GT(opt.perf().probe_reuses, 0);
  EXPECT_EQ(naive.perf().sticky_rejects, 0);
  EXPECT_EQ(naive.perf().probe_reuses, 0);
  // Both paths score the same cells — the eps normalizer inputs agree.
  EXPECT_EQ(naive.perf().score_evals, opt.perf().score_evals);
}

TEST(TetrisHotPath, FitIndexSkipsGroupsNoMachineCanHold) {
  const Resources cap =
      Resources::full(8, 8 * kGB, 100 * kMB, 100 * kMB, 125 * kMB, 125 * kMB);
  test::FakeContext ctx({cap, cap});
  ctx.add_group(0, 0, 2, cpu_mem(16, 4));  // wider than any machine
  ctx.add_group(1, 0, 2, cpu_mem(2, 1));   // schedulable
  TetrisScheduler opt(hot_path_config(false));
  opt.schedule(ctx);

  // Only the schedulable group's tasks land, and the unfittable group's
  // whole row is skipped every round without a single probe.
  EXPECT_EQ(ctx.placements.size(), 2u);
  for (const auto& p : ctx.placements) EXPECT_EQ(p.group.job, 1);
  EXPECT_GT(opt.perf().fit_index_skips, 0);

  test::FakeContext naive_two({cap, cap});
  naive_two.add_group(0, 0, 2, cpu_mem(16, 4));
  naive_two.add_group(1, 0, 2, cpu_mem(2, 1));
  TetrisScheduler naive(hot_path_config(true));
  naive.schedule(naive_two);
  EXPECT_EQ(naive_two.placements.size(), 2u);
  EXPECT_EQ(naive.perf().fit_index_skips, 0);
  // The unfittable row cheap-rejects before probing on both paths, so
  // probe counts agree here; the index saves the per-cell scan itself.
  EXPECT_EQ(naive_two.probe_count(), ctx.probe_count());
}

TEST(TetrisHotPath, FitIndexIgnoresDownMachines) {
  const Resources cap =
      Resources::full(8, 8 * kGB, 100 * kMB, 100 * kMB, 125 * kMB, 125 * kMB);
  test::FakeContext ctx({cap, cap});
  ctx.set_machine_up(0, false);
  ctx.set_available(1, cpu_mem(1, 1));  // too tight for the group
  ctx.add_group(0, 0, 1, cpu_mem(4, 2));
  TetrisScheduler opt(hot_path_config(false));
  opt.schedule(ctx);
  // The down machine's (full) capacity must not inflate the index: with
  // only machine 1's availability in it, the group is skipped outright.
  EXPECT_TRUE(ctx.placements.empty());
  EXPECT_EQ(ctx.probe_count(), 0);
  EXPECT_GT(opt.perf().fit_index_skips, 0);
}

}  // namespace
}  // namespace tetris::core
