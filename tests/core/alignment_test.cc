#include "core/alignment.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tetris::core {
namespace {

Resources vec(double cpu, double mem, double disk, double net) {
  return Resources::of(cpu, mem, disk, net);
}

TEST(Alignment, CosineIsDotProduct) {
  const Resources d = vec(0.2, 0.1, 0.0, 0.0);
  const Resources a = vec(0.5, 1.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(alignment_score(AlignmentKind::kCosine, d, a),
                   0.2 * 0.5 + 0.1 * 1.0);
}

TEST(Alignment, CosinePrefersTaskMatchingAbundantResource) {
  // Machine with lots of free network: the network-bound task scores
  // higher than an equal-magnitude cpu-bound task (the paper's §1
  // example).
  Resources avail;
  avail[Resource::kCpu] = 0.2;
  avail[Resource::kNetIn] = 1.0;
  Resources cpu_task;
  cpu_task[Resource::kCpu] = 0.3;
  Resources net_task;
  net_task[Resource::kNetIn] = 0.3;
  EXPECT_GT(alignment_score(AlignmentKind::kCosine, net_task, avail),
            alignment_score(AlignmentKind::kCosine, cpu_task, avail));
}

TEST(Alignment, CosinePrefersLargerTask) {
  const Resources avail = Resources::uniform(1.0);
  const Resources small = vec(0.1, 0.1, 0, 0);
  const Resources large = vec(0.3, 0.3, 0, 0);
  EXPECT_GT(alignment_score(AlignmentKind::kCosine, large, avail),
            alignment_score(AlignmentKind::kCosine, small, avail));
}

TEST(Alignment, L2NormDiffPenalizesMisfit) {
  const Resources a = vec(0.5, 0.5, 0.5, 0.5);
  const Resources perfect = a;  // demand == availability
  const Resources off = vec(0.1, 0.9, 0.5, 0.5);
  EXPECT_GT(alignment_score(AlignmentKind::kL2NormDiff, perfect, a),
            alignment_score(AlignmentKind::kL2NormDiff, off, a));
  EXPECT_DOUBLE_EQ(alignment_score(AlignmentKind::kL2NormDiff, perfect, a),
                   0.0);
}

TEST(Alignment, L2NormRatioPenalizesEatingScarceDimensions) {
  Resources avail = Resources::uniform(1.0);
  avail[Resource::kDiskRead] = 0.1;  // scarce
  Resources uses_scarce;
  uses_scarce[Resource::kDiskRead] = 0.1;
  Resources uses_abundant;
  uses_abundant[Resource::kCpu] = 0.1;
  EXPECT_GT(
      alignment_score(AlignmentKind::kL2NormRatio, uses_abundant, avail),
      alignment_score(AlignmentKind::kL2NormRatio, uses_scarce, avail));
}

TEST(Alignment, L2NormRatioSkipsZeroDemandDimensions) {
  const Resources d = vec(0.5, 0, 0, 0);
  const Resources a = Resources::uniform(1.0);
  EXPECT_DOUBLE_EQ(alignment_score(AlignmentKind::kL2NormRatio, d, a),
                   -0.25);
}

TEST(Alignment, FfdVariantsIgnoreMachine) {
  const Resources d = vec(0.2, 0.4, 0.1, 0);
  const Resources a1 = Resources::uniform(1.0);
  const Resources a2 = vec(0.1, 0.2, 0.9, 0.4);
  for (auto kind : {AlignmentKind::kFfdProd, AlignmentKind::kFfdSum}) {
    EXPECT_DOUBLE_EQ(alignment_score(kind, d, a1),
                     alignment_score(kind, d, a2));
  }
}

TEST(Alignment, FfdSumIsDemandSum) {
  const Resources d = vec(0.2, 0.4, 0.1, 0);
  // of() fills disk r+w and net in+out: sum = .2+.4+.1+.1+0+0.
  EXPECT_DOUBLE_EQ(alignment_score(AlignmentKind::kFfdSum, d, {}), 0.8);
}

TEST(Alignment, FfdProdSkipsZeroDimensionsAndPrefersBigger) {
  Resources small;
  small[Resource::kCpu] = 0.1;
  Resources big;
  big[Resource::kCpu] = 0.5;
  EXPECT_GT(alignment_score(AlignmentKind::kFfdProd, big, {}),
            alignment_score(AlignmentKind::kFfdProd, small, {}));
  EXPECT_EQ(alignment_score(AlignmentKind::kFfdProd, Resources{}, {}), 0.0);
}

TEST(Alignment, NamesAreUniqueAndStable) {
  EXPECT_EQ(alignment_name(AlignmentKind::kCosine), "cosine");
  EXPECT_EQ(alignment_name(AlignmentKind::kL2NormDiff), "l2-norm-diff");
  EXPECT_EQ(alignment_name(AlignmentKind::kL2NormRatio), "l2-norm-ratio");
  EXPECT_EQ(alignment_name(AlignmentKind::kFfdProd), "ffd-prod");
  EXPECT_EQ(alignment_name(AlignmentKind::kFfdSum), "ffd-sum");
}

// Property sweep: every scorer is finite and higher-is-better monotone in
// overall demand scale (for demands that fit).
class AlignmentKindTest : public ::testing::TestWithParam<AlignmentKind> {};

TEST_P(AlignmentKindTest, FiniteOnBoundaryInputs) {
  const auto kind = GetParam();
  const Resources zero;
  const Resources one = Resources::uniform(1.0);
  for (const auto& d : {zero, one}) {
    for (const auto& a : {zero, one}) {
      const double s = alignment_score(kind, d, a);
      EXPECT_TRUE(std::isfinite(s))
          << alignment_name(kind) << " d=" << d.to_string()
          << " a=" << a.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AlignmentKindTest,
    ::testing::Values(AlignmentKind::kCosine, AlignmentKind::kL2NormDiff,
                      AlignmentKind::kL2NormRatio, AlignmentKind::kFfdProd,
                      AlignmentKind::kFfdSum),
    [](const auto& info) {
      std::string name(alignment_name(info.param));
      std::erase(name, '-');
      return name;
    });

}  // namespace
}  // namespace tetris::core
