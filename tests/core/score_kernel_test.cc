// The SIMD scoring kernel (DESIGN.md §12) against its scalar oracle, at
// every level: per-lane kernel outputs vs the exact scalar expressions,
// the batch admission mask vs sched::fits_cpu_mem, the vector fit-index
// fold vs the per-machine cwise_max loop, the simd knob's validation, and
// full-simulation bit-identity at machine counts that are NOT a multiple
// of the vector width (so partial blocks and the scalar tail are forced).
#include "core/score_kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/alignment.h"
#include "core/tetris_scheduler.h"
#include "sched/common.h"
#include "sim/simulator.h"
#include "util/resources.h"
#include "util/soa_planes.h"
#include "workload/profiles.h"
#include "workload/suite.h"

namespace tetris {
namespace {

using core::AlignmentKind;
using core::SimdMode;

Resources random_resources(std::mt19937_64& rng, double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  Resources r;
  for (std::size_t i = 0; i < kNumResources; ++i) r.at(i) = d(rng);
  return r;
}

// The exact scalar expression the scheduler's serial scan evaluates per
// cell; every kernel lane is held to these 64 bits.
double scalar_score(AlignmentKind kind, double remote_penalty,
                    const Resources& demand, const Resources& avail,
                    const Resources& cap, double local_fraction) {
  double a = core::alignment_score(kind, demand.normalized_by(cap),
                                   avail.normalized_by(cap));
  a *= 1.0 - remote_penalty * (1.0 - local_fraction);
  return a;
}

struct Cell {
  Resources demand, avail, cap;
  double local_fraction = 1.0;
};

core::simd::ScoreBlock gather_block(const std::vector<Cell>& cells) {
  core::simd::ScoreBlock b;
  b.n = cells.size();
  for (std::size_t l = 0; l < cells.size(); ++l) {
    for (std::size_t r = 0; r < kNumResources; ++r) {
      b.demand[r][l] = cells[l].demand.at(r);
      b.avail[r][l] = cells[l].avail.at(r);
      b.cap[r][l] = cells[l].cap.at(r);
    }
    b.local_fraction[l] = cells[l].local_fraction;
  }
  return b;
}

TEST(ScoreKernelTest, LaneWidthMatchesIsa) {
  const int w = core::simd::lane_width();
  const std::string_view isa = core::simd::isa_name();
  if (isa == "avx2") {
    EXPECT_EQ(w, 4);
  } else if (isa == "sse4.2") {
    EXPECT_EQ(w, 2);
  } else {
    EXPECT_EQ(isa, "scalar");
    EXPECT_EQ(w, 1);
  }
  EXPECT_LE(static_cast<std::size_t>(w), core::simd::ScoreBlock::kMaxLanes);
}

// Full blocks of every alignment kind, random cells: each lane's score
// must be bit-identical to the scalar expression and each lane's fit bit
// must equal the scalar predicate — under both admission modes.
TEST(ScoreKernelTest, BlockLanesAreBitIdenticalToScalar) {
  std::mt19937_64 rng(11);
  const int w = core::simd::lane_width();
  for (const AlignmentKind kind :
       {AlignmentKind::kCosine, AlignmentKind::kL2NormDiff,
        AlignmentKind::kL2NormRatio, AlignmentKind::kFfdProd,
        AlignmentKind::kFfdSum}) {
    for (const bool only_cpu_mem : {false, true}) {
      for (int round = 0; round < 50; ++round) {
        std::vector<Cell> cells(static_cast<std::size_t>(w));
        for (auto& c : cells) {
          c.cap = random_resources(rng, 1.0, 16.0);
          // Demands straddle availability so both fit outcomes occur;
          // occasional zero-capacity dims hit the normalized_by guard.
          c.demand = random_resources(rng, 0.0, 8.0);
          c.avail = random_resources(rng, 0.0, 8.0);
          if (round % 7 == 0) c.cap.at(round % kNumResources) = 0.0;
          c.local_fraction =
              std::uniform_real_distribution<double>(0.0, 1.0)(rng);
        }
        const core::simd::ScoreBlock block = gather_block(cells);
        core::simd::ScoreOut out;
        long blocks = 0, tails = 0;
        core::simd::score_block(kind, 0.1, only_cpu_mem, block, &out,
                                &blocks, &tails);
        for (int l = 0; l < w; ++l) {
          const Cell& c = cells[static_cast<std::size_t>(l)];
          const double want =
              scalar_score(kind, 0.1, c.demand, c.avail, c.cap,
                           c.local_fraction);
          // Bit-level equality (NaN-safe): the kernel must reproduce the
          // scalar result exactly, not approximately.
          EXPECT_EQ(std::memcmp(&want, &out.score[l], sizeof want), 0)
              << "kind " << static_cast<int>(kind) << " lane " << l
              << ": want " << want << " got " << out.score[l];
          const bool want_fit = only_cpu_mem
                                    ? sched::fits_cpu_mem(c.demand, c.avail)
                                    : c.demand.fits_within(c.avail);
          EXPECT_EQ(out.fit[l] != 0, want_fit)
              << "kind " << static_cast<int>(kind) << " lane " << l;
        }
        // Every batched lane lands in exactly one counter.
        EXPECT_EQ(blocks * w + tails, w);
      }
    }
  }
}

// Partial blocks (n < lane_width) take the scalar tail and never read the
// unset lanes.
TEST(ScoreKernelTest, PartialBlocksTakeScalarTail) {
  const int w = core::simd::lane_width();
  if (w == 1) GTEST_SKIP() << "scalar build has no partial blocks";
  std::mt19937_64 rng(13);
  std::vector<Cell> cells(static_cast<std::size_t>(w - 1));
  for (auto& c : cells) {
    c.cap = random_resources(rng, 1.0, 16.0);
    c.demand = random_resources(rng, 0.0, 8.0);
    c.avail = random_resources(rng, 0.0, 8.0);
  }
  const core::simd::ScoreBlock block = gather_block(cells);
  core::simd::ScoreOut out;
  long blocks = 0, tails = 0;
  core::simd::score_block(AlignmentKind::kCosine, 0.1, false, block, &out,
                          &blocks, &tails);
  EXPECT_EQ(blocks, 0);
  EXPECT_EQ(tails, w - 1);
  for (int l = 0; l < w - 1; ++l) {
    const Cell& c = cells[static_cast<std::size_t>(l)];
    EXPECT_EQ(out.score[l], scalar_score(AlignmentKind::kCosine, 0.1,
                                         c.demand, c.avail, c.cap, 1.0));
  }
}

TEST(ScoreKernelTest, FitsCpuMemMaskMatchesScalarPredicate) {
  std::mt19937_64 rng(17);
  for (const std::size_t lanes : {1u, 7u, 8u, 13u}) {
    util::ResourcePlanes demand(lanes);
    std::vector<Resources> d(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      d[l] = random_resources(rng, 0.0, 8.0);
      demand.set(l, d[l]);
    }
    const Resources bound = random_resources(rng, 0.0, 8.0);
    std::vector<unsigned char> mask(demand.padded_lanes(), 0xFF);
    core::simd::fits_cpu_mem_mask(demand, bound, mask.data());
    for (std::size_t l = 0; l < lanes; ++l) {
      EXPECT_EQ(mask[l] != 0, sched::fits_cpu_mem(d[l], bound))
          << "lanes " << lanes << " lane " << l;
    }
  }
}

TEST(ScoreKernelTest, CwiseMaxLanesMatchesScalarFold) {
  std::mt19937_64 rng(19);
  for (const std::size_t lanes : {0u, 1u, 5u, 8u, 13u}) {
    util::ResourcePlanes planes(lanes);
    Resources want;  // zero accumulator, as the scheduler's fold starts
    for (std::size_t l = 0; l < lanes; ++l) {
      const Resources v = random_resources(rng, 0.0, 10.0);
      planes.set(l, v);
      want = want.cwise_max(v);
    }
    EXPECT_EQ(core::simd::cwise_max_lanes(planes, lanes), want)
        << "lanes " << lanes;
  }
}

// Live lanes past the fold bound must not leak in: the scheduler folds
// only real machines, but rack-uplink lanes live in the same planes.
TEST(ScoreKernelTest, CwiseMaxLanesIgnoresLanesPastBound) {
  util::ResourcePlanes planes(6);
  for (std::size_t l = 0; l < 4; ++l) planes.set(l, Resources::uniform(2.0));
  planes.set(4, Resources::uniform(100.0));  // uplink lane: out of bounds
  planes.set(5, Resources::uniform(100.0));
  EXPECT_EQ(core::simd::cwise_max_lanes(planes, 4), Resources::uniform(2.0));
}

// --- knob validation (TetrisConfig::simd) ---

TEST(SimdModeTest, FromStringParsesAndRejects) {
  EXPECT_EQ(core::simd_mode_from_string("off"), SimdMode::kOff);
  EXPECT_EQ(core::simd_mode_from_string("on"), SimdMode::kOn);
  EXPECT_EQ(core::simd_mode_name(SimdMode::kOff), "off");
  EXPECT_EQ(core::simd_mode_name(SimdMode::kOn), "on");
  EXPECT_THROW(core::simd_mode_from_string("avx2"), std::invalid_argument);
  EXPECT_THROW(core::simd_mode_from_string(""), std::invalid_argument);
  EXPECT_THROW(core::simd_mode_from_string("ON"), std::invalid_argument);
  try {
    core::simd_mode_from_string("fast");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message must name both the accepted values and the bad input.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("off"), std::string::npos) << msg;
    EXPECT_NE(msg.find("on"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fast"), std::string::npos) << msg;
  }
}

TEST(SimdModeTest, SchedulerRejectsOutOfRangeMode) {
  core::TetrisConfig cfg;
  cfg.simd = static_cast<SimdMode>(42);
  EXPECT_THROW(core::TetrisScheduler{cfg}, std::invalid_argument);
  cfg.simd = SimdMode::kOn;
  EXPECT_NO_THROW(core::TetrisScheduler{cfg});
}

// --- scalar-tail simulation equivalence ---

// Machine counts 7 and 13 are coprime to every lane width (2, 4), so the
// per-shard batches continually end in partial blocks: the scalar tail and
// the vector body must interleave without disturbing bit-identity.
TEST(ScoreKernelTailTest, OddMachineCountsStayBitIdentical) {
  for (const int machines : {7, 13}) {
    workload::SuiteConfig wcfg;
    wcfg.num_jobs = 16;
    wcfg.num_machines = machines;
    wcfg.task_scale = 0.04;
    wcfg.arrival_window = 200;
    wcfg.seed = 5;
    const sim::Workload w = workload::make_suite_workload(wcfg);

    const auto run = [&](bool naive, SimdMode simd, int threads) {
      sim::SimConfig cfg;
      cfg.num_machines = machines;
      cfg.machine_capacity = workload::facebook_machine();
      cfg.naive_scheduler_view = naive;
      core::TetrisConfig tcfg;
      tcfg.naive_scoring = naive;
      tcfg.simd = simd;
      tcfg.num_threads = threads;
      core::TetrisScheduler sched(tcfg);
      return sim::simulate(cfg, w, sched);
    };

    const sim::SimResult oracle = run(true, SimdMode::kOff, 0);
    for (const int threads : {0, 8}) {
      const sim::SimResult r = run(false, SimdMode::kOn, threads);
      ASSERT_EQ(r.tasks.size(), oracle.tasks.size())
          << machines << " machines, " << threads << " threads";
      for (std::size_t i = 0; i < r.tasks.size(); ++i) {
        EXPECT_EQ(r.tasks[i].host, oracle.tasks[i].host) << i;
        EXPECT_EQ(r.tasks[i].start, oracle.tasks[i].start) << i;
        EXPECT_EQ(r.tasks[i].finish, oracle.tasks[i].finish) << i;
      }
      EXPECT_EQ(r.makespan, oracle.makespan);
      if (core::simd::lane_width() > 1) {
        // Odd machine counts must actually exercise the tail.
        EXPECT_GT(r.perf.scalar_tail_evals, 0)
            << machines << " machines, " << threads << " threads";
      }
    }
  }
}

// --- SoA coherence through a live simulation ---

// Wraps the real scheduler and, after every pass (i.e. after placements
// mutated the planes mid-pass), checks the context's SoA views against
// the virtual accessors lane by lane — and against a from-scratch rebuild.
class PlaneCheckingScheduler : public sim::Scheduler {
 public:
  std::string name() const override { return "plane-check"; }
  void schedule(sim::SchedulerContext& ctx) override {
    check(ctx);
    inner_.schedule(ctx);
    check(ctx);
    passes_checked_++;
  }
  int passes_checked() const { return passes_checked_; }

 private:
  void check(sim::SchedulerContext& ctx) {
    const util::ResourcePlanes* avail = ctx.availability_planes();
    const util::ResourcePlanes* cap = ctx.capacity_planes();
    ASSERT_NE(avail, nullptr);
    ASSERT_NE(cap, nullptr);
    const int n = ctx.num_machines();
    ASSERT_GE(avail->lanes(), static_cast<std::size_t>(n));
    ASSERT_GE(cap->lanes(), static_cast<std::size_t>(n));
    std::vector<Resources> avail_aos(avail->lanes());
    std::vector<Resources> cap_aos(cap->lanes());
    for (std::size_t m = 0; m < avail->lanes(); ++m) {
      avail_aos[m] = ctx.available(static_cast<sim::MachineId>(m));
      cap_aos[m] = ctx.capacity(static_cast<sim::MachineId>(m));
      ASSERT_EQ(avail->gather(m), avail_aos[m]) << "machine " << m;
      ASSERT_EQ(cap->gather(m), cap_aos[m]) << "machine " << m;
    }
    // Padding and layout intact: bit-identical to a fresh rebuild.
    ASSERT_TRUE(avail->identical_to(util::ResourcePlanes::rebuilt_from(
        avail_aos)));
    ASSERT_TRUE(cap->identical_to(util::ResourcePlanes::rebuilt_from(
        cap_aos)));
  }

  core::TetrisScheduler inner_;
  int passes_checked_ = 0;
};

TEST(SoACoherenceTest, PlanesTrackVirtualsThroughChurnAndPlacement) {
  workload::SuiteConfig wcfg;
  wcfg.num_jobs = 16;
  wcfg.num_machines = 9;
  wcfg.task_scale = 0.04;
  wcfg.arrival_window = 200;
  wcfg.seed = 3;
  const sim::Workload w = workload::make_suite_workload(wcfg);

  sim::SimConfig cfg;
  cfg.num_machines = 9;
  cfg.machine_capacity = workload::facebook_machine();
  // Churn takes machines down and back up mid-run; completions and
  // preemption-style refunds flow through the same planes.
  cfg.churn.scripted = {{2, 20.0, 80.0}, {5, 50.0, 140.0}};

  PlaneCheckingScheduler sched;
  const sim::SimResult r = sim::simulate(cfg, w, sched);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(sched.passes_checked(), 10);
}

}  // namespace
}  // namespace tetris
