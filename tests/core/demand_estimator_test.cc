#include "core/demand_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.h"

namespace tetris::core {
namespace {

sim::TaskReport report(sim::JobId job, int stage, int template_id,
                       double cores, double duration) {
  sim::TaskReport r;
  r.job = job;
  r.stage = stage;
  r.template_id = template_id;
  r.peak_usage[Resource::kCpu] = cores;
  r.peak_usage[Resource::kMem] = 2 * kGB;
  r.duration = duration;
  return r;
}

TEST(DemandEstimator, OverestimatesWithoutData) {
  DemandEstimator est;
  Resources def;
  def[Resource::kCpu] = 2;
  const Estimate e = est.estimate(1, 0, -1, def, 10);
  EXPECT_EQ(e.source, EstimateSource::kOverestimate);
  EXPECT_DOUBLE_EQ(e.demand[Resource::kCpu], 2 * 1.4);
  EXPECT_DOUBLE_EQ(e.duration, 14);
}

TEST(DemandEstimator, UsesPhaseProfileAfterMinSamples) {
  EstimatorConfig cfg;
  cfg.min_samples = 2;
  cfg.headroom_stdevs = 0;
  DemandEstimator est(cfg);
  est.observe(report(1, 0, -1, 3.0, 12));
  EXPECT_EQ(est.estimate(1, 0, -1, {}, 0).source,
            EstimateSource::kOverestimate);
  est.observe(report(1, 0, -1, 5.0, 8));
  const Estimate e = est.estimate(1, 0, -1, {}, 0);
  EXPECT_EQ(e.source, EstimateSource::kPhaseProfile);
  EXPECT_DOUBLE_EQ(e.demand[Resource::kCpu], 4.0);
  EXPECT_DOUBLE_EQ(e.duration, 10.0);
}

TEST(DemandEstimator, PhaseProfilesAreIndependentPerStage) {
  EstimatorConfig cfg;
  cfg.min_samples = 1;
  cfg.headroom_stdevs = 0;
  DemandEstimator est(cfg);
  est.observe(report(1, 0, -1, 3.0, 12));
  EXPECT_EQ(est.estimate(1, 0, -1, {}, 0).source,
            EstimateSource::kPhaseProfile);
  EXPECT_EQ(est.estimate(1, 1, -1, {}, 0).source,
            EstimateSource::kOverestimate);
  EXPECT_EQ(est.estimate(2, 0, -1, {}, 0).source,
            EstimateSource::kOverestimate);
}

TEST(DemandEstimator, TemplateHistoryServesRecurringJobs) {
  EstimatorConfig cfg;
  cfg.min_samples = 1;
  cfg.headroom_stdevs = 0;
  DemandEstimator est(cfg);
  // Job 1 of template 9 ran; a *new* job 2 of the same template asks.
  est.observe(report(1, 0, 9, 3.0, 12));
  const Estimate e = est.estimate(2, 0, 9, {}, 0);
  EXPECT_EQ(e.source, EstimateSource::kTemplateHistory);
  EXPECT_DOUBLE_EQ(e.demand[Resource::kCpu], 3.0);
}

TEST(DemandEstimator, PhaseProfileBeatsTemplateHistory) {
  EstimatorConfig cfg;
  cfg.min_samples = 1;
  cfg.headroom_stdevs = 0;
  DemandEstimator est(cfg);
  est.observe(report(1, 0, 9, 3.0, 12));  // template history says 3 cores
  est.observe(report(2, 0, 9, 6.0, 12));  // this very phase says 6
  const Estimate e = est.estimate(2, 0, 9, {}, 0);
  EXPECT_EQ(e.source, EstimateSource::kPhaseProfile);
  EXPECT_DOUBLE_EQ(e.demand[Resource::kCpu], 6.0);
}

TEST(DemandEstimator, HeadroomAddsStdevs) {
  EstimatorConfig cfg;
  cfg.min_samples = 2;
  cfg.headroom_stdevs = 1.0;
  DemandEstimator est(cfg);
  est.observe(report(1, 0, -1, 2.0, 10));
  est.observe(report(1, 0, -1, 4.0, 10));
  const Estimate e = est.estimate(1, 0, -1, {}, 0);
  // mean 3, sample stdev sqrt(2).
  EXPECT_NEAR(e.demand[Resource::kCpu], 3.0 + std::sqrt(2.0), 1e-9);
}

TEST(DemandEstimator, TracksObservationCount) {
  DemandEstimator est;
  EXPECT_EQ(est.observations(), 0);
  est.observe(report(1, 0, -1, 1, 1));
  est.observe(report(1, 0, 4, 1, 1));
  EXPECT_EQ(est.observations(), 2);
}

TEST(DemandEstimator, NegativeTemplateNeverMatchesTemplateKeys) {
  EstimatorConfig cfg;
  cfg.min_samples = 1;
  DemandEstimator est(cfg);
  est.observe(report(1, 0, -1, 3.0, 12));
  // A different job without template data gets the over-estimate.
  EXPECT_EQ(est.estimate(2, 0, -1, {}, 0).source,
            EstimateSource::kOverestimate);
}

TEST(DemandEstimator, RejectsBadConfig) {
  EstimatorConfig bad;
  bad.overestimate_factor = 0.9;
  EXPECT_THROW(DemandEstimator{bad}, std::invalid_argument);
  bad = EstimatorConfig{};
  bad.min_samples = 0;
  EXPECT_THROW(DemandEstimator{bad}, std::invalid_argument);
  bad = EstimatorConfig{};
  bad.headroom_stdevs = -1;
  EXPECT_THROW(DemandEstimator{bad}, std::invalid_argument);
}

TEST(DemandEstimator, ConvergesToTrueMeanOverManyReports) {
  EstimatorConfig cfg;
  cfg.headroom_stdevs = 0;
  DemandEstimator est(cfg);
  for (int i = 0; i < 100; ++i) {
    est.observe(report(1, 0, -1, 2.0 + (i % 2 ? 0.5 : -0.5), 10));
  }
  const Estimate e = est.estimate(1, 0, -1, {}, 0);
  EXPECT_NEAR(e.demand[Resource::kCpu], 2.0, 1e-9);
  EXPECT_NEAR(e.duration, 10.0, 1e-9);
}

}  // namespace
}  // namespace tetris::core
