#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/units.h"
#include "workload/suite.h"

namespace tetris::workload {
namespace {

sim::Workload sample_workload() {
  SuiteConfig cfg;
  cfg.num_jobs = 10;
  cfg.num_machines = 5;
  cfg.task_scale = 0.02;
  cfg.seed = 4;
  return make_suite_workload(cfg);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const sim::Workload original = sample_workload();
  const sim::Workload parsed = trace_from_string(trace_to_string(original));
  ASSERT_EQ(parsed.jobs.size(), original.jobs.size());
  ASSERT_EQ(parsed.total_tasks(), original.total_tasks());
  for (std::size_t j = 0; j < original.jobs.size(); ++j) {
    const auto& a = original.jobs[j];
    const auto& b = parsed.jobs[j];
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.template_id, b.template_id);
    EXPECT_EQ(a.queue, b.queue);
    ASSERT_EQ(a.stages.size(), b.stages.size());
    for (std::size_t s = 0; s < a.stages.size(); ++s) {
      EXPECT_EQ(a.stages[s].deps, b.stages[s].deps);
      ASSERT_EQ(a.stages[s].tasks.size(), b.stages[s].tasks.size());
      for (std::size_t t = 0; t < a.stages[s].tasks.size(); ++t) {
        const auto& ta = a.stages[s].tasks[t];
        const auto& tb = b.stages[s].tasks[t];
        EXPECT_DOUBLE_EQ(ta.cpu_cycles, tb.cpu_cycles);
        EXPECT_DOUBLE_EQ(ta.peak_cores, tb.peak_cores);
        EXPECT_DOUBLE_EQ(ta.peak_mem, tb.peak_mem);
        EXPECT_DOUBLE_EQ(ta.output_bytes, tb.output_bytes);
        EXPECT_DOUBLE_EQ(ta.max_io_bw, tb.max_io_bw);
        ASSERT_EQ(ta.inputs.size(), tb.inputs.size());
        for (std::size_t i = 0; i < ta.inputs.size(); ++i) {
          EXPECT_DOUBLE_EQ(ta.inputs[i].bytes, tb.inputs[i].bytes);
          EXPECT_EQ(ta.inputs[i].from_stage, tb.inputs[i].from_stage);
          EXPECT_EQ(ta.inputs[i].replicas, tb.inputs[i].replicas);
        }
      }
    }
  }
}

TEST(TraceIo, DoubleRoundTripIsIdentity) {
  const std::string once = trace_to_string(sample_workload());
  const std::string twice = trace_to_string(trace_from_string(once));
  EXPECT_EQ(once, twice);
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "\n"
      "job 5 -1 0 myjob\n"
      "# another\n"
      "stage map\n"
      "task 10 1 1073741824 0 104857600 0\n";
  const auto w = trace_from_string(text);
  ASSERT_EQ(w.jobs.size(), 1u);
  EXPECT_EQ(w.jobs[0].name, "myjob");
  EXPECT_EQ(w.jobs[0].arrival, 5);
}

TEST(TraceIo, ParsesSplitsWithReplicasAndShuffles) {
  const std::string text =
      "job 0 3 2 j\n"
      "stage map\n"
      "task 10 1 1073741824 0 104857600 1\n"
      "split 1000 -1 2 4 6\n"
      "stage reduce 0\n"
      "task 0 1 1073741824 0 104857600 1\n"
      "split 500 0\n";
  const auto w = trace_from_string(text);
  const auto& map_split = w.jobs[0].stages[0].tasks[0].inputs[0];
  EXPECT_EQ(map_split.replicas, (std::vector<sim::MachineId>{2, 4, 6}));
  EXPECT_EQ(map_split.from_stage, -1);
  const auto& red_split = w.jobs[0].stages[1].tasks[0].inputs[0];
  EXPECT_EQ(red_split.from_stage, 0);
  EXPECT_EQ(w.jobs[0].template_id, 3);
  EXPECT_EQ(w.jobs[0].queue, 2);
}

TEST(TraceIo, RejectsStageBeforeJob) {
  EXPECT_THROW(trace_from_string("stage s\n"), std::runtime_error);
}

TEST(TraceIo, RejectsTaskBeforeStage) {
  EXPECT_THROW(trace_from_string("job 0 -1 0 j\ntask 1 1 1 0 1 0\n"),
               std::runtime_error);
}

TEST(TraceIo, RejectsUnexpectedSplit) {
  EXPECT_THROW(trace_from_string("job 0 -1 0 j\nstage s\nsplit 1 -1\n"),
               std::runtime_error);
}

TEST(TraceIo, RejectsMissingSplits) {
  // Task declares 2 splits but only 1 follows.
  const std::string text =
      "job 0 -1 0 j\nstage s\ntask 1 1 1 0 1 2\nsplit 1 -1\n";
  EXPECT_THROW(trace_from_string(text), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownRecord) {
  EXPECT_THROW(trace_from_string("frobnicate 1 2 3\n"), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedNumbers) {
  EXPECT_THROW(trace_from_string("job abc -1 0 j\nstage s\n"),
               std::runtime_error);
}

TEST(TraceIo, RejectsSemanticErrors) {
  // Parses fine but stage deps are out of range.
  const std::string text =
      "job 0 -1 0 j\nstage s 7\ntask 1 1 1 0 1 0\n";
  EXPECT_THROW(trace_from_string(text), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "tetris_trace_test.txt";
  const sim::Workload original = sample_workload();
  ASSERT_TRUE(write_trace_file(path.string(), original));
  const sim::Workload parsed = read_trace_file(path.string());
  EXPECT_EQ(parsed.total_tasks(), original.total_tasks());
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path/trace.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace tetris::workload
