// Tests of the workload generators: structural validity, the §5.1 class
// mix, the Facebook-like trace's distributional properties, and the
// motivating example's shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/workload_analysis.h"
#include "sim/spec.h"
#include "util/stats.h"
#include "workload/facebook.h"
#include "workload/motivating.h"
#include "workload/profiles.h"
#include "workload/suite.h"

namespace tetris::workload {
namespace {

// ---------------------------------------------------------------------------
// §5.1 suite

SuiteConfig small_suite() {
  SuiteConfig cfg;
  cfg.num_jobs = 40;
  cfg.num_machines = 10;
  cfg.task_scale = 0.05;
  cfg.seed = 3;
  return cfg;
}

TEST(Suite, GeneratesRequestedJobCountAndValidates) {
  const auto w = make_suite_workload(small_suite());
  EXPECT_EQ(w.jobs.size(), 40u);
  EXPECT_EQ(sim::validate(w), "");
}

TEST(Suite, EveryJobIsMapReduce) {
  const auto w = make_suite_workload(small_suite());
  for (const auto& job : w.jobs) {
    ASSERT_EQ(job.stages.size(), 2u);
    EXPECT_TRUE(job.stages[0].deps.empty());
    EXPECT_EQ(job.stages[1].deps, std::vector<int>{0});
    // Reduces shuffle from the map stage.
    for (const auto& t : job.stages[1].tasks) {
      ASSERT_EQ(t.inputs.size(), 1u);
      EXPECT_EQ(t.inputs[0].from_stage, 0);
    }
  }
}

TEST(Suite, ArrivalsRespectWindow) {
  auto cfg = small_suite();
  cfg.arrival_window = 500;
  const auto w = make_suite_workload(cfg);
  for (const auto& job : w.jobs) {
    EXPECT_GE(job.arrival, 0);
    EXPECT_LE(job.arrival, 500);
  }
  cfg.arrival_window = 0;
  const auto batch = make_suite_workload(cfg);
  for (const auto& job : batch.jobs) EXPECT_EQ(job.arrival, 0);
}

TEST(Suite, ReplicasStayWithinCluster) {
  const auto w = make_suite_workload(small_suite());
  for (const auto& job : w.jobs) {
    for (const auto& stage : job.stages) {
      for (const auto& task : stage.tasks) {
        for (const auto& split : task.inputs) {
          for (auto r : split.replicas) {
            EXPECT_GE(r, 0);
            EXPECT_LT(r, 10);
          }
        }
      }
    }
  }
}

TEST(Suite, TaskScaleScalesSizes) {
  auto cfg = small_suite();
  cfg.task_scale = 0.05;
  const auto small = make_suite_workload(cfg);
  cfg.task_scale = 0.5;
  const auto big = make_suite_workload(cfg);
  EXPECT_GT(big.total_tasks(), small.total_tasks() * 5);
}

TEST(Suite, ContainsMultipleSizeClasses) {
  auto cfg = small_suite();
  cfg.num_jobs = 100;
  const auto w = make_suite_workload(cfg);
  std::set<std::string> prefixes;
  for (const auto& job : w.jobs) {
    prefixes.insert(job.name.substr(0, job.name.rfind('-')));
  }
  EXPECT_EQ(prefixes.size(), 4u);  // the four §5.1 classes
}

TEST(Suite, RecurringFractionAssignsTemplates) {
  auto cfg = small_suite();
  cfg.num_jobs = 200;
  cfg.recurring_fraction = 0.5;
  const auto w = make_suite_workload(cfg);
  int recurring = 0;
  for (const auto& job : w.jobs) {
    if (job.template_id >= 0) {
      recurring++;
      EXPECT_LT(job.template_id, cfg.num_templates);
    }
  }
  EXPECT_NEAR(recurring, 100, 25);
}

TEST(Suite, DeterministicForSeed) {
  const auto a = make_suite_workload(small_suite());
  const auto b = make_suite_workload(small_suite());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(a.total_tasks(), b.total_tasks());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].arrival, b.jobs[j].arrival);
    EXPECT_EQ(a.jobs[j].name, b.jobs[j].name);
  }
}

// ---------------------------------------------------------------------------
// Facebook-like trace

FacebookConfig small_fb() {
  FacebookConfig cfg;
  cfg.num_jobs = 150;
  cfg.num_machines = 20;
  cfg.task_scale = 0.3;
  cfg.seed = 5;
  return cfg;
}

TEST(Facebook, ValidatesAndHasHeavyTail) {
  const auto w = make_facebook_workload(small_fb());
  EXPECT_EQ(sim::validate(w), "");
  std::vector<double> sizes;
  for (const auto& job : w.jobs) {
    sizes.push_back(static_cast<double>(job.stages[0].tasks.size()));
  }
  const auto s = summarize(sizes);
  EXPECT_GT(s.max, 10 * s.p50);  // a few huge jobs dominate
}

TEST(Facebook, DemandsAreDiverseAndWeaklyCorrelated) {
  auto cfg = small_fb();
  cfg.num_jobs = 300;
  const auto w = make_facebook_workload(cfg);
  const auto samples = analysis::collect_demand_samples(w);
  const auto covs = analysis::demand_covs(samples);
  // Order-of-magnitude diversity on every attribute (paper: 1.5-2.6).
  for (double cov : covs) EXPECT_GT(cov, 0.6);
  const auto corr = analysis::demand_correlations(samples);
  // cores-vs-mem and cores-vs-io stay weak as in Table 2.
  EXPECT_LT(std::abs(corr[0][1]), 0.35);
  EXPECT_LT(std::abs(corr[0][2]), 0.35);
  EXPECT_LT(std::abs(corr[0][3]), 0.35);
}

TEST(Facebook, DeepDagsPresentAndWellFormed) {
  auto cfg = small_fb();
  cfg.deep_dag_fraction = 0.5;
  const auto w = make_facebook_workload(cfg);
  int deep = 0;
  for (const auto& job : w.jobs) {
    if (job.stages.size() > 2) deep++;
    for (std::size_t s = 1; s < job.stages.size(); ++s) {
      EXPECT_EQ(job.stages[s].deps,
                std::vector<int>{static_cast<int>(s) - 1});
    }
  }
  EXPECT_GT(deep, 0);
}

TEST(Facebook, TaskDemandsFitTheReferenceMachine) {
  const auto w = make_facebook_workload(small_fb());
  const Resources machine = facebook_machine();
  for (const auto& job : w.jobs) {
    for (const auto& stage : job.stages) {
      for (const auto& task : stage.tasks) {
        EXPECT_LE(task.peak_cores, machine[Resource::kCpu]);
        EXPECT_LE(task.peak_mem, machine[Resource::kMem]);
      }
    }
  }
}

TEST(Facebook, SeedsProduceDifferentTraces) {
  auto cfg = small_fb();
  const auto a = make_facebook_workload(cfg);
  cfg.seed = 99;
  const auto b = make_facebook_workload(cfg);
  EXPECT_NE(a.total_tasks(), b.total_tasks());
}

// ---------------------------------------------------------------------------
// Motivating example

TEST(Motivating, MatchesPaperShape) {
  const auto ex = make_motivating_example();
  EXPECT_EQ(sim::validate(ex.workload), "");
  ASSERT_EQ(ex.workload.jobs.size(), 3u);
  EXPECT_EQ(ex.workload.jobs[0].stages[0].tasks.size(), 18u);  // A maps
  EXPECT_EQ(ex.workload.jobs[1].stages[0].tasks.size(), 6u);   // B maps
  EXPECT_EQ(ex.workload.jobs[2].stages[0].tasks.size(), 6u);   // C maps
  for (const auto& job : ex.workload.jobs) {
    EXPECT_EQ(job.stages[1].tasks.size(), 3u);  // reduces
  }
  // Cluster totals: 18 cores, 36 GB, 3 Gbps in.
  Resources total;
  for (const auto& cap : ex.config.resolved_capacities()) total += cap;
  EXPECT_DOUBLE_EQ(total[Resource::kCpu], 18);
  EXPECT_DOUBLE_EQ(total[Resource::kMem], 36 * kGB);
  EXPECT_DOUBLE_EQ(total[Resource::kNetIn], 3 * kGbps);
}

TEST(Motivating, MapPhaseFillsTheClusterExactly) {
  const auto ex = make_motivating_example();
  // A's 18 maps use exactly all memory; B's 6 maps exactly all cores.
  double a_mem = 0, b_cores = 0;
  for (const auto& t : ex.workload.jobs[0].stages[0].tasks)
    a_mem += t.peak_mem;
  for (const auto& t : ex.workload.jobs[1].stages[0].tasks)
    b_cores += t.peak_cores;
  EXPECT_DOUBLE_EQ(a_mem, 36 * kGB);
  EXPECT_DOUBLE_EQ(b_cores, 18);
}

}  // namespace
}  // namespace tetris::workload
