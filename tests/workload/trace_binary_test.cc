// Property and adversarial tests for the binary trace format
// (workload/trace_binary.h): randomized generate → write → incremental-
// read cycles must reproduce every field bit-for-bit at any chunk size,
// and malformed files — truncations at arbitrary byte positions, bad
// magic, corrupt sizes, out-of-order arrivals — must be rejected with an
// error that names the byte offset and job, never decoded into garbage.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/stream_gen.h"
#include "workload/trace_binary.h"

namespace tetris::workload {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "trace_binary_" + name + ".bin";
}

// Random job with the corners the encoder must carry: empty names,
// unicode-ish bytes, dependency lists, splits of all three kinds (DFS
// replicas, shuffle from_stage, generated), zero-task stages.
sim::JobSpec random_job(Rng& rng, double arrival) {
  sim::JobSpec job;
  const int name_len = static_cast<int>(rng.uniform_int(0, 12));
  for (int i = 0; i < name_len; ++i)
    job.name.push_back(static_cast<char>(rng.uniform_int(1, 255)));
  job.arrival = arrival;
  job.template_id = static_cast<int>(rng.uniform_int(-1, 5));
  job.queue = static_cast<int>(rng.uniform_int(0, 3));
  const int nstages = static_cast<int>(rng.uniform_int(1, 4));
  for (int s = 0; s < nstages; ++s) {
    sim::StageSpec stage;
    stage.name = "s" + std::to_string(s);
    for (int d = 0; d < s; ++d)
      if (rng.uniform(0, 1) < 0.5) stage.deps.push_back(d);
    const int ntasks = static_cast<int>(rng.uniform_int(0, 6));
    for (int t = 0; t < ntasks; ++t) {
      sim::TaskSpec task;
      task.cpu_cycles = rng.uniform(0, 100);
      task.peak_cores = rng.uniform(0.1, 4);
      task.peak_mem = rng.uniform(0.1, 8) * kGB;
      task.output_bytes = rng.uniform(0, 512) * kMB;
      task.max_io_bw = rng.uniform(10, 200) * kMB;
      const int nsplits = static_cast<int>(rng.uniform_int(0, 3));
      for (int i = 0; i < nsplits; ++i) {
        sim::InputSplit split;
        split.bytes = rng.uniform(1, 256) * kMB;
        const double kind = rng.uniform(0, 1);
        if (kind < 0.4) {
          const int nreps = static_cast<int>(rng.uniform_int(1, 3));
          for (int r = 0; r < nreps; ++r)
            split.replicas.push_back(
                static_cast<sim::MachineId>(rng.uniform_int(0, 19)));
        } else if (kind < 0.7 && !stage.deps.empty()) {
          split.from_stage = stage.deps[static_cast<std::size_t>(
              rng.uniform_int(0, long(stage.deps.size()) - 1))];
        }  // else: generated data, no replicas, no from_stage
        task.inputs.push_back(std::move(split));
      }
      stage.tasks.push_back(std::move(task));
    }
    job.stages.push_back(std::move(stage));
  }
  return job;
}

sim::Workload random_workload(std::uint64_t seed, int jobs) {
  Rng rng(seed);
  sim::Workload w;
  double arrival = 0;
  for (int i = 0; i < jobs; ++i) {
    arrival += rng.uniform(0, 10);  // non-decreasing by construction
    w.jobs.push_back(random_job(rng, arrival));
  }
  return w;
}

void expect_jobs_equal(const sim::JobSpec& a, const sim::JobSpec& b,
                       int index) {
  SCOPED_TRACE("job " + std::to_string(index));
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.arrival, b.arrival);
  EXPECT_EQ(a.template_id, b.template_id);
  EXPECT_EQ(a.queue, b.queue);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    const auto& sa = a.stages[s];
    const auto& sb = b.stages[s];
    EXPECT_EQ(sa.name, sb.name);
    EXPECT_EQ(sa.deps, sb.deps);
    ASSERT_EQ(sa.tasks.size(), sb.tasks.size());
    for (std::size_t t = 0; t < sa.tasks.size(); ++t) {
      const auto& ta = sa.tasks[t];
      const auto& tb = sb.tasks[t];
      EXPECT_EQ(ta.cpu_cycles, tb.cpu_cycles);
      EXPECT_EQ(ta.peak_cores, tb.peak_cores);
      EXPECT_EQ(ta.peak_mem, tb.peak_mem);
      EXPECT_EQ(ta.output_bytes, tb.output_bytes);
      EXPECT_EQ(ta.max_io_bw, tb.max_io_bw);
      ASSERT_EQ(ta.inputs.size(), tb.inputs.size());
      for (std::size_t i = 0; i < ta.inputs.size(); ++i) {
        EXPECT_EQ(ta.inputs[i].bytes, tb.inputs[i].bytes);
        EXPECT_EQ(ta.inputs[i].from_stage, tb.inputs[i].from_stage);
        EXPECT_EQ(ta.inputs[i].replicas, tb.inputs[i].replicas);
      }
    }
  }
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_all(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<long>(bytes.size()));
}

TEST(TraceBinaryTest, RandomizedRoundTripsAreExact) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const sim::Workload w = random_workload(seed, 20);
    const std::string path =
        temp_path("roundtrip_" + std::to_string(seed));
    write_binary_trace_file(path, w);
    const sim::Workload back = read_binary_trace_file(path);
    ASSERT_EQ(back.jobs.size(), w.jobs.size());
    for (std::size_t i = 0; i < w.jobs.size(); ++i)
      expect_jobs_equal(w.jobs[i], back.jobs[i], static_cast<int>(i));
    std::remove(path.c_str());
  }
}

TEST(TraceBinaryTest, AdversarialChunkSizesDecodeTheSameStream) {
  const sim::Workload w = random_workload(7, 30);
  const std::string path = temp_path("chunks");
  write_binary_trace_file(path, w);
  // Chunk sizes straddling every boundary: single bytes, primes smaller
  // than any header, sizes around the header sizes, and huge.
  for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                            std::size_t{15}, std::size_t{16}, std::size_t{17},
                            std::size_t{23}, std::size_t{24}, std::size_t{25},
                            std::size_t{1024}, std::size_t{1 << 20}}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    BinaryTraceReader reader(path, chunk);
    EXPECT_EQ(reader.total_jobs(), long(w.jobs.size()));
    sim::JobSpec job;
    int i = 0;
    sim::JobPeek head;
    while (reader.peek(head)) {
      ASSERT_LT(i, int(w.jobs.size()));
      // peek's metadata must agree with the decoded job that follows.
      EXPECT_EQ(head.arrival, w.jobs[size_t(i)].arrival);
      ASSERT_TRUE(reader.next(job));
      long tasks = 0;
      for (const auto& s : job.stages) tasks += long(s.tasks.size());
      EXPECT_EQ(head.tasks, tasks);
      expect_jobs_equal(w.jobs[size_t(i)], job, i);
      ++i;
    }
    EXPECT_EQ(i, int(w.jobs.size()));
    EXPECT_FALSE(reader.next(job));
  }
  std::remove(path.c_str());
}

TEST(TraceBinaryTest, StreamGeneratorRoundTripsThroughFile) {
  StreamGenConfig gen;
  gen.num_jobs = 25;
  gen.seed = 9;
  const sim::Workload w = materialize_stream(gen);
  const std::string path = temp_path("gen");
  write_binary_trace_file(path, w);
  const sim::Workload back = read_binary_trace_file(path);
  ASSERT_EQ(back.jobs.size(), w.jobs.size());
  for (std::size_t i = 0; i < w.jobs.size(); ++i)
    expect_jobs_equal(w.jobs[i], back.jobs[i], static_cast<int>(i));
  std::remove(path.c_str());
}

TEST(TraceBinaryTest, TruncationAtEveryPrefixIsRejectedCleanly) {
  const sim::Workload w = random_workload(11, 3);
  const std::string path = temp_path("trunc");
  write_binary_trace_file(path, w);
  const std::string bytes = read_all(path);
  ASSERT_GT(bytes.size(), 40u);
  // Every proper prefix must either fail construction (header cut) or
  // fail while reading — with a runtime_error, never garbage or a crash.
  // Stride keeps the loop fast; the edges and both header sizes are hit.
  std::vector<std::size_t> cuts = {0, 1, 3, 4, 7, 8, 11, 15, 16, 17,
                                   23, 24, 25, 39, 40, 41};
  for (std::size_t c = 50; c < bytes.size(); c += 97) cuts.push_back(c);
  cuts.push_back(bytes.size() - 1);
  for (std::size_t cut : cuts) {
    if (cut >= bytes.size()) continue;
    SCOPED_TRACE("cut=" + std::to_string(cut));
    write_all(path, bytes.substr(0, cut));
    try {
      BinaryTraceReader reader(path, /*chunk_size=*/8);
      sim::JobSpec job;
      while (reader.next(job)) {
      }
      // Reaching here means the reader saw a complete stream: only
      // possible when the cut kept all three jobs.
      ADD_FAILURE() << "truncated file accepted at cut " << cut;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << "error should name the file: " << e.what();
    }
  }
  std::remove(path.c_str());
}

TEST(TraceBinaryTest, BadMagicAndVersionAreRejected) {
  const sim::Workload w = random_workload(13, 2);
  const std::string path = temp_path("magic");
  write_binary_trace_file(path, w);
  std::string bytes = read_all(path);

  std::string bad = bytes;
  bad[0] = 'X';
  write_all(path, bad);
  EXPECT_THROW(BinaryTraceReader reader(path), std::runtime_error);

  bad = bytes;
  bad[4] = static_cast<char>(99);  // version
  write_all(path, bad);
  EXPECT_THROW(BinaryTraceReader reader(path), std::runtime_error);

  std::remove(path.c_str());
}

TEST(TraceBinaryTest, DeclaredJobCountBeyondFileIsRejected) {
  const sim::Workload w = random_workload(17, 2);
  const std::string path = temp_path("count");
  write_binary_trace_file(path, w);
  std::string bytes = read_all(path);
  bytes[8] = static_cast<char>(9);  // claim 9 jobs, file holds 2
  write_all(path, bytes);
  BinaryTraceReader reader(path);
  EXPECT_EQ(reader.total_jobs(), 9);
  sim::JobSpec job;
  EXPECT_TRUE(reader.next(job));
  EXPECT_TRUE(reader.next(job));
  try {
    reader.next(job);
    ADD_FAILURE() << "reader accepted a file missing declared jobs";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("2 of 9 declared"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(TraceBinaryTest, TrailingGarbageAfterDeclaredJobsIsIgnored) {
  const sim::Workload w = random_workload(19, 2);
  const std::string path = temp_path("trailing");
  write_binary_trace_file(path, w);
  std::string bytes = read_all(path);
  bytes += "garbage bytes that are not a job record";
  write_all(path, bytes);
  const sim::Workload back = read_binary_trace_file(path);
  EXPECT_EQ(back.jobs.size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceBinaryTest, WriterRejectsOutOfOrderArrivals) {
  const std::string path = temp_path("writer_order");
  BinaryTraceWriter writer(path);
  sim::JobSpec job;
  job.name = "a";
  job.arrival = 10;
  job.stages.emplace_back();
  writer.add(job);
  job.name = "b";
  job.arrival = 5;
  try {
    writer.add(job);
    ADD_FAILURE() << "writer accepted an out-of-order arrival";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sorted by arrival"),
              std::string::npos)
        << e.what();
  }
  writer.finalize();
  std::remove(path.c_str());
}

TEST(TraceBinaryTest, ReaderRejectsOutOfOrderArrivals) {
  // Hand-craft the violation: write two sorted jobs, then swap the
  // arrival fields in the raw bytes so the file itself is out of order.
  sim::Workload w;
  sim::JobSpec a;
  a.name = "a";
  a.arrival = 1;
  a.stages.emplace_back();
  sim::JobSpec b = a;
  b.name = "b";
  b.arrival = 2;
  w.jobs = {a, b};
  const std::string path = temp_path("reader_order");
  write_binary_trace_file(path, w);
  std::string bytes = read_all(path);
  // Job headers sit at offsets 16 and 16 + 24 + body0; both bodies encode
  // a 1-char name (4+1), template (4), queue (4), 1 stage: name "" would
  // differ — compute body0 from the job-0 header instead of hand-counting.
  const auto u64_at = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= std::uint64_t(static_cast<unsigned char>(bytes[off + i]))
           << (8 * i);
    return v;
  };
  const std::size_t body0 = static_cast<std::size_t>(u64_at(16 + 16));
  const std::size_t h0 = 16, h1 = 16 + 24 + body0;
  for (int i = 0; i < 8; ++i) std::swap(bytes[h0 + i], bytes[h1 + i]);
  write_all(path, bytes);

  BinaryTraceReader reader(path);
  sim::JobSpec job;
  EXPECT_TRUE(reader.next(job));
  try {
    reader.next(job);
    ADD_FAILURE() << "reader accepted an out-of-order arrival";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("sorted by arrival"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(TraceBinaryTest, CorruptBodySizeIsRejectedNotDecoded) {
  const sim::Workload w = random_workload(23, 2);
  const std::string path = temp_path("bodysize");
  write_binary_trace_file(path, w);
  std::string bytes = read_all(path);
  // Shrink job 0's declared body_size: the decode must hit the cursor's
  // bounds check ("overruns") or leave trailing bytes — both rejected.
  bytes[16 + 16] = static_cast<char>(1);
  for (int i = 1; i < 8; ++i) bytes[16 + 16 + i] = 0;
  write_all(path, bytes);
  BinaryTraceReader reader(path);
  sim::JobSpec job;
  EXPECT_THROW(reader.next(job), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceBinaryTest, PeekIsIdempotentAndCheap) {
  const sim::Workload w = random_workload(29, 5);
  const std::string path = temp_path("peek");
  write_binary_trace_file(path, w);
  BinaryTraceReader reader(path, /*chunk_size=*/1);
  sim::JobPeek p1, p2;
  ASSERT_TRUE(reader.peek(p1));
  ASSERT_TRUE(reader.peek(p2));
  EXPECT_EQ(p1.arrival, p2.arrival);
  EXPECT_EQ(p1.tasks, p2.tasks);
  sim::JobSpec job;
  int n = 0;
  while (reader.next(job)) ++n;
  EXPECT_EQ(n, 5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tetris::workload
