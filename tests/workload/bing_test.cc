#include "workload/bing.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/tetris_scheduler.h"
#include "sim/simulator.h"

namespace tetris::workload {
namespace {

BingConfig small_bing() {
  BingConfig cfg;
  cfg.num_jobs = 60;
  cfg.num_machines = 12;
  cfg.task_scale = 0.4;
  cfg.seed = 3;
  return cfg;
}

TEST(Bing, ValidatesAndHasDeepDags) {
  const auto w = make_bing_workload(small_bing());
  EXPECT_EQ(sim::validate(w), "");
  std::size_t max_stages = 0;
  double mean_stages = 0;
  for (const auto& job : w.jobs) {
    max_stages = std::max(max_stages, job.stages.size());
    mean_stages += static_cast<double>(job.stages.size());
  }
  mean_stages /= static_cast<double>(w.jobs.size());
  EXPECT_GE(max_stages, 6u);   // "large DAG depth" (Table 1)
  EXPECT_GT(mean_stages, 3.0);
}

TEST(Bing, ContainsDiamonds) {
  auto cfg = small_bing();
  cfg.diamond_fraction = 0.8;
  const auto w = make_bing_workload(cfg);
  int diamonds = 0;
  for (const auto& job : w.jobs) {
    for (const auto& stage : job.stages) {
      if (stage.deps.size() >= 2) diamonds++;  // a fan-in joins a diamond
    }
  }
  EXPECT_GT(diamonds, 0);
}

TEST(Bing, ShuffleEdgesFollowDependencies) {
  const auto w = make_bing_workload(small_bing());
  for (const auto& job : w.jobs) {
    for (const auto& stage : job.stages) {
      for (const auto& task : stage.tasks) {
        for (const auto& split : task.inputs) {
          if (split.from_stage >= 0) {
            EXPECT_NE(std::find(stage.deps.begin(), stage.deps.end(),
                                split.from_stage),
                      stage.deps.end());
          }
        }
      }
    }
  }
}

TEST(Bing, RunsEndToEndUnderTetris) {
  auto cfg = small_bing();
  cfg.num_jobs = 25;
  const auto w = make_bing_workload(cfg);
  sim::SimConfig sim_cfg;
  sim_cfg.num_machines = cfg.num_machines;
  sim_cfg.machine_capacity = bing_machine();
  sim_cfg.tracker = sim::TrackerMode::kUsage;
  core::TetrisScheduler tetris;
  const auto r = sim::simulate(sim_cfg, w, tetris);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks.size(), w.total_tasks());
  // Admission invariant holds on deep DAGs too.
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
  }
}

TEST(Bing, MachineProfileHasTenGigNics) {
  const Resources m = bing_machine();
  EXPECT_DOUBLE_EQ(m[Resource::kNetIn], 10 * kGbps);
  EXPECT_DOUBLE_EQ(m[Resource::kNetOut], 10 * kGbps);
}

TEST(Bing, TaskDemandsFitTheMachineProfile) {
  const auto w = make_bing_workload(small_bing());
  const Resources m = bing_machine();
  for (const auto& job : w.jobs) {
    for (const auto& stage : job.stages) {
      for (const auto& task : stage.tasks) {
        EXPECT_LE(task.peak_cores, m[Resource::kCpu]);
        EXPECT_LE(task.peak_mem, m[Resource::kMem]);
      }
    }
  }
}

TEST(Bing, DeterministicPerSeed) {
  const auto a = make_bing_workload(small_bing());
  const auto b = make_bing_workload(small_bing());
  EXPECT_EQ(a.total_tasks(), b.total_tasks());
}

}  // namespace
}  // namespace tetris::workload
