// The §2.2.3 aggregate oracle must be a lower envelope: every source of
// lost work — task-level failures and machine churn alike — is stripped
// from the relaxed configuration, while the knobs that shape the relaxed
// schedule itself survive.
#include "sched/upper_bound.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace tetris::sched {
namespace {

TEST(UpperBound, AggregateConfigDisablesChurnAndTaskFailures) {
  sim::SimConfig cfg;
  cfg.num_machines = 4;
  cfg.machine_capacity =
      Resources::full(4, 8 * kGB, 100 * kMB, 100 * kMB, 125 * kMB, 125 * kMB);
  cfg.seed = 42;
  cfg.heartbeat_period = 0.25;
  cfg.task_failure_prob = 0.1;
  cfg.churn.mttf = 500;
  cfg.churn.mttr = 60;
  cfg.churn.scripted = {{2, 10.0, 20.0}};

  const sim::SimConfig agg = aggregate_config(cfg);

  EXPECT_EQ(agg.task_failure_prob, 0.0);
  EXPECT_EQ(agg.churn.mttf, 0.0);
  EXPECT_EQ(agg.churn.mttr, 0.0);
  EXPECT_TRUE(agg.churn.scripted.empty());
  EXPECT_FALSE(agg.churn.enabled());

  // The relaxation itself: one bin with the whole cluster's capacity,
  // oracle estimates, allocation bookkeeping; determinism knobs survive.
  EXPECT_EQ(agg.num_machines, 1);
  ASSERT_EQ(agg.machine_capacities.size(), 1u);
  for (Resource r : all_resources()) {
    EXPECT_DOUBLE_EQ(agg.machine_capacities[0][r],
                     4 * cfg.machine_capacity[r]);
  }
  EXPECT_EQ(agg.tracker, sim::TrackerMode::kAllocation);
  EXPECT_EQ(agg.estimation.mode, sim::EstimationMode::kOracle);
  EXPECT_EQ(agg.seed, cfg.seed);
  EXPECT_EQ(agg.heartbeat_period, cfg.heartbeat_period);
}

TEST(UpperBound, AggregateWorkloadMakesEveryReadLocal) {
  sim::Workload w;
  sim::JobSpec job;
  sim::StageSpec s;
  s.name = "map";
  sim::TaskSpec t;
  t.cpu_cycles = 10;
  sim::InputSplit split;
  split.bytes = 64 * kMB;
  split.replicas = {0, 1, 2};
  t.inputs.push_back(split);
  s.tasks = {t, t};
  job.stages.push_back(s);
  w.jobs.push_back(job);

  const sim::Workload agg = aggregate_workload(w);
  ASSERT_EQ(agg.jobs.size(), 1u);
  for (const auto& stage : agg.jobs[0].stages) {
    for (const auto& task : stage.tasks) {
      for (const auto& in : task.inputs) {
        // Every read is local on the single aggregate machine.
        EXPECT_EQ(in.replicas, std::vector<sim::MachineId>{0});
      }
    }
  }
}

}  // namespace
}  // namespace tetris::sched
