#include "sched/fairness.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace tetris::sched {
namespace {

sim::JobView job(sim::JobId id, double cores, double mem_gb,
                 SimTime arrival = 0) {
  sim::JobView v;
  v.id = id;
  v.arrival = arrival;
  v.current_alloc[Resource::kCpu] = cores;
  v.current_alloc[Resource::kMem] = mem_gb * kGB;
  return v;
}

Resources cluster() { return Resources::of(100, 200 * kGB, 1000, 1000); }

TEST(Fairness, DominantShareTakesMaxOverDims) {
  Resources alloc;
  alloc[Resource::kCpu] = 10;         // 10% of 100
  alloc[Resource::kMem] = 100 * kGB;  // 50% of 200
  EXPECT_DOUBLE_EQ(
      dominant_share(alloc, cluster(), {Resource::kCpu, Resource::kMem}),
      0.5);
  EXPECT_DOUBLE_EQ(dominant_share(alloc, cluster(), {Resource::kCpu}), 0.1);
}

TEST(Fairness, DominantShareIgnoresZeroCapacityDims) {
  Resources alloc;
  alloc[Resource::kNetIn] = 5;
  Resources cap;  // all-zero capacity
  EXPECT_EQ(dominant_share(alloc, cap, {Resource::kNetIn}), 0.0);
}

TEST(Fairness, DrfShareUsesCpuAndMemoryOnly) {
  auto v = job(0, 0, 0);
  v.current_alloc[Resource::kNetIn] = 1000;  // ignored by deployed DRF
  EXPECT_EQ(job_share(FairnessPolicy::kDrf, v, cluster(), 2 * kGB), 0.0);
  v.current_alloc[Resource::kCpu] = 50;
  EXPECT_DOUBLE_EQ(job_share(FairnessPolicy::kDrf, v, cluster(), 2 * kGB),
                   0.5);
}

TEST(Fairness, SlotShareRoundsMemoryUpToSlots) {
  // 100 slots of 2 GB in a 200 GB cluster; 3 GB used -> 2 slots -> 2%.
  auto v = job(0, 0, 3);
  EXPECT_DOUBLE_EQ(job_share(FairnessPolicy::kSlots, v, cluster(), 2 * kGB),
                   0.02);
}

TEST(Fairness, SlotShareZeroSlotMemIsZero) {
  auto v = job(0, 1, 1);
  EXPECT_EQ(job_share(FairnessPolicy::kSlots, v, cluster(), 0), 0.0);
}

TEST(Fairness, OrderPutsLowestShareFirst) {
  std::vector<sim::JobView> jobs = {job(0, 50, 0), job(1, 10, 0),
                                    job(2, 30, 0)};
  const auto order = furthest_from_share_order(FairnessPolicy::kDrf, jobs,
                                               cluster(), 2 * kGB);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(jobs[order[0]].id, 1);
  EXPECT_EQ(jobs[order[1]].id, 2);
  EXPECT_EQ(jobs[order[2]].id, 0);
}

TEST(Fairness, OrderBreaksTiesByArrivalThenId) {
  std::vector<sim::JobView> jobs = {job(3, 10, 0, /*arrival=*/5),
                                    job(1, 10, 0, /*arrival=*/2),
                                    job(2, 10, 0, /*arrival=*/2)};
  const auto order = furthest_from_share_order(FairnessPolicy::kDrf, jobs,
                                               cluster(), 2 * kGB);
  EXPECT_EQ(jobs[order[0]].id, 1);
  EXPECT_EQ(jobs[order[1]].id, 2);
  EXPECT_EQ(jobs[order[2]].id, 3);
}

TEST(Fairness, OrderOfEmptyIsEmpty) {
  EXPECT_TRUE(furthest_from_share_order(FairnessPolicy::kDrf, {}, cluster(),
                                        2 * kGB)
                  .empty());
}

}  // namespace
}  // namespace tetris::sched
