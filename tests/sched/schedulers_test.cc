// Behavioural tests of the baseline schedulers, driven through small
// simulations: admission semantics (what each scheduler checks and what it
// over-allocates), fairness behaviour and job ordering.
#include <gtest/gtest.h>

#include <algorithm>

#include "sched/drf_scheduler.h"
#include "sched/random_scheduler.h"
#include "sched/slot_scheduler.h"
#include "sched/srtf_scheduler.h"
#include "sched/upper_bound.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace tetris::sched {
namespace {

using sim::InputSplit;
using sim::JobSpec;
using tetris::Resources;
using sim::SimConfig;
using sim::SimResult;
using sim::StageSpec;
using sim::TaskSpec;
using sim::Workload;

TaskSpec cpu_task(double cores, double mem_gb, double seconds) {
  TaskSpec t;
  t.peak_cores = cores;
  t.peak_mem = mem_gb * kGB;
  t.cpu_cycles = cores * seconds;
  return t;
}

TaskSpec disk_task(double mb, double io_mb, sim::MachineId replica) {
  TaskSpec t;
  t.peak_cores = 0.25;
  t.peak_mem = 0.5 * kGB;
  t.max_io_bw = io_mb * kMB;
  InputSplit s;
  s.bytes = mb * kMB;
  s.replicas = {replica};
  t.inputs.push_back(s);
  return t;
}

SimConfig one_machine() {
  SimConfig cfg;
  cfg.num_machines = 1;
  cfg.machine_capacity =
      Resources::full(8, 8 * kGB, 100 * kMB, 100 * kMB, 125 * kMB, 125 * kMB);
  return cfg;
}

Workload single_stage(std::vector<TaskSpec> tasks, SimTime arrival = 0) {
  Workload w;
  JobSpec job;
  job.arrival = arrival;
  StageSpec s;
  s.tasks = std::move(tasks);
  job.stages.push_back(std::move(s));
  w.jobs.push_back(std::move(job));
  return w;
}

// ---------------------------------------------------------------------------
// Slot scheduler

TEST(SlotScheduler, NeverOverCommitsMemory) {
  // Four 4 GB tasks on one 8 GB machine: at most two at a time, so the
  // natural-duration invariant holds (no thrash-induced slowdown).
  SlotScheduler sched;
  const auto r =
      sim::simulate(one_machine(),
                    single_stage({cpu_task(1, 4, 10), cpu_task(1, 4, 10),
                                  cpu_task(1, 4, 10), cpu_task(1, 4, 10)}),
                    sched);
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
  }
}

TEST(SlotScheduler, OverAllocatesDisk) {
  // Eight disk-saturating tasks, all 0.5 GB: slots (2 GB each) admit all of
  // them at once; the disk is over-subscribed and durations inflate.
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back(disk_task(500, 100, 0));
  SlotScheduler sched;
  const auto r = sim::simulate(one_machine(), single_stage(tasks), sched);
  ASSERT_TRUE(r.completed);
  int slowed = 0;
  for (const auto& t : r.tasks) {
    if (t.duration() > t.natural_duration * 1.5) slowed++;
  }
  EXPECT_GE(slowed, 6);
}

TEST(SlotScheduler, SharesSlotsAcrossJobsFairly) {
  // Two identical jobs, machine fits 4 slots (8 GB / 2 GB): both jobs
  // should have tasks running from the start, finishing interleaved.
  Workload w;
  for (int j = 0; j < 2; ++j) {
    JobSpec job;
    StageSpec s;
    for (int i = 0; i < 4; ++i) s.tasks.push_back(cpu_task(1, 2, 10));
    job.stages.push_back(s);
    w.jobs.push_back(job);
  }
  SlotScheduler sched;
  const auto r = sim::simulate(one_machine(), w, sched);
  ASSERT_TRUE(r.completed);
  // First wave (starts at the first pass) must contain tasks of both jobs.
  SimTime first_start = 1e18;
  for (const auto& t : r.tasks) first_start = std::min(first_start, t.start);
  bool job0 = false, job1 = false;
  for (const auto& t : r.tasks) {
    if (t.start <= first_start + 1e-9) {
      (t.job == 0 ? job0 : job1) = true;
    }
  }
  EXPECT_TRUE(job0);
  EXPECT_TRUE(job1);
}

// ---------------------------------------------------------------------------
// DRF scheduler

TEST(DrfScheduler, ChecksCpuAndMemoryOnly) {
  // Disk tasks with tiny cpu/mem: DRF admits everything at once.
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back(disk_task(500, 100, 0));
  DrfScheduler sched;
  const auto r = sim::simulate(one_machine(), single_stage(tasks), sched);
  ASSERT_TRUE(r.completed);
  SimTime first = 1e18;
  int first_wave = 0;
  for (const auto& t : r.tasks) first = std::min(first, t.start);
  for (const auto& t : r.tasks) {
    if (t.start <= first + 1e-9) first_wave++;
  }
  EXPECT_EQ(first_wave, 8);  // all admitted together despite the disk
}

TEST(DrfScheduler, RespectsCpuCapacity) {
  DrfScheduler sched;
  const auto r = sim::simulate(
      one_machine(),
      single_stage({cpu_task(8, 1, 10), cpu_task(8, 1, 10)}), sched);
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
  }
}

TEST(DrfScheduler, EqualizesDominantShares) {
  // Job 0 is memory-heavy, job 1 cpu-heavy. DRF alternates grants so both
  // make progress from the first wave.
  Workload w;
  {
    JobSpec job;
    StageSpec s;
    for (int i = 0; i < 8; ++i) s.tasks.push_back(cpu_task(0.5, 2, 10));
    job.stages.push_back(s);
    w.jobs.push_back(job);
  }
  {
    JobSpec job;
    StageSpec s;
    for (int i = 0; i < 8; ++i) s.tasks.push_back(cpu_task(2, 0.5, 10));
    job.stages.push_back(s);
    w.jobs.push_back(job);
  }
  DrfScheduler sched;
  const auto r = sim::simulate(one_machine(), w, sched);
  ASSERT_TRUE(r.completed);
  SimTime first = 1e18;
  for (const auto& t : r.tasks) first = std::min(first, t.start);
  int per_job[2] = {0, 0};
  for (const auto& t : r.tasks) {
    if (t.start <= first + 1e-9) per_job[t.job]++;
  }
  EXPECT_GT(per_job[0], 0);
  EXPECT_GT(per_job[1], 0);
}

// Two NIC-filling remote readers: machine 0 stores the data but cannot
// host (no memory), so both tasks run on machine 1 and pull over its NIC.
SimConfig incast_cluster() {
  SimConfig cfg;
  cfg.machine_capacities = {
      Resources::full(8, 0.1 * kGB, 100 * kMB, 100 * kMB, 125 * kMB,
                      250 * kMB),
      Resources::full(8, 8 * kGB, 100 * kMB, 100 * kMB, 125 * kMB,
                      125 * kMB)};
  return cfg;
}

TEST(DrfScheduler, PlainDrfOverAllocatesNetwork) {
  DrfScheduler sched;  // cpu + mem only
  const auto r = sim::simulate(
      incast_cluster(),
      single_stage({disk_task(1250, 100, 0), disk_task(1250, 100, 0)}),
      sched);
  ASSERT_TRUE(r.completed);
  int slowed = 0;
  for (const auto& t : r.tasks) {
    if (t.duration() > t.natural_duration * 1.3) slowed++;
  }
  EXPECT_GE(slowed, 1);  // both admitted together -> incast
}

TEST(DrfScheduler, ExtendedDimsCheckNetwork) {
  DrfSchedulerConfig cfg;
  cfg.dims = {Resource::kCpu, Resource::kMem, Resource::kNetIn};
  DrfScheduler sched(cfg);
  const auto r = sim::simulate(
      incast_cluster(),
      single_stage({disk_task(1250, 100, 0), disk_task(1250, 100, 0)}),
      sched);
  ASSERT_TRUE(r.completed);
  // NIC admission serializes the readers: each runs at its natural speed.
  for (const auto& t : r.tasks) {
    EXPECT_LT(t.duration(), t.natural_duration * 1.1);
  }
}

// ---------------------------------------------------------------------------
// SRTF scheduler

TEST(SrtfScheduler, ShortestJobFinishesFirst) {
  Workload w;
  {
    JobSpec big;
    StageSpec s;
    for (int i = 0; i < 24; ++i) s.tasks.push_back(cpu_task(1, 1, 10));
    big.stages.push_back(s);
    w.jobs.push_back(big);
  }
  {
    JobSpec small;
    StageSpec s;
    for (int i = 0; i < 4; ++i) s.tasks.push_back(cpu_task(1, 1, 10));
    small.stages.push_back(s);
    w.jobs.push_back(small);
  }
  SrtfScheduler sched;
  const auto r = sim::simulate(one_machine(), w, sched);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.jobs[1].finish, r.jobs[0].finish);
}

TEST(SrtfScheduler, AvoidsOverAllocation) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back(disk_task(500, 100, 0));
  SrtfScheduler sched;
  const auto r = sim::simulate(one_machine(), single_stage(tasks), sched);
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
  }
}

// ---------------------------------------------------------------------------
// Random scheduler

TEST(RandomScheduler, CompletesAndNeverOverAllocates) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 12; ++i) tasks.push_back(cpu_task(2, 1, 5));
  for (int i = 0; i < 6; ++i) tasks.push_back(disk_task(300, 100, 0));
  RandomScheduler sched(7);
  SimConfig cfg = one_machine();
  cfg.num_machines = 3;
  const auto r = sim::simulate(cfg, single_stage(tasks), sched);
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
  }
}

// ---------------------------------------------------------------------------
// Upper bound transform

TEST(UpperBound, AggregateWorkloadPreservesTaskCountsAndMeans) {
  Workload w = single_stage({cpu_task(1, 1, 10), cpu_task(3, 3, 10)});
  w.jobs[0].stages[0].tasks[0].output_bytes = 100;
  w.jobs[0].stages[0].tasks[1].output_bytes = 300;
  const Workload agg = aggregate_workload(w);
  ASSERT_EQ(agg.total_tasks(), 2u);
  const auto& t0 = agg.jobs[0].stages[0].tasks[0];
  const auto& t1 = agg.jobs[0].stages[0].tasks[1];
  EXPECT_DOUBLE_EQ(t0.peak_cores, 2);
  EXPECT_DOUBLE_EQ(t0.output_bytes, 200);
  EXPECT_DOUBLE_EQ(t0.peak_cores, t1.peak_cores);
  EXPECT_EQ(validate(agg), "");
}

TEST(UpperBound, AggregateWorkloadLocalizesInput) {
  Workload w = single_stage({disk_task(100, 50, 3)});
  const Workload agg = aggregate_workload(w);
  const auto& task = agg.jobs[0].stages[0].tasks[0];
  ASSERT_EQ(task.inputs.size(), 1u);
  EXPECT_EQ(task.inputs[0].replicas, std::vector<sim::MachineId>{0});
  EXPECT_DOUBLE_EQ(task.inputs[0].bytes, 100 * kMB);
}

TEST(UpperBound, AggregateConfigSumsCapacity) {
  SimConfig cfg = one_machine();
  cfg.num_machines = 5;
  const SimConfig agg = aggregate_config(cfg);
  EXPECT_EQ(agg.resolved_capacities().size(), 1u);
  EXPECT_DOUBLE_EQ(agg.resolved_capacities()[0][Resource::kCpu], 40);
  EXPECT_EQ(agg.tracker, sim::TrackerMode::kAllocation);
}

TEST(UpperBound, PreservesDagShape) {
  Workload w;
  JobSpec job;
  StageSpec map;
  map.tasks = {cpu_task(1, 1, 5)};
  StageSpec red;
  red.deps = {0};
  TaskSpec t = cpu_task(1, 1, 5);
  InputSplit split;
  split.bytes = 100;
  split.from_stage = 0;
  t.inputs.push_back(split);
  red.tasks = {t};
  job.stages = {map, red};
  w.jobs.push_back(job);
  const Workload agg = aggregate_workload(w);
  ASSERT_EQ(agg.jobs[0].stages.size(), 2u);
  EXPECT_EQ(agg.jobs[0].stages[1].deps, std::vector<int>{0});
  EXPECT_EQ(validate(agg), "");
}

}  // namespace
}  // namespace tetris::sched
