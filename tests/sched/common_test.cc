// Direct unit tests of the shared scheduler helpers and decision logic,
// driven through the FakeContext (no simulator in the loop).
#include "sched/common.h"

#include <gtest/gtest.h>

#include "core/tetris_scheduler.h"
#include "tests/support/fake_context.h"
#include "util/units.h"

namespace tetris::sched {
namespace {

using test::FakeContext;

Resources machine_cap() {
  return Resources::full(8, 8 * kGB, 100 * kMB, 100 * kMB, 125 * kMB,
                         125 * kMB);
}

TEST(FitsCpuMem, ChecksOnlyCpuAndMemory) {
  Resources avail = machine_cap();
  Resources demand;
  demand[Resource::kCpu] = 4;
  demand[Resource::kMem] = 4 * kGB;
  demand[Resource::kDiskRead] = 1e12;  // absurd, but not checked
  EXPECT_TRUE(fits_cpu_mem(demand, avail));
  demand[Resource::kCpu] = 9;
  EXPECT_FALSE(fits_cpu_mem(demand, avail));
  demand[Resource::kCpu] = 4;
  demand[Resource::kMem] = 9 * kGB;
  EXPECT_FALSE(fits_cpu_mem(demand, avail));
}

TEST(FitsAllLocal, ChecksEveryDimension) {
  Resources avail = machine_cap();
  Resources demand;
  for (Resource r : all_resources()) {
    demand[r] = avail[r] * 0.99;
  }
  EXPECT_TRUE(fits_all_local(demand, avail));
  demand[Resource::kNetOut] = avail[Resource::kNetOut] * 1.01;
  EXPECT_FALSE(fits_all_local(demand, avail));
}

TEST(RemoteLegsFit, ChecksEveryLegAgainstItsSource) {
  FakeContext ctx({machine_cap(), machine_cap()});
  sim::Probe p;
  p.remote.push_back({1, 50 * kMB, 50 * kMB, 0});
  EXPECT_TRUE(remote_legs_fit(ctx, p));
  p.remote.push_back({1, 200 * kMB, 0, 0});  // beyond machine 1's disk
  EXPECT_FALSE(remote_legs_fit(ctx, p));
}

TEST(RemoteLegsFit, ChecksNetInForUplinkLegs) {
  FakeContext ctx({machine_cap(), machine_cap()});
  sim::Probe p;
  p.remote.push_back({1, 0, 0, 200 * kMB});  // inbound beyond the NIC
  EXPECT_FALSE(remote_legs_fit(ctx, p));
}

TEST(BestMachineForGroup, PicksHighestLocalFraction) {
  FakeContext ctx({machine_cap(), machine_cap(), machine_cap()});
  Resources d;
  d[Resource::kCpu] = 1;
  d[Resource::kMem] = 1 * kGB;
  auto& g = ctx.add_group(0, 0, 2, d);
  g.local_fraction_on[0] = 0.2;
  g.local_fraction_on[1] = 0.9;
  g.local_fraction_on[2] = 0.5;
  const auto best = best_machine_for_group(
      ctx, g.view, [](const sim::Probe&) { return true; });
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->machine, 1);
}

TEST(BestMachineForGroup, SkipsMachinesFailingTheFitPredicate) {
  FakeContext ctx({machine_cap(), machine_cap()});
  Resources d;
  d[Resource::kCpu] = 1;
  auto& g = ctx.add_group(0, 0, 1, d);
  g.local_fraction_on[0] = 1.0;  // best locality, but rejected below
  g.local_fraction_on[1] = 0.0;
  const auto best = best_machine_for_group(
      ctx, g.view, [](const sim::Probe& p) { return p.machine != 0; });
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->machine, 1);
}

TEST(BestMachineForGroup, ReturnsNulloptWhenNothingFits) {
  FakeContext ctx({machine_cap()});
  Resources d;
  d[Resource::kCpu] = 1;
  auto& g = ctx.add_group(0, 0, 1, d);
  const auto best = best_machine_for_group(
      ctx, g.view, [](const sim::Probe&) { return false; });
  EXPECT_FALSE(best.has_value());
}

TEST(BestMachineForGroup, PrefilterSkipsProbes) {
  FakeContext ctx({machine_cap(), machine_cap()});
  Resources d;
  d[Resource::kCpu] = 1;
  auto& g = ctx.add_group(0, 0, 1, d);
  const long before = ctx.probe_count();
  const auto best = best_machine_for_group(
      ctx, g.view, [](const sim::Probe&) { return true; },
      [](const Resources&) { return false; });  // prefilter rejects all
  EXPECT_FALSE(best.has_value());
  EXPECT_EQ(ctx.probe_count(), before);  // no probe was issued
}

// ---------------------------------------------------------------------------
// Tetris decision logic through the fake context

core::TetrisConfig plain_tetris() {
  core::TetrisConfig cfg;
  cfg.fairness_knob = 0;
  cfg.barrier_knob = 1.0;
  cfg.srtf_weight = 0;
  return cfg;
}

TEST(TetrisDecisions, PicksHighestAlignmentPair) {
  FakeContext ctx({machine_cap(), machine_cap()});
  // Machine 1 has little cpu left: the cpu-heavy group aligns better with
  // machine 0.
  Resources m1 = machine_cap();
  m1[Resource::kCpu] = 0.5;
  ctx.set_available(1, m1);
  Resources cpu_heavy;
  cpu_heavy[Resource::kCpu] = 4;
  cpu_heavy[Resource::kMem] = 1 * kGB;
  ctx.add_group(0, 0, 1, cpu_heavy);
  core::TetrisScheduler tetris(plain_tetris());
  tetris.schedule(ctx);
  ASSERT_EQ(ctx.placements.size(), 1u);
  EXPECT_EQ(ctx.placements[0].machine, 0);
}

TEST(TetrisDecisions, RemotePenaltyBreaksTies) {
  FakeContext ctx({machine_cap(), machine_cap()});
  Resources d;
  d[Resource::kCpu] = 2;
  d[Resource::kMem] = 2 * kGB;
  auto& g = ctx.add_group(0, 0, 1, d);
  g.local_fraction_on[0] = 0.0;
  g.local_fraction_on[1] = 1.0;
  auto cfg = plain_tetris();
  cfg.remote_penalty = 0.1;
  core::TetrisScheduler tetris(cfg);
  tetris.schedule(ctx);
  ASSERT_EQ(ctx.placements.size(), 1u);
  EXPECT_EQ(ctx.placements[0].machine, 1);
}

TEST(TetrisDecisions, SrtfBreaksTiesTowardSmallerJob) {
  auto cfg = plain_tetris();
  cfg.srtf_weight = 1.0;
  core::TetrisScheduler tetris(cfg);

  // First pass on a warm-up context: eps is zero until the scheduler has
  // seen at least one alignment score (frozen-per-round semantics).
  {
    FakeContext warmup({machine_cap()});
    Resources d;
    d[Resource::kCpu] = 1;
    d[Resource::kMem] = 1 * kGB;
    warmup.add_group(9, 0, 1, d);
    tetris.schedule(warmup);
  }

  FakeContext ctx({machine_cap()});
  Resources d;
  d[Resource::kCpu] = 8;  // one at a time
  d[Resource::kMem] = 1 * kGB;
  ctx.add_group(0, 0, 1, d);
  ctx.add_group(1, 0, 1, d);
  ctx.job(0).remaining_work = 100;
  ctx.job(1).remaining_work = 10;
  tetris.schedule(ctx);
  ASSERT_GE(ctx.placements.size(), 1u);
  EXPECT_EQ(ctx.placements[0].group.job, 1);  // less remaining work first
}

TEST(TetrisDecisions, FairnessCutExcludesOverservedJob) {
  FakeContext ctx({machine_cap()});
  Resources d;
  d[Resource::kCpu] = 2;
  d[Resource::kMem] = 1 * kGB;
  ctx.add_group(0, 0, 4, d);
  ctx.add_group(1, 0, 4, d);
  // Job 0 already holds most of the cluster.
  ctx.job(0).current_alloc[Resource::kCpu] = 6;
  auto cfg = plain_tetris();
  cfg.fairness_knob = 0.9;  // only the furthest-below job is eligible
  core::TetrisScheduler tetris(cfg);
  tetris.schedule(ctx);
  ASSERT_FALSE(ctx.placements.empty());
  EXPECT_EQ(ctx.placements[0].group.job, 1);
}

TEST(TetrisDecisions, OnlyCpuMemModeIgnoresDiskOverload) {
  FakeContext ctx({machine_cap()});
  Resources avail = machine_cap();
  avail[Resource::kDiskRead] = 0;  // disk exhausted
  ctx.set_available(0, avail);
  Resources d;
  d[Resource::kCpu] = 1;
  d[Resource::kMem] = 1 * kGB;
  d[Resource::kDiskRead] = 50 * kMB;
  ctx.add_group(0, 0, 1, d);

  core::TetrisScheduler strict(plain_tetris());
  strict.schedule(ctx);
  EXPECT_TRUE(ctx.placements.empty());

  auto cfg = plain_tetris();
  cfg.only_cpu_mem = true;
  core::TetrisScheduler loose(cfg);
  loose.schedule(ctx);
  EXPECT_EQ(ctx.placements.size(), 1u);
}

TEST(TetrisDecisions, FutureBarSuppressesWorseCandidate) {
  FakeContext ctx({machine_cap()});
  Resources small;
  small[Resource::kCpu] = 1;
  small[Resource::kMem] = 0.5 * kGB;
  ctx.add_group(0, 0, 1, small);
  // An imminent group that would align much better here.
  sim::GroupView imminent;
  imminent.ref = {1, 1};
  imminent.eta = 3;
  imminent.est_demand[Resource::kCpu] = 8;
  imminent.est_demand[Resource::kMem] = 4 * kGB;
  ctx.add_imminent(imminent);

  auto cfg = plain_tetris();
  cfg.future_lookahead = 10;
  core::TetrisScheduler held(cfg);
  held.schedule(ctx);
  EXPECT_TRUE(ctx.placements.empty());  // held back for the big stage

  core::TetrisScheduler greedy(plain_tetris());
  greedy.schedule(ctx);
  EXPECT_EQ(ctx.placements.size(), 1u);
}

TEST(TetrisDecisions, FutureBarIgnoresDistantEtas) {
  FakeContext ctx({machine_cap()});
  Resources small;
  small[Resource::kCpu] = 1;
  small[Resource::kMem] = 0.5 * kGB;
  ctx.add_group(0, 0, 1, small);
  sim::GroupView imminent;
  imminent.ref = {1, 1};
  imminent.eta = 500;  // far beyond the lookahead
  imminent.est_demand[Resource::kCpu] = 8;
  ctx.add_imminent(imminent);
  auto cfg = plain_tetris();
  cfg.future_lookahead = 10;
  core::TetrisScheduler tetris(cfg);
  tetris.schedule(ctx);
  EXPECT_EQ(ctx.placements.size(), 1u);
}

TEST(TetrisDecisions, DrainsMachineUntilNothingFits) {
  FakeContext ctx({machine_cap()});
  Resources d;
  d[Resource::kCpu] = 3;
  d[Resource::kMem] = 1 * kGB;
  ctx.add_group(0, 0, 5, d);
  core::TetrisScheduler tetris(plain_tetris());
  tetris.schedule(ctx);
  EXPECT_EQ(ctx.placements.size(), 2u);  // 3+3 cores; the third (9) won't fit
}

}  // namespace
}  // namespace tetris::sched
