// Queue-level fairness (paper §3.4 "jobs (or groups of jobs)"): the
// ordering helpers and Tetris's fairness_over_queues behaviour.
#include <gtest/gtest.h>

#include <map>

#include "core/tetris_scheduler.h"
#include "sched/fairness.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace tetris::sched {
namespace {

sim::JobView qjob(sim::JobId id, int queue, double cores) {
  sim::JobView v;
  v.id = id;
  v.queue = queue;
  v.current_alloc[Resource::kCpu] = cores;
  return v;
}

Resources cluster() { return Resources::of(100, 200 * kGB, 1000, 1000); }

TEST(QueueFairness, OrdersQueuesByAggregateShare) {
  // Queue 0 holds two jobs with 30 cores total; queue 1 one job with 10.
  std::vector<sim::JobView> jobs = {qjob(0, 0, 20), qjob(1, 0, 10),
                                    qjob(2, 1, 10)};
  const auto order =
      furthest_queues_order(FairnessPolicy::kDrf, jobs, cluster(), 2 * kGB);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // queue 1 has the smaller aggregate share
  EXPECT_EQ(order[1], 0);
}

TEST(QueueFairness, TiesBreakByQueueId) {
  std::vector<sim::JobView> jobs = {qjob(0, 3, 10), qjob(1, 1, 10)};
  const auto order =
      furthest_queues_order(FairnessPolicy::kDrf, jobs, cluster(), 2 * kGB);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 3);
}

TEST(QueueFairness, EmptyInputYieldsEmptyOrder) {
  EXPECT_TRUE(
      furthest_queues_order(FairnessPolicy::kSlots, {}, cluster(), 2 * kGB)
          .empty());
}

// ---------------------------------------------------------------------------
// Tetris with fairness over queues

sim::TaskSpec cpu_task(double cores, double mem_gb, double seconds) {
  sim::TaskSpec t;
  t.peak_cores = cores;
  t.peak_mem = mem_gb * kGB;
  t.cpu_cycles = cores * seconds;
  return t;
}

// Queue 0: four jobs; queue 1: one job. All jobs identical (4 x 1-core
// tasks). Per-queue fairness should give queue 1's single job ~half the
// machine; per-job fairness gives it ~a fifth.
sim::Workload queue_workload() {
  sim::Workload w;
  for (int j = 0; j < 5; ++j) {
    sim::JobSpec job;
    job.queue = j < 4 ? 0 : 1;
    job.name = "q" + std::to_string(job.queue) + "-j" + std::to_string(j);
    sim::StageSpec s;
    for (int i = 0; i < 8; ++i) s.tasks.push_back(cpu_task(1, 0.5, 10));
    job.stages.push_back(s);
    w.jobs.push_back(job);
  }
  return w;
}

sim::SimConfig one_machine() {
  sim::SimConfig cfg;
  cfg.num_machines = 1;
  cfg.machine_capacity =
      Resources::full(8, 16 * kGB, 200 * kMB, 200 * kMB, 125 * kMB,
                      125 * kMB);
  return cfg;
}

// Tasks of the queue-1 job running in the first wave under each mode.
int queue1_first_wave(bool over_queues) {
  core::TetrisConfig tcfg;
  tcfg.fairness_knob = 0.75;  // strong fairness so the cut bites
  tcfg.srtf_weight = 0;
  tcfg.fairness_over_queues = over_queues;
  core::TetrisScheduler tetris(tcfg);
  const auto r = sim::simulate(one_machine(), queue_workload(), tetris);
  EXPECT_TRUE(r.completed);
  SimTime first = 1e18;
  for (const auto& t : r.tasks) first = std::min(first, t.start);
  int count = 0;
  for (const auto& t : r.tasks) {
    if (t.job == 4 && t.start <= first + 1e-9) count++;
  }
  return count;
}

TEST(QueueFairness, QueueModeGivesTheLoneQueueALargerShare) {
  const int per_job = queue1_first_wave(false);
  const int per_queue = queue1_first_wave(true);
  // Per-queue: queue 1 deserves ~half of the 8 cores; per-job: ~1/5.
  EXPECT_GT(per_queue, per_job);
  EXPECT_GE(per_queue, 3);
}

TEST(QueueFairness, SingleQueueDegeneratesToJobFairness) {
  // All jobs in one queue: both modes complete and behave sanely.
  auto w = queue_workload();
  for (auto& job : w.jobs) job.queue = 0;
  for (bool over_queues : {false, true}) {
    core::TetrisConfig tcfg;
    tcfg.fairness_knob = 0.5;
    tcfg.fairness_over_queues = over_queues;
    core::TetrisScheduler tetris(tcfg);
    const auto r = sim::simulate(one_machine(), w, tetris);
    EXPECT_TRUE(r.completed);
  }
}

TEST(QueueFairness, QueueModeCompletesMixedWorkload) {
  auto w = queue_workload();
  core::TetrisConfig tcfg;
  tcfg.fairness_knob = 0.25;
  tcfg.fairness_over_queues = true;
  core::TetrisScheduler tetris(tcfg);
  const auto r = sim::simulate(one_machine(), w, tetris);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks.size(), 40u);
}

}  // namespace
}  // namespace tetris::sched
