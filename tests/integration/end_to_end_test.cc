// End-to-end regression guards: the paper's headline claims must hold on
// generated workloads, runs must be deterministic and conservation laws
// must hold across every scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/metrics.h"
#include "core/tetris_scheduler.h"
#include "sched/drf_scheduler.h"
#include "sched/slot_scheduler.h"
#include "sched/upper_bound.h"
#include "sim/simulator.h"
#include "workload/facebook.h"
#include "workload/profiles.h"
#include "workload/suite.h"
#include "workload/trace_io.h"

namespace tetris {
namespace {

sim::SimConfig test_cluster(int machines = 12) {
  sim::SimConfig cfg;
  cfg.num_machines = machines;
  cfg.machine_capacity = workload::facebook_machine();
  return cfg;
}

sim::Workload test_workload(std::uint64_t seed = 1) {
  workload::SuiteConfig wcfg;
  wcfg.num_jobs = 30;
  wcfg.num_machines = 12;
  wcfg.task_scale = 0.05;
  wcfg.arrival_window = 300;
  wcfg.seed = seed;
  return workload::make_suite_workload(wcfg);
}

sim::SimResult run_tetris(const sim::SimConfig& base, const sim::Workload& w,
                          core::TetrisConfig tcfg = {}) {
  sim::SimConfig cfg = base;
  cfg.tracker = sim::TrackerMode::kUsage;
  core::TetrisScheduler tetris(std::move(tcfg));
  return sim::simulate(cfg, w, tetris);
}

TEST(EndToEnd, HeadlineClaimTetrisBeatsBaselines) {
  const auto w = test_workload();
  const auto cfg = test_cluster();
  sched::SlotScheduler slot;
  sched::DrfScheduler drf;
  const auto r_slot = sim::simulate(cfg, w, slot);
  const auto r_drf = sim::simulate(cfg, w, drf);
  const auto r_tetris = run_tetris(cfg, w);
  ASSERT_TRUE(r_slot.completed);
  ASSERT_TRUE(r_drf.completed);
  ASSERT_TRUE(r_tetris.completed);
  // The paper's headline: >10% better makespan and avg JCT than both
  // baselines (it reports ~30%; we leave slack for workload variation).
  EXPECT_GT(analysis::makespan_reduction(r_slot, r_tetris), 10);
  EXPECT_GT(analysis::makespan_reduction(r_drf, r_tetris), 10);
  EXPECT_GT(analysis::avg_jct_reduction(r_slot, r_tetris), 10);
  EXPECT_GT(analysis::avg_jct_reduction(r_drf, r_tetris), 10);
}

TEST(EndToEnd, UpperBoundIsAtLeastAsGoodAsTetris) {
  const auto w = test_workload();
  const auto cfg = test_cluster();
  const auto r_tetris = run_tetris(cfg, w);
  core::TetrisConfig ub_cfg;
  ub_cfg.fairness_knob = 0;
  ub_cfg.barrier_knob = 1.0;
  core::TetrisScheduler ub_sched(ub_cfg);
  const auto r_ub = sim::simulate(sched::aggregate_config(cfg),
                                  sched::aggregate_workload(w), ub_sched);
  ASSERT_TRUE(r_ub.completed);
  // The relaxation removes fragmentation and remote reads; allow a tiny
  // tolerance for heartbeat quantization.
  EXPECT_LE(r_ub.makespan, r_tetris.makespan * 1.05);
  EXPECT_LE(r_ub.avg_jct(), r_tetris.avg_jct() * 1.05);
}

TEST(EndToEnd, SameSeedIsDeterministic) {
  const auto w = test_workload();
  const auto cfg = test_cluster();
  const auto a = run_tetris(cfg, w);
  const auto b = run_tetris(cfg, w);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(a.makespan, b.makespan);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].start, b.tasks[i].start);
    EXPECT_EQ(a.tasks[i].host, b.tasks[i].host);
  }
}

TEST(EndToEnd, EveryTaskRunsExactlyOnce) {
  const auto w = test_workload();
  for (int variant = 0; variant < 2; ++variant) {
    sim::SimResult r;
    if (variant == 0) {
      sched::SlotScheduler s;
      r = sim::simulate(test_cluster(), w, s);
    } else {
      r = run_tetris(test_cluster(), w);
    }
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.tasks.size(), w.total_tasks());
    std::set<std::tuple<int, int, int>> seen;
    for (const auto& t : r.tasks) {
      EXPECT_TRUE(seen.insert({t.job, t.stage, t.index}).second);
      EXPECT_GE(t.start, 0);
      EXPECT_GT(t.finish, t.start);
      EXPECT_GE(t.host, 0);
      EXPECT_LT(t.host, 12);
      // No task ever beats its physics.
      EXPECT_GE(t.duration(), t.natural_duration - 1e-6);
    }
  }
}

TEST(EndToEnd, BarriersHoldForEveryScheduler) {
  const auto w = test_workload();
  for (int variant = 0; variant < 2; ++variant) {
    sim::SimResult r;
    if (variant == 0) {
      sched::DrfScheduler s;
      r = sim::simulate(test_cluster(), w, s);
    } else {
      r = run_tetris(test_cluster(), w);
    }
    ASSERT_TRUE(r.completed);
    // map finish per (job, stage 0) vs earliest reduce start (stage 1).
    std::map<int, SimTime> map_done;
    for (const auto& t : r.tasks) {
      if (t.stage == 0) {
        map_done[t.job] = std::max(map_done[t.job], t.finish);
      }
    }
    for (const auto& t : r.tasks) {
      if (t.stage == 1) {
        EXPECT_GE(t.start, map_done[t.job] - 1e-9);
      }
    }
  }
}

TEST(EndToEnd, TetrisNeverOverAllocatesWithOracleEstimates) {
  // Random workloads across seeds: the admission invariant is that every
  // task runs at natural speed under Tetris.
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const auto w = test_workload(seed);
    const auto r = run_tetris(test_cluster(), w);
    ASSERT_TRUE(r.completed);
    for (const auto& t : r.tasks) {
      ASSERT_NEAR(t.duration(), t.natural_duration, 1e-6)
          << "seed " << seed << " job " << t.job;
    }
  }
}

TEST(EndToEnd, TraceRoundTripReproducesResults) {
  const auto w = test_workload();
  const auto replayed =
      workload::trace_from_string(workload::trace_to_string(w));
  const auto a = run_tetris(test_cluster(), w);
  const auto b = run_tetris(test_cluster(), replayed);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(a.makespan, b.makespan);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
}

TEST(EndToEnd, NoisyEstimatesStillComplete) {
  sim::SimConfig cfg = test_cluster();
  cfg.estimation.mode = sim::EstimationMode::kNoisy;
  cfg.estimation.noise_cov = 0.4;
  const auto w = test_workload();
  const auto r = run_tetris(cfg, w);
  EXPECT_TRUE(r.completed);
}

TEST(EndToEnd, LearnedProfileEstimatesStillComplete) {
  sim::SimConfig cfg = test_cluster();
  cfg.estimation.mode = sim::EstimationMode::kLearnedProfile;
  const auto w = test_workload();
  const auto r = run_tetris(cfg, w);
  EXPECT_TRUE(r.completed);
}

TEST(EndToEnd, FailureInjectionStillCompletesAndRetries) {
  sim::SimConfig cfg = test_cluster();
  cfg.task_failure_prob = 0.1;
  cfg.seed = 9;
  const auto w = test_workload();
  const auto r = run_tetris(cfg, w);
  ASSERT_TRUE(r.completed);
  int retried = 0;
  for (const auto& t : r.tasks) {
    if (t.attempts > 1) retried++;
  }
  EXPECT_GT(retried, 0);
}

TEST(EndToEnd, HeavyTailFacebookTraceCompletesUnderAllSchedulers) {
  workload::FacebookConfig wcfg;
  wcfg.num_jobs = 40;
  wcfg.num_machines = 12;
  wcfg.task_scale = 0.3;
  wcfg.arrival_window = 400;
  wcfg.seed = 2;
  const auto w = workload::make_facebook_workload(wcfg);
  sched::SlotScheduler slot;
  sched::DrfScheduler drf;
  EXPECT_TRUE(sim::simulate(test_cluster(), w, slot).completed);
  EXPECT_TRUE(sim::simulate(test_cluster(), w, drf).completed);
  EXPECT_TRUE(run_tetris(test_cluster(), w).completed);
}

TEST(EndToEnd, MakespanIsMeasuredFromFirstArrival) {
  sim::Workload w;
  sim::JobSpec job;
  job.arrival = 100;
  sim::StageSpec s;
  sim::TaskSpec t;
  t.peak_cores = 1;
  t.peak_mem = 1;
  t.cpu_cycles = 10;
  s.tasks = {t};
  job.stages = {s};
  w.jobs.push_back(job);
  const auto r = run_tetris(test_cluster(1), w);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.makespan, 15);  // not 110: measured from the arrival
}

}  // namespace
}  // namespace tetris
