// Property matrix: universal invariants that must hold for EVERY
// scheduler on EVERY workload — conservation of tasks, physics (no task
// beats its natural duration), barrier ordering, sane timestamps, and
// makespan lower bounds. Parameterized over scheduler x workload seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "core/tetris_scheduler.h"
#include "sched/constrained_random_scheduler.h"
#include "sched/drf_scheduler.h"
#include "sched/random_scheduler.h"
#include "sched/slot_scheduler.h"
#include "sched/srtf_scheduler.h"
#include "sim/simulator.h"
#include "tests/support/constraint_checker.h"
#include "workload/constrained.h"
#include "workload/facebook.h"
#include "workload/profiles.h"
#include "workload/suite.h"

namespace tetris {
namespace {

enum class Sched { kTetris, kSlot, kDrf, kSrtf, kRandom };
enum class Load { kSuite, kFacebook };

struct Case {
  Sched sched;
  Load load;
  std::uint64_t seed;
  // Tetris-only (DESIGN.md §9): worker threads for the scheduling pass.
  // The other schedulers ignore it.
  int num_threads = 0;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string s;
  switch (info.param.sched) {
    case Sched::kTetris:
      s = "Tetris";
      break;
    case Sched::kSlot:
      s = "Slot";
      break;
    case Sched::kDrf:
      s = "Drf";
      break;
    case Sched::kSrtf:
      s = "Srtf";
      break;
    case Sched::kRandom:
      s = "Random";
      break;
  }
  s += info.param.load == Load::kSuite ? "Suite" : "Facebook";
  s += "Seed" + std::to_string(info.param.seed);
  if (info.param.num_threads > 0)
    s += "Threads" + std::to_string(info.param.num_threads);
  return s;
}

std::unique_ptr<sim::Scheduler> make_scheduler(Sched kind,
                                               int num_threads = 0) {
  switch (kind) {
    case Sched::kTetris: {
      core::TetrisConfig tcfg;
      tcfg.num_threads = num_threads;
      return std::make_unique<core::TetrisScheduler>(tcfg);
    }
    case Sched::kSlot:
      return std::make_unique<sched::SlotScheduler>();
    case Sched::kDrf:
      return std::make_unique<sched::DrfScheduler>();
    case Sched::kSrtf:
      return std::make_unique<sched::SrtfScheduler>();
    case Sched::kRandom:
      return std::make_unique<sched::RandomScheduler>();
  }
  return nullptr;
}

sim::Workload make_load(Load kind, std::uint64_t seed) {
  if (kind == Load::kSuite) {
    workload::SuiteConfig cfg;
    cfg.num_jobs = 24;
    cfg.num_machines = 10;
    cfg.task_scale = 0.04;
    cfg.arrival_window = 250;
    cfg.seed = seed;
    return workload::make_suite_workload(cfg);
  }
  workload::FacebookConfig cfg;
  cfg.num_jobs = 30;
  cfg.num_machines = 10;
  cfg.task_scale = 0.3;
  cfg.arrival_window = 250;
  cfg.seed = seed;
  return workload::make_facebook_workload(cfg);
}

class SchedulerPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(SchedulerPropertyTest, UniversalInvariantsHold) {
  const Case c = GetParam();
  const sim::Workload w = make_load(c.load, c.seed);
  sim::SimConfig cfg;
  cfg.num_machines = 10;
  cfg.machine_capacity = workload::facebook_machine();
  if (c.sched == Sched::kTetris) cfg.tracker = sim::TrackerMode::kUsage;
  auto scheduler = make_scheduler(c.sched, c.num_threads);
  const sim::SimResult r = sim::simulate(cfg, w, *scheduler);

  // 1. Everything finishes and nothing runs twice.
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks.size(), w.total_tasks());
  std::set<std::tuple<int, int, int>> seen;
  for (const auto& t : r.tasks) {
    EXPECT_TRUE(seen.insert({t.job, t.stage, t.index}).second);
  }

  // 2. Physics: no task beats its natural duration; timestamps are sane.
  std::map<int, SimTime> arrivals;
  for (std::size_t j = 0; j < w.jobs.size(); ++j) {
    arrivals[static_cast<int>(j)] = w.jobs[j].arrival;
  }
  for (const auto& t : r.tasks) {
    EXPECT_GE(t.duration(), t.natural_duration - 1e-6);
    EXPECT_GE(t.start, arrivals[t.job] - 1e-9);
    EXPECT_GE(t.host, 0);
    EXPECT_LT(t.host, 10);
    EXPECT_GE(t.local_fraction, 0.0);
    EXPECT_LE(t.local_fraction, 1.0);
  }

  // 3. Barriers: no stage-s task starts before all of the stages it
  // depends on finished.
  std::map<std::pair<int, int>, SimTime> stage_done;
  for (const auto& t : r.tasks) {
    auto& done = stage_done[std::make_pair(t.job, t.stage)];
    done = std::max(done, t.finish);
  }
  for (const auto& t : r.tasks) {
    for (int dep : w.jobs[static_cast<std::size_t>(t.job)]
                       .stages[static_cast<std::size_t>(t.stage)]
                       .deps) {
      const SimTime dep_done = stage_done[std::make_pair(t.job, dep)];
      EXPECT_GE(t.start, dep_done - 1e-9)
          << "job " << t.job << " stage " << t.stage << " dep " << dep;
    }
  }

  // 4. Job records agree with task records.
  for (const auto& job : r.jobs) {
    SimTime last = 0;
    for (const auto& t : r.tasks) {
      if (t.job == job.id) last = std::max(last, t.finish);
    }
    EXPECT_NEAR(job.finish, last, 1e-9);
    EXPECT_GE(job.completion_time(), 0);
  }

  // 5. Makespan bounds: at least the longest single natural duration, at
  // most the serial sum of all durations.
  double longest = 0, serial = 0;
  for (const auto& t : r.tasks) {
    longest = std::max(longest, t.natural_duration);
    serial += t.duration();
  }
  EXPECT_GE(r.makespan, longest - 1e-6);
  EXPECT_LE(r.makespan, serial + 1e3);
}

// Same matrix under machine churn: three scripted outages land inside the
// busy period. The universal invariants must survive, plus the churn-
// specific ones — no successful attempt overlaps an outage window on the
// failed machine, and the attempt counters reconcile with the kills.
class ChurnPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(ChurnPropertyTest, ChurnInvariantsHold) {
  const Case c = GetParam();
  const sim::Workload w = make_load(c.load, c.seed);
  sim::SimConfig cfg;
  cfg.num_machines = 10;
  cfg.machine_capacity = workload::facebook_machine();
  if (c.sched == Sched::kTetris) cfg.tracker = sim::TrackerMode::kUsage;
  cfg.churn.scripted = {{2, 20.0, 80.0}, {7, 50.0, 140.0}, {2, 200.0, 260.0}};
  auto scheduler = make_scheduler(c.sched, c.num_threads);
  const sim::SimResult r = sim::simulate(cfg, w, *scheduler);

  // 1. The workload still drains, every task finishes exactly once.
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks.size(), w.total_tasks());
  std::set<std::tuple<int, int, int>> seen;
  for (const auto& t : r.tasks) {
    EXPECT_TRUE(seen.insert({t.job, t.stage, t.index}).second);
  }

  // 2. No successful attempt runs on a machine while it is down: the
  // recorded [start, finish) never overlaps an outage window on its host
  // (an attempt caught inside one would have been killed and requeued).
  for (const auto& t : r.tasks) {
    EXPECT_GE(t.host, 0);
    EXPECT_LT(t.host, 10);
    for (const auto& ev : cfg.churn.scripted) {
      if (t.host != ev.machine) continue;
      const bool overlaps =
          t.start < ev.up_at - 1e-9 && t.finish > ev.down_at + 1e-9;
      EXPECT_FALSE(overlaps)
          << "job " << t.job << " stage " << t.stage << " index " << t.index
          << " ran on machine " << ev.machine << " during ["
          << ev.down_at << ", " << ev.up_at << ")";
    }
  }

  // 3. Physics still holds: no attempt beats its natural duration.
  for (const auto& t : r.tasks) {
    EXPECT_GE(t.duration(), t.natural_duration - 1e-6);
    EXPECT_GE(t.attempts, 1);
  }

  // 4. Counter reconciliation: every kill is one lost attempt on exactly
  // one task, and every fired outage recovered (windows end well before
  // the workload drains or the counters diverge benignly — allow <=).
  long extra_attempts = 0;
  for (const auto& t : r.tasks) extra_attempts += t.attempts - 1;
  EXPECT_EQ(extra_attempts, r.churn.task_attempts_lost);
  EXPECT_LE(r.churn.machines_failed,
            static_cast<int>(cfg.churn.scripted.size()));
  EXPECT_LE(r.churn.machines_recovered, r.churn.machines_failed);
  EXPECT_GT(r.churn.machines_failed, 0);
  EXPECT_GE(r.churn.work_lost_seconds, 0.0);
  EXPECT_GT(r.churn.effective_capacity, 0.0);
  EXPECT_LE(r.churn.effective_capacity, 1.0 + 1e-9);
}

// The Tetris rows run serial and at 4 threads: churn is where the sharded
// pass's invalidation merges (drained rows, probe re-issues) are hardest,
// so the invariants must hold on both scan paths.
INSTANTIATE_TEST_SUITE_P(
    ChurnMatrix, ChurnPropertyTest,
    ::testing::Values(Case{Sched::kTetris, Load::kSuite, 1, 0},
                      Case{Sched::kTetris, Load::kSuite, 1, 4},
                      Case{Sched::kTetris, Load::kFacebook, 1, 0},
                      Case{Sched::kTetris, Load::kFacebook, 1, 4},
                      Case{Sched::kSlot, Load::kFacebook, 1},
                      Case{Sched::kDrf, Load::kSuite, 1},
                      Case{Sched::kSrtf, Load::kFacebook, 1},
                      Case{Sched::kRandom, Load::kSuite, 1}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchedulerPropertyTest,
    ::testing::Values(
        Case{Sched::kTetris, Load::kSuite, 1}, Case{Sched::kTetris, Load::kSuite, 2},
        Case{Sched::kTetris, Load::kFacebook, 1},
        Case{Sched::kTetris, Load::kFacebook, 2},
        Case{Sched::kSlot, Load::kSuite, 1}, Case{Sched::kSlot, Load::kFacebook, 1},
        Case{Sched::kDrf, Load::kSuite, 1}, Case{Sched::kDrf, Load::kFacebook, 1},
        Case{Sched::kSrtf, Load::kSuite, 1}, Case{Sched::kSrtf, Load::kFacebook, 1},
        Case{Sched::kRandom, Load::kSuite, 1},
        Case{Sched::kRandom, Load::kFacebook, 1}),
    case_name);

// Constraint-satisfaction matrix (DESIGN.md §13): on a constraint-heavy
// workload over a heterogeneous cluster, EVERY placement by EVERY
// scheduler — Tetris across the naive x threads x simd x churn grid and
// all baselines — must satisfy its stage's constraints. Checked post-hoc
// from the decision trace by an independent replayer, so the assertion
// does not share code with the admission predicate it is auditing.
struct ConstraintCase {
  std::string name;
  Sched sched = Sched::kTetris;
  int num_threads = 0;
  core::SimdMode simd = core::SimdMode::kOff;  // Tetris-only
  bool naive = false;                          // Tetris-only
  bool churn = false;
};

std::string constraint_case_name(
    const ::testing::TestParamInfo<ConstraintCase>& info) {
  return info.param.name;
}

class ConstraintPropertyTest
    : public ::testing::TestWithParam<ConstraintCase> {};

TEST_P(ConstraintPropertyTest, EveryPlacementSatisfiesItsConstraints) {
  const ConstraintCase c = GetParam();

  // Heavily constrained but statically feasible on this cluster: with
  // gpu on every 4th machine, highmem on every 3rd (offset 1) and racks
  // of 5, both racks hold gpu and highmem machines.
  workload::ConstrainedSuiteConfig wcfg;
  wcfg.base.num_jobs = 24;
  wcfg.base.num_machines = 10;
  wcfg.base.task_scale = 0.04;
  wcfg.base.arrival_window = 250;
  wcfg.base.seed = 1;
  wcfg.intensity = 1.5;
  const sim::Workload w = workload::make_constrained_suite(wcfg);

  sim::SimConfig cfg;
  cfg.num_machines = 10;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.machine_labels = workload::make_class_labels(10);
  cfg.machines_per_rack = 5;
  cfg.trace.enabled = true;
  cfg.trace.max_chunks_per_thread = 1024;
  if (c.churn) {
    cfg.churn.scripted = {{2, 20.0, 80.0}, {7, 50.0, 140.0},
                          {2, 200.0, 260.0}};
  }
  cfg.naive_scheduler_view = c.naive;

  std::unique_ptr<sim::Scheduler> scheduler;
  if (c.sched == Sched::kTetris) {
    cfg.tracker = sim::TrackerMode::kUsage;
    core::TetrisConfig tcfg;
    tcfg.num_threads = c.num_threads;
    tcfg.simd = c.simd;
    tcfg.naive_scoring = c.naive;
    scheduler = std::make_unique<core::TetrisScheduler>(tcfg);
  } else if (c.sched == Sched::kRandom) {
    scheduler = std::make_unique<sched::ConstrainedRandomScheduler>();
  } else {
    scheduler = make_scheduler(c.sched);
  }
  const sim::SimResult r = sim::simulate(cfg, w, *scheduler);

  // The workload is feasible: nothing may be doomed, everything drains.
  EXPECT_TRUE(r.infeasible.empty());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.trace_log.dropped, 0u);

  const auto check = test::check_constraints(w, cfg, r);
  EXPECT_GT(check.constrained_starts, 0)
      << "matrix case exercised no constrained placement — vacuous";
  EXPECT_TRUE(check.violations.empty())
      << check.violations.size() << " violations, first: "
      << check.violations.front();
}

INSTANTIATE_TEST_SUITE_P(
    ConstraintMatrix, ConstraintPropertyTest,
    ::testing::Values(
        ConstraintCase{"TetrisSerial"},
        ConstraintCase{"TetrisSerialSimdOn", Sched::kTetris, 0,
                       core::SimdMode::kOn},
        ConstraintCase{"TetrisNaiveOracle", Sched::kTetris, 0,
                       core::SimdMode::kOff, true},
        ConstraintCase{"Tetris4Threads", Sched::kTetris, 4},
        ConstraintCase{"Tetris8ThreadsSimdOn", Sched::kTetris, 8,
                       core::SimdMode::kOn},
        ConstraintCase{"TetrisChurnSerial", Sched::kTetris, 0,
                       core::SimdMode::kOff, false, true},
        ConstraintCase{"TetrisChurn4ThreadsSimdOn", Sched::kTetris, 4,
                       core::SimdMode::kOn, false, true},
        ConstraintCase{"ConstrainedRandom", Sched::kRandom},
        ConstraintCase{"ConstrainedRandomChurn", Sched::kRandom, 0,
                       core::SimdMode::kOff, false, true},
        ConstraintCase{"Slot", Sched::kSlot},
        ConstraintCase{"Drf", Sched::kDrf},
        ConstraintCase{"Srtf", Sched::kSrtf}),
    constraint_case_name);

}  // namespace
}  // namespace tetris
