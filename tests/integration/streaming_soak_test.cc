// Memory-ceiling soak for the streaming engine (`ctest -L soak`): a long
// synthetic stream runs under a small resident cap and the
// util::PerfCounters high-water marks must prove the cap held, while the
// retired-job aggregates folded into SimResult on the fly must equal what
// a batch run of the same workload computes after the fact.
//
// The default stream is ~200K tasks so the label stays affordable in the
// default preset; set TETRIS_SOAK_TASKS (e.g. 1000000) to scale the main
// soak up — the assertions are scale-invariant.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/tetris_scheduler.h"
#include "sim/simulator.h"
#include "workload/profiles.h"
#include "workload/stream_gen.h"

namespace tetris {
namespace {

long soak_tasks() {
  if (const char* env = std::getenv("TETRIS_SOAK_TASKS")) {
    const long v = std::atol(env);
    if (v > 0) return v;
  }
  return 200'000;
}

workload::StreamGenConfig stream_config(long tasks) {
  workload::StreamGenConfig gen;
  // ~125 tasks per job (100 map + ~25 reduce at the default width).
  gen.num_jobs = std::max(1L, tasks / 125);
  gen.num_machines = 20;
  gen.seed = 42;
  // ~2/3 offered load so the resident window stays flat (see
  // bench_streaming.cc for the sizing arithmetic).
  gen.arrival_spacing = 1300.0 / (0.65 * 16.0 * gen.num_machines);
  return gen;
}

sim::SimConfig soak_sim_config() {
  sim::SimConfig cfg;
  cfg.num_machines = 20;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.tracker = sim::TrackerMode::kUsage;
  cfg.stream.enabled = true;
  cfg.stream.max_resident_jobs = 32;
  cfg.stream.max_resident_tasks = 32 * 200;
  cfg.max_time = 1e9;
  return cfg;
}

TEST(StreamingSoakTest, ResidentCeilingHoldsOverALongStream) {
  const long tasks = soak_tasks();
  workload::StreamGenConfig gen = stream_config(tasks);
  workload::SyntheticJobSource source(gen);

  sim::SimConfig cfg = soak_sim_config();
  // Flat-memory mode: no per-task records, job records folded and dropped.
  cfg.collect_task_records = false;
  cfg.stream.drop_job_records = true;

  core::TetrisScheduler sched(core::TetrisConfig{});
  const sim::SimResult r = sim::simulate_stream(cfg, source, sched);

  EXPECT_TRUE(r.completed);
  const auto& p = r.perf;
  EXPECT_EQ(p.jobs_admitted, gen.num_jobs);
  EXPECT_EQ(p.jobs_retired, gen.num_jobs);
  // The ceiling is the contract: the gate must never have let the
  // resident set past the caps, whatever the stream length.
  EXPECT_GT(p.peak_resident_jobs, 0);
  EXPECT_LE(p.peak_resident_jobs, cfg.stream.max_resident_jobs);
  EXPECT_GT(p.peak_resident_tasks, 0);
  EXPECT_LE(p.peak_resident_tasks, cfg.stream.max_resident_tasks);
  // At 2/3 load the steady window sits far below the cap, so admission
  // never had to hold a due job back — the run is bit-faithful.
  EXPECT_EQ(p.stream_deferrals, 0);
  // Aggregates survive record dropping.
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_EQ(r.pass_latency.count(),
            static_cast<std::uint64_t>(r.scheduler_cost.invocations));
}

TEST(StreamingSoakTest, RetiredAggregatesMatchBatchRun) {
  // Small enough to afford the batch oracle, long enough to cycle the
  // resident window many times under the 32-job cap.
  workload::StreamGenConfig gen = stream_config(30'000);
  const sim::Workload w = workload::materialize_stream(gen);

  sim::SimConfig cfg = soak_sim_config();
  core::TetrisScheduler batch_sched(core::TetrisConfig{});
  sim::SimConfig batch_cfg = cfg;
  batch_cfg.stream.enabled = false;
  const sim::SimResult batch = sim::simulate(batch_cfg, w, batch_sched);

  workload::SyntheticJobSource source(gen);
  core::TetrisScheduler stream_sched(core::TetrisConfig{});
  const sim::SimResult stream =
      sim::simulate_stream(cfg, source, stream_sched);

  ASSERT_EQ(stream.perf.stream_deferrals, 0);
  EXPECT_LE(stream.perf.peak_resident_jobs, cfg.stream.max_resident_jobs);

  // The on-the-fly folds must equal batch's after-the-fact computation,
  // exactly: makespan, end time, completion, and every job record.
  EXPECT_EQ(batch.completed, stream.completed);
  EXPECT_EQ(batch.end_time, stream.end_time);
  EXPECT_EQ(batch.makespan, stream.makespan);
  EXPECT_EQ(batch.avg_jct(), stream.avg_jct());
  ASSERT_EQ(batch.jobs.size(), stream.jobs.size());
  for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
    EXPECT_EQ(batch.jobs[i].id, stream.jobs[i].id) << "job " << i;
    EXPECT_EQ(batch.jobs[i].arrival, stream.jobs[i].arrival) << "job " << i;
    EXPECT_EQ(batch.jobs[i].finish, stream.jobs[i].finish) << "job " << i;
    EXPECT_EQ(batch.jobs[i].total_tasks, stream.jobs[i].total_tasks)
        << "job " << i;
  }
  ASSERT_EQ(batch.tasks.size(), stream.tasks.size());
}

TEST(StreamingSoakTest, TinyCapDefersButStillDrainsEveryJob) {
  // A deliberately too-small ceiling: admission must hold due jobs back
  // (counted as deferrals), yet every job still gets admitted, run and
  // retired once space frees up — bounded memory degrades latency, never
  // correctness.
  workload::StreamGenConfig gen = stream_config(10'000);
  workload::SyntheticJobSource source(gen);

  sim::SimConfig cfg = soak_sim_config();
  cfg.stream.max_resident_jobs = 2;
  cfg.stream.max_resident_tasks = 1000;

  core::TetrisScheduler sched(core::TetrisConfig{});
  const sim::SimResult r = sim::simulate_stream(cfg, source, sched);

  const auto& p = r.perf;
  EXPECT_EQ(p.jobs_admitted, gen.num_jobs);
  EXPECT_EQ(p.jobs_retired, gen.num_jobs);
  EXPECT_LE(p.peak_resident_jobs, 2);
  EXPECT_GT(p.stream_deferrals, 0);
  EXPECT_TRUE(r.completed);
  ASSERT_EQ(r.jobs.size(), static_cast<std::size_t>(gen.num_jobs));
  for (const auto& j : r.jobs) {
    EXPECT_GE(j.finish, j.arrival) << "job " << j.id;
  }
}

TEST(StreamingSoakTest, OversizedJobIsRejectedUpFront) {
  // A single job larger than the task ceiling can never be admitted;
  // the gate must fail fast with a clear error instead of deadlocking.
  workload::StreamGenConfig gen = stream_config(5'000);
  workload::SyntheticJobSource source(gen);

  sim::SimConfig cfg = soak_sim_config();
  cfg.stream.max_resident_tasks = 10;  // every job exceeds this

  core::TetrisScheduler sched(core::TetrisConfig{});
  EXPECT_THROW(sim::simulate_stream(cfg, source, sched),
               std::invalid_argument);
}

}  // namespace
}  // namespace tetris
