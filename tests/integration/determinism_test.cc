// Determinism of the sharded scheduling pass (DESIGN.md §9): the thread
// pool introduces real concurrency, but none of it may show through. Two
// properties pin that down:
//
//  1. Repeatability — the same seed and config at 8 threads yields an
//     identical SimResult on every run: every record, every counter. The
//     only exceptions are wall-clock fields (scheduler latency, pass
//     seconds, reduction nanos), which measure the machine, not the
//     schedule.
//  2. Thread-count independence — the analysis CSVs derived from the
//     schedule (jobs, tasks, timeline, churn) are byte-identical across
//     serial, 2-, 4- and 8-thread runs. Perf-counter and pass-sample CSVs
//     are excluded: they report latency and probe-cache traffic, which
//     legitimately depend on the execution, not the schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/export.h"
#include "core/tetris_scheduler.h"
#include "sim/simulator.h"
#include "workload/facebook.h"
#include "workload/profiles.h"
#include "workload/suite.h"

namespace tetris {
namespace {

sim::Workload make_load(bool facebook, std::uint64_t seed) {
  if (facebook) {
    workload::FacebookConfig cfg;
    cfg.num_jobs = 30;
    cfg.num_machines = 10;
    cfg.task_scale = 0.3;
    cfg.arrival_window = 250;
    cfg.seed = seed;
    return workload::make_facebook_workload(cfg);
  }
  workload::SuiteConfig cfg;
  cfg.num_jobs = 24;
  cfg.num_machines = 10;
  cfg.task_scale = 0.04;
  cfg.arrival_window = 250;
  cfg.seed = seed;
  return workload::make_suite_workload(cfg);
}

sim::SimConfig base_config(bool churn) {
  sim::SimConfig cfg;
  cfg.num_machines = 10;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.tracker = sim::TrackerMode::kUsage;
  cfg.collect_timeline = true;
  cfg.collect_pass_samples = true;
  if (churn) {
    cfg.churn.scripted = {{2, 20.0, 80.0}, {7, 50.0, 140.0}, {2, 200.0, 260.0}};
  }
  return cfg;
}

sim::SimResult run(const sim::SimConfig& cfg, const sim::Workload& w,
                   int threads) {
  core::TetrisConfig tcfg;
  tcfg.num_threads = threads;
  core::TetrisScheduler sched(tcfg);
  return sim::simulate(cfg, w, sched);
}

// Full SimResult comparison, excluding only wall-clock measurements. At a
// FIXED thread count every counter is deterministic — each shard's
// decisions depend only on shard-local state — so the perf counters are
// compared exactly, probe-cache traffic included.
void expect_repeat_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.scheduler_name, b.scheduler_name);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.makespan, b.makespan);

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id) << "job " << i;
    EXPECT_EQ(a.jobs[i].name, b.jobs[i].name) << "job " << i;
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival) << "job " << i;
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish) << "job " << i;
    EXPECT_EQ(a.jobs[i].total_tasks, b.jobs[i].total_tasks) << "job " << i;
  }
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].job, b.tasks[i].job) << "task " << i;
    EXPECT_EQ(a.tasks[i].stage, b.tasks[i].stage) << "task " << i;
    EXPECT_EQ(a.tasks[i].index, b.tasks[i].index) << "task " << i;
    EXPECT_EQ(a.tasks[i].host, b.tasks[i].host) << "task " << i;
    EXPECT_EQ(a.tasks[i].start, b.tasks[i].start) << "task " << i;
    EXPECT_EQ(a.tasks[i].finish, b.tasks[i].finish) << "task " << i;
    EXPECT_EQ(a.tasks[i].attempts, b.tasks[i].attempts) << "task " << i;
    EXPECT_EQ(a.tasks[i].local_fraction, b.tasks[i].local_fraction)
        << "task " << i;
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time, b.timeline[i].time) << "sample " << i;
    EXPECT_EQ(a.timeline[i].running_tasks, b.timeline[i].running_tasks)
        << "sample " << i;
    EXPECT_EQ(a.timeline[i].utilization, b.timeline[i].utilization)
        << "sample " << i;
  }
  for (std::size_t r = 0; r < kNumResources; ++r)
    EXPECT_EQ(a.machine_usage_samples[r], b.machine_usage_samples[r])
        << "resource " << r;

  // Scheduler cost: counts are schedule-derived, seconds are wall clock.
  EXPECT_EQ(a.scheduler_cost.invocations, b.scheduler_cost.invocations);
  EXPECT_EQ(a.scheduler_cost.placements, b.scheduler_cost.placements);
  ASSERT_EQ(a.pass_samples.size(), b.pass_samples.size());
  for (std::size_t i = 0; i < a.pass_samples.size(); ++i) {
    EXPECT_EQ(a.pass_samples[i].time, b.pass_samples[i].time) << "pass " << i;
    EXPECT_EQ(a.pass_samples[i].backlog, b.pass_samples[i].backlog)
        << "pass " << i;
    EXPECT_EQ(a.pass_samples[i].placements, b.pass_samples[i].placements)
        << "pass " << i;
  }

  EXPECT_EQ(a.perf.score_evals, b.perf.score_evals);
  EXPECT_EQ(a.perf.probes_issued, b.perf.probes_issued);
  EXPECT_EQ(a.perf.probe_reuses, b.perf.probe_reuses);
  EXPECT_EQ(a.perf.sticky_rejects, b.perf.sticky_rejects);
  EXPECT_EQ(a.perf.fit_index_skips, b.perf.fit_index_skips);
  EXPECT_EQ(a.perf.row_skips, b.perf.row_skips);
  EXPECT_EQ(a.perf.probe_cache_hits, b.perf.probe_cache_hits);
  EXPECT_EQ(a.perf.probe_cache_misses, b.perf.probe_cache_misses);
  EXPECT_EQ(a.perf.estimate_cache_hits, b.perf.estimate_cache_hits);
  EXPECT_EQ(a.perf.estimate_cache_misses, b.perf.estimate_cache_misses);
  EXPECT_EQ(a.perf.avail_cache_hits, b.perf.avail_cache_hits);
  EXPECT_EQ(a.perf.avail_recomputes, b.perf.avail_recomputes);
  EXPECT_EQ(a.perf.parallel_passes, b.perf.parallel_passes);
  EXPECT_EQ(a.perf.shard_score_evals, b.perf.shard_score_evals);
  // Batch-kernel counters depend on shard boundaries, but at a FIXED
  // thread count those are deterministic too (DESIGN.md §12).
  EXPECT_EQ(a.perf.simd_blocks, b.perf.simd_blocks);
  EXPECT_EQ(a.perf.scalar_tail_evals, b.perf.scalar_tail_evals);
  // perf.reduction_nanos deliberately not compared: wall clock.

  EXPECT_EQ(a.churn.machines_failed, b.churn.machines_failed);
  EXPECT_EQ(a.churn.machines_recovered, b.churn.machines_recovered);
  EXPECT_EQ(a.churn.task_attempts_lost, b.churn.task_attempts_lost);
  EXPECT_EQ(a.churn.work_lost_seconds, b.churn.work_lost_seconds);
  EXPECT_EQ(a.churn.read_failovers, b.churn.read_failovers);
  EXPECT_EQ(a.churn.effective_capacity, b.churn.effective_capacity);
}

TEST(DeterminismTest, RepeatedEightThreadRunsAreIdentical) {
  const sim::Workload w = make_load(/*facebook=*/true, 1);
  const sim::SimConfig cfg = base_config(/*churn=*/false);
  const sim::SimResult first = run(cfg, w, 8);
  ASSERT_TRUE(first.completed);
  ASSERT_GT(first.perf.parallel_passes, 0);
  for (int rep = 1; rep < 5; ++rep) {
    SCOPED_TRACE("repeat " + std::to_string(rep));
    expect_repeat_identical(first, run(cfg, w, 8));
  }
}

TEST(DeterminismTest, RepeatedEightThreadChurnRunsAreIdentical) {
  // Churn is the hardest case: drained rows merge at the reduction
  // barrier, and shards independently re-probe dead candidates.
  const sim::Workload w = make_load(/*facebook=*/false, 3);
  const sim::SimConfig cfg = base_config(/*churn=*/true);
  const sim::SimResult first = run(cfg, w, 8);
  ASSERT_TRUE(first.completed);
  ASSERT_GT(first.churn.machines_failed, 0);
  for (int rep = 1; rep < 5; ++rep) {
    SCOPED_TRACE("repeat " + std::to_string(rep));
    expect_repeat_identical(first, run(cfg, w, 8));
  }
}

TEST(DeterminismTest, ScheduleCsvsAreThreadCountIndependent) {
  const sim::Workload w = make_load(/*facebook=*/true, 2);
  const sim::SimConfig cfg = base_config(/*churn=*/true);
  const sim::SimResult serial = run(cfg, w, 0);
  ASSERT_TRUE(serial.completed);
  const std::string jobs = analysis::jobs_csv(serial);
  const std::string tasks = analysis::tasks_csv(serial);
  const std::string timeline = analysis::timeline_csv(serial);
  const std::string churn = analysis::churn_csv(serial);
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const sim::SimResult r = run(cfg, w, threads);
    EXPECT_EQ(analysis::jobs_csv(r), jobs);
    EXPECT_EQ(analysis::tasks_csv(r), tasks);
    EXPECT_EQ(analysis::timeline_csv(r), timeline);
    EXPECT_EQ(analysis::churn_csv(r), churn);
  }
}

TEST(DeterminismTest, MoreThreadsThanMachinesStillDeterministic) {
  // num_threads above the machine count collapses to one column per
  // shard; the reduction still has to respect the serial tie-break.
  const sim::Workload w = make_load(/*facebook=*/false, 1);
  const sim::SimConfig cfg = base_config(/*churn=*/false);
  const sim::SimResult serial = run(cfg, w, 0);
  const sim::SimResult wide = run(cfg, w, 32);
  EXPECT_EQ(analysis::tasks_csv(wide), analysis::tasks_csv(serial));
  EXPECT_EQ(analysis::jobs_csv(wide), analysis::jobs_csv(serial));
}

}  // namespace
}  // namespace tetris
