// The streaming equivalence contract (DESIGN.md §11): the streaming
// engine — bounded look-ahead admission, out-of-core retirement, memo
// pruning — must produce runs BIT-IDENTICAL to the batch simulator it
// replaces, as long as no resident ceiling forces a deferral. Not "close":
// every placement, timestamp, job record and decision-level trace event
// must match exactly, across workloads, the naive/optimized scoring pair,
// serial and 8-thread passes, noisy estimation (RNG stream parity) and
// churn (fork-order parity). The batch path is the oracle; any drift is a
// bug in the admission gate's event ordering or the retirement rules.
//
// A second layer proves the trace round trip: the same workload fed
// through a binary trace file (write → BinaryTraceReader → stream) must
// match the in-memory streaming run record for record.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include "core/tetris_scheduler.h"
#include "sim/simulator.h"
#include "trace/replayer.h"
#include "workload/facebook.h"
#include "workload/motivating.h"
#include "workload/profiles.h"
#include "workload/suite.h"
#include "workload/trace_binary.h"

namespace tetris {
namespace {

enum class Load { kMotivating, kFacebook, kSuite };

struct Case {
  std::string name;
  Load load = Load::kMotivating;
  bool naive = false;  // naive scoring + naive scheduler view
  int threads = 0;
  bool churn = false;
  sim::EstimationMode estimation = sim::EstimationMode::kOracle;
  double lookahead = 30.0;
  // Opt cases default to the batch kernel (the production default); the
  // explicit SimdOff cases pin the scalar scan to the same contract.
  core::SimdMode simd = core::SimdMode::kOn;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return info.param.name;
}

struct Scenario {
  sim::Workload workload;
  sim::SimConfig config;
};

Scenario make_scenario(const Case& c) {
  Scenario s;
  if (c.load == Load::kMotivating) {
    auto ex = workload::make_motivating_example();
    s.workload = std::move(ex.workload);
    s.config = ex.config;
  } else if (c.load == Load::kFacebook) {
    workload::FacebookConfig cfg;
    cfg.num_jobs = 30;
    cfg.num_machines = 10;
    cfg.task_scale = 0.3;
    cfg.arrival_window = 250;
    cfg.seed = 1;
    s.workload = workload::make_facebook_workload(cfg);
    s.config.num_machines = 10;
    s.config.machine_capacity = workload::facebook_machine();
  } else {
    workload::SuiteConfig cfg;
    cfg.num_jobs = 24;
    cfg.num_machines = 10;
    cfg.task_scale = 0.04;
    cfg.arrival_window = 250;
    cfg.seed = 1;
    s.workload = workload::make_suite_workload(cfg);
    s.config.num_machines = 10;
    s.config.machine_capacity = workload::facebook_machine();
  }
  // Streaming consumes jobs in arrival order; run batch on the same sorted
  // workload so both modes see identical job ids and the comparison is
  // record for record.
  s.workload = sim::sorted_by_arrival(s.workload);
  s.config.estimation.mode = c.estimation;
  if (c.churn) {
    s.config.churn.scripted = {{1, 20.0, 80.0}, {4, 50.0, 140.0}};
  }
  // Decision-stream equality is part of the contract.
  s.config.trace.enabled = true;
  s.config.trace.max_chunks_per_thread = 1024;
  return s;
}

sim::SimResult run_case(const Case& c, const Scenario& s, bool streaming) {
  sim::SimConfig cfg = s.config;
  cfg.naive_scheduler_view = c.naive;
  cfg.num_threads = c.threads;
  cfg.stream.enabled = streaming;
  cfg.stream.lookahead = c.lookahead;
  core::TetrisConfig tcfg;
  tcfg.naive_scoring = c.naive;
  tcfg.num_threads = c.threads;
  tcfg.simd = c.simd;
  core::TetrisScheduler sched(tcfg);
  return sim::simulate(cfg, s.workload, sched);
}

// Exact double equality is deliberate: streaming must reproduce the very
// same floating-point operations in the very same order as batch.
void expect_identical(const sim::SimResult& batch,
                      const sim::SimResult& stream) {
  EXPECT_EQ(batch.completed, stream.completed);
  EXPECT_EQ(batch.end_time, stream.end_time);
  EXPECT_EQ(batch.makespan, stream.makespan);
  EXPECT_EQ(batch.scheduler_cost.invocations,
            stream.scheduler_cost.invocations);
  EXPECT_EQ(batch.scheduler_cost.placements, stream.scheduler_cost.placements);

  ASSERT_EQ(batch.jobs.size(), stream.jobs.size());
  for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
    EXPECT_EQ(batch.jobs[i].id, stream.jobs[i].id) << "job " << i;
    EXPECT_EQ(batch.jobs[i].name, stream.jobs[i].name) << "job " << i;
    EXPECT_EQ(batch.jobs[i].arrival, stream.jobs[i].arrival) << "job " << i;
    EXPECT_EQ(batch.jobs[i].finish, stream.jobs[i].finish) << "job " << i;
    EXPECT_EQ(batch.jobs[i].total_tasks, stream.jobs[i].total_tasks)
        << "job " << i;
  }

  ASSERT_EQ(batch.tasks.size(), stream.tasks.size());
  for (std::size_t i = 0; i < batch.tasks.size(); ++i) {
    const auto& a = batch.tasks[i];
    const auto& b = stream.tasks[i];
    EXPECT_EQ(a.job, b.job) << "task " << i;
    EXPECT_EQ(a.stage, b.stage) << "task " << i;
    EXPECT_EQ(a.index, b.index) << "task " << i;
    EXPECT_EQ(a.host, b.host) << "task " << i;
    EXPECT_EQ(a.start, b.start) << "task " << i;
    EXPECT_EQ(a.finish, b.finish) << "task " << i;
    EXPECT_EQ(a.attempts, b.attempts) << "task " << i;
    EXPECT_EQ(a.local_fraction, b.local_fraction) << "task " << i;
  }

  EXPECT_EQ(batch.churn.machines_failed, stream.churn.machines_failed);
  EXPECT_EQ(batch.churn.task_attempts_lost, stream.churn.task_attempts_lost);
  EXPECT_EQ(batch.churn.work_lost_seconds, stream.churn.work_lost_seconds);
}

std::string first_placement_divergence(const sim::SimResult& want,
                                       const sim::SimResult& got) {
  const std::size_t n = std::min(want.tasks.size(), got.tasks.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = want.tasks[i];
    const auto& b = got.tasks[i];
    if (a.job == b.job && a.stage == b.stage && a.index == b.index &&
        a.host == b.host && a.start == b.start && a.finish == b.finish)
      continue;
    std::ostringstream os;
    os << "first divergent placement: task[" << i << "] want job=" << a.job
       << " stage=" << a.stage << " index=" << a.index << " host=" << a.host
       << " start=" << a.start << ", got job=" << b.job
       << " stage=" << b.stage << " index=" << b.index << " host=" << b.host
       << " start=" << b.start;
    return os.str();
  }
  if (want.tasks.size() != got.tasks.size()) {
    std::ostringstream os;
    os << "task record counts diverge: want " << want.tasks.size() << ", got "
       << got.tasks.size();
    return os.str();
  }
  return "placements identical";
}

class StreamingEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(StreamingEquivalenceTest, StreamMatchesBatchBitForBit) {
  const Case c = GetParam();
  const Scenario s = make_scenario(c);

  const sim::SimResult batch = run_case(c, s, /*streaming=*/false);
  const sim::SimResult stream = run_case(c, s, /*streaming=*/true);

  SCOPED_TRACE(first_placement_divergence(batch, stream));
  expect_identical(batch, stream);

  // Decision-for-decision trace equality: same arrivals, passes,
  // placements (alignment scores and fairness cuts included), task
  // lifecycle and churn edges in the same order.
  ASSERT_EQ(stream.trace_log.dropped, 0u);
  const trace::Divergence d = trace::first_divergence(
      batch.trace_log, stream.trace_log, trace::CompareMode::kDecisions);
  EXPECT_TRUE(d.identical) << d.description;

  // The streaming run must actually have streamed, and the bit-identity
  // contract requires that no admission was ever deferred.
  const auto& p = stream.perf;
  EXPECT_EQ(p.jobs_admitted, static_cast<long>(s.workload.jobs.size()));
  EXPECT_EQ(p.jobs_retired, p.jobs_admitted);
  EXPECT_EQ(p.stream_deferrals, 0);
  EXPECT_GT(p.peak_resident_jobs, 0);
  EXPECT_LE(p.peak_resident_jobs, p.jobs_admitted);
  // Batch keeps no streaming counters.
  EXPECT_EQ(batch.perf.jobs_admitted, 0);
  EXPECT_EQ(batch.perf.jobs_retired, 0);
}

TEST_P(StreamingEquivalenceTest, BinaryTraceFileSourceMatchesBatch) {
  const Case c = GetParam();
  // The file round trip is source plumbing, not a scoring path: one pass
  // through the serial/opt member of each scenario family keeps the
  // matrix affordable.
  if (c.naive || c.threads != 0) GTEST_SKIP() << "covered by in-memory case";
  const Scenario s = make_scenario(c);

  const std::string path = ::testing::TempDir() + "stream_equiv_" + c.name +
                           ".bin";
  workload::write_binary_trace_file(path, s.workload);
  workload::BinaryTraceReader reader(path);

  sim::SimConfig cfg = s.config;
  cfg.naive_scheduler_view = c.naive;
  cfg.num_threads = c.threads;
  cfg.stream.lookahead = c.lookahead;
  core::TetrisConfig tcfg;
  tcfg.naive_scoring = c.naive;
  tcfg.num_threads = c.threads;
  core::TetrisScheduler sched(tcfg);
  const sim::SimResult from_file = sim::simulate_stream(cfg, reader, sched);

  const sim::SimResult batch = run_case(c, s, /*streaming=*/false);
  SCOPED_TRACE(first_placement_divergence(batch, from_file));
  expect_identical(batch, from_file);
  const trace::Divergence d = trace::first_divergence(
      batch.trace_log, from_file.trace_log, trace::CompareMode::kDecisions);
  EXPECT_TRUE(d.identical) << d.description;
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StreamingEquivalenceTest,
    ::testing::Values(
        // The {workload} x {serial, 8 threads} x {naive, opt} grid.
        Case{"MotivatingOptSerial", Load::kMotivating, false, 0},
        Case{"MotivatingOpt8Threads", Load::kMotivating, false, 8},
        Case{"MotivatingNaiveSerial", Load::kMotivating, true, 0},
        Case{"MotivatingNaive8Threads", Load::kMotivating, true, 8},
        Case{"FacebookOptSerial", Load::kFacebook, false, 0},
        Case{"FacebookOpt8Threads", Load::kFacebook, false, 8},
        Case{"FacebookNaiveSerial", Load::kFacebook, true, 0},
        Case{"FacebookNaive8Threads", Load::kFacebook, true, 8},
        // Composition: the admission gate must not disturb the churn or
        // noise RNG streams (fork-order parity with the batch ctor).
        Case{"SuiteChurnOptSerial", Load::kSuite, false, 0, true},
        Case{"FacebookChurnOpt8Threads", Load::kFacebook, false, 8, true},
        Case{"SuiteNoisyOptSerial", Load::kSuite, false, 0, false,
             sim::EstimationMode::kNoisy},
        Case{"FacebookNoisyNaiveSerial", Load::kFacebook, true, 0, false,
             sim::EstimationMode::kNoisy},
        // A zero look-ahead window admits strictly on due arrivals; the
        // schedule must not depend on prefetch depth.
        Case{"FacebookOptNoLookahead", Load::kFacebook, false, 0, false,
             sim::EstimationMode::kOracle, 0.0},
        Case{"MotivatingOptNoLookahead", Load::kMotivating, false, 0, false,
             sim::EstimationMode::kOracle, 0.0},
        // The simd knob must be invisible to the streaming contract
        // (DESIGN.md §12): scalar-scan runs match batch just like the
        // default batch-kernel runs above.
        Case{"FacebookOptSerialSimdOff", Load::kFacebook, false, 0, false,
             sim::EstimationMode::kOracle, 30.0, core::SimdMode::kOff},
        Case{"FacebookOpt8ThreadsSimdOff", Load::kFacebook, false, 8, false,
             sim::EstimationMode::kOracle, 30.0, core::SimdMode::kOff}),
    case_name);

}  // namespace
}  // namespace tetris
