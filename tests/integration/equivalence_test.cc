// The hot-path equivalence property (DESIGN.md §8): the optimized
// scheduling path — simulator-side view caches (availability, probe and
// group-estimate memos, wait FIFOs) plus scheduler-side shortcuts (sticky
// rejection, probe reuse, free-capacity index) — must produce schedules
// BIT-IDENTICAL to the naive recompute-everything oracle. Not "close":
// every timestamp, host and attempt count must match exactly, across
// workloads, seeds, tracker modes, estimation models, churn, and every
// Tetris extension knob. Doubles are compared with ==; any drift, however
// small, is a bug in an invalidation rule.
// PR 3 widens the matrix along a third axis: the sharded parallel pass
// (DESIGN.md §9) at 2 and 8 threads must match the serial scan — and the
// naive oracle — placement for placement, for every config.
// The SIMD axis (DESIGN.md §12) widens it again: the SoA batch scoring
// kernel with simd ∈ {off, on} must match too, serial and sharded. The
// oracle always scores scalar (naive_scoring forces simd off), so every
// vector lane is held to the same serial-scan contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/score_kernel.h"
#include "core/tetris_scheduler.h"
#include "sim/simulator.h"
#include "trace/replayer.h"
#include "workload/constrained.h"
#include "workload/facebook.h"
#include "workload/profiles.h"
#include "workload/suite.h"

namespace tetris {
namespace {

enum class Load { kSuite, kFacebook, kConstrained };

struct Case {
  std::string name;
  Load load = Load::kSuite;
  std::uint64_t seed = 1;
  bool churn = false;
  sim::TrackerMode tracker = sim::TrackerMode::kUsage;
  sim::EstimationMode estimation = sim::EstimationMode::kOracle;
  core::TetrisConfig tetris;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return info.param.name;
}

sim::Workload make_load(Load kind, std::uint64_t seed) {
  if (kind == Load::kSuite) {
    workload::SuiteConfig cfg;
    cfg.num_jobs = 24;
    cfg.num_machines = 10;
    cfg.task_scale = 0.04;
    cfg.arrival_window = 250;
    cfg.seed = seed;
    return workload::make_suite_workload(cfg);
  }
  if (kind == Load::kConstrained) {
    // The suite above decorated with placement constraints (DESIGN.md
    // §13); feasible by construction on the labeled 10-machine cluster
    // make_sim_config builds for this load.
    workload::ConstrainedSuiteConfig cfg;
    cfg.base.num_jobs = 24;
    cfg.base.num_machines = 10;
    cfg.base.task_scale = 0.04;
    cfg.base.arrival_window = 250;
    cfg.base.seed = seed;
    cfg.intensity = 1.5;
    return workload::make_constrained_suite(cfg);
  }
  workload::FacebookConfig cfg;
  cfg.num_jobs = 30;
  cfg.num_machines = 10;
  cfg.task_scale = 0.3;
  cfg.arrival_window = 250;
  cfg.seed = seed;
  return workload::make_facebook_workload(cfg);
}

sim::SimConfig make_sim_config(const Case& c) {
  sim::SimConfig cfg;
  cfg.num_machines = 10;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.tracker = c.tracker;
  cfg.estimation.mode = c.estimation;
  if (c.load == Load::kConstrained) {
    // Heterogeneous classes + racks so every constraint flavour (labels,
    // anti-affinity, same-rack-as-input) is live in the scan.
    cfg.machine_labels = workload::make_class_labels(10);
    cfg.machines_per_rack = 5;
  }
  if (c.churn) {
    cfg.churn.scripted = {{2, 20.0, 80.0}, {7, 50.0, 140.0}, {2, 200.0, 260.0}};
  }
  return cfg;
}

// Exact double equality is deliberate: the caches must reproduce the very
// same floating-point operations in the very same order.
void expect_identical(const sim::SimResult& naive, const sim::SimResult& opt) {
  EXPECT_EQ(naive.completed, opt.completed);
  EXPECT_EQ(naive.end_time, opt.end_time);
  EXPECT_EQ(naive.makespan, opt.makespan);
  EXPECT_EQ(naive.scheduler_cost.invocations, opt.scheduler_cost.invocations);
  EXPECT_EQ(naive.scheduler_cost.placements, opt.scheduler_cost.placements);

  ASSERT_EQ(naive.jobs.size(), opt.jobs.size());
  for (std::size_t i = 0; i < naive.jobs.size(); ++i) {
    EXPECT_EQ(naive.jobs[i].id, opt.jobs[i].id) << "job " << i;
    EXPECT_EQ(naive.jobs[i].arrival, opt.jobs[i].arrival) << "job " << i;
    EXPECT_EQ(naive.jobs[i].finish, opt.jobs[i].finish) << "job " << i;
  }

  ASSERT_EQ(naive.tasks.size(), opt.tasks.size());
  for (std::size_t i = 0; i < naive.tasks.size(); ++i) {
    const auto& a = naive.tasks[i];
    const auto& b = opt.tasks[i];
    EXPECT_EQ(a.job, b.job) << "task " << i;
    EXPECT_EQ(a.stage, b.stage) << "task " << i;
    EXPECT_EQ(a.index, b.index) << "task " << i;
    EXPECT_EQ(a.host, b.host) << "task " << i;
    EXPECT_EQ(a.start, b.start) << "task " << i;
    EXPECT_EQ(a.finish, b.finish) << "task " << i;
    EXPECT_EQ(a.attempts, b.attempts) << "task " << i;
    EXPECT_EQ(a.local_fraction, b.local_fraction) << "task " << i;
  }

  EXPECT_EQ(naive.churn.machines_failed, opt.churn.machines_failed);
  EXPECT_EQ(naive.churn.machines_recovered, opt.churn.machines_recovered);
  EXPECT_EQ(naive.churn.task_attempts_lost, opt.churn.task_attempts_lost);
  EXPECT_EQ(naive.churn.work_lost_seconds, opt.churn.work_lost_seconds);
}

// Divergence diagnostic: the matrix is large, so a bare EXPECT_EQ index is
// slow to act on. Name the first task whose placement differs outright.
std::string first_placement_divergence(const sim::SimResult& want,
                                       const sim::SimResult& got) {
  const std::size_t n = std::min(want.tasks.size(), got.tasks.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = want.tasks[i];
    const auto& b = got.tasks[i];
    if (a.job == b.job && a.stage == b.stage && a.index == b.index &&
        a.host == b.host && a.start == b.start && a.finish == b.finish &&
        a.attempts == b.attempts && a.local_fraction == b.local_fraction)
      continue;
    std::ostringstream os;
    os << "first divergent placement: task[" << i << "] job=" << a.job
       << " stage=" << a.stage << " index=" << a.index << " — want host="
       << a.host << " start=" << a.start << " finish=" << a.finish
       << " attempts=" << a.attempts << ", got host=" << b.host
       << " start=" << b.start << " finish=" << b.finish
       << " attempts=" << b.attempts;
    return os.str();
  }
  if (want.tasks.size() != got.tasks.size()) {
    std::ostringstream os;
    os << "task record counts diverge: want " << want.tasks.size() << ", got "
       << got.tasks.size();
    return os.str();
  }
  return "placements identical";
}

class EquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(EquivalenceTest, AllPathsAndThreadCountsAreBitIdentical) {
  const Case c = GetParam();
  const sim::Workload w = make_load(c.load, c.seed);

  const auto run = [&](bool naive, int threads, core::SimdMode simd) {
    sim::SimConfig cfg = make_sim_config(c);
    cfg.naive_scheduler_view = naive;
    // Record the event stream too: decision events must agree across the
    // whole matrix (DESIGN.md §10's cross-configuration contract).
    cfg.trace.enabled = true;
    cfg.trace.max_chunks_per_thread = 1024;
    core::TetrisConfig tcfg = c.tetris;
    tcfg.naive_scoring = naive;
    tcfg.num_threads = threads;
    tcfg.simd = simd;
    core::TetrisScheduler sched(tcfg);
    return sim::simulate(cfg, w, sched);
  };

  // The serial naive run is the oracle every other variant is held to.
  // naive_scoring always scores scalar regardless of the simd knob.
  const sim::SimResult oracle =
      run(/*naive=*/true, /*threads=*/0, core::SimdMode::kOff);

  struct Variant {
    const char* name;
    bool naive;
    int threads;
    core::SimdMode simd;
  };
  constexpr auto kOff = core::SimdMode::kOff;
  constexpr auto kOn = core::SimdMode::kOn;
  const Variant variants[] = {
      {"naive-2threads", true, 2, kOff},
      {"naive-8threads", true, 8, kOff},
      {"opt-serial-simd-off", false, 0, kOff},
      {"opt-serial-simd-on", false, 0, kOn},
      {"opt-2threads-simd-off", false, 2, kOff},
      {"opt-2threads-simd-on", false, 2, kOn},
      {"opt-8threads-simd-off", false, 8, kOff},
      {"opt-8threads-simd-on", false, 8, kOn},
  };
  for (const auto& v : variants) {
    SCOPED_TRACE(v.name);
    const sim::SimResult r = run(v.naive, v.threads, v.simd);
    SCOPED_TRACE(first_placement_divergence(oracle, r));
    expect_identical(oracle, r);

    // The recorded event streams must agree decision-for-decision with the
    // oracle's — same arrivals, passes, placements (including alignment
    // scores and fairness cuts), task lifecycle and churn edges.
    ASSERT_EQ(r.trace_log.dropped, 0u);
    const trace::Divergence d = trace::first_divergence(
        oracle.trace_log, r.trace_log, trace::CompareMode::kDecisions);
    EXPECT_TRUE(d.identical) << d.description;

    if (v.naive) {
      // The naive oracle must really be naive (at any thread count), or
      // the comparison proves nothing.
      EXPECT_EQ(r.perf.probe_cache_hits, 0);
      EXPECT_EQ(r.perf.estimate_cache_hits, 0);
      EXPECT_EQ(r.perf.avail_cache_hits, 0);
      EXPECT_EQ(r.perf.sticky_rejects, 0);
      EXPECT_EQ(r.perf.probe_reuses, 0);
      EXPECT_EQ(r.perf.fit_index_skips, 0);
    } else {
      // ... and the optimized path must really be optimized.
      EXPECT_GT(r.perf.avail_cache_hits, 0);
      EXPECT_GT(r.perf.probe_cache_hits + r.perf.probe_reuses +
                    r.perf.sticky_rejects,
                0);
    }
    if (v.threads > 0) {
      // The sharded path must actually have run, and its per-shard
      // score_evals split must account for every evaluation.
      EXPECT_GT(r.perf.parallel_passes, 0);
      ASSERT_FALSE(r.perf.shard_score_evals.empty());
      long shard_sum = 0;
      for (long e : r.perf.shard_score_evals) shard_sum += e;
      EXPECT_EQ(shard_sum, r.perf.score_evals);
    } else {
      // The serial-SIMD wave runs inline: parallel bookkeeping stays off.
      EXPECT_EQ(r.perf.parallel_passes, 0);
      EXPECT_TRUE(r.perf.shard_score_evals.empty());
    }
    if (!v.naive && v.simd == core::SimdMode::kOn) {
      // The batch kernel must actually have run (every batched lane lands
      // in exactly one of the two counters).
      EXPECT_GT(r.perf.simd_blocks * core::simd::lane_width() +
                    r.perf.scalar_tail_evals,
                0);
    } else {
      EXPECT_EQ(r.perf.simd_blocks, 0);
      EXPECT_EQ(r.perf.scalar_tail_evals, 0);
    }
    // Scan-shape counters are thread-count invariant (DESIGN.md §9: only
    // probes_issued and the probe-cache hit/miss split may shift, and
    // only under churn, when shards independently re-probe a drained
    // row). The oracle recomputes everything, so compare within a mode.
    // simd_blocks / scalar_tail_evals are deliberately NOT compared: how
    // cells group into vector blocks follows shard boundaries, so they
    // legitimately differ across thread counts (DESIGN.md §12).
    if (!v.naive && v.threads > 0) {
      const sim::SimResult serial = run(false, 0, v.simd);
      EXPECT_EQ(r.perf.score_evals, serial.perf.score_evals);
      EXPECT_EQ(r.perf.sticky_rejects, serial.perf.sticky_rejects);
      EXPECT_EQ(r.perf.probe_reuses, serial.perf.probe_reuses);
      EXPECT_EQ(r.perf.fit_index_skips, serial.perf.fit_index_skips);
      EXPECT_EQ(r.perf.row_skips, serial.perf.row_skips);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EquivalenceTest,
    ::testing::Values(
        // Baseline configs across workloads and seeds.
        Case{"SuiteUsageSeed1", Load::kSuite, 1, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle, {}},
        Case{"SuiteUsageSeed2", Load::kSuite, 2, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle, {}},
        Case{"SuiteUsageSeed3", Load::kSuite, 3, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle, {}},
        Case{"FacebookUsageSeed1", Load::kFacebook, 1, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle, {}},
        Case{"FacebookUsageSeed2", Load::kFacebook, 2, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle, {}},
        // The allocation tracker exercises a different availability path.
        Case{"SuiteAllocation", Load::kSuite, 1, false,
             sim::TrackerMode::kAllocation, sim::EstimationMode::kOracle, {}},
        // Churn: outages must invalidate probe memos and the fit index.
        Case{"SuiteChurn", Load::kSuite, 1, true, sim::TrackerMode::kUsage,
             sim::EstimationMode::kOracle, {}},
        Case{"FacebookChurnAllocation", Load::kFacebook, 1, true,
             sim::TrackerMode::kAllocation, sim::EstimationMode::kOracle, {}},
        // Estimation models: profiling flips estimates mid-run (the memo
        // must notice) and noise stresses tight-fit boundaries.
        Case{"SuiteLearnedProfile", Load::kSuite, 1, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kLearnedProfile,
             {}},
        Case{"FacebookLearnedProfile", Load::kFacebook, 1, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kLearnedProfile,
             {}},
        Case{"FacebookNoisy", Load::kFacebook, 1, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kNoisy, {}},
        // Tetris extension knobs change the greedy loop's control flow.
        Case{"SuiteStarvation", Load::kSuite, 1, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle,
             [] {
               core::TetrisConfig t;
               t.starvation_threshold = 30;
               return t;
             }()},
        Case{"SuiteLookahead", Load::kSuite, 1, false, sim::TrackerMode::kUsage,
             sim::EstimationMode::kOracle,
             [] {
               core::TetrisConfig t;
               t.future_lookahead = 15;
               return t;
             }()},
        Case{"SuitePreemption", Load::kSuite, 1, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle,
             [] {
               core::TetrisConfig t;
               t.preempt_for_fairness = true;
               return t;
             }()},
        Case{"FacebookQueueFairness", Load::kFacebook, 1, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle,
             [] {
               core::TetrisConfig t;
               t.fairness_over_queues = true;
               t.fairness_knob = 0.5;
               return t;
             }()},
        // Placement constraints (DESIGN.md §13): the admission predicate
        // must filter identically in the serial scan, the sharded scan,
        // the SIMD waves and the naive oracle — constrained schedules
        // stay bit-identical across the whole variant grid.
        Case{"ConstrainedSuite", Load::kConstrained, 1, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle, {}},
        Case{"ConstrainedSuiteSeed2", Load::kConstrained, 2, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle, {}},
        // Churn x constraints: outages shrink the feasible sets; probe
        // memos and sticky rejections must stay coherent with both.
        Case{"ConstrainedChurn", Load::kConstrained, 1, true,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle, {}},
        // Starvation reservations may only fence constraint-admissible
        // machines; lookahead claims only label-admissible ones.
        Case{"ConstrainedStarvation", Load::kConstrained, 1, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle,
             [] {
               core::TetrisConfig t;
               t.starvation_threshold = 30;
               return t;
             }()},
        Case{"ConstrainedLookahead", Load::kConstrained, 1, false,
             sim::TrackerMode::kUsage, sim::EstimationMode::kOracle,
             [] {
               core::TetrisConfig t;
               t.future_lookahead = 15;
               return t;
             }()}),
    case_name);

// Pass samples: backlog and placement counts are schedule-derived, so they
// must agree between the two paths as well (latency, of course, differs —
// that difference is the whole point of the optimization).
TEST(EquivalencePassSamples, BacklogAndPlacementsMatch) {
  const sim::Workload w = make_load(Load::kFacebook, 1);
  sim::SimConfig cfg;
  cfg.num_machines = 10;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.tracker = sim::TrackerMode::kUsage;
  cfg.collect_pass_samples = true;

  sim::SimConfig naive_cfg = cfg;
  naive_cfg.naive_scheduler_view = true;
  core::TetrisConfig naive_tcfg;
  naive_tcfg.naive_scoring = true;
  core::TetrisScheduler naive_sched(naive_tcfg);
  const sim::SimResult naive = sim::simulate(naive_cfg, w, naive_sched);

  core::TetrisScheduler opt_sched;
  const sim::SimResult opt = sim::simulate(cfg, w, opt_sched);

  ASSERT_GT(opt.pass_samples.size(), 0u);
  ASSERT_EQ(naive.pass_samples.size(), opt.pass_samples.size());
  for (std::size_t i = 0; i < naive.pass_samples.size(); ++i) {
    EXPECT_EQ(naive.pass_samples[i].time, opt.pass_samples[i].time) << i;
    EXPECT_EQ(naive.pass_samples[i].backlog, opt.pass_samples[i].backlog) << i;
    EXPECT_EQ(naive.pass_samples[i].placements, opt.pass_samples[i].placements)
        << i;
  }
}

// The caches must pay for themselves in hits, not just stay correct: on a
// recurring workload most probes and estimates should be served from memo.
TEST(EquivalenceCounters, CachesAreExercised) {
  const sim::Workload w = make_load(Load::kFacebook, 1);
  sim::SimConfig cfg;
  cfg.num_machines = 10;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.tracker = sim::TrackerMode::kUsage;
  core::TetrisScheduler sched;
  const sim::SimResult r = sim::simulate(cfg, w, sched);

  EXPECT_GT(r.perf.probe_cache_misses, 0);
  EXPECT_GT(r.perf.probe_reuses, 0);
  EXPECT_GT(r.perf.estimate_cache_misses, 0);
  EXPECT_GT(r.perf.estimate_cache_hits, 0);
  EXPECT_GT(r.perf.avail_recomputes, 0);
  EXPECT_GT(r.perf.avail_cache_hits, 0);
  EXPECT_GT(r.perf.score_evals, 0);
  EXPECT_GT(r.perf.probes_issued, 0);
  // The scheduler's lifetime counters mirror the context sink.
  EXPECT_EQ(sched.perf().score_evals, r.perf.score_evals);
  EXPECT_EQ(sched.perf().probes_issued, r.perf.probes_issued);
  EXPECT_EQ(sched.perf().sticky_rejects, r.perf.sticky_rejects);
  EXPECT_EQ(sched.perf().fit_index_skips, r.perf.fit_index_skips);
}

// Cross-pass probe replay: a task blocked on one exhausted dimension
// (disk) but fitting on cpu/mem is re-probed every heartbeat with an
// unchanged runnable set — exactly the case the probe memo exists for.
TEST(EquivalenceCounters, BlockedGroupServesProbesFromMemo) {
  sim::Workload w;
  {
    // Job 0: one task monopolizing the machine's disk bandwidth for 100s.
    sim::JobSpec hog;
    sim::StageSpec stage;
    sim::TaskSpec t;
    t.peak_cores = 0.5;
    t.peak_mem = 0.5 * kGB;
    t.max_io_bw = 200 * kMB;
    sim::InputSplit split;
    split.bytes = 20000.0 * kMB;  // 100s at the machine's 200 MB/s
    split.replicas = {0};
    t.inputs.push_back(split);
    stage.tasks.push_back(std::move(t));
    hog.stages.push_back(std::move(stage));
    w.jobs.push_back(std::move(hog));
  }
  {
    // Job 1: a reader needing disk that stays blocked while the hog runs.
    sim::JobSpec reader;
    sim::StageSpec stage;
    sim::TaskSpec t;
    t.peak_cores = 0.5;
    t.peak_mem = 0.5 * kGB;
    t.max_io_bw = 50 * kMB;
    sim::InputSplit split;
    split.bytes = 100.0 * kMB;
    split.replicas = {0};
    t.inputs.push_back(split);
    stage.tasks.push_back(std::move(t));
    reader.stages.push_back(std::move(stage));
    w.jobs.push_back(std::move(reader));
  }

  sim::SimConfig cfg;
  cfg.num_machines = 1;
  cfg.machine_capacity = Resources::full(8, 8 * kGB, 200 * kMB, 200 * kMB,
                                         125 * kMB, 125 * kMB);
  core::TetrisScheduler sched;
  const sim::SimResult r = sim::simulate(cfg, w, sched);
  ASSERT_TRUE(r.completed);
  // ~100 heartbeats re-probe the blocked reader; all but the first replay
  // from the memo (its runnable set never changes while it waits).
  EXPECT_GT(r.perf.probe_cache_hits, 50);
}

// ---------------------------------------------------------------------------
// Targeted invalidation probes: the two events that rotate every version
// stamp — a task FINISHING (frees capacity, advances stage.finished, may
// complete a template profile) and a task ARRIVING / becoming runnable
// (bumps runnable_version, creates groups). A stale cache here would stall
// the DAG or reuse pre-profile estimates; bit-identity plus exact timing
// pins both.

sim::TaskSpec small_task(double cores, double seconds) {
  sim::TaskSpec t;
  t.peak_cores = cores;
  t.peak_mem = 1 * kGB;
  t.cpu_cycles = cores * seconds;
  return t;
}

TEST(EquivalenceInvalidation, TaskFinishUnblocksDependentStages) {
  // One machine, one job, three chained single-task stages: every stage
  // becomes runnable only via a finish event. If finishing failed to
  // invalidate the availability / probe / estimate caches, the scheduler
  // would see a full machine or a drained group and the chain would stall.
  sim::Workload w;
  sim::JobSpec job;
  for (int s = 0; s < 3; ++s) {
    sim::StageSpec stage;
    stage.tasks.push_back(small_task(4, 10));
    if (s > 0) stage.deps.push_back(s - 1);
    job.stages.push_back(std::move(stage));
  }
  w.jobs.push_back(std::move(job));

  sim::SimConfig cfg;
  cfg.num_machines = 1;
  cfg.machine_capacity = workload::facebook_machine();

  core::TetrisScheduler opt_sched;
  const sim::SimResult opt = sim::simulate(cfg, w, opt_sched);
  ASSERT_TRUE(opt.completed);
  // Serial chain on an empty machine: each stage starts right after its
  // predecessor (within one heartbeat) and runs at natural duration.
  ASSERT_EQ(opt.tasks.size(), 3u);
  for (const auto& t : opt.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
    EXPECT_LE(t.start, 10.0 * t.stage + 1.5 * (t.stage + 1));
  }

  sim::SimConfig naive_cfg = cfg;
  naive_cfg.naive_scheduler_view = true;
  core::TetrisConfig naive_tcfg;
  naive_tcfg.naive_scoring = true;
  core::TetrisScheduler naive_sched(naive_tcfg);
  const sim::SimResult naive = sim::simulate(naive_cfg, w, naive_sched);
  expect_identical(naive, opt);
}

TEST(EquivalenceInvalidation, LateArrivalsEnterTheCachedView) {
  // A second job arrives mid-run: its groups must appear in the cached
  // view immediately (fresh runnable_version, dirty availability is not
  // even needed — but a stale group list would delay it past arrival).
  sim::Workload w;
  for (int j = 0; j < 2; ++j) {
    sim::JobSpec job;
    job.arrival = j * 40.0;
    sim::StageSpec stage;
    for (int i = 0; i < 3; ++i) stage.tasks.push_back(small_task(2, 15));
    job.stages.push_back(std::move(stage));
    w.jobs.push_back(std::move(job));
  }

  sim::SimConfig cfg;
  cfg.num_machines = 2;
  cfg.machine_capacity = workload::facebook_machine();

  core::TetrisScheduler opt_sched;
  const sim::SimResult opt = sim::simulate(cfg, w, opt_sched);
  ASSERT_TRUE(opt.completed);
  for (const auto& t : opt.tasks) {
    const double arrival = t.job * 40.0;
    EXPECT_GE(t.start, arrival);
    // An idle-enough cluster places a fresh arrival within ~a heartbeat.
    EXPECT_LE(t.start, arrival + 3.0) << "job " << t.job;
  }

  sim::SimConfig naive_cfg = cfg;
  naive_cfg.naive_scheduler_view = true;
  core::TetrisConfig naive_tcfg;
  naive_tcfg.naive_scoring = true;
  core::TetrisScheduler naive_sched(naive_tcfg);
  const sim::SimResult naive = sim::simulate(naive_cfg, w, naive_sched);
  expect_identical(naive, opt);
}

}  // namespace
}  // namespace tetris
