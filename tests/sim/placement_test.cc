#include "sim/placement.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace tetris::sim {
namespace {

TaskSpec io_task(double in_mb, double out_mb, double io_mb = 100) {
  TaskSpec t;
  t.peak_cores = 1;
  t.peak_mem = 1 * kGB;
  t.max_io_bw = io_mb * kMB;
  t.output_bytes = out_mb * kMB;
  if (in_mb > 0) {
    InputSplit split;
    split.bytes = in_mb * kMB;
    split.replicas = {0};
    t.inputs.push_back(split);
  }
  return t;
}

TEST(ResolveSplits, LocalWhenHostHoldsReplica) {
  std::vector<InputSplit> splits(1);
  splits[0].bytes = 10;
  splits[0].replicas = {3, 5, 7};
  const auto resolved = resolve_splits(splits, /*host=*/5, /*salt=*/1);
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].source, 5);
}

TEST(ResolveSplits, RemotePicksSomeReplicaDeterministically) {
  std::vector<InputSplit> splits(1);
  splits[0].bytes = 10;
  splits[0].replicas = {3, 5, 7};
  const auto a = resolve_splits(splits, /*host=*/1, /*salt=*/42);
  const auto b = resolve_splits(splits, /*host=*/1, /*salt=*/42);
  EXPECT_EQ(a[0].source, b[0].source);
  EXPECT_TRUE(a[0].source == 3 || a[0].source == 5 || a[0].source == 7);
}

TEST(ResolveSplits, GeneratedInputHasNoSource) {
  std::vector<InputSplit> splits(1);
  splits[0].bytes = 10;
  const auto resolved = resolve_splits(splits, 0, 1);
  EXPECT_EQ(resolved[0].source, kGeneratedSource);
}

TEST(ResolveSplits, ThrowsOnUnmaterializedShuffle) {
  std::vector<InputSplit> splits(1);
  splits[0].bytes = 10;
  splits[0].from_stage = 0;
  EXPECT_THROW(resolve_splits(splits, 0, 1), std::logic_error);
}

TEST(ComputePlacement, CpuLegBindsDuration) {
  TaskSpec t;
  t.peak_cores = 2;
  t.peak_mem = 1 * kGB;
  t.cpu_cycles = 40;  // 20s on 2 cores
  const auto pd = compute_placement(t, 0, 1);
  EXPECT_DOUBLE_EQ(pd.duration, 20);
  EXPECT_DOUBLE_EQ(pd.local[Resource::kCpu], 2);
  EXPECT_DOUBLE_EQ(pd.local[Resource::kMem], 1 * kGB);
  EXPECT_EQ(pd.local[Resource::kDiskRead], 0);
}

TEST(ComputePlacement, ReadLegBindsDurationAndSetsRate) {
  const TaskSpec t = io_task(/*in=*/1000, /*out=*/0, /*io=*/100);
  const auto pd = compute_placement(t, /*host=*/0, 1);  // local read
  EXPECT_DOUBLE_EQ(pd.duration, 10);
  EXPECT_NEAR(pd.local[Resource::kDiskRead], 100 * kMB, 1);
  EXPECT_EQ(pd.local[Resource::kNetIn], 0);
  EXPECT_TRUE(pd.remote.empty());
  EXPECT_DOUBLE_EQ(pd.local_bytes, 1000 * kMB);
}

TEST(ComputePlacement, RemoteReadChargesSourceAndHost) {
  const TaskSpec t = io_task(1000, 0, 100);
  const auto pd = compute_placement(t, /*host=*/9, 1);  // replica is on 0
  EXPECT_DOUBLE_EQ(pd.duration, 10);
  EXPECT_EQ(pd.local[Resource::kDiskRead], 0);
  EXPECT_NEAR(pd.local[Resource::kNetIn], 100 * kMB, 1);
  ASSERT_EQ(pd.remote.size(), 1u);
  EXPECT_EQ(pd.remote[0].machine, 0);
  EXPECT_NEAR(pd.remote[0].disk_read, 100 * kMB, 1);
  EXPECT_NEAR(pd.remote[0].net_out, 100 * kMB, 1);
  EXPECT_DOUBLE_EQ(pd.remote_bytes, 1000 * kMB);
}

TEST(ComputePlacement, WriteLegBindsDuration) {
  const TaskSpec t = io_task(0, 500, 50);
  const auto pd = compute_placement(t, 0, 1);
  EXPECT_DOUBLE_EQ(pd.duration, 10);
  EXPECT_NEAR(pd.local[Resource::kDiskWrite], 50 * kMB, 1);
}

TEST(ComputePlacement, ReadRateCapIsSharedAcrossStreams) {
  // 500 MB local + 500 MB remote with a 100 MB/s pipeline: 10s total, so
  // each stream demands 50 MB/s.
  TaskSpec t;
  t.peak_cores = 1;
  t.peak_mem = 1 * kGB;
  t.max_io_bw = 100 * kMB;
  InputSplit local;
  local.bytes = 500 * kMB;
  local.replicas = {0};
  InputSplit remote;
  remote.bytes = 500 * kMB;
  remote.replicas = {1};
  t.inputs = {local, remote};
  const auto pd = compute_placement(t, 0, 1);
  EXPECT_DOUBLE_EQ(pd.duration, 10);
  EXPECT_NEAR(pd.local[Resource::kDiskRead], 50 * kMB, 1);
  EXPECT_NEAR(pd.local[Resource::kNetIn], 50 * kMB, 1);
}

TEST(ComputePlacement, RemoteLegsAggregatePerSourceMachine) {
  TaskSpec t;
  t.peak_cores = 1;
  t.peak_mem = 1;
  t.max_io_bw = 100 * kMB;
  for (int i = 0; i < 3; ++i) {
    InputSplit s;
    s.bytes = 100 * kMB;
    s.replicas = {i % 2};  // machines 0, 1, 0
    t.inputs.push_back(s);
  }
  const auto pd = compute_placement(t, /*host=*/7, 1);
  ASSERT_EQ(pd.remote.size(), 2u);
  double total = 0;
  for (const auto& leg : pd.remote) total += leg.disk_read;
  EXPECT_NEAR(total * pd.duration, 300 * kMB, 1e3);
}

TEST(ComputePlacement, MinimumDurationFloor) {
  TaskSpec t;
  t.peak_cores = 1;
  t.peak_mem = 1;
  t.cpu_cycles = 1e-9;
  const auto pd = compute_placement(t, 0, 1);
  EXPECT_DOUBLE_EQ(pd.duration, kMinTaskDuration);
}

TEST(ComputePlacement, DemandRatesTimesDurationEqualWork) {
  // Conservation: rate x duration recovers the byte counts, whatever leg
  // binds.
  const TaskSpec t = io_task(800, 300, 60);
  const auto pd = compute_placement(t, 0, 1);
  EXPECT_NEAR(pd.local[Resource::kDiskRead] * pd.duration, 800 * kMB, 1e3);
  EXPECT_NEAR(pd.local[Resource::kDiskWrite] * pd.duration, 300 * kMB, 1e3);
}

TEST(ComputeLocalPlacement, TreatsEveryByteAsLocal) {
  TaskSpec t = io_task(1000, 0, 100);
  t.inputs[0].replicas = {5};  // not the probe host; irrelevant here
  const auto pd = compute_local_placement(t);
  EXPECT_DOUBLE_EQ(pd.duration, 10);
  EXPECT_NEAR(pd.local[Resource::kDiskRead], 100 * kMB, 1);
  EXPECT_EQ(pd.local[Resource::kNetIn], 0);
}

TEST(ComputeLocalPlacement, CountsShuffleBytesSkipsGenerated) {
  TaskSpec t;
  t.peak_cores = 1;
  t.peak_mem = 1;
  t.max_io_bw = 100 * kMB;
  InputSplit shuffle;
  shuffle.bytes = 500 * kMB;
  shuffle.from_stage = 0;
  InputSplit generated;
  generated.bytes = 500 * kMB;  // no replicas, no from_stage
  t.inputs = {shuffle, generated};
  const auto pd = compute_local_placement(t);
  EXPECT_DOUBLE_EQ(pd.duration, 5);  // only the shuffle bytes are read
}

TEST(LocalFraction, MixesLocalRemoteAndGenerated) {
  TaskSpec t;
  InputSplit local;
  local.bytes = 300;
  local.replicas = {2};
  InputSplit remote;
  remote.bytes = 100;
  remote.replicas = {9};
  InputSplit generated;
  generated.bytes = 100;  // generated counts as local
  t.inputs = {local, remote, generated};
  EXPECT_DOUBLE_EQ(local_fraction(t, 2), 0.8);
  EXPECT_DOUBLE_EQ(local_fraction(t, 9), 0.4);
  EXPECT_DOUBLE_EQ(local_fraction(t, 4), 0.2);
}

TEST(LocalFraction, NoInputIsFullyLocal) {
  TaskSpec t;
  EXPECT_DOUBLE_EQ(local_fraction(t, 0), 1.0);
}

// Property sweep across io bandwidths: duration equals the max over legs.
class PlacementLegTest : public ::testing::TestWithParam<double> {};

TEST_P(PlacementLegTest, DurationIsMaxOverLegs) {
  const double io = GetParam();
  TaskSpec t = io_task(/*in=*/600, /*out=*/200, io);
  t.cpu_cycles = 12;  // 12s on 1 core
  const auto pd = compute_placement(t, 0, 1);
  const double expect = std::max(
      {kMinTaskDuration, 12.0, 600.0 / io, 200.0 / io});
  EXPECT_NEAR(pd.duration, expect, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(IoBandwidths, PlacementLegTest,
                         ::testing::Values(10.0, 25.0, 50.0, 100.0, 400.0));

}  // namespace
}  // namespace tetris::sim
