// Machine churn: scripted outages kill and requeue tasks, down machines
// refuse placements, replica loss blocks tasks until recovery, the churn
// counters reconcile with the injected events, and runs with identical
// seed + churn config are bit-for-bit deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/tetris_scheduler.h"
#include "sim/simulator.h"
#include "util/units.h"
#include "workload/facebook.h"
#include "workload/profiles.h"

namespace tetris::sim {
namespace {

// Greedy test scheduler: places every runnable task on the first machine
// where all dimensions fit (same as the simulator tests).
class GreedyFitScheduler final : public Scheduler {
 public:
  std::string name() const override { return "greedy-fit"; }
  void schedule(SchedulerContext& ctx) override {
    auto groups = ctx.runnable_groups();
    for (auto& g : groups) {
      while (g.runnable > 0) {
        bool placed = false;
        for (int m = 0; m < ctx.num_machines() && !placed; ++m) {
          if (!ctx.machine_up(m)) continue;
          Probe p = ctx.probe(g.ref, m);
          if (!p.valid) return;
          if (!p.demand.fits_within(ctx.available(m))) continue;
          if (ctx.place(p)) {
            g.runnable--;
            placed = true;
          }
        }
        if (!placed) break;
      }
    }
  }
};

TaskSpec cpu_task(double cores, double mem_gb, double seconds) {
  TaskSpec t;
  t.peak_cores = cores;
  t.peak_mem = mem_gb * kGB;
  t.cpu_cycles = cores * seconds;
  return t;
}

SimConfig small_cluster(int machines) {
  SimConfig cfg;
  cfg.num_machines = machines;
  cfg.machine_capacity =
      Resources::full(4, 8 * kGB, 100 * kMB, 100 * kMB, 125 * kMB, 125 * kMB);
  cfg.heartbeat_period = 0.5;
  return cfg;
}

TEST(Churn, ScriptedOutageKillsRequeuesAndAccounts) {
  // One machine, one 20s task. The machine dies at t=5 (5s of work lost,
  // attempt requeued) and recovers at t=8; the retry runs 8..28.
  Workload w;
  JobSpec job;
  job.stages.push_back({"s", {cpu_task(2, 1, 20)}, {}});
  w.jobs.push_back(job);

  SimConfig cfg = small_cluster(1);
  cfg.churn.scripted = {{0, 5.0, 8.0}};

  GreedyFitScheduler sched;
  const SimResult r = simulate(cfg, w, sched);

  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].attempts, 2);
  EXPECT_NEAR(r.tasks[0].start, 8.0, 0.6);
  EXPECT_NEAR(r.tasks[0].finish, 28.0, 0.6);
  EXPECT_EQ(r.churn.machines_failed, 1);
  EXPECT_EQ(r.churn.machines_recovered, 1);
  EXPECT_EQ(r.churn.task_attempts_lost, 1);
  EXPECT_NEAR(r.churn.work_lost_seconds, 5.0, 0.6);
  // 3s of the ~28s run with the only machine down.
  EXPECT_LT(r.churn.effective_capacity, 1.0);
  EXPECT_NEAR(r.churn.effective_capacity, 1.0 - 3.0 / 28.0, 0.05);
}

TEST(Churn, NoPlacementOnDownMachineDuringOutage) {
  // Machine 1 is down for [0, 30): every attempt overlapping that window
  // must run on machine 0. Machine-filling 4-core tasks force spillover
  // to machine 1 as soon as it returns.
  Workload w;
  JobSpec job;
  StageSpec s;
  s.name = "s";
  for (int i = 0; i < 8; ++i) s.tasks.push_back(cpu_task(4, 1, 10));
  job.stages.push_back(s);
  w.jobs.push_back(job);

  SimConfig cfg = small_cluster(2);
  cfg.churn.scripted = {{1, 0.0, 30.0}};

  GreedyFitScheduler sched;
  const SimResult r = simulate(cfg, w, sched);

  ASSERT_TRUE(r.completed);
  bool used_machine_1 = false;
  for (const auto& t : r.tasks) {
    if (t.host == 1) {
      used_machine_1 = true;
      // Successful attempts never overlap the outage window on host 1
      // (an attempt caught by the failure would have been requeued).
      EXPECT_GE(t.start, 30.0 - 1e-9);
    }
  }
  EXPECT_TRUE(used_machine_1);
  EXPECT_EQ(r.churn.machines_failed, 1);
  EXPECT_EQ(r.churn.machines_recovered, 1);
  // Nothing ran on machine 1 before the failure hit at t=0.
  EXPECT_EQ(r.churn.task_attempts_lost, 0);
  EXPECT_EQ(r.churn.work_lost_seconds, 0.0);
}

TEST(Churn, TaskBlocksUntilSoleReplicaRecovers) {
  // The task's only input replica lives on machine 1, which is down until
  // t=15. Machine 0 is idle the whole time, but the task cannot start
  // anywhere until the replica host returns.
  Workload w;
  JobSpec job;
  TaskSpec t = cpu_task(2, 1, 5);
  InputSplit split;
  split.bytes = 10 * kMB;
  split.replicas = {1};
  t.inputs.push_back(split);
  job.stages.push_back({"s", {t}, {}});
  w.jobs.push_back(job);

  SimConfig cfg = small_cluster(2);
  cfg.churn.scripted = {{1, 0.0, 15.0}};

  GreedyFitScheduler sched;
  const SimResult r = simulate(cfg, w, sched);

  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_GE(r.tasks[0].start, 15.0 - 1e-9);
  // Recovery unblocks it promptly (the up-event triggers a pass).
  EXPECT_LT(r.tasks[0].start, 16.0);
}

TEST(Churn, RemoteReaderFailsOverToSurvivingReplica) {
  // The task runs on machine 0 streaming a 500 MB split whose replicas
  // live on machines 1 and 2. Machine 1 dies mid-read: whichever replica
  // the read resolved to, the attempt must survive — either untouched
  // (it was reading from 2) or failed over to the surviving replica with
  // its progress intact. A kill-and-requeue would show attempts == 2.
  Workload w;
  JobSpec job;
  TaskSpec t = cpu_task(1, 1, 0.5);
  InputSplit split;
  split.bytes = 500 * kMB;
  split.replicas = {1, 2};
  t.inputs.push_back(split);
  job.stages.push_back({"s", {t}, {}});
  w.jobs.push_back(job);

  SimConfig cfg = small_cluster(3);
  cfg.churn.scripted = {{1, 2.0, 100.0}};

  GreedyFitScheduler sched;
  const SimResult r = simulate(cfg, w, sched);

  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].attempts, 1);
  EXPECT_EQ(r.tasks[0].host, 0);
  // ~5s of reading at 100 MB/s; far less than waiting for the recovery
  // at t=100 or redoing the read from scratch after t=2.
  EXPECT_LT(r.tasks[0].finish, 7.5);
  EXPECT_EQ(r.churn.task_attempts_lost, 0);
  EXPECT_LE(r.churn.read_failovers, 1);
}

TEST(Churn, AttemptAccountingReconcilesUnderRandomChurn) {
  // Every kill increments exactly one task's attempt counter: the sum of
  // extra attempts over all tasks equals task_attempts_lost.
  workload::FacebookConfig wcfg;
  wcfg.num_jobs = 12;
  wcfg.num_machines = 4;
  wcfg.task_scale = 0.3;
  wcfg.arrival_window = 150;
  wcfg.seed = 7;
  const Workload w = workload::make_facebook_workload(wcfg);

  SimConfig cfg = small_cluster(4);
  cfg.machine_capacity = workload::facebook_machine();
  cfg.seed = 7;
  cfg.churn.mttf = 400;
  cfg.churn.mttr = 40;

  GreedyFitScheduler sched;
  const SimResult r = simulate(cfg, w, sched);

  ASSERT_TRUE(r.completed);
  long extra_attempts = 0;
  for (const auto& t : r.tasks) extra_attempts += t.attempts - 1;
  EXPECT_EQ(extra_attempts, r.churn.task_attempts_lost);
  EXPECT_GE(r.churn.machines_failed, r.churn.machines_recovered);
  EXPECT_GT(r.churn.machines_failed, 0);
  EXPECT_LE(r.churn.effective_capacity, 1.0 + 1e-9);
}

TEST(Churn, TetrisStillNeverOverAllocatesUnderChurn) {
  // CPU-only tasks (no inputs, so no read failover can blur durations):
  // under Tetris with oracle estimates every surviving attempt must run
  // at its natural duration even while machines come and go — churn must
  // not trick the packer into over-allocating the smaller cluster.
  Workload w;
  for (int j = 0; j < 3; ++j) {
    JobSpec job;
    StageSpec s;
    s.name = "s";
    for (int i = 0; i < 4; ++i) s.tasks.push_back(cpu_task(2, 1, 20));
    job.stages.push_back(s);
    w.jobs.push_back(job);
  }

  SimConfig cfg = small_cluster(2);
  cfg.tracker = TrackerMode::kUsage;
  cfg.churn.scripted = {{0, 10.0, 25.0}, {1, 30.0, 45.0}};

  core::TetrisScheduler tetris;
  const SimResult r = simulate(cfg, w, tetris);

  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.churn.task_attempts_lost, 0);
  bool retried = false;
  for (const auto& t : r.tasks) {
    ASSERT_NEAR(t.duration(), t.natural_duration, 1e-6)
        << "job " << t.job << " index " << t.index;
    if (t.attempts > 1) retried = true;
  }
  EXPECT_TRUE(retried);
}

TEST(Churn, IdenticalSeedAndChurnGiveIdenticalResults) {
  workload::FacebookConfig wcfg;
  wcfg.num_jobs = 10;
  wcfg.num_machines = 4;
  wcfg.task_scale = 0.3;
  wcfg.arrival_window = 120;
  wcfg.seed = 3;
  const Workload w = workload::make_facebook_workload(wcfg);

  SimConfig cfg = small_cluster(4);
  cfg.machine_capacity = workload::facebook_machine();
  cfg.seed = 3;
  cfg.churn.mttf = 300;
  cfg.churn.mttr = 30;
  cfg.tracker = TrackerMode::kUsage;

  core::TetrisScheduler s1, s2;
  const SimResult a = simulate(cfg, w, s1);
  const SimResult b = simulate(cfg, w, s2);

  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].host, b.tasks[i].host) << i;
    EXPECT_EQ(a.tasks[i].start, b.tasks[i].start) << i;
    EXPECT_EQ(a.tasks[i].finish, b.tasks[i].finish) << i;
    EXPECT_EQ(a.tasks[i].attempts, b.tasks[i].attempts) << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.churn.machines_failed, b.churn.machines_failed);
  EXPECT_EQ(a.churn.task_attempts_lost, b.churn.task_attempts_lost);
  EXPECT_EQ(a.churn.work_lost_seconds, b.churn.work_lost_seconds);
  EXPECT_EQ(a.churn.effective_capacity, b.churn.effective_capacity);
}

TEST(Churn, DisabledChurnLeavesRunsByteIdenticalToSeed) {
  // churn.mttf = 0 must not fork the rng: a churn-capable build replays
  // the exact schedule a churn-free build produced.
  workload::FacebookConfig wcfg;
  wcfg.num_jobs = 8;
  wcfg.num_machines = 3;
  wcfg.task_scale = 0.3;
  wcfg.arrival_window = 100;
  wcfg.seed = 5;
  const Workload w = workload::make_facebook_workload(wcfg);

  SimConfig cfg = small_cluster(3);
  cfg.machine_capacity = workload::facebook_machine();
  cfg.seed = 5;

  GreedyFitScheduler s1, s2;
  const SimResult a = simulate(cfg, w, s1);
  const SimResult b = simulate(cfg, w, s2);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.churn.machines_failed, 0);
  EXPECT_EQ(a.churn.effective_capacity, 1.0);
}

TEST(Churn, ConfigValidationRejectsContradictionsAndBadEvents) {
  Workload w;
  JobSpec job;
  job.stages.push_back({"s", {cpu_task(1, 1, 1)}, {}});
  w.jobs.push_back(job);
  GreedyFitScheduler sched;

  // num_machines contradicting machine_capacities is an error, not a
  // silent pick-one.
  SimConfig bad = small_cluster(3);
  bad.machine_capacities = {bad.machine_capacity, bad.machine_capacity};
  EXPECT_THROW(simulate(bad, w, sched), std::invalid_argument);

  // Explicit num_machines that agrees with the list is fine.
  SimConfig ok = small_cluster(2);
  ok.machine_capacities = {ok.machine_capacity, ok.machine_capacity};
  EXPECT_TRUE(simulate(ok, w, sched).completed);

  // Churn parameter validation: repair time required with a failure rate;
  // scripted events must name a real machine and have up_at > down_at.
  SimConfig c1 = small_cluster(2);
  c1.churn.mttf = 100;  // mttr left 0
  EXPECT_THROW(simulate(c1, w, sched), std::invalid_argument);

  SimConfig c2 = small_cluster(2);
  c2.churn.scripted = {{5, 1.0, 2.0}};  // machine out of range
  EXPECT_THROW(simulate(c2, w, sched), std::invalid_argument);

  SimConfig c3 = small_cluster(2);
  c3.churn.scripted = {{0, 2.0, 2.0}};  // empty window
  EXPECT_THROW(simulate(c3, w, sched), std::invalid_argument);
}

// ---- Constraint x churn interactions (DESIGN.md §13) ----

TEST(Churn, SoleFeasibleClassOutageBlocksRatherThanMisplaces) {
  // Machine 2 is the only "gpu" machine and is down for [0, 20). The
  // gpu-requiring task must wait for it — never spill onto the idle
  // plain machines — while an unconstrained job runs immediately.
  Workload w;
  JobSpec gpu_job;
  gpu_job.name = "gpu-job";
  StageSpec gs;
  gs.name = "s";
  gs.tasks = {cpu_task(2, 1, 5)};
  gs.constraint.require_labels = {"gpu"};
  gpu_job.stages.push_back(gs);
  w.jobs.push_back(gpu_job);

  JobSpec plain_job;
  plain_job.name = "plain-job";
  plain_job.stages.push_back({"s", {cpu_task(2, 1, 5)}, {}});
  w.jobs.push_back(plain_job);

  SimConfig cfg = small_cluster(3);
  cfg.machine_labels = {{"cpu"}, {"cpu"}, {"gpu"}};
  cfg.churn.scripted = {{2, 0.0, 20.0}};

  GreedyFitScheduler sched;
  const SimResult r = simulate(cfg, w, sched);

  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.infeasible.empty());  // blocked is not infeasible
  ASSERT_EQ(r.tasks.size(), 2u);
  for (const auto& t : r.tasks) {
    if (t.job == 0) {
      // The constrained task waited out the outage on its sole class.
      EXPECT_EQ(t.host, 2);
      EXPECT_GE(t.start, 20.0 - 1e-9);
    } else {
      // The unconstrained one did not: it ran during the outage.
      EXPECT_LT(t.host, 2);
      EXPECT_LT(t.start, 20.0);
    }
  }
}

TEST(Churn, RequeueAfterHostFailureGoesOnlyToFeasibleMachines) {
  // Two gpu machines and one plain. The gpu task starts on machine 0
  // (first fit), which dies mid-run; the requeued attempt must land on
  // the other gpu machine, never the idle plain one.
  Workload w;
  JobSpec job;
  StageSpec s;
  s.name = "s";
  s.tasks = {cpu_task(2, 1, 20)};
  s.constraint.require_labels = {"gpu"};
  job.stages.push_back(s);
  w.jobs.push_back(job);

  SimConfig cfg = small_cluster(3);
  cfg.machine_labels = {{"gpu"}, {"gpu"}, {"plain"}};
  cfg.churn.scripted = {{0, 5.0, 60.0}};

  GreedyFitScheduler sched;
  const SimResult r = simulate(cfg, w, sched);

  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].attempts, 2);
  EXPECT_EQ(r.tasks[0].host, 1);
  EXPECT_EQ(r.churn.task_attempts_lost, 1);
}

TEST(Churn, SoleFeasibleMachinePermanentOutageTimesOutAsIncomplete) {
  // The only feasible machine never comes back within max_time. The
  // constraint is *statically* satisfiable (the machine exists), so this
  // is not an infeasibility report — the run must end incomplete at
  // max_time with the task never placed, and never misplaced.
  Workload w;
  JobSpec job;
  StageSpec s;
  s.name = "s";
  s.tasks = {cpu_task(2, 1, 5)};
  s.constraint.require_labels = {"gpu"};
  job.stages.push_back(s);
  w.jobs.push_back(job);

  SimConfig cfg = small_cluster(2);
  cfg.machine_labels = {{"cpu"}, {"gpu"}};
  cfg.max_time = 100.0;
  cfg.churn.scripted = {{1, 0.0, 1000.0}};

  GreedyFitScheduler sched;
  const SimResult r = simulate(cfg, w, sched);

  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.infeasible.empty());
  EXPECT_TRUE(r.tasks.empty());  // never ran anywhere
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_EQ(r.jobs[0].finish, -1);
}

}  // namespace
}  // namespace tetris::sim
