#include "sim/spec.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/tetris_scheduler.h"
#include "sim/config.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace tetris::sim {
namespace {

TaskSpec ok_task() {
  TaskSpec t;
  t.peak_cores = 1;
  t.peak_mem = 1 * kGB;
  t.cpu_cycles = 10;
  return t;
}

JobSpec two_stage_job() {
  JobSpec job;
  job.name = "j";
  StageSpec map;
  map.tasks = {ok_task(), ok_task()};
  StageSpec reduce;
  reduce.deps = {0};
  TaskSpec r = ok_task();
  InputSplit split;
  split.bytes = 100;
  split.from_stage = 0;
  r.inputs.push_back(split);
  reduce.tasks = {r};
  job.stages = {map, reduce};
  return job;
}

TEST(SpecValidate, AcceptsWellFormedJob) {
  EXPECT_EQ(validate(two_stage_job()), "");
}

TEST(SpecValidate, RejectsJobWithoutStages) {
  JobSpec job;
  job.name = "empty";
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsEmptyStage) {
  JobSpec job;
  job.stages.push_back({});
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsNegativeArrival) {
  JobSpec job = two_stage_job();
  job.arrival = -1;
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsOutOfRangeDep) {
  JobSpec job = two_stage_job();
  job.stages[1].deps = {7};
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsSelfDep) {
  JobSpec job = two_stage_job();
  job.stages[1].deps = {1};
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsDependencyCycle) {
  JobSpec job = two_stage_job();
  // 0 -> 1 already; add 1 -> 0 to close the cycle.
  job.stages[0].deps = {1};
  // Remove the shuffle split so the only problem is the cycle.
  const auto msg = validate(job);
  EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
}

TEST(SpecValidate, AcceptsDiamondDag) {
  JobSpec job;
  StageSpec a, b, c, d;
  a.tasks = b.tasks = c.tasks = d.tasks = {ok_task()};
  b.deps = {0};
  c.deps = {0};
  d.deps = {1, 2};
  job.stages = {a, b, c, d};
  EXPECT_EQ(validate(job), "");
}

TEST(SpecValidate, RejectsNegativeWork) {
  JobSpec job = two_stage_job();
  job.stages[0].tasks[0].cpu_cycles = -1;
  EXPECT_NE(validate(job), "");
  job = two_stage_job();
  job.stages[0].tasks[0].output_bytes = -5;
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsNegativeDemands) {
  JobSpec job = two_stage_job();
  job.stages[0].tasks[0].peak_cores = -1;
  EXPECT_NE(validate(job), "");
  job = two_stage_job();
  job.stages[0].tasks[0].max_io_bw = 0;
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, AllowsZeroCoresWithoutCompute) {
  JobSpec job = two_stage_job();
  job.stages[1].tasks[0].peak_cores = 0;
  job.stages[1].tasks[0].cpu_cycles = 0;
  EXPECT_EQ(validate(job), "");
}

TEST(SpecValidate, RejectsComputeWithoutCores) {
  JobSpec job = two_stage_job();
  job.stages[0].tasks[0].peak_cores = 0;  // but cpu_cycles = 10
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsShuffleFromNonDependency) {
  JobSpec job = two_stage_job();
  // Stage 1 reads stage 0 legitimately; make a stage 2 that reads stage 0
  // without depending on it.
  StageSpec bad;
  TaskSpec t = ok_task();
  InputSplit split;
  split.bytes = 10;
  split.from_stage = 0;
  t.inputs.push_back(split);
  bad.tasks = {t};
  bad.deps = {1};
  job.stages.push_back(bad);
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsNegativeSplitBytes) {
  JobSpec job = two_stage_job();
  InputSplit split;
  split.bytes = -1;
  job.stages[0].tasks[0].inputs.push_back(split);
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, WorkloadAggregatesJobErrors) {
  Workload w;
  w.jobs.push_back(two_stage_job());
  EXPECT_EQ(validate(w), "");
  JobSpec bad;
  w.jobs.push_back(bad);
  EXPECT_NE(validate(w), "");
}

TEST(Spec, TotalTasksCountsAllStages) {
  Workload w;
  w.jobs.push_back(two_stage_job());
  w.jobs.push_back(two_stage_job());
  EXPECT_EQ(w.total_tasks(), 6u);
  EXPECT_EQ(Workload{}.total_tasks(), 0u);
}

// ---- Placement constraints (DESIGN.md §13) ----

TEST(SpecValidate, AcceptsWellFormedConstraints) {
  JobSpec job = two_stage_job();
  job.stages[0].constraint.require_labels = {"gpu"};
  job.stages[1].constraint.forbid_labels = {"gpu"};
  job.stages[1].constraint.anti_affinity = true;
  job.stages[1].constraint.same_rack_as_input = true;
  EXPECT_EQ(validate(job), "");
  EXPECT_EQ(validate(job, {"gpu", "highmem"}), "");
}

TEST(SpecValidate, RejectsEmptyLabelName) {
  JobSpec job = two_stage_job();
  job.stages[0].constraint.require_labels = {""};
  EXPECT_NE(validate(job), "");
  JobSpec job2 = two_stage_job();
  job2.stages[0].constraint.forbid_labels = {""};
  EXPECT_NE(validate(job2), "");
}

TEST(SpecValidate, RejectsLabelBothRequiredAndForbidden) {
  JobSpec job = two_stage_job();
  job.stages[0].constraint.require_labels = {"gpu"};
  job.stages[0].constraint.forbid_labels = {"gpu"};
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsRequiredLabelNoMachineDeclares) {
  // Fail-fast, like the num_machines vs machine_capacities contradiction:
  // requiring a class the cluster does not have is a config bug, not a
  // quietly-infeasible stage.
  JobSpec job = two_stage_job();
  job.stages[0].constraint.require_labels = {"tpu"};
  // Without a declared-label list the check cannot run.
  EXPECT_EQ(validate(job), "");
  const auto msg = validate(job, {"gpu", "highmem"});
  EXPECT_NE(msg, "");
  EXPECT_NE(msg.find("tpu"), std::string::npos);
  EXPECT_NE(msg.find("declares"), std::string::npos);
  // Declared on some machine: fine. Forbidding an undeclared label is
  // rejected too — a forbid that can never match is a typo, not intent.
  EXPECT_EQ(validate(job, {"gpu", "tpu"}), "");
  JobSpec job2 = two_stage_job();
  job2.stages[0].constraint.forbid_labels = {"tpu"};
  EXPECT_NE(validate(job2, {"gpu"}), "");
  EXPECT_EQ(validate(job2, {"gpu", "tpu"}), "");
}

TEST(SpecValidate, WorkloadOverloadChecksDeclaredLabels) {
  Workload w;
  w.jobs.push_back(two_stage_job());
  w.jobs[0].stages[0].constraint.require_labels = {"gpu"};
  EXPECT_EQ(validate(w, {"gpu"}), "");
  EXPECT_NE(validate(w, {"highmem"}), "");
  EXPECT_NE(validate(w, {}), "");
}

// Cell-partition validation (DESIGN.md §14): SimConfig::cells must tile
// [0, num_machines) exactly with rack-aligned, non-empty slices — checked
// fail-fast at simulation start, like machine_labels.
SimConfig cluster_of(int machines, int per_rack = 0) {
  SimConfig cfg;
  cfg.num_machines = machines;
  cfg.machines_per_rack = per_rack;
  return cfg;
}

TEST(ValidateCells, AcceptsEmptyAndExactPartitions) {
  EXPECT_EQ(validate_cells(cluster_of(8)), "");  // unpartitioned cluster

  SimConfig cfg = cluster_of(8);
  cfg.cells = {{0, 8}};
  EXPECT_EQ(validate_cells(cfg), "");
  cfg.cells = {{0, 3}, {3, 8}};
  EXPECT_EQ(validate_cells(cfg), "");
  cfg.cells = {{0, 2}, {2, 4}, {4, 6}, {6, 8}};
  EXPECT_EQ(validate_cells(cfg), "");
}

TEST(ValidateCells, RejectsOutOfRangeEmptyOverlapGapAndShortCoverage) {
  SimConfig cfg = cluster_of(8);
  cfg.cells = {{0, 9}};
  EXPECT_NE(validate_cells(cfg), "") << "end past the cluster";
  cfg.cells = {{-1, 4}, {4, 8}};
  EXPECT_NE(validate_cells(cfg), "") << "negative begin";
  cfg.cells = {{0, 4}, {4, 4}};
  EXPECT_NE(validate_cells(cfg), "") << "empty cell";
  cfg.cells = {{0, 5}, {4, 8}};
  EXPECT_NE(validate_cells(cfg), "") << "overlap";
  cfg.cells = {{0, 3}, {4, 8}};
  EXPECT_NE(validate_cells(cfg), "") << "skipped machine 3";
  cfg.cells = {{0, 4}};
  EXPECT_NE(validate_cells(cfg), "") << "machines 4..7 unowned";
}

TEST(ValidateCells, SimulateFailsFastOnBadPartition) {
  SimConfig cfg = cluster_of(4);
  cfg.cells = {{0, 2}, {3, 4}};  // machine 2 unowned
  Workload w;
  w.jobs.push_back(two_stage_job());
  core::TetrisScheduler sched((core::TetrisConfig()));
  EXPECT_THROW(simulate(cfg, w, sched), std::invalid_argument);
  cfg.cells = {{0, 2}, {2, 4}};
  core::TetrisScheduler sched2((core::TetrisConfig()));
  EXPECT_NO_THROW(simulate(cfg, w, sched2));
}

TEST(ValidateCells, RejectsRackSplittingCells) {
  SimConfig cfg = cluster_of(8, /*per_rack=*/4);
  cfg.cells = {{0, 4}, {4, 8}};
  EXPECT_EQ(validate_cells(cfg), "") << "rack-aligned split must pass";
  cfg.cells = {{0, 6}, {6, 8}};
  EXPECT_NE(validate_cells(cfg), "") << "cell boundary inside a rack";
  // Rack modeling off: any boundary is fine.
  SimConfig flat = cluster_of(8, /*per_rack=*/0);
  flat.cells = {{0, 6}, {6, 8}};
  EXPECT_EQ(validate_cells(flat), "");
}

}  // namespace
}  // namespace tetris::sim
