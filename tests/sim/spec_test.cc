#include "sim/spec.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace tetris::sim {
namespace {

TaskSpec ok_task() {
  TaskSpec t;
  t.peak_cores = 1;
  t.peak_mem = 1 * kGB;
  t.cpu_cycles = 10;
  return t;
}

JobSpec two_stage_job() {
  JobSpec job;
  job.name = "j";
  StageSpec map;
  map.tasks = {ok_task(), ok_task()};
  StageSpec reduce;
  reduce.deps = {0};
  TaskSpec r = ok_task();
  InputSplit split;
  split.bytes = 100;
  split.from_stage = 0;
  r.inputs.push_back(split);
  reduce.tasks = {r};
  job.stages = {map, reduce};
  return job;
}

TEST(SpecValidate, AcceptsWellFormedJob) {
  EXPECT_EQ(validate(two_stage_job()), "");
}

TEST(SpecValidate, RejectsJobWithoutStages) {
  JobSpec job;
  job.name = "empty";
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsEmptyStage) {
  JobSpec job;
  job.stages.push_back({});
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsNegativeArrival) {
  JobSpec job = two_stage_job();
  job.arrival = -1;
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsOutOfRangeDep) {
  JobSpec job = two_stage_job();
  job.stages[1].deps = {7};
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsSelfDep) {
  JobSpec job = two_stage_job();
  job.stages[1].deps = {1};
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsDependencyCycle) {
  JobSpec job = two_stage_job();
  // 0 -> 1 already; add 1 -> 0 to close the cycle.
  job.stages[0].deps = {1};
  // Remove the shuffle split so the only problem is the cycle.
  const auto msg = validate(job);
  EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
}

TEST(SpecValidate, AcceptsDiamondDag) {
  JobSpec job;
  StageSpec a, b, c, d;
  a.tasks = b.tasks = c.tasks = d.tasks = {ok_task()};
  b.deps = {0};
  c.deps = {0};
  d.deps = {1, 2};
  job.stages = {a, b, c, d};
  EXPECT_EQ(validate(job), "");
}

TEST(SpecValidate, RejectsNegativeWork) {
  JobSpec job = two_stage_job();
  job.stages[0].tasks[0].cpu_cycles = -1;
  EXPECT_NE(validate(job), "");
  job = two_stage_job();
  job.stages[0].tasks[0].output_bytes = -5;
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsNegativeDemands) {
  JobSpec job = two_stage_job();
  job.stages[0].tasks[0].peak_cores = -1;
  EXPECT_NE(validate(job), "");
  job = two_stage_job();
  job.stages[0].tasks[0].max_io_bw = 0;
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, AllowsZeroCoresWithoutCompute) {
  JobSpec job = two_stage_job();
  job.stages[1].tasks[0].peak_cores = 0;
  job.stages[1].tasks[0].cpu_cycles = 0;
  EXPECT_EQ(validate(job), "");
}

TEST(SpecValidate, RejectsComputeWithoutCores) {
  JobSpec job = two_stage_job();
  job.stages[0].tasks[0].peak_cores = 0;  // but cpu_cycles = 10
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsShuffleFromNonDependency) {
  JobSpec job = two_stage_job();
  // Stage 1 reads stage 0 legitimately; make a stage 2 that reads stage 0
  // without depending on it.
  StageSpec bad;
  TaskSpec t = ok_task();
  InputSplit split;
  split.bytes = 10;
  split.from_stage = 0;
  t.inputs.push_back(split);
  bad.tasks = {t};
  bad.deps = {1};
  job.stages.push_back(bad);
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsNegativeSplitBytes) {
  JobSpec job = two_stage_job();
  InputSplit split;
  split.bytes = -1;
  job.stages[0].tasks[0].inputs.push_back(split);
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, WorkloadAggregatesJobErrors) {
  Workload w;
  w.jobs.push_back(two_stage_job());
  EXPECT_EQ(validate(w), "");
  JobSpec bad;
  w.jobs.push_back(bad);
  EXPECT_NE(validate(w), "");
}

TEST(Spec, TotalTasksCountsAllStages) {
  Workload w;
  w.jobs.push_back(two_stage_job());
  w.jobs.push_back(two_stage_job());
  EXPECT_EQ(w.total_tasks(), 6u);
  EXPECT_EQ(Workload{}.total_tasks(), 0u);
}

// ---- Placement constraints (DESIGN.md §13) ----

TEST(SpecValidate, AcceptsWellFormedConstraints) {
  JobSpec job = two_stage_job();
  job.stages[0].constraint.require_labels = {"gpu"};
  job.stages[1].constraint.forbid_labels = {"gpu"};
  job.stages[1].constraint.anti_affinity = true;
  job.stages[1].constraint.same_rack_as_input = true;
  EXPECT_EQ(validate(job), "");
  EXPECT_EQ(validate(job, {"gpu", "highmem"}), "");
}

TEST(SpecValidate, RejectsEmptyLabelName) {
  JobSpec job = two_stage_job();
  job.stages[0].constraint.require_labels = {""};
  EXPECT_NE(validate(job), "");
  JobSpec job2 = two_stage_job();
  job2.stages[0].constraint.forbid_labels = {""};
  EXPECT_NE(validate(job2), "");
}

TEST(SpecValidate, RejectsLabelBothRequiredAndForbidden) {
  JobSpec job = two_stage_job();
  job.stages[0].constraint.require_labels = {"gpu"};
  job.stages[0].constraint.forbid_labels = {"gpu"};
  EXPECT_NE(validate(job), "");
}

TEST(SpecValidate, RejectsRequiredLabelNoMachineDeclares) {
  // Fail-fast, like the num_machines vs machine_capacities contradiction:
  // requiring a class the cluster does not have is a config bug, not a
  // quietly-infeasible stage.
  JobSpec job = two_stage_job();
  job.stages[0].constraint.require_labels = {"tpu"};
  // Without a declared-label list the check cannot run.
  EXPECT_EQ(validate(job), "");
  const auto msg = validate(job, {"gpu", "highmem"});
  EXPECT_NE(msg, "");
  EXPECT_NE(msg.find("tpu"), std::string::npos);
  EXPECT_NE(msg.find("declares"), std::string::npos);
  // Declared on some machine: fine. Forbidding an undeclared label is
  // rejected too — a forbid that can never match is a typo, not intent.
  EXPECT_EQ(validate(job, {"gpu", "tpu"}), "");
  JobSpec job2 = two_stage_job();
  job2.stages[0].constraint.forbid_labels = {"tpu"};
  EXPECT_NE(validate(job2, {"gpu"}), "");
  EXPECT_EQ(validate(job2, {"gpu", "tpu"}), "");
}

TEST(SpecValidate, WorkloadOverloadChecksDeclaredLabels) {
  Workload w;
  w.jobs.push_back(two_stage_job());
  w.jobs[0].stages[0].constraint.require_labels = {"gpu"};
  EXPECT_EQ(validate(w, {"gpu"}), "");
  EXPECT_NE(validate(w, {"highmem"}), "");
  EXPECT_NE(validate(w, {}), "");
}

}  // namespace
}  // namespace tetris::sim
