// Rack-level network oversubscription (paper Table 1 context): cross-rack
// reads consume shared uplink bandwidth; schedulers see the uplinks
// through the standard remote-leg admission path.
#include <gtest/gtest.h>

#include "core/tetris_scheduler.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace tetris::sim {
namespace {

TaskSpec reader(double mb, double io_mb, MachineId replica) {
  TaskSpec t;
  t.peak_cores = 0.25;
  t.peak_mem = 0.5 * kGB;
  t.max_io_bw = io_mb * kMB;
  InputSplit s;
  s.bytes = mb * kMB;
  s.replicas = {replica};
  t.inputs.push_back(s);
  return t;
}

// Two racks of two machines; data on rack 0, reading machines on rack 1
// (rack-1 machines are the only ones with memory for tasks).
SimConfig racked_cluster(double oversubscription) {
  SimConfig cfg;
  const Resources storage =
      Resources::full(8, 0.1 * kGB, 200 * kMB, 200 * kMB, 125 * kMB,
                      125 * kMB);
  const Resources compute =
      Resources::full(8, 8 * kGB, 200 * kMB, 200 * kMB, 125 * kMB,
                      125 * kMB);
  cfg.machine_capacities = {storage, storage, compute, compute};
  cfg.machines_per_rack = 2;
  cfg.rack_oversubscription = oversubscription;
  return cfg;
}

Workload two_readers() {
  Workload w;
  JobSpec job;
  StageSpec s;
  s.tasks = {reader(1000, 100, 0), reader(1000, 100, 1)};
  job.stages.push_back(s);
  w.jobs.push_back(job);
  return w;
}

TEST(RackTopology, CrossRackReadsShareTheUplink) {
  // Oversubscription 2: the rack uplink carries 125 MB/s per direction
  // (2 x 125 / 2). Two 100 MB/s cross-rack readers cannot both be
  // admitted by Tetris at once: they serialize and run at natural speed.
  core::TetrisScheduler tetris;
  const auto r = simulate(racked_cluster(2.0), two_readers(), tetris);
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_GE(t.host, 2);  // compute rack
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
  }
  // Serialized: the second starts only after the first releases the
  // uplink.
  ASSERT_EQ(r.tasks.size(), 2u);
  const auto& a = r.tasks[0];
  const auto& b = r.tasks[1];
  const double overlap =
      std::min(a.finish, b.finish) - std::max(a.start, b.start);
  EXPECT_LE(overlap, 1e-6);
}

TEST(RackTopology, GenerousUplinkAllowsConcurrency) {
  core::TetrisScheduler tetris;
  const auto r = simulate(racked_cluster(1.0), two_readers(), tetris);
  ASSERT_TRUE(r.completed);
  const auto& a = r.tasks[0];
  const auto& b = r.tasks[1];
  const double overlap =
      std::min(a.finish, b.finish) - std::max(a.start, b.start);
  EXPECT_GT(overlap, 1.0);  // both run together at natural speed
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
  }
}

TEST(RackTopology, RecklessSchedulingContendsOnTheUplink) {
  // A scheduler that ignores the uplink stacks both cross-rack readers:
  // the shared 125 MB/s uplink halves their speed (plus incast penalty).
  class PinScheduler final : public Scheduler {
   public:
    std::string name() const override { return "pin"; }
    void schedule(SchedulerContext& ctx) override {
      for (auto& g : ctx.runnable_groups()) {
        while (g.runnable > 0) {
          Probe p = ctx.probe(g.ref, 2);
          if (!p.valid || !ctx.place(p)) return;
          g.runnable--;
        }
      }
    }
  };
  PinScheduler pin;
  const auto r = simulate(racked_cluster(2.0), two_readers(), pin);
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_GT(t.duration(), t.natural_duration * 1.5);
  }
}

TEST(RackTopology, RackLocalReadsSkipTheUplink) {
  // Reader data on machine 2 (same rack as the compute hosts): even with a
  // tiny uplink, intra-rack remote reads run at natural speed.
  SimConfig cfg = racked_cluster(100.0);  // uplink nearly useless
  Workload w;
  JobSpec job;
  StageSpec s;
  s.tasks = {reader(1000, 100, 2), reader(1000, 100, 3)};
  job.stages.push_back(s);
  w.jobs.push_back(job);
  core::TetrisScheduler tetris;
  const auto r = simulate(cfg, w, tetris);
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
    EXPECT_LT(t.finish, 25);  // no uplink serialization
  }
}

TEST(RackTopology, BadRackConfigThrows) {
  SimConfig cfg = racked_cluster(2.0);
  cfg.rack_oversubscription = 0;
  core::TetrisScheduler tetris;
  EXPECT_THROW(simulate(cfg, Workload{}, tetris), std::invalid_argument);
  cfg = racked_cluster(2.0);
  cfg.machines_per_rack = -1;
  EXPECT_THROW(simulate(cfg, Workload{}, tetris), std::invalid_argument);
}

TEST(RackTopology, DisabledRackModelIsFlat) {
  SimConfig cfg = racked_cluster(100.0);
  cfg.machines_per_rack = 0;  // flat network
  core::TetrisScheduler tetris;
  const auto r = simulate(cfg, two_readers(), tetris);
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), t.natural_duration, 1e-6);
    EXPECT_LT(t.finish, 25);
  }
}

}  // namespace
}  // namespace tetris::sim
