// Advanced simulator scenarios: deep/diamond DAGs, heterogeneous
// clusters, estimation modes, stranded work, incast, and accounting
// invariants under churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/tetris_scheduler.h"
#include "sched/srtf_scheduler.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace tetris::sim {
namespace {

TaskSpec cpu_task(double cores, double mem_gb, double seconds) {
  TaskSpec t;
  t.peak_cores = cores;
  t.peak_mem = mem_gb * kGB;
  t.cpu_cycles = cores * seconds;
  return t;
}

SimConfig small_cluster(int machines = 2) {
  SimConfig cfg;
  cfg.num_machines = machines;
  cfg.machine_capacity =
      Resources::full(4, 8 * kGB, 100 * kMB, 100 * kMB, 125 * kMB, 125 * kMB);
  return cfg;
}

SimResult run_tetris(const SimConfig& cfg, const Workload& w) {
  core::TetrisScheduler tetris;
  return simulate(cfg, w, tetris);
}

TEST(SimulatorAdvanced, DiamondDagRespectsAllDependencies) {
  // a -> {b, c} -> d, with shuffles along every edge.
  Workload w;
  JobSpec job;
  StageSpec a, b, c, d;
  TaskSpec producer = cpu_task(1, 1, 5);
  producer.output_bytes = 50 * kMB;
  a.tasks = {producer, producer};
  const auto consumer = [](int from) {
    TaskSpec t = cpu_task(1, 1, 3);
    t.output_bytes = 20 * kMB;
    InputSplit s;
    s.bytes = 40 * kMB;
    s.from_stage = from;
    t.inputs.push_back(s);
    return t;
  };
  b.deps = {0};
  b.tasks = {consumer(0)};
  c.deps = {0};
  c.tasks = {consumer(0)};
  d.deps = {1, 2};
  {
    TaskSpec t = cpu_task(1, 1, 2);
    for (int from : {1, 2}) {
      InputSplit s;
      s.bytes = 10 * kMB;
      s.from_stage = from;
      t.inputs.push_back(s);
    }
    d.tasks = {t};
  }
  job.stages = {a, b, c, d};
  w.jobs.push_back(job);

  const auto r = run_tetris(small_cluster(), w);
  ASSERT_TRUE(r.completed);
  std::map<int, SimTime> done;
  std::map<int, SimTime> started;
  for (const auto& t : r.tasks) {
    done[t.stage] = std::max(done[t.stage], t.finish);
    started.try_emplace(t.stage, 1e18);
    started[t.stage] = std::min(started[t.stage], t.start);
  }
  EXPECT_GE(started[1], done[0]);
  EXPECT_GE(started[2], done[0]);
  EXPECT_GE(started[3], std::max(done[1], done[2]));
}

TEST(SimulatorAdvanced, DeepChainExecutesInOrder) {
  Workload w;
  JobSpec job;
  for (int s = 0; s < 6; ++s) {
    StageSpec stage;
    TaskSpec t = cpu_task(1, 1, 2);
    t.output_bytes = 10 * kMB;
    if (s > 0) {
      stage.deps = {s - 1};
      InputSplit split;
      split.bytes = 10 * kMB;
      split.from_stage = s - 1;
      t.inputs.push_back(split);
    }
    stage.tasks = {t};
    job.stages.push_back(stage);
  }
  w.jobs.push_back(job);
  const auto r = run_tetris(small_cluster(), w);
  ASSERT_TRUE(r.completed);
  SimTime prev_finish = 0;
  std::map<int, SimTime> finish;
  for (const auto& t : r.tasks) finish[t.stage] = t.finish;
  for (int s = 0; s < 6; ++s) {
    EXPECT_GT(finish[s], prev_finish);
    prev_finish = finish[s];
  }
}

TEST(SimulatorAdvanced, HeterogeneousClusterPlacesBigTasksOnBigMachine) {
  SimConfig cfg;
  cfg.machine_capacities = {
      Resources::full(2, 4 * kGB, 100 * kMB, 100 * kMB, 125 * kMB, 125 * kMB),
      Resources::full(16, 64 * kGB, 400 * kMB, 400 * kMB, 1250 * kMB,
                      1250 * kMB)};
  Workload w;
  JobSpec job;
  StageSpec s;
  for (int i = 0; i < 3; ++i) s.tasks.push_back(cpu_task(8, 16, 5));
  job.stages.push_back(s);
  w.jobs.push_back(job);
  const auto r = run_tetris(cfg, w);
  ASSERT_TRUE(r.completed);
  for (const auto& t : r.tasks) EXPECT_EQ(t.host, 1);
}

TEST(SimulatorAdvanced, StrandedTaskLeavesRunIncomplete) {
  // A task that no machine can ever hold: the run must terminate at
  // max_time with completed == false instead of looping forever.
  Workload w;
  JobSpec job;
  StageSpec s;
  s.tasks = {cpu_task(64, 1, 5)};  // 64 cores on a 4-core cluster
  job.stages.push_back(s);
  w.jobs.push_back(job);
  SimConfig cfg = small_cluster(1);
  cfg.max_time = 50;
  const auto r = run_tetris(cfg, w);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.tasks.empty());
}

TEST(SimulatorAdvanced, IncastManySendersOneReceiver) {
  // 6 senders' worth of data pulled by one host: aggregate demand exceeds
  // the NIC under a reckless scheduler and the incast penalty bites.
  class PinScheduler final : public Scheduler {
   public:
    std::string name() const override { return "pin"; }
    void schedule(SchedulerContext& ctx) override {
      for (auto& g : ctx.runnable_groups()) {
        while (g.runnable > 0) {
          Probe p = ctx.probe(g.ref, 6);  // host everything on machine 6
          if (!p.valid || !ctx.place(p)) return;
          g.runnable--;
        }
      }
    }
  };
  Workload w;
  JobSpec job;
  StageSpec s;
  for (int i = 0; i < 6; ++i) {
    TaskSpec t;
    t.peak_cores = 0.25;
    t.peak_mem = 0.5 * kGB;
    t.max_io_bw = 50 * kMB;
    InputSplit split;
    split.bytes = 250 * kMB;  // 5s at 50 MB/s
    split.replicas = {i};     // all remote to machine 6
    t.inputs.push_back(split);
    s.tasks.push_back(t);
  }
  job.stages.push_back(s);
  w.jobs.push_back(job);
  PinScheduler pin;
  const auto r = simulate(small_cluster(7), w, pin);
  ASSERT_TRUE(r.completed);
  // 6 x 50 = 300 MB/s of demand into a 125 MB/s NIC with the incast
  // penalty: tasks run at well under half speed.
  int slowed = 0;
  for (const auto& t : r.tasks) {
    if (t.duration() > t.natural_duration * 2.0) slowed++;
  }
  EXPECT_GE(slowed, 5);
}

TEST(SimulatorAdvanced, NoisyEstimatesCauseContentionButTrackerRecovers) {
  // Systematic *under*-estimation: even Tetris admits too much; tasks slow
  // down, but the run still completes and no accounting breaks.
  Workload w;
  JobSpec job;
  StageSpec s;
  for (int i = 0; i < 12; ++i) {
    TaskSpec t;
    t.peak_cores = 1;
    t.peak_mem = 1 * kGB;
    t.max_io_bw = 100 * kMB;
    InputSplit split;
    split.bytes = 400 * kMB;
    split.replicas = {0, 1};
    t.inputs.push_back(split);
    s.tasks.push_back(t);
  }
  job.stages.push_back(s);
  w.jobs.push_back(job);
  SimConfig cfg = small_cluster(2);
  cfg.estimation.mode = EstimationMode::kNoisy;
  cfg.estimation.noise_cov = 0.8;
  cfg.seed = 5;
  const auto r = run_tetris(cfg, w);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tasks.size(), 12u);
}

TEST(SimulatorAdvanced, SchedulerCostAccountingIsPopulated) {
  Workload w;
  JobSpec job;
  StageSpec s;
  for (int i = 0; i < 8; ++i) s.tasks.push_back(cpu_task(1, 1, 5));
  job.stages.push_back(s);
  w.jobs.push_back(job);
  const auto r = run_tetris(small_cluster(), w);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.scheduler_cost.invocations, 0);
  EXPECT_EQ(r.scheduler_cost.placements, 8);
  EXPECT_GE(r.scheduler_cost.total_seconds, 0);
  EXPECT_GE(r.scheduler_cost.max_seconds, 0);
  EXPECT_LE(r.scheduler_cost.mean_seconds(), r.scheduler_cost.max_seconds);
}

TEST(SimulatorAdvanced, RecurringTemplatesProfileAcrossJobs) {
  // Two identical recurring jobs; with kLearnedProfile the second job's
  // stages are estimated from the first's history, so the second is not
  // slower than the first despite over-estimation of unprofiled stages.
  Workload w;
  for (int j = 0; j < 2; ++j) {
    JobSpec job;
    job.template_id = 5;
    job.arrival = j * 100.0;
    StageSpec s;
    for (int i = 0; i < 8; ++i) s.tasks.push_back(cpu_task(1, 3, 10));
    job.stages.push_back(s);
    w.jobs.push_back(job);
  }
  SimConfig cfg = small_cluster(1);
  cfg.estimation.mode = EstimationMode::kLearnedProfile;
  cfg.estimation.overestimate_factor = 2.0;
  cfg.estimation.profile_after = 1000;  // only template history helps
  cfg.tracker = TrackerMode::kAllocation;
  const auto r = run_tetris(cfg, w);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.jobs[1].completion_time(), r.jobs[0].completion_time() + 1.0);
}

TEST(SimulatorAdvanced, ZeroHeartbeatWorkloadStillTerminates) {
  // No jobs at all, but activities scheduled: the run drains immediately.
  Workload w;
  SimConfig cfg = small_cluster(1);
  BackgroundActivity act;
  act.machine = 0;
  act.start = 5;
  act.end = 10;
  act.usage[Resource::kDiskRead] = 50 * kMB;
  cfg.activities.push_back(act);
  const auto r = run_tetris(cfg, w);
  EXPECT_TRUE(r.completed);
}

TEST(SimulatorAdvanced, ManySmallJobsConserveCounts) {
  Workload w;
  for (int j = 0; j < 50; ++j) {
    JobSpec job;
    job.arrival = j * 2.0;
    StageSpec s;
    s.tasks = {cpu_task(1, 1, 3)};
    job.stages.push_back(s);
    w.jobs.push_back(job);
  }
  sched::SrtfScheduler srtf;
  const auto r = simulate(small_cluster(2), w, srtf);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.jobs.size(), 50u);
  EXPECT_EQ(r.tasks.size(), 50u);
  for (const auto& j : r.jobs) {
    EXPECT_GE(j.finish, j.arrival);
  }
}

}  // namespace
}  // namespace tetris::sim
