// Randomized placement-constraint fuzzer (DESIGN.md §13), in the
// adversarial style of trace_binary_test: a seeded generator produces
// random machine classes, label clauses, anti-affinity and same-rack
// specs — including combinations no machine satisfies — and every run
// must uphold the constraint contract:
//   * the scheduler never places a task on an inadmissible machine
//     (checked post-hoc from the decision trace by the independent
//     replayer in tests/support/constraint_checker.h);
//   * a stage that is statically infeasible for every machine is
//     REPORTED in SimResult::infeasible and its job abandoned — never
//     silently starved until max_time;
//   * every other job drains normally.
// The default 25 iterations keep the test affordable; set
// TETRIS_FUZZ_ITERS (e.g. 500) to soak it — the assertions are
// iteration-invariant, mirroring TETRIS_SOAK_TASKS.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <utility>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/tetris_scheduler.h"
#include "sched/constrained_random_scheduler.h"
#include "sim/simulator.h"
#include "tests/support/constraint_checker.h"
#include "util/rng.h"
#include "util/units.h"

namespace tetris::sim {
namespace {

int fuzz_iters() {
  if (const char* env = std::getenv("TETRIS_FUZZ_ITERS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 25;
}

constexpr const char* kPalette[] = {"red", "green", "blue"};

struct FuzzSpec {
  SimConfig cfg;
  Workload workload;
  // Stages whose label clauses admit no machine, computed by the
  // generator independently of the simulator: (job, stage).
  std::set<std::pair<int, int>> label_infeasible;
};

bool machine_matches(const std::vector<std::string>& labels,
                     const PlacementConstraint& c) {
  const auto has = [&](const std::string& l) {
    for (const auto& x : labels)
      if (x == l) return true;
    return false;
  };
  for (const auto& l : c.require_labels)
    if (!has(l)) return false;
  for (const auto& l : c.forbid_labels)
    if (has(l)) return false;
  return true;
}

FuzzSpec make_fuzz_spec(std::uint64_t seed) {
  Rng rng(seed);
  FuzzSpec spec;

  const int machines = static_cast<int>(rng.uniform_int(3, 8));
  spec.cfg.num_machines = machines;
  spec.cfg.machine_capacity =
      Resources::full(8, 16 * kGB, 200 * kMB, 200 * kMB, 1 * kGbps, 1 * kGbps);
  spec.cfg.heartbeat_period = 0.5;
  spec.cfg.max_time = 50000;
  spec.cfg.trace.enabled = true;
  spec.cfg.trace.max_chunks_per_thread = 1024;
  if (rng.bernoulli(0.4)) spec.cfg.machines_per_rack = 2;

  // Random label sets; a machine with no class rolls "plain". Track what
  // is actually declared so generated clauses always pass validation.
  std::set<std::string> declared;
  spec.cfg.machine_labels.resize(static_cast<std::size_t>(machines));
  for (auto& l : spec.cfg.machine_labels) {
    for (const char* color : kPalette)
      if (rng.bernoulli(0.45)) l.emplace_back(color);
    if (l.empty()) l.emplace_back("plain");
    for (const auto& x : l) declared.insert(x);
  }
  const std::vector<std::string> pool(declared.begin(), declared.end());

  // Occasionally knock a machine out mid-run: constraints must compose
  // with churn (kills requeue only onto still-feasible machines).
  if (rng.bernoulli(0.3)) {
    spec.cfg.churn.scripted = {
        {static_cast<MachineId>(rng.uniform_int(0, machines - 1)), 5.0,
         25.0}};
  }

  const int jobs = static_cast<int>(rng.uniform_int(2, 5));
  for (int j = 0; j < jobs; ++j) {
    JobSpec job;
    job.name = "fuzz-" + std::to_string(j);
    const int stages = rng.bernoulli(0.5) ? 2 : 1;
    for (int s = 0; s < stages; ++s) {
      StageSpec stage;
      stage.name = "s" + std::to_string(s);
      if (s > 0) stage.deps = {s - 1};
      const int tasks = static_cast<int>(rng.uniform_int(1, 5));
      double stage_output = 0;
      for (int t = 0; t < tasks; ++t) {
        TaskSpec task;
        task.peak_cores = rng.bernoulli(0.5) ? 1.0 : 2.0;
        task.peak_mem = 1 * kGB;
        task.cpu_cycles = task.peak_cores * rng.uniform(2.0, 10.0);
        if (s > 0) {
          InputSplit split;
          split.bytes = 20 * kMB;
          split.from_stage = 0;
          task.inputs.push_back(split);
        } else if (rng.bernoulli(0.5)) {
          InputSplit split;
          split.bytes = 50 * kMB;
          split.replicas = {
              static_cast<MachineId>(rng.uniform_int(0, machines - 1)),
              static_cast<MachineId>(rng.uniform_int(0, machines - 1))};
          task.inputs.push_back(split);
        }
        task.output_bytes = 10 * kMB;
        stage_output += task.output_bytes;
        stage.tasks.push_back(std::move(task));
      }

      // Adversarial clause roll: requires and forbids drawn from the
      // declared pool with no feasibility guarantee — infeasible combos
      // are the point. require ∩ forbid would be a validation error, so
      // forbids skip required labels.
      auto& c = stage.constraint;
      const int requires_n = static_cast<int>(rng.uniform_int(0, 2));
      for (int k = 0; k < requires_n; ++k) {
        const auto& l = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
        if (std::find(c.require_labels.begin(), c.require_labels.end(), l) ==
            c.require_labels.end())
          c.require_labels.push_back(l);
      }
      if (rng.bernoulli(0.3)) {
        const auto& l = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
        if (std::find(c.require_labels.begin(), c.require_labels.end(), l) ==
            c.require_labels.end())
          c.forbid_labels.push_back(l);
      }
      c.anti_affinity = rng.bernoulli(0.3);
      c.same_rack_as_input = rng.bernoulli(0.25);

      bool any = false;
      for (const auto& l : spec.cfg.machine_labels)
        if (machine_matches(l, c)) any = true;
      if (!any) spec.label_infeasible.insert({j, s});

      job.stages.push_back(std::move(stage));
    }
    spec.workload.jobs.push_back(std::move(job));
  }
  return spec;
}

class ConstraintFuzzTest : public ::testing::Test {};

TEST(ConstraintFuzzTest, NeverPlacesInfeasiblyAndReportsTheImpossible) {
  const int iters = fuzz_iters();
  long constrained_starts = 0;
  long infeasible_seen = 0;
  for (int i = 0; i < iters; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    const FuzzSpec spec = make_fuzz_spec(1000 + static_cast<std::uint64_t>(i));

    // Alternate the packer and the randomized baseline: both must uphold
    // the contract through their very different scan paths.
    core::TetrisConfig tcfg;
    core::TetrisScheduler tetris(tcfg);
    sched::ConstrainedRandomScheduler random(7);
    Scheduler& sched =
        (i % 2 == 0) ? static_cast<Scheduler&>(tetris) : random;
    SimConfig cfg = spec.cfg;
    if (i % 2 == 0) cfg.tracker = TrackerMode::kUsage;

    const SimResult r = simulate(cfg, spec.workload, sched);

    // 1. No placement ever violates a constraint.
    ASSERT_EQ(r.trace_log.dropped, 0u);
    const auto check =
        test::check_constraints(spec.workload, cfg, r);
    EXPECT_TRUE(check.violations.empty())
        << check.violations.size() << " violations, first: "
        << check.violations.front();
    constrained_starts += check.constrained_starts;

    // 2. Statically label-infeasible stages are reported, not starved:
    // every generator-predicted impossible stage shows up in
    // SimResult::infeasible, and the run still terminates long before
    // max_time because the affected jobs are abandoned.
    std::set<std::pair<int, int>> reported;
    for (const auto& g : r.infeasible) {
      reported.insert({static_cast<int>(g.job), g.stage});
      EXPECT_FALSE(g.reason.empty());
      EXPECT_GT(g.tasks, 0);
    }
    // A job is doomed at the FIRST infeasible stage to materialize;
    // stages downstream of that never materialize and are not
    // re-reported — an earlier reported stage of the same job excuses a
    // missing report, nothing else does.
    for (const auto& js : spec.label_infeasible) {
      if (reported.count(js)) continue;
      bool doomed_earlier = false;
      for (const auto& rep : reported)
        if (rep.first == js.first && rep.second < js.second)
          doomed_earlier = true;
      EXPECT_TRUE(doomed_earlier)
          << "label-infeasible job " << js.first << " stage " << js.second
          << " was neither reported nor doomed at an earlier stage";
    }
    infeasible_seen += static_cast<long>(r.infeasible.size());
    EXPECT_LT(r.end_time, cfg.max_time);

    // 3. Reported groups really are infeasible (the converse): every
    // report is either label-infeasible by the generator's own math or
    // carries the materialization-dependent same-rack clause.
    for (const auto& g : r.infeasible) {
      const auto& stage =
          spec.workload.jobs[static_cast<std::size_t>(g.job)]
              .stages[static_cast<std::size_t>(g.stage)];
      EXPECT_TRUE(spec.label_infeasible.count(
                      {static_cast<int>(g.job), g.stage}) ||
                  stage.constraint.same_rack_as_input)
          << "reported group is label-feasible and has no rack clause: "
          << g.reason;
    }

    // 4. Doomed jobs and completion accounting agree: jobs of reported
    // stages carry finish = -1; everything else drains.
    std::set<JobId> doomed;
    for (const auto& g : r.infeasible) doomed.insert(g.job);
    EXPECT_EQ(r.completed, doomed.empty());
    ASSERT_EQ(r.jobs.size(), spec.workload.jobs.size());
    for (const auto& job : r.jobs) {
      if (doomed.count(job.id)) {
        EXPECT_EQ(job.finish, -1);
      } else {
        EXPECT_GE(job.finish, 0) << "feasible job " << job.id
                                 << " never finished";
      }
    }
  }
  // The sweep must have exercised the machinery, or it proves nothing.
  EXPECT_GT(constrained_starts, 0);
  EXPECT_GT(infeasible_seen, 0);
}

TEST(ConstraintFuzzTest, SimulateRejectsMalformedLabelConfigs) {
  Workload w;
  JobSpec job;
  job.name = "j";
  StageSpec s;
  s.name = "s";
  TaskSpec t;
  t.peak_cores = 1;
  t.peak_mem = 1 * kGB;
  t.cpu_cycles = 5;
  s.tasks = {t};
  job.stages.push_back(s);
  w.jobs.push_back(job);

  core::TetrisScheduler sched;

  // machine_labels must match the machine count exactly.
  SimConfig mismatch;
  mismatch.num_machines = 3;
  mismatch.machine_labels = {{"a"}, {"a"}};
  EXPECT_THROW(simulate(mismatch, w, sched), std::invalid_argument);

  // Empty label names are rejected at the cluster side too.
  SimConfig empty_label;
  empty_label.num_machines = 2;
  empty_label.machine_labels = {{"a"}, {""}};
  EXPECT_THROW(simulate(empty_label, w, sched), std::invalid_argument);

  // Requiring a label no machine declares is a fail-fast config error —
  // the same pattern as the num_machines vs machine_capacities
  // contradiction — not a quietly doomed job.
  Workload undeclared = w;
  undeclared.jobs[0].stages[0].constraint.require_labels = {"tpu"};
  SimConfig labeled;
  labeled.num_machines = 2;
  labeled.machine_labels = {{"gpu"}, {"gpu"}};
  EXPECT_THROW(simulate(labeled, undeclared, sched), std::invalid_argument);
  // On an unlabeled cluster the declared set is empty, so ANY required
  // label is undeclared.
  SimConfig unlabeled;
  unlabeled.num_machines = 2;
  EXPECT_THROW(simulate(unlabeled, undeclared, sched),
               std::invalid_argument);
}

TEST(ConstraintFuzzTest, AntiAffinitySpreadsAJobOneTaskPerMachine) {
  // Three concurrent 10s tasks, three machines, anti-affinity: each task
  // gets its own machine even though one machine could hold all three.
  Workload w;
  JobSpec job;
  job.name = "spread";
  StageSpec s;
  s.name = "s";
  for (int i = 0; i < 3; ++i) {
    TaskSpec t;
    t.peak_cores = 1;
    t.peak_mem = 1 * kGB;
    t.cpu_cycles = 10;
    s.tasks.push_back(t);
  }
  s.constraint.anti_affinity = true;
  job.stages.push_back(s);
  w.jobs.push_back(job);

  SimConfig cfg;
  cfg.num_machines = 3;
  cfg.machine_capacity =
      Resources::full(8, 16 * kGB, 200 * kMB, 200 * kMB, 1 * kGbps, 1 * kGbps);

  core::TetrisScheduler sched;
  const SimResult r = simulate(cfg, w, sched);

  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.tasks.size(), 3u);
  std::set<MachineId> hosts;
  for (const auto& t : r.tasks) hosts.insert(t.host);
  EXPECT_EQ(hosts.size(), 3u);
}

}  // namespace
}  // namespace tetris::sim
