#include "sim/machine.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace tetris::sim {
namespace {

class MachineTest : public ::testing::Test {
 protected:
  InterferenceModel interference_;
  Resources cap_ = Resources::full(4, 8 * kGB, 100, 100, 125, 125);
  Machine machine_{0, cap_, &interference_};
};

TEST_F(MachineTest, StartsIdle) {
  EXPECT_EQ(machine_.num_tasks(), 0);
  EXPECT_TRUE(machine_.usage().is_zero());
  EXPECT_EQ(machine_.available_by_allocation(), cap_);
  for (Resource r : all_resources()) EXPECT_EQ(machine_.share_ratio(r), 1.0);
}

TEST_F(MachineTest, UnderSubscribedGrantsFully) {
  Resources d;
  d[Resource::kCpu] = 2;
  d[Resource::kDiskRead] = 50;
  machine_.add_demand(1, d);
  EXPECT_EQ(machine_.grant_ratio(d), 1.0);
  EXPECT_EQ(machine_.usage()[Resource::kDiskRead], 50);
  EXPECT_EQ(machine_.available_by_allocation()[Resource::kCpu], 2);
}

TEST_F(MachineTest, CpuOverSubscriptionSharesProportionally) {
  Resources d;
  d[Resource::kCpu] = 3;
  machine_.add_demand(1, d);
  machine_.add_demand(2, d);  // total 6 on 4 cores
  EXPECT_NEAR(machine_.share_ratio(Resource::kCpu), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(machine_.grant_ratio(d), 4.0 / 6.0, 1e-12);
}

TEST_F(MachineTest, CpuHasNoInterferencePenalty) {
  Resources d;
  d[Resource::kCpu] = 4;
  machine_.add_demand(1, d);
  machine_.add_demand(2, d);
  machine_.add_demand(3, d);
  // Pure proportional: 4 / 12, no degradation.
  EXPECT_NEAR(machine_.share_ratio(Resource::kCpu), 1.0 / 3.0, 1e-12);
}

TEST_F(MachineTest, DiskOverSubscriptionPaysSeekPenalty) {
  Resources d;
  d[Resource::kDiskRead] = 100;
  machine_.add_demand(1, d);
  machine_.add_demand(2, d);
  // eff = 100 * (1 - 0.06) = 94; ratio = 94/200.
  EXPECT_NEAR(machine_.share_ratio(Resource::kDiskRead), 0.47, 1e-9);
}

TEST_F(MachineTest, PenaltyFloorsAtMinEfficiency) {
  Resources d;
  d[Resource::kDiskRead] = 100;
  for (int i = 0; i < 30; ++i) machine_.add_demand(i, d);
  // 1 - 0.06*29 would be negative; the floor keeps eff at 0.4 * cap.
  EXPECT_NEAR(machine_.share_ratio(Resource::kDiskRead), 40.0 / 3000.0,
              1e-9);
}

TEST_F(MachineTest, NoPenaltyAtOrBelowCapacity) {
  Resources d;
  d[Resource::kDiskRead] = 50;
  machine_.add_demand(1, d);
  machine_.add_demand(2, d);  // exactly at capacity
  EXPECT_EQ(machine_.share_ratio(Resource::kDiskRead), 1.0);
}

TEST_F(MachineTest, RemoveDemandRestoresCapacity) {
  Resources d;
  d[Resource::kDiskRead] = 100;
  machine_.add_demand(1, d);
  machine_.add_demand(2, d);
  machine_.remove_demand(1);
  EXPECT_EQ(machine_.share_ratio(Resource::kDiskRead), 1.0);
  EXPECT_EQ(machine_.num_tasks(), 1);
}

TEST_F(MachineTest, DoubleAddThrows) {
  Resources d;
  d[Resource::kCpu] = 1;
  machine_.add_demand(1, d);
  EXPECT_THROW(machine_.add_demand(1, d), std::logic_error);
}

TEST_F(MachineTest, RemovingUnknownThrows) {
  EXPECT_THROW(machine_.remove_demand(99), std::logic_error);
}

TEST_F(MachineTest, MemoryOverCommitTriggersThrashing) {
  Resources d;
  d[Resource::kMem] = 5 * kGB;
  machine_.add_demand(1, d);
  EXPECT_FALSE(machine_.memory_thrashing());
  machine_.add_demand(2, d);  // 10 GB on 8 GB
  EXPECT_TRUE(machine_.memory_thrashing());
  Resources cpu_only;
  cpu_only[Resource::kCpu] = 1;
  EXPECT_NEAR(machine_.grant_ratio(cpu_only),
              interference_.mem_thrash_factor, 1e-12);
}

TEST_F(MachineTest, ExternalUsageSharesWithTasks) {
  Resources ext;
  ext[Resource::kDiskRead] = 100;  // the whole disk
  machine_.set_external_usage(ext);
  Resources d;
  d[Resource::kDiskRead] = 100;
  machine_.add_demand(1, d);
  // Two streams on a degraded disk: eff = 94, ratio = 94/200.
  EXPECT_NEAR(machine_.grant_ratio(d), 0.47, 1e-9);
}

TEST_F(MachineTest, ExternalUsageIsClampedToCapacity) {
  Resources ext;
  ext[Resource::kDiskRead] = 1e9;
  machine_.set_external_usage(ext);
  EXPECT_EQ(machine_.external_usage()[Resource::kDiskRead], 100);
}

TEST_F(MachineTest, UsageReportsOfferedLoadCappedAtCapacity) {
  // A saturated device shows 100% busy, not degraded goodput — otherwise
  // the tracker would see headroom on a contended machine.
  Resources d;
  d[Resource::kDiskRead] = 80;
  machine_.add_demand(1, d);
  machine_.add_demand(2, d);
  EXPECT_EQ(machine_.usage()[Resource::kDiskRead], 100);
  machine_.remove_demand(2);
  EXPECT_EQ(machine_.usage()[Resource::kDiskRead], 80);
}

TEST_F(MachineTest, UsageIncludesExternal) {
  Resources ext;
  ext[Resource::kNetIn] = 60;
  machine_.set_external_usage(ext);
  Resources d;
  d[Resource::kNetIn] = 30;
  machine_.add_demand(1, d);
  EXPECT_EQ(machine_.usage()[Resource::kNetIn], 90);
}

TEST_F(MachineTest, AvailableByAllocationFloorsAtZero) {
  Resources d;
  d[Resource::kCpu] = 3;
  machine_.add_demand(1, d);
  machine_.add_demand(2, d);
  EXPECT_EQ(machine_.available_by_allocation()[Resource::kCpu], 0);
}

TEST_F(MachineTest, GrantRatioIgnoresUndemandedDimensions) {
  // Saturate the disk with task 1; a cpu-only task is unaffected.
  Resources disk;
  disk[Resource::kDiskRead] = 300;
  machine_.add_demand(1, disk);
  Resources cpu;
  cpu[Resource::kCpu] = 1;
  EXPECT_EQ(machine_.grant_ratio(cpu), 1.0);
  EXPECT_LT(machine_.grant_ratio(disk), 1.0);
}

TEST_F(MachineTest, IncastPenaltyOnNetworkIn) {
  Resources d;
  d[Resource::kNetIn] = 125;
  machine_.add_demand(1, d);
  machine_.add_demand(2, d);
  // eff = 125 * (1 - 0.04), ratio = eff / 250.
  EXPECT_NEAR(machine_.share_ratio(Resource::kNetIn), 125 * 0.96 / 250,
              1e-9);
}

TEST_F(MachineTest, NullInterferenceModelRejected) {
  EXPECT_THROW(Machine(1, cap_, nullptr), std::invalid_argument);
}

TEST(InterferenceModel, EffectiveCapacityOnlyDegradesWhenOver) {
  InterferenceModel m;
  EXPECT_EQ(m.effective_capacity(Resource::kDiskRead, 100, 5, 99), 100);
  EXPECT_EQ(m.effective_capacity(Resource::kDiskRead, 100, 1, 500), 100);
  EXPECT_LT(m.effective_capacity(Resource::kDiskRead, 100, 2, 150), 100);
  // CPU and memory never degrade.
  EXPECT_EQ(m.effective_capacity(Resource::kCpu, 16, 10, 100), 16);
  EXPECT_EQ(m.effective_capacity(Resource::kMem, 32, 10, 100), 32);
}

}  // namespace
}  // namespace tetris::sim
