// Integration tests of the discrete-event simulator: task lifecycle,
// placement-dependent durations, contention and interference, barriers,
// heartbeat batching and failure injection.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "sim/placement.h"
#include "util/units.h"

namespace tetris::sim {
namespace {

// Greedy test scheduler: places every runnable task on the first machine
// where all dimensions fit (no over-allocation).
class GreedyFitScheduler final : public Scheduler {
 public:
  std::string name() const override { return "greedy-fit"; }
  void schedule(SchedulerContext& ctx) override {
    auto groups = ctx.runnable_groups();
    for (auto& g : groups) {
      while (g.runnable > 0) {
        bool placed = false;
        for (int m = 0; m < ctx.num_machines() && !placed; ++m) {
          Probe p = ctx.probe(g.ref, m);
          if (!p.valid) return;
          if (!p.demand.fits_within(ctx.available(m))) continue;
          bool remote_ok = true;
          for (const auto& leg : p.remote) {
            const Resources avail = ctx.available(leg.machine);
            if (leg.disk_read > avail[Resource::kDiskRead] ||
                leg.net_out > avail[Resource::kNetOut]) {
              remote_ok = false;
              break;
            }
          }
          if (remote_ok && ctx.place(p)) {
            g.runnable--;
            placed = true;
          }
        }
        if (!placed) break;
      }
    }
  }
};

// Reckless test scheduler: places every runnable task round-robin across
// machines with NO admission check at all — the over-allocation extreme.
class RecklessScheduler final : public Scheduler {
 public:
  std::string name() const override { return "reckless"; }
  void schedule(SchedulerContext& ctx) override {
    auto groups = ctx.runnable_groups();
    int m = 0;
    for (auto& g : groups) {
      while (g.runnable > 0) {
        Probe p = ctx.probe(g.ref, m % ctx.num_machines());
        if (!p.valid || !ctx.place(p)) break;
        g.runnable--;
        ++m;
      }
    }
  }
};

TaskSpec cpu_task(double cores, double mem_gb, double seconds) {
  TaskSpec t;
  t.peak_cores = cores;
  t.peak_mem = mem_gb * kGB;
  t.cpu_cycles = cores * seconds;
  return t;
}

SimConfig small_cluster(int machines = 2) {
  SimConfig cfg;
  cfg.num_machines = machines;
  cfg.machine_capacity =
      Resources::full(4, 8 * kGB, 100 * kMB, 100 * kMB, 125 * kMB, 125 * kMB);
  cfg.heartbeat_period = 0.5;
  return cfg;
}

TEST(Simulator, SingleTaskCompletesWithNaturalDuration) {
  Workload w;
  JobSpec job;
  job.name = "j";
  job.stages.push_back({"s", {cpu_task(2, 1, 10)}, {}});
  w.jobs.push_back(job);

  GreedyFitScheduler sched;
  const SimResult r = simulate(small_cluster(1), w, sched);

  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.jobs.size(), 1u);
  // Arrives at 0, placed at the t=0 heartbeat, runs 10s of compute.
  EXPECT_NEAR(r.jobs[0].completion_time(), 10.0, 0.6);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_NEAR(r.tasks[0].duration(), 10.0, 1e-6);
}

TEST(Simulator, TasksQueueWhenMachineFull) {
  // Two 4-core tasks on one 4-core machine must serialize.
  Workload w;
  JobSpec job;
  job.stages.push_back({"s", {cpu_task(4, 1, 10), cpu_task(4, 1, 10)}, {}});
  w.jobs.push_back(job);

  GreedyFitScheduler sched;
  const SimResult r = simulate(small_cluster(1), w, sched);

  ASSERT_TRUE(r.completed);
  // Second task starts only after the first finishes and a heartbeat
  // passes: completion ~20-21s, definitely > 19.
  EXPECT_GT(r.jobs[0].completion_time(), 19.0);
  EXPECT_LT(r.jobs[0].completion_time(), 22.0);
}

TEST(Simulator, OverAllocatedCpuSharesProportionally) {
  // Reckless placement of two 4-core tasks on one machine: each gets half
  // the cores, so both take ~20s instead of 10s.
  Workload w;
  JobSpec job;
  job.stages.push_back({"s", {cpu_task(4, 1, 10), cpu_task(4, 1, 10)}, {}});
  w.jobs.push_back(job);

  RecklessScheduler sched;
  const SimResult r = simulate(small_cluster(1), w, sched);

  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.tasks.size(), 2u);
  for (const auto& t : r.tasks) {
    EXPECT_NEAR(t.duration(), 20.0, 1.0);
  }
}

TEST(Simulator, DiskContentionSuffersInterferencePenalty) {
  // Two tasks each demanding the full disk-read bandwidth, co-placed: with
  // pure proportional sharing each would take 2x; the seek penalty makes
  // it strictly worse.
  Workload w;
  JobSpec job;
  StageSpec stage;
  for (int i = 0; i < 2; ++i) {
    TaskSpec t;
    t.peak_cores = 0.5;
    t.peak_mem = 0.5 * kGB;
    t.max_io_bw = 100 * kMB;
    InputSplit split;
    split.bytes = 1000.0 * kMB;  // 10s at full disk bandwidth
    split.replicas = {0};
    t.inputs.push_back(split);
    stage.tasks.push_back(t);
  }
  job.stages.push_back(stage);
  w.jobs.push_back(job);

  RecklessScheduler sched;
  SimConfig cfg = small_cluster(1);
  const SimResult r = simulate(cfg, w, sched);

  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.tasks.size(), 2u);
  const double solo = 10.0;
  for (const auto& t : r.tasks) {
    // 2x from sharing, then /0.94 from the seek penalty (alpha=0.06, two
    // streams): ~21.3s.
    EXPECT_GT(t.duration(), 2.0 * solo * 1.02);
    EXPECT_LT(t.duration(), 2.0 * solo * 1.25);
  }
}

TEST(Simulator, BarrierBlocksDownstreamStage) {
  Workload w;
  JobSpec job;
  StageSpec maps;
  maps.tasks = {cpu_task(1, 1, 10), cpu_task(1, 1, 10)};
  StageSpec reduce;
  reduce.deps = {0};
  reduce.tasks = {cpu_task(1, 1, 5)};
  job.stages.push_back(maps);
  job.stages.push_back(reduce);
  w.jobs.push_back(job);

  GreedyFitScheduler sched;
  const SimResult r = simulate(small_cluster(2), w, sched);

  ASSERT_TRUE(r.completed);
  double maps_done = 0, reduce_start = 1e18;
  for (const auto& t : r.tasks) {
    if (t.stage == 0) maps_done = std::max(maps_done, t.finish);
    if (t.stage == 1) reduce_start = std::min(reduce_start, t.start);
  }
  EXPECT_GE(reduce_start, maps_done);
}

TEST(Simulator, RemoteReadUsesNetworkAndIsSlowerThanLocal) {
  // One disk-read task whose only replica is machine 0; force placement on
  // machine 1 via a scheduler that targets machine 1.
  class PinScheduler final : public Scheduler {
   public:
    explicit PinScheduler(int m) : m_(m) {}
    std::string name() const override { return "pin"; }
    void schedule(SchedulerContext& ctx) override {
      for (auto& g : ctx.runnable_groups()) {
        while (g.runnable > 0) {
          Probe p = ctx.probe(g.ref, m_);
          if (!p.valid || !ctx.place(p)) break;
          g.runnable--;
        }
      }
    }
    int m_;
  };

  const auto make = [] {
    Workload w;
    JobSpec job;
    TaskSpec t;
    t.peak_cores = 0.5;
    t.peak_mem = 0.5 * kGB;
    t.max_io_bw = 200 * kMB;
    InputSplit split;
    split.bytes = 1000.0 * kMB;
    split.replicas = {0};
    t.inputs.push_back(split);
    job.stages.push_back({"s", {t}, {}});
    w.jobs.push_back(job);
    return w;
  };

  PinScheduler local(0), remote(1);
  const SimResult rl = simulate(small_cluster(2), make(), local);
  const SimResult rr = simulate(small_cluster(2), make(), remote);
  ASSERT_TRUE(rl.completed);
  ASSERT_TRUE(rr.completed);
  // Local: bottleneck disk 100 MB/s -> 10s. Remote: NIC 125 MB/s and disk
  // at source 100 MB/s -> still 10s? The demand rate is bytes/duration
  // where duration = bytes/max_io = 5s, so rates of 200 MB/s exceed both
  // disk (100) and NIC (125): remote runs at min share => slower.
  EXPECT_GT(rl.tasks[0].duration(), 9.9);
  EXPECT_GT(rr.tasks[0].duration(), rl.tasks[0].duration() * 0.99);
  // The remote run must have used network (task record keeps placement
  // locality).
  EXPECT_EQ(rr.tasks[0].local_fraction, 0.0);
  EXPECT_EQ(rl.tasks[0].local_fraction, 1.0);
}

TEST(Simulator, FailedTasksReExecuteAndJobStillCompletes) {
  Workload w;
  JobSpec job;
  StageSpec stage;
  for (int i = 0; i < 20; ++i) stage.tasks.push_back(cpu_task(1, 1, 5));
  job.stages.push_back(stage);
  w.jobs.push_back(job);

  SimConfig cfg = small_cluster(2);
  cfg.task_failure_prob = 0.3;
  cfg.seed = 11;
  GreedyFitScheduler sched;
  const SimResult r = simulate(cfg, w, sched);

  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.tasks.size(), 20u);
  int retried = 0;
  for (const auto& t : r.tasks) {
    if (t.attempts > 1) retried++;
  }
  EXPECT_GT(retried, 0);
}

TEST(Simulator, EmptyWorkloadCompletesImmediately) {
  Workload w;
  GreedyFitScheduler sched;
  const SimResult r = simulate(small_cluster(1), w, sched);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 0.0);
}

TEST(Simulator, InvalidWorkloadThrows) {
  Workload w;
  JobSpec job;
  StageSpec s;
  s.deps = {5};  // out of range
  s.tasks = {cpu_task(1, 1, 1)};
  job.stages.push_back(s);
  w.jobs.push_back(job);
  GreedyFitScheduler sched;
  EXPECT_THROW(simulate(small_cluster(1), w, sched), std::invalid_argument);
}

TEST(Simulator, ShuffleReadsComeFromUpstreamOutputLocations) {
  // Two maps pinned (by capacity) across two machines write output; one
  // reduce shuffles it. The reduce must finish and read bytes equal to the
  // map output.
  Workload w;
  JobSpec job;
  StageSpec maps;
  for (int i = 0; i < 2; ++i) {
    TaskSpec t = cpu_task(4, 1, 5);  // full machine -> spread across both
    t.output_bytes = 200 * kMB;
    maps.tasks.push_back(t);
  }
  StageSpec reduce;
  reduce.deps = {0};
  {
    TaskSpec t;
    t.peak_cores = 1;
    t.peak_mem = 1 * kGB;
    t.max_io_bw = 100 * kMB;
    InputSplit split;
    split.bytes = 400 * kMB;
    split.from_stage = 0;
    t.inputs.push_back(split);
    reduce.tasks.push_back(t);
  }
  job.stages.push_back(maps);
  job.stages.push_back(reduce);
  w.jobs.push_back(job);

  GreedyFitScheduler sched;
  const SimResult r = simulate(small_cluster(2), w, sched);
  ASSERT_TRUE(r.completed);
  // Reduce read duration: 400 MB at <=100 MB/s >= 4s.
  for (const auto& t : r.tasks) {
    if (t.stage == 1) {
      EXPECT_GE(t.duration(), 4.0 - 1e-6);
    }
  }
}

TEST(Simulator, TimelineAndUsageSamplesCollected) {
  Workload w;
  JobSpec job;
  StageSpec stage;
  for (int i = 0; i < 8; ++i) stage.tasks.push_back(cpu_task(1, 1, 20));
  job.stages.push_back(stage);
  w.jobs.push_back(job);

  SimConfig cfg = small_cluster(2);
  cfg.collect_timeline = true;
  cfg.timeline_period = 2.0;
  GreedyFitScheduler sched;
  const SimResult r = simulate(cfg, w, sched);
  ASSERT_TRUE(r.completed);
  ASSERT_GT(r.timeline.size(), 3u);
  // 8 single-core tasks on 8 cores: utilization should reach 100% cpu.
  double max_cpu = 0;
  int max_running = 0;
  for (const auto& s : r.timeline) {
    max_cpu = std::max(max_cpu, s.utilization[0]);
    max_running = std::max(max_running, s.running_tasks);
  }
  EXPECT_NEAR(max_cpu, 1.0, 0.01);
  EXPECT_EQ(max_running, 8);
  EXPECT_FALSE(r.machine_usage_samples[0].empty());
}

TEST(Simulator, BackgroundActivityContendsProportionally) {
  // A disk-bound task on machine 0 while ingestion wants the whole disk:
  // both streams share the (interference-degraded) disk, so the task runs
  // at roughly half speed during the overlap.
  Workload w;
  JobSpec job;
  TaskSpec t;
  t.peak_cores = 0.5;
  t.peak_mem = 0.5 * kGB;
  t.max_io_bw = 100 * kMB;
  InputSplit split;
  split.bytes = 500.0 * kMB;  // 5s at full disk
  split.replicas = {0};
  t.inputs.push_back(split);
  job.stages.push_back({"s", {t}, {}});
  w.jobs.push_back(job);

  SimConfig cfg = small_cluster(1);
  BackgroundActivity act;
  act.machine = 0;
  act.start = 1.0;
  act.end = 11.0;
  act.usage[Resource::kDiskRead] = 100 * kMB;  // the whole disk
  cfg.activities.push_back(act);

  GreedyFitScheduler sched;
  const SimResult r = simulate(cfg, w, sched);
  ASSERT_TRUE(r.completed);
  // 1s at full speed (progress 0.2), then ratio = eff/total =
  // (100*0.94)/200 = 0.47 until done: 1 + 0.8*5/0.47 ~ 9.5s.
  EXPECT_GT(r.tasks[0].duration(), 8.0);
  EXPECT_LT(r.tasks[0].duration(), 11.0);
}

}  // namespace
}  // namespace tetris::sim
