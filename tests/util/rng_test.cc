#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/stats.h"

namespace tetris {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) same++;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng a(7);
  Rng child = a.fork();
  const double first = child.uniform(0, 1);
  // A fresh parent forked identically produces the same child stream.
  Rng a2(7);
  Rng child2 = a2.fork();
  EXPECT_EQ(child2.uniform(0, 1), first);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2, 5);
    EXPECT_GE(x, -2);
    EXPECT_LT(x, 5);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.exponential(5.0));
  EXPECT_NEAR(mean(xs), 5.0, 0.2);
}

TEST(Rng, LognormalHitsTargetMeanAndCov) {
  Rng rng(13);
  for (const double cov : {0.3, 1.0, 2.6}) {
    std::vector<double> xs;
    for (int i = 0; i < 200000; ++i) {
      xs.push_back(rng.lognormal_mean_cov(10.0, cov));
    }
    const auto s = summarize(xs);
    EXPECT_NEAR(s.mean, 10.0, 10.0 * 0.05 * (1 + cov)) << "cov=" << cov;
    EXPECT_NEAR(s.cov, cov, cov * 0.15) << "cov=" << cov;
  }
}

TEST(Rng, LognormalZeroCovIsDeterministic) {
  Rng rng(1);
  EXPECT_EQ(rng.lognormal_mean_cov(7.0, 0.0), 7.0);
}

TEST(Rng, LognormalRejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.lognormal_mean_cov(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.lognormal_mean_cov(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.lognormal_mean_cov(1.0, -0.1), std::invalid_argument);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.bounded_pareto(2.0, 100.0, 1.1);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(Rng, BoundedParetoIsHeavyTailed) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i)
    xs.push_back(rng.bounded_pareto(1.0, 1000.0, 1.1));
  const auto s = summarize(xs);
  // Median near the low bound, mean pulled well above it by the tail.
  EXPECT_LT(s.p50, 3.0);
  EXPECT_GT(s.mean, 2.0 * s.p50);
  EXPECT_GT(s.max, 100.0);
}

TEST(Rng, BoundedParetoRejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.bounded_pareto(0, 10, 1), std::invalid_argument);
  EXPECT_THROW(rng.bounded_pareto(5, 5, 1), std::invalid_argument);
  EXPECT_THROW(rng.bounded_pareto(1, 10, 0), std::invalid_argument);
}

TEST(Rng, WeightedPickFollowsWeights) {
  Rng rng(23);
  const double weights[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.weighted_pick(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, WeightedPickRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_pick({}), std::invalid_argument);
  const double zeros[] = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_pick(zeros), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    const auto picks = rng.sample_without_replacement(20, 5);
    ASSERT_EQ(picks.size(), 5u);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 5u);
    for (auto p : picks) EXPECT_LT(p, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementCapsAtPopulation) {
  Rng rng(31);
  const auto picks = rng.sample_without_replacement(3, 10);
  EXPECT_EQ(picks.size(), 3u);
}

TEST(Rng, SampleWithoutReplacementIsUnbiased) {
  Rng rng(37);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    for (auto p : rng.sample_without_replacement(10, 3)) counts[p]++;
  }
  // Each index should be picked ~ 20000 * 3/10 = 6000 times.
  for (int c : counts) EXPECT_NEAR(c, 6000, 400);
}

}  // namespace
}  // namespace tetris
