// ThreadPool unit layer (DESIGN.md §9): lifecycle, exception propagation
// out of workers, and the deadlock-prone corners — empty batches and
// nested submits from inside a worker — that a scheduling pass would hit
// in the wild. All tests must also run clean under TSan (`ctest -L tsan`).
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tetris::util {
namespace {

TEST(ThreadPoolTest, RejectsNonPositiveThreadCounts) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  EXPECT_THROW(ThreadPool(-3), std::invalid_argument);
}

TEST(ThreadPoolTest, StartupAndShutdownWithoutWork) {
  // The destructor must join idle workers promptly: constructing and
  // destroying pools repeatedly may not deadlock or leak threads.
  for (int i = 0; i < 10; ++i) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
  }
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  // The scheduler reuses one pool for every pass; state from one batch
  // must not bleed into the next.
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(round + 1, [&](int i) { sum += i + 1; });
    EXPECT_EQ(sum.load(), (round + 1) * (round + 2) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, ZeroAndNegativeTaskCountsReturnImmediately) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](int) { calls++; });
  pool.parallel_for(-5, [&](int) { calls++; });
  EXPECT_EQ(calls, 0);
  // The pool must still be usable afterwards.
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](int) { ran++; });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolTest, PropagatesWorkerExceptionWithLowestIndex) {
  ThreadPool pool(4);
  // Several indices throw; the batch still completes every non-throwing
  // index, and the lowest failing index's exception surfaces.
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(100, [&](int i) {
      if (i % 30 == 7) throw std::runtime_error("boom " + std::to_string(i));
      completed++;
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");
  }
  EXPECT_EQ(completed.load(), 96);  // 100 minus indices 7, 37, 67, 97
  // The pool survives a throwing batch.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](int) { ran++; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, NestedSubmitRunsInlineWithoutDeadlock) {
  // A nested parallel_for from inside a worker cannot wait on the pool —
  // every worker may already be busy in the outer batch — so it must run
  // inline on the submitting thread and still cover every index.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](int) {
    pool.parallel_for(5, [&](int j) { inner_total += j + 1; });
  });
  EXPECT_EQ(inner_total.load(), 8 * 15);
}

TEST(ThreadPoolTest, NestedSubmitPropagatesExceptions) {
  ThreadPool pool(2);
  std::atomic<int> outer_failures{0};
  pool.parallel_for(4, [&](int) {
    try {
      pool.parallel_for(3, [&](int j) {
        if (j == 1) throw std::logic_error("inner");
      });
    } catch (const std::logic_error&) {
      outer_failures++;
    }
  });
  EXPECT_EQ(outer_failures.load(), 4);
}

TEST(ThreadPoolTest, WorkIsSharedAcrossThreads) {
  // Not a scheduling guarantee — indices are claimed dynamically — but
  // with many slow tasks and several workers, more than one thread must
  // participate, or the pool is a pessimization.
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  pool.parallel_for(64, [&](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 2u);
}

}  // namespace
}  // namespace tetris::util
