#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tetris {
namespace {

TEST(Stats, MeanAndStdevKnownValues) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stdev(xs), 2.138, 1e-3);  // sample stdev
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stdev({}), 0.0);
  EXPECT_EQ(stdev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 17.5);
}

TEST(Stats, PercentileHandlesUnsortedInput) {
  const std::vector<double> xs = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
}

TEST(Stats, PercentileClampsOutOfRangeP) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 1);
  EXPECT_DOUBLE_EQ(percentile(xs, 120), 3);
}

TEST(Stats, PercentileOfEmptyIsZero) { EXPECT_EQ(percentile({}, 50), 0.0); }

TEST(Stats, SummarizeFillsEveryField) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_GT(s.cov, 0);
}

TEST(Stats, CorrelationPerfectPositive) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {10, 20, 30, 40};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
}

TEST(Stats, CorrelationPerfectNegative) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, ys), -1.0, 1e-12);
}

TEST(Stats, CorrelationOfConstantIsZero) {
  const std::vector<double> xs = {5, 5, 5};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_EQ(pearson_correlation(xs, ys), 0.0);
}

TEST(Stats, CorrelationRejectsLengthMismatch) {
  EXPECT_THROW(pearson_correlation(std::vector<double>{1.0},
                                   std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Stats, EmpiricalCdfIsSortedAndEndsAtOne) {
  const std::vector<double> xs = {3, 1, 2};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_EQ(cdf[0].value, 1);
  EXPECT_EQ(cdf[2].value, 3);
  EXPECT_NEAR(cdf[0].fraction, 1.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(Stats, FractionAboveCountsStrictly) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(fraction_above(xs, 2), 0.5);
  EXPECT_DOUBLE_EQ(fraction_above(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_above(xs, 4), 0.0);
  EXPECT_DOUBLE_EQ(fraction_above({}, 1), 0.0);
}

TEST(Histogram2D, BinsAndCounts) {
  Histogram2D h(2, 2);
  h.add(0.1, 0.1);
  h.add(0.9, 0.1);
  h.add(0.9, 0.9);
  h.add(0.9, 0.9);
  EXPECT_EQ(h.count(0, 0), 1u);
  EXPECT_EQ(h.count(1, 0), 1u);
  EXPECT_EQ(h.count(1, 1), 2u);
  EXPECT_EQ(h.count(0, 1), 0u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram2D, ClampsOutOfRangeInput) {
  Histogram2D h(4, 4);
  h.add(-1.0, 2.0);
  EXPECT_EQ(h.count(0, 3), 1u);
  h.add(1.0, 1.0);  // exactly 1.0 lands in the last bin
  EXPECT_EQ(h.count(3, 3), 1u);
}

TEST(Histogram2D, CsvListsOnlyNonEmptyCells) {
  Histogram2D h(3, 3);
  h.add(0.5, 0.5);
  const std::string csv = h.to_csv();
  EXPECT_NE(csv.find("bin_x,bin_y,count"), std::string::npos);
  EXPECT_NE(csv.find("1,1,1"), std::string::npos);
  // header + 1 row + trailing newline
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(Histogram2D, RejectsZeroBins) {
  EXPECT_THROW(Histogram2D(0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram2D(3, 0), std::invalid_argument);
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stdev(), stdev(xs), 1e-12);
  EXPECT_EQ(rs.max(), 9);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.add(-3);
  EXPECT_EQ(rs.mean(), -3);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.max(), -3);
}

// Property sweep: percentile is monotone in p for random-ish data.
class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInP) {
  std::vector<double> xs;
  unsigned long long h = static_cast<unsigned long long>(GetParam());
  for (int i = 0; i < 50; ++i) {
    h = h * 6364136223846793005ull + 1442695040888963407ull;
    xs.push_back(static_cast<double>(h % 1000));
  }
  double prev = percentile(xs, 0);
  for (double p = 5; p <= 100; p += 5) {
    const double cur = percentile(xs, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tetris
