// util::LatencyHistogram: the fixed-size quantile sketch behind
// SimResult::pass_latency. The contract is ±12.5% bucket resolution over
// 1 ns .. thousands of seconds in O(1) memory — tight enough for p50/p99
// reporting, checked here against exact sample sets.
#include "util/histogram.h"

#include <gtest/gtest.h>

namespace tetris::util {
namespace {

TEST(LatencyHistogramTest, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_seconds(0.5), 0.0);
  EXPECT_EQ(h.quantile_seconds(0.99), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleQuantileIsItsBucket) {
  LatencyHistogram h;
  h.add_seconds(1e-3);  // 1 ms
  EXPECT_EQ(h.count(), 1u);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_NEAR(h.quantile_seconds(q), 1e-3, 1e-3 * 0.13) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, QuantilesResolveWithinBucketWidth) {
  LatencyHistogram h;
  // 99 samples at 1 ms, one at 1 s: p50 must sit near 1 ms, p99+ near 1 s.
  for (int i = 0; i < 99; ++i) h.add_seconds(1e-3);
  h.add_seconds(1.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.quantile_seconds(0.50), 1e-3, 1e-3 * 0.13);
  EXPECT_NEAR(h.quantile_seconds(0.90), 1e-3, 1e-3 * 0.13);
  EXPECT_NEAR(h.quantile_seconds(1.0), 1.0, 1.0 * 0.13);
}

TEST(LatencyHistogramTest, MonotoneAcrossQuantiles) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add_nanos(std::uint64_t(i) * 1000);
  double prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = h.quantile_seconds(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  // Uniform 1..1000 us: the median bucket must straddle ~500 us.
  EXPECT_NEAR(h.quantile_seconds(0.5), 500e-6, 500e-6 * 0.15);
}

TEST(LatencyHistogramTest, SubNanosecondAndZeroClampToOneNano) {
  LatencyHistogram h;
  h.add_seconds(0.0);
  h.add_seconds(1e-12);
  h.add_nanos(0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.quantile_seconds(0.5), 1e-9, 1e-9 * 0.5);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedStream) {
  LatencyHistogram a, b, both;
  for (int i = 0; i < 50; ++i) {
    a.add_seconds(2e-3);
    both.add_seconds(2e-3);
  }
  for (int i = 0; i < 50; ++i) {
    b.add_seconds(8e-3);
    both.add_seconds(8e-3);
  }
  a += b;
  EXPECT_EQ(a.count(), both.count());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile_seconds(q), both.quantile_seconds(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, HugeLatenciesStayInRange) {
  LatencyHistogram h;
  h.add_seconds(4000.0);  // ~2^42 ns, well inside the 64-octave range
  EXPECT_NEAR(h.quantile_seconds(0.5), 4000.0, 4000.0 * 0.13);
}

}  // namespace
}  // namespace tetris::util
