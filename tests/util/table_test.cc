#include "util/table.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace tetris {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h", "x"});
  t.add_row({"longcell", "1"});
  const std::string s = t.to_string();
  // The header line pads "h" to at least the width of "longcell".
  const auto first_line = s.substr(0, s.find('\n'));
  EXPECT_GE(first_line.find('x'), std::string("longcell").size());
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, AddRowValuesFormatsDoubles) {
  Table t({"a", "b"});
  t.add_row_values({1.23456, 2.0}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(Table, CsvEscapesSeparatorsAndQuotes) {
  Table t({"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t({"a"});
  t.add_row({"plain"});
  EXPECT_EQ(t.to_csv(), "a\nplain\n");
}

TEST(FormatHelpers, Doubles) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(FormatHelpers, Percent) {
  EXPECT_EQ(format_percent(0.283), "28.3%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
  EXPECT_EQ(format_percent(-0.05, 1), "-5.0%");
}

TEST(WriteFile, CreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "tetris_table_test" / "nested";
  const auto path = dir / "out.txt";
  std::filesystem::remove_all(dir.parent_path());
  ASSERT_TRUE(write_file(path.string(), "hello"));
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hello");
  std::filesystem::remove_all(dir.parent_path());
}

TEST(WriteFile, OverwritesExisting) {
  const auto path =
      std::filesystem::temp_directory_path() / "tetris_overwrite.txt";
  ASSERT_TRUE(write_file(path.string(), "first"));
  ASSERT_TRUE(write_file(path.string(), "second"));
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "second");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tetris
