#include "util/resources.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tetris {
namespace {

TEST(Resources, DefaultIsZero) {
  Resources r;
  EXPECT_TRUE(r.is_zero());
  for (Resource d : all_resources()) EXPECT_EQ(r[d], 0.0);
}

TEST(Resources, OfShorthandFillsPairedDimensions) {
  const Resources r = Resources::of(4, 16, 100, 125);
  EXPECT_EQ(r.cpu(), 4);
  EXPECT_EQ(r.mem(), 16);
  EXPECT_EQ(r.disk_read(), 100);
  EXPECT_EQ(r.disk_write(), 100);
  EXPECT_EQ(r.net_in(), 125);
  EXPECT_EQ(r.net_out(), 125);
}

TEST(Resources, FullSetsEachDimension) {
  const Resources r = Resources::full(1, 2, 3, 4, 5, 6);
  EXPECT_EQ(r[Resource::kCpu], 1);
  EXPECT_EQ(r[Resource::kMem], 2);
  EXPECT_EQ(r[Resource::kDiskRead], 3);
  EXPECT_EQ(r[Resource::kDiskWrite], 4);
  EXPECT_EQ(r[Resource::kNetIn], 5);
  EXPECT_EQ(r[Resource::kNetOut], 6);
}

TEST(Resources, UniformFillsAll) {
  const Resources r = Resources::uniform(2.5);
  for (Resource d : all_resources()) EXPECT_EQ(r[d], 2.5);
}

TEST(Resources, ArithmeticIsComponentWise) {
  const Resources a = Resources::full(1, 2, 3, 4, 5, 6);
  const Resources b = Resources::full(6, 5, 4, 3, 2, 1);
  const Resources sum = a + b;
  for (Resource d : all_resources()) EXPECT_EQ(sum[d], 7.0);
  const Resources diff = sum - b;
  EXPECT_EQ(diff, a);
  const Resources scaled = a * 2.0;
  EXPECT_EQ(scaled[Resource::kNetOut], 12);
  EXPECT_EQ((2.0 * a), scaled);
  EXPECT_EQ((scaled / 2.0), a);
}

TEST(Resources, FitsWithinExact) {
  const Resources cap = Resources::of(4, 8, 100, 125);
  EXPECT_TRUE(cap.fits_within(cap));
  EXPECT_TRUE(Resources{}.fits_within(cap));
  Resources over = cap;
  over[Resource::kCpu] += 0.01;
  EXPECT_FALSE(over.fits_within(cap));
}

TEST(Resources, FitsWithinToleratesRepresentationNoise) {
  const Resources cap = Resources::of(4, 8e9, 1e8, 1.25e8);
  Resources almost = cap;
  almost[Resource::kMem] += 1e-3;  // far below eps * 8e9
  EXPECT_TRUE(almost.fits_within(cap));
}

TEST(Resources, FitsWithinChecksEveryDimension) {
  const Resources cap = Resources::uniform(10);
  for (Resource d : all_resources()) {
    Resources r;
    r[d] = 11;
    EXPECT_FALSE(r.fits_within(cap)) << resource_name(d);
    r[d] = 9;
    EXPECT_TRUE(r.fits_within(cap)) << resource_name(d);
  }
}

TEST(Resources, NormalizedByDividesComponentWise) {
  const Resources r = Resources::full(2, 4, 8, 16, 32, 64);
  const Resources denom = Resources::uniform(4);
  const Resources n = r.normalized_by(denom);
  EXPECT_DOUBLE_EQ(n[Resource::kCpu], 0.5);
  EXPECT_DOUBLE_EQ(n[Resource::kNetOut], 16);
}

TEST(Resources, NormalizedByZeroDenominatorYieldsZero) {
  const Resources r = Resources::uniform(5);
  Resources denom = Resources::uniform(2);
  denom[Resource::kMem] = 0;
  const Resources n = r.normalized_by(denom);
  EXPECT_EQ(n[Resource::kMem], 0);
  EXPECT_EQ(n[Resource::kCpu], 2.5);
}

TEST(Resources, CwiseMinMax) {
  const Resources a = Resources::full(1, 5, 2, 6, 3, 7);
  const Resources b = Resources::full(4, 2, 5, 3, 6, 4);
  const Resources mn = a.cwise_min(b);
  const Resources mx = a.cwise_max(b);
  EXPECT_EQ(mn, Resources::full(1, 2, 2, 3, 3, 4));
  EXPECT_EQ(mx, Resources::full(4, 5, 5, 6, 6, 7));
}

TEST(Resources, ClampedTo) {
  Resources r = Resources::full(-1, 5, 100, 3, 0, 9);
  const Resources hi = Resources::uniform(4);
  const Resources c = r.clamped_to(hi);
  EXPECT_EQ(c, Resources::full(0, 4, 4, 3, 0, 4));
}

TEST(Resources, MaxZeroFloorsNegatives) {
  Resources r = Resources::full(-1, 2, -3, 4, -5, 6);
  EXPECT_EQ(r.max_zero(), Resources::full(0, 2, 0, 4, 0, 6));
}

TEST(Resources, DotAndSum) {
  const Resources a = Resources::full(1, 2, 3, 4, 5, 6);
  const Resources b = Resources::uniform(2);
  EXPECT_DOUBLE_EQ(a.dot(b), 42);
  EXPECT_DOUBLE_EQ(a.sum(), 21);
}

TEST(Resources, Norms) {
  Resources r;
  r[Resource::kCpu] = 3;
  r[Resource::kMem] = 4;
  EXPECT_DOUBLE_EQ(r.l2_norm(), 5);
  EXPECT_DOUBLE_EQ(r.max_component(), 4);
  EXPECT_DOUBLE_EQ(r.min_component(), 0);
}

TEST(Resources, IsNonNegative) {
  EXPECT_TRUE(Resources::uniform(1).is_non_negative());
  EXPECT_TRUE(Resources{}.is_non_negative());
  Resources r;
  r[Resource::kDiskRead] = -1;
  EXPECT_FALSE(r.is_non_negative());
  r[Resource::kDiskRead] = -1e-12;  // within slack
  EXPECT_TRUE(r.is_non_negative());
}

TEST(Resources, StreamFormatNamesEveryDimension) {
  std::ostringstream os;
  os << Resources::uniform(1);
  const std::string s = os.str();
  for (Resource d : all_resources()) {
    EXPECT_NE(s.find(resource_name(d)), std::string::npos);
  }
}

TEST(Resources, ResourceNamesAreUniqueAndNonEmpty) {
  std::vector<std::string_view> names;
  for (Resource d : all_resources()) {
    EXPECT_FALSE(resource_name(d).empty());
    names.push_back(resource_name(d));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

// Property sweep: a + b - b == a over a grid of magnitudes (no drift at
// the scales the simulator uses, bytes to GB).
class ResourcesScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(ResourcesScaleTest, AddSubRoundTrips) {
  const double scale = GetParam();
  const Resources a = Resources::full(1, 2, 3, 4, 5, 6) * scale;
  const Resources b = Resources::full(6, 5, 4, 3, 2, 1) * scale;
  const Resources round = (a + b) - b;
  for (Resource d : all_resources()) {
    EXPECT_NEAR(round[d], a[d], 1e-9 * scale);
  }
}

TEST_P(ResourcesScaleTest, FitsWithinSelfAtScale) {
  const Resources cap = Resources::uniform(GetParam());
  EXPECT_TRUE(cap.fits_within(cap));
}

INSTANTIATE_TEST_SUITE_P(Scales, ResourcesScaleTest,
                         ::testing::Values(1e-6, 1.0, 1e3, 1e9, 1e12));

}  // namespace
}  // namespace tetris
