// ResourcePlanes (DESIGN.md §12): the SoA mirror of an array-of-structs
// `std::vector<Resources>` must track it bit for bit through arbitrary
// mutation sequences — the same ops the scheduler context applies on
// placement commit (sub_max_zero) and preemption refund (add_cwise_min) —
// and the zero padding past the last real lane must never be disturbed.
#include "util/soa_planes.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "util/resources.h"

namespace tetris::util {
namespace {

Resources random_resources(std::mt19937_64& rng, double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  Resources r;
  for (std::size_t i = 0; i < kNumResources; ++i) r.at(i) = d(rng);
  return r;
}

void expect_padding_zero(const ResourcePlanes& p) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    for (std::size_t l = p.lanes(); l < p.padded_lanes(); ++l) {
      EXPECT_EQ(p.plane(r)[l], 0.0) << "plane " << r << " pad lane " << l;
    }
  }
}

TEST(ResourcePlanesTest, ResetRoundsUpToPadAndZeroes) {
  for (const std::size_t lanes : {0u, 1u, 7u, 8u, 9u, 13u, 64u}) {
    ResourcePlanes p(lanes);
    EXPECT_EQ(p.lanes(), lanes);
    EXPECT_GE(p.padded_lanes(), std::max<std::size_t>(
                                    lanes, ResourcePlanes::kLanePad));
    EXPECT_EQ(p.padded_lanes() % ResourcePlanes::kLanePad, 0u);
    for (std::size_t r = 0; r < kNumResources; ++r)
      for (std::size_t l = 0; l < p.padded_lanes(); ++l)
        EXPECT_EQ(p.plane(r)[l], 0.0);
    for (std::size_t l = 0; l < lanes; ++l)
      EXPECT_EQ(p.gather(l), Resources());
  }
}

TEST(ResourcePlanesTest, SetGatherRoundTrips) {
  ResourcePlanes p(5);
  std::mt19937_64 rng(7);
  std::vector<Resources> want(5);
  for (std::size_t l = 0; l < 5; ++l) {
    want[l] = random_resources(rng, -2.0, 10.0);
    p.set(l, want[l]);
  }
  for (std::size_t l = 0; l < 5; ++l) EXPECT_EQ(p.gather(l), want[l]);
  expect_padding_zero(p);
}

// The core property: a long randomized stream of set / sub_max_zero /
// add_cwise_min against a scalar Resources model stays bit-identical lane
// by lane, the planes stay identical_to a from-scratch rebuild of the
// model, and the padding stays zero throughout. Lane counts straddle the
// pad boundary on purpose.
TEST(ResourcePlanesTest, RandomizedMutationsMatchScalarModelAndRebuild) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const std::size_t lanes : {3u, 8u, 13u}) {
      std::mt19937_64 rng(seed * 1000 + lanes);
      std::uniform_int_distribution<int> pick_lane(
          0, static_cast<int>(lanes) - 1);
      std::uniform_int_distribution<int> pick_op(0, 2);

      ResourcePlanes p(lanes);
      std::vector<Resources> model(lanes);
      const Resources cap = random_resources(rng, 4.0, 16.0);

      for (int step = 0; step < 500; ++step) {
        const auto l = static_cast<std::size_t>(pick_lane(rng));
        switch (pick_op(rng)) {
          case 0: {
            const Resources v = random_resources(rng, 0.0, 12.0);
            p.set(l, v);
            model[l] = v;
            break;
          }
          case 1: {
            // Oversized deltas exercise the max-zero clamp.
            const Resources d = random_resources(rng, 0.0, 15.0);
            p.sub_max_zero(l, d);
            model[l] = (model[l] - d).max_zero();
            break;
          }
          default: {
            const Resources d = random_resources(rng, 0.0, 15.0);
            p.add_cwise_min(l, d, cap);
            model[l] = (model[l] + d).cwise_min(cap);
            break;
          }
        }
        ASSERT_EQ(p.gather(l), model[l]) << "seed " << seed << " lanes "
                                         << lanes << " step " << step;
      }

      for (std::size_t l = 0; l < lanes; ++l)
        EXPECT_EQ(p.gather(l), model[l]);
      EXPECT_TRUE(p.identical_to(ResourcePlanes::rebuilt_from(model)));
      expect_padding_zero(p);
    }
  }
}

TEST(ResourcePlanesTest, IdenticalToIsExactIncludingPadding) {
  std::vector<Resources> v = {Resources::of(1, 2, 3, 4),
                              Resources::of(5, 6, 7, 8)};
  const ResourcePlanes a = ResourcePlanes::rebuilt_from(v);
  ResourcePlanes b = ResourcePlanes::rebuilt_from(v);
  EXPECT_TRUE(a.identical_to(b));

  // Any single-bit lane difference breaks it.
  b.set(1, Resources::of(5, 6, 7, 8.0000000001));
  EXPECT_FALSE(a.identical_to(b));

  // Different lane counts are never identical, even when the shared lanes
  // agree.
  v.push_back(Resources());
  EXPECT_FALSE(a.identical_to(ResourcePlanes::rebuilt_from(v)));
}

TEST(ResourcePlanesTest, PlanesAreContiguousPerDimension) {
  ResourcePlanes p(3);
  p.set(0, Resources::full(1, 2, 3, 4, 5, 6));
  p.set(1, Resources::full(10, 20, 30, 40, 50, 60));
  p.set(2, Resources::full(100, 200, 300, 400, 500, 600));
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const double* lane = p.plane(r);
    EXPECT_EQ(lane[0], p.gather(0).at(r));
    EXPECT_EQ(lane[1], p.gather(1).at(r));
    EXPECT_EQ(lane[2], p.gather(2).at(r));
  }
}

}  // namespace
}  // namespace tetris::util
