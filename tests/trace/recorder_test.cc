// Unit tests for the trace subsystem's storage layers (DESIGN.md §10):
// wire encoding round trips bit-exactly, the recorder's per-thread ring
// buffers merge into one globally-ordered stream, the file format rejects
// corruption cleanly, and the comparison helpers implement the replay
// contract (semantic fields with ==, wall-clock `timing` ignored).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "trace/event.h"
#include "trace/io.h"
#include "trace/recorder.h"
#include "trace/replayer.h"
#include "trace/wire.h"

namespace tetris::trace {
namespace {

Event full_event() {
  Event ev;
  ev.kind = EventKind::kPlacement;
  ev.time = 123.4567890123;
  ev.a = -1;
  ev.b = std::numeric_limits<std::int64_t>::min();
  ev.c = std::numeric_limits<std::int64_t>::max();
  ev.d = 7;
  ev.e = -42;
  ev.f = 1;
  ev.x = 0.1;  // not exactly representable: bit-exactness matters
  ev.y = -0.0;
  ev.z = std::numeric_limits<double>::denorm_min();
  ev.w = -1e308;
  ev.timing = -5;
  return ev;
}

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

TEST(Wire, RoundTripsAllFieldsBitExact) {
  const Event in = full_event();
  std::vector<std::uint8_t> buf;
  wire::encode_event(buf, in);

  wire::Reader r(buf.data(), buf.size());
  Event out;
  ASSERT_TRUE(wire::decode_event(r, &out));
  EXPECT_TRUE(r.done());

  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(bits_of(out.time), bits_of(in.time));
  EXPECT_EQ(out.a, in.a);
  EXPECT_EQ(out.b, in.b);
  EXPECT_EQ(out.c, in.c);
  EXPECT_EQ(out.d, in.d);
  EXPECT_EQ(out.e, in.e);
  EXPECT_EQ(out.f, in.f);
  EXPECT_EQ(bits_of(out.x), bits_of(in.x));
  EXPECT_EQ(bits_of(out.y), bits_of(in.y));  // -0.0 keeps its sign bit
  EXPECT_TRUE(std::signbit(out.y));
  EXPECT_EQ(bits_of(out.z), bits_of(in.z));
  EXPECT_EQ(bits_of(out.w), bits_of(in.w));
  EXPECT_EQ(out.timing, in.timing);
  EXPECT_TRUE(semantic_equal(in, out));
}

TEST(Wire, ElidesZeroFields) {
  Event ev;
  ev.kind = EventKind::kJobArrival;
  ev.time = 1.0;
  std::vector<std::uint8_t> buf;
  wire::encode_event(buf, ev);
  // kind(1) + mask(1) + time(8): all-zero optional fields cost nothing.
  EXPECT_EQ(buf.size(), 10u);

  wire::Reader r(buf.data(), buf.size());
  Event out;
  ASSERT_TRUE(wire::decode_event(r, &out));
  EXPECT_TRUE(semantic_equal(ev, out));
  EXPECT_EQ(out.timing, 0);
}

TEST(Wire, RejectsUnknownKindAndBadMask) {
  std::vector<std::uint8_t> buf;
  wire::encode_event(buf, full_event());
  {
    std::vector<std::uint8_t> bad = buf;
    bad[0] = kNumEventKinds;  // one past the last valid kind
    wire::Reader r(bad.data(), bad.size());
    Event out;
    EXPECT_FALSE(wire::decode_event(r, &out));
  }
  {
    // A mask with bits above the defined field range is corruption.
    std::vector<std::uint8_t> bad;
    bad.push_back(static_cast<std::uint8_t>(EventKind::kJobArrival));
    wire::put_varint(bad, std::uint64_t{1} << 11);
    wire::put_f64(bad, 1.0);
    wire::Reader r(bad.data(), bad.size());
    Event out;
    EXPECT_FALSE(wire::decode_event(r, &out));
  }
}

TEST(Wire, RejectsTruncation) {
  std::vector<std::uint8_t> buf;
  wire::encode_event(buf, full_event());
  for (std::size_t n = 0; n < buf.size(); ++n) {
    wire::Reader r(buf.data(), n);
    Event out;
    EXPECT_FALSE(wire::decode_event(r, &out)) << "prefix length " << n;
  }
}

TEST(Recorder, DisabledRecorderIsANoOp) {
  Recorder rec;  // TraceConfig{}.enabled == false
  EXPECT_FALSE(rec.enabled());
  rec.record(full_event());
  EXPECT_EQ(rec.recorded(), 0u);
  const TraceLog log = rec.take_log();
  EXPECT_TRUE(log.events.empty());
  EXPECT_EQ(log.dropped, 0u);
}

TraceConfig enabled_config() {
  TraceConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(Recorder, DrainsEventsInRecordOrder) {
  Recorder rec(enabled_config());
  for (int i = 0; i < 100; ++i) {
    Event ev;
    ev.kind = EventKind::kJobArrival;
    ev.time = i;
    ev.a = i;
    rec.record(ev);
  }
  EXPECT_EQ(rec.recorded(), 100u);
  const TraceLog log = rec.take_log();
  EXPECT_EQ(log.dropped, 0u);
  ASSERT_EQ(log.events.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(log.events[i].a, i);
}

TEST(Recorder, TakeLogResetsForTheNextRun) {
  Recorder rec(enabled_config());
  Event ev;
  ev.kind = EventKind::kPassBegin;
  ev.a = 1;
  rec.record(ev);
  EXPECT_EQ(rec.take_log().events.size(), 1u);

  // Recording again from the same thread reuses the cached buffer; the
  // drained events must not reappear.
  ev.a = 2;
  rec.record(ev);
  const TraceLog second = rec.take_log();
  ASSERT_EQ(second.events.size(), 1u);
  EXPECT_EQ(second.events[0].a, 2);
  EXPECT_TRUE(rec.take_log().events.empty());
}

TEST(Recorder, RingOverflowDropsOldestKeepsTail) {
  TraceConfig cfg = enabled_config();
  cfg.chunk_bytes = 256;
  cfg.max_chunks_per_thread = 2;
  Recorder rec(cfg);
  const int kTotal = 2000;
  for (int i = 0; i < kTotal; ++i) {
    Event ev;
    ev.kind = EventKind::kJobArrival;
    ev.a = i;
    rec.record(ev);
  }
  const TraceLog log = rec.take_log();
  EXPECT_GT(log.dropped, 0u);
  EXPECT_EQ(log.dropped + log.events.size(), static_cast<std::size_t>(kTotal));
  ASSERT_FALSE(log.events.empty());
  // Whole-oldest-chunk dropping keeps the tail: the surviving window is
  // the contiguous run ending at the last record.
  EXPECT_EQ(log.events.back().a, kTotal - 1);
  for (std::size_t i = 1; i < log.events.size(); ++i) {
    EXPECT_EQ(log.events[i].a, log.events[i - 1].a + 1);
  }
}

TEST(Recorder, MergesThreadStreamsByGlobalSequence) {
  TraceConfig cfg = enabled_config();
  cfg.max_chunks_per_thread = 1024;
  Recorder rec(cfg);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Event ev;
        ev.kind = EventKind::kShardTiming;
        ev.a = t;
        ev.b = i;
        rec.record(ev);
      }
    });
  }
  for (auto& w : workers) w.join();

  const TraceLog log = rec.take_log();
  EXPECT_EQ(log.dropped, 0u);
  ASSERT_EQ(log.events.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // The global interleaving is nondeterministic, but each thread's records
  // must appear in its own program order.
  std::vector<std::int64_t> next(kThreads, 0);
  for (const Event& ev : log.events) {
    ASSERT_GE(ev.a, 0);
    ASSERT_LT(ev.a, kThreads);
    EXPECT_EQ(ev.b, next[static_cast<std::size_t>(ev.a)]++);
  }
}

TraceLog sample_log() {
  TraceLog log;
  log.scheduler = "tetris-opt";
  log.seed = 42;
  log.dropped = 7;
  Event begin;
  begin.kind = EventKind::kRunBegin;
  begin.a = 42;
  log.events.push_back(begin);
  log.events.push_back(full_event());
  Event end;
  end.kind = EventKind::kRunEnd;
  end.time = 99.5;
  end.a = 3;
  log.events.push_back(end);
  return log;
}

TEST(TraceIo, FileRoundTripPreservesEverything) {
  const TraceLog in = sample_log();
  const std::string path = ::testing::TempDir() + "/roundtrip.trace";
  write_log_file(path, in);
  const TraceLog out = read_log_file(path);

  EXPECT_EQ(out.scheduler, in.scheduler);
  EXPECT_EQ(out.seed, in.seed);
  EXPECT_EQ(out.dropped, in.dropped);
  ASSERT_EQ(out.events.size(), in.events.size());
  for (std::size_t i = 0; i < in.events.size(); ++i) {
    EXPECT_TRUE(semantic_equal(in.events[i], out.events[i])) << i;
    EXPECT_EQ(in.events[i].timing, out.events[i].timing) << i;
  }
  EXPECT_TRUE(first_divergence(in, out).identical);
}

TEST(TraceIo, RejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/bad_magic.trace";
  std::ofstream(path, std::ios::binary) << "definitely not a trace log";
  EXPECT_THROW(read_log_file(path), std::runtime_error);
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW(read_log_file(::testing::TempDir() + "/no_such.trace"),
               std::runtime_error);
}

TEST(TraceIo, RejectsUnsupportedVersion) {
  std::vector<std::uint8_t> bytes = serialize_log(sample_log());
  bytes[8] = 0x7F;  // the version varint sits right after the 8-byte magic
  EXPECT_THROW(deserialize_log(bytes.data(), bytes.size()),
               std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedStream) {
  const std::vector<std::uint8_t> bytes = serialize_log(sample_log());
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() - 9,
                                bytes.size() / 2, std::size_t{9}}) {
    EXPECT_THROW(deserialize_log(bytes.data(), cut), std::runtime_error)
        << "prefix length " << cut;
  }
}

TEST(Compare, TimingFieldIsNeverSemantic) {
  Event a = full_event();
  Event b = a;
  b.timing = 999999;
  EXPECT_TRUE(semantic_equal(a, b));

  TraceLog la, lb;
  la.events = {a};
  lb.events = {b};
  EXPECT_TRUE(first_divergence(la, lb, CompareMode::kFull).identical);
}

TEST(Compare, ReportsFirstDivergentIndexWithBothSides) {
  TraceLog a = sample_log();
  TraceLog b = a;
  b.events[1].x += 1e-9;  // any drift, however small, is a divergence
  const Divergence d = first_divergence(a, b);
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.index, 1u);
  EXPECT_NE(d.description.find("lhs"), std::string::npos);
  EXPECT_NE(d.description.find("rhs"), std::string::npos);
}

TEST(Compare, PrefixDivergesAtTheShorterLength) {
  TraceLog a = sample_log();
  TraceLog b = a;
  b.events.pop_back();
  const Divergence d = first_divergence(a, b);
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.index, b.events.size());
  EXPECT_FALSE(d.description.empty());
}

TEST(Compare, DecisionModeIgnoresInstrumentationEvents) {
  TraceLog a = sample_log();
  TraceLog b = a;
  // Interleave instrumentation-only events into one stream; decisions
  // still match, full comparison diverges.
  Event shard;
  shard.kind = EventKind::kShardTiming;
  shard.a = 0;
  Event scan;
  scan.kind = EventKind::kGroupScan;
  scan.a = 1;
  Event usage;
  usage.kind = EventKind::kUsageReport;
  usage.a = 2;
  b.events.insert(b.events.begin() + 1, {shard, scan, usage});

  EXPECT_FALSE(is_decision_event(EventKind::kShardTiming));
  EXPECT_FALSE(is_decision_event(EventKind::kGroupScan));
  EXPECT_FALSE(is_decision_event(EventKind::kUsageReport));
  // Run metadata (threads, naive flag) differs across configurations
  // whose decisions must still match.
  EXPECT_FALSE(is_decision_event(EventKind::kRunBegin));
  EXPECT_TRUE(is_decision_event(EventKind::kPlacement));
  EXPECT_TRUE(is_decision_event(EventKind::kRunEnd));

  EXPECT_EQ(filtered_events(b, CompareMode::kFull).size(), 6u);
  EXPECT_EQ(filtered_events(b, CompareMode::kDecisions).size(), 2u);
  EXPECT_FALSE(first_divergence(a, b, CompareMode::kFull).identical);
  EXPECT_TRUE(first_divergence(a, b, CompareMode::kDecisions).identical);
}

TEST(Replayer, AcceptsIdenticalRerunRejectsDivergent) {
  const TraceLog recorded = sample_log();
  Replayer rp(recorded);

  const ReplayReport ok = rp.replay([&] { return recorded; });
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.events_compared, recorded.events.size());
  EXPECT_FALSE(ok.message.empty());

  const ReplayReport bad = rp.replay([&] {
    TraceLog other = recorded;
    other.events[2].a++;
    return other;
  });
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.divergence.identical);
  EXPECT_EQ(bad.divergence.index, 2u);
}

TEST(Describe, EveryKindHasANameAndRendering) {
  for (int k = 0; k < kNumEventKinds; ++k) {
    Event ev;
    ev.kind = static_cast<EventKind>(k);
    ev.time = 1.5;
    EXPECT_STRNE(kind_name(ev.kind), "") << k;
    EXPECT_FALSE(describe(ev).empty()) << k;
  }
}

}  // namespace
}  // namespace tetris::trace
