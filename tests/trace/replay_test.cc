// The replay contract, end to end (DESIGN.md §10): a simulation run with
// tracing enabled, re-executed from the recorded seed and configuration,
// must reproduce the identical event stream — every placement with its
// alignment score, every task start/finish, every churn edge, at any
// thread count. These are the issue's acceptance tests; the equivalence
// test covers the cross-configuration (naive/opt x serial/threads)
// decision contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "core/tetris_scheduler.h"
#include "sched/slot_scheduler.h"
#include "sim/simulator.h"
#include "trace/event.h"
#include "trace/replayer.h"
#include "workload/facebook.h"
#include "workload/motivating.h"
#include "workload/profiles.h"

namespace tetris {
namespace {

long count_kind(const trace::TraceLog& log, trace::EventKind kind) {
  long n = 0;
  for (const auto& ev : log.events) {
    if (ev.kind == kind) n++;
  }
  return n;
}

// A full traced Tetris run of the paper's §2.1 motivating workload,
// rebuilt from scratch per call — the shape every replay rerun must have.
sim::SimResult run_motivating(std::uint64_t seed, int threads) {
  auto ex = workload::make_motivating_example();
  ex.config.seed = seed;
  ex.config.trace.enabled = true;
  ex.config.trace.max_chunks_per_thread = 1024;
  core::TetrisConfig tcfg;
  tcfg.num_threads = threads;
  core::TetrisScheduler tetris(tcfg);
  return sim::simulate(ex.config, ex.workload, tetris);
}

sim::SimConfig facebook_config(std::uint64_t seed, bool traced = true) {
  sim::SimConfig cfg;
  cfg.num_machines = 10;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.tracker = sim::TrackerMode::kUsage;
  cfg.seed = seed;
  cfg.trace.enabled = traced;
  cfg.trace.max_chunks_per_thread = 1024;
  return cfg;
}

sim::Workload facebook_load(std::uint64_t seed) {
  workload::FacebookConfig cfg;
  cfg.num_jobs = 30;
  cfg.num_machines = 10;
  cfg.task_scale = 0.3;
  cfg.arrival_window = 250;
  cfg.seed = seed;
  return workload::make_facebook_workload(cfg);
}

sim::SimResult run_facebook(std::uint64_t seed, int threads,
                            bool traced = true) {
  const sim::Workload w = facebook_load(seed);
  core::TetrisConfig tcfg;
  tcfg.num_threads = threads;
  core::TetrisScheduler tetris(tcfg);
  return sim::simulate(facebook_config(seed, traced), w, tetris);
}

class ReplayThreads : public ::testing::TestWithParam<int> {};

// Acceptance: the Replayer reproduces a recorded motivating-workload run
// event for event.
TEST_P(ReplayThreads, MotivatingWorkloadReplaysEventForEvent) {
  const int threads = GetParam();
  const sim::SimResult recorded = run_motivating(/*seed=*/1, threads);
  ASSERT_FALSE(recorded.trace_log.events.empty());
  ASSERT_EQ(recorded.trace_log.dropped, 0u);

  trace::Replayer rp(recorded.trace_log);
  const trace::ReplayReport report = rp.replay(
      [&] { return run_motivating(rp.recorded().seed, threads).trace_log; });
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.events_compared, recorded.trace_log.events.size());
}

// Acceptance: same for the Facebook-like heavy-tailed workload.
TEST_P(ReplayThreads, FacebookWorkloadReplaysEventForEvent) {
  const int threads = GetParam();
  const sim::SimResult recorded = run_facebook(/*seed=*/1, threads);
  ASSERT_FALSE(recorded.trace_log.events.empty());
  ASSERT_EQ(recorded.trace_log.dropped, 0u);

  trace::Replayer rp(recorded.trace_log);
  const trace::ReplayReport report = rp.replay(
      [&] { return run_facebook(rp.recorded().seed, threads).trace_log; });
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.events_compared, recorded.trace_log.events.size());
}

INSTANTIATE_TEST_SUITE_P(SerialAndSharded, ReplayThreads,
                         ::testing::Values(1, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "threads";
                         });

TEST(Replay, DetectsARunFromADifferentSeed) {
  const sim::SimResult recorded = run_facebook(/*seed=*/1, /*threads=*/0);
  trace::Replayer rp(recorded.trace_log);
  const trace::ReplayReport report =
      rp.replay([&] { return run_facebook(/*seed=*/2, 0).trace_log; });
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.divergence.identical);
  // kRunBegin carries the seed, so the divergence surfaces immediately.
  EXPECT_EQ(report.divergence.index, 0u);
  EXPECT_FALSE(report.message.empty());
}

// The stream must agree with the result object it rode along with: the
// trace is an account of the run, not an approximation of it.
TEST(Replay, EventStreamIsConsistentWithSimResult) {
  const sim::SimResult r = run_facebook(/*seed=*/1, /*threads=*/0);
  const trace::TraceLog& log = r.trace_log;
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(log.dropped, 0u);
  EXPECT_EQ(log.scheduler, r.scheduler_name);
  EXPECT_EQ(log.seed, 1u);

  ASSERT_FALSE(log.events.empty());
  EXPECT_EQ(log.events.front().kind, trace::EventKind::kRunBegin);
  EXPECT_EQ(log.events.back().kind, trace::EventKind::kRunEnd);
  EXPECT_EQ(count_kind(log, trace::EventKind::kRunBegin), 1);
  EXPECT_EQ(count_kind(log, trace::EventKind::kRunEnd), 1);

  EXPECT_EQ(count_kind(log, trace::EventKind::kJobArrival),
            static_cast<long>(r.jobs.size()));
  EXPECT_EQ(count_kind(log, trace::EventKind::kPassBegin),
            r.scheduler_cost.invocations);
  EXPECT_EQ(count_kind(log, trace::EventKind::kPassEnd),
            r.scheduler_cost.invocations);
  EXPECT_EQ(count_kind(log, trace::EventKind::kPlacement),
            r.scheduler_cost.placements);

  // No churn, no faults: every attempt starts once and finishes once.
  EXPECT_EQ(count_kind(log, trace::EventKind::kTaskStart),
            static_cast<long>(r.tasks.size()));
  EXPECT_EQ(count_kind(log, trace::EventKind::kTaskFinish),
            static_cast<long>(r.tasks.size()));
  EXPECT_EQ(count_kind(log, trace::EventKind::kTaskKill), 0);
  EXPECT_EQ(count_kind(log, trace::EventKind::kMachineDown), 0);

  // Serial run: no shard instrumentation.
  EXPECT_EQ(count_kind(log, trace::EventKind::kShardTiming), 0);

  const trace::Event& end = log.events.back();
  EXPECT_EQ(end.x, r.makespan);
}

TEST(Replay, ShardTimingsAppearOnlyInParallelRunsAndStayDeterministic) {
  const sim::SimResult r = run_facebook(/*seed=*/1, /*threads=*/8);
  EXPECT_GT(count_kind(r.trace_log, trace::EventKind::kShardTiming), 0);

  // Shard wall-clock lives in `timing` and is excluded from comparison, so
  // even the instrumentation events replay exactly (kFull, not only
  // kDecisions) — covered by the acceptance tests above. Here: the
  // decision stream must also match the serial run's.
  const sim::SimResult serial = run_facebook(/*seed=*/1, /*threads=*/0);
  const trace::Divergence d =
      trace::first_divergence(serial.trace_log, r.trace_log,
                              trace::CompareMode::kDecisions);
  EXPECT_TRUE(d.identical) << d.description;
}

TEST(Replay, ChurnRunsRecordMachineEdgesAndKillReasons) {
  const sim::Workload w = facebook_load(1);
  sim::SimConfig cfg = facebook_config(1);
  cfg.churn.scripted = {{2, 20.0, 80.0}, {7, 50.0, 140.0}};
  core::TetrisScheduler tetris;
  const sim::SimResult r = sim::simulate(cfg, w, tetris);
  const trace::TraceLog& log = r.trace_log;

  EXPECT_EQ(count_kind(log, trace::EventKind::kMachineDown),
            r.churn.machines_failed);
  EXPECT_EQ(count_kind(log, trace::EventKind::kMachineUp),
            r.churn.machines_recovered);
  ASSERT_GT(r.churn.machines_failed, 0);

  long machine_kills = 0;
  for (const auto& ev : log.events) {
    if (ev.kind == trace::EventKind::kTaskKill &&
        ev.f == static_cast<std::int64_t>(trace::KillReason::kMachineFailure))
      machine_kills++;
  }
  EXPECT_EQ(machine_kills, r.churn.task_attempts_lost);

  // Churn must still replay exactly.
  trace::Replayer rp(log);
  const trace::ReplayReport report = rp.replay([&] {
    core::TetrisScheduler again;
    return sim::simulate(cfg, w, again).trace_log;
  });
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(Replay, BaselineSchedulersRecordGroupScansNotPlacements) {
  const sim::Workload w = facebook_load(1);
  sim::SimConfig cfg = facebook_config(1);
  cfg.tracker = sim::TrackerMode::kAllocation;
  sched::SlotScheduler slots;
  const sim::SimResult r = sim::simulate(cfg, w, slots);
  const trace::TraceLog& log = r.trace_log;

  EXPECT_GT(count_kind(log, trace::EventKind::kGroupScan), 0);
  EXPECT_EQ(count_kind(log, trace::EventKind::kPlacement), 0);
  EXPECT_GT(count_kind(log, trace::EventKind::kTaskStart), 0);
  EXPECT_EQ(log.scheduler, r.scheduler_name);
}

TEST(Replay, DisabledTracingYieldsAnEmptyLog) {
  const sim::SimResult r =
      run_facebook(/*seed=*/1, /*threads=*/0, /*traced=*/false);
  EXPECT_TRUE(r.trace_log.events.empty());
  EXPECT_EQ(r.trace_log.dropped, 0u);
  EXPECT_TRUE(r.trace_log.scheduler.empty());
}

}  // namespace
}  // namespace tetris
