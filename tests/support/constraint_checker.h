// Post-hoc placement-constraint checker (DESIGN.md §13): replays a run's
// event stream against the workload's declared constraints and reports
// every violation. Deliberately independent of the simulator's admission
// machinery — it reconstructs label sets, per-job running counts and
// upstream output racks from the trace alone, so a bug shared by the
// scheduler-side and simulator-side predicates cannot hide from it.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/result.h"
#include "sim/spec.h"
#include "trace/event.h"

namespace tetris::test {

struct ConstraintCheck {
  std::vector<std::string> violations;
  // Task starts that carried at least one constraint clause — assert > 0
  // to keep a matrix test from passing vacuously.
  long constrained_starts = 0;
};

// `workload.jobs[j]` must correspond to job id `j` in the trace (the batch
// simulator assigns ids in spec order). Requires the run to have been
// traced (cfg.trace.enabled) so kTaskStart/kTaskFinish/kTaskKill events
// are present.
inline ConstraintCheck check_constraints(const sim::Workload& workload,
                                         const sim::SimConfig& cfg,
                                         const sim::SimResult& result) {
  ConstraintCheck out;
  const auto rack_of = [&](sim::MachineId m) {
    return cfg.machines_per_rack > 0 ? m / cfg.machines_per_rack : m;
  };
  const auto has_label = [&](sim::MachineId m, const std::string& label) {
    if (m < 0 || static_cast<std::size_t>(m) >= cfg.machine_labels.size())
      return false;
    const auto& l = cfg.machine_labels[static_cast<std::size_t>(m)];
    for (const auto& x : l)
      if (x == label) return true;
    return false;
  };

  // Running tasks per (job, machine), every stage: the anti-affinity
  // clause forbids co-locating with ANY running task of the same job.
  std::map<std::pair<std::int64_t, std::int64_t>, int> running;
  // Hosts of finished tasks per (job, stage): where upstream outputs live.
  std::map<std::pair<std::int64_t, std::int64_t>, std::set<sim::MachineId>>
      finished_hosts;

  for (const auto& ev : result.trace_log.events) {
    const auto jm = std::make_pair(ev.b, ev.e);
    if (ev.kind == trace::EventKind::kTaskFinish ||
        ev.kind == trace::EventKind::kTaskKill) {
      running[jm]--;
      if (ev.kind == trace::EventKind::kTaskFinish)
        finished_hosts[{ev.b, ev.c}].insert(
            static_cast<sim::MachineId>(ev.e));
      continue;
    }
    if (ev.kind != trace::EventKind::kTaskStart) continue;

    const auto job_id = static_cast<std::size_t>(ev.b);
    const auto stage_id = static_cast<std::size_t>(ev.c);
    const auto m = static_cast<sim::MachineId>(ev.e);
    if (job_id >= workload.jobs.size()) continue;
    const auto& job = workload.jobs[job_id];
    if (stage_id >= job.stages.size()) continue;
    const auto& stage = job.stages[stage_id];
    const auto& c = stage.constraint;
    const auto violate = [&](const std::string& what) {
      std::ostringstream os;
      os << "t=" << ev.time << " job=" << ev.b << " stage=" << ev.c
         << " task=" << ev.d << " on machine " << m << ": " << what;
      out.violations.push_back(os.str());
    };

    if (!c.empty()) out.constrained_starts++;
    for (const auto& label : c.require_labels) {
      if (!has_label(m, label))
        violate("missing required label '" + label + "'");
    }
    for (const auto& label : c.forbid_labels) {
      if (has_label(m, label)) violate("carries forbidden label '" + label +
                                       "'");
    }
    if (c.anti_affinity && running[jm] > 0)
      violate("anti-affinity: the job already runs a task here");
    if (c.same_rack_as_input) {
      // Racks holding any of the stage's inputs: finished upstream hosts
      // for shuffle splits, the declared replicas for DFS splits. An
      // empty union means the stage has no located input and the clause
      // constrains nothing — the simulator's any_replica guard.
      std::set<sim::MachineId> racks;
      for (const auto& task : stage.tasks) {
        for (const auto& split : task.inputs) {
          if (split.from_stage >= 0) {
            for (auto h : finished_hosts[{ev.b, split.from_stage}])
              racks.insert(rack_of(h));
          }
          for (auto rep : split.replicas) racks.insert(rack_of(rep));
        }
      }
      if (!racks.empty() && racks.find(rack_of(m)) == racks.end())
        violate("same-rack-as-input: rack " +
                std::to_string(rack_of(m)) + " holds no input");
    }
    running[jm]++;
  }
  return out;
}

}  // namespace tetris::test
