// A hand-rolled SchedulerContext for unit tests: fixed machines, fixed
// task groups with explicit per-(group, machine) demands, and a recorded
// placement log. Lets tests pin down scheduler decision logic (ordering,
// admission, fairness cuts) without running the simulator.
#pragma once

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace tetris::test {

class FakeContext final : public sim::SchedulerContext {
 public:
  struct FakeGroup {
    sim::GroupView view;
    // Demand when placed on machine m; defaults to view.est_demand.
    std::map<sim::MachineId, Resources> demand_on;
    std::map<sim::MachineId, std::vector<sim::RemoteLeg>> remote_on;
    std::map<sim::MachineId, double> local_fraction_on;
  };

  explicit FakeContext(std::vector<Resources> machine_caps)
      : caps_(std::move(machine_caps)), avail_(caps_) {
    for (const auto& cap : caps_) cluster_capacity_ += cap;
  }

  // --- setup ---
  FakeGroup& add_group(sim::JobId job, int stage, int runnable,
                       const Resources& demand, double duration = 10) {
    sim::JobView* jv = nullptr;
    for (auto& j : jobs_) {
      if (j.id == job) jv = &j;
    }
    if (jv == nullptr) {
      sim::JobView j;
      j.id = job;
      jobs_.push_back(j);
      jv = &jobs_.back();
    }
    jv->runnable_tasks += runnable;
    jv->total_tasks += runnable;

    FakeGroup g;
    g.view.ref = {job, stage};
    g.view.runnable = runnable;
    g.view.total = runnable;
    g.view.est_demand = demand;
    g.view.est_duration = duration;
    g.view.est_task_work =
        demand.normalized_by(caps_.at(0)).sum() * duration;
    groups_.push_back(std::move(g));
    return groups_.back();
  }

  sim::JobView& job(sim::JobId id) {
    for (auto& j : jobs_) {
      if (j.id == id) return j;
    }
    throw std::out_of_range("no such job");
  }

  void set_available(sim::MachineId m, const Resources& avail) {
    avail_.at(static_cast<std::size_t>(m)) = avail;
  }
  void add_imminent(const sim::GroupView& v) { imminent_.push_back(v); }

  // --- SchedulerContext ---
  SimTime now() const override { return now_; }
  void set_now(SimTime t) { now_ = t; }
  int num_machines() const override { return static_cast<int>(caps_.size()); }
  const Resources& capacity(sim::MachineId m) const override {
    return caps_.at(static_cast<std::size_t>(m));
  }
  const Resources& cluster_capacity() const override {
    return cluster_capacity_;
  }
  Resources available(sim::MachineId m) const override {
    return avail_.at(static_cast<std::size_t>(m));
  }
  int running_tasks_on(sim::MachineId) const override { return 0; }
  bool machine_up(sim::MachineId m) const override {
    return down_.count(m) == 0;
  }
  void set_machine_up(sim::MachineId m, bool up) {
    if (up) {
      down_.erase(m);
    } else {
      down_.insert(m);
    }
  }

  std::vector<sim::GroupView> runnable_groups() const override {
    std::vector<sim::GroupView> out;
    for (const auto& g : groups_) {
      if (g.view.runnable > 0) out.push_back(g.view);
    }
    return out;
  }
  std::vector<sim::JobView> active_jobs() const override { return jobs_; }
  std::vector<sim::GroupView> imminent_groups() const override {
    return imminent_;
  }

  sim::Probe probe(const sim::GroupRef& ref,
                   sim::MachineId machine) const override {
    probes_++;
    sim::Probe p;
    p.group = ref;
    p.machine = machine;
    for (const auto& g : groups_) {
      if (!(g.view.ref == ref) || g.view.runnable <= 0) continue;
      p.valid = true;
      p.task_index = g.view.total - g.view.runnable;  // next unplaced
      const auto it = g.demand_on.find(machine);
      p.demand = it != g.demand_on.end() ? it->second : g.view.est_demand;
      if (const auto rit = g.remote_on.find(machine);
          rit != g.remote_on.end()) {
        p.remote = rit->second;
      }
      if (const auto lit = g.local_fraction_on.find(machine);
          lit != g.local_fraction_on.end()) {
        p.local_fraction = lit->second;
      }
      p.duration = g.view.est_duration;
      p.task_work = g.view.est_task_work;
      return p;
    }
    return p;
  }

  bool place(const sim::Probe& p) override {
    for (auto& g : groups_) {
      if (!(g.view.ref == p.group)) continue;
      if (g.view.runnable <= 0) return false;
      g.view.runnable--;
      auto& avail = avail_.at(static_cast<std::size_t>(p.machine));
      avail = (avail - p.demand).max_zero();
      for (const auto& leg : p.remote) {
        auto& ravail = avail_.at(static_cast<std::size_t>(leg.machine));
        ravail = (ravail - sim::leg_resources(leg)).max_zero();
      }
      for (auto& j : jobs_) {
        if (j.id == p.group.job) {
          j.current_alloc += p.demand;
          j.running_tasks++;
          j.runnable_tasks--;
        }
      }
      placements.push_back(p);
      return true;
    }
    return false;
  }

  std::vector<sim::RunningTaskView> running_tasks() const override {
    return running_;
  }
  bool preempt(int task_uid) override {
    for (std::size_t i = 0; i < running_.size(); ++i) {
      if (running_[i].uid == task_uid) {
        preempted.push_back(task_uid);
        auto& avail = avail_.at(static_cast<std::size_t>(
            running_[i].machine));
        avail += running_[i].demand;
        running_.erase(running_.begin() + static_cast<long>(i));
        return true;
      }
    }
    return false;
  }
  void add_running(const sim::RunningTaskView& v) { running_.push_back(v); }

  std::vector<sim::TaskReport> take_reports() override { return {}; }

  // --- inspection ---
  std::vector<sim::Probe> placements;
  std::vector<int> preempted;
  long probe_count() const { return probes_; }

 private:
  std::vector<Resources> caps_;
  std::vector<Resources> avail_;
  Resources cluster_capacity_;
  std::vector<FakeGroup> groups_;
  std::vector<sim::JobView> jobs_;
  std::vector<sim::GroupView> imminent_;
  std::vector<sim::RunningTaskView> running_;
  std::set<sim::MachineId> down_;
  SimTime now_ = 0;
  mutable long probes_ = 0;
};

}  // namespace tetris::test
