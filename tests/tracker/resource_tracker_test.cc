#include "tracker/resource_tracker.h"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/event.h"
#include "trace/recorder.h"
#include "util/units.h"

namespace tetris::tracker {
namespace {

Resources cap() { return Resources::of(4, 8 * kGB, 100, 125); }

TEST(ResourceTracker, ReportsFullAvailabilityWhenIdle) {
  ResourceTracker t(cap());
  const auto r = t.report(0);
  EXPECT_TRUE(r.charged_usage.is_zero());
  EXPECT_EQ(r.available, cap());
}

TEST(ResourceTracker, ObservedUsageReducesAvailability) {
  ResourceTracker t(cap());
  Resources u;
  u[Resource::kDiskRead] = 60;
  t.observe_usage(u, 0);
  const auto r = t.report(0);
  EXPECT_EQ(r.charged_usage[Resource::kDiskRead], 60);
  EXPECT_EQ(r.available[Resource::kDiskRead], 40);
}

TEST(ResourceTracker, EwmaSmoothsObservations) {
  TrackerConfig cfg;
  cfg.usage_ewma_alpha = 0.5;
  ResourceTracker t(cap(), cfg);
  Resources u;
  u[Resource::kCpu] = 4;
  t.observe_usage(u, 0);  // first observation taken as-is
  t.observe_usage(Resources{}, 1);
  EXPECT_NEAR(t.report(1).charged_usage[Resource::kCpu], 2.0, 1e-12);
  t.observe_usage(Resources{}, 2);
  EXPECT_NEAR(t.report(2).charged_usage[Resource::kCpu], 1.0, 1e-12);
}

TEST(ResourceTracker, RampAllowanceDecaysToZero) {
  TrackerConfig cfg;
  cfg.ramp_up_window = 10;
  cfg.ramp_allowance_fraction = 0.5;
  ResourceTracker t(cap(), cfg);
  Resources expected;
  expected[Resource::kNetIn] = 100;
  t.on_task_start(1, expected, 0);
  EXPECT_NEAR(t.report(0).charged_usage[Resource::kNetIn], 50, 1e-9);
  EXPECT_NEAR(t.report(5).charged_usage[Resource::kNetIn], 25, 1e-9);
  EXPECT_NEAR(t.report(10).charged_usage[Resource::kNetIn], 0, 1e-9);
  EXPECT_NEAR(t.report(100).charged_usage[Resource::kNetIn], 0, 1e-9);
}

TEST(ResourceTracker, TaskFinishDropsAllowance) {
  ResourceTracker t(cap());
  Resources expected;
  expected[Resource::kCpu] = 2;
  t.on_task_start(7, expected, 0);
  EXPECT_GT(t.report(1).charged_usage[Resource::kCpu], 0);
  t.on_task_finish(7);
  EXPECT_EQ(t.report(1).charged_usage[Resource::kCpu], 0);
}

TEST(ResourceTracker, AllowancesStackAcrossTasks) {
  TrackerConfig cfg;
  cfg.ramp_allowance_fraction = 1.0;
  ResourceTracker t(cap(), cfg);
  Resources expected;
  expected[Resource::kCpu] = 1;
  t.on_task_start(1, expected, 0);
  t.on_task_start(2, expected, 0);
  EXPECT_NEAR(t.report(0).charged_usage[Resource::kCpu], 2.0, 1e-12);
}

TEST(ResourceTracker, ChargedUsageClampsToCapacity) {
  ResourceTracker t(cap());
  Resources u;
  u[Resource::kDiskRead] = 1000;
  t.observe_usage(u, 0);
  const auto r = t.report(0);
  EXPECT_EQ(r.charged_usage[Resource::kDiskRead], 100);
  EXPECT_EQ(r.available[Resource::kDiskRead], 0);
}

TEST(ResourceTracker, RestartedTaskRestartsItsAllowanceClock) {
  ResourceTracker t(cap());
  Resources expected;
  expected[Resource::kCpu] = 2;
  t.on_task_start(1, expected, 0);
  t.on_task_start(1, expected, 100);  // re-registration resets the clock
  EXPECT_GT(t.report(100).charged_usage[Resource::kCpu], 0);
}

TEST(ResourceTracker, RejectsBadConfig) {
  TrackerConfig bad;
  bad.ramp_up_window = 0;
  EXPECT_THROW(ResourceTracker(cap(), bad), std::invalid_argument);
  bad = TrackerConfig{};
  bad.usage_ewma_alpha = 0;
  EXPECT_THROW(ResourceTracker(cap(), bad), std::invalid_argument);
  bad.usage_ewma_alpha = 1.5;
  EXPECT_THROW(ResourceTracker(cap(), bad), std::invalid_argument);
}

TEST(ResourceTracker, RampAllowanceEndsAtExactlyTheWindowBoundary) {
  // The cutoff is `age >= window`, so a task aged exactly 10 s contributes
  // nothing — not a small residual — while one double-ulp younger still
  // contributes a strictly positive allowance. The boundary matters: a
  // `>` comparison would charge a zero-scale allowance term forever-aged
  // tasks still iterate over, and report() is on the heartbeat path.
  TrackerConfig cfg;
  cfg.ramp_up_window = 10.0;
  cfg.ramp_allowance_fraction = 0.5;
  ResourceTracker t(cap(), cfg);
  Resources expected;
  expected[Resource::kCpu] = 4;
  t.on_task_start(1, expected, 0);

  const double just_before = std::nextafter(10.0, 0.0);
  EXPECT_GT(t.report(just_before).charged_usage[Resource::kCpu], 0.0);
  EXPECT_EQ(t.report(10.0).charged_usage[Resource::kCpu], 0.0);
  EXPECT_EQ(t.report(10.0).available[Resource::kCpu], 4.0);
}

TEST(ResourceTracker, AttachedTracerRecordsUsageReports) {
  trace::TraceConfig tc;
  tc.enabled = true;
  trace::Recorder rec(tc);
  ResourceTracker t(cap());
  t.attach_tracer(&rec, /*node_id=*/3);

  Resources u;
  u[Resource::kCpu] = 1;
  t.observe_usage(u, 0);
  Resources expected;
  expected[Resource::kCpu] = 2;
  t.on_task_start(1, expected, 0);
  const auto r = t.report(2.5);

  const trace::TraceLog log = rec.take_log();
  ASSERT_EQ(log.events.size(), 1u);
  const trace::Event& ev = log.events[0];
  EXPECT_EQ(ev.kind, trace::EventKind::kUsageReport);
  EXPECT_EQ(ev.time, 2.5);
  EXPECT_EQ(ev.a, 3);
  EXPECT_EQ(ev.b, 1);  // one live task
  EXPECT_EQ(ev.x, r.charged_usage[Resource::kCpu]);
  EXPECT_EQ(ev.y, r.charged_usage[Resource::kMem]);
  EXPECT_EQ(ev.z, r.available[Resource::kCpu]);
  EXPECT_EQ(ev.w, r.available[Resource::kMem]);

  // Detaching stops the recording; the tracker still reports normally.
  t.attach_tracer(nullptr, -1);
  t.report(3.0);
  EXPECT_TRUE(rec.take_log().events.empty());
}

TEST(ResourceTracker, UsagePlusAllowanceCombine) {
  TrackerConfig cfg;
  cfg.ramp_allowance_fraction = 0.5;
  cfg.usage_ewma_alpha = 1.0;
  ResourceTracker t(cap(), cfg);
  Resources u;
  u[Resource::kDiskRead] = 40;
  t.observe_usage(u, 0);
  Resources expected;
  expected[Resource::kDiskRead] = 40;
  t.on_task_start(1, expected, 0);
  // 40 observed + 20 allowance.
  EXPECT_NEAR(t.report(0).charged_usage[Resource::kDiskRead], 60, 1e-9);
  EXPECT_NEAR(t.report(0).available[Resource::kDiskRead], 40, 1e-9);
}

}  // namespace
}  // namespace tetris::tracker
