#include "tracker/token_bucket.h"

#include <gtest/gtest.h>

namespace tetris::tracker {
namespace {

TEST(TokenBucket, StartsFullAndAllowsBurst) {
  TokenBucket b(/*rate=*/10, /*burst=*/100);
  EXPECT_TRUE(b.try_consume(100, 0));
  EXPECT_FALSE(b.try_consume(1, 0));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket b(10, 100);
  ASSERT_TRUE(b.try_consume(100, 0));
  EXPECT_FALSE(b.try_consume(50, 1));  // only 10 tokens back
  EXPECT_TRUE(b.try_consume(50, 5));   // 50 accrued by t=5
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket b(10, 100);
  ASSERT_TRUE(b.try_consume(100, 0));
  EXPECT_NEAR(b.tokens(1000), 100, 1e-9);
  EXPECT_TRUE(b.try_consume(100, 1000));
  EXPECT_FALSE(b.try_consume(1, 1000));
}

TEST(TokenBucket, EarliestIsNowWhenTokensAvailable) {
  TokenBucket b(10, 100);
  EXPECT_EQ(b.earliest(50, 3), 3);
}

TEST(TokenBucket, EarliestComputesWaitTime) {
  TokenBucket b(10, 100);
  ASSERT_TRUE(b.try_consume(100, 0));
  // Needs 40 tokens: 4 seconds at rate 10.
  EXPECT_NEAR(b.earliest(40, 0), 4.0, 1e-9);
}

TEST(TokenBucket, ConsumeAdvancesAndDeducts) {
  TokenBucket b(10, 100);
  ASSERT_TRUE(b.try_consume(100, 0));
  const SimTime when = b.consume(40, 0);
  EXPECT_NEAR(when, 4.0, 1e-9);
  EXPECT_NEAR(b.tokens(when), 0.0, 1e-9);
}

TEST(TokenBucket, OversizedRequestWaitsForFullBucketThenOverdraws) {
  TokenBucket b(10, 100);
  ASSERT_TRUE(b.try_consume(100, 0));
  // 250 tokens > burst: completes when the bucket is full (t=10), then
  // overdraws.
  const SimTime when = b.consume(250, 0);
  EXPECT_NEAR(when, 10.0, 1e-9);
  EXPECT_LT(b.tokens(when), 0.0);
}

TEST(TokenBucket, SetRateSettlesAccruedTokensFirst) {
  TokenBucket b(10, 100);
  ASSERT_TRUE(b.try_consume(100, 0));
  b.set_rate(100, 5);  // 50 tokens accrued at the old rate
  EXPECT_NEAR(b.tokens(5), 50, 1e-9);
  EXPECT_NEAR(b.tokens(5.5), 100, 1e-9);  // caps at burst with new rate
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  TokenBucket b(0, 10);
  ASSERT_TRUE(b.try_consume(10, 0));
  EXPECT_FALSE(b.try_consume(1, 1e9));
  EXPECT_GT(b.earliest(5, 0), 1e17);
}

TEST(TokenBucket, RejectsBadConstruction) {
  EXPECT_THROW(TokenBucket(-1, 10), std::invalid_argument);
  EXPECT_THROW(TokenBucket(10, 0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(10, -5), std::invalid_argument);
}

TEST(TokenBucket, ZeroSizedRequestSucceedsEvenWhenDrained) {
  // A zero-byte I/O must never block, including against an empty bucket
  // with no refill coming (rate 0).
  TokenBucket b(0, 10);
  ASSERT_TRUE(b.try_consume(10, 0));
  EXPECT_TRUE(b.try_consume(0, 1));
  EXPECT_EQ(b.earliest(0, 1), 1);
  EXPECT_EQ(b.consume(0, 2), 2);
  EXPECT_NEAR(b.tokens(2), 0.0, 1e-9);
}

TEST(TokenBucket, ZeroRateRefillIsExactlyZero) {
  // refill() at rate 0 must leave the token count bit-for-bit unchanged
  // across arbitrarily large time gaps — no 0 * huge = drift, no clamp
  // surprises — so repeated failing probes stay cheap and stable.
  TokenBucket b(0, 10);
  ASSERT_TRUE(b.try_consume(7, 0));
  EXPECT_EQ(b.tokens(0), 3.0);
  EXPECT_FALSE(b.try_consume(4, 1e12));  // refill(1e12) ran: 3 + 0*1e12
  EXPECT_EQ(b.tokens(1e12), 3.0);
  EXPECT_TRUE(b.try_consume(3, 1e12));
  EXPECT_NEAR(b.tokens(1e12), 0.0, 1e-12);
}

TEST(TokenBucket, ZeroRateOversizedRequestNeverCompletes) {
  TokenBucket b(0, 10);
  // Larger than burst: waits for a full bucket, which at rate 0 and a
  // non-full bucket is never.
  ASSERT_TRUE(b.try_consume(1, 0));
  EXPECT_GT(b.earliest(25, 0), 1e17);
}

TEST(TokenBucket, SetRateFromZeroResumesRefill) {
  // Re-allocation mid-flight: a throttled-to-zero flow accrues nothing
  // while parked, then refills at the new rate from the moment of the
  // change — not retroactively.
  TokenBucket b(0, 100);
  ASSERT_TRUE(b.try_consume(100, 0));
  b.set_rate(10, 50);  // 50 idle seconds at rate 0 settle to +0 tokens
  EXPECT_NEAR(b.tokens(50), 0.0, 1e-12);
  EXPECT_FALSE(b.try_consume(20, 51));  // only 10 back so far
  EXPECT_TRUE(b.try_consume(20, 52));
  EXPECT_NEAR(b.earliest(100, 52), 62.0, 1e-9);
}

TEST(TokenBucket, RejectsTimeGoingBackwards) {
  TokenBucket b(10, 100);
  ASSERT_TRUE(b.try_consume(10, 5));
  EXPECT_THROW(b.try_consume(1, 4), std::logic_error);
}

TEST(TokenBucket, EnforcesLongRunAverageRate) {
  // Pushing a stream through the bucket cannot beat the allocated rate:
  // 1000 one-MB calls at rate 10/s from a 50 burst take >= ~95s.
  TokenBucket b(10, 50);
  SimTime now = 0;
  for (int i = 0; i < 1000; ++i) now = b.consume(1, now);
  EXPECT_GE(now, (1000.0 - 50.0) / 10.0 - 1e-6);
}

}  // namespace
}  // namespace tetris::tracker
