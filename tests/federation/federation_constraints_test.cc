// Federation x placement constraints (DESIGN.md §13 + §14): label- and
// affinity-constrained jobs dispatched through the feasibility-pinned
// dispatcher, executed by the CELL-PARALLEL driver (§14.5), and replayed
// per cell through the post-hoc constraint checker — the independent
// replayer that reconstructs label sets and running counts from the
// trace alone. Zero violations, non-vacuously: the run must produce
// constrained task starts, and the gpu-only jobs must land on gpu cells.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "federation/cell.h"
#include "federation/federated_simulator.h"
#include "sim/job_source.h"
#include "sim/simulator.h"
#include "tests/support/constraint_checker.h"
#include "workload/facebook.h"
#include "workload/profiles.h"

namespace tetris::federation {
namespace {

constexpr int kMachines = 16;
constexpr int kCells = 4;

// 4 cells of 4 machines; "gpu" lives only in cells 0 and 2, "ssd" only
// in cell 1 — so require/forbid clauses actually constrain dispatch.
sim::SimConfig make_base() {
  sim::SimConfig cfg;
  cfg.num_machines = kMachines;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.machine_labels.assign(kMachines, {});
  cfg.machine_labels[2] = {"gpu"};
  cfg.machine_labels[9] = {"gpu"};
  cfg.machine_labels[5] = {"ssd"};
  cfg.machine_labels[6] = {"ssd"};
  for (int c = 0; c < kCells; ++c) {
    cfg.cells.push_back({c * (kMachines / kCells),
                         (c + 1) * (kMachines / kCells)});
  }
  cfg.trace.enabled = true;
  cfg.trace.max_chunks_per_thread = 1024;
  return cfg;
}

// Facebook base load plus constrained riders: gpu-required, ssd-required,
// gpu-forbidden and anti-affinity jobs, spread over the arrival window.
// Returned pre-sorted so jobs[g] is global job id g — the invariant the
// per-cell reconstruction below leans on.
sim::Workload make_workload() {
  workload::FacebookConfig cfg;
  cfg.num_jobs = 16;
  cfg.num_machines = kMachines;
  cfg.task_scale = 0.3;
  cfg.arrival_window = 300;
  cfg.seed = 7;
  sim::Workload w = workload::make_facebook_workload(cfg);

  const sim::JobSpec donor = w.jobs[0];
  const auto add_constrained =
      [&](const std::string& name, double arrival,
          const sim::PlacementConstraint& constraint) {
        sim::JobSpec job = donor;
        job.name = name;
        job.arrival = arrival;
        for (auto& stage : job.stages) stage.constraint = constraint;
        w.jobs.push_back(job);
      };
  sim::PlacementConstraint needs_gpu;
  needs_gpu.require_labels = {"gpu"};
  sim::PlacementConstraint needs_ssd;
  needs_ssd.require_labels = {"ssd"};
  sim::PlacementConstraint no_gpu;
  no_gpu.forbid_labels = {"gpu"};
  sim::PlacementConstraint spread;
  spread.anti_affinity = true;
  add_constrained("needs-gpu-0", 10, needs_gpu);
  add_constrained("needs-gpu-1", 120, needs_gpu);
  add_constrained("needs-ssd", 60, needs_ssd);
  add_constrained("no-gpu", 90, no_gpu);
  add_constrained("spread", 150, spread);
  return sim::sorted_by_arrival(w);
}

TEST(FederationConstraintsTest, CellParallelRunHasZeroViolations) {
  const sim::Workload w = make_workload();
  FederationConfig fc;
  fc.base = make_base();
  fc.policy = DispatchPolicy::kLeastLoaded;
  fc.cell_threads = 2;  // the path under test: cell-parallel driver
  fc.allow_oversubscription = true;
  const FederatedResult fed = simulate_federated(fc, w);
  EXPECT_TRUE(fed.completed);
  EXPECT_EQ(fed.lost_jobs, 0);

  // Feasibility pinning: gpu-required jobs only on cells 0/2 (the cells
  // whose spans hold a gpu machine), ssd only on cell 1.
  ASSERT_EQ(fed.job_records.size(), w.jobs.size());
  for (std::size_t g = 0; g < fed.job_records.size(); ++g) {
    const std::string& name = fed.job_records[g].name;
    if (name.rfind("needs-gpu", 0) == 0) {
      EXPECT_TRUE(fed.job_cell[g] == 0 || fed.job_cell[g] == 2)
          << name << " landed on cell " << fed.job_cell[g];
    } else if (name == "needs-ssd") {
      EXPECT_EQ(fed.job_cell[g], 1) << name;
    }
  }

  // Per-cell post-hoc replay. Each cell's trace uses local job ids in
  // submission order; with no kills, submission order is ascending global
  // id restricted to the cell — rebuild exactly the workload the cell's
  // engine saw (remapped replicas, cell-local machine ids) and hand it to
  // the checker with the cell's own carved config.
  ASSERT_EQ(fed.cells.size(), static_cast<std::size_t>(kCells));
  long constrained_starts = 0;
  for (int c = 0; c < kCells; ++c) {
    sim::Workload cell_w;
    for (std::size_t g = 0; g < w.jobs.size(); ++g) {
      if (fed.job_cell[g] != c) continue;
      cell_w.jobs.push_back(
          remap_job_for_cell(w.jobs[g], fc.base.cells[c]));
    }
    const sim::SimConfig cell_cfg =
        make_cell_config(fc.base, fc.base.cells[c], c);
    const test::ConstraintCheck check = test::check_constraints(
        cell_w, cell_cfg, fed.cells[static_cast<std::size_t>(c)]);
    constrained_starts += check.constrained_starts;
    EXPECT_TRUE(check.violations.empty())
        << "cell " << c << ": " << check.violations.size()
        << " violations, first: " << check.violations.front();
  }
  EXPECT_GT(constrained_starts, 0)
      << "no constrained task ever started — the check was vacuous";

  // And the cell-parallel run is the serial-driver run, bit for bit.
  fc.cell_threads = 1;
  const FederatedResult serial = simulate_federated(fc, w);
  EXPECT_EQ(serial.makespan, fed.makespan);
  EXPECT_EQ(serial.job_cell, fed.job_cell);
  ASSERT_EQ(serial.tasks.size(), fed.tasks.size());
  for (std::size_t i = 0; i < serial.tasks.size(); ++i) {
    EXPECT_EQ(serial.tasks[i].host, fed.tasks[i].host) << "task " << i;
    EXPECT_EQ(serial.tasks[i].start, fed.tasks[i].start) << "task " << i;
  }
}

}  // namespace
}  // namespace tetris::federation
