// Federated determinism (DESIGN.md §14): a federated run is a pure
// function of (config, workload). Repeats are bit-identical, and so are
// runs at different per-cell thread counts — the dispatcher sees only
// deterministic EngineLoad snapshots and a seeded RNG, and each cell's
// threaded pass is already bit-equal to its serial pass. Divergences are
// pinned to the first differing decision via the trace replayer.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "federation/federated_simulator.h"
#include "sim/simulator.h"
#include "trace/replayer.h"
#include "workload/facebook.h"
#include "workload/profiles.h"

namespace tetris::federation {
namespace {

FederationConfig make_config(int machines, int threads,
                             DispatchPolicy policy) {
  FederationConfig fc;
  fc.base.num_machines = machines;
  fc.base.machine_capacity = workload::facebook_machine();
  fc.base.cells = {{0, machines / 2}, {machines / 2, machines}};
  fc.base.num_threads = threads;
  fc.base.trace.enabled = true;
  fc.base.trace.max_chunks_per_thread = 1024;
  fc.policy = policy;
  fc.dispatch_seed = 5;
  // Mid-run kill of cell 1 so the failover path is under the same
  // bit-reproducibility contract as the calm path.
  fc.kills = {{1, 150.0}};
  return fc;
}

sim::Workload make_workload(int machines) {
  workload::FacebookConfig cfg;
  cfg.num_jobs = 24;
  cfg.num_machines = machines;
  cfg.task_scale = 0.3;
  cfg.arrival_window = 300;
  cfg.seed = 2;
  return workload::make_facebook_workload(cfg);
}

void expect_identical(const FederatedResult& a, const FederatedResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.avg_jct, b.avg_jct) << what;
  EXPECT_EQ(a.reassigned_jobs, b.reassigned_jobs) << what;
  EXPECT_EQ(a.lost_jobs, b.lost_jobs) << what;
  EXPECT_EQ(a.avg_utilization, b.avg_utilization) << what;
  EXPECT_EQ(a.utilization_skew, b.utilization_skew) << what;
  EXPECT_EQ(a.job_cell, b.job_cell) << what << ": dispatch choices moved";

  ASSERT_EQ(a.job_records.size(), b.job_records.size()) << what;
  for (std::size_t i = 0; i < a.job_records.size(); ++i) {
    EXPECT_EQ(a.job_records[i].finish, b.job_records[i].finish)
        << what << ": job " << i;
  }
  ASSERT_EQ(a.tasks.size(), b.tasks.size()) << what;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].job, b.tasks[i].job) << what << ": task " << i;
    EXPECT_EQ(a.tasks[i].host, b.tasks[i].host) << what << ": task " << i;
    EXPECT_EQ(a.tasks[i].start, b.tasks[i].start) << what << ": task " << i;
    EXPECT_EQ(a.tasks[i].finish, b.tasks[i].finish)
        << what << ": task " << i;
  }

  // Decision-stream equality per cell, with first-divergence diagnostics.
  ASSERT_EQ(a.cells.size(), b.cells.size()) << what;
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    const trace::Divergence d =
        trace::first_divergence(a.cells[c].trace_log, b.cells[c].trace_log,
                                trace::CompareMode::kDecisions);
    EXPECT_TRUE(d.identical) << what << ": cell " << c << ": "
                             << d.description;
  }
}

class FederationDeterminismTest
    : public ::testing::TestWithParam<DispatchPolicy> {};

TEST_P(FederationDeterminismTest, RepeatRunsAreBitIdentical) {
  const int kMachines = 10;
  const sim::Workload w = make_workload(kMachines);
  const FederationConfig fc = make_config(kMachines, 0, GetParam());

  const FederatedResult a = simulate_federated(fc, w);
  const FederatedResult b = simulate_federated(fc, w);
  expect_identical(a, b, "repeat@serial");
  EXPECT_GT(a.reassigned_jobs, 0) << "kill must exercise the failover path";
}

TEST_P(FederationDeterminismTest, ThreadCountIsInvisible) {
  const int kMachines = 10;
  const sim::Workload w = make_workload(kMachines);

  const FederatedResult serial =
      simulate_federated(make_config(kMachines, 0, GetParam()), w);
  const FederatedResult threaded =
      simulate_federated(make_config(kMachines, 8, GetParam()), w);
  expect_identical(serial, threaded, "serial-vs-8-threads");
}

// ---- cell-parallel driver (DESIGN.md §14.5) ----
// A 16-cell single-machine-per-cell partition with a mid-run kill: the
// config the scaling bench runs (E26), shrunk to test scale. Every
// cell_threads setting must replay the serial lockstep bit for bit —
// expect_identical pins any divergence to the first differing decision
// per cell. allow_oversubscription is set because CI boxes may have
// fewer cores than the sweep's fan-out; identity must hold regardless.
FederationConfig make_16cell_config(int cell_threads,
                                    DispatchPolicy policy) {
  FederationConfig fc;
  fc.base.num_machines = 16;
  fc.base.machine_capacity = workload::facebook_machine();
  for (int c = 0; c < 16; ++c) fc.base.cells.push_back({c, c + 1});
  fc.base.trace.enabled = true;
  fc.base.trace.max_chunks_per_thread = 1024;
  fc.policy = policy;
  fc.dispatch_seed = 5;
  fc.kills = {{3, 150.0}};
  fc.cell_threads = cell_threads;
  fc.allow_oversubscription = true;
  return fc;
}

TEST_P(FederationDeterminismTest, CellParallelDriverIsInvisible) {
  const sim::Workload w = make_workload(16);
  const FederatedResult serial =
      simulate_federated(make_16cell_config(1, GetParam()), w);
  EXPECT_GT(serial.reassigned_jobs, 0)
      << "kill must exercise the failover path under cell-parallelism";
  for (int cell_threads : {2, 8}) {
    const FederatedResult parallel =
        simulate_federated(make_16cell_config(cell_threads, GetParam()), w);
    expect_identical(serial, parallel,
                     "serial-driver-vs-cell_threads=" +
                         std::to_string(cell_threads));
  }
}

TEST(FederationCellParallelTest, IdleCellsAreSkippedAndCounted) {
  // 16 cells over a workload that keeps only a few busy at a time: the
  // driver must skip quiescent cells (the skip is a proven no-op —
  // CellParallelDriverIsInvisible covers identity) and account them.
  const sim::Workload w = make_workload(16);
  const FederatedResult r = simulate_federated(
      make_16cell_config(2, DispatchPolicy::kLeastLoaded), w);
  EXPECT_GT(r.perf.idle_cell_skips, 0);
  EXPECT_GT(r.perf.cell_advance_nanos, 0);
  // The merged per-cell counters and pass-latency histogram made it out.
  EXPECT_GT(r.perf.score_evals, 0);
  EXPECT_GT(r.pass_latency.count(), 0);
}

TEST(FederationCellParallelTest, NestedThreadingDefaultsToSerialCells) {
  // Under cell-parallel execution an unset tetris.num_threads must NOT
  // inherit base.num_threads — per-cell passes stay serial (no sharded
  // passes recorded) so the two knobs don't silently multiply.
  const sim::Workload w = make_workload(16);
  FederationConfig fc = make_16cell_config(2, DispatchPolicy::kLeastLoaded);
  fc.base.num_threads = 8;
  const FederatedResult r = simulate_federated(fc, w);
  EXPECT_EQ(r.perf.parallel_passes, 0)
      << "cell-parallel runs must not inherit base.num_threads per cell";

  // The serial driver keeps the old inheritance: per-cell passes shard.
  fc.cell_threads = 0;
  const FederatedResult inherit = simulate_federated(fc, w);
  EXPECT_GT(inherit.perf.parallel_passes, 0);
}

TEST(FederationCellParallelTest, OversubscriptionFailsFastUnlessAllowed) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) GTEST_SKIP() << "hardware_concurrency unknown";
  const sim::Workload w = make_workload(16);
  FederationConfig fc = make_16cell_config(static_cast<int>(hw) + 1,
                                           DispatchPolicy::kLeastLoaded);
  fc.allow_oversubscription = false;
  EXPECT_THROW(simulate_federated(fc, w), std::invalid_argument);
  fc.allow_oversubscription = true;
  EXPECT_NO_THROW(simulate_federated(fc, w));

  // Explicit nesting counts both knobs: 1 cell thread x (hw+1) per-cell
  // threads oversubscribes just the same.
  fc.cell_threads = 2;
  fc.tetris.num_threads = static_cast<int>(hw) + 1;
  fc.allow_oversubscription = false;
  EXPECT_THROW(simulate_federated(fc, w), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, FederationDeterminismTest,
    ::testing::Values(DispatchPolicy::kLeastLoaded,
                      DispatchPolicy::kPowerOfTwo,
                      DispatchPolicy::kLocalityAware),
    [](const ::testing::TestParamInfo<DispatchPolicy>& info) {
      switch (info.param) {
        case DispatchPolicy::kRoundRobin: return std::string("RoundRobin");
        case DispatchPolicy::kLeastLoaded: return std::string("LeastLoaded");
        case DispatchPolicy::kPowerOfTwo: return std::string("PowerOfTwo");
        case DispatchPolicy::kLocalityAware: return std::string("Locality");
      }
      return std::string("Unknown");
    });

}  // namespace
}  // namespace tetris::federation
