// Failover under churn (DESIGN.md §14): killing a cell mid-run turns the
// whole cell into scripted machine outages, the dispatcher re-admits
// every unfinished job to a survivor, and nothing lands on the dead span
// afterwards. Zero jobs may be lost as long as one cell survives, and the
// churn counters must reconcile with the kill.
#include <gtest/gtest.h>

#include <vector>

#include "federation/federated_simulator.h"
#include "sim/simulator.h"
#include "workload/facebook.h"
#include "workload/profiles.h"

namespace tetris::federation {
namespace {

FederationConfig two_cell_config(int machines) {
  FederationConfig fc;
  fc.base.num_machines = machines;
  fc.base.machine_capacity = workload::facebook_machine();
  fc.base.cells = {{0, machines / 2}, {machines / 2, machines}};
  fc.policy = DispatchPolicy::kLeastLoaded;
  return fc;
}

sim::Workload spread_workload(int jobs, int machines) {
  workload::FacebookConfig cfg;
  cfg.num_jobs = jobs;
  cfg.num_machines = machines;
  cfg.task_scale = 0.3;
  cfg.arrival_window = 400;
  cfg.seed = 3;
  return workload::make_facebook_workload(cfg);
}

TEST(FederationFailoverTest, CellKillLosesNoJobs) {
  const int kMachines = 10;
  const double kKillAt = 120.0;
  const sim::Workload w = spread_workload(30, kMachines);

  FederationConfig fc = two_cell_config(kMachines);
  fc.kills = {{0, kKillAt}};
  const FederatedResult fed = simulate_federated(fc, w);

  // Baseline (no kill) must route work to both cells, so the kill below
  // actually has jobs to fail over.
  const FederatedResult calm =
      simulate_federated(two_cell_config(kMachines), w);
  ASSERT_TRUE(calm.completed);
  int calm_on_dead = 0;
  for (int c : calm.job_cell) calm_on_dead += c == 0 ? 1 : 0;
  ASSERT_GT(calm_on_dead, 0) << "workload never touches the doomed cell";

  // The headline: a surviving cell exists, so not a single job is lost,
  // and everything completes (re-runs included).
  EXPECT_EQ(fed.lost_jobs, 0);
  EXPECT_EQ(fed.unfinished_jobs, 0);
  EXPECT_TRUE(fed.completed);
  EXPECT_GT(fed.reassigned_jobs, 0) << "kill at " << kKillAt
                                    << " caught no in-flight jobs";
  EXPECT_EQ(static_cast<long>(fed.job_records.size()), fed.jobs);
  for (const auto& j : fed.job_records) {
    EXPECT_GE(j.finish, 0.0) << "job " << j.id << " never finished";
  }

  // No placement on the dead span after the kill: any task record with a
  // host in cell 0 belongs to a job that finished at or before the kill
  // (task records come from each job's final cell).
  const int dead_end = fc.base.cells[0].end;
  for (const auto& t : fed.tasks) {
    if (t.host < dead_end) {
      EXPECT_LE(t.start, kKillAt) << "task started on the dead cell";
      EXPECT_LE(t.finish, kKillAt)
          << "task survived the cell it was placed on";
      EXPECT_EQ(fed.job_cell[static_cast<std::size_t>(t.job)], 0);
    } else {
      EXPECT_EQ(fed.job_cell[static_cast<std::size_t>(t.job)], 1);
    }
  }
  // Every reassigned job's final cell is the survivor.
  long on_survivor = 0;
  for (int c : fed.job_cell) {
    ASSERT_GE(c, 0);
    on_survivor += c == 1 ? 1 : 0;
  }
  EXPECT_GT(on_survivor, 0);

  // Churn reconciliation: exactly the dead cell's machines failed, none
  // recovered (the scripted recovery sits past max_time), and the lost
  // work shows up in the counters of the dead cell only.
  EXPECT_EQ(fed.churn.machines_failed, fc.base.cells[0].size());
  EXPECT_EQ(fed.churn.machines_recovered, 0);
  EXPECT_EQ(fed.cells[1].churn.machines_failed, 0);
  EXPECT_EQ(fed.cells[0].churn.machines_failed, fc.base.cells[0].size());
  EXPECT_GE(fed.churn.task_attempts_lost, 0);
  // The kill lands exactly at the dead cell's end_time, so its
  // time-weighted effective capacity stays at 1.0 (zero-width outage
  // window); the survivor never churns at all.
  EXPECT_LE(fed.cells[0].churn.effective_capacity, 1.0);
  EXPECT_DOUBLE_EQ(fed.cells[1].churn.effective_capacity, 1.0);
}

TEST(FederationFailoverTest, KillingEveryCellLosesTheBacklog) {
  const int kMachines = 8;
  const sim::Workload w = spread_workload(16, kMachines);

  FederationConfig fc = two_cell_config(kMachines);
  fc.kills = {{0, 50.0}, {1, 50.0}};
  const FederatedResult fed = simulate_federated(fc, w);

  EXPECT_FALSE(fed.completed);
  // Jobs arriving after the last cell died have nowhere to go.
  EXPECT_GT(fed.lost_jobs, 0);
  for (std::size_t g = 0; g < fed.job_records.size(); ++g) {
    if (fed.job_cell[g] == -1) {
      EXPECT_LT(fed.job_records[g].finish, 0.0);
    }
  }
  EXPECT_EQ(fed.churn.machines_failed, kMachines);
}

TEST(FederationFailoverTest, LateKillAfterCompletionIsANoOp) {
  const int kMachines = 8;
  const sim::Workload w = spread_workload(10, kMachines);

  FederationConfig calm = two_cell_config(kMachines);
  const FederatedResult base = simulate_federated(calm, w);
  ASSERT_TRUE(base.completed);

  FederationConfig fc = two_cell_config(kMachines);
  fc.kills = {{0, base.makespan + 10000.0}};
  const FederatedResult fed = simulate_federated(fc, w);

  EXPECT_TRUE(fed.completed);
  EXPECT_EQ(fed.reassigned_jobs, 0);
  EXPECT_EQ(fed.makespan, base.makespan);
}

}  // namespace
}  // namespace tetris::federation
