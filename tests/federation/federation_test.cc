// Federation layer (DESIGN.md §14): cell slicing, job remapping,
// feasibility pinning, dispatcher policies, and the headline contract —
// a 1-cell federation is BIT-IDENTICAL to the global scheduler
// (placements, makespan, decision trace), so every multi-cell delta in
// the E26 sweep is dispatcher-induced packing loss, not plumbing noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/tetris_scheduler.h"
#include "federation/cell.h"
#include "federation/dispatcher.h"
#include "federation/federated_simulator.h"
#include "sim/simulator.h"
#include "trace/replayer.h"
#include "workload/facebook.h"
#include "workload/profiles.h"

namespace tetris::federation {
namespace {

sim::SimConfig small_cluster(int machines) {
  sim::SimConfig cfg;
  cfg.num_machines = machines;
  cfg.machine_capacity = workload::facebook_machine();
  return cfg;
}

sim::Workload small_workload(int jobs, int machines) {
  workload::FacebookConfig cfg;
  cfg.num_jobs = jobs;
  cfg.num_machines = machines;
  cfg.task_scale = 0.3;
  cfg.arrival_window = 250;
  cfg.seed = 1;
  return workload::make_facebook_workload(cfg);
}

TEST(CellConfigTest, SlicesCapacitiesLabelsSeedAndChurn) {
  sim::SimConfig base = small_cluster(8);
  base.seed = 41;
  base.machine_labels.assign(8, {});
  base.machine_labels[5] = {"gpu"};
  base.churn.scripted = {{1, 10.0, 20.0}, {6, 30.0, 40.0}};
  base.activities = {{2, 0.0, 5.0, {}}};
  base.cells = {{0, 4}, {4, 8}};

  const sim::SimConfig c1 = make_cell_config(base, base.cells[1], 1);
  EXPECT_EQ(c1.num_machines, 4);
  EXPECT_EQ(c1.machine_capacities.size(), 4u);
  EXPECT_TRUE(c1.cells.empty());
  EXPECT_EQ(c1.seed, 42u);
  ASSERT_EQ(c1.machine_labels.size(), 4u);
  EXPECT_EQ(c1.machine_labels[1], std::vector<std::string>{"gpu"});
  // Only machine 6's outage lands in the cell, remapped to local id 2.
  ASSERT_EQ(c1.churn.scripted.size(), 1u);
  EXPECT_EQ(c1.churn.scripted[0].machine, 2);
  EXPECT_EQ(c1.churn.scripted[0].down_at, 30.0);
  EXPECT_TRUE(c1.activities.empty());

  const sim::SimConfig c0 = make_cell_config(base, base.cells[0], 0);
  EXPECT_EQ(c0.seed, 41u);  // cell 0 keeps the base seed (1-cell identity)
  ASSERT_EQ(c0.churn.scripted.size(), 1u);
  EXPECT_EQ(c0.churn.scripted[0].machine, 1);
  ASSERT_EQ(c0.activities.size(), 1u);
  EXPECT_EQ(c0.activities[0].machine, 2);
}

TEST(CellConfigTest, RemapsReplicasIntoSpan) {
  sim::JobSpec job;
  job.stages.emplace_back();
  job.stages[0].tasks.emplace_back();
  job.stages[0].tasks[0].inputs = {{100.0, {5, 2}, -1}};
  const sim::CellSpec span{4, 8};

  const sim::JobSpec out = remap_job_for_cell(job, span);
  const auto& reps = out.stages[0].tasks[0].inputs[0].replicas;
  // 5 is inside [4,8) -> local 1; 2 is outside -> surrogate 2 % 4 = 2.
  EXPECT_EQ(reps, (std::vector<sim::MachineId>{1, 2}));
  for (sim::MachineId r : reps) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, span.size());
  }
}

TEST(CellConfigTest, FeasibilityPinsLabelConstrainedJobs) {
  sim::SimConfig base = small_cluster(8);
  base.machine_labels.assign(8, {});
  base.machine_labels[6] = {"gpu"};
  base.cells = {{0, 4}, {4, 8}};

  sim::JobSpec job;
  job.stages.emplace_back();
  job.stages[0].constraint.require_labels = {"gpu"};
  job.stages[0].tasks.emplace_back();

  EXPECT_FALSE(cell_feasible(job, base, base.cells[0]));
  EXPECT_TRUE(cell_feasible(job, base, base.cells[1]));

  sim::JobSpec anywhere;
  anywhere.stages.emplace_back();
  anywhere.stages[0].tasks.emplace_back();
  EXPECT_TRUE(cell_feasible(anywhere, base, base.cells[0]));

  sim::JobSpec banned;
  banned.stages.emplace_back();
  banned.stages[0].constraint.forbid_labels = {"gpu"};
  banned.stages[0].tasks.emplace_back();
  EXPECT_TRUE(cell_feasible(banned, base, base.cells[1]));
}

TEST(CellConfigTest, InputBytesCountsResidentSplits) {
  sim::JobSpec job;
  job.stages.emplace_back();
  job.stages[0].tasks.emplace_back();
  job.stages[0].tasks[0].inputs = {{100.0, {1}, -1},     // in [0,4)
                                   {10.0, {6}, -1},      // in [4,8)
                                   {1.0, {1, 6}, -1}};   // both
  EXPECT_DOUBLE_EQ(cell_input_bytes(job, {0, 4}), 101.0);
  EXPECT_DOUBLE_EQ(cell_input_bytes(job, {4, 8}), 11.0);
}

sim::EngineLoad load_with(int tasks, int up) {
  sim::EngineLoad l;
  l.up_machines = up;
  l.machines = up;
  l.runnable_tasks = tasks;
  return l;
}

TEST(DispatcherTest, RoundRobinCyclesAndSkipsInfeasible) {
  Dispatcher d(DispatchPolicy::kRoundRobin, 1);
  const std::vector<sim::EngineLoad> loads(4);
  const std::vector<double> bytes(4, 0.0);
  EXPECT_EQ(d.pick({0, 1, 2, 3}, loads, bytes), 0);
  EXPECT_EQ(d.pick({0, 1, 2, 3}, loads, bytes), 1);
  // Cell 2 infeasible: the cursor skips to the next admissible cell.
  EXPECT_EQ(d.pick({0, 1, 3}, loads, bytes), 3);
  EXPECT_EQ(d.pick({0, 1, 2, 3}, loads, bytes), 0);
}

TEST(DispatcherTest, LeastLoadedNormalizesByUpMachines) {
  Dispatcher d(DispatchPolicy::kLeastLoaded, 1);
  // 12 tasks / 8 up = 1.5 vs 4 tasks / 2 up = 2.0: big cell wins even
  // with more absolute backlog.
  const std::vector<sim::EngineLoad> loads = {load_with(12, 8),
                                              load_with(4, 2)};
  EXPECT_EQ(d.pick({0, 1}, loads, {0.0, 0.0}), 0);
  // Ties break to the lower cell index.
  const std::vector<sim::EngineLoad> even = {load_with(4, 4),
                                             load_with(4, 4)};
  EXPECT_EQ(d.pick({0, 1}, even, {0.0, 0.0}), 0);
}

TEST(DispatcherTest, PowerOfTwoPicksLessLoadedOfTwoAndIsSeeded) {
  const std::vector<sim::EngineLoad> loads = {load_with(9, 1),
                                              load_with(1, 1),
                                              load_with(5, 1)};
  Dispatcher a(DispatchPolicy::kPowerOfTwo, 7);
  Dispatcher b(DispatchPolicy::kPowerOfTwo, 7);
  for (int i = 0; i < 32; ++i) {
    const int pa = a.pick({0, 1, 2}, loads, {0, 0, 0});
    const int pb = b.pick({0, 1, 2}, loads, {0, 0, 0});
    EXPECT_EQ(pa, pb) << "same seed must give the same stream";
    // The heaviest cell can only win a (0,2) draw over... never: any pair
    // containing 0 prefers the other member, so 0 is never picked.
    EXPECT_NE(pa, 0);
  }
}

TEST(DispatcherTest, LocalityMaximizesResidentBytes) {
  Dispatcher d(DispatchPolicy::kLocalityAware, 1);
  const std::vector<sim::EngineLoad> loads = {load_with(0, 4),
                                              load_with(9, 4)};
  // Cell 1 holds more of the job's input: locality beats load.
  EXPECT_EQ(d.pick({0, 1}, loads, {10.0, 200.0}), 1);
  // Byte ties fall back to least-loaded.
  EXPECT_EQ(d.pick({0, 1}, loads, {50.0, 50.0}), 0);
}

TEST(FederatedSimulatorTest, RejectsMissingOrInvalidPartition) {
  const sim::Workload w = small_workload(4, 8);
  FederationConfig fc;
  fc.base = small_cluster(8);
  EXPECT_THROW(simulate_federated(fc, w), std::invalid_argument);

  fc.base.cells = {{0, 4}, {5, 8}};  // gap: machine 4 unowned
  EXPECT_THROW(simulate_federated(fc, w), std::invalid_argument);

  fc.base.cells = {{0, 4}, {4, 8}};
  fc.kills = {{2, 10.0}};  // no such cell
  EXPECT_THROW(simulate_federated(fc, w), std::invalid_argument);
}

// The headline contract: one cell spanning the whole cluster reproduces
// the global scheduler bit for bit — job records, task placements,
// makespan, and the decision-level trace stream.
TEST(FederatedSimulatorTest, OneCellIsBitIdenticalToGlobalScheduler) {
  const int kMachines = 10;
  const sim::Workload w =
      sim::sorted_by_arrival(small_workload(30, kMachines));

  sim::SimConfig global_cfg = small_cluster(kMachines);
  global_cfg.collect_timeline = true;
  global_cfg.trace.enabled = true;
  global_cfg.trace.max_chunks_per_thread = 1024;

  core::TetrisScheduler global_sched((core::TetrisConfig()));
  const sim::SimResult global = sim::simulate(global_cfg, w, global_sched);

  FederationConfig fc;
  fc.base = global_cfg;
  fc.base.cells = {{0, kMachines}};
  const FederatedResult fed = simulate_federated(fc, w);

  EXPECT_TRUE(global.completed);
  EXPECT_TRUE(fed.completed);
  EXPECT_EQ(fed.reassigned_jobs, 0);
  EXPECT_EQ(fed.lost_jobs, 0);
  EXPECT_EQ(fed.makespan, global.makespan);

  ASSERT_EQ(fed.job_records.size(), global.jobs.size());
  for (std::size_t i = 0; i < global.jobs.size(); ++i) {
    EXPECT_EQ(fed.job_records[i].id, global.jobs[i].id) << "job " << i;
    EXPECT_EQ(fed.job_records[i].arrival, global.jobs[i].arrival)
        << "job " << i;
    EXPECT_EQ(fed.job_records[i].finish, global.jobs[i].finish)
        << "job " << i;
    EXPECT_EQ(fed.job_cell[i], 0);
  }

  ASSERT_EQ(fed.tasks.size(), global.tasks.size());
  for (std::size_t i = 0; i < global.tasks.size(); ++i) {
    const auto& a = global.tasks[i];
    const auto& b = fed.tasks[i];
    EXPECT_EQ(a.job, b.job) << "task " << i;
    EXPECT_EQ(a.stage, b.stage) << "task " << i;
    EXPECT_EQ(a.index, b.index) << "task " << i;
    EXPECT_EQ(a.host, b.host) << "task " << i;
    EXPECT_EQ(a.start, b.start) << "task " << i;
    EXPECT_EQ(a.finish, b.finish) << "task " << i;
  }

  // Decision-for-decision: the cell's trace is the global trace.
  ASSERT_EQ(fed.cells.size(), 1u);
  const trace::Divergence d =
      trace::first_divergence(global.trace_log, fed.cells[0].trace_log,
                              trace::CompareMode::kDecisions);
  EXPECT_TRUE(d.identical) << d.description;
}

TEST(FederatedSimulatorTest, MultiCellCompletesWithHostsInOwnSpan) {
  const int kMachines = 12;
  const sim::Workload w = small_workload(24, kMachines);

  FederationConfig fc;
  fc.base = small_cluster(kMachines);
  fc.base.cells = {{0, 4}, {4, 8}, {8, 12}};
  fc.policy = DispatchPolicy::kLeastLoaded;
  const FederatedResult fed = simulate_federated(fc, w);

  EXPECT_TRUE(fed.completed);
  EXPECT_EQ(fed.jobs, 24);
  EXPECT_EQ(fed.lost_jobs, 0);
  EXPECT_EQ(fed.unfinished_jobs, 0);
  EXPECT_GT(fed.makespan, 0.0);
  EXPECT_GT(fed.avg_jct, 0.0);
  ASSERT_EQ(fed.cell_utilization.size(), 3u);
  EXPECT_GT(fed.avg_utilization, 0.0);
  EXPECT_LE(fed.avg_utilization, 1.0);
  EXPECT_DOUBLE_EQ(fed.fragmentation, 1.0 - fed.avg_utilization);
  EXPECT_GE(fed.utilization_skew, 0.0);

  // Every task of every job ran inside its job's final cell.
  for (const auto& t : fed.tasks) {
    const int c = fed.job_cell[static_cast<std::size_t>(t.job)];
    ASSERT_GE(c, 0);
    EXPECT_GE(t.host, fc.base.cells[static_cast<std::size_t>(c)].begin);
    EXPECT_LT(t.host, fc.base.cells[static_cast<std::size_t>(c)].end);
  }
}

TEST(FederatedSimulatorTest, LabelConstrainedJobLandsOnItsOnlyFeasibleCell) {
  const int kMachines = 8;
  sim::Workload w = small_workload(8, kMachines);
  // One job needs "gpu", declared only inside cell 1's span.
  sim::JobSpec gpu_job = w.jobs[0];
  gpu_job.name = "needs-gpu";
  gpu_job.arrival = 0;
  for (auto& stage : gpu_job.stages) {
    stage.constraint.require_labels = {"gpu"};
  }
  w.jobs.push_back(gpu_job);

  FederationConfig fc;
  fc.base = small_cluster(kMachines);
  fc.base.machine_labels.assign(kMachines, {});
  fc.base.machine_labels[6] = {"gpu"};
  fc.base.cells = {{0, 4}, {4, 8}};
  // Round-robin would spread blindly; feasibility must still pin.
  fc.policy = DispatchPolicy::kRoundRobin;
  const FederatedResult fed = simulate_federated(fc, w);

  ASSERT_EQ(fed.job_records.size(), w.jobs.size());
  bool saw_gpu_job = false;
  for (std::size_t g = 0; g < fed.job_records.size(); ++g) {
    if (fed.job_records[g].name != "needs-gpu") continue;
    saw_gpu_job = true;
    EXPECT_EQ(fed.job_cell[g], 1) << "gpu job must land on the gpu cell";
    EXPECT_GE(fed.job_records[g].finish, 0.0);
  }
  EXPECT_TRUE(saw_gpu_job);
}

TEST(FederatedSimulatorTest, LocalityPolicyFollowsInputBytes) {
  const int kMachines = 8;
  sim::Workload w;
  // Two one-task jobs, each with all input replicated inside one span.
  for (int k = 0; k < 2; ++k) {
    sim::JobSpec job;
    job.name = "reader-" + std::to_string(k);
    job.arrival = k;
    job.stages.emplace_back();
    sim::TaskSpec task;
    task.cpu_cycles = 10;
    task.inputs = {{500 * kMB, {k == 0 ? 1 : 6}, -1}};
    job.stages[0].tasks.push_back(task);
    w.jobs.push_back(job);
  }

  FederationConfig fc;
  fc.base = small_cluster(kMachines);
  fc.base.cells = {{0, 4}, {4, 8}};
  fc.policy = DispatchPolicy::kLocalityAware;
  const FederatedResult fed = simulate_federated(fc, w);

  EXPECT_TRUE(fed.completed);
  EXPECT_EQ(fed.job_cell[0], 0);  // replica on machine 1
  EXPECT_EQ(fed.job_cell[1], 1);  // replica on machine 6
}

}  // namespace
}  // namespace tetris::federation
