#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "analysis/workload_analysis.h"
#include "util/units.h"

namespace tetris::analysis {
namespace {

sim::SimResult result_with_jcts(std::vector<double> jcts) {
  sim::SimResult r;
  for (std::size_t i = 0; i < jcts.size(); ++i) {
    sim::JobRecord j;
    j.id = static_cast<sim::JobId>(i);
    j.arrival = 100;
    j.finish = 100 + jcts[i];
    r.jobs.push_back(j);
  }
  return r;
}

TEST(Metrics, ImprovementPercent) {
  EXPECT_DOUBLE_EQ(improvement_percent(100, 80), 20);
  EXPECT_DOUBLE_EQ(improvement_percent(100, 125), -25);
  EXPECT_EQ(improvement_percent(0, 5), 0);
}

TEST(Metrics, PerJobImprovementsMatchById) {
  const auto base = result_with_jcts({100, 200, 50});
  const auto treat = result_with_jcts({50, 200, 100});
  const auto imp = per_job_improvements(base, treat);
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_DOUBLE_EQ(imp[0], 50);
  EXPECT_DOUBLE_EQ(imp[1], 0);
  EXPECT_DOUBLE_EQ(imp[2], -100);
}

TEST(Metrics, PerJobImprovementsSkipUnfinished) {
  auto base = result_with_jcts({100, 200});
  auto treat = result_with_jcts({50, 100});
  treat.jobs[1].finish = -1;  // unfinished under treatment
  const auto imp = per_job_improvements(base, treat);
  EXPECT_EQ(imp.size(), 1u);
}

TEST(Metrics, ReductionsUseResultAggregates) {
  auto base = result_with_jcts({100, 300});
  base.makespan = 500;
  auto treat = result_with_jcts({50, 150});
  treat.makespan = 250;
  EXPECT_DOUBLE_EQ(makespan_reduction(base, treat), 50);
  EXPECT_DOUBLE_EQ(avg_jct_reduction(base, treat), 50);
  EXPECT_DOUBLE_EQ(median_jct_reduction(base, treat), 50);
}

TEST(Metrics, SlowdownStatsCountOnlySlowedJobs) {
  const auto fair = result_with_jcts({100, 100, 100, 100});
  const auto treat = result_with_jcts({50, 100, 150, 200});
  const auto s = slowdown_stats(fair, treat);
  EXPECT_EQ(s.jobs_compared, 4);
  EXPECT_DOUBLE_EQ(s.fraction_slowed, 0.5);
  EXPECT_DOUBLE_EQ(s.avg_slowdown_percent, 75);   // (50 + 100) / 2
  EXPECT_DOUBLE_EQ(s.max_slowdown_percent, 100);
}

TEST(Metrics, SlowdownToleranceSuppressesNoise) {
  const auto fair = result_with_jcts({100});
  const auto treat = result_with_jcts({101});
  EXPECT_EQ(slowdown_stats(fair, treat, 0.02).fraction_slowed, 0);
  EXPECT_EQ(slowdown_stats(fair, treat, 0.005).fraction_slowed, 1);
}

TEST(Metrics, SlowdownOfEmptyResultsIsZero) {
  const sim::SimResult empty;
  const auto s = slowdown_stats(empty, empty);
  EXPECT_EQ(s.jobs_compared, 0);
  EXPECT_EQ(s.fraction_slowed, 0);
}

TEST(Metrics, UnfairnessStatsNormalizeByLifetime) {
  auto r = result_with_jcts({100, 100, 100});
  r.jobs[0].unfairness_integral = -50;  // riu -0.5: served badly
  r.jobs[1].unfairness_integral = -0.5; // riu -0.005: within tolerance
  r.jobs[2].unfairness_integral = 30;   // served better than fair
  const auto s = unfairness_stats(r);
  EXPECT_NEAR(s.fraction_negative, 1.0 / 3, 1e-12);
  EXPECT_NEAR(s.avg_negative_magnitude, 0.5, 1e-12);
}

TEST(Metrics, MeanTaskDuration) {
  sim::SimResult r;
  sim::TaskRecord a;
  a.start = 0;
  a.finish = 10;
  sim::TaskRecord b;
  b.start = 5;
  b.finish = 25;
  r.tasks = {a, b};
  EXPECT_DOUBLE_EQ(mean_task_duration(r), 15);
}

// ---------------------------------------------------------------------------
// Workload analysis

sim::Workload tiny_workload() {
  sim::Workload w;
  sim::JobSpec job;
  sim::StageSpec map;
  sim::TaskSpec m;
  m.peak_cores = 2;
  m.peak_mem = 4 * kGB;
  m.output_bytes = 100;
  sim::InputSplit dfs;
  dfs.bytes = 1000;
  dfs.replicas = {0};
  m.inputs.push_back(dfs);
  map.tasks = {m};
  sim::StageSpec red;
  red.deps = {0};
  sim::TaskSpec r;
  r.peak_cores = 1;
  r.peak_mem = 1 * kGB;
  sim::InputSplit sh;
  sh.bytes = 100;
  sh.from_stage = 0;
  r.inputs.push_back(sh);
  red.tasks = {r};
  job.stages = {map, red};
  w.jobs.push_back(job);
  return w;
}

TEST(WorkloadAnalysis, CollectsOneSamplePerTask) {
  const auto samples = collect_demand_samples(tiny_workload());
  ASSERT_EQ(samples.size(), 2u);
  // Map: disk = input + output, no network.
  EXPECT_DOUBLE_EQ(samples[0].disk_bytes, 1100);
  EXPECT_DOUBLE_EQ(samples[0].net_bytes, 0);
  // Reduce: shuffle counts as network.
  EXPECT_DOUBLE_EQ(samples[1].net_bytes, 100);
  EXPECT_DOUBLE_EQ(samples[1].disk_bytes, 0);
}

TEST(WorkloadAnalysis, CorrelationMatrixDiagonalIsOne) {
  std::vector<TaskDemandSample> samples;
  for (int i = 0; i < 10; ++i) {
    TaskDemandSample s;
    s.cores = i;
    s.mem = 10 - i;       // perfectly anti-correlated with cores
    s.disk_bytes = i * i; // monotone with cores
    s.net_bytes = 5;      // constant
    samples.push_back(s);
  }
  const auto m = demand_correlations(samples);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(m[i][i], 1.0);
  EXPECT_NEAR(m[0][1], -1.0, 1e-12);
  EXPECT_GT(m[0][2], 0.9);
  EXPECT_EQ(m[0][3], 0.0);  // constant column
}

TEST(WorkloadAnalysis, CovsComputedPerAttribute) {
  std::vector<TaskDemandSample> samples(4);
  samples[0].cores = 1;
  samples[1].cores = 1;
  samples[2].cores = 1;
  samples[3].cores = 1;
  const auto covs = demand_covs(samples);
  EXPECT_DOUBLE_EQ(covs[0], 0.0);  // constant cores
}

TEST(WorkloadAnalysis, TightnessReadsUsageSamples) {
  sim::SimResult r;
  r.machine_usage_samples[0] = {0.1, 0.7, 0.9, 0.95};  // cpu
  const auto t = tightness(r, 0.8);
  EXPECT_DOUBLE_EQ(t[0], 0.5);
  EXPECT_DOUBLE_EQ(t[1], 0.0);  // no samples -> zero
}

TEST(WorkloadAnalysis, HeatmapBinsAgainstMaxima) {
  std::vector<TaskDemandSample> samples(2);
  samples[0].cores = 0.4;  // 0.04 of max -> bin 0
  samples[0].mem = 0.4;
  samples[1].cores = 10;
  samples[1].mem = 10;
  const auto h = demand_heatmap(samples, /*attribute=*/0, /*bins=*/10);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.count(0, 0), 1u);
  EXPECT_EQ(h.count(9, 9), 1u);
}

TEST(WorkloadAnalysis, HeatmapRejectsBadAttribute) {
  EXPECT_THROW(demand_heatmap({}, 3), std::invalid_argument);
  EXPECT_THROW(demand_heatmap({}, -1), std::invalid_argument);
}

}  // namespace
}  // namespace tetris::analysis
