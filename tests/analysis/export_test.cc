#include "analysis/export.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace tetris::analysis {
namespace {

sim::SimResult sample_result() {
  sim::SimResult r;
  sim::JobRecord j;
  j.id = 0;
  j.name = "job,with,commas";
  j.arrival = 1;
  j.finish = 11;
  j.total_tasks = 2;
  r.jobs.push_back(j);
  sim::TaskRecord t;
  t.job = 0;
  t.stage = 1;
  t.index = 2;
  t.host = 3;
  t.start = 4;
  t.finish = 9;
  t.natural_duration = 5;
  r.tasks.push_back(t);
  sim::TimelineSample s;
  s.time = 10;
  s.running_tasks = 7;
  s.utilization[0] = 0.5;
  r.timeline.push_back(s);
  return r;
}

TEST(Export, JobsCsvHasHeaderAndEscaping) {
  const std::string csv = jobs_csv(sample_result());
  EXPECT_NE(csv.find("job,name,template"), std::string::npos);
  EXPECT_NE(csv.find("\"job,with,commas\""), std::string::npos);
  EXPECT_NE(csv.find(",10,"), std::string::npos);  // jct = 11 - 1
}

TEST(Export, UnfinishedJobGetsMinusOneJct) {
  auto r = sample_result();
  r.jobs[0].finish = -1;
  const std::string csv = jobs_csv(r);
  EXPECT_NE(csv.find(",-1,"), std::string::npos);
}

TEST(Export, TasksCsvHasAllColumns) {
  const std::string csv = tasks_csv(sample_result());
  EXPECT_NE(csv.find("natural_duration"), std::string::npos);
  EXPECT_NE(csv.find("0,1,2,3,4,9,5,5,"), std::string::npos);
}

TEST(Export, TimelineCsvNamesResources) {
  const std::string csv = timeline_csv(sample_result());
  EXPECT_NE(csv.find("time,running,cpu,mem,disk_r,disk_w,net_in,net_out"),
            std::string::npos);
  EXPECT_NE(csv.find("10,7,0.5,"), std::string::npos);
}

TEST(Export, ExportResultWritesThreeFiles) {
  const auto dir =
      std::filesystem::temp_directory_path() / "tetris_export_test";
  std::filesystem::remove_all(dir);
  const std::string prefix = (dir / "run").string();
  ASSERT_TRUE(export_result(prefix, sample_result()));
  EXPECT_TRUE(std::filesystem::exists(prefix + "_jobs.csv"));
  EXPECT_TRUE(std::filesystem::exists(prefix + "_tasks.csv"));
  EXPECT_TRUE(std::filesystem::exists(prefix + "_timeline.csv"));
  std::filesystem::remove_all(dir);
}

TEST(Export, EmptyResultStillProducesHeaders) {
  const sim::SimResult empty;
  EXPECT_FALSE(jobs_csv(empty).empty());
  EXPECT_FALSE(tasks_csv(empty).empty());
  EXPECT_FALSE(timeline_csv(empty).empty());
}

}  // namespace
}  // namespace tetris::analysis
