// E22 (extension) — deep-DAG (Bing-like) evaluation.
//
// The Bing/Cosmos trace in paper Table 1 has DAGs of "large depth", where
// barriers dominate: most of a job's lifetime is spent waiting for the
// last tasks of some stage. This bench runs the Bing-like generator and
// reports (a) the headline gains on deep DAGs and (b) what the barrier
// hint and the future-demand lookahead add when barriers are everywhere.
#include <iostream>

#include "bench/harness.h"
#include "workload/bing.h"

using namespace tetris;

int main(int argc, char** argv) {
  auto def = bench::Scale{};
  def.jobs = 80;
  def.machines = 24;
  const auto scale = bench::Scale::from_args(argc, argv, def);

  workload::BingConfig wcfg;
  wcfg.num_jobs = scale.jobs;
  wcfg.num_machines = scale.machines;
  wcfg.task_scale = 0.6;
  wcfg.arrival_window = 0;  // backlog, the paper's makespan methodology
  wcfg.seed = scale.seed;
  const sim::Workload w = workload::make_bing_workload(wcfg);

  sim::SimConfig cfg;
  cfg.num_machines = scale.machines;
  cfg.machine_capacity = workload::bing_machine();
  cfg.seed = scale.seed;

  std::size_t max_depth = 0;
  for (const auto& job : w.jobs)
    max_depth = std::max(max_depth, job.stages.size());
  std::cout << "bing-like trace: " << w.jobs.size() << " jobs, "
            << w.total_tasks() << " tasks, DAG depth up to " << max_depth
            << "\n\n";

  sched::SlotScheduler fair;
  sched::DrfScheduler drf;
  const auto r_fair = bench::run_baseline(cfg, w, fair);
  const auto r_drf = bench::run_baseline(cfg, w, drf);

  Table t({"variant", "JCT gain vs fair", "JCT gain vs drf",
           "makespan gain vs fair", "makespan gain vs drf"});
  const auto add = [&](const std::string& label, core::TetrisConfig tcfg) {
    const auto r = bench::run_tetris(cfg, w, std::move(tcfg));
    bench::warn_if_incomplete(r);
    t.add_row({label,
               format_double(analysis::avg_jct_reduction(r_fair, r), 1) + "%",
               format_double(analysis::avg_jct_reduction(r_drf, r), 1) + "%",
               format_double(analysis::makespan_reduction(r_fair, r), 1) + "%",
               format_double(analysis::makespan_reduction(r_drf, r), 1) +
                   "%"});
  };

  {
    core::TetrisConfig tcfg;
    tcfg.fairness_knob = 0;
    add("tetris (b=0.9)", tcfg);
  }
  {
    core::TetrisConfig tcfg;
    tcfg.fairness_knob = 0;
    tcfg.barrier_knob = 1.0;
    add("tetris, barrier hint off", tcfg);
  }
  {
    core::TetrisConfig tcfg;
    tcfg.fairness_knob = 0;
    tcfg.future_lookahead = 20;
    add("tetris + future lookahead", tcfg);
  }
  std::cout << t.to_string();
  std::cout
      << "(deep DAGs amplify barrier effects: every stage gates the next.\n"
         "The future lookahead — a win on map/reduce workloads, see\n"
         "bench_ablation — is net NEGATIVE here: with barriers everywhere\n"
         "something is always imminent and the eta predictions mislead,\n"
         "which is presumably why the paper left future knowledge to\n"
         "future work.)\n";
  return 0;
}
