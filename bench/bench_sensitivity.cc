// E17/E18 — §5.3.3 sensitivity analyses.
//
// Remote penalty: gains are flat while the penalty is between ~5% and
// ~40%; 0 over-uses remote resources, large values leave them fallow.
// SRTF weight m (eps = m * a_bar / p_bar): m = 0 costs ~10% of the
// completion-time gains; gains stabilize quickly and m ~ 1 is a good
// default; very large m trades makespan for completion time.
#include <iostream>

#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::from_args(argc, argv);
  // Batch arrival creates the standing backlog where policy choices bind
  // (also the paper's makespan methodology).
  const sim::Workload w = bench::facebook_workload(scale, /*arrival=*/0);
  const sim::SimConfig cfg = bench::facebook_cluster(scale);
  std::cout << "facebook trace (batch arrival): " << w.jobs.size() << " jobs, "
            << w.total_tasks() << " tasks\n\n";

  sched::SlotScheduler fair;
  const auto r_fair = bench::run_baseline(cfg, w, fair);

  Table rp({"remote penalty", "JCT gain vs fair", "makespan gain vs fair"});
  std::string csv_rp = "penalty,jct_gain,mk_gain\n";
  for (double penalty : {0.0, 0.05, 0.10, 0.20, 0.40, 0.70, 1.0}) {
    core::TetrisConfig tcfg;
    tcfg.remote_penalty = penalty;
    const auto r = bench::run_tetris(cfg, w, tcfg);
    bench::warn_if_incomplete(r);
    const double j = analysis::avg_jct_reduction(r_fair, r);
    const double m = analysis::makespan_reduction(r_fair, r);
    rp.add_row({format_percent(penalty, 0), format_double(j, 1) + "%",
                format_double(m, 1) + "%"});
    csv_rp += format_double(penalty, 2) + "," + format_double(j, 2) + "," +
              format_double(m, 2) + "\n";
  }
  std::cout << "§5.3.3 remote penalty sweep (paper: flat in ~[5%, 40%]):\n"
            << rp.to_string() << "\n";
  write_file("bench_results/sens_remote_penalty.csv", csv_rp);

  Table ms({"m (srtf weight)", "JCT gain vs fair", "makespan gain vs fair"});
  std::string csv_m = "m,jct_gain,mk_gain\n";
  for (double m : {0.0, 0.1, 0.5, 1.0, 2.0, 4.0, 10.0}) {
    core::TetrisConfig tcfg;
    tcfg.srtf_weight = m;
    const auto r = bench::run_tetris(cfg, w, tcfg);
    bench::warn_if_incomplete(r);
    const double j = analysis::avg_jct_reduction(r_fair, r);
    const double mk = analysis::makespan_reduction(r_fair, r);
    ms.add_row({format_double(m, 1), format_double(j, 1) + "%",
                format_double(mk, 1) + "%"});
    csv_m += format_double(m, 2) + "," + format_double(j, 2) + "," +
             format_double(mk, 2) + "\n";
  }
  std::cout << "§5.3.3 SRTF-weight sweep (paper: m=0 loses ~10% of JCT "
               "gains; little change beyond m~1):\n"
            << ms.to_string();
  write_file("bench_results/sens_srtf_weight.csv", csv_m);
  return 0;
}
