// Shared plumbing for the experiment drivers in bench/: standard cluster
// configs, scheduler factories, result capture and CDF printing. Each
// bench binary regenerates one of the paper's tables or figures (see
// DESIGN.md's per-experiment index) and writes machine-readable CSVs under
// bench_results/ alongside the human-readable stdout tables.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/export.h"
#include "analysis/metrics.h"
#include "core/tetris_scheduler.h"
#include "sched/drf_scheduler.h"
#include "sched/slot_scheduler.h"
#include "sched/srtf_scheduler.h"
#include "sched/upper_bound.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/facebook.h"
#include "workload/profiles.h"
#include "workload/suite.h"

namespace tetris::bench {

// Simulation scale knobs, overridable from the command line as
// "[jobs] [machines] [seed]" so the benches can be re-run bigger.
struct Scale {
  int jobs = 120;
  int machines = 30;
  std::uint64_t seed = 1;

  static Scale from_args(int argc, char** argv, Scale def) {
    Scale s = def;
    int pos = 0;
    for (int i = 1; i < argc; ++i) {
      if (argv[i][0] == '-') continue;  // leftover flags (e.g. gbench's)
      switch (pos++) {
        case 0: s.jobs = std::atoi(argv[i]); break;
        case 1: s.machines = std::atoi(argv[i]); break;
        case 2: s.seed = std::strtoull(argv[i], nullptr, 10); break;
        default: break;
      }
    }
    return s;
  }
  static Scale from_args(int argc, char** argv) {
    return from_args(argc, argv, Scale{});
  }
};

// The Facebook-simulation cluster (paper §5.1): every machine 16 cores,
// 32 GB, 4x50 MB/s disks, 1 Gbps.
inline sim::SimConfig facebook_cluster(const Scale& scale) {
  sim::SimConfig cfg;
  cfg.num_machines = scale.machines;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.seed = scale.seed;
  return cfg;
}

// The §5.1 workload suite at a simulation-friendly scale.
inline sim::Workload suite_workload(const Scale& scale,
                                    double arrival_window = 1500,
                                    double task_scale = 0.1) {
  workload::SuiteConfig wcfg;
  wcfg.num_jobs = scale.jobs;
  wcfg.num_machines = scale.machines;
  wcfg.task_scale = task_scale;
  wcfg.arrival_window = arrival_window;
  wcfg.seed = scale.seed;
  return workload::make_suite_workload(wcfg);
}

// The Facebook-like heavy-tailed trace at a simulation-friendly scale.
inline sim::Workload facebook_workload(const Scale& scale,
                                       double arrival_window = 1200,
                                       double task_scale = 1.0) {
  workload::FacebookConfig wcfg;
  wcfg.num_jobs = scale.jobs;
  wcfg.num_machines = scale.machines;
  wcfg.task_scale = task_scale;
  wcfg.arrival_window = arrival_window;
  wcfg.seed = scale.seed;
  return workload::make_facebook_workload(wcfg);
}

// Baseline and Tetris runs share the workload; Tetris additionally runs
// with the usage-based tracker (its §4 resource tracker).
inline sim::SimResult run_baseline(sim::SimConfig cfg, const sim::Workload& w,
                                   sim::Scheduler& s) {
  cfg.tracker = sim::TrackerMode::kAllocation;
  return sim::simulate(cfg, w, s);
}

inline sim::SimResult run_tetris(sim::SimConfig cfg, const sim::Workload& w,
                                 core::TetrisConfig tcfg = {}) {
  cfg.tracker = sim::TrackerMode::kUsage;
  if (tcfg.num_threads == 0) tcfg.num_threads = cfg.num_threads;
  core::TetrisScheduler tetris(std::move(tcfg));
  return sim::simulate(cfg, w, tetris);
}

// The §2.2.3 aggregate upper bound for this config/workload.
inline sim::SimResult run_upper_bound(const sim::SimConfig& cfg,
                                      const sim::Workload& w) {
  core::TetrisConfig tcfg;
  tcfg.name = "upper-bound";
  tcfg.fairness_knob = 0;   // most efficient schedule
  tcfg.barrier_knob = 1.0;  // no machine-level effects to hint around
  core::TetrisScheduler tetris(tcfg);
  return sim::simulate(sched::aggregate_config(cfg),
                       sched::aggregate_workload(w), tetris);
}

// Prints an improvement CDF at the percentiles the paper discusses.
inline void print_improvement_cdf(const std::string& title,
                                  std::vector<double> improvements) {
  Table t({"percentile", "JCT improvement (%)"});
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    t.add_row({format_double(p, 0), format_double(
                                        percentile(improvements, p), 1)});
  }
  std::cout << title << "\n" << t.to_string() << "\n";
}

// CSV dump of a full empirical CDF for plotting.
inline std::string cdf_csv(const std::vector<double>& xs) {
  std::string out = "value,fraction\n";
  for (const auto& p : empirical_cdf(xs)) {
    out += format_double(p.value, 4) + "," + format_double(p.fraction, 6) +
           "\n";
  }
  return out;
}

// The self-describing row tag for the bench_results CSVs: which scheduler
// variant, how many worker threads (resolved the same way run_tetris
// resolves the knob) and whether event tracing was on for the run.
inline analysis::RunTag run_tag(const std::string& scheduler,
                                const sim::SimConfig& cfg, int threads = 0) {
  analysis::RunTag tag;
  tag.scheduler = scheduler;
  tag.threads = threads > 0 ? threads : cfg.num_threads;
  tag.trace = cfg.trace.enabled;
  return tag;
}

inline void warn_if_incomplete(const sim::SimResult& r) {
  if (!r.completed) {
    std::cerr << "warning: scheduler '" << r.scheduler_name
              << "' did not drain the workload before max_time\n";
  }
}

}  // namespace tetris::bench
