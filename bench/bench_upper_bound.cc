// E5 — §2.2.3: the simple upper bound on packing gains.
//
// The relaxed problem (one aggregated bin, stage-uniform tasks, no
// over-allocation) bounds what any packer could achieve. The paper reports
// this bound at roughly 49% (39%) makespan (avg JCT) reduction vs
// slot-fair and slightly less vs DRF, with Tetris later achieving ~90%+ of
// it.
#include <iostream>

#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::from_args(argc, argv);
  const sim::Workload w = bench::facebook_workload(scale);
  const sim::SimConfig cfg = bench::facebook_cluster(scale);
  std::cout << "workload: " << w.jobs.size() << " jobs, " << w.total_tasks()
            << " tasks on " << scale.machines << " machines\n\n";

  sched::SlotScheduler slot;
  sched::DrfScheduler drf;
  const auto r_slot = bench::run_baseline(cfg, w, slot);
  const auto r_drf = bench::run_baseline(cfg, w, drf);
  const auto r_ub = bench::run_upper_bound(cfg, w);
  const auto r_tetris = bench::run_tetris(cfg, w);
  for (const auto* r : {&r_slot, &r_drf, &r_ub, &r_tetris})
    bench::warn_if_incomplete(*r);

  Table t({"scheduler", "makespan (s)", "avg JCT (s)"});
  for (const auto* r : {&r_slot, &r_drf, &r_ub, &r_tetris}) {
    t.add_row({r->scheduler_name, format_double(r->makespan, 1),
               format_double(r->avg_jct(), 1)});
  }
  std::cout << t.to_string() << "\n";

  Table g({"comparison", "makespan reduction", "avg JCT reduction"});
  const auto add = [&](const std::string& name, const sim::SimResult& base,
                       const sim::SimResult& treat) {
    g.add_row({name,
               format_percent(analysis::makespan_reduction(base, treat) / 100.0),
               format_percent(analysis::avg_jct_reduction(base, treat) / 100.0)});
  };
  add("upper bound vs slot-fair", r_slot, r_ub);
  add("upper bound vs drf", r_drf, r_ub);
  add("tetris vs slot-fair", r_slot, r_tetris);
  add("tetris vs drf", r_drf, r_tetris);
  std::cout << g.to_string() << "\n";

  const double frac_mk =
      analysis::makespan_reduction(r_slot, r_tetris) /
      std::max(1e-9, analysis::makespan_reduction(r_slot, r_ub));
  const double frac_jct =
      analysis::avg_jct_reduction(r_slot, r_tetris) /
      std::max(1e-9, analysis::avg_jct_reduction(r_slot, r_ub));
  std::cout << "tetris achieves " << format_percent(frac_mk)
            << " of the upper bound's makespan gain and "
            << format_percent(frac_jct)
            << " of its avg JCT gain (paper: ~90%+ of the bound)\n";
  return 0;
}
