// E19 — Figure 11 (gains vs cluster load).
//
// The paper varies load by shrinking the cluster (half the servers = twice
// the load) and finds Tetris's gains grow with load: at 4-6x, makespan
// improves well over 50% and avg JCT over 70%. At trivial load there is
// nothing to pack.
#include <iostream>

#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  auto def = bench::Scale{};
  // The 1x cluster is sized to be moderately loaded (as the paper's was);
  // higher load multiples shrink it.
  def.machines = 96;
  const auto scale = bench::Scale::from_args(argc, argv, def);
  std::cout << "facebook trace; base cluster " << scale.machines
            << " machines\n\n";

  Table t({"load multiple", "machines", "JCT gain vs fair",
           "makespan gain vs fair", "JCT gain vs drf",
           "makespan gain vs drf"});
  std::string csv = "load,machines,jct_fair,mk_fair,jct_drf,mk_drf\n";
  for (int load : {1, 2, 4, 6, 8}) {
    auto s = scale;
    s.machines = std::max(2, scale.machines / load);
    // Same seed, so the job mix is identical across load levels; only the
    // replica placement adapts to the shrunken cluster.
    const sim::Workload w = bench::facebook_workload(s, /*arrival=*/1200,
                                                     /*task_scale=*/0.6);
    sim::SimConfig cfg = bench::facebook_cluster(s);

    sched::SlotScheduler fair;
    sched::DrfScheduler drf;
    const auto r_fair = bench::run_baseline(cfg, w, fair);
    const auto r_drf = bench::run_baseline(cfg, w, drf);
    const auto r_tetris = bench::run_tetris(cfg, w);
    for (const auto* r : {&r_fair, &r_drf, &r_tetris})
      bench::warn_if_incomplete(*r);

    const double jf = analysis::avg_jct_reduction(r_fair, r_tetris);
    const double mf = analysis::makespan_reduction(r_fair, r_tetris);
    const double jd = analysis::avg_jct_reduction(r_drf, r_tetris);
    const double md = analysis::makespan_reduction(r_drf, r_tetris);
    t.add_row({std::to_string(load) + "x", std::to_string(s.machines),
               format_double(jf, 1) + "%", format_double(mf, 1) + "%",
               format_double(jd, 1) + "%", format_double(md, 1) + "%"});
    csv += std::to_string(load) + "," + std::to_string(s.machines) + "," +
           format_double(jf, 2) + "," + format_double(mf, 2) + "," +
           format_double(jd, 2) + "," + format_double(md, 2) + "\n";
  }
  std::cout << "Figure 11 — gains vs cluster load (paper: gains grow with "
               "load):\n"
            << t.to_string();
  write_file("bench_results/fig11_load.csv", csv);
  return 0;
}
