// E6 — Figure 4 (deployment experiment).
//
// The paper runs its §5.1 workload suite on a 250-server YARN cluster and
// reports (a) a CDF of per-job completion-time change vs the Capacity
// Scheduler and DRF — median ~30%, top decile >50%, a small tail of
// slowed jobs — and (b) ~30% makespan reductions. We reproduce it on the
// simulated deployment cluster with the same suite generator.
#include <iostream>

#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::from_args(argc, argv);
  workload::SuiteConfig wcfg;
  wcfg.num_jobs = scale.jobs;
  wcfg.num_machines = scale.machines;
  wcfg.task_scale = 0.1;
  wcfg.arrival_window = 400;
  wcfg.seed = scale.seed;
  const sim::Workload w = workload::make_suite_workload(wcfg);

  sim::SimConfig cfg;
  cfg.num_machines = scale.machines;
  cfg.machine_capacity = workload::deployment_machine();
  cfg.seed = scale.seed;
  std::cout << "deployment suite: " << w.jobs.size() << " jobs, "
            << w.total_tasks() << " tasks on " << scale.machines
            << " deployment-profile machines\n\n";

  sched::SlotSchedulerConfig cs_cfg;
  cs_cfg.name = "capacity-scheduler";
  sched::SlotScheduler cs(cs_cfg);
  sched::DrfScheduler drf;
  const auto r_cs = bench::run_baseline(cfg, w, cs);
  const auto r_drf = bench::run_baseline(cfg, w, drf);
  const auto r_tetris = bench::run_tetris(cfg, w);
  for (const auto* r : {&r_cs, &r_drf, &r_tetris}) bench::warn_if_incomplete(*r);

  // Figure 4a: CDF of change in job completion time.
  const auto imp_cs = analysis::per_job_improvements(r_cs, r_tetris);
  const auto imp_drf = analysis::per_job_improvements(r_drf, r_tetris);
  bench::print_improvement_cdf("Figure 4a — Tetris vs Capacity Scheduler:",
                               imp_cs);
  bench::print_improvement_cdf("Figure 4a — Tetris vs DRF:", imp_drf);
  write_file("bench_results/fig4a_cdf_vs_cs.csv", bench::cdf_csv(imp_cs));
  write_file("bench_results/fig4a_cdf_vs_drf.csv", bench::cdf_csv(imp_drf));

  // Figure 4b: makespan reduction.
  Table t({"comparison", "makespan reduction", "avg JCT reduction",
           "median JCT reduction", "paper"});
  t.add_row({"tetris vs CS",
             format_percent(analysis::makespan_reduction(r_cs, r_tetris) / 100.0),
             format_percent(analysis::avg_jct_reduction(r_cs, r_tetris) / 100.0),
             format_percent(
                 analysis::median_jct_reduction(r_cs, r_tetris) / 100.0),
             "~30%"});
  t.add_row(
      {"tetris vs DRF",
       format_percent(analysis::makespan_reduction(r_drf, r_tetris) / 100.0),
       format_percent(analysis::avg_jct_reduction(r_drf, r_tetris) / 100.0),
       format_percent(analysis::median_jct_reduction(r_drf, r_tetris) / 100.0),
       "~28%"});
  std::cout << "Figure 4b — makespan and completion-time reductions:\n"
            << t.to_string() << "\n";

  // Task-duration improvement (§5.2: reduced contention shortens tasks).
  std::cout << "mean task duration: CS="
            << format_double(analysis::mean_task_duration(r_cs), 1)
            << "s, DRF=" << format_double(analysis::mean_task_duration(r_drf), 1)
            << "s, Tetris="
            << format_double(analysis::mean_task_duration(r_tetris), 1)
            << "s\n";
  return 0;
}
