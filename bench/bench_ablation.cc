// E20 — §5.3.1 ablation: where do the gains come from?
//
//   * packing-only (eps = 0): most of the makespan gains, smaller JCT gain.
//   * SRTF-only: JCT gains but fragments resources.
//   * combined: better than either alone.
//   * cpu+mem-only Tetris: reintroduces disk/network over-allocation —
//     the paper attributes ~2/3 of its gains to avoiding over-allocation
//     and ~1/3 to avoiding fragmentation.
#include <iostream>

#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::from_args(argc, argv);
  // Batch arrival creates the standing backlog where policy choices bind
  // (also the paper's makespan methodology).
  const sim::Workload w = bench::facebook_workload(scale, /*arrival=*/0);
  const sim::SimConfig cfg = bench::facebook_cluster(scale);
  std::cout << "facebook trace (batch arrival): " << w.jobs.size() << " jobs, "
            << w.total_tasks() << " tasks\n\n";

  sched::SlotScheduler fair;
  sched::DrfScheduler drf;
  const auto r_fair = bench::run_baseline(cfg, w, fair);
  const auto r_drf = bench::run_baseline(cfg, w, drf);

  struct Variant {
    std::string label;
    core::TetrisConfig tcfg;
  };
  // All variants run with the fairness and barrier knobs off so the
  // ablation isolates the packing and SRTF heuristics themselves.
  std::vector<Variant> variants;
  {
    Variant v;
    v.label = "tetris (combined)";
    v.tcfg.fairness_knob = 0;
    v.tcfg.barrier_knob = 1.0;
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "packing only (eps=0)";
    v.tcfg.fairness_knob = 0;
    v.tcfg.barrier_knob = 1.0;
    v.tcfg.srtf_weight = 0;
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "tetris cpu+mem only";
    v.tcfg.fairness_knob = 0;
    v.tcfg.barrier_knob = 1.0;
    v.tcfg.only_cpu_mem = true;
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "tetris + future lookahead (ext)";
    v.tcfg.fairness_knob = 0;
    v.tcfg.barrier_knob = 1.0;
    v.tcfg.future_lookahead = 15;
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "tetris + starvation resv (ext)";
    v.tcfg.fairness_knob = 0;
    v.tcfg.barrier_knob = 1.0;
    v.tcfg.starvation_threshold = 60;
    variants.push_back(v);
  }

  Table t({"variant", "JCT gain vs fair", "JCT gain vs drf",
           "makespan gain vs fair", "makespan gain vs drf",
           "mean task duration (s)"});
  const auto add_row = [&](const std::string& label, const sim::SimResult& r) {
    t.add_row({label,
               format_double(analysis::avg_jct_reduction(r_fair, r), 1) + "%",
               format_double(analysis::avg_jct_reduction(r_drf, r), 1) + "%",
               format_double(analysis::makespan_reduction(r_fair, r), 1) + "%",
               format_double(analysis::makespan_reduction(r_drf, r), 1) + "%",
               format_double(analysis::mean_task_duration(r), 1)});
  };

  for (const auto& v : variants) {
    const auto r = bench::run_tetris(cfg, w, v.tcfg);
    bench::warn_if_incomplete(r);
    add_row(v.label, r);
  }
  // SRTF-only is a separate scheduler (strict job order, no packing).
  {
    sched::SrtfScheduler srtf;
    auto c = cfg;
    const auto r = bench::run_baseline(c, w, srtf);
    bench::warn_if_incomplete(r);
    add_row("srtf only (no packing)", r);
  }
  add_row("fair scheduler (baseline)", r_fair);
  add_row("drf (baseline)", r_drf);

  std::cout << "§5.3.1 ablation (paper: combined beats either heuristic "
               "alone; dropping disk/network awareness costs ~2/3 of the "
               "gains; task durations shorten ~30% from avoided "
               "over-allocation):\n"
            << t.to_string();
  return 0;
}
