// E1 — Figure 1 / §2.1 motivating example.
//
// Three two-phase jobs on an 18-core / 36 GB / 3 Gbps cluster. The paper's
// hand schedule: DRF finishes every job at 6t while a packing schedule
// finishes them at 2t, 3t, 4t — average JCT 6t -> ~3t (50% better) and
// makespan 6t -> 4t (33% better), with every single job faster.
#include <iostream>

#include "analysis/metrics.h"
#include "bench/harness.h"
#include "workload/motivating.h"

using namespace tetris;

int main() {
  const auto ex = workload::make_motivating_example();
  std::cout << "Figure 1 motivating example: 3 jobs, t = " << ex.t
            << "s, cluster = 3 x (6 cores, 12 GB, 1 Gbps)\n\n";

  // DRF here is the paper's extended variant that also tracks network —
  // plain cpu+mem DRF does even worse (incast on the reduces).
  sched::DrfSchedulerConfig drf_net_cfg;
  drf_net_cfg.dims = {Resource::kCpu, Resource::kMem, Resource::kNetIn};
  drf_net_cfg.name = "drf+network";
  sched::DrfScheduler drf_net(drf_net_cfg);
  sched::DrfScheduler drf_plain;

  core::TetrisConfig tcfg;
  tcfg.fairness_knob = 0;  // the example's packing schedule ignores fairness
  tcfg.name = "packing (tetris f=0)";

  const auto r_drf_net = bench::run_baseline(ex.config, ex.workload, drf_net);
  const auto r_drf = bench::run_baseline(ex.config, ex.workload, drf_plain);
  const auto r_pack = bench::run_tetris(ex.config, ex.workload, tcfg);

  // The paper's hand schedule treats the cluster as one aggregated bin
  // ("one big bag of resources"); reproduce that view too, where packing
  // reaches the clean 2t/3t/4t schedule.
  const auto agg_cfg = sched::aggregate_config(ex.config);
  const auto agg_w = sched::aggregate_workload(ex.workload);
  sched::DrfSchedulerConfig drf_agg_cfg = drf_net_cfg;
  drf_agg_cfg.name = "drf+network (one big bin)";
  sched::DrfScheduler drf_agg(drf_agg_cfg);
  const auto r_drf_agg = bench::run_baseline(agg_cfg, agg_w, drf_agg);
  core::TetrisConfig agg_tcfg = tcfg;
  agg_tcfg.name = "packing (one big bin)";
  core::TetrisScheduler pack_agg(agg_tcfg);
  auto agg_cfg2 = agg_cfg;
  const auto r_pack_agg = sim::simulate(agg_cfg2, agg_w, pack_agg);

  Table t({"schedule", "makespan", "makespan (t)", "avg JCT", "avg JCT (t)",
           "job finish times (t)"});
  for (const auto* r :
       {&r_drf, &r_drf_net, &r_pack, &r_drf_agg, &r_pack_agg}) {
    bench::warn_if_incomplete(*r);
    std::string finishes;
    for (const auto& j : r->jobs) {
      if (!finishes.empty()) finishes += ", ";
      finishes += j.name + "=" + format_double(j.finish / ex.t, 2);
    }
    t.add_row({r->scheduler_name, format_double(r->makespan, 1),
               format_double(r->makespan / ex.t, 2),
               format_double(r->avg_jct(), 1),
               format_double(r->avg_jct() / ex.t, 2), finishes});
  }
  std::cout << t.to_string() << "\n";

  std::cout << "packing vs plain drf:   makespan reduction = "
            << format_percent(analysis::makespan_reduction(r_drf, r_pack) /
                              100.0)
            << ", avg JCT reduction = "
            << format_percent(analysis::avg_jct_reduction(r_drf, r_pack) /
                              100.0)
            << "\n";
  std::cout << "packing vs drf+network: makespan reduction = "
            << format_percent(
                   analysis::makespan_reduction(r_drf_net, r_pack) / 100.0)
            << ", avg JCT reduction = "
            << format_percent(
                   analysis::avg_jct_reduction(r_drf_net, r_pack) / 100.0)
            << "\n";
  std::cout
      << "paper reference: makespan 6t -> 4t (33%), avg JCT 6t -> ~3t "
         "(50%), every job faster.\n"
         "note: the paper's Figure 1b hand schedule runs job A first; the\n"
         "alignment score genuinely prefers B/C's chunkier map tasks\n"
         "(0.58 vs 0.33 dot product), so Tetris realizes a different\n"
         "permutation of the same packing idea — slightly better average\n"
         "JCT, one t worse makespan than the hand schedule.\n";
  return 0;
}
