// E7/E8 — Figure 5 and Table 6.
//
// Figure 5: timeline of running tasks and cluster-wide resource usage for
// Tetris, the Capacity Scheduler and DRF on one run. Tetris keeps more
// tasks running, is bottlenecked on different resources at different
// times, and never over-allocates; CS/DRF fragment the resources they
// track and over-allocate the ones they don't (disk/network beyond 100%
// demand, realized as contention).
// Table 6: probability that a machine uses a resource above 60/80/95% of
// capacity — Tetris drives all resources higher.
#include <iostream>

#include "analysis/workload_analysis.h"
#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::from_args(argc, argv);
  const sim::Workload w = bench::suite_workload(scale, /*arrival_window=*/800);
  sim::SimConfig cfg = bench::facebook_cluster(scale);
  cfg.collect_timeline = true;
  cfg.timeline_period = 20.0;
  std::cout << "workload: " << w.jobs.size() << " jobs, " << w.total_tasks()
            << " tasks\n\n";

  sched::SlotSchedulerConfig cs_cfg;
  cs_cfg.name = "capacity-scheduler";
  sched::SlotScheduler cs(cs_cfg);
  sched::DrfScheduler drf;
  const auto r_cs = bench::run_baseline(cfg, w, cs);
  const auto r_drf = bench::run_baseline(cfg, w, drf);
  const auto r_tetris = bench::run_tetris(cfg, w);

  // Figure 5: CSV timelines per scheduler.
  for (const auto* r : {&r_cs, &r_drf, &r_tetris}) {
    bench::warn_if_incomplete(*r);
    std::string csv = "time,running,cpu,mem,disk_r,disk_w,net_in,net_out\n";
    for (const auto& s : r->timeline) {
      csv += format_double(s.time, 0) + "," + std::to_string(s.running_tasks);
      for (double u : s.utilization) csv += "," + format_double(u, 4);
      csv += "\n";
    }
    write_file("bench_results/fig5_timeline_" + r->scheduler_name + ".csv",
               csv);
  }

  Table peak({"scheduler", "peak running", "mean running", "peak cpu",
              "peak disk_r", "peak net_in"});
  for (const auto* r : {&r_cs, &r_drf, &r_tetris}) {
    int peak_run = 0;
    double sum_run = 0, peak_cpu = 0, peak_dr = 0, peak_ni = 0;
    for (const auto& s : r->timeline) {
      peak_run = std::max(peak_run, s.running_tasks);
      sum_run += s.running_tasks;
      peak_cpu = std::max(peak_cpu, s.utilization[0]);
      peak_dr = std::max(peak_dr, s.utilization[2]);
      peak_ni = std::max(peak_ni, s.utilization[4]);
    }
    peak.add_row({r->scheduler_name, std::to_string(peak_run),
                  format_double(sum_run / std::max<std::size_t>(
                                              1, r->timeline.size()),
                                1),
                  format_percent(peak_cpu), format_percent(peak_dr),
                  format_percent(peak_ni)});
  }
  std::cout << "Figure 5 — running tasks and utilization (full series in "
               "bench_results/fig5_*.csv):\n"
            << peak.to_string() << "\n";

  // Table 6.
  std::cout << "Table 6 — P(machine uses resource above fraction of "
               "capacity):\n";
  Table t6({"scheduler", "resource", ">60%", ">80%", ">95%"});
  for (const auto* r : {&r_tetris, &r_cs, &r_drf}) {
    const auto t60 = analysis::tightness(*r, 0.60);
    const auto t80 = analysis::tightness(*r, 0.80);
    const auto t95 = analysis::tightness(*r, 0.95);
    for (Resource res :
         {Resource::kCpu, Resource::kMem, Resource::kDiskRead,
          Resource::kNetIn}) {
      const auto i = static_cast<std::size_t>(res);
      t6.add_row({r->scheduler_name, std::string(resource_name(res)),
                  format_double(t60[i], 3), format_double(t80[i], 3),
                  format_double(t95[i], 3)});
    }
  }
  std::cout << t6.to_string();
  std::cout << "(paper: Tetris uses more of every resource; baselines "
               "under-use what they track and over-allocate the rest)\n";
  return 0;
}
