// E12 — Table 7 (alternative packing heuristics).
//
// Replaces Tetris's alignment scorer with the alternatives from the
// literature and compares gains. Paper: the (normalized) dot product wins;
// L2-Norm-Diff does well on makespan but lags on completion time; the
// FFD variants (machine-oblivious) trail.
#include <iostream>

#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::from_args(argc, argv);
  // Batch arrival creates the standing backlog where policy choices bind
  // (also the paper's makespan methodology).
  const sim::Workload w = bench::facebook_workload(scale, /*arrival=*/0);
  const sim::SimConfig cfg = bench::facebook_cluster(scale);
  std::cout << "facebook trace (batch arrival): " << w.jobs.size() << " jobs, "
            << w.total_tasks() << " tasks\n\n";

  sched::SlotScheduler fair;
  const auto r_fair = bench::run_baseline(cfg, w, fair);

  Table t({"alignment heuristic", "avg JCT gain vs fair",
           "makespan gain vs fair"});
  std::string csv = "heuristic,jct_gain,mk_gain\n";
  for (core::AlignmentKind kind :
       {core::AlignmentKind::kCosine, core::AlignmentKind::kL2NormDiff,
        core::AlignmentKind::kL2NormRatio, core::AlignmentKind::kFfdProd,
        core::AlignmentKind::kFfdSum}) {
    core::TetrisConfig tcfg;
    tcfg.alignment = kind;
    // Knobs off: compare the alignment scorers themselves.
    tcfg.fairness_knob = 0;
    tcfg.barrier_knob = 1.0;
    const auto r = bench::run_tetris(cfg, w, tcfg);
    bench::warn_if_incomplete(r);
    const double j = analysis::avg_jct_reduction(r_fair, r);
    const double m = analysis::makespan_reduction(r_fair, r);
    t.add_row({std::string(core::alignment_name(kind)),
               format_double(j, 1) + "%", format_double(m, 1) + "%"});
    csv += std::string(core::alignment_name(kind)) + "," +
           format_double(j, 2) + "," + format_double(m, 2) + "\n";
  }
  std::cout << "Table 7 — alignment heuristic shoot-out (paper: cosine/dot "
               "product best on both metrics):\n"
            << t.to_string();
  write_file("bench_results/table7_alignment.csv", csv);
  return 0;
}
