// E26 — federated packing-quality loss and wall-clock scaling
// (DESIGN.md §14). Sweeps the cell count {1, 2, 4, 8, 16} x dispatch
// policy over the heavy Facebook trace and measures what federating the
// cluster costs against the single global Tetris scheduler: makespan,
// avg JCT, fragmentation, utilization skew across cells — and, new with
// the cell-parallel driver (§14.5), what it buys back in wall clock:
// every row carries a min-of-3 sched_wall_ms + tasks/sec measurement,
// and a second sweep scales `cell_threads` in {1, 2, 4, 8} at the high
// cell counts to show the federated drive parallelizing across cells.
// The 1-cell federation is asserted BIT-IDENTICAL to the global run
// (job finishes, task placements, makespan) and every cell_threads
// setting is asserted bit-identical to the serial driver — the sweep's
// baselines are proven, not assumed.
//
// Usage: bench_federation [jobs] [machines] [seed] [--cells=K]
//   --cells=K restricts both sweeps to K cells (plus the global baseline
//   and the 1-cell identity check); CI uses --cells=2 as a smoke run.
// Rows land in bench_results/federation_sweep.csv (packing loss),
// bench_results/federation_scaling.csv (cell_threads wall-clock sweep)
// and bench_results/federation_perf_counters.csv (merged per-cell
// counters incl. idle_cell_skips / cell_advance_seconds), all with the
// standard scheduler,threads,trace,cells,dispatcher prefix (the global
// baseline reports cells=0, dispatcher=global).
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "federation/federated_simulator.h"

namespace {

using tetris::Table;
using tetris::format_double;
namespace bench = tetris::bench;
namespace federation = tetris::federation;
namespace sim = tetris::sim;

// Mean dominant-resource utilization over the timeline — the same
// statistic FederatedResult reports per cell, computed for the global run.
double dominant_utilization(const sim::SimResult& r) {
  if (r.timeline.empty()) return 0.0;
  double sum = 0;
  for (const auto& s : r.timeline) {
    double dominant = 0;
    for (double u : s.utilization) dominant = std::max(dominant, u);
    sum += dominant;
  }
  return sum / static_cast<double>(r.timeline.size());
}

long count_tasks(const sim::Workload& w) {
  long n = 0;
  for (const auto& job : w.jobs) {
    for (const auto& stage : job.stages) {
      n += static_cast<long>(stage.tasks.size());
    }
  }
  return n;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Min-of-3 wall clock around a deterministic run: the result is the same
// every repeat (federated runs are pure functions of config x workload),
// so the minimum is the honest "how fast can this config go" number, with
// scheduler warm-up and OS noise filtered out.
constexpr int kRepeats = 3;

federation::FederatedResult timed_federated(
    const federation::FederationConfig& fc, const sim::Workload& w,
    double* min_wall_seconds) {
  federation::FederatedResult res;
  double best = -1;
  for (int r = 0; r < kRepeats; ++r) {
    const double t0 = now_seconds();
    res = federation::simulate_federated(fc, w);
    const double wall = now_seconds() - t0;
    if (best < 0 || wall < best) best = wall;
  }
  *min_wall_seconds = best;
  return res;
}

std::string csv_row(const tetris::analysis::RunTag& tag, long jobs,
                    int machines, bool completed, long reassigned, long lost,
                    double makespan, double avg_jct, double util,
                    double fragmentation, double skew, double makespan_loss,
                    double jct_loss, double wall_ms, double tasks_per_sec) {
  return tag.scheduler + "," + std::to_string(tag.threads) + "," +
         (tag.trace ? "1" : "0") + "," + std::to_string(tag.cells) + "," +
         tag.dispatcher + "," + std::to_string(jobs) + "," +
         std::to_string(machines) + "," + (completed ? "1" : "0") + "," +
         std::to_string(reassigned) + "," + std::to_string(lost) + "," +
         format_double(makespan, 2) + "," + format_double(avg_jct, 2) + "," +
         format_double(util, 4) + "," + format_double(fragmentation, 4) +
         "," + format_double(skew, 4) + "," +
         format_double(makespan_loss, 2) + "," + format_double(jct_loss, 2) +
         "," + format_double(wall_ms, 3) + "," +
         format_double(tasks_per_sec, 1) + "\n";
}

bool check_one_cell_identity(const federation::FederatedResult& fed,
                             const sim::SimResult& global) {
  bool ok = true;
  if (fed.makespan != global.makespan) {
    std::cerr << "IDENTITY FAIL: 1-cell makespan " << fed.makespan
              << " != global " << global.makespan << "\n";
    ok = false;
  }
  if (fed.job_records.size() != global.jobs.size()) {
    std::cerr << "IDENTITY FAIL: job record counts "
              << fed.job_records.size() << " vs " << global.jobs.size()
              << "\n";
    return false;
  }
  for (std::size_t i = 0; i < global.jobs.size(); ++i) {
    if (fed.job_records[i].finish != global.jobs[i].finish) {
      std::cerr << "IDENTITY FAIL: job " << i << " finish "
                << fed.job_records[i].finish << " != "
                << global.jobs[i].finish << "\n";
      return false;
    }
  }
  if (fed.tasks.size() != global.tasks.size()) {
    std::cerr << "IDENTITY FAIL: task record counts " << fed.tasks.size()
              << " vs " << global.tasks.size() << "\n";
    return false;
  }
  for (std::size_t i = 0; i < global.tasks.size(); ++i) {
    const auto& a = global.tasks[i];
    const auto& b = fed.tasks[i];
    if (a.job != b.job || a.stage != b.stage || a.index != b.index ||
        a.host != b.host || a.start != b.start || a.finish != b.finish) {
      std::cerr << "IDENTITY FAIL: task[" << i << "] global job=" << a.job
                << " host=" << a.host << " start=" << a.start
                << ", federated job=" << b.job << " host=" << b.host
                << " start=" << b.start << "\n";
      return false;
    }
  }
  return ok;
}

// Cell-parallel vs serial driver: placements, job finishes and makespan
// must match bit for bit at every cell_threads count. Prints the first
// diverging record on mismatch (the kDecisions-level diagnostics live in
// federation_determinism_test; a record-level pin is enough to fail the
// bench loudly and say where).
bool check_parallel_identity(const federation::FederatedResult& serial,
                             const federation::FederatedResult& parallel,
                             int cell_threads) {
  const std::string what =
      "cell_threads=" + std::to_string(cell_threads) + " vs serial driver";
  if (serial.makespan != parallel.makespan) {
    std::cerr << "SCALING IDENTITY FAIL (" << what << "): makespan "
              << parallel.makespan << " != " << serial.makespan << "\n";
    return false;
  }
  if (serial.job_records.size() != parallel.job_records.size()) {
    std::cerr << "SCALING IDENTITY FAIL (" << what << "): job counts\n";
    return false;
  }
  for (std::size_t i = 0; i < serial.job_records.size(); ++i) {
    if (serial.job_records[i].finish != parallel.job_records[i].finish) {
      std::cerr << "SCALING IDENTITY FAIL (" << what << "): first diverging "
                << "job " << i << " finish " << parallel.job_records[i].finish
                << " != " << serial.job_records[i].finish << "\n";
      return false;
    }
  }
  if (serial.tasks.size() != parallel.tasks.size()) {
    std::cerr << "SCALING IDENTITY FAIL (" << what << "): task counts\n";
    return false;
  }
  for (std::size_t i = 0; i < serial.tasks.size(); ++i) {
    const auto& a = serial.tasks[i];
    const auto& b = parallel.tasks[i];
    if (a.job != b.job || a.host != b.host || a.start != b.start ||
        a.finish != b.finish) {
      std::cerr << "SCALING IDENTITY FAIL (" << what << "): first diverging "
                << "task[" << i << "] serial job=" << a.job
                << " host=" << a.host << " start=" << a.start
                << ", parallel job=" << b.job << " host=" << b.host
                << " start=" << b.start << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale =
      bench::Scale::from_args(argc, argv, bench::Scale{160, 64, 1});
  int only_cells = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--cells=", 8) == 0) {
      only_cells = std::atoi(argv[i] + 8);
    }
  }

  // Rack-aligned partitions for every cell count in the sweep: racks of
  // machines/16 (>= 1), so 16 cells = one rack each.
  const int per_rack = std::max(1, scale.machines / 16);
  sim::SimConfig base = bench::facebook_cluster(scale);
  base.machines_per_rack = per_rack;
  base.tracker = sim::TrackerMode::kUsage;
  base.collect_timeline = true;
  const sim::Workload w = sim::sorted_by_arrival(
      bench::facebook_workload(scale, /*arrival_window=*/600));
  const long total_tasks = count_tasks(w);

  // The global baseline: one Tetris over the whole cluster, min-of-3.
  double g_wall = -1;
  sim::SimResult global;
  for (int r = 0; r < kRepeats; ++r) {
    const double t0 = now_seconds();
    global = bench::run_tetris(base, w);
    const double wall = now_seconds() - t0;
    if (g_wall < 0 || wall < g_wall) g_wall = wall;
  }
  bench::warn_if_incomplete(global);
  const double g_util = dominant_utilization(global);

  Table t({"cells", "dispatcher", "completed", "reassigned", "makespan (s)",
           "avg JCT (s)", "avg util", "fragmentation", "util skew",
           "makespan loss (%)", "JCT loss (%)", "wall (ms)", "tasks/s"});
  tetris::analysis::RunTag gtag = bench::run_tag("tetris-federated", base);
  std::string csv =
      "scheduler,threads,trace,cells,dispatcher,jobs,machines,completed,"
      "reassigned,lost,makespan,avg_jct,avg_utilization,fragmentation,"
      "utilization_skew,makespan_loss_pct,jct_loss_pct,sched_wall_ms,"
      "tasks_per_sec\n";
  const double g_jct = global.avg_jct();
  const double g_tps = g_wall > 0 ? total_tasks / g_wall : 0.0;
  t.add_row({"0 (global)", "-", global.completed ? "yes" : "no", "0",
             format_double(global.makespan, 1), format_double(g_jct, 1),
             format_double(g_util, 3), format_double(1.0 - g_util, 3), "-",
             "0.0", "0.0", format_double(g_wall * 1e3, 1),
             format_double(g_tps, 0)});
  csv += csv_row(gtag, static_cast<long>(w.jobs.size()), scale.machines,
                 global.completed, 0, 0, global.makespan, g_jct, g_util,
                 1.0 - g_util, 0.0, 0.0, 0.0, g_wall * 1e3, g_tps);

  const std::vector<federation::DispatchPolicy> policies = {
      federation::DispatchPolicy::kLeastLoaded,
      federation::DispatchPolicy::kRoundRobin,
      federation::DispatchPolicy::kPowerOfTwo,
      federation::DispatchPolicy::kLocalityAware,
  };

  bool identity_checked = false;
  bool identity_ok = true;
  std::vector<int> feasible_cells;
  for (int cells : {1, 2, 4, 8, 16}) {
    if (cells > scale.machines || scale.machines % cells != 0) continue;
    const int cell_size = scale.machines / cells;
    if (cell_size % per_rack != 0) continue;
    if (only_cells > 0 && cells != 1 && cells != only_cells) continue;
    feasible_cells.push_back(cells);

    federation::FederationConfig fc;
    fc.base = base;
    for (int c = 0; c < cells; ++c) {
      fc.base.cells.push_back({c * cell_size, (c + 1) * cell_size});
    }

    for (const auto policy : policies) {
      fc.policy = policy;
      double wall = 0;
      const federation::FederatedResult fed = timed_federated(fc, w, &wall);
      if (cells == 1 && !identity_checked) {
        // Every policy degenerates to the same single cell; check once.
        identity_checked = true;
        identity_ok = check_one_cell_identity(fed, global);
        std::cout << "1-cell identity vs global scheduler: "
                  << (identity_ok ? "BIT-IDENTICAL" : "DIVERGED") << "\n";
      }
      const double mk_loss =
          global.makespan > 0
              ? 100.0 * (fed.makespan - global.makespan) / global.makespan
              : 0.0;
      const double jct_loss =
          g_jct > 0 ? 100.0 * (fed.avg_jct - g_jct) / g_jct : 0.0;
      const double tps = wall > 0 ? total_tasks / wall : 0.0;
      tetris::analysis::RunTag tag = gtag;
      tag.cells = cells;
      tag.dispatcher = federation::policy_name(policy);
      t.add_row({std::to_string(cells), tag.dispatcher,
                 fed.completed ? "yes" : "no",
                 std::to_string(fed.reassigned_jobs),
                 format_double(fed.makespan, 1),
                 format_double(fed.avg_jct, 1),
                 format_double(fed.avg_utilization, 3),
                 format_double(fed.fragmentation, 3),
                 format_double(fed.utilization_skew, 3),
                 format_double(mk_loss, 1), format_double(jct_loss, 1),
                 format_double(wall * 1e3, 1), format_double(tps, 0)});
      csv += csv_row(tag, fed.jobs, scale.machines, fed.completed,
                     fed.reassigned_jobs, fed.lost_jobs, fed.makespan,
                     fed.avg_jct, fed.avg_utilization, fed.fragmentation,
                     fed.utilization_skew, mk_loss, jct_loss, wall * 1e3,
                     tps);
      if (cells == 1) break;  // policies are indistinguishable at 1 cell
    }
  }

  std::cout << "\nFederation sweep — packing-quality loss vs the global "
               "scheduler (E26):\n"
            << t.to_string() << "\n";
  std::cout << "(expected: losses grow with the cell count as packing "
               "fragments across dispatcher-isolated slices; least-loaded "
               "and p2c track each other, round-robin pays the most at "
               "high cell counts, locality trades a little balance for "
               "local reads)\n";
  tetris::write_file("bench_results/federation_sweep.csv", csv);
  if (!identity_checked) {
    std::cerr << "ERROR: sweep never ran the 1-cell identity check\n";
    return 1;
  }

  // ---- cell_threads wall-clock scaling sweep (DESIGN.md §14.5) ----
  // The serial driver (cell_threads=1) is the baseline; {2, 4, 8} fan
  // the per-cell advance out on the pool. Every setting is asserted
  // bit-identical to the baseline before its wall clock is believed.
  // allow_oversubscription is set because the sweep deliberately runs
  // past the core count on small CI boxes — the CSV records the honest
  // wall clock either way, and docs/BENCHMARKS.md reads it against the
  // machine's hardware_concurrency.
  Table st({"cells", "cell_threads", "wall (ms)", "tasks/s", "speedup",
            "idle skips", "advance (ms)", "identical"});
  std::string scsv =
      "scheduler,threads,trace,cells,dispatcher,cell_threads,jobs,machines,"
      "tasks,completed,sched_wall_ms,tasks_per_sec,speedup_vs_serial,"
      "idle_cell_skips,cell_advance_ms,makespan\n";
  std::string pcsv;
  bool scaling_ok = true;
  bool scaling_header = true;
  // The high cell counts are where cell-parallelism has room to work;
  // sweep every feasible count >= 8, or the largest feasible one when
  // the scale (or --cells) allows none.
  std::vector<int> scaling_cells;
  for (int cells : feasible_cells) {
    if (cells >= 8) scaling_cells.push_back(cells);
  }
  if (scaling_cells.empty() && !feasible_cells.empty() &&
      feasible_cells.back() > 1) {
    scaling_cells.push_back(feasible_cells.back());
  }
  for (int cells : scaling_cells) {
    const int cell_size = scale.machines / cells;
    federation::FederationConfig fc;
    fc.base = base;
    for (int c = 0; c < cells; ++c) {
      fc.base.cells.push_back({c * cell_size, (c + 1) * cell_size});
    }
    fc.policy = federation::DispatchPolicy::kLeastLoaded;
    fc.allow_oversubscription = true;

    federation::FederatedResult serial;
    double serial_wall = 0;
    for (int cell_threads : {1, 2, 4, 8}) {
      fc.cell_threads = cell_threads;
      double wall = 0;
      const federation::FederatedResult fed = timed_federated(fc, w, &wall);
      bool same = true;
      if (cell_threads == 1) {
        serial = fed;
        serial_wall = wall;
      } else {
        same = check_parallel_identity(serial, fed, cell_threads);
        scaling_ok = scaling_ok && same;
      }
      const double speedup = wall > 0 ? serial_wall / wall : 0.0;
      const double tps = wall > 0 ? total_tasks / wall : 0.0;
      const double advance_ms =
          static_cast<double>(fed.perf.cell_advance_nanos) * 1e-6;
      st.add_row({std::to_string(cells), std::to_string(cell_threads),
                  format_double(wall * 1e3, 1), format_double(tps, 0),
                  format_double(speedup, 2),
                  std::to_string(fed.perf.idle_cell_skips),
                  format_double(advance_ms, 1), same ? "yes" : "NO"});
      tetris::analysis::RunTag tag = gtag;
      tag.cells = cells;
      tag.dispatcher = federation::policy_name(fc.policy);
      scsv += tag.scheduler + "," + std::to_string(tag.threads) + "," +
              (tag.trace ? "1" : "0") + "," + std::to_string(tag.cells) +
              "," + tag.dispatcher + "," + std::to_string(cell_threads) +
              "," + std::to_string(fed.jobs) + "," +
              std::to_string(scale.machines) + "," +
              std::to_string(total_tasks) + "," +
              (fed.completed ? "1" : "0") + "," +
              format_double(wall * 1e3, 3) + "," + format_double(tps, 1) +
              "," + format_double(speedup, 3) + "," +
              std::to_string(fed.perf.idle_cell_skips) + "," +
              format_double(advance_ms, 3) + "," +
              format_double(fed.makespan, 2) + "\n";
      // Merged per-cell counters (FederatedResult::perf) through the
      // shared exporter — the column set single-cell runs use.
      pcsv += tetris::analysis::perf_counters_csv(tag, fed.perf,
                                                  scaling_header);
      scaling_header = false;
    }
  }
  if (!scaling_cells.empty()) {
    std::cout << "\nCell-parallel driver scaling — min-of-" << kRepeats
              << " wall clock, least-loaded dispatch "
                 "(hardware_concurrency="
              << std::thread::hardware_concurrency() << "):\n"
            << st.to_string() << "\n";
    std::cout << "(speedup is vs the cell_threads=1 serial driver at the "
                 "same cell count; every row is asserted bit-identical to "
                 "it first. On boxes with fewer cores than cell_threads "
                 "the fan-out measures pool overhead, not speedup — see "
                 "docs/BENCHMARKS.md.)\n";
    tetris::write_file("bench_results/federation_scaling.csv", scsv);
    tetris::write_file("bench_results/federation_perf_counters.csv", pcsv);
  }
  return identity_ok && scaling_ok ? 0 : 1;
}
