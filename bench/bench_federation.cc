// E26 — federated packing-quality loss (DESIGN.md §14). Sweeps the cell
// count {1, 2, 4, 8, 16} x dispatch policy over the heavy Facebook trace
// and measures what federating the cluster costs against the single
// global Tetris scheduler: makespan, avg JCT, fragmentation, and the
// utilization skew across cells. The 1-cell federation is asserted
// BIT-IDENTICAL to the global run (job finishes, task placements,
// makespan) — the sweep's baseline is proven, not assumed.
//
// Usage: bench_federation [jobs] [machines] [seed] [--cells=K]
//   --cells=K restricts the sweep to K cells (plus the global baseline
//   and the 1-cell identity check); CI uses --cells=2 as a smoke run.
// Rows land in bench_results/federation_sweep.csv with the standard
// scheduler,threads,trace,cells,dispatcher prefix (the global baseline
// reports cells=0, dispatcher=global).
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "federation/federated_simulator.h"

namespace {

using tetris::Table;
using tetris::format_double;
namespace bench = tetris::bench;
namespace federation = tetris::federation;
namespace sim = tetris::sim;

// Mean dominant-resource utilization over the timeline — the same
// statistic FederatedResult reports per cell, computed for the global run.
double dominant_utilization(const sim::SimResult& r) {
  if (r.timeline.empty()) return 0.0;
  double sum = 0;
  for (const auto& s : r.timeline) {
    double dominant = 0;
    for (double u : s.utilization) dominant = std::max(dominant, u);
    sum += dominant;
  }
  return sum / static_cast<double>(r.timeline.size());
}

std::string csv_row(const tetris::analysis::RunTag& tag, long jobs,
                    int machines, bool completed, long reassigned, long lost,
                    double makespan, double avg_jct, double util,
                    double fragmentation, double skew, double makespan_loss,
                    double jct_loss) {
  return tag.scheduler + "," + std::to_string(tag.threads) + "," +
         (tag.trace ? "1" : "0") + "," + std::to_string(tag.cells) + "," +
         tag.dispatcher + "," + std::to_string(jobs) + "," +
         std::to_string(machines) + "," + (completed ? "1" : "0") + "," +
         std::to_string(reassigned) + "," + std::to_string(lost) + "," +
         format_double(makespan, 2) + "," + format_double(avg_jct, 2) + "," +
         format_double(util, 4) + "," + format_double(fragmentation, 4) +
         "," + format_double(skew, 4) + "," +
         format_double(makespan_loss, 2) + "," + format_double(jct_loss, 2) +
         "\n";
}

bool check_one_cell_identity(const federation::FederatedResult& fed,
                             const sim::SimResult& global) {
  bool ok = true;
  if (fed.makespan != global.makespan) {
    std::cerr << "IDENTITY FAIL: 1-cell makespan " << fed.makespan
              << " != global " << global.makespan << "\n";
    ok = false;
  }
  if (fed.job_records.size() != global.jobs.size()) {
    std::cerr << "IDENTITY FAIL: job record counts "
              << fed.job_records.size() << " vs " << global.jobs.size()
              << "\n";
    return false;
  }
  for (std::size_t i = 0; i < global.jobs.size(); ++i) {
    if (fed.job_records[i].finish != global.jobs[i].finish) {
      std::cerr << "IDENTITY FAIL: job " << i << " finish "
                << fed.job_records[i].finish << " != "
                << global.jobs[i].finish << "\n";
      return false;
    }
  }
  if (fed.tasks.size() != global.tasks.size()) {
    std::cerr << "IDENTITY FAIL: task record counts " << fed.tasks.size()
              << " vs " << global.tasks.size() << "\n";
    return false;
  }
  for (std::size_t i = 0; i < global.tasks.size(); ++i) {
    const auto& a = global.tasks[i];
    const auto& b = fed.tasks[i];
    if (a.job != b.job || a.stage != b.stage || a.index != b.index ||
        a.host != b.host || a.start != b.start || a.finish != b.finish) {
      std::cerr << "IDENTITY FAIL: task[" << i << "] global job=" << a.job
                << " host=" << a.host << " start=" << a.start
                << ", federated job=" << b.job << " host=" << b.host
                << " start=" << b.start << "\n";
      return false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale =
      bench::Scale::from_args(argc, argv, bench::Scale{160, 64, 1});
  int only_cells = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--cells=", 8) == 0) {
      only_cells = std::atoi(argv[i] + 8);
    }
  }

  // Rack-aligned partitions for every cell count in the sweep: racks of
  // machines/16 (>= 1), so 16 cells = one rack each.
  const int per_rack = std::max(1, scale.machines / 16);
  sim::SimConfig base = bench::facebook_cluster(scale);
  base.machines_per_rack = per_rack;
  base.tracker = sim::TrackerMode::kUsage;
  base.collect_timeline = true;
  const sim::Workload w = sim::sorted_by_arrival(
      bench::facebook_workload(scale, /*arrival_window=*/600));

  // The global baseline: one Tetris over the whole cluster.
  const sim::SimResult global = bench::run_tetris(base, w);
  bench::warn_if_incomplete(global);
  const double g_util = dominant_utilization(global);

  Table t({"cells", "dispatcher", "completed", "reassigned", "makespan (s)",
           "avg JCT (s)", "avg util", "fragmentation", "util skew",
           "makespan loss (%)", "JCT loss (%)"});
  tetris::analysis::RunTag gtag = bench::run_tag("tetris-federated", base);
  std::string csv =
      "scheduler,threads,trace,cells,dispatcher,jobs,machines,completed,"
      "reassigned,lost,makespan,avg_jct,avg_utilization,fragmentation,"
      "utilization_skew,makespan_loss_pct,jct_loss_pct\n";
  const double g_jct = global.avg_jct();
  t.add_row({"0 (global)", "-", global.completed ? "yes" : "no", "0",
             format_double(global.makespan, 1), format_double(g_jct, 1),
             format_double(g_util, 3), format_double(1.0 - g_util, 3), "-",
             "0.0", "0.0"});
  csv += csv_row(gtag, static_cast<long>(w.jobs.size()), scale.machines,
                 global.completed, 0, 0, global.makespan, g_jct, g_util,
                 1.0 - g_util, 0.0, 0.0, 0.0);

  const std::vector<federation::DispatchPolicy> policies = {
      federation::DispatchPolicy::kLeastLoaded,
      federation::DispatchPolicy::kRoundRobin,
      federation::DispatchPolicy::kPowerOfTwo,
      federation::DispatchPolicy::kLocalityAware,
  };

  bool identity_checked = false;
  bool identity_ok = true;
  for (int cells : {1, 2, 4, 8, 16}) {
    if (cells > scale.machines || scale.machines % cells != 0) continue;
    const int cell_size = scale.machines / cells;
    if (cell_size % per_rack != 0) continue;
    if (only_cells > 0 && cells != 1 && cells != only_cells) continue;

    federation::FederationConfig fc;
    fc.base = base;
    for (int c = 0; c < cells; ++c) {
      fc.base.cells.push_back({c * cell_size, (c + 1) * cell_size});
    }

    for (const auto policy : policies) {
      fc.policy = policy;
      const federation::FederatedResult fed =
          federation::simulate_federated(fc, w);
      if (cells == 1 && !identity_checked) {
        // Every policy degenerates to the same single cell; check once.
        identity_checked = true;
        identity_ok = check_one_cell_identity(fed, global);
        std::cout << "1-cell identity vs global scheduler: "
                  << (identity_ok ? "BIT-IDENTICAL" : "DIVERGED") << "\n";
      }
      const double mk_loss =
          global.makespan > 0
              ? 100.0 * (fed.makespan - global.makespan) / global.makespan
              : 0.0;
      const double jct_loss =
          g_jct > 0 ? 100.0 * (fed.avg_jct - g_jct) / g_jct : 0.0;
      tetris::analysis::RunTag tag = gtag;
      tag.cells = cells;
      tag.dispatcher = federation::policy_name(policy);
      t.add_row({std::to_string(cells), tag.dispatcher,
                 fed.completed ? "yes" : "no",
                 std::to_string(fed.reassigned_jobs),
                 format_double(fed.makespan, 1),
                 format_double(fed.avg_jct, 1),
                 format_double(fed.avg_utilization, 3),
                 format_double(fed.fragmentation, 3),
                 format_double(fed.utilization_skew, 3),
                 format_double(mk_loss, 1), format_double(jct_loss, 1)});
      csv += csv_row(tag, fed.jobs, scale.machines, fed.completed,
                     fed.reassigned_jobs, fed.lost_jobs, fed.makespan,
                     fed.avg_jct, fed.avg_utilization, fed.fragmentation,
                     fed.utilization_skew, mk_loss, jct_loss);
      if (cells == 1) break;  // policies are indistinguishable at 1 cell
    }
  }

  std::cout << "\nFederation sweep — packing-quality loss vs the global "
               "scheduler (E26):\n"
            << t.to_string() << "\n";
  std::cout << "(expected: losses grow with the cell count as packing "
               "fragments across dispatcher-isolated slices; least-loaded "
               "and p2c track each other, round-robin pays the most at "
               "high cell counts, locality trades a little balance for "
               "local reads)\n";
  tetris::write_file("bench_results/federation_sweep.csv", csv);
  if (!identity_checked) {
    std::cerr << "ERROR: sweep never ran the 1-cell identity check\n";
    return 1;
  }
  return identity_ok ? 0 : 1;
}
