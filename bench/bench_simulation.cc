// E11 — Figure 7 (trace-driven simulation at Facebook scale).
//
// CDF of per-job completion-time improvement of Tetris over the
// slot-based fair scheduler and DRF on the Facebook-like trace, plus the
// same comparison for the §2.2.3 upper bound. Paper: ~40% median gains,
// top decile >50%, Tetris within ~96% of the simple upper bound, <4% of
// jobs slowed by <25%.
#include <iostream>

#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::from_args(argc, argv);
  const sim::Workload w = bench::facebook_workload(scale);
  const sim::SimConfig cfg = bench::facebook_cluster(scale);
  std::cout << "facebook trace: " << w.jobs.size() << " jobs, "
            << w.total_tasks() << " tasks on " << scale.machines
            << " machines\n\n";

  sched::SlotScheduler fair;
  sched::DrfScheduler drf;
  const auto r_fair = bench::run_baseline(cfg, w, fair);
  const auto r_drf = bench::run_baseline(cfg, w, drf);
  const auto r_tetris = bench::run_tetris(cfg, w);
  const auto r_ub = bench::run_upper_bound(cfg, w);
  for (const auto* r : {&r_fair, &r_drf, &r_tetris, &r_ub})
    bench::warn_if_incomplete(*r);

  const auto imp_fair = analysis::per_job_improvements(r_fair, r_tetris);
  const auto imp_drf = analysis::per_job_improvements(r_drf, r_tetris);
  const auto ub_fair = analysis::per_job_improvements(r_fair, r_ub);
  const auto ub_drf = analysis::per_job_improvements(r_drf, r_ub);
  bench::print_improvement_cdf("Figure 7 — Tetris vs fair scheduler:",
                               imp_fair);
  bench::print_improvement_cdf("Figure 7 — Tetris vs DRF:", imp_drf);
  bench::print_improvement_cdf("Figure 7 — upper bound vs fair scheduler:",
                               ub_fair);
  write_file("bench_results/fig7_cdf_tetris_vs_fair.csv",
             bench::cdf_csv(imp_fair));
  write_file("bench_results/fig7_cdf_tetris_vs_drf.csv",
             bench::cdf_csv(imp_drf));
  write_file("bench_results/fig7_cdf_ub_vs_fair.csv", bench::cdf_csv(ub_fair));
  write_file("bench_results/fig7_cdf_ub_vs_drf.csv", bench::cdf_csv(ub_drf));

  Table t({"metric", "vs fair", "vs drf"});
  t.add_row({"avg JCT reduction",
             format_percent(analysis::avg_jct_reduction(r_fair, r_tetris) / 100.0),
             format_percent(analysis::avg_jct_reduction(r_drf, r_tetris) / 100.0)});
  t.add_row({"makespan reduction",
             format_percent(analysis::makespan_reduction(r_fair, r_tetris) / 100.0),
             format_percent(analysis::makespan_reduction(r_drf, r_tetris) / 100.0)});
  t.add_row({"upper-bound avg JCT reduction",
             format_percent(analysis::avg_jct_reduction(r_fair, r_ub) / 100.0),
             format_percent(analysis::avg_jct_reduction(r_drf, r_ub) / 100.0)});
  std::cout << t.to_string() << "\n";

  const auto slow_fair = analysis::slowdown_stats(r_fair, r_tetris);
  const auto slow_drf = analysis::slowdown_stats(r_drf, r_tetris);
  std::cout << "jobs slowed vs fair: " << format_percent(slow_fair.fraction_slowed)
            << " (avg " << format_double(slow_fair.avg_slowdown_percent, 1)
            << "%, max " << format_double(slow_fair.max_slowdown_percent, 1)
            << "%)\n";
  std::cout << "jobs slowed vs drf:  " << format_percent(slow_drf.fraction_slowed)
            << " (avg " << format_double(slow_drf.avg_slowdown_percent, 1)
            << "%, max " << format_double(slow_drf.max_slowdown_percent, 1)
            << "%)\n";
  std::cout << "(paper: <4% of jobs slow down, each by <25%)\n";
  return 0;
}
