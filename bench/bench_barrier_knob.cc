// E16 — Figure 10 (barrier knob sweep).
//
// b in [0.75, 1]: when a stage preceding a barrier is >= b complete, its
// remaining tasks get strict priority. The paper finds b ~ 0.9 best —
// below ~0.85 too many tasks get preference and steal resources from
// packing; b = 1 (disabled) forgoes the cheap end-of-stage speedup.
#include <iostream>

#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::from_args(argc, argv);
  // Batch arrival: barrier stragglers only contend with other stages when
  // a backlog exists (also the paper's makespan methodology).
  const sim::Workload w = bench::facebook_workload(scale, /*arrival=*/0);
  const sim::SimConfig cfg = bench::facebook_cluster(scale);
  std::cout << "facebook trace (batch arrival): " << w.jobs.size()
            << " jobs, " << w.total_tasks() << " tasks\n\n";

  sched::SlotScheduler fair;
  sched::DrfScheduler drf;
  const auto r_fair = bench::run_baseline(cfg, w, fair);
  const auto r_drf = bench::run_baseline(cfg, w, drf);

  Table t({"b", "JCT gain vs fair", "JCT gain vs drf", "makespan gain vs fair",
           "makespan gain vs drf", "priority placements"});
  std::string csv = "b,jct_gain_fair,jct_gain_drf,mk_gain_fair,mk_gain_drf\n";
  for (double b : {0.75, 0.80, 0.85, 0.90, 0.95, 1.0}) {
    core::TetrisConfig tcfg;
    tcfg.barrier_knob = b;
    auto run_cfg = cfg;
    run_cfg.tracker = sim::TrackerMode::kUsage;
    core::TetrisScheduler tetris(tcfg);
    const auto r = sim::simulate(run_cfg, w, tetris);
    bench::warn_if_incomplete(r);
    const double jf = analysis::avg_jct_reduction(r_fair, r);
    const double jd = analysis::avg_jct_reduction(r_drf, r);
    const double mf = analysis::makespan_reduction(r_fair, r);
    const double md = analysis::makespan_reduction(r_drf, r);
    t.add_row({format_double(b, 2), format_double(jf, 1) + "%",
               format_double(jd, 1) + "%", format_double(mf, 1) + "%",
               format_double(md, 1) + "%",
               std::to_string(tetris.stats().priority_placements)});
    csv += format_double(b, 2) + "," + format_double(jf, 2) + "," +
           format_double(jd, 2) + "," + format_double(mf, 2) + "," +
           format_double(md, 2) + "\n";
  }
  std::cout << "Figure 10 — barrier knob sweep (paper: b~0.9 balances "
               "stragglers-before-barriers against packing loss; b=1 "
               "disables the hint):\n"
            << t.to_string();
  write_file("bench_results/fig10_barrier_knob.csv", csv);
  return 0;
}
