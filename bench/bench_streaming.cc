// Streaming sustained-throughput benchmark (DESIGN.md §11).
//
// Drives the streaming engine over a synthetic map/reduce arrival stream
// (workload/stream_gen.h) — or a binary trace file — with bounded resident
// state: task records off, job records dropped as jobs retire, so RSS
// stays flat no matter how long the stream is. Reports sustained placement
// throughput (tasks placed/sec), per-pass latency p50/p99 from the always-
// on log-bucketed histogram, and the peak resident job/task counters that
// prove the memory ceiling held.
//
// Usage: bench_streaming [jobs] [machines] [seed] [--trace=<file.bin>]
//   Default 2000 jobs (~250K tasks) on 20 machines finishes in seconds;
//   the 10M-task acceptance run is `bench_streaming 81000 20`. With
//   --trace= the stream comes from a binary trace file written by
//   tools/make_stream_trace instead of the in-process generator.
//
// Rows land in bench_results/streaming_throughput.csv. The row layout is
// analysis::streaming_csv: RunTag prefix + simulated columns that are
// bit-reproducible for a fixed config, then the measured wall-clock
// columns last. No timestamps, so regeneration diffs clean apart from the
// trailing measured columns.
#include <sys/resource.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/export.h"
#include "bench/harness.h"
#include "workload/stream_gen.h"
#include "workload/trace_binary.h"

using namespace tetris;

namespace {

// Process high-water RSS in MB. Cumulative over the process lifetime, so
// run heavier configurations first if per-run attribution matters.
double peak_rss_mb() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return -1;
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KB
}

struct StreamRun {
  sim::SimResult result;
  double wall_seconds = 0;
  long total_tasks = 0;
};

StreamRun run_stream(const sim::SimConfig& cfg, sim::JobSource& source,
                     long total_tasks, int threads) {
  core::TetrisConfig tcfg;
  tcfg.num_threads = threads;
  core::TetrisScheduler tetris(tcfg);

  sim::SimConfig run_cfg = cfg;
  run_cfg.num_threads = threads;
  run_cfg.tracker = sim::TrackerMode::kUsage;

  StreamRun out;
  out.total_tasks = total_tasks;
  const auto t0 = std::chrono::steady_clock::now();
  out.result = sim::simulate_stream(run_cfg, source, tetris);
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }
  bench::Scale def;
  def.jobs = 2000;
  def.machines = 20;
  def.seed = 42;
  const bench::Scale scale = bench::Scale::from_args(argc, argv, def);

  workload::StreamGenConfig gen;
  gen.num_jobs = scale.jobs;
  gen.num_machines = scale.machines;
  gen.seed = scale.seed;
  // Keep offered load ~2/3 of cluster capacity so the resident window is
  // flat: a job carries ~1300 core-seconds against 16 cores per machine.
  gen.arrival_spacing = 1300.0 / (0.65 * 16.0 * scale.machines);

  sim::SimConfig cfg = bench::facebook_cluster(scale);
  cfg.stream.enabled = true;
  cfg.stream.max_resident_jobs = 1024;
  cfg.stream.max_resident_tasks = 1 << 20;
  cfg.stream.drop_job_records = true;
  cfg.collect_task_records = false;
  cfg.max_time = 1e9;

  std::string csv;
  bool first = true;
  // Heavier (threaded) run first so the cumulative RSS high-water mark is
  // attributed to the run that set it.
  for (int threads : {8, 0}) {
    StreamRun run;
    std::string trace_name;
    if (!trace_path.empty()) {
      workload::BinaryTraceReader reader(trace_path);
      long tasks = 0;
      {  // Headers are cheap to scan; count tasks for the throughput row.
        workload::BinaryTraceReader counter(trace_path);
        sim::JobPeek p;
        sim::JobSpec j;
        while (counter.peek(p)) {
          tasks += p.tasks;
          counter.next(j);
        }
      }
      run = run_stream(cfg, reader, tasks, threads);
      trace_name = trace_path;
    } else {
      workload::SyntheticJobSource source(gen);
      run = run_stream(cfg, source, workload::stream_total_tasks(gen),
                       threads);
      trace_name = "synthetic";
    }
    bench::warn_if_incomplete(run.result);

    analysis::RunTag tag = bench::run_tag("tetris-stream", cfg, threads);
    csv += analysis::streaming_csv(tag, run.result, run.total_tasks,
                                   run.wall_seconds, peak_rss_mb(), first);
    first = false;

    const auto& p = run.result.perf;
    Table t({"metric", "value"});
    t.add_row({"source", trace_name});
    t.add_row({"threads", std::to_string(threads)});
    t.add_row({"jobs admitted", std::to_string(p.jobs_admitted)});
    t.add_row({"tasks placed", std::to_string(run.total_tasks)});
    t.add_row({"makespan (s)", format_double(run.result.makespan, 1)});
    t.add_row({"wall (s)", format_double(run.wall_seconds, 2)});
    t.add_row({"tasks/sec",
               format_double(static_cast<double>(run.total_tasks) /
                                 run.wall_seconds,
                             0)});
    t.add_row({"pass p50 (ms)",
               format_double(
                   run.result.pass_latency.quantile_seconds(0.5) * 1e3, 3)});
    t.add_row({"pass p99 (ms)",
               format_double(
                   run.result.pass_latency.quantile_seconds(0.99) * 1e3, 3)});
    t.add_row({"peak resident jobs", std::to_string(p.peak_resident_jobs)});
    t.add_row({"peak resident tasks", std::to_string(p.peak_resident_tasks)});
    t.add_row({"deferrals", std::to_string(p.stream_deferrals)});
    t.add_row({"peak RSS (MB)", format_double(peak_rss_mb(), 1)});
    std::cout << t.to_string() << "\n";
  }

  write_file("bench_results/streaming_throughput.csv", csv);
  std::cout << "wrote bench_results/streaming_throughput.csv\n";
  return 0;
}
