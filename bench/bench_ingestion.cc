// E9 — Figure 6 (resource tracker micro-benchmark).
//
// Mimic data ingestion on one machine of a small cluster: from t=300s an
// external writer consumes most of the machine's disk bandwidth. Tetris's
// tracker observes the rising usage and schedules no more tasks there
// while the ingestion lasts; the Capacity Scheduler proceeds unaware, and
// the resulting contention slows both its tasks and the ingestion.
#include <algorithm>
#include <iostream>

#include "bench/harness.h"

using namespace tetris;

namespace {

struct WindowStats {
  int started_on_m0 = 0;      // tasks started on machine 0 in the window
  int started_elsewhere = 0;
  double mean_dur_m0 = 0;     // tasks overlapping the window on machine 0
  double mean_dur_else = 0;
};

WindowStats window_stats(const sim::SimResult& r, double start, double end) {
  WindowStats s;
  double d0 = 0, de = 0;
  int n0 = 0, ne = 0;
  for (const auto& t : r.tasks) {
    if (t.start >= start && t.start < end) {
      (t.host == 0 ? s.started_on_m0 : s.started_elsewhere)++;
    }
    const bool overlaps = t.start < end && t.finish > start;
    if (!overlaps) continue;
    if (t.host == 0) {
      n0++;
      d0 += t.duration();
    } else {
      ne++;
      de += t.duration();
    }
  }
  s.mean_dur_m0 = n0 ? d0 / n0 : 0;
  s.mean_dur_else = ne ? de / ne : 0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  auto def = bench::Scale{};
  def.jobs = 60;
  def.machines = 6;
  const auto scale = bench::Scale::from_args(argc, argv, def);

  // A steady stream of disk-heavy jobs so placements keep happening
  // throughout the ingestion window.
  workload::SuiteConfig wcfg;
  wcfg.num_jobs = scale.jobs;
  wcfg.num_machines = scale.machines;
  wcfg.task_scale = 0.05;
  wcfg.arrival_window = 1000;
  wcfg.seed = scale.seed;
  const sim::Workload w = workload::make_suite_workload(wcfg);

  sim::SimConfig cfg;
  cfg.num_machines = scale.machines;
  cfg.machine_capacity = workload::facebook_machine();
  cfg.seed = scale.seed;

  sim::BackgroundActivity act;
  act.machine = 0;
  // Off the heartbeat grid, so the tracker's next report reflects it.
  act.start = 300.3;
  act.end = 700.3;
  act.usage[Resource::kDiskWrite] = 200 * kMB;
  act.usage[Resource::kDiskRead] = 200 * kMB;
  act.usage[Resource::kNetIn] = 120 * kMB;
  cfg.activities.push_back(act);

  sched::SlotSchedulerConfig cs_cfg;
  cs_cfg.name = "capacity-scheduler";
  sched::SlotScheduler cs(cs_cfg);
  const auto r_cs = bench::run_baseline(cfg, w, cs);
  const auto r_tetris = bench::run_tetris(cfg, w);

  Table t({"scheduler", "m0 starts in window", "other starts in window",
           "mean dur on m0 (s)", "mean dur elsewhere (s)", "makespan (s)"});
  for (const auto* r : {&r_cs, &r_tetris}) {
    bench::warn_if_incomplete(*r);
    const auto s = window_stats(*r, act.start, act.end);
    t.add_row({r->scheduler_name, std::to_string(s.started_on_m0),
               std::to_string(s.started_elsewhere),
               format_double(s.mean_dur_m0, 1),
               format_double(s.mean_dur_else, 1),
               format_double(r->makespan, 1)});
  }
  std::cout << "Figure 6 — ingestion on machine 0 during [300s, 700s):\n"
            << t.to_string() << "\n";
  std::cout << "(paper: Tetris's tracker observes the rising disk usage and "
               "schedules no more tasks there; CS proceeds unaware — its "
               "tasks on the ingested machine straggle and the ingestion "
               "itself is delayed)\n";
  return 0;
}
